package renum

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"time"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/mcucq"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reduce"
)

// Query is the sealed interface over the two query forms Open accepts:
// exactly *CQ and *UCQ implement it. Pass the query you built with
// NewCQ/MustCQ or NewUCQ/MustUCQ straight through.
type Query = query.Query

// ErrUnsupported reports that a handle's backend does not implement the
// requested capability — inverted access on a union, updates on a static
// index, enumeration cursors on a dynamic one. It is a sentinel (alongside
// ErrOutOfBounds): test with errors.Is and branch on the capability, instead
// of type-switching on concrete index types.
var ErrUnsupported = errors.New("renum: operation unsupported by this handle")

// IsUnsupported reports whether err indicates a missing capability.
func IsUnsupported(err error) bool { return errors.Is(err, ErrUnsupported) }

// Kind names the backend family serving a Handle. It is diagnostic metadata
// (logs, /v1/{query} responses); dispatch on Capabilities, not Kind.
type Kind string

// The backend families of Open.
const (
	// KindCQ: the Theorem 4.3 single-CQ index.
	KindCQ Kind = "cq"
	// KindUCQ: the Theorem 5.5 mc-UCQ union index.
	KindUCQ Kind = "ucq"
	// KindDynamic: the update-maintaining index (WithDynamic).
	KindDynamic Kind = "dynamic"
)

// Capability identifies one optional facility of a Handle.
type Capability string

// The capability lattice. Every handle supports the shared surface (Count,
// Access, AccessInto, AccessBatch, Page, Head); the rest is discoverable.
const (
	// CapEnumerate: the enumeration order is stable, so All, Shuffled,
	// Enumerate, Permute and server-side cursors are meaningful. Static
	// backends have it; dynamic ones do not (updates shift positions, so
	// "each answer exactly once" cannot be promised across a sequence of
	// probes).
	CapEnumerate Capability = "enumerate"
	// CapInvert: answer → position (Algorithm 4 / Fenwick rank).
	CapInvert Capability = "invert"
	// CapUpdate: Insert/Delete on base relations.
	CapUpdate Capability = "update"
	// CapSample: uniform sampling (distinct or with replacement — ask the
	// Sampler).
	CapSample Capability = "sample"
	// CapContains: membership testing.
	CapContains Capability = "contains"
	// CapExplain: a human-readable compiled plan.
	CapExplain Capability = "explain"
	// CapSnapshot: the handle's index can be persisted into the versioned
	// binary snapshot format (WriteSnapshot / SaveSnapshot) and restored
	// with OpenSnapshot. Static backends have it; the dynamic backend stays
	// heap-only — updates mutate structure the flat format does not
	// represent — and reports the miss here.
	CapSnapshot Capability = "snapshot"
)

// Inverter is the inverted-access capability: answer → position in the
// enumeration order (ok=false if t is not an answer).
type Inverter interface {
	InvertedAccess(t Tuple) (int64, bool)
}

// Updater is the dynamic-maintenance capability: tuple insertions and
// deletions on the base relations, with all derived weights maintained.
type Updater interface {
	Insert(baseRelation string, t Tuple) (changed bool, err error)
	Delete(baseRelation string, t Tuple) (changed bool, err error)
}

// UpdateValidator is an optional refinement of Updater: it checks that an
// update's target (relation name and tuple arity) would be accepted
// without applying anything. Callers that stage irreversible side effects
// around an update — interning values into the append-only dictionary,
// appending to a write-ahead log — probe for it to reject garbage before
// paying those costs. DynamicAccess implements it.
type UpdateValidator interface {
	ValidateUpdate(baseRelation string, arity int) error
}

// Sampler is the uniform-sampling capability. All backends share one error
// shape: k < 0 is ErrOutOfBounds, and an empty answer set yields an empty
// sample with a nil error — emptiness is a result, not a failure.
type Sampler interface {
	// SampleN returns k uniform samples (clamped to Count() when Distinct).
	SampleN(k int64, rng *rand.Rand) ([]Tuple, error)
	// Distinct reports whether SampleN draws without replacement (static
	// backends: lazy Fisher–Yates, distinct; dynamic: independent draws,
	// with replacement).
	Distinct() bool
}

// Container is the membership-testing capability.
type Container interface {
	Contains(t Tuple) bool
}

// backend is the shared probe surface every Handle backend implements; the
// optional capabilities are discovered by interface assertion on the same
// value, so adding a backend never adds a dispatch site.
type backend interface {
	kind() Kind
	Count() int64
	Head() []string
	Access(j int64) (Tuple, error)
	AccessInto(j int64, buf Tuple) error
	accessBatchContext(ctx context.Context, js []int64, workers int) ([]Tuple, error)
}

// permuter marks backends with a stable enumeration order (CapEnumerate).
type permuter interface {
	Permute(rng *rand.Rand) *Permutation
}

// explainer marks backends that can render their compiled plan.
type explainer interface {
	Explain() string
}

// config collects the functional options of Open.
type config struct {
	canonical    bool
	dynamic      bool
	verify       bool
	workers      int
	shards       int // WithShards: partition count (0 = unsharded)
	sliceIdx     int // WithShardSlice: which slice to build
	sliceOf      int // WithShardSlice: partition count (0 = off)
	planner      PlannerMode
	planObserve  func(PlanStats)
	buildObserve func(stage string, d time.Duration)
}

// Option configures Open. Options replace the boolean and variant
// constructors of the pre-Handle API (see the README migration table).
type Option func(*config)

// WithCanonical sorts node relations before indexing so the enumeration
// order depends only on database *content*, not insertion order (O(n log n)
// preprocessing instead of linear). Not supported together with WithDynamic.
func WithCanonical() Option { return func(c *config) { c.canonical = true } }

// WithDynamic builds the update-maintaining index (CapUpdate) instead of the
// static one. It requires a single projection-free CQ: unions fail with
// ErrUnsupported, non-full CQs with ErrNotFull.
func WithDynamic() Option { return func(c *config) { c.dynamic = true } }

// WithVerify checks mc-UCQ order compatibility explicitly after preparing a
// union (costs an enumeration of every intersection). It is a no-op for CQs.
func WithVerify() Option { return func(c *config) { c.verify = true } }

// WithWorkers caps the goroutines used both for index construction and as
// the default fan-out of the handle's batched probes (AccessBatch, Page).
// n <= 0 means one worker per core.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithBuildObserver registers a callback that receives preprocessing-stage
// timings while Open builds the probe structure. Stages currently emitted:
// "plan_search" (the cost-based planner's candidate enumeration),
// "index_build" (the static access structure's weight computation),
// "dynamic_build" (the update-maintaining index), and "union_build" (the
// mc-UCQ preparation). fn must be safe for use from the building goroutine;
// it is never called after Open returns.
func WithBuildObserver(fn func(stage string, d time.Duration)) Option {
	return func(c *config) { c.buildObserve = fn }
}

// PlannerMode selects how Open picks the join tree a CQ (or the disjunct
// order a UCQ) is compiled to.
type PlannerMode string

const (
	// PlannerCost (the default) enumerates the valid join trees, costs each
	// from per-relation statistics (tuple counts, per-column distinct
	// counts), and compiles the cheapest. The as-parsed tree is always a
	// candidate and wins ties, so cost mode never picks a tree its own model
	// rates worse than today's.
	PlannerCost PlannerMode = "cost"
	// PlannerOff compiles the as-parsed query byte-for-byte — the exact
	// pre-planner behavior, including the enumeration order.
	PlannerOff PlannerMode = "off"
)

// ParsePlannerMode parses a planner mode flag value ("cost" or "off").
func ParsePlannerMode(s string) (PlannerMode, error) {
	switch PlannerMode(s) {
	case PlannerCost:
		return PlannerCost, nil
	case PlannerOff:
		return PlannerOff, nil
	}
	return "", fmt.Errorf("renum: planner mode must be %q or %q (got %q)", PlannerCost, PlannerOff, s)
}

// WithPlanner selects the join-tree planning mode (default PlannerCost).
// Planning applies to static CQ and UCQ backends, including sharded builds
// (every slice plans on the same full database, so a fleet of shard daemons
// picks the same tree deterministically). Dynamic handles and snapshot
// restores skip planning: updates rebuild incrementally on the original
// tree, and a restored index already embodies the tree recorded at save
// time.
func WithPlanner(mode PlannerMode) Option {
	return func(c *config) { c.planner = mode }
}

// PlanStats summarizes one planning run for observers (the serving tier's
// renum_plan_* metric family).
type PlanStats struct {
	// Candidates is the number of distinct join trees costed.
	Candidates int
	// Identity reports whether the as-parsed tree won.
	Identity bool
	// ChosenCost and IdentityCost are the model costs of the winner and of
	// the as-parsed tree (equal when Identity).
	ChosenCost, IdentityCost float64
	// Duration is the wall-clock planning time.
	Duration time.Duration
}

// WithPlanObserver registers a callback invoked once per planning run with
// the candidate-set summary. Like WithBuildObserver it fires during Open,
// never after.
func WithPlanObserver(fn func(PlanStats)) Option {
	return func(c *config) { c.planObserve = fn }
}

// planQuery runs the planner for Open: it returns the (possibly reordered)
// query to compile plus the plan record for Explain. Planner errors are
// swallowed — the query is returned unchanged and the real build surfaces
// the same condition with its usual typed error.
func planQuery(db *Database, q Query, cfg *config) (Query, *plan.Plan) {
	if cfg.planner == PlannerOff || cfg.dynamic {
		return q, nil
	}
	t0 := time.Now()
	var (
		planned Query
		p       *plan.Plan
		err     error
	)
	switch q := q.(type) {
	case *CQ:
		planned, p, err = plan.ChooseCQ(db, q, plan.ModeCost)
	case *UCQ:
		planned, p, err = plan.ChooseUCQ(db, q, plan.ModeCost)
	default:
		return q, nil
	}
	if err != nil || p == nil {
		return q, nil
	}
	if cfg.buildObserve != nil {
		cfg.buildObserve("plan_search", time.Since(t0))
	}
	if cfg.planObserve != nil {
		cfg.planObserve(PlanStats{
			Candidates:   len(p.Candidates),
			Identity:     p.Identity(),
			ChosenCost:   p.ChosenCost(),
			IdentityCost: p.IdentityCost(),
			Duration:     p.Duration,
		})
	}
	return planned, p
}

// Open builds the probe structure for q over db and wraps it in a Handle:
// the single entry point of the library. q is a *CQ or a *UCQ; options pick
// the backend variant. Open fails with ErrCyclic / ErrNotFreeConnex /
// ErrIncompatible / ErrNotFull exactly as the underlying preparation does.
func Open(db *Database, q Query, opts ...Option) (*Handle, error) {
	if db == nil {
		return nil, errors.New("renum: Open: nil database")
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	switch q := q.(type) {
	case *CQ:
		if cfg.dynamic {
			if cfg.shards > 0 || cfg.sliceOf > 0 {
				return openSharded(db, q, cfg, nil) // surfaces the dynamic+sharded error
			}
			if cfg.canonical {
				return nil, fmt.Errorf("renum: WithCanonical with WithDynamic: %w", ErrUnsupported)
			}
			t0 := time.Now()
			da, err := NewDynamicAccess(db, q)
			if err != nil {
				return nil, err
			}
			if cfg.buildObserve != nil {
				cfg.buildObserve("dynamic_build", time.Since(t0))
			}
			return &Handle{b: daBackend{da}, workers: cfg.workers}, nil
		}
		pq, pl := planQuery(db, q, &cfg)
		q = pq.(*CQ)
		if cfg.shards > 0 || cfg.sliceOf > 0 {
			return openSharded(db, q, cfg, pl)
		}
		c, err := cqenum.PrepareWithOptions(db, q,
			reduce.Options{CanonicalOrder: cfg.canonical},
			access.BuildOptions{Workers: cfg.workers, Observe: cfg.buildObserve})
		if err != nil {
			return nil, err
		}
		return &Handle{b: raBackend{&RandomAccess{c: c, plan: pl}}, workers: cfg.workers}, nil
	case *UCQ:
		if cfg.shards > 0 || cfg.sliceOf > 0 {
			return nil, fmt.Errorf("renum: WithShards requires a single CQ, got a union: %w", ErrUnsupported)
		}
		if cfg.dynamic {
			return nil, fmt.Errorf("renum: WithDynamic requires a single full CQ, got a union: %w", ErrUnsupported)
		}
		pq, pl := planQuery(db, q, &cfg)
		planned := pq.(*UCQ)
		mcOpts := mcucq.Options{
			Reduce:  reduce.Options{CanonicalOrder: cfg.canonical},
			Verify:  cfg.verify,
			Workers: cfg.workers,
		}
		t0 := time.Now()
		ua, err := newUnionAccess(db, planned, mcOpts)
		if err != nil && planned != q {
			// The reordered union can fail mc-compatibility (order alignment
			// is checked structurally by the real build); fall back to the
			// as-parsed disjunct order rather than failing a query that
			// worked before planning existed.
			ua, err = newUnionAccess(db, q, mcOpts)
			pl = nil
		}
		if err != nil {
			return nil, err
		}
		ua.plan = pl
		if cfg.buildObserve != nil {
			cfg.buildObserve("union_build", time.Since(t0))
		}
		return &Handle{b: uaBackend{ua}, workers: cfg.workers}, nil
	default:
		// Unreachable while Query stays sealed (q == nil aside).
		return nil, fmt.Errorf("renum: Open: unsupported query type %T", q)
	}
}

// Handle is a prepared query with a uniform probe surface. The shared
// operations — Count, Access, AccessInto, AccessBatch, Page, Head — work on
// every handle; optional facilities are discovered through Capabilities or
// the typed accessors (Inverter, Updater, Sampler, Container), which fail
// with ErrUnsupported instead of forcing callers to know the backend type.
//
// Handles over static backends (KindCQ, KindUCQ) are immutable and freely
// shareable across goroutines with no locking; a KindDynamic handle is
// internally synchronized. The iterators returned by All and Shuffled are
// single-consumer cursors over the shared index: give each consumer its own.
type Handle struct {
	b       backend
	workers int
}

// Kind names the backend family. Use it for diagnostics; branch on
// Capabilities for behavior.
func (h *Handle) Kind() Kind { return h.b.kind() }

// Count returns |Q(D)| in constant time.
func (h *Handle) Count() int64 { return h.b.Count() }

// Head returns the output variable order.
func (h *Handle) Head() []string { return h.b.Head() }

// Access returns the j-th answer (0-based) of the enumeration order, or
// ErrOutOfBounds outside [0, Count()).
func (h *Handle) Access(j int64) (Tuple, error) { return h.b.Access(j) }

// AccessInto is Access writing into a caller-provided buffer, which must
// have length len(Head()) — a mismatched buffer is rejected with a
// descriptive error on every backend. On the CQ backend the probe itself is
// allocation-free.
func (h *Handle) AccessInto(j int64, buf Tuple) error {
	if err := checkBufArity(buf, len(h.b.Head())); err != nil {
		return err
	}
	return h.b.AccessInto(j, buf)
}

// AccessBatch returns Access(j) for every j in js, in order, fanning the
// probes out over the handle's worker budget (WithWorkers). The batch is
// validated up front: one out-of-range position fails the whole call with
// ErrOutOfBounds before any answer is assembled. (On a dynamic handle the
// validation reads the count at entry; a concurrent delete can still
// invalidate a position mid-batch, surfacing as ErrOutOfBounds.) Duplicates
// are allowed and yield equal answers.
func (h *Handle) AccessBatch(js []int64) ([]Tuple, error) {
	return h.b.accessBatchContext(context.Background(), js, h.workers)
}

// AccessBatchContext is AccessBatch honoring cancellation between probe
// chunks: when ctx is cancelled mid-batch, the remaining chunks are dropped
// and ctx.Err() is returned; chunks already in flight complete into their
// own buffers, so no partial or torn answer ever escapes and concurrent
// batches are unaffected.
func (h *Handle) AccessBatchContext(ctx context.Context, js []int64) ([]Tuple, error) {
	return h.b.accessBatchContext(orBackground(ctx), js, h.workers)
}

// Page returns answers offset..offset+limit-1 of the enumeration order with
// O(log |D|) cost per row regardless of offset. Short pages at the end are
// returned without error; an offset at or past Count() yields an empty page;
// a negative offset or limit is ErrOutOfBounds. On a dynamic handle the
// count may move between the clamp and the probes, in which case the shifted
// positions surface as ErrOutOfBounds.
func (h *Handle) Page(offset, limit int64) ([]Tuple, error) {
	return h.PageContext(context.Background(), offset, limit)
}

// PageContext is Page honoring cancellation between probe chunks.
func (h *Handle) PageContext(ctx context.Context, offset, limit int64) ([]Tuple, error) {
	js, err := pagePositions(offset, limit, h.Count())
	if err != nil || js == nil {
		return nil, err
	}
	return h.b.accessBatchContext(orBackground(ctx), js, h.workers)
}

// orBackground normalizes a nil context: every public context-aware entry
// point tolerates nil the way the stdlib's http does, taking the
// never-cancellable fast path.
func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// Explain renders the compiled plan (CapExplain), or ErrUnsupported.
func (h *Handle) Explain() (string, error) {
	if ex, ok := h.b.(explainer); ok {
		return ex.Explain(), nil
	}
	return "", fmt.Errorf("explain: %w (kind %s)", ErrUnsupported, h.Kind())
}

// capabilityOrder fixes the (stable) order Capabilities reports.
var capabilityOrder = []Capability{
	CapEnumerate, CapContains, CapInvert, CapSample, CapUpdate, CapExplain, CapSnapshot,
}

// Has reports whether the handle supports c.
func (h *Handle) Has(c Capability) bool {
	switch c {
	case CapEnumerate:
		_, ok := h.b.(permuter)
		return ok
	case CapInvert:
		_, ok := h.b.(Inverter)
		return ok
	case CapUpdate:
		_, ok := h.b.(Updater)
		return ok
	case CapSample:
		_, ok := h.b.(samplerBackend)
		return ok
	case CapContains:
		_, ok := h.b.(Container)
		return ok
	case CapExplain:
		_, ok := h.b.(explainer)
		return ok
	case CapSnapshot:
		_, ok := h.b.(snapshotter)
		return ok
	default:
		return false
	}
}

// Capabilities lists the optional facilities this handle supports, in a
// stable order. The shared surface (Count/Access/AccessInto/AccessBatch/
// Page/Head) is always present and not listed.
func (h *Handle) Capabilities() []Capability {
	out := make([]Capability, 0, len(capabilityOrder))
	for _, c := range capabilityOrder {
		if h.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// Inverter returns the inverted-access capability, or ErrUnsupported (e.g.
// union backends: mc-UCQ has no inverted primitive).
func (h *Handle) Inverter() (Inverter, error) {
	if v, ok := h.b.(Inverter); ok {
		return v, nil
	}
	return nil, fmt.Errorf("inverted access: %w (kind %s)", ErrUnsupported, h.Kind())
}

// Updater returns the update capability, or ErrUnsupported (static
// backends; open with WithDynamic to accept updates).
func (h *Handle) Updater() (Updater, error) {
	if v, ok := h.b.(Updater); ok {
		return v, nil
	}
	return nil, fmt.Errorf("update: %w (kind %s is a static index; open with WithDynamic)", ErrUnsupported, h.Kind())
}

// compactor is the internal rebuild-aside seam: backends that accumulate
// garbage under updates (tombstones in the dynamic index) can produce a
// fresh, equivalent backend for publication as a new generation.
type compactor interface {
	compactAside() (backend, error)
}

// CompactAside returns a freshly rebuilt handle over the same logical
// contents, or ErrUnsupported for backends with nothing to compact (static
// indexes never accumulate garbage). The rebuild happens aside — the
// source handle keeps serving probes and updates while the copy is
// assembled — and the result enumerates byte-identically to the source,
// including the positions future re-inserts revive at. The registry's
// compactor publishes the result with its usual atomic swap.
func (h *Handle) CompactAside() (*Handle, error) {
	c, ok := h.b.(compactor)
	if !ok {
		return nil, fmt.Errorf("compact: %w (kind %s)", ErrUnsupported, h.Kind())
	}
	b, err := c.compactAside()
	if err != nil {
		return nil, err
	}
	return &Handle{b: b, workers: h.workers}, nil
}

// Sampler returns the uniform-sampling capability bound to the handle's
// worker budget (WithWorkers), or ErrUnsupported.
func (h *Handle) Sampler() (Sampler, error) {
	if v, ok := h.b.(samplerBackend); ok {
		return boundSampler{b: v, workers: h.workers}, nil
	}
	return nil, fmt.Errorf("sample: %w (kind %s)", ErrUnsupported, h.Kind())
}

// samplerBackend is the internal sampling surface: like Sampler but with an
// explicit worker budget for the probe fan-out.
type samplerBackend interface {
	sampleN(k int64, rng *rand.Rand, workers int) ([]Tuple, error)
	Distinct() bool
}

// boundSampler adapts a samplerBackend to the public Sampler, pinning the
// handle's worker budget so WithWorkers(1) really serializes /sample-style
// fan-out (the draws themselves are identical for any worker count).
type boundSampler struct {
	b       samplerBackend
	workers int
}

func (s boundSampler) SampleN(k int64, rng *rand.Rand) ([]Tuple, error) {
	return s.b.sampleN(k, rng, s.workers)
}

func (s boundSampler) Distinct() bool { return s.b.Distinct() }

// Container returns the membership-testing capability, or ErrUnsupported.
func (h *Handle) Container() (Container, error) {
	if v, ok := h.b.(Container); ok {
		return v, nil
	}
	return nil, fmt.Errorf("contains: %w (kind %s)", ErrUnsupported, h.Kind())
}

// All returns the answers in the enumeration order as an iterator:
//
//	for t, err := range h.All() {
//	    if err != nil { ... }
//	    ...
//	}
//
// The sequence is byte-identical to Access(0..Count()-1) — and therefore to
// the legacy Enumerator — with logarithmic delay per answer. It requires
// CapEnumerate; on a dynamic handle the iterator yields a single
// (nil, ErrUnsupported) pair, because updates shift positions and "each
// answer exactly once" cannot be promised across probes. The iterator is a
// single-consumer cursor; the handle itself may be shared.
func (h *Handle) All() iter.Seq2[Tuple, error] {
	return h.AllContext(context.Background())
}

// AllContext is All honoring cancellation: after ctx is cancelled the
// iterator yields one (nil, ctx.Err()) pair and stops.
func (h *Handle) AllContext(ctx context.Context) iter.Seq2[Tuple, error] {
	ctx = orBackground(ctx)
	return func(yield func(Tuple, error) bool) {
		if !h.Has(CapEnumerate) {
			yield(nil, fmt.Errorf("enumerate: %w (kind %s)", ErrUnsupported, h.Kind()))
			return
		}
		done := ctx.Done()
		n := h.Count()
		for j := int64(0); j < n; j++ {
			// One channel poll per answer: cheaper than ctx.Err()'s lock and
			// exact enough — cancellation is observed before the next probe.
			if done != nil {
				select {
				case <-done:
					yield(nil, ctx.Err())
					return
				default:
				}
			}
			t, err := h.b.Access(j)
			if !yield(t, err) || err != nil {
				return
			}
		}
	}
}

// Shuffled returns a uniformly random permutation of the answers as an
// iterator (REnum: lazy Fisher–Yates over random access, logarithmic delay,
// each answer exactly once). The sequence is byte-identical to draining
// Permute(rng) with the same rng. Like All it requires CapEnumerate and the
// iterator is single-consumer.
func (h *Handle) Shuffled(rng *rand.Rand) iter.Seq2[Tuple, error] {
	return h.ShuffledContext(context.Background(), rng)
}

// ShuffledContext is Shuffled honoring cancellation: after ctx is cancelled
// the iterator yields one (nil, ctx.Err()) pair and stops.
func (h *Handle) ShuffledContext(ctx context.Context, rng *rand.Rand) iter.Seq2[Tuple, error] {
	ctx = orBackground(ctx)
	return func(yield func(Tuple, error) bool) {
		pm, ok := h.b.(permuter)
		if !ok {
			yield(nil, fmt.Errorf("shuffled enumeration: %w (kind %s)", ErrUnsupported, h.Kind()))
			return
		}
		p := pm.Permute(rng)
		done := ctx.Done()
		for {
			if done != nil {
				select {
				case <-done:
					yield(nil, ctx.Err())
					return
				default:
				}
			}
			t, ok := p.Next()
			if !ok {
				return
			}
			if !yield(t, nil) {
				return
			}
		}
	}
}

// Enumerate adapts All to the legacy cursor shape, or ErrUnsupported
// without CapEnumerate.
func (h *Handle) Enumerate() (*Enumerator, error) {
	if !h.Has(CapEnumerate) {
		return nil, fmt.Errorf("enumerate: %w (kind %s)", ErrUnsupported, h.Kind())
	}
	var j int64
	return &Enumerator{next: func() (Tuple, bool) {
		t, err := h.b.Access(j)
		if err != nil {
			return nil, false
		}
		j++
		return t, true
	}}, nil
}

// Permute returns the legacy random-permutation cursor (with NextN /
// NextNContext batch draining), or ErrUnsupported without CapEnumerate.
func (h *Handle) Permute(rng *rand.Rand) (*Permutation, error) {
	if pm, ok := h.b.(permuter); ok {
		return pm.Permute(rng), nil
	}
	return nil, fmt.Errorf("permute: %w (kind %s)", ErrUnsupported, h.Kind())
}

// ---------------------------------------------------------------- backends

// raBackend serves a Handle from a RandomAccess. The embedded value
// contributes the shared surface plus the Inverter, Container, Sampler and
// explainer capabilities by promotion.
type raBackend struct {
	*RandomAccess
}

func (raBackend) kind() Kind { return KindCQ }

func (b raBackend) accessBatchContext(ctx context.Context, js []int64, workers int) ([]Tuple, error) {
	return b.c.Index.AccessBatchContext(ctx, js, workers)
}

// Distinct completes the Sampler capability: SampleN draws a lazy
// Fisher–Yates prefix — without replacement.
func (raBackend) Distinct() bool { return true }

// sampleN is the single implementation of distinct sampling for the CQ
// backend; RandomAccess.SampleN delegates here with the default budget.
func (b raBackend) sampleN(k int64, rng *rand.Rand, workers int) ([]Tuple, error) {
	if k < 0 {
		return nil, ErrOutOfBounds
	}
	if n := b.Count(); k > n {
		k = n
	}
	return b.c.Permute(rng).NextN(k, workers), nil
}

// uaBackend serves a Handle from a UnionAccess (no Inverter: mc-UCQ has no
// inverted-access primitive, which is exactly what ErrUnsupported surfaces).
type uaBackend struct {
	*UnionAccess
}

func (uaBackend) kind() Kind { return KindUCQ }

func (b uaBackend) accessBatchContext(ctx context.Context, js []int64, workers int) ([]Tuple, error) {
	return b.UnionAccess.accessBatchContext(ctx, js, workers)
}

func (uaBackend) Distinct() bool { return true }

// sampleN is the single implementation of distinct sampling for the UCQ
// backend; UnionAccess.SampleN delegates here with the default budget.
func (b uaBackend) sampleN(k int64, rng *rand.Rand, workers int) ([]Tuple, error) {
	if k < 0 {
		return nil, ErrOutOfBounds
	}
	if n := b.Count(); k > n {
		k = n
	}
	return b.m.Permute(rng).NextN(k, workers), nil
}

// daBackend serves a Handle from a DynamicAccess: Updater by promotion, no
// permuter (positions shift under updates), batches probed serially under
// the index's shared read lock.
type daBackend struct {
	*DynamicAccess
}

func (daBackend) kind() Kind { return KindDynamic }

func (b daBackend) accessBatchContext(ctx context.Context, js []int64, _ int) ([]Tuple, error) {
	ctx = orBackground(ctx)
	// Fast-fail like the static backends: validate every position against
	// the current count before probing. A concurrent delete can still
	// shrink the count mid-batch, in which case the stale position
	// surfaces as ErrOutOfBounds from the probe itself.
	n := b.DynamicAccess.Count()
	for _, j := range js {
		if j < 0 || j >= n {
			return nil, ErrOutOfBounds
		}
	}
	done := ctx.Done()
	out := make([]Tuple, len(js))
	for i, j := range js {
		if done != nil && i%64 == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		t, err := b.DynamicAccess.Access(j)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// Distinct completes the Sampler capability: dynamic draws are independent —
// with replacement.
func (daBackend) Distinct() bool { return false }

// sampleN ignores the worker budget: dynamic draws probe serially under the
// index's shared read lock.
func (b daBackend) sampleN(k int64, rng *rand.Rand, _ int) ([]Tuple, error) {
	return b.DynamicAccess.SampleN(k, rng)
}

// compactAside rebuilds the dynamic index from its base contents — the
// registry compactor's seam for folding the WAL into a fresh generation.
func (b daBackend) compactAside() (backend, error) {
	da, err := b.DynamicAccess.Rebuild()
	if err != nil {
		return nil, err
	}
	return daBackend{da}, nil
}
