package renum

import (
	"math/rand"
	"testing"
)

func exampleDB() *Database {
	db := NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	r.MustInsert(1, 10)
	r.MustInsert(2, 10)
	r.MustInsert(3, 20)
	s.MustInsert(10, 100)
	s.MustInsert(10, 200)
	s.MustInsert(20, 300)
	return db
}

func chain() *CQ {
	return MustCQ("q", []string{"a", "b", "c"},
		NewAtom("R", V("a"), V("b")),
		NewAtom("S", V("b"), V("c")))
}

func TestPublicRandomAccess(t *testing.T) {
	db := exampleDB()
	ra, err := NewRandomAccess(db, chain())
	if err != nil {
		t.Fatal(err)
	}
	if ra.Count() != 5 {
		t.Fatalf("Count = %d, want 5", ra.Count())
	}
	seen := map[string]bool{}
	for j := int64(0); j < ra.Count(); j++ {
		a, err := ra.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a.Key()] {
			t.Fatal("duplicate")
		}
		seen[a.Key()] = true
		jj, ok := ra.InvertedAccess(a)
		if !ok || jj != j {
			t.Fatal("inverted access mismatch")
		}
		if !ra.Contains(a) {
			t.Fatal("Contains false for answer")
		}
	}
	if _, err := ra.Access(5); !IsOutOfBounds(err) {
		t.Fatalf("out-of-bounds err = %v", err)
	}
	h := ra.Head()
	if len(h) != 3 || h[0] != "a" {
		t.Fatalf("Head = %v", h)
	}
}

func TestPublicEnumeratorAndPermutation(t *testing.T) {
	db := exampleDB()
	ra, err := NewRandomAccess(db, chain())
	if err != nil {
		t.Fatal(err)
	}
	e := ra.Enumerate()
	n := 0
	for {
		if _, ok := e.Next(); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("enumerated %d", n)
	}
	p := ra.Permute(rand.New(rand.NewSource(1)))
	n = 0
	seen := map[string]bool{}
	for {
		a, ok := p.Next()
		if !ok {
			break
		}
		if seen[a.Key()] {
			t.Fatal("permutation repeated an answer")
		}
		seen[a.Key()] = true
		n++
	}
	if n != 5 {
		t.Fatalf("permuted %d", n)
	}
}

func TestPublicClassifiers(t *testing.T) {
	q := chain()
	if !IsAcyclic(q) || !IsFreeConnex(q) {
		t.Fatal("chain misclassified")
	}
	proj := MustCQ("p", []string{"a", "c"},
		NewAtom("R", V("a"), V("b")),
		NewAtom("S", V("b"), V("c")))
	if !IsAcyclic(proj) || IsFreeConnex(proj) {
		t.Fatal("projected chain misclassified")
	}
	if _, err := NewRandomAccess(exampleDB(), proj); err == nil {
		t.Fatal("non-free-connex accepted")
	}
}

func TestPublicUnion(t *testing.T) {
	db := exampleDB()
	q1 := MustCQ("q1", []string{"b"}, NewAtom("R", V("a"), V("b")))
	q2 := MustCQ("q2", []string{"b"}, NewAtom("S", V("b"), V("c")))
	u := MustUCQ("u", q1, q2)

	want, err := EvaluateUCQ(db, u)
	if err != nil {
		t.Fatal(err)
	}

	ro, err := NewRandomOrderUnion(db, u, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	seen := map[string]bool{}
	for {
		a, ok := ro.Next()
		if !ok {
			break
		}
		if seen[a.Key()] {
			t.Fatal("union repeated")
		}
		seen[a.Key()] = true
		got++
	}
	if got != len(want) {
		t.Fatalf("union emitted %d, want %d", got, len(want))
	}
	_ = ro.Rejections()

	ua, err := NewUnionAccess(db, u, true)
	if err != nil {
		t.Fatal(err)
	}
	if ua.Count() != int64(len(want)) {
		t.Fatalf("UnionAccess Count = %d, want %d", ua.Count(), len(want))
	}
	for j := int64(0); j < ua.Count(); j++ {
		a, err := ua.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if !ua.Contains(a) {
			t.Fatal("Contains false")
		}
	}
	p := ua.Permute(rand.New(rand.NewSource(3)))
	n := 0
	for {
		if _, ok := p.Next(); !ok {
			break
		}
		n++
	}
	if int64(n) != ua.Count() {
		t.Fatal("union permutation incomplete")
	}
}

func TestPublicEvaluateCyclicFallback(t *testing.T) {
	db := NewDatabase()
	r := db.MustCreate("R", "x", "y")
	s := db.MustCreate("S", "y", "z")
	u := db.MustCreate("T", "x", "z")
	r.MustInsert(1, 2)
	s.MustInsert(2, 3)
	u.MustInsert(1, 3)
	tri := MustCQ("tri", []string{"x", "y", "z"},
		NewAtom("R", V("x"), V("y")),
		NewAtom("S", V("y"), V("z")),
		NewAtom("T", V("x"), V("z")))
	if _, err := NewRandomAccess(db, tri); err == nil {
		t.Fatal("cyclic accepted by index")
	}
	ans, err := Evaluate(db, tri)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("triangle answers = %v", ans)
	}
}

func TestPublicPage(t *testing.T) {
	db := exampleDB()
	ra, err := NewRandomAccess(db, chain())
	if err != nil {
		t.Fatal(err)
	}
	// Count is 5; pages of 2: [0,1], [2,3], [4].
	var all []Tuple
	for off := int64(0); ; off += 2 {
		page, err := ra.Page(off, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		all = append(all, page...)
	}
	if len(all) != 5 {
		t.Fatalf("paged %d answers", len(all))
	}
	// Pages must agree with direct access.
	for j, tup := range all {
		want, _ := ra.Access(int64(j))
		if !tup.Equal(want) {
			t.Fatalf("page order mismatch at %d", j)
		}
	}
	if _, err := ra.Page(-1, 2); !IsOutOfBounds(err) {
		t.Fatal("negative offset accepted")
	}
	if _, err := ra.Page(0, -1); !IsOutOfBounds(err) {
		t.Fatal("negative limit accepted")
	}
	if page, err := ra.Page(99, 5); err != nil || page != nil {
		t.Fatal("past-the-end page must be empty")
	}
	if s := ra.Explain(); s == "" {
		t.Fatal("Explain empty")
	}
}

func TestPublicSampleK(t *testing.T) {
	db := exampleDB()
	ra, err := NewRandomAccess(db, chain())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	got, err := ra.SampleK(3, rng)
	if err != nil || len(got) != 3 {
		t.Fatalf("SampleK(3) = %d answers, %v", len(got), err)
	}
	seen := map[string]bool{}
	for _, tup := range got {
		if seen[tup.Key()] {
			t.Fatal("SampleK repeated an answer")
		}
		seen[tup.Key()] = true
		if !ra.Contains(tup) {
			t.Fatal("SampleK returned a non-answer")
		}
	}
	// k beyond Count returns everything.
	all, err := ra.SampleK(100, rng)
	if err != nil || int64(len(all)) != ra.Count() {
		t.Fatalf("SampleK(100) = %d answers", len(all))
	}
	if _, err := ra.SampleK(-1, rng); !IsOutOfBounds(err) {
		t.Fatal("negative k accepted")
	}
	if zero, err := ra.SampleK(0, rng); err != nil || len(zero) != 0 {
		t.Fatal("SampleK(0) wrong")
	}
}

func TestPublicCanonicalOrder(t *testing.T) {
	// Same facts, two different insertion orders → identical enumerations
	// under the canonical index, (almost surely) different under the plain
	// index.
	build := func(perm []int) *Database {
		facts := [][2]Value{{1, 10}, {2, 10}, {3, 20}, {4, 20}, {5, 10}}
		db := NewDatabase()
		r := db.MustCreate("R", "a", "b")
		s := db.MustCreate("S", "b", "c")
		for _, i := range perm {
			r.MustInsert(facts[i][0], facts[i][1])
		}
		s.MustInsert(10, 100)
		s.MustInsert(20, 200)
		s.MustInsert(10, 300)
		return db
	}
	db1 := build([]int{0, 1, 2, 3, 4})
	db2 := build([]int{4, 2, 0, 3, 1})
	q := chain()

	ra1, err := NewRandomAccessCanonical(db1, q)
	if err != nil {
		t.Fatal(err)
	}
	ra2, err := NewRandomAccessCanonical(db2, q)
	if err != nil {
		t.Fatal(err)
	}
	if ra1.Count() != ra2.Count() {
		t.Fatal("counts differ")
	}
	for j := int64(0); j < ra1.Count(); j++ {
		a1, _ := ra1.Access(j)
		a2, _ := ra2.Access(j)
		if !a1.Equal(a2) {
			t.Fatalf("canonical order differs at %d: %v vs %v", j, a1, a2)
		}
	}
	// The plain index over db1 vs db2 differs somewhere (sanity that the
	// canonical option actually changes behaviour).
	p1, _ := NewRandomAccess(db1, q)
	p2, _ := NewRandomAccess(db2, q)
	same := true
	for j := int64(0); j < p1.Count(); j++ {
		a1, _ := p1.Access(j)
		a2, _ := p2.Access(j)
		if !a1.Equal(a2) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("plain index order did not depend on insertion order; canonical option is vacuous")
	}
}

// TestPublicOrderSpecLexicographic: under the canonical option, the
// enumeration order must be exactly the lexicographic order of the answers
// projected onto OrderSpec.
func TestPublicOrderSpecLexicographic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db := NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	u := db.MustCreate("U", "b", "d")
	for i := 0; i < 60; i++ {
		r.MustInsert(Value(rng.Intn(9)), Value(rng.Intn(4)))
		s.MustInsert(Value(rng.Intn(4)), Value(rng.Intn(9)))
		u.MustInsert(Value(rng.Intn(4)), Value(rng.Intn(9)))
	}
	q := MustCQ("q", []string{"a", "b", "c", "d"},
		NewAtom("R", V("a"), V("b")),
		NewAtom("S", V("b"), V("c")),
		NewAtom("U", V("b"), V("d")))
	ra, err := NewRandomAccessCanonical(db, q)
	if err != nil {
		t.Fatal(err)
	}
	spec := ra.OrderSpec()
	if len(spec) != 4 {
		t.Fatalf("OrderSpec = %v", spec)
	}
	headPos := map[string]int{}
	for i, h := range q.Head {
		headPos[h] = i
	}
	project := func(tup Tuple) Tuple {
		out := make(Tuple, len(spec))
		for i, v := range spec {
			out[i] = tup[headPos[v]]
		}
		return out
	}
	var prev Tuple
	for j := int64(0); j < ra.Count(); j++ {
		a, err := ra.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		cur := project(a)
		if prev != nil {
			for k := range cur {
				if cur[k] != prev[k] {
					if cur[k] < prev[k] {
						t.Fatalf("order regression at %d: %v after %v (spec %v)", j, cur, prev, spec)
					}
					break
				}
			}
		}
		prev = cur
	}
}

func TestPublicConstants(t *testing.T) {
	db := exampleDB()
	q := MustCQ("q", []string{"b"}, NewAtom("R", C(1), V("b")))
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Count() != 1 {
		t.Fatalf("Count = %d", ra.Count())
	}
	a, _ := ra.Access(0)
	if a[0] != 10 {
		t.Fatalf("answer = %v", a)
	}
}
