// Command renum loads relations from CSV files and answers a conjunctive
// query (or a union of CQs) with the library's enumeration algorithms.
//
// Each -table FILE registers a relation: the file's base name (minus .csv) is
// the relation name, the header row is the schema, and every cell is
// dictionary-interned (numbers included), so constants in queries must be
// single-quoted: r(x, '42'). (The CSV dialect and program grouping rules are
// shared with the renumd daemon via internal/load.)
//
// Usage:
//
//	renum -table r.csv -table s.csv -query 'Q(x,z,y) :- r(x,y), s(y,z).' -mode random -k 10
//	renum -table r.csv -query 'Q(x) :- r(x, y).' -mode count
//	renum -table r.csv -query "Q(x,y) :- r(x,'42')." -mode access -k 3
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode batch -js 5,0,5
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode page -offset 1000 -k 50 -workers 4
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode explain
//
// Modes: count, enum (deterministic order), random (uniform random order),
// sample (k distinct uniform answers, probes fanned out), access (print the
// -k-th answer), batch (print the -js positions via AccessBatch), page
// (PageParallel rows offset..offset+k-1), explain (print the compiled plan:
// the reduced full-join tree with node schemas, cardinalities and join
// attributes — CQs only). Multiple rules with the same head form a UCQ
// (modes count/enum/batch use the mc-UCQ structure; random uses REnum(UCQ)).
// -workers caps the per-call fan-out of the batch/page modes (0 = all
// cores).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/load"
)

type tableList []string

func (t *tableList) String() string     { return strings.Join(*t, ",") }
func (t *tableList) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the CLI is testable
// end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("renum", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var tables tableList
	fs.Var(&tables, "table", "CSV file to load as a relation (repeatable)")
	var (
		queryText = fs.String("query", "", "datalog rule(s), e.g. 'Q(x,y) :- r(x,y).'")
		mode      = fs.String("mode", "random", "count | enum | random | sample | access | batch | page | explain")
		k         = fs.Int64("k", 10, "answers to print (random/enum) or position (access)")
		seed      = fs.Int64("seed", 1, "random seed")
		offset    = fs.Int64("offset", 0, "first row of the page (mode page)")
		workers   = fs.Int("workers", 0, "goroutines for batched probes (0 = all cores)")
		jsArg     = fs.String("js", "", "comma-separated answer positions (mode batch)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *queryText == "" || len(tables) == 0 {
		fmt.Fprintln(stderr, "renum: -query and at least one -table are required")
		fs.Usage()
		return 2
	}

	db := renum.NewDatabase()
	if err := load.Tables(db, tables); err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}

	q, err := load.One(db.Dict(), *queryText)
	if err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}

	rng := rand.New(rand.NewSource(*seed))
	if q.CQ != nil {
		err = runCQ(stdout, db, q.CQ, *mode, *k, *offset, *jsArg, *workers, rng)
	} else {
		err = runUCQ(stdout, db, q.UCQ, *mode, *k, *jsArg, *workers, rng)
	}
	if err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}
	return 0
}

// parsePositions parses the -js flag ("3,0,17").
func parsePositions(jsArg string) ([]int64, error) {
	var js []int64
	for _, part := range strings.Split(jsArg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		j, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-js: %w", err)
		}
		js = append(js, j)
	}
	return js, nil
}

func runCQ(out io.Writer, db *renum.Database, q *renum.CQ, mode string, k, offset int64, jsArg string, workers int, rng *rand.Rand) error {
	ra, err := renum.NewRandomAccess(db, q)
	if err != nil {
		return err
	}
	switch mode {
	case "count":
		fmt.Fprintln(out, ra.Count())
	case "explain":
		fmt.Fprint(out, ra.Explain())
	case "access":
		t, err := ra.Access(k)
		if err != nil {
			return err
		}
		printAnswer(out, db, t)
	case "enum":
		e := ra.Enumerate()
		for i := int64(0); i < k; i++ {
			t, ok := e.Next()
			if !ok {
				break
			}
			printAnswer(out, db, t)
		}
	case "random":
		p := ra.Permute(rng)
		for i := int64(0); i < k; i++ {
			t, ok := p.Next()
			if !ok {
				break
			}
			printAnswer(out, db, t)
		}
	case "sample":
		// SampleN = SampleK with the probes fanned out across -workers.
		ts, err := ra.SampleN(k, rng)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	case "batch":
		js, err := parsePositions(jsArg)
		if err != nil {
			return err
		}
		ts, err := ra.AccessBatch(js, workers)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	case "page":
		ts, err := ra.PageParallel(offset, k, workers)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

func runUCQ(out io.Writer, db *renum.Database, u *renum.UCQ, mode string, k int64, jsArg string, workers int, rng *rand.Rand) error {
	switch mode {
	case "count", "enum", "access", "batch":
		ua, err := renum.NewUnionAccess(db, u, false)
		if err != nil {
			return err
		}
		switch mode {
		case "count":
			fmt.Fprintln(out, ua.Count())
		case "access":
			t, err := ua.Access(k)
			if err != nil {
				return err
			}
			printAnswer(out, db, t)
		case "enum":
			for j := int64(0); j < k && j < ua.Count(); j++ {
				t, err := ua.Access(j)
				if err != nil {
					return err
				}
				printAnswer(out, db, t)
			}
		case "batch":
			js, err := parsePositions(jsArg)
			if err != nil {
				return err
			}
			ts, err := ua.AccessBatch(js, workers)
			if err != nil {
				return err
			}
			for _, t := range ts {
				printAnswer(out, db, t)
			}
		}
	case "random":
		e, err := renum.NewRandomOrderUnion(db, u, rng)
		if err != nil {
			return err
		}
		for i := int64(0); i < k; i++ {
			t, ok := e.Next()
			if !ok {
				break
			}
			printAnswer(out, db, t)
		}
	default:
		return fmt.Errorf("unknown mode %q (unions support count, enum, random, access, batch)", mode)
	}
	return nil
}

// printAnswer renders values through the dictionary.
func printAnswer(out io.Writer, db *renum.Database, t renum.Tuple) {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = db.Dict().String(v)
	}
	fmt.Fprintln(out, strings.Join(parts, ", "))
}
