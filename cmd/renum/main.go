// Command renum loads relations from CSV files and answers a conjunctive
// query (or a union of CQs) with the library's enumeration algorithms.
//
// Each -table FILE registers a relation: the file's base name (minus .csv) is
// the relation name, the header row is the schema, and every cell is
// dictionary-interned (numbers included), so constants in queries must be
// single-quoted: r(x, '42'). (The CSV dialect and program grouping rules are
// shared with the renumd daemon via internal/load.)
//
// Usage:
//
//	renum -table r.csv -table s.csv -query 'Q(x,z,y) :- r(x,y), s(y,z).' -mode random -k 10
//	renum -table r.csv -query 'Q(x) :- r(x, y).' -mode count
//	renum -table r.csv -query "Q(x,y) :- r(x,'42')." -mode access -k 3
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode batch -js 5,0,5
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode page -offset 1000 -k 50 -workers 4
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode explain
//
// Modes: count, enum (deterministic order), random (uniform random order),
// sample (k distinct uniform answers, probes fanned out), access (print the
// -k-th answer), batch (print the -js positions via AccessBatch), page
// (rows offset..offset+k-1), explain (print the compiled plan — a
// capability of CQ indexes only).
//
// The CLI is a thin shell over renum.Open: one handle serves every mode,
// and modes that need an optional capability (sample, explain) discover it
// on the handle — a query whose backend lacks the capability fails with the
// library's ErrUnsupported text. Multiple rules with the same head form a
// UCQ served by the mc-UCQ handle; mode random on a union instead uses
// REnum(UCQ) (Algorithm 5), which works for every union of free-connex CQs,
// including ones the mc-UCQ handle rejects as incompatible. -workers caps
// both the index build and the per-call fan-out of batched probes (0 = all
// cores).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/load"
)

type tableList []string

func (t *tableList) String() string     { return strings.Join(*t, ",") }
func (t *tableList) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the CLI is testable
// end to end.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("renum", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var tables tableList
	fs.Var(&tables, "table", "CSV file to load as a relation (repeatable)")
	var (
		queryText = fs.String("query", "", "datalog rule(s), e.g. 'Q(x,y) :- r(x,y).'")
		mode      = fs.String("mode", "random", "count | enum | random | sample | access | batch | page | explain")
		k         = fs.Int64("k", 10, "answers to print (random/enum) or position (access)")
		seed      = fs.Int64("seed", 1, "random seed")
		offset    = fs.Int64("offset", 0, "first row of the page (mode page)")
		workers   = fs.Int("workers", 0, "goroutines for index build and batched probes (0 = all cores)")
		jsArg     = fs.String("js", "", "comma-separated answer positions (mode batch)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *queryText == "" || len(tables) == 0 {
		fmt.Fprintln(stderr, "renum: -query and at least one -table are required")
		fs.Usage()
		return 2
	}

	db := renum.NewDatabase()
	if err := load.Tables(db, tables); err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}

	q, err := load.One(db.Dict(), *queryText)
	if err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}

	rng := rand.New(rand.NewSource(*seed))
	if q.UCQ != nil && *mode == "random" {
		// Algorithm 5 rather than the mc-UCQ handle: random-order
		// enumeration of *any* union of free-connex CQs, with no mutual
		// compatibility requirement.
		err = runUnionRandom(stdout, db, q.UCQ, *k, rng)
	} else {
		err = runQuery(stdout, db, q, *mode, *k, *offset, *jsArg, *workers, rng)
	}
	if err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}
	return 0
}

// parsePositions parses the -js flag ("3,0,17").
func parsePositions(jsArg string) ([]int64, error) {
	var js []int64
	for _, part := range strings.Split(jsArg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		j, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-js: %w", err)
		}
		js = append(js, j)
	}
	return js, nil
}

// runQuery serves every mode from one renum.Handle — CQs and unions take
// the same code path; capability misses surface as the library's
// ErrUnsupported errors.
func runQuery(out io.Writer, db *renum.Database, q load.Query, mode string, k, offset int64, jsArg string, workers int, rng *rand.Rand) error {
	h, err := renum.Open(db, q.Src(), renum.WithWorkers(workers))
	if err != nil {
		return err
	}
	switch mode {
	case "count":
		fmt.Fprintln(out, h.Count())
	case "explain":
		plan, err := h.Explain()
		if err != nil {
			return err
		}
		fmt.Fprint(out, plan)
	case "access":
		t, err := h.Access(k)
		if err != nil {
			return err
		}
		printAnswer(out, db, t)
	case "enum":
		printed := int64(0)
		for t, err := range h.All() {
			if err != nil {
				return err
			}
			if printed >= k {
				break
			}
			printAnswer(out, db, t)
			printed++
		}
	case "random":
		printed := int64(0)
		for t, err := range h.Shuffled(rng) {
			if err != nil {
				return err
			}
			if printed >= k {
				break
			}
			printAnswer(out, db, t)
			printed++
		}
	case "sample":
		smp, err := h.Sampler()
		if err != nil {
			return err
		}
		ts, err := smp.SampleN(k, rng)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	case "batch":
		js, err := parsePositions(jsArg)
		if err != nil {
			return err
		}
		ts, err := h.AccessBatch(js)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	case "page":
		ts, err := h.Page(offset, k)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

// runUnionRandom drains k answers of REnum(UCQ) (Algorithm 5).
func runUnionRandom(out io.Writer, db *renum.Database, u *renum.UCQ, k int64, rng *rand.Rand) error {
	e, err := renum.NewRandomOrderUnion(db, u, rng)
	if err != nil {
		return err
	}
	for i := int64(0); i < k; i++ {
		t, ok := e.Next()
		if !ok {
			break
		}
		printAnswer(out, db, t)
	}
	return nil
}

// printAnswer renders values through the dictionary.
func printAnswer(out io.Writer, db *renum.Database, t renum.Tuple) {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = db.Dict().String(v)
	}
	fmt.Fprintln(out, strings.Join(parts, ", "))
}
