// Command renum loads relations from CSV files and answers a conjunctive
// query (or a union of CQs) with the library's enumeration algorithms.
//
// Each -table FILE registers a relation: the file's base name (minus .csv) is
// the relation name, the header row is the schema, and every cell is
// dictionary-interned (numbers included), so constants in queries must be
// single-quoted: r(x, '42').
//
// Usage:
//
//	renum -table r.csv -table s.csv -query 'Q(x,z,y) :- r(x,y), s(y,z).' -mode random -k 10
//	renum -table r.csv -query 'Q(x) :- r(x, y).' -mode count
//	renum -table r.csv -query "Q(x,y) :- r(x,'42')." -mode access -k 3
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode batch -js 5,0,5
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode page -offset 1000 -k 50 -workers 4
//
// Modes: count, enum (deterministic order), random (uniform random order),
// sample (k distinct uniform answers, probes fanned out), access (print the
// -k-th answer), batch (print the -js positions via AccessBatch), page
// (PageParallel rows offset..offset+k-1). Multiple rules with the same head
// form a UCQ (modes count/enum/batch use the mc-UCQ structure; random uses
// REnum(UCQ)). -workers caps the per-call fan-out of the batch/page modes
// (0 = all cores).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro"
	"repro/internal/parser"
)

type tableList []string

func (t *tableList) String() string     { return strings.Join(*t, ",") }
func (t *tableList) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	var tables tableList
	flag.Var(&tables, "table", "CSV file to load as a relation (repeatable)")
	var (
		queryText = flag.String("query", "", "datalog rule(s), e.g. 'Q(x,y) :- r(x,y).'")
		mode      = flag.String("mode", "random", "count | enum | random | sample | access | batch | page | explain")
		k         = flag.Int64("k", 10, "answers to print (random/enum) or position (access)")
		seed      = flag.Int64("seed", 1, "random seed")
		offset    = flag.Int64("offset", 0, "first row of the page (mode page)")
		workers   = flag.Int("workers", 0, "goroutines for batched probes (0 = all cores)")
		jsArg     = flag.String("js", "", "comma-separated answer positions (mode batch)")
	)
	flag.Parse()

	if *queryText == "" || len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "renum: -query and at least one -table are required")
		flag.Usage()
		os.Exit(2)
	}

	db := renum.NewDatabase()
	for _, path := range tables {
		if err := loadCSV(db, path); err != nil {
			fatal(err)
		}
	}

	rules, err := parser.ParseProgram(*queryText, db.Dict())
	if err != nil {
		fatal(err)
	}

	rng := rand.New(rand.NewSource(*seed))
	if len(rules) == 1 {
		runCQ(db, rules[0], *mode, *k, *offset, *jsArg, *workers, rng)
		return
	}
	u, err := parser.ParseUCQ(*queryText, db.Dict())
	if err != nil {
		fatal(err)
	}
	runUCQ(db, u, *mode, *k, *jsArg, *workers, rng)
}

// parsePositions parses the -js flag ("3,0,17").
func parsePositions(jsArg string) []int64 {
	var js []int64
	for _, part := range strings.Split(jsArg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		j, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("-js: %w", err))
		}
		js = append(js, j)
	}
	return js
}

func runCQ(db *renum.Database, q *renum.CQ, mode string, k, offset int64, jsArg string, workers int, rng *rand.Rand) {
	ra, err := renum.NewRandomAccess(db, q)
	if err != nil {
		fatal(err)
	}
	switch mode {
	case "count":
		fmt.Println(ra.Count())
	case "explain":
		fmt.Print(ra.Explain())
	case "access":
		t, err := ra.Access(k)
		if err != nil {
			fatal(err)
		}
		printAnswer(db, ra.Head(), t)
	case "enum":
		e := ra.Enumerate()
		for i := int64(0); i < k; i++ {
			t, ok := e.Next()
			if !ok {
				break
			}
			printAnswer(db, ra.Head(), t)
		}
	case "random":
		p := ra.Permute(rng)
		for i := int64(0); i < k; i++ {
			t, ok := p.Next()
			if !ok {
				break
			}
			printAnswer(db, ra.Head(), t)
		}
	case "sample":
		// SampleN = SampleK with the probes fanned out across -workers.
		ts, err := ra.SampleN(k, rng)
		if err != nil {
			fatal(err)
		}
		for _, t := range ts {
			printAnswer(db, ra.Head(), t)
		}
	case "batch":
		ts, err := ra.AccessBatch(parsePositions(jsArg), workers)
		if err != nil {
			fatal(err)
		}
		for _, t := range ts {
			printAnswer(db, ra.Head(), t)
		}
	case "page":
		ts, err := ra.PageParallel(offset, k, workers)
		if err != nil {
			fatal(err)
		}
		for _, t := range ts {
			printAnswer(db, ra.Head(), t)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", mode))
	}
}

func runUCQ(db *renum.Database, u *renum.UCQ, mode string, k int64, jsArg string, workers int, rng *rand.Rand) {
	head := u.Disjuncts[0].Head
	switch mode {
	case "count", "enum", "access", "batch":
		ua, err := renum.NewUnionAccess(db, u, false)
		if err != nil {
			fatal(err)
		}
		switch mode {
		case "count":
			fmt.Println(ua.Count())
		case "access":
			t, err := ua.Access(k)
			if err != nil {
				fatal(err)
			}
			printAnswer(db, head, t)
		case "enum":
			for j := int64(0); j < k && j < ua.Count(); j++ {
				t, err := ua.Access(j)
				if err != nil {
					fatal(err)
				}
				printAnswer(db, head, t)
			}
		case "batch":
			ts, err := ua.AccessBatch(parsePositions(jsArg), workers)
			if err != nil {
				fatal(err)
			}
			for _, t := range ts {
				printAnswer(db, head, t)
			}
		}
	case "random":
		e, err := renum.NewRandomOrderUnion(db, u, rng)
		if err != nil {
			fatal(err)
		}
		for i := int64(0); i < k; i++ {
			t, ok := e.Next()
			if !ok {
				break
			}
			printAnswer(db, head, t)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", mode))
	}
}

// loadCSV registers one CSV file (header = schema) as a relation named after
// the file.
func loadCSV(db *renum.Database, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd := csv.NewReader(f)
	rows, err := rd.ReadAll()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) < 1 {
		return fmt.Errorf("%s: empty file", path)
	}
	name := strings.TrimSuffix(filepath.Base(path), ".csv")
	rel, err := db.Create(name, rows[0]...)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	for _, row := range rows[1:] {
		tup := make(renum.Tuple, len(row))
		for i, cell := range row {
			tup[i] = db.Intern(cell)
		}
		if _, err := rel.Insert(tup); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

// printAnswer renders values through the dictionary.
func printAnswer(db *renum.Database, head []string, t renum.Tuple) {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = db.Dict().String(v)
	}
	fmt.Printf("%s\n", strings.Join(parts, ", "))
	_ = head
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "renum: %v\n", err)
	os.Exit(1)
}
