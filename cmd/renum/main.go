// Command renum loads relations from CSV files and answers a conjunctive
// query (or a union of CQs) with the library's enumeration algorithms.
//
// Each -table FILE registers a relation: the file's base name (minus .csv) is
// the relation name, the header row is the schema, and every cell is
// dictionary-interned (numbers included), so constants in queries must be
// single-quoted: r(x, '42'). (The CSV dialect and program grouping rules are
// shared with the renumd daemon via internal/load.)
//
// Usage:
//
//	renum -table r.csv -table s.csv -query 'Q(x,z,y) :- r(x,y), s(y,z).' -mode random -k 10
//	renum -table r.csv -query 'Q(x) :- r(x, y).' -mode count
//	renum -table r.csv -query "Q(x,y) :- r(x,'42')." -mode access -k 3
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode batch -js 5,0,5
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode page -offset 1000 -k 50 -workers 4
//	renum -table r.csv -query 'Q(x,y) :- r(x,y).' -mode explain
//
// Modes: count, enum (deterministic order), random (uniform random order),
// sample (k distinct uniform answers, probes fanned out), access (print the
// -k-th answer), batch (print the -js positions via AccessBatch), page
// (rows offset..offset+k-1), explain (print the compiled plan — a
// capability of CQ indexes only).
//
// The CLI is a thin shell over renum.Open: one handle serves every mode,
// and modes that need an optional capability (sample, explain) discover it
// on the handle — a query whose backend lacks the capability fails with the
// library's ErrUnsupported text. Multiple rules with the same head form a
// UCQ served by the mc-UCQ handle; mode random on a union instead uses
// REnum(UCQ) (Algorithm 5), which works for every union of free-connex CQs,
// including ones the mc-UCQ handle rejects as incompatible. -workers caps
// both the index build and the per-call fan-out of batched probes (0 = all
// cores).
//
// # Snapshots
//
// The build subcommand compiles tables + programs once and persists the
// whole catalog (dictionary, relations, every query's index) into the
// versioned binary snapshot format:
//
//	renum build -table r.csv -table s.csv -query 'Q(x,y,z) :- r(x,y), s(y,z).' -o q.snap
//
// Any later invocation serves every mode straight from the file — cold
// start is open+validate instead of load+preprocess:
//
//	renum -snapshot q.snap -mode count
//	renum -snapshot q.snap -name Q -mode page -offset 1000 -k 50
//
// -name picks the entry when the snapshot holds several queries (optional
// for single-entry snapshots). On a union entry, mode random enumerates via
// the restored mc-UCQ permutation (REnum(mcUCQ)) — the Algorithm 5
// enumerator needs fresh preprocessing, which is what a snapshot exists to
// avoid. Mode explain is unavailable on restored entries (the compiled plan
// is not persisted).
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/load"
)

type tableList []string

func (t *tableList) String() string     { return strings.Join(*t, ",") }
func (t *tableList) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the CLI is testable
// end to end.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "build" {
		return runBuild(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("renum", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var tables tableList
	fs.Var(&tables, "table", "CSV file to load as a relation (repeatable)")
	var (
		queryText = fs.String("query", "", "datalog rule(s), e.g. 'Q(x,y) :- r(x,y).'")
		snapFile  = fs.String("snapshot", "", "serve from a snapshot built with `renum build` instead of -table/-query")
		name      = fs.String("name", "", "query to serve from the snapshot (default: its only entry)")
		mode      = fs.String("mode", "random", "count | enum | random | sample | access | batch | page | explain")
		k         = fs.Int64("k", 10, "answers to print (random/enum) or position (access)")
		seed      = fs.Int64("seed", 1, "random seed")
		offset    = fs.Int64("offset", 0, "first row of the page (mode page)")
		workers   = fs.Int("workers", 0, "goroutines for index build and batched probes (0 = all cores)")
		jsArg     = fs.String("js", "", "comma-separated answer positions (mode batch)")
		plannerMo = fs.String("planner", "cost", "join-tree planner: cost (pick the cheapest candidate tree) | off (as-parsed order, byte-identical to older builds)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	planner, err := renum.ParsePlannerMode(*plannerMo)
	if err != nil {
		fmt.Fprintln(stderr, err) // already carries the renum: prefix
		return 2
	}

	rng := rand.New(rand.NewSource(*seed))

	if *snapFile != "" {
		if *queryText != "" || len(tables) > 0 {
			fmt.Fprintln(stderr, "renum: -snapshot replaces -table/-query (the snapshot holds both data and compiled queries)")
			return 2
		}
		if err := runFromSnapshot(stdout, *snapFile, *name, *mode, *k, *offset, *jsArg, *workers, rng); err != nil {
			fmt.Fprintf(stderr, "renum: %v\n", err)
			return 1
		}
		return 0
	}

	if *queryText == "" || len(tables) == 0 {
		fmt.Fprintln(stderr, "renum: -query and at least one -table are required (or -snapshot FILE)")
		fs.Usage()
		return 2
	}

	db := renum.NewDatabase()
	if err := load.Tables(db, tables); err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}

	q, err := load.One(db.Dict(), *queryText)
	if err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}

	if q.UCQ != nil && *mode == "random" {
		// Algorithm 5 rather than the mc-UCQ handle: random-order
		// enumeration of *any* union of free-connex CQs, with no mutual
		// compatibility requirement.
		err = runUnionRandom(stdout, db, q.UCQ, *k, rng)
	} else {
		err = runQuery(stdout, db, q, *mode, *k, *offset, *jsArg, *workers, planner, rng)
	}
	if err != nil {
		fmt.Fprintf(stderr, "renum: %v\n", err)
		return 1
	}
	return 0
}

// runBuild is the `renum build` subcommand: compile once, persist the whole
// catalog, serve many times (from this CLI via -snapshot, or from renumd
// via -snapshot-dir).
func runBuild(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("renum build", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var tables tableList
	var queries tableList
	fs.Var(&tables, "table", "CSV file to load as a relation (repeatable)")
	fs.Var(&queries, "query", "datalog program to compile (repeatable; rules grouped by head)")
	var (
		out       = fs.String("o", "", "output snapshot file (required)")
		workers   = fs.Int("workers", 0, "goroutines for index construction (0 = all cores)")
		canonical = fs.Bool("canonical", false, "content-determined (sorted) enumeration order")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" || len(tables) == 0 || len(queries) == 0 {
		fmt.Fprintln(stderr, "renum build: -o, -query and at least one -table are required")
		fs.Usage()
		return 2
	}
	db := renum.NewDatabase()
	if err := load.Tables(db, tables); err != nil {
		fmt.Fprintf(stderr, "renum build: %v\n", err)
		return 1
	}
	entries, err := load.Compile(db, queries, *workers, *canonical)
	if err != nil {
		fmt.Fprintf(stderr, "renum build: %v\n", err)
		return 1
	}
	if err := renum.SaveSnapshot(*out, db, 0, entries); err != nil {
		fmt.Fprintf(stderr, "renum build: %v\n", err)
		return 1
	}
	st, err := os.Stat(*out)
	if err != nil {
		fmt.Fprintf(stderr, "renum build: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "renum build: wrote %s (%d bytes, format v%d)\n", *out, st.Size(), renum.SnapshotVersion)
	for _, e := range entries {
		fmt.Fprintf(stdout, "renum build: compiled %s (%s, %d answers)\n", e.Name, e.H.Kind(), e.H.Count())
	}
	return 0
}

// runFromSnapshot serves one mode from a catalog snapshot: cold start is
// open+validate, no CSV parsing and no preprocessing.
func runFromSnapshot(out io.Writer, path, name, mode string, k, offset int64, jsArg string, workers int, rng *rand.Rand) error {
	cat, err := renum.OpenSnapshot(path, renum.WithWorkers(workers))
	if err != nil {
		return err
	}
	defer cat.Close()
	entries := cat.Entries()
	var h *renum.Handle
	switch {
	case name != "":
		for _, e := range entries {
			if e.Name == name {
				h = e.H
				break
			}
		}
		if h == nil {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = e.Name
			}
			return fmt.Errorf("snapshot has no query %q (entries: %s)", name, strings.Join(names, ", "))
		}
	case len(entries) == 1:
		h = entries[0].H
	default:
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name
		}
		return fmt.Errorf("snapshot holds %d queries (%s): pick one with -name", len(entries), strings.Join(names, ", "))
	}
	return runModes(out, cat.DB(), h, mode, k, offset, jsArg, rng)
}

// parsePositions parses the -js flag ("3,0,17").
func parsePositions(jsArg string) ([]int64, error) {
	var js []int64
	for _, part := range strings.Split(jsArg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		j, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-js: %w", err)
		}
		js = append(js, j)
	}
	return js, nil
}

// runQuery serves every mode from one renum.Handle — CQs and unions take
// the same code path; capability misses surface as the library's
// ErrUnsupported errors.
func runQuery(out io.Writer, db *renum.Database, q load.Query, mode string, k, offset int64, jsArg string, workers int, planner renum.PlannerMode, rng *rand.Rand) error {
	h, err := renum.Open(db, q.Src(), renum.WithWorkers(workers), renum.WithPlanner(planner))
	if err != nil {
		return err
	}
	return runModes(out, db, h, mode, k, offset, jsArg, rng)
}

// runModes dispatches one mode against a prepared handle — built or
// restored from a snapshot, the dispatch is identical.
func runModes(out io.Writer, db *renum.Database, h *renum.Handle, mode string, k, offset int64, jsArg string, rng *rand.Rand) error {
	switch mode {
	case "count":
		fmt.Fprintln(out, h.Count())
	case "explain":
		plan, err := h.Explain()
		if err != nil {
			return err
		}
		fmt.Fprint(out, plan)
	case "access":
		t, err := h.Access(k)
		if err != nil {
			return err
		}
		printAnswer(out, db, t)
	case "enum":
		printed := int64(0)
		for t, err := range h.All() {
			if err != nil {
				return err
			}
			if printed >= k {
				break
			}
			printAnswer(out, db, t)
			printed++
		}
	case "random":
		printed := int64(0)
		for t, err := range h.Shuffled(rng) {
			if err != nil {
				return err
			}
			if printed >= k {
				break
			}
			printAnswer(out, db, t)
			printed++
		}
	case "sample":
		smp, err := h.Sampler()
		if err != nil {
			return err
		}
		ts, err := smp.SampleN(k, rng)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	case "batch":
		js, err := parsePositions(jsArg)
		if err != nil {
			return err
		}
		ts, err := h.AccessBatch(js)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	case "page":
		ts, err := h.Page(offset, k)
		if err != nil {
			return err
		}
		for _, t := range ts {
			printAnswer(out, db, t)
		}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
	return nil
}

// runUnionRandom drains k answers of REnum(UCQ) (Algorithm 5).
func runUnionRandom(out io.Writer, db *renum.Database, u *renum.UCQ, k int64, rng *rand.Rand) error {
	e, err := renum.NewRandomOrderUnion(db, u, rng)
	if err != nil {
		return err
	}
	for i := int64(0); i < k; i++ {
		t, ok := e.Next()
		if !ok {
			break
		}
		printAnswer(out, db, t)
	}
	return nil
}

// printAnswer renders values through the dictionary.
func printAnswer(out io.Writer, db *renum.Database, t renum.Tuple) {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = db.Dict().String(v)
	}
	fmt.Fprintln(out, strings.Join(parts, ", "))
}
