package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBuildAndServeFromSnapshot drives the build-once/serve-many split end
// to end through the CLI: `renum build` persists the catalog, and every
// serving mode run from -snapshot must print byte-identical output to the
// same mode run from -table/-query (the goldens of TestModesGolden pin that
// side, so this pins snapshot parity transitively).
func TestBuildAndServeFromSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "q.snap")
	out, errOut, code := runCLI(t, append([]string{"build"},
		append(tableArgs(), "-query", testQ, "-o", snap)...)...)
	if code != 0 {
		t.Fatalf("build exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "compiled Q (cq, 6 answers)") {
		t.Fatalf("build output: %q", out)
	}
	if st, err := os.Stat(snap); err != nil || st.Size() == 0 {
		t.Fatalf("snapshot file: %v (%v)", st, err)
	}

	modes := [][]string{
		{"-mode", "count"},
		{"-mode", "enum", "-k", "3"},
		{"-mode", "access", "-k", "3"},
		{"-mode", "random", "-k", "6", "-seed", "1"},
		{"-mode", "sample", "-k", "3", "-seed", "1"},
		{"-mode", "batch", "-js", "5,0,5"},
		{"-mode", "page", "-offset", "2", "-k", "3"},
	}
	for _, m := range modes {
		fromTables, errT, codeT := runCLI(t, append(append(tableArgs(), "-query", testQ), m...)...)
		if codeT != 0 {
			t.Fatalf("tables %v exit %d: %s", m, codeT, errT)
		}
		fromSnap, errS, codeS := runCLI(t, append([]string{"-snapshot", snap}, m...)...)
		if codeS != 0 {
			t.Fatalf("snapshot %v exit %d: %s", m, codeS, errS)
		}
		if fromSnap != fromTables {
			t.Fatalf("mode %v diverged:\nsnapshot: %q\ntables:   %q", m, fromSnap, fromTables)
		}
	}

	// Explain is honestly unsupported on a restored entry.
	_, errS, codeS := runCLI(t, "-snapshot", snap, "-mode", "explain")
	if codeS != 1 || !strings.Contains(errS, "unsupported") {
		t.Fatalf("explain from snapshot: exit %d, stderr %q", codeS, errS)
	}
}

// TestSnapshotEntrySelection pins -name resolution on multi-query catalogs.
func TestSnapshotEntrySelection(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "two.snap")
	program := testQ + " U(a, b) :- r(a, b). U(a, b) :- s(a, b)."
	_, errOut, code := runCLI(t, append([]string{"build"},
		append(tableArgs(), "-query", program, "-o", snap)...)...)
	if code != 0 {
		t.Fatalf("build exit %d: %s", code, errOut)
	}

	// Ambiguous without -name.
	_, errOut, code = runCLI(t, "-snapshot", snap, "-mode", "count")
	if code != 1 || !strings.Contains(errOut, "-name") {
		t.Fatalf("ambiguous: exit %d, stderr %q", code, errOut)
	}
	// The union entry serves through the restored mc-UCQ structure.
	out, _, code := runCLI(t, "-snapshot", snap, "-name", "U", "-mode", "count")
	if code != 0 || out != "8\n" {
		t.Fatalf("U count from snapshot = %q (exit %d)", out, code)
	}
	// Unknown names list what exists.
	_, errOut, code = runCLI(t, "-snapshot", snap, "-name", "nope", "-mode", "count")
	if code != 1 || !strings.Contains(errOut, "Q, U") {
		t.Fatalf("unknown name: exit %d, stderr %q", code, errOut)
	}
	// -snapshot with -table is a usage error.
	_, _, code = runCLI(t, append([]string{"-snapshot", snap}, tableArgs()...)...)
	if code != 2 {
		t.Fatalf("-snapshot with -table: exit %d, want 2", code)
	}
}

// TestServeFromCorruptSnapshot: a flipped bit anywhere fails closed with
// the typed decode error, not a crash or wrong answers.
func TestServeFromCorruptSnapshot(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "q.snap")
	if _, errOut, code := runCLI(t, append([]string{"build"},
		append(tableArgs(), "-query", testQ, "-o", snap)...)...); code != 0 {
		t.Fatalf("build exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runCLI(t, "-snapshot", snap, "-mode", "count")
	if code != 1 || !strings.Contains(errOut, "snapshot") {
		t.Fatalf("corrupt snapshot: exit %d, stderr %q", code, errOut)
	}
}
