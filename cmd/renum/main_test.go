package main

import (
	"strings"
	"testing"
)

// The fixtures mirror internal/load/testdata:
//
//	r = {(1,2),(1,3),(2,3),(3,1)}   s = {(2,x),(3,y),(3,z),(1,w)}
//
// and the chain join Q(x,y,z) :- r(x,y), s(y,z) has the 6 answers the
// goldens below spell out. The goldens pin the CLI end to end — loader, CSV
// dialect, parser, every mode's output format and the enumeration order —
// so a regression in any layer fails here.
const testQ = "Q(x, y, z) :- r(x, y), s(y, z)."

func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return out.String(), errw.String(), code
}

func tableArgs() []string {
	return []string{"-table", "testdata/r.csv", "-table", "testdata/s.csv"}
}

func TestModesGolden(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"count", []string{"-query", testQ, "-mode", "count"}, "6\n"},
		{"enum", []string{"-query", testQ, "-mode", "enum", "-k", "3"},
			"1, 2, x\n1, 3, y\n1, 3, z\n"},
		{"access", []string{"-query", testQ, "-mode", "access", "-k", "3"},
			"2, 3, y\n"},
		{"random", []string{"-query", testQ, "-mode", "random", "-k", "3", "-seed", "1"},
			"1, 3, z\n1, 2, x\n2, 3, y\n"},
		{"sample", []string{"-query", testQ, "-mode", "sample", "-k", "3", "-seed", "1"},
			"1, 3, z\n1, 2, x\n2, 3, y\n"},
		{"batch", []string{"-query", testQ, "-mode", "batch", "-js", "5,0,5"},
			"3, 1, w\n1, 2, x\n3, 1, w\n"},
		{"page", []string{"-query", testQ, "-mode", "page", "-offset", "2", "-k", "3"},
			"1, 3, z\n2, 3, y\n2, 3, z\n"},
		// -planner off pins the golden bytes: cost mode prepends the
		// candidate table, whose search duration is nondeterministic
		// (checked by TestExplainShowsPlanSection instead).
		{"explain", []string{"-query", testQ, "-mode", "explain", "-planner", "off"},
			"full join over 2 node(s), head [x y z]\n" +
				"  Q#0[r] (x, y)  [4 tuples]\n" +
				"    Q#1[s] (y, z)  [4 tuples]  ⋈ parent on [y]\n"},
		{"ucq count", []string{"-query", "U(a, b) :- r(a, b). U(a, b) :- s(a, b).", "-mode", "count"}, "8\n"},
		{"ucq random", []string{"-query", "U(a, b) :- r(a, b). U(a, b) :- s(a, b).", "-mode", "random", "-k", "3", "-seed", "2"},
			"1, w\n1, 2\n1, 3\n"},
		// sample and page on unions ride the mc-UCQ handle's capability
		// surface (API-parity satellite): distinct draws, positional pages.
		{"ucq sample", []string{"-query", "U(a, b) :- r(a, b). U(a, b) :- s(a, b).", "-mode", "sample", "-k", "3", "-seed", "2"},
			"1, w\n3, 1\n3, z\n"},
		// k = 0 prints nothing (regression: the iterator loops must check
		// the budget before printing, not after).
		{"enum k=0", []string{"-query", testQ, "-mode", "enum", "-k", "0"}, ""},
		{"random k=0", []string{"-query", testQ, "-mode", "random", "-k", "0", "-seed", "1"}, ""},
		{"ucq page", []string{"-query", "U(a, b) :- r(a, b). U(a, b) :- s(a, b).", "-mode", "page", "-offset", "5", "-k", "3"},
			"3, y\n3, z\n1, w\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runCLI(t, append(tableArgs(), tc.args...)...)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, stderr)
			}
			if stdout != tc.want {
				t.Fatalf("output:\n%q\nwant:\n%q", stdout, tc.want)
			}
		})
	}
}

// TestExplainShowsPlanSection: the default (cost) planner prepends its
// candidate table to the explain output — as-parsed marked, winner starred.
func TestExplainShowsPlanSection(t *testing.T) {
	stdout, stderr, code := runCLI(t, append(tableArgs(), "-query", testQ, "-mode", "explain")...)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	for _, want := range []string{"plan: cq cost", "(as parsed)", "* [", "full join over 2 node(s)"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("explain output missing %q:\n%s", want, stdout)
		}
	}
	// An invalid planner mode is a usage error.
	if _, stderr, code := runCLI(t, append(tableArgs(), "-query", testQ, "-planner", "auto")...); code != 2 || !strings.Contains(stderr, "planner mode") {
		t.Fatalf("bad -planner: exit %d, stderr %q", code, stderr)
	}
}

func TestCLIErrors(t *testing.T) {
	// Missing required flags is a usage error.
	if _, _, code := runCLI(t); code != 2 {
		t.Fatalf("no flags: exit %d, want 2", code)
	}
	// Unknown mode.
	_, stderr, code := runCLI(t, append(tableArgs(), "-query", testQ, "-mode", "zigzag")...)
	if code != 1 || !strings.Contains(stderr, "unknown mode") {
		t.Fatalf("unknown mode: exit %d, stderr %q", code, stderr)
	}
	// A program with two distinct heads is not one query.
	_, stderr, code = runCLI(t, append(tableArgs(),
		"-query", "Q(a, b) :- r(a, b). P(a, b) :- s(a, b).")...)
	if code != 1 || !strings.Contains(stderr, "want exactly one") {
		t.Fatalf("two heads: exit %d, stderr %q", code, stderr)
	}
	// Missing table file.
	_, _, code = runCLI(t, "-table", "testdata/missing.csv", "-query", testQ, "-mode", "count")
	if code != 1 {
		t.Fatalf("missing table: exit %d, want 1", code)
	}
	// Out-of-range access position.
	_, _, code = runCLI(t, append(tableArgs(), "-query", testQ, "-mode", "access", "-k", "99")...)
	if code != 1 {
		t.Fatalf("out of range: exit %d, want 1", code)
	}
	// Bad -js list.
	_, _, code = runCLI(t, append(tableArgs(), "-query", testQ, "-mode", "batch", "-js", "1,zap")...)
	if code != 1 {
		t.Fatalf("bad js: exit %d, want 1", code)
	}
	// explain is a CQ-only capability: the union handle rejects it with the
	// library's uniform ErrUnsupported text.
	_, stderr, code = runCLI(t, append(tableArgs(),
		"-query", "U(a, b) :- r(a, b). U(a, b) :- s(a, b).", "-mode", "explain")...)
	if code != 1 || !strings.Contains(stderr, "unsupported") {
		t.Fatalf("ucq explain: exit %d, stderr %q", code, stderr)
	}
}
