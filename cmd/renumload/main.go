// Command renumload is the serving-tier load harness behind
// BENCH_serving.json: it builds a synthetic star-join dataset, serves it
// in-process exactly as cmd/renumd does (fast connection loop by default,
// net/http with -http=std for comparison), and drives open-loop probe
// traffic over real loopback sockets.
//
// Open loop means request i has a fixed scheduled start time t0 + i/rate
// and latency is measured from that schedule, not from when a worker got
// around to sending — a slow server shows up as growing latency instead of
// silently throttling the measured rate (no coordinated omission).
//
// The client side is a minimal hand-rolled HTTP/1.1 codec over persistent
// connections (preformatted request bytes, reused response scratch), so in
// steady state the whole process — client and server, which share this
// process's heap — allocates nothing per request. That is what makes the
// reported allocs/op an honest serving-tier figure: it is measured with
// runtime.MemStats deltas around the timed window and divided by the
// request count. allocs/op is rounded to the nearest integer: real
// per-request regressions arrive in ≥1 alloc/req quanta, while the
// sub-integer residue is GC and scheduler background noise.
//
// Usage:
//
//	renumload                          # all phases, human-readable summary
//	renumload -bench-json BENCH_serving.json
//	renumload -phases access,batch16 -rate 8000 -n 5000
//	renumload -http std                # serve through net/http instead
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"repro/internal/benchfmt"
	"repro/internal/server"
	"repro/internal/synth"
	"repro/internal/wire"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	tuples     int
	relations  int
	rate       float64
	n          int
	conns      int
	phases     string
	httpMode   string
	benchJSON  string
	metricsURL string
	seed       int64
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("renumload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.IntVar(&o.tuples, "tuples", 20_000, "tuples per synthetic relation")
	fs.IntVar(&o.relations, "relations", 4, "relations in the star join")
	fs.Float64Var(&o.rate, "rate", 5_000, "scheduled request rate per phase (req/s)")
	fs.IntVar(&o.n, "n", 3_000, "measured requests per phase")
	fs.IntVar(&o.conns, "conns", 4, "persistent client connections")
	fs.StringVar(&o.phases, "phases", "", "comma-separated phase subset (default all)")
	fs.StringVar(&o.httpMode, "http", "fast", "serving loop: fast (pooled connection loop) or std (net/http)")
	fs.StringVar(&o.benchJSON, "bench-json", "", "write results as a benchfmt JSON doc to this file")
	fs.StringVar(&o.metricsURL, "metrics-url", "", "scrape this base URL's /metrics?format=json around each phase and print a server-vs-client latency table ('self' = the in-process server)")
	fs.Int64Var(&o.seed, "seed", 7, "dataset and workload seed")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// --- Dataset and serving stack (coalescing off: the alloc figures must
	// measure the encoder and probe path, not the coalescer's channels) -----
	db, q, err := synth.Star(synth.Config{
		Relations: o.relations, TuplesPerRelation: o.tuples, KeyDomain: 2_000, SkewS: 1.2, Seed: o.seed,
	})
	if err != nil {
		fmt.Fprintln(stderr, "renumload:", err)
		return 1
	}
	var atoms []string
	for _, a := range q.Body {
		terms := make([]string, len(a.Terms))
		for i, t := range a.Terms {
			terms[i] = t.Var
		}
		atoms = append(atoms, fmt.Sprintf("%s(%s)", a.Relation, strings.Join(terms, ", ")))
	}
	program := fmt.Sprintf("Q(%s) :- %s.", strings.Join(q.Head, ", "), strings.Join(atoms, ", "))
	reg := server.NewRegistry(db, server.CoalesceConfig{}, 0)
	t0 := time.Now()
	if _, err := reg.Register(program, false); err != nil {
		fmt.Fprintln(stderr, "renumload:", err)
		return 1
	}
	entry, _ := reg.Lookup("Q")
	count := entry.Count()
	srv := server.New(reg, server.Config{})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(stderr, "renumload:", err)
		return 1
	}
	switch o.httpMode {
	case "fast":
		fastSrv := server.NewFastServer(srv)
		go fastSrv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			fastSrv.Shutdown(ctx)
		}()
	case "std":
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
	default:
		fmt.Fprintf(stderr, "renumload: -http must be fast or std, got %q\n", o.httpMode)
		return 2
	}
	addr := ln.Addr().String()
	// Traffic only opens once the daemon reports ready — poll /readyz, never
	// sleep-and-fire. In-process this is one round trip; against a router it
	// is the difference between measuring the fleet and measuring its boot.
	if err := waitReady("http://"+addr, 10*time.Second); err != nil {
		fmt.Fprintln(stderr, "renumload:", err)
		return 1
	}
	fmt.Fprintf(stdout, "index built in %v: %d answers over %d tuples; serving (%s) on %s\n",
		time.Since(t0).Round(time.Millisecond), count, db.Size(), o.httpMode, addr)

	// --- Phases -----------------------------------------------------------
	all := phases(count)
	selected := all
	if o.phases != "" {
		selected = nil
		for _, name := range strings.Split(o.phases, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, p := range all {
				if p.name == name {
					selected = append(selected, p)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(stderr, "renumload: unknown phase %q (have %s)\n", name, phaseNames(all))
				return 2
			}
		}
	}

	// Server-side scrape target: the daemon reports its own latency view at
	// /metrics, and comparing it with the client's open-loop view separates
	// server time from scheduling/queueing/network time.
	metricsBase := o.metricsURL
	if metricsBase == "self" {
		metricsBase = "http://" + addr
	}

	doc := &benchfmt.Doc{Goos: runtime.GOOS, Goarch: runtime.GOARCH, Pkg: "repro/serving", CPU: cpuModel()}
	var divRows []divergenceRow
	fmt.Fprintf(stdout, "\n%-14s %10s %10s %10s %10s %10s %8s\n",
		"phase", "req/s", "mean µs", "p50 µs", "p99 µs", "B/req", "allocs")
	for _, p := range selected {
		var before metricsScrape
		if metricsBase != "" {
			var err error
			if before, err = scrapeMetrics(metricsBase); err != nil {
				fmt.Fprintf(stderr, "renumload: scrape %s: %v\n", metricsBase, err)
				return 1
			}
		}
		res, err := runPhase(addr, p, o)
		if err != nil {
			fmt.Fprintf(stderr, "renumload: phase %s: %v\n", p.name, err)
			return 1
		}
		fmt.Fprintf(stdout, "%-14s %10.0f %10.1f %10.1f %10.1f %10.0f %8.0f\n",
			p.name, res.Metrics["req/s"], res.Metrics["ns/op"]/1e3,
			res.Metrics["p50-ns"]/1e3, res.Metrics["p99-ns"]/1e3,
			res.Metrics["B/op"], res.Metrics["allocs/op"])
		doc.Benchmarks = append(doc.Benchmarks, res)
		if ep := phaseEndpoint(p.name); metricsBase != "" && ep != "" {
			after, err := scrapeMetrics(metricsBase)
			if err != nil {
				fmt.Fprintf(stderr, "renumload: scrape %s: %v\n", metricsBase, err)
				return 1
			}
			divRows = append(divRows, divergenceRow{
				phase:     p.name,
				endpoint:  ep,
				reqs:      after[ep].Count - before[ep].Count,
				serverP50: after[ep].MedianMs * 1e3,
				serverP99: after[ep].P99Ms * 1e3,
				clientP50: res.Metrics["p50-ns"] / 1e3,
				clientP99: res.Metrics["p99-ns"] / 1e3,
			})
		}
	}

	if len(divRows) > 0 {
		// Server quantiles come from the full-history /metrics histogram
		// (warmup included); the client side measures from each request's
		// scheduled start. The delta is therefore scheduling + queueing +
		// loopback time — the part of the latency the server cannot see.
		fmt.Fprintf(stdout, "\nserver-vs-client latency (server = /metrics histogram; client = open-loop schedule):\n")
		fmt.Fprintf(stdout, "%-14s %-10s %8s %12s %12s %9s %12s %12s %9s\n",
			"phase", "endpoint", "reqs", "srv p50 µs", "cli p50 µs", "Δp50 µs", "srv p99 µs", "cli p99 µs", "Δp99 µs")
		for _, r := range divRows {
			fmt.Fprintf(stdout, "%-14s %-10s %8d %12.1f %12.1f %9.1f %12.1f %12.1f %9.1f\n",
				r.phase, r.endpoint, r.reqs,
				r.serverP50, r.clientP50, r.clientP50-r.serverP50,
				r.serverP99, r.clientP99, r.clientP99-r.serverP99)
		}
	}

	if o.benchJSON != "" {
		f, err := os.Create(o.benchJSON)
		if err != nil {
			fmt.Fprintln(stderr, "renumload:", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, "renumload:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "renumload:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nwrote %s\n", o.benchJSON)
	}
	return 0
}

// divergenceRow is one phase's server-vs-client latency comparison.
type divergenceRow struct {
	phase, endpoint      string
	reqs                 int64
	serverP50, serverP99 float64 // µs
	clientP50, clientP99 float64 // µs
}

// metricsScrape is one /metrics?format=json observation, keyed by endpoint.
type metricsScrape map[string]server.EndpointSummary

func scrapeMetrics(base string) (metricsScrape, error) {
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics?format=json: %s", resp.Status)
	}
	var doc struct {
		Endpoints []server.EndpointSummary `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	out := make(metricsScrape, len(doc.Endpoints))
	for _, ep := range doc.Endpoints {
		out[ep.Endpoint] = ep
	}
	return out, nil
}

// phaseEndpoint maps a load phase to the /metrics endpoint it exercises
// ("" when the phase mixes endpoints and no single row applies).
func phaseEndpoint(name string) string {
	switch {
	case name == "access":
		return "access"
	case name == "count":
		return "count"
	case strings.HasPrefix(name, "batch"):
		return "batch"
	case strings.HasPrefix(name, "page"):
		return "page"
	case name == "cursor64":
		return "enum_next"
	}
	return ""
}

// phase describes one workload: build writes a complete request into dst.
// Requests must be self-framing GETs (the harness never sends bodies on the
// hot path).
type phase struct {
	name  string
	wire  bool
	build func(dst []byte, rng *rand.Rand, w *worker) []byte
}

// phases returns every workload over a query with n answers.
func phases(n int64) []phase {
	get := func(dst []byte, path string) []byte {
		dst = append(dst, "GET "...)
		dst = append(dst, path...)
		return dst
	}
	finish := func(dst []byte, asWire bool) []byte {
		dst = append(dst, " HTTP/1.1\r\nHost: l\r\n"...)
		if asWire {
			dst = append(dst, "Accept: "...)
			dst = append(dst, wire.ContentType...)
			dst = append(dst, '\r', '\n')
		}
		return append(dst, '\r', '\n')
	}
	access := func(dst []byte, rng *rand.Rand, _ *worker) []byte {
		dst = get(dst, "/v1/Q/access?j=")
		dst = strconv.AppendInt(dst, rng.Int63n(n), 10)
		return finish(dst, false)
	}
	batch := func(asWire bool) func([]byte, *rand.Rand, *worker) []byte {
		return func(dst []byte, rng *rand.Rand, _ *worker) []byte {
			dst = get(dst, "/v1/Q/batch?js=")
			for k := 0; k < 16; k++ {
				if k > 0 {
					dst = append(dst, ',')
				}
				dst = strconv.AppendInt(dst, rng.Int63n(n), 10)
			}
			return finish(dst, asWire)
		}
	}
	page := func(asWire bool) func([]byte, *rand.Rand, *worker) []byte {
		return func(dst []byte, rng *rand.Rand, _ *worker) []byte {
			dst = get(dst, "/v1/Q/page?limit=25&offset=")
			dst = strconv.AppendInt(dst, rng.Int63n(n), 10)
			return finish(dst, asWire)
		}
	}
	countReq := func(dst []byte, _ *rand.Rand, _ *worker) []byte {
		return finish(get(dst, "/v1/Q/count"), false)
	}
	cursor := func(dst []byte, _ *rand.Rand, w *worker) []byte {
		dst = get(dst, "/v1/Q/enum/next?n=64&cursor=")
		dst = append(dst, w.cursor...)
		return finish(dst, false)
	}
	return []phase{
		{name: "access", build: access},
		{name: "count", build: countReq},
		{name: "batch16", build: batch(false)},
		{name: "batch16_wire", wire: true, build: batch(true)},
		{name: "page25", build: page(false)},
		{name: "page25_wire", wire: true, build: page(true)},
		{name: "cursor64", build: cursor},
		{name: "mixed", build: func(dst []byte, rng *rand.Rand, w *worker) []byte {
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				return access(dst, rng, w)
			case 4, 5:
				return batch(false)(dst, rng, w)
			case 6, 7:
				return page(false)(dst, rng, w)
			default:
				return countReq(dst, rng, w)
			}
		}},
	}
}

func phaseNames(ps []phase) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.name
	}
	return strings.Join(names, ",")
}

// waitReady polls GET /readyz until the target reports 200, so traffic
// opens deterministically (a router answers 503 here until every shard
// daemon has scraped ready; a booting daemon until its indexes are built).
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err == nil {
				return fmt.Errorf("%s/readyz not ready after %v", base, timeout)
			}
			return fmt.Errorf("%s/readyz not ready after %v: %v", base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// worker is one persistent client connection with reusable request and
// response scratch. Its round trips allocate nothing in steady state.
type worker struct {
	c      net.Conn
	br     *bufio.Reader
	req    []byte
	body   []byte
	rng    *rand.Rand
	cursor []byte // current enumeration cursor id (cursor64 phase)
}

func newWorker(addr string, seed int64) (*worker, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &worker{
		c:    c,
		br:   bufio.NewReaderSize(c, 64<<10),
		req:  make([]byte, 0, 1024),
		body: make([]byte, 0, 64<<10),
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

var (
	bStatusOK      = []byte("HTTP/1.1 200")
	bContentLength = []byte("Content-Length: ")
	bDoneTrue      = []byte(`"done":true`)
)

// roundTrip issues one preformatted request and reads the full response
// body into the worker's scratch. It reports the HTTP status.
func (w *worker) roundTrip(req []byte) (status int, err error) {
	if _, err := w.c.Write(req); err != nil {
		return 0, err
	}
	clen := -1
	status = 0
	for first := true; ; first = false {
		line, err := w.br.ReadSlice('\n')
		if err != nil {
			return 0, err
		}
		if first {
			if bytes.HasPrefix(line, bStatusOK) {
				status = 200
			} else if len(line) > 12 {
				status = int(line[9]-'0')*100 + int(line[10]-'0')*10 + int(line[11]-'0')
			}
			continue
		}
		if len(line) <= 2 {
			break
		}
		if v, ok := bytes.CutPrefix(line, bContentLength); ok {
			clen = 0
			for _, d := range v[:len(v)-2] {
				clen = clen*10 + int(d-'0')
			}
		}
	}
	if clen < 0 {
		return 0, fmt.Errorf("response without Content-Length")
	}
	if cap(w.body) < clen {
		w.body = make([]byte, clen)
	}
	w.body = w.body[:clen]
	if _, err := io.ReadFull(w.br, w.body); err != nil {
		return 0, err
	}
	return status, nil
}

// startCursor opens a fresh enumeration cursor for the worker (cold path:
// once per phase start and on exhaustion).
func (w *worker) startCursor() error {
	w.req = append(w.req[:0], "POST /v1/Q/enum/start?order=enum HTTP/1.1\r\nHost: l\r\n\r\n"...)
	status, err := w.roundTrip(w.req)
	if err != nil {
		return err
	}
	if status != 200 {
		return fmt.Errorf("enum/start = %d (%s)", status, w.body)
	}
	var resp struct {
		Cursor string `json:"cursor"`
	}
	if err := json.Unmarshal(w.body, &resp); err != nil {
		return err
	}
	w.cursor = append(w.cursor[:0], resp.Cursor...)
	return nil
}

// phaseResult aggregates one phase's measurements into a benchfmt Result.
func runPhase(addr string, p phase, o options) (benchfmt.Result, error) {
	workers := make([]*worker, o.conns)
	for i := range workers {
		w, err := newWorker(addr, o.seed+int64(i)*1e6+int64(len(p.name)))
		if err != nil {
			return benchfmt.Result{}, err
		}
		defer w.c.Close()
		workers[i] = w
		if p.name == "cursor64" {
			if err := w.startCursor(); err != nil {
				return benchfmt.Result{}, err
			}
		}
	}

	issue := func(w *worker) (int, error) {
		w.req = p.build(w.req[:0], w.rng, w)
		status, err := w.roundTrip(w.req)
		if err != nil {
			return 0, err
		}
		// Exhausted cursors are restarted off the clock path; the draw that
		// observed done still counts (it carried answers).
		if p.name == "cursor64" && (status != 200 || bytes.Contains(w.body, bDoneTrue)) {
			if err := w.startCursor(); err != nil {
				return 0, err
			}
		}
		return status, nil
	}

	// Warmup: grow every scratch buffer and pool to steady state before the
	// measured window.
	for _, w := range workers {
		for i := 0; i < 64; i++ {
			if status, err := issue(w); err != nil {
				return benchfmt.Result{}, err
			} else if status != 200 && p.name != "cursor64" {
				return benchfmt.Result{}, fmt.Errorf("warmup status %d (%s)", status, w.body)
			}
		}
	}

	lat := make([]int64, o.n)
	interval := time.Duration(float64(time.Second) / o.rate)
	var next atomic.Int64
	var failures atomic.Int64
	var lastDone atomic.Int64

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(workers))
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(o.n) {
					return
				}
				sched := start.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				status, err := issue(w)
				if err != nil {
					errs <- err
					return
				}
				if status != 200 {
					failures.Add(1)
				}
				done := time.Since(start)
				lat[i] = int64(done) - int64(sched.Sub(start))
				for {
					prev := lastDone.Load()
					if int64(done) <= prev || lastDone.CompareAndSwap(prev, int64(done)) {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	runtime.ReadMemStats(&after)
	close(errs)
	if err := <-errs; err != nil {
		return benchfmt.Result{}, err
	}
	if f := failures.Load(); f > 0 {
		return benchfmt.Result{}, fmt.Errorf("%d non-200 responses", f)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum int64
	for _, l := range lat {
		sum += l
	}
	n := float64(o.n)
	res := benchfmt.Result{
		Name: "BenchmarkServing/" + p.name,
		Runs: int64(o.n),
		Metrics: map[string]float64{
			"ns/op":     float64(sum) / n,
			"p50-ns":    float64(lat[o.n/2]),
			"p99-ns":    float64(lat[o.n*99/100]),
			"req/s":     n / (float64(lastDone.Load()) / float64(time.Second)),
			"B/op":      math.Floor(float64(after.TotalAlloc-before.TotalAlloc) / n),
			"allocs/op": math.Round(float64(after.Mallocs-before.Mallocs) / n),
		},
	}
	return res, nil
}

// cpuModel extracts the CPU model string the way `go test -bench` prints it.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}
