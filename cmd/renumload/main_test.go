package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// TestSmoke drives the whole harness end to end at a tiny scale — build,
// serve, hammer, emit — and checks the document it writes, not the absolute
// numbers (which depend on the machine and, under -race, on instrumentation).
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spins up a server and drives load")
	}
	out := filepath.Join(t.TempDir(), "serving.json")
	var stdout, stderr strings.Builder
	code := run([]string{
		"-tuples", "500", "-n", "200", "-rate", "4000", "-conns", "2",
		"-phases", "access,count,batch16_wire,cursor64",
		"-bench-json", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	doc := &benchfmt.Doc{}
	if err := json.Unmarshal(data, doc); err != nil {
		t.Fatal(err)
	}
	if doc.Pkg != "repro/serving" {
		t.Fatalf("pkg = %q", doc.Pkg)
	}
	want := []string{
		"BenchmarkServing/access",
		"BenchmarkServing/count",
		"BenchmarkServing/batch16_wire",
		"BenchmarkServing/cursor64",
	}
	if len(doc.Benchmarks) != len(want) {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
	for i, name := range want {
		b := doc.Benchmarks[i]
		if b.Name != name {
			t.Fatalf("benchmark %d = %q, want %q", i, b.Name, name)
		}
		if b.Runs != 200 {
			t.Fatalf("%s runs = %d", name, b.Runs)
		}
		for _, unit := range []string{"ns/op", "p50-ns", "p99-ns", "req/s", "B/op", "allocs/op"} {
			if _, ok := b.Metrics[unit]; !ok {
				t.Fatalf("%s missing metric %q (have %v)", name, unit, b.Metrics)
			}
		}
		if b.Metrics["req/s"] <= 0 || b.Metrics["p99-ns"] < b.Metrics["p50-ns"] {
			t.Fatalf("%s metrics implausible: %v", name, b.Metrics)
		}
	}
	// The phase table the operator sees names every phase that ran.
	for _, phase := range []string{"access", "count", "batch16_wire", "cursor64"} {
		if !strings.Contains(stdout.String(), phase) {
			t.Fatalf("stdout missing phase %q:\n%s", phase, stdout.String())
		}
	}
}

func TestUnknownPhase(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-phases", "nope"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
}
