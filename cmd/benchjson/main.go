// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, and diffs fresh runs against committed
// baselines — so CI can publish benchmark results as artifacts AND fail a PR
// that regresses a gated number, without scraping logs.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson > bench.json
//	benchjson -o bench.json bench.txt
//	benchjson -diff BENCH_probe.json bench.txt
//	benchjson -diff BENCH_serving.json fresh-serving.json
//
// Every `Benchmark*` result line becomes one record with the iteration
// count and a metrics map keyed by unit ("ns/op", "B/op", "allocs/op",
// "MB/s", and any custom ReportMetric unit). The goos/goarch/pkg/cpu header
// lines are carried through as context. Input that already is a benchjson
// document (cmd/renumload emits one directly) is detected by its leading
// '{' and passed through unparsed.
//
// With -diff BASELINE the fresh run is compared against the committed
// baseline instead of re-emitted: any benchmark the baseline pins at
// 0 allocs/op must stay at 0, nonzero allocs/op and ns/op may not regress
// past -max-ns-regress, and ns/op comparisons are skipped when the two
// documents record different CPUs (wall clock does not transfer across
// hardware; allocation counts do). Regressions print and exit 1.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable plumbing so tests can drive the tool.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("o", "", "output file (default stdout)")
		diff      = fs.String("diff", "", "baseline BENCH_*.json to gate against: print regressions and exit 1 instead of emitting JSON")
		maxNs     = fs.Float64("max-ns-regress", 0.20, "-diff failure threshold: fraction by which ns/op (or a nonzero allocs/op) may regress")
		strictCPU = fs.Bool("strict-cpu", false, "-diff: compare ns/op even when baseline and fresh record different CPUs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	in := io.Reader(os.Stdin)
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}
	doc, err := readDoc(in)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}

	if *diff != "" {
		base, err := loadDoc(*diff)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: baseline: %v\n", err)
			return 1
		}
		findings := benchfmt.Diff(base, doc, benchfmt.DiffOptions{
			MaxNsRegress:        *maxNs,
			SkipNsOnCPUMismatch: !*strictCPU,
		})
		failed := false
		for _, f := range findings {
			tag := "info"
			if f.Fail {
				tag = "FAIL"
				failed = true
			}
			fmt.Fprintf(stdout, "%s %s: %s\n", tag, f.Name, f.Msg)
		}
		if failed {
			fmt.Fprintf(stderr, "benchjson: regressions against %s\n", *diff)
			return 1
		}
		fmt.Fprintf(stdout, "benchjson: %d baseline benchmarks within thresholds of %s\n", len(base.Benchmarks), *diff)
		return 0
	}

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	return 0
}

// readDoc decodes bench input in either shape: go-test text, or an
// already-converted JSON document (first non-space byte '{').
func readDoc(r io.Reader) (*benchfmt.Doc, error) {
	br := bufio.NewReader(r)
	for {
		b, err := br.Peek(1)
		if err != nil {
			if err == io.EOF {
				return &benchfmt.Doc{Benchmarks: []benchfmt.Result{}}, nil
			}
			return nil, err
		}
		switch b[0] {
		case ' ', '\t', '\r', '\n':
			br.ReadByte()
			continue
		case '{':
			doc := &benchfmt.Doc{}
			if err := json.NewDecoder(br).Decode(doc); err != nil {
				return nil, fmt.Errorf("decode JSON document: %w", err)
			}
			if doc.Benchmarks == nil {
				doc.Benchmarks = []benchfmt.Result{}
			}
			return doc, nil
		default:
			return benchfmt.Parse(br)
		}
	}
}

// loadDoc reads a committed BENCH_*.json baseline.
func loadDoc(path string) (*benchfmt.Doc, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc := &benchfmt.Doc{}
	if err := json.NewDecoder(f).Decode(doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}
