// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish benchmark results as an
// artifact that later tooling (and later PRs) can diff without scraping
// logs.
//
// Usage:
//
//	go test -bench . -benchmem | benchjson > bench.json
//	benchjson -o bench.json bench.txt
//
// Every `Benchmark*` result line becomes one record with the iteration
// count and a metrics map keyed by unit ("ns/op", "B/op", "allocs/op",
// "MB/s", and any custom ReportMetric unit). The goos/goarch/pkg/cpu header
// lines are carried through as context.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name    string             `json:"name"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	doc, err := Parse(in)
	if err != nil {
		fatal(err)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
}

// Parse scans go-test bench output. Unrecognized lines (test framework
// chatter, PASS/ok trailers) are skipped, not errors: bench output is
// routinely interleaved with other noise.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseResult(line); ok {
				doc.Benchmarks = append(doc.Benchmarks, res)
			}
		}
	}
	return doc, sc.Err()
}

// parseResult decodes "BenchmarkName-P  N  v1 unit1  v2 unit2 ...".
func parseResult(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: fields[0], Runs: runs, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
