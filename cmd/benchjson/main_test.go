package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkAccess/Q0-4         	    8503	    138.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccessBatch-4       	       1	  202435 ns/op	  131160 B/op	       3 allocs/op
PASS
ok  	repro	1.234s
`

// runTool invokes run() with args and returns (exit code, stdout, stderr).
func runTool(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertTextToJSON(t *testing.T) {
	in := writeFile(t, "bench.txt", sample)
	out := filepath.Join(t.TempDir(), "bench.json")
	code, _, errOut := runTool(t, []string{"-o", out, in})
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	doc := &benchfmt.Doc{}
	if err := json.Unmarshal(data, doc); err != nil {
		t.Fatal(err)
	}
	if doc.CPU != "AMD EPYC 7B13" || len(doc.Benchmarks) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Benchmarks[0].Metrics["ns/op"] != 138.2 {
		t.Fatalf("metrics = %v", doc.Benchmarks[0].Metrics)
	}
}

// A document that is already JSON (renumload's output) enters through the
// same front door and round-trips unchanged.
func TestJSONInputPassThrough(t *testing.T) {
	doc := benchfmt.Doc{
		CPU: "whatever",
		Benchmarks: []benchfmt.Result{
			{Name: "BenchmarkServing/access", Runs: 100, Metrics: map[string]float64{"allocs/op": 0}},
		},
	}
	in := writeFile(t, "fresh.json", "\n  "+mustJSON(t, doc))
	out := filepath.Join(t.TempDir(), "out.json")
	code, _, errOut := runTool(t, []string{"-o", out, in})
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	round := &benchfmt.Doc{}
	if err := json.Unmarshal(data, round); err != nil {
		t.Fatal(err)
	}
	if round.CPU != doc.CPU || len(round.Benchmarks) != 1 || round.Benchmarks[0].Name != doc.Benchmarks[0].Name {
		t.Fatalf("round trip = %+v", round)
	}
}

func TestDiffPassesWithinThresholds(t *testing.T) {
	baseline := writeFile(t, "base.json", mustJSON(t, benchfmt.Doc{
		CPU: "cpuA",
		Benchmarks: []benchfmt.Result{
			{Name: "BenchmarkAccess/Q0-4", Runs: 1, Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0}},
			{Name: "BenchmarkAccessBatch-4", Runs: 1, Metrics: map[string]float64{"ns/op": 1000, "allocs/op": 3}},
		},
	}))
	fresh := writeFile(t, "bench.txt", sample) // 138.2 ns vs 100 would fail, but the CPUs differ
	code, out, _ := runTool(t, []string{"-diff", baseline, fresh})
	if code != 0 {
		t.Fatalf("exit %d, out %q", code, out)
	}
	if !strings.Contains(out, "cpu mismatch") {
		t.Fatalf("expected informational cpu-mismatch finding, got %q", out)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	baseline := writeFile(t, "base.json", mustJSON(t, benchfmt.Doc{
		CPU: "AMD EPYC 7B13",
		Benchmarks: []benchfmt.Result{
			{Name: "BenchmarkAccess/Q0", Runs: 1, Metrics: map[string]float64{"allocs/op": 0}},
		},
	}))
	fresh := writeFile(t, "bench.txt", strings.ReplaceAll(sample, "       0 allocs/op", "       2 allocs/op"))
	code, out, _ := runTool(t, []string{"-diff", baseline, fresh})
	if code != 1 {
		t.Fatalf("exit %d, out %q (pinned-zero alloc regression must fail)", code, out)
	}
	if !strings.Contains(out, "FAIL BenchmarkAccess/Q0") {
		t.Fatalf("out = %q", out)
	}
}

func TestDiffStrictCPUComparesNs(t *testing.T) {
	baseline := writeFile(t, "base.json", mustJSON(t, benchfmt.Doc{
		CPU: "cpuA",
		Benchmarks: []benchfmt.Result{
			{Name: "BenchmarkAccess/Q0", Runs: 1, Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0}},
		},
	}))
	fresh := writeFile(t, "bench.txt", sample) // CPUs differ AND 138.2 > 100*1.2
	code, out, _ := runTool(t, []string{"-diff", baseline, "-strict-cpu", fresh})
	if code != 1 {
		t.Fatalf("exit %d, out %q (-strict-cpu must gate ns across CPUs)", code, out)
	}
	if !strings.Contains(out, "ns/op regressed") {
		t.Fatalf("out = %q", out)
	}
}

func TestDiffMissingBenchmarkIsInformational(t *testing.T) {
	baseline := writeFile(t, "base.json", mustJSON(t, benchfmt.Doc{
		CPU: "AMD EPYC 7B13",
		Benchmarks: []benchfmt.Result{
			{Name: "BenchmarkGone", Runs: 1, Metrics: map[string]float64{"ns/op": 5, "allocs/op": 0}},
		},
	}))
	fresh := writeFile(t, "bench.txt", sample)
	code, out, _ := runTool(t, []string{"-diff", baseline, fresh})
	if code != 0 {
		t.Fatalf("exit %d, out %q (missing benchmark is informational, not gating)", code, out)
	}
	if !strings.Contains(out, "info BenchmarkGone") {
		t.Fatalf("out = %q", out)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
