package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkAccess/Q0-4         	 8503collector noise
BenchmarkAccess/Q0-4         	    8503	    138.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkAccessBatch-4       	       1	  202435 ns/op	  131160 B/op	       3 allocs/op
BenchmarkParallelBuild/Serial-4 	       1	40500000 ns/op	27000000 B/op	  618000 allocs/op
--- BENCH: BenchmarkSomething
    some_test.go:10: noise
PASS
ok  	repro	1.234s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro" {
		t.Fatalf("header = %+v", doc)
	}
	if doc.CPU != "AMD EPYC 7B13" {
		t.Fatalf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d results, want 3 (malformed lines skipped)", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkAccess/Q0-4" || b.Runs != 8503 {
		t.Fatalf("b0 = %+v", b)
	}
	if b.Metrics["ns/op"] != 138.2 || b.Metrics["allocs/op"] != 0 {
		t.Fatalf("b0 metrics = %v", b.Metrics)
	}
	if doc.Benchmarks[1].Metrics["B/op"] != 131160 {
		t.Fatalf("b1 metrics = %v", doc.Benchmarks[1].Metrics)
	}
}

func TestParseEmpty(t *testing.T) {
	doc, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Fatalf("got %d results from noise", len(doc.Benchmarks))
	}
	// Benchmarks must marshal as [], not null, for downstream consumers.
	if doc.Benchmarks == nil {
		t.Fatal("Benchmarks is nil")
	}
}
