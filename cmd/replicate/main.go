// Command replicate runs the paper-reproduction experiment harness: one
// figure/table per invocation (or all of them), printing the measured series
// to stdout.
//
// Usage:
//
//	replicate -exp fig1 -sf 0.05 -seed 1
//	replicate -exp all -sf 0.02 -timeout 60s
//	replicate -exp fig1 -sf 0.05 -workers 1   # serial builds, as in the paper
//
// Experiments: fig1 fig2 fig3 fig4a fig4b fig5 fig6 fig7 fig8 rs, or "all".
// -workers caps the parallel index builder's fan-out (0 = all cores); the
// measured enumeration phases are single-threaded either way.
// The scale factor scales the generated TPC-H data (the paper used sf=5 on a
// 496 GB machine; laptop-scale runs reproduce the qualitative shapes).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		name    = flag.String("exp", "all", "experiment to run: "+strings.Join(exp.Names(), ", ")+", or all")
		sf      = flag.Float64("sf", 0.02, "TPC-H scale factor")
		seed    = flag.Int64("seed", 1, "random seed (data + algorithms)")
		timeout = flag.Duration("timeout", 120*time.Second, "per-run timeout (0 = none)")
		pcts    = flag.String("pcts", "", "comma-separated percentage thresholds (default 1,5,10,30,50,70,90)")
		jsonOut = flag.String("json", "", "also write the structured results as JSON to this file ('-' for stdout)")
		workers = flag.Int("workers", 0, "goroutines for parallel index construction (0 = all cores, 1 = serial — use 1 to match the paper's single-threaded setup)")
	)
	flag.Parse()

	cfg := exp.Config{
		ScaleFactor: *sf,
		Seed:        *seed,
		Timeout:     *timeout,
		Out:         os.Stdout,
		Workers:     *workers,
	}
	if *pcts != "" {
		for _, p := range strings.Split(*pcts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v < 1 || v > 100 {
				fmt.Fprintf(os.Stderr, "replicate: bad percentage %q\n", p)
				os.Exit(2)
			}
			cfg.Percentages = append(cfg.Percentages, v)
		}
	}

	start := time.Now()
	r, err := exp.NewRunner(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replicate: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("generated TPC-H sf=%v in %v (%d tuples)\n", *sf, time.Since(start).Round(time.Millisecond), r.DB().Size())

	data, err := r.RunData(*name)
	if err != nil {
		fmt.Fprintf(os.Stderr, "replicate: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(data, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "replicate: marshal: %v\n", err)
			os.Exit(1)
		}
		blob = append(blob, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(blob)
		} else if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "replicate: %v\n", err)
			os.Exit(1)
		}
	}
}
