package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// The crash tests exercise the WAL's whole reason to exist: a daemon killed
// with SIGKILL — no drain, no persist-on-exit, no goodbye — must reboot
// into exactly the state it had acknowledged. They therefore need a real
// subprocess (an in-process run() cannot be SIGKILLed), built once per
// test binary from this package.

func buildRenumd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "renumd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// proc is a real renumd subprocess.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

func startProc(t *testing.T, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{addr: freeAddr(t)}
	p.cmd = exec.Command(bin, append([]string{"-addr", p.addr}, args...)...)
	p.cmd.Stdout = io.Discard
	p.cmd.Stderr = os.Stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	deadline := time.Now().Add(15 * time.Second)
	for {
		if resp, err := http.Get("http://" + p.addr + "/healthz"); err == nil {
			resp.Body.Close()
			return p
		}
		if time.Now().After(deadline) {
			t.Fatal("renumd subprocess did not come up")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill delivers SIGKILL — the crash under test — and reaps the process.
func (p *proc) kill(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	p.cmd.Wait()
}

func (p *proc) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + p.addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, b)
	}
	return string(b)
}

func (p *proc) post(t *testing.T, path, body string) string {
	t.Helper()
	resp, err := http.Post("http://"+p.addr+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("POST %s = %d: %s", path, resp.StatusCode, b)
	}
	return string(b)
}

// sweep is the byte-level probe transcript two daemons must agree on:
// count, every access position, a seeded sample, and one inverted lookup.
func (p *proc) sweep(t *testing.T) string {
	t.Helper()
	var sb strings.Builder
	count := p.get(t, "/v1/D/count")
	sb.WriteString(count)
	var n int
	if _, err := fmt.Sscanf(count, `{"count":%d`, &n); err != nil {
		t.Fatalf("count response %q: %v", count, err)
	}
	for j := 0; j < n; j++ {
		sb.WriteString(p.get(t, fmt.Sprintf("/v1/D/access?j=%d", j)))
	}
	sb.WriteString(p.get(t, "/v1/D/sample?k=5&seed=9"))
	sb.WriteString(p.post(t, "/v1/D/inverted", `{"tuple":["u0","u0"]}`))
	return sb.String()
}

var crashBootArgs = []string{
	"-table", filepath.Join("..", "..", "internal", "load", "testdata", "r.csv"),
	"-query", "D(x, y) :- r(x, y).",
	"-dynamic",
	"-coalesce-window", "0",
}

// applyStream sends k acknowledged updates — a mix of inserts, deletes and
// revives with values the base CSV has never seen.
func applyStream(t *testing.T, p *proc, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		v := fmt.Sprintf("u%d", i%7)
		op := "insert"
		if i%3 == 2 {
			op = "delete"
		}
		p.post(t, "/v1/D/update", fmt.Sprintf(`{"op":%q,"relation":"r","tuple":[%q,%q]}`, op, v, v))
	}
}

// TestSIGKILLLosesNoAckedUpdate: run an update stream against a WAL-enabled
// daemon, SIGKILL it mid-stream (after the k-th ack), reboot with the same
// flags, and compare the full probe transcript against an uninterrupted
// daemon that applied exactly the acknowledged prefix. Byte-identical =
// zero lost acked updates, positions and all.
func TestSIGKILLLosesNoAckedUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildRenumd(t)
	const acked = 17

	// Reference: never crashes, applies the same acknowledged prefix.
	refWal, refSnap := t.TempDir(), t.TempDir()
	ref := startProc(t, bin, append(crashBootArgs, "-wal-dir", refWal, "-snapshot-dir", refSnap)...)
	applyStream(t, ref, acked)
	want := ref.sweep(t)

	// Victim: same boot, same stream, then SIGKILL between acks.
	walDir, snapDir := t.TempDir(), t.TempDir()
	args := append(crashBootArgs, "-wal-dir", walDir, "-snapshot-dir", snapDir)
	victim := startProc(t, bin, args...)
	applyStream(t, victim, acked)
	victim.kill(t)

	// Reboot with the same flags: the CSV boot is deterministic, so the
	// registry lands on the same generation and finds its segment.
	reborn := startProc(t, bin, args...)
	if got := reborn.sweep(t); got != want {
		t.Fatalf("state after SIGKILL+reboot diverges from uninterrupted run:\n%s\nvs\n%s", got, want)
	}
	// The reborn daemon keeps accepting updates durably.
	reborn.post(t, "/v1/D/update", `{"op":"insert","relation":"r","tuple":["post-crash","post-crash"]}`)
}

// TestSIGKILLAfterCompaction: compaction mints generation G+1 and rotates
// the WAL; more acked updates land in the new segment; SIGKILL; a reboot
// from the snapshot directory alone must restore G+1 and replay its
// segment — and generations stay monotonic across the crash.
func TestSIGKILLAfterCompaction(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	bin := buildRenumd(t)
	walDir, snapDir := t.TempDir(), t.TempDir()
	args := append(crashBootArgs, "-wal-dir", walDir, "-snapshot-dir", snapDir)
	victim := startProc(t, bin, args...)

	applyStream(t, victim, 9)
	genLine := victim.get(t, "/v1")
	// 9 ops, but two delete values the dictionary has never seen — those
	// are no-ops that correctly never reach the log: 7 records fold.
	compact := victim.post(t, "/admin/compact", "")
	if !strings.Contains(compact, `"folded":7`) {
		t.Fatalf("compact response %q, want 7 records folded", compact)
	}
	// Post-compaction updates land in the rotated segment.
	applyStream(t, victim, 4)
	want := victim.sweep(t)
	wantGen := victim.get(t, "/v1")
	if wantGen == genLine {
		t.Fatalf("compaction did not bump the generation: %q", wantGen)
	}
	victim.kill(t)

	// Snapshot-only reboot: no -table/-query — the compacted generation
	// plus its segment is the whole state.
	reborn := startProc(t, bin, "-wal-dir", walDir, "-snapshot-dir", snapDir, "-coalesce-window", "0")
	if got := reborn.sweep(t); got != want {
		t.Fatalf("state after compaction+SIGKILL diverges:\n%s\nvs\n%s", got, want)
	}
	if got := reborn.get(t, "/v1"); got != wantGen {
		t.Fatalf("generation after reboot = %q, want %q (monotonic across restarts)", got, wantGen)
	}
}
