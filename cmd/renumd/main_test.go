package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freeAddr reserves a localhost port and releases it for the daemon (the
// tiny reuse race is acceptable in tests).
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// daemon drives run() in a goroutine against a real socket.
type daemon struct {
	addr string
	out  bytes.Buffer
	done chan int
}

func startDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	d := &daemon{addr: freeAddr(t), done: make(chan int, 1)}
	full := append([]string{"-addr", d.addr}, args...)
	go func() { d.done <- run(full, &d.out, &d.out) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if resp, err := http.Get("http://" + d.addr + "/healthz"); err == nil {
			resp.Body.Close()
			return d
		}
		select {
		case code := <-d.done:
			t.Fatalf("daemon exited %d before serving: %s", code, d.out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not come up: %s", d.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// stop sends the process SIGTERM (caught by the daemon's NotifyContext) and
// returns run's exit code.
func (d *daemon) stop(t *testing.T) int {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-d.done:
		return code
	case <-time.After(15 * time.Second):
		t.Fatalf("daemon did not exit: %s", d.out.String())
		return -1
	}
}

func (d *daemon) get(t *testing.T, path string) string {
	t.Helper()
	resp, err := http.Get("http://" + d.addr + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s = %d: %s", path, resp.StatusCode, b)
	}
	return string(b)
}

// TestPersistOnExitRoundTripsState is the satellite's contract end to end:
// boot from CSVs with -persist-on-exit, SIGTERM (graceful drain, exit 0,
// snapshot written), boot a second daemon from the snapshot directory alone
// — no -table, no -query — and observe byte-identical answers.
func TestPersistOnExitRoundTripsState(t *testing.T) {
	dir := t.TempDir()
	tableArgs := []string{
		"-table", filepath.Join("..", "..", "internal", "load", "testdata", "r.csv"),
		"-table", filepath.Join("..", "..", "internal", "load", "testdata", "s.csv"),
	}
	d1 := startDaemon(t, append(tableArgs,
		"-query", "Q(x, y, z) :- r(x, y), s(y, z).",
		"-snapshot-dir", dir, "-persist-on-exit")...)

	count1 := d1.get(t, "/v1/Q/count")
	var access1 [6]string
	for j := range access1 {
		access1[j] = d1.get(t, fmt.Sprintf("/v1/Q/access?j=%d", j))
	}
	batch1 := d1.get(t, "/v1/Q/batch?js=0,5,3")

	if code := d1.stop(t); code != 0 {
		t.Fatalf("first daemon exit %d: %s", code, d1.out.String())
	}
	if !strings.Contains(d1.out.String(), "renumd: saved ") {
		t.Fatalf("no save line in output: %s", d1.out.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 || !strings.HasPrefix(ents[0].Name(), "gen-") {
		t.Fatalf("snapshot dir after exit: %v (%v)", ents, err)
	}

	// Second life: snapshot only.
	d2 := startDaemon(t, "-snapshot-dir", dir)
	if !strings.Contains(d2.out.String(), "renumd: restored snapshot ") {
		t.Fatalf("no restore line: %s", d2.out.String())
	}
	if got := d2.get(t, "/v1/Q/count"); got != count1 {
		t.Fatalf("count after restart: %q vs %q", got, count1)
	}
	for j := range access1 {
		if got := d2.get(t, fmt.Sprintf("/v1/Q/access?j=%d", j)); got != access1[j] {
			t.Fatalf("access j=%d after restart: %q vs %q", j, got, access1[j])
		}
	}
	if got := d2.get(t, "/v1/Q/batch?js=0,5,3"); got != batch1 {
		t.Fatalf("batch after restart: %q vs %q", got, batch1)
	}
	if code := d2.stop(t); code != 0 {
		t.Fatalf("second daemon exit %d: %s", code, d2.out.String())
	}
}

// TestPersistOnExitRequiresDir pins the usage error.
func TestPersistOnExitRequiresDir(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-persist-on-exit"}, &out, &out); code != 2 {
		t.Fatalf("exit %d: %s", code, out.String())
	}
}

// TestWALFlagValidation pins the WAL flag usage errors: a bad fsync policy
// and a compactor without the directories it folds between.
func TestWALFlagValidation(t *testing.T) {
	for _, args := range [][]string{
		{"-wal-fsync", "sometimes"},
		{"-compact-every", "1s"},
		{"-compact-every", "1s", "-wal-dir", "w"},
		{"-compact-every", "1s", "-snapshot-dir", "s"},
	} {
		var out bytes.Buffer
		if code := run(args, &out, &out); code != 2 {
			t.Fatalf("run(%v) = %d, want usage error 2: %s", args, code, out.String())
		}
	}
}
