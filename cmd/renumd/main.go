// Command renumd serves enumeration indexes over HTTP: it loads CSV tables,
// compiles the -query programs into RandomAccess/UnionAccess/DynamicAccess
// indexes, and exposes the whole probe surface as a JSON API — so consumers
// that do not link the Go library can still count, page, sample and
// enumerate query answers. See internal/server for the endpoint reference.
//
// Usage:
//
//	renumd -addr :8080 -table r.csv -table s.csv \
//	       -query 'Q(x, y, z) :- r(x, y), s(y, z).'
//
// Each -table FILE registers a relation (base name = relation name, header
// row = schema, cells interned verbatim). Each -query PROGRAM may hold any
// number of rules; rules are grouped by head predicate, a multi-rule head
// becoming a union query. With -dynamic, single-rule full CQs build dynamic
// indexes that accept POST /v1/{query}/update.
//
// Concurrent GET /v1/{query}/access requests landing within
// -coalesce-window are merged into one AccessBatch probe (0 disables).
// Cursor sessions started via /v1/{query}/enum/start are evicted after
// -cursor-ttl of inactivity. -workers is each entry's worker budget — index
// build parallelism and batch/page/sample probe fan-out (0 = all cores).
//
// The serving port runs a pooled per-connection HTTP/1.1 loop by default
// (-http fast) that answers the hot GET probe endpoints without allocating;
// -http std swaps in net/http. Responses are byte-identical either way.
// -debug-addr exposes net/http/pprof on a separate listener (off unless
// set), so production profiling never rides the serving address.
//
// # Snapshots
//
// With -snapshot-dir, the daemon boots from the newest catalog snapshot in
// the directory (gen-<generation>.snap) when one exists: the compiled
// indexes are mapped straight from disk — cold start is open+validate, not
// load+preprocess — and the registry's generation numbering continues from
// the saved value, so generations stay monotonic across restarts. Any
// -table/-query flags are then applied on top of the restored state. When
// the directory is empty (first boot), -table/-query are required as usual.
// POST /admin/save persists the current generation into the directory, and
// -persist-on-exit saves automatically after the graceful drain, so
// SIGTERM → restart round-trips the served state. Dynamic (updatable)
// entries persist their base contents like everything else and come back
// updatable.
//
// # Durability (write-ahead log)
//
// With -wal-dir, every acknowledged POST /v1/{query}/update is appended to
// wal-<generation>.log — fsynced under -wal-fsync=always, the default —
// strictly before it is applied, so even a SIGKILL loses no acked update:
// the next boot replays the segment paired with the generation it restores.
// -compact-every folds the segment into a fresh snapshot generation on a
// timer (POST /admin/compact does it on demand): updatable entries are
// rebuilt aside, gen+1 is saved, the WAL rotates empty, and the new
// generation is published without blocking probes.
//
// Crash recovery pairs the newest snapshot with its segment, so reboot a
// WAL-enabled daemon from its -snapshot-dir (no -table/-query flags):
// re-registering on top would rebuild entries from base CSVs and bump the
// generation away from the segment that holds the acked updates. Admin
// mutations (load/register/rebuild) are not logged; they become durable at
// the next save or compaction.
//
// # Scale-out (sharding)
//
// -shard-slice i/K puts the daemon in shard mode: every entry serves only
// the i-th of K contiguous slices of its answer space, as local positions
// 0..count-1 (CQ entries build just 1/K of their index; union and
// snapshot-restored entries serve a position window over the full one).
// -router turns the daemon into the stateless scale-out tier instead: it
// discovers the shard daemons from repeatable -shard URLs (or a -shards-from
// file, re-read every -shard-refresh), scrapes their counts into a
// prefix-sum routing table, and serves the same probe API with answers
// byte-identical to a single unsharded daemon — /readyz is 503 until every
// shard is ready, and a shard fault maps to a typed 502 naming the daemon.
// Shard order in the -shard list must match the -shard-slice indexes.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get -drain-timeout to finish, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/server/router"
	"repro/internal/wal"
)

type stringList []string

func (l *stringList) String() string     { return strings.Join(*l, ",") }
func (l *stringList) Set(s string) error { *l = append(*l, s); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable plumbing so tests can drive the daemon.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("renumd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var tables, queries, shards stringList
	fs.Var(&tables, "table", "CSV file to load as a relation (repeatable)")
	fs.Var(&queries, "query", "datalog program to serve (repeatable)")
	fs.Var(&shards, "shard", "router mode: shard daemon base URL, in shard order (repeatable)")
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		dynamic      = fs.Bool("dynamic", false, "build dynamic (updatable) indexes for single-rule full CQs")
		workers      = fs.Int("workers", 0, "worker budget per entry: index build and batch/page/sample fan-out (0 = all cores)")
		coalesceWin  = fs.Duration("coalesce-window", 500*time.Microsecond, "window for merging concurrent /access probes (0 disables)")
		coalesceMax  = fs.Int("coalesce-max", 64, "flush a coalescing round early at this many pending probes")
		cursorTTL    = fs.Duration("cursor-ttl", 5*time.Minute, "idle eviction of enumeration cursors")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
		noAdmin      = fs.Bool("no-admin", false, "disable the /admin endpoints")
		snapshotDir  = fs.String("snapshot-dir", "", "boot from the newest catalog snapshot here; /admin/save writes new ones")
		persistExit  = fs.Bool("persist-on-exit", false, "save the current generation to -snapshot-dir after the graceful drain")
		walDir       = fs.String("wal-dir", "", "write-ahead log directory: replay on boot, append every acked update")
		walFsync     = fs.String("wal-fsync", "always", "WAL durability policy: always (fsync per record) or none")
		compactEvery = fs.Duration("compact-every", 0, "fold the WAL into a new snapshot generation on this period (0 disables; requires -wal-dir and -snapshot-dir)")
		httpMode     = fs.String("http", "fast", "connection loop: fast (pooled per-connection loop, hot GETs allocation-free) or std (net/http)")
		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof on this address (off unless set)")
		slowLog      = fs.Duration("slow-log", 500*time.Millisecond, "log requests slower than this as structured slog lines (0 disables)")
		traceBuffer  = fs.Int("trace-buffer", 256, "traced requests kept in memory for /debug/traces")
		routerMode   = fs.Bool("router", false, "serve as the scale-out router over -shard daemons instead of serving indexes")
		shardsFrom   = fs.String("shards-from", "", "router mode: read the shard URL list from this file (re-read every -shard-refresh)")
		shardRefresh = fs.Duration("shard-refresh", 2*time.Second, "router mode: period for scraping shard counts and health")
		shardSlice   = fs.String("shard-slice", "", "serve only slice i of a K-way answer partition, as \"i/K\" (shard daemon mode)")
		plannerMode  = fs.String("planner", "cost", "join-tree planning for entry builds: cost (search candidate trees, keep the cheapest) or off (serve the as-parsed tree byte-for-byte)")
		ansCacheB    = fs.Int64("answer-cache-bytes", 0, "byte budget for the generation-keyed /access answer cache (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *routerMode {
		if len(tables) > 0 || len(queries) > 0 || *shardSlice != "" || *dynamic {
			fmt.Fprintln(stderr, "renumd: -router takes no -table/-query/-shard-slice/-dynamic flags")
			return 2
		}
		if len(shards) == 0 && *shardsFrom == "" {
			fmt.Fprintln(stderr, "renumd: -router requires at least one -shard URL or -shards-from")
			return 2
		}
		return runRouter(shards, *shardsFrom, *addr, *shardRefresh, *cursorTTL, *drainTimeout, stdout, stderr)
	}
	var sliceIdx, sliceOf int
	if *shardSlice != "" {
		if n, err := fmt.Sscanf(*shardSlice, "%d/%d", &sliceIdx, &sliceOf); n != 2 || err != nil {
			fmt.Fprintf(stderr, "renumd: -shard-slice must be i/K (got %q)\n", *shardSlice)
			return 2
		}
		if sliceOf < 1 || sliceIdx < 0 || sliceIdx >= sliceOf {
			fmt.Fprintf(stderr, "renumd: -shard-slice %s out of range\n", *shardSlice)
			return 2
		}
		if *dynamic || *walDir != "" {
			fmt.Fprintln(stderr, "renumd: -shard-slice is static: it cannot combine with -dynamic or -wal-dir (positions shift under updates)")
			return 2
		}
	}
	if *httpMode != "fast" && *httpMode != "std" {
		fmt.Fprintf(stderr, "renumd: -http must be fast or std (got %q)\n", *httpMode)
		return 2
	}
	planner, err := renum.ParsePlannerMode(*plannerMode)
	if err != nil {
		fmt.Fprintf(stderr, "renumd: %v\n", err)
		return 2
	}
	if *ansCacheB < 0 {
		fmt.Fprintf(stderr, "renumd: -answer-cache-bytes must be non-negative (got %d)\n", *ansCacheB)
		return 2
	}
	if *persistExit && *snapshotDir == "" {
		fmt.Fprintln(stderr, "renumd: -persist-on-exit requires -snapshot-dir")
		return 2
	}
	walPolicy, err := wal.ParseSyncPolicy(*walFsync)
	if err != nil {
		fmt.Fprintf(stderr, "renumd: %v\n", err)
		return 2
	}
	if *compactEvery > 0 && (*walDir == "" || *snapshotDir == "") {
		fmt.Fprintln(stderr, "renumd: -compact-every requires -wal-dir and -snapshot-dir")
		return 2
	}

	coalesce := server.CoalesceConfig{
		Window:   *coalesceWin,
		MaxBatch: *coalesceMax,
	}

	// Boot from the newest snapshot when one exists; otherwise from CSVs.
	var reg *server.Registry
	if *snapshotDir != "" {
		path, gen, ok, err := load.LatestSnapshot(*snapshotDir)
		if err != nil {
			fmt.Fprintf(stderr, "renumd: %v\n", err)
			return 1
		}
		if ok {
			cat, err := renum.OpenSnapshot(path, renum.WithWorkers(*workers))
			if err != nil {
				fmt.Fprintf(stderr, "renumd: open snapshot %s: %v\n", path, err)
				return 1
			}
			// The catalog backs the served handles with its file mapping:
			// hold it for the process lifetime.
			defer cat.Close()
			reg, err = server.NewRegistryFromCatalog(cat, coalesce, *workers)
			if err != nil {
				fmt.Fprintf(stderr, "renumd: %v\n", err)
				return 1
			}
			fmt.Fprintf(stdout, "renumd: restored snapshot %s (generation %d)\n", path, gen)
		}
	}
	if reg == nil {
		if len(queries) == 0 || len(tables) == 0 {
			fmt.Fprintln(stderr, "renumd: at least one -table and one -query are required (or a -snapshot-dir holding a snapshot)")
			fs.Usage()
			return 2
		}
		db := renum.NewDatabase()
		if err := load.Tables(db, tables); err != nil {
			fmt.Fprintf(stderr, "renumd: %v\n", err)
			return 1
		}
		reg = server.NewRegistry(db, coalesce, *workers)
	} else {
		// Snapshot boot: -table/-query apply on top of the restored state.
		for _, path := range tables {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(stderr, "renumd: %v\n", err)
				return 1
			}
			name := strings.TrimSuffix(filepath.Base(path), ".csv")
			err = reg.LoadTable(name, f)
			f.Close()
			if err != nil {
				fmt.Fprintf(stderr, "renumd: %s: %v\n", path, err)
				return 1
			}
		}
	}
	// Planner mode applies to every entry built from here on (the Register
	// loop below, later /admin/register and /admin/rebuild). Snapshot-restored
	// entries keep the tree they were built with — that is the snapshot
	// contract: restored generations probe identically.
	reg.SetPlanner(planner)
	// Shard mode: applied before the Register loop so freshly registered CQs
	// build only their 1/K index slice, after restore so catalog entries get
	// position windows over their mapped indexes.
	if sliceOf > 0 {
		if err := reg.SetShardSlice(sliceIdx, sliceOf); err != nil {
			fmt.Fprintf(stderr, "renumd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "renumd: serving shard slice %d/%d\n", sliceIdx, sliceOf)
	}
	for _, program := range queries {
		if _, err := reg.Register(program, *dynamic); err != nil {
			fmt.Fprintf(stderr, "renumd: %v\n", err)
			return 1
		}
	}
	for _, name := range reg.Names() {
		e, _ := reg.Lookup(name)
		fmt.Fprintf(stdout, "renumd: serving %s (%s, %d answers)\n", name, e.Kind(), e.Count())
	}

	// The WAL attaches after every entry is registered: replay needs the
	// entries it targets, and the segment pairs with the generation the
	// boot sequence lands on (deterministic for a fixed flag set).
	if *walDir != "" {
		replayed, skipped, err := reg.AttachWAL(*walDir, walPolicy)
		if err != nil {
			fmt.Fprintf(stderr, "renumd: attach WAL: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "renumd: WAL attached (%d records replayed, %d skipped)\n", replayed, skipped)
		defer reg.CloseWAL()
	}

	// Slow-request lines go to stderr as JSON so log shippers pick them up
	// without parsing the human-oriented stdout chatter.
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	srv := server.New(reg, server.Config{
		CursorTTL:        *cursorTTL,
		AdminDisabled:    *noAdmin,
		SnapshotDir:      *snapshotDir,
		SlowLog:          *slowLog,
		TraceBuffer:      *traceBuffer,
		Logger:           logger,
		AnswerCacheBytes: *ansCacheB,
	})
	defer srv.Close()

	// Profiling endpoints live on their own listener so they are reachable
	// even when the serving port runs the fast loop, and are never exposed on
	// the serving address.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dbg := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		dbgLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(stderr, "renumd: debug listener: %v\n", err)
			return 1
		}
		go dbg.Serve(dbgLn)
		defer dbg.Close()
		fmt.Fprintf(stdout, "renumd: pprof on %s\n", dbgLn.Addr())
	}

	// Both loops share the shutdown contract: Serve returns
	// http.ErrServerClosed after Shutdown, and Shutdown drains in-flight
	// requests until its context expires.
	var (
		serve    func() error
		shutdown func(context.Context) error
	)
	if *httpMode == "fast" {
		fastSrv := server.NewFastServer(srv)
		serve = func() error { return fastSrv.ListenAndServe(*addr) }
		shutdown = fastSrv.Shutdown
	} else {
		httpSrv := &http.Server{
			Addr:              *addr,
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		serve = httpSrv.ListenAndServe
		shutdown = httpSrv.Shutdown
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Online compactor: fold the WAL into a fresh snapshot generation on a
	// timer. Probes never block on it; an empty segment is a no-op.
	var compactWG sync.WaitGroup
	if *compactEvery > 0 {
		compactWG.Add(1)
		go func() {
			defer compactWG.Done()
			tick := time.NewTicker(*compactEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					gen, folded, err := reg.Compact(*snapshotDir)
					if err != nil {
						fmt.Fprintf(stderr, "renumd: compact: %v\n", err)
						continue
					}
					if folded > 0 {
						fmt.Fprintf(stdout, "renumd: compacted %d records into generation %d\n", folded, gen)
					}
				}
			}
		}()
	}

	fmt.Fprintf(stdout, "renumd: listening on %s (%s loop)\n", *addr, *httpMode)
	errCh := make(chan error, 1)
	go func() { errCh <- serve() }()

	select {
	case err := <-errCh:
		// Listen failure (port in use, bad addr): nothing to drain. Stop
		// the compactor before touching stderr from this goroutine.
		stop()
		compactWG.Wait()
		fmt.Fprintf(stderr, "renumd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	// The compactor stops (and stops printing) before the main goroutine
	// resumes writing to stdout. Readiness drops first so orchestrators
	// stop routing new traffic while the drain runs.
	srv.SetReady(false)
	compactWG.Wait()
	fmt.Fprintln(stdout, "renumd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "renumd: drain: %v\n", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "renumd: %v\n", err)
		return 1
	}
	if *persistExit {
		// After the drain: no requests are in flight, so the saved snapshot
		// is exactly the state the last client observed. A failed save is a
		// hard error — exiting 0 would silently drop state the operator
		// asked to keep.
		path, gen, skipped, err := reg.SaveSnapshot(*snapshotDir)
		if err != nil {
			fmt.Fprintf(stderr, "renumd: persist-on-exit: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "renumd: saved %s (generation %d)\n", path, gen)
		for _, name := range skipped {
			fmt.Fprintf(stdout, "renumd: skipped %s (no snapshot form)\n", name)
		}
	}
	fmt.Fprintln(stdout, "renumd: bye")
	return 0
}

// runRouter serves the scale-out tier: no local indexes, just the routing
// table over the shard daemons. Same graceful-shutdown contract as the
// daemon: readiness drops first, in-flight requests get the drain timeout.
func runRouter(shards []string, shardsFrom, addr string, refresh, cursorTTL, drainTimeout time.Duration, stdout, stderr io.Writer) int {
	logger := slog.New(slog.NewJSONHandler(stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	rt := router.New(router.Config{
		Shards:     shards,
		ShardsFile: shardsFrom,
		Refresh:    refresh,
		CursorTTL:  cursorTTL,
		Logger:     logger,
	})
	defer rt.Close()
	<-rt.Start()
	if rt.Ready() {
		fmt.Fprintln(stdout, "renumd: routing table ready")
	} else {
		// Not fatal: the scrape loop keeps retrying and /readyz reports 503
		// honestly until the fleet comes up — routers boot before shards in
		// a compose stack.
		fmt.Fprintln(stdout, "renumd: shards not ready yet; serving 503 until the fleet scrapes ready")
	}

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(stdout, "renumd: router listening on %s (%d shards)\n", addr, len(shards))
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		stop()
		fmt.Fprintf(stderr, "renumd: %v\n", err)
		return 1
	case <-ctx.Done():
	}

	rt.SetReady(false)
	fmt.Fprintln(stdout, "renumd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(stderr, "renumd: drain: %v\n", err)
		return 1
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "renumd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "renumd: bye")
	return 0
}
