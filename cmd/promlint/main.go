// Command promlint validates a Prometheus text-format exposition read from
// stdin — a pure-Go stand-in for `promtool check metrics` so CI can lint
// the daemon's /metrics output without external tooling:
//
//	curl -s localhost:8080/metrics | promlint
//
// It checks metric/label name syntax, HELP/TYPE placement, duplicate
// series, and histogram invariants (cumulative buckets, +Inf present,
// _count consistency). Exit status 1 when any problem is found.
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	errs := obs.Lint(os.Stdin)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "promlint:", err)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d problem(s)\n", len(errs))
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}
