package renum

import (
	"math/rand"

	"repro/internal/dynaccess"
)

// DynamicAccess is a dynamic variant of RandomAccess (library extension in
// the direction of "answering queries under updates", the paper's citation
// [6]): for *full* free-connex CQs it maintains count, random access,
// inverted access and uniform sampling under tuple insertions and deletions
// on the base relations.
//
// Access costs O(log n) per join-tree node (Fenwick prefix search). An
// update costs O(a log n) where a is the number of ancestor tuples whose
// weights change — small on hierarchical data, linear in adversarial cases
// (which is unavoidable in general, by the known update-time lower bounds).
//
// A DynamicAccess is safe for concurrent use: reads (Count, Access,
// InvertedAccess, Contains, Sample, SampleN) run under a shared lock and
// interleave freely; Insert and Delete take the exclusive lock. A single
// index can therefore serve mixed read/update traffic from many goroutines.
type DynamicAccess struct {
	idx *dynaccess.Index
}

// Errors of the dynamic index.
var (
	// ErrNotFull: the dynamic index requires a projection-free CQ.
	ErrNotFull = dynaccess.ErrNotFull
)

// NewDynamicAccess builds the dynamic index over the current contents of db
// in linear time. The index takes a snapshot: subsequent changes must go
// through Insert/Delete on the index itself.
func NewDynamicAccess(db *Database, q *CQ) (*DynamicAccess, error) {
	idx, err := dynaccess.New(db, q)
	if err != nil {
		return nil, err
	}
	return &DynamicAccess{idx: idx}, nil
}

// Insert adds a tuple of the named base relation, updating all affected
// weights. Duplicates are no-ops. It reports whether the index changed.
func (d *DynamicAccess) Insert(baseRelation string, t Tuple) (bool, error) {
	return d.idx.Insert(baseRelation, t)
}

// Delete removes a tuple of the named base relation (no-op if absent).
func (d *DynamicAccess) Delete(baseRelation string, t Tuple) (bool, error) {
	return d.idx.Delete(baseRelation, t)
}

// ValidateUpdate checks that an update targeting baseRelation with the
// given tuple arity would be accepted — the relation is referenced by the
// query and the arity matches — without touching any state. Callers that
// stage side effects around an update (dictionary interning, WAL appends)
// use this to reject garbage before paying them.
func (d *DynamicAccess) ValidateUpdate(baseRelation string, arity int) error {
	return d.idx.ValidateUpdate(baseRelation, arity)
}

// Rebuild constructs a fresh DynamicAccess over the same logical contents
// — the compactor's rebuild-aside seam. The copy is assembled under the
// source's shared read lock only, so probes continue while it builds, and
// it enumerates byte-identically to the source (tombstone positions are
// preserved, so even future re-inserts revive in the same places).
func (d *DynamicAccess) Rebuild() (*DynamicAccess, error) {
	idx, err := d.idx.Rebuild()
	if err != nil {
		return nil, err
	}
	return &DynamicAccess{idx: idx}, nil
}

// Count returns the current |Q(D)| in constant time.
func (d *DynamicAccess) Count() int64 { return d.idx.Count() }

// Access returns the j-th answer of the current enumeration order.
func (d *DynamicAccess) Access(j int64) (Tuple, error) { return d.idx.Access(j) }

// AccessInto is Access writing into a caller-provided buffer (len == arity):
// the dynamic counterpart of RandomAccess.AccessInto. The probe still takes
// the shared read lock; only the answer allocation is avoided.
func (d *DynamicAccess) AccessInto(j int64, buf Tuple) error { return d.idx.AccessInto(j, buf) }

// InvertedAccess returns the current position of an answer, or ok=false.
func (d *DynamicAccess) InvertedAccess(t Tuple) (int64, bool) {
	return d.idx.InvertedAccess(t)
}

// Contains reports whether t is currently an answer.
func (d *DynamicAccess) Contains(t Tuple) bool { return d.idx.Contains(t) }

// Sample returns a uniformly random current answer (ok=false when empty —
// an empty index is a result, not an error).
func (d *DynamicAccess) Sample(rng *rand.Rand) (Tuple, bool) {
	return d.idx.Sample(rng)
}

// SampleN returns k independent uniform samples (with replacement — the
// dynamic index has no cheap distinct-sampling primitive) drawn against one
// consistent snapshot: no update interleaves inside the batch.
//
// The signature matches the Sampler capability shared with
// RandomAccess.SampleN and UnionAccess.SampleN: a negative k is
// ErrOutOfBounds, and an *empty index* yields an empty sample with a nil
// error — emptiness is a result, not a failure. (Before the capability
// unification this method returned a bare []Tuple, leaving callers to guess
// whether nil meant "empty" or "invalid k".)
func (d *DynamicAccess) SampleN(k int64, rng *rand.Rand) ([]Tuple, error) {
	if k < 0 {
		return nil, ErrOutOfBounds
	}
	return d.idx.SampleN(k, rng), nil
}

// Head returns the output variable order.
func (d *DynamicAccess) Head() []string { return d.idx.Head() }
