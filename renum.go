// Package renum is a Go implementation of "Answering (Unions of) Conjunctive
// Queries using Random Access and Random-Order Enumeration" (Carmeli, Zeevi,
// Berkholz, Kimelfeld, Schweikardt — PODS 2020).
//
// Given an in-memory relational database and a free-connex conjunctive query
// (CQ), the library builds — in time linear in the database — an index that
// supports:
//
//   - Count:          |Q(D)| in O(1);
//   - Access(j):      the j-th answer of a fixed enumeration order in
//     O(log |D|) (Theorem 4.3, Algorithms 2–3);
//   - InvertedAccess: answer → j in O(1) (Algorithm 4);
//   - a uniformly random permutation of the answers with O(log |D|) delay
//     (Theorem 3.7: Fisher–Yates over random access).
//
// For unions of free-connex CQs (UCQs) it offers two random-order
// enumerators:
//
//   - RandomOrderUnion (REnum(UCQ), Algorithm 5): works for every union of
//     free-connex CQs, delay logarithmic in expectation (Theorem 5.4);
//   - UnionAccess (REnum(mcUCQ), Theorem 5.5): for mutually-compatible UCQs,
//     true random access in O(log² |D|) and a worst-case O(log²)-delay random
//     permutation.
//
// The paper's experimental workload (TPC-H generator, query suite, baseline
// samplers and figure-by-figure harness) lives under internal/ and is driven
// by cmd/replicate; see DESIGN.md and EXPERIMENTS.md.
//
// # One constructor, capability discovery
//
// Open is the entry point: it takes a CQ or a UCQ plus functional options
// (WithCanonical, WithDynamic, WithVerify, WithWorkers) and returns a
// *Handle exposing the shared probe surface — Count, Access, AccessInto,
// AccessBatch, Page, Head, Explain — uniformly over every backend. Optional
// facilities are discovered through Handle.Capabilities or the typed
// accessors (Inverter, Updater, Sampler, Container), which fail with the
// ErrUnsupported sentinel instead of making callers type-switch on concrete
// index types. Enumeration is iterator-native: Handle.All and
// Handle.Shuffled return iter.Seq2[Tuple, error] cursors, with Enumerator
// and Permutation kept as thin adapters. The batch, page and enumeration
// entry points have context.Context variants that honor cancellation
// between probe chunks.
//
// The concrete types below (RandomAccess, UnionAccess, DynamicAccess,
// RandomOrderUnion) remain as the underlying machinery and for
// code written against the pre-Handle API.
//
// # Persistent snapshots
//
// Static handles persist: SaveSnapshot writes a whole compiled catalog
// (dictionary, relations, indexes) into a versioned, checksummed binary
// file, and OpenSnapshot restores it in O(open+validate) — numeric sections
// are zero-copy views of the file mapping, so a process restart skips
// preprocessing entirely. The save capability is discovered like every
// other one (CapSnapshot); dynamic handles stay heap-only and report so.
// Decode failures are typed (ErrSnapshotInvalid) and never panic.
//
// # Concurrency
//
// The library is built to serve heavy concurrent read traffic:
//
//   - RandomAccess and UnionAccess are immutable after construction. Every
//     probe (Count, Access, AccessBatch, InvertedAccess, Contains, Page,
//     PageParallel, SampleN, SampleK) only reads the index — there is no
//     lazy memoization on the probe path — so one index may be shared by any
//     number of goroutines with no locking. This is enforced by `-race`
//     hammer tests in internal/access, internal/mcucq and at the package
//     root.
//   - DynamicAccess mutates under Insert/Delete and is internally
//     synchronized with a readers–writer lock: concurrent readers
//     interleave freely and writers are exclusive, so a shared dynamic
//     index is safe under mixed traffic.
//   - The stateful cursors (Enumerator, Permutation, RandomOrderUnion) are
//     single-consumer: share the index, not the cursor. Permutation.NextN
//     lets a single consumer fan its probes across cores.
//
// Index construction parallelizes automatically: independent join-tree
// subtrees build on a worker pool once the input exceeds
// access.DefaultSerialThreshold tuples (small inputs build serially —
// goroutine overhead would dominate), and UCQ preparation builds its
// disjunct and intersection indexes concurrently. Parallel and serial
// builds produce identical structures, so the enumeration order never
// depends on the worker count.
//
// The batched APIs (AccessBatch, SampleN, PageParallel, Permutation.NextN)
// amortize per-probe overhead and fan out across goroutines internally —
// they are the preferred way to drain many positions from one caller.
//
// # Quick start
//
//	db := renum.NewDatabase()
//	r := db.MustCreate("R", "a", "b")
//	r.MustInsert(1, 2)
//	// Q(a, b) :- R(a, b)
//	q := renum.MustCQ("Q", []string{"a", "b"}, renum.NewAtom("R", renum.V("a"), renum.V("b")))
//	h, err := renum.Open(db, q)
//	...
//	for t, err := range h.Shuffled(rand.New(rand.NewSource(1))) { ... }
package renum

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/hypergraph"
	"repro/internal/mcucq"
	"repro/internal/naive"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/unionenum"
)

// Re-exported data-model types. See internal/relation for full method docs.
type (
	// Database maps relation names to relations and owns the string
	// dictionary of the instance.
	Database = relation.Database
	// Relation is a named, schema'd set of tuples (insertion-ordered).
	Relation = relation.Relation
	// Schema is an ordered attribute-name list.
	Schema = relation.Schema
	// Tuple is an ordered list of values.
	Tuple = relation.Tuple
	// Value is a dictionary-encoded attribute value.
	Value = relation.Value
	// Dict interns strings as Values.
	Dict = relation.Dict
)

// Re-exported query-model types. See internal/query.
type (
	// CQ is a conjunctive query Q(x̄) :- R1(t̄1), ..., Rn(t̄n).
	CQ = query.CQ
	// UCQ is a union of CQs with equal head arity.
	UCQ = query.UCQ
	// Atom is a relational atom R(t̄).
	Atom = query.Atom
	// Term is a variable or constant inside an atom.
	Term = query.Term
)

// NewDatabase returns an empty database.
func NewDatabase() *Database { return relation.NewDatabase() }

// V returns a variable term; C returns a constant term.
func V(name string) Term { return query.V(name) }

// C returns a constant term.
func C(v Value) Term { return query.C(v) }

// NewAtom builds an atom R(terms...).
func NewAtom(rel string, terms ...Term) Atom { return query.NewAtom(rel, terms...) }

// NewCQ builds and validates a conjunctive query.
func NewCQ(name string, head []string, body []Atom) (*CQ, error) {
	return query.NewCQ(name, head, body)
}

// MustCQ is NewCQ that panics on error.
func MustCQ(name string, head []string, body ...Atom) *CQ {
	return query.MustCQ(name, head, body...)
}

// NewUCQ builds and validates a union of CQs.
func NewUCQ(name string, disjuncts ...*CQ) (*UCQ, error) {
	return query.NewUCQ(name, disjuncts...)
}

// MustUCQ is NewUCQ that panics on error.
func MustUCQ(name string, disjuncts ...*CQ) *UCQ {
	return query.MustUCQ(name, disjuncts...)
}

// IsAcyclic reports whether the CQ's hypergraph is α-acyclic.
func IsAcyclic(q *CQ) bool { return hypergraph.IsAcyclicCQ(q) }

// IsFreeConnex reports whether the CQ is free-connex acyclic — the exact
// class for which this library guarantees linear preprocessing and
// logarithmic random access (and, for self-join-free CQs, the exact
// tractability frontier under the paper's fine-grained hypotheses).
func IsFreeConnex(q *CQ) bool { return hypergraph.IsFreeConnex(q) }

// Errors surfaced by preparation.
var (
	// ErrCyclic: the query's hypergraph is cyclic.
	ErrCyclic = reduce.ErrCyclic
	// ErrNotFreeConnex: acyclic but not free-connex.
	ErrNotFreeConnex = reduce.ErrNotFreeConnex
	// ErrIncompatible: the UCQ is not mutually compatible (mc-UCQ access).
	ErrIncompatible = mcucq.ErrIncompatible
)

// RandomAccess is the Theorem 4.3 structure for one free-connex CQ.
type RandomAccess struct {
	c *cqenum.CQ
	// plan records the cost-based planner's candidate set when Open compiled
	// this index in PlannerCost mode (nil for the pre-Handle constructors,
	// PlannerOff, and snapshot restores).
	plan *plan.Plan
}

// NewRandomAccess builds the index in linear time. It returns ErrCyclic or
// ErrNotFreeConnex for unsupported queries.
func NewRandomAccess(db *Database, q *CQ) (*RandomAccess, error) {
	c, err := cqenum.Prepare(db, q, reduce.Options{})
	if err != nil {
		return nil, err
	}
	return &RandomAccess{c: c}, nil
}

// NewRandomAccessCanonical is NewRandomAccess with a canonical enumeration
// order: node relations are sorted before indexing, so Access(j) depends
// only on the database *content* — two databases holding the same facts in
// different insertion orders produce identical enumerations. Preprocessing
// becomes O(n log n) instead of linear.
func NewRandomAccessCanonical(db *Database, q *CQ) (*RandomAccess, error) {
	c, err := cqenum.Prepare(db, q, reduce.Options{CanonicalOrder: true})
	if err != nil {
		return nil, err
	}
	return &RandomAccess{c: c}, nil
}

// Count returns |Q(D)| in constant time.
func (r *RandomAccess) Count() int64 { return r.c.Count() }

// Access returns the j-th answer (0-based) of the fixed enumeration order.
// Its only allocation is the returned tuple; use AccessInto to avoid it.
func (r *RandomAccess) Access(j int64) (Tuple, error) { return r.c.Index.Access(j) }

// AccessInto is Access writing into a caller-provided buffer of length
// Count's arity (len(Head())). It is allocation-free — the probe walks the
// index's group-ID bucket tables with pure array arithmetic — and safe to
// call concurrently with any other probes (each goroutine needs its own
// buffer).
func (r *RandomAccess) AccessInto(j int64, buf Tuple) error {
	return r.c.Index.AccessInto(j, buf)
}

// AccessBatch returns Access(j) for every j in js, in order, fanning the
// O(log |D|) probes out over up to `workers` goroutines (workers <= 0 picks
// a default sized to the machine; small batches run serially either way).
// The batch is validated up front: any out-of-range position fails the
// whole call with ErrOutOfBounds before any answer is assembled. Duplicates
// are allowed and yield equal answers.
func (r *RandomAccess) AccessBatch(js []int64, workers int) ([]Tuple, error) {
	return r.c.Index.AccessBatch(js, workers)
}

// InvertedAccess returns the position of an answer, or ok=false if it is not
// an answer.
func (r *RandomAccess) InvertedAccess(t Tuple) (int64, bool) {
	return r.c.Index.InvertedAccess(t)
}

// Contains reports whether t ∈ Q(D).
func (r *RandomAccess) Contains(t Tuple) bool { return r.c.Index.Contains(t) }

// Head returns the output variable order.
func (r *RandomAccess) Head() []string { return r.c.Index.Head() }

// Explain renders the compiled plan: the planner's candidate set with costs
// and the winner (when cost-based planning ran), followed by the reduced
// full-join tree with node schemas, cardinalities and join attributes.
func (r *RandomAccess) Explain() string {
	if r.plan != nil {
		return r.plan.Explain() + r.c.FullJoin.Explain()
	}
	return r.c.FullJoin.Explain()
}

// OrderSpec returns the head variables in decreasing significance of the
// enumeration order. For an index built with NewRandomAccessCanonical, the
// enumeration order is exactly the lexicographic order of the answers under
// this variable sequence.
func (r *RandomAccess) OrderSpec() []string { return r.c.Index.OrderSpec() }

// Page returns answers offset..offset+limit-1 of the fixed enumeration order
// (the "first pages of search results" use case of the paper's introduction,
// with O(log |D|) cost per row regardless of offset — no need to skip over
// earlier rows). Short pages at the end of the result are returned without
// error; an offset at or past Count() yields an empty page.
func (r *RandomAccess) Page(offset, limit int64) ([]Tuple, error) {
	return r.PageParallel(offset, limit, 1)
}

// PageParallel is Page with the per-row Access probes fanned out over up to
// `workers` goroutines (workers <= 0 picks a default sized to the machine).
// Row order and content are identical to Page; only the wall-clock cost of
// assembling a large page changes.
func (r *RandomAccess) PageParallel(offset, limit int64, workers int) ([]Tuple, error) {
	js, err := pagePositions(offset, limit, r.Count())
	if err != nil || js == nil {
		return nil, err
	}
	return r.c.Index.AccessBatch(js, workers)
}

// checkBufArity is the single definition of the AccessInto buffer contract:
// the caller's buffer must match the output arity exactly.
func checkBufArity(buf Tuple, arity int) error {
	if len(buf) != arity {
		return fmt.Errorf("renum: AccessInto: buffer length %d does not match arity %d", len(buf), arity)
	}
	return nil
}

// pagePositions is the single definition of the Page clamp contract shared
// by every backend and the Handle: negative offset/limit is ErrOutOfBounds,
// an offset at or past n is an empty page (nil, nil), and a tail page is
// shortened. The clamp subtracts rather than adding offset+limit, which
// could overflow for limits near MaxInt64.
func pagePositions(offset, limit, n int64) ([]int64, error) {
	if offset < 0 || limit < 0 {
		return nil, ErrOutOfBounds
	}
	if offset >= n {
		return nil, nil
	}
	if limit > n-offset {
		limit = n - offset
	}
	js := make([]int64, limit)
	for i := range js {
		js[i] = offset + int64(i)
	}
	return js, nil
}

// Enumerate returns a deterministic logarithmic-delay enumerator.
func (r *RandomAccess) Enumerate() *Enumerator {
	e := r.c.Enumerate()
	return &Enumerator{next: e.Next}
}

// Permute returns a uniformly random permutation of the answers with
// logarithmic delay (REnum(CQ)).
func (r *RandomAccess) Permute(rng *rand.Rand) *Permutation {
	p := r.c.Permute(rng)
	return &Permutation{
		next:     p.Next,
		nextN:    func(k int64) []Tuple { return p.NextN(k, 0) },
		nextNCtx: func(ctx context.Context, k int64) ([]Tuple, error) { return p.NextNContext(ctx, k, 0) },
	}
}

// SampleK returns k uniformly random *distinct* answers (all of Q(D) if
// k ≥ Count()) in O(k log |D|): the first k steps of a lazy Fisher–Yates
// permutation — sampling without replacement needs no rejection at all,
// unlike the with-replacement baseline.
func (r *RandomAccess) SampleK(k int64, rng *rand.Rand) ([]Tuple, error) {
	if k < 0 {
		return nil, ErrOutOfBounds
	}
	if n := r.Count(); k > n {
		k = n
	}
	out := make([]Tuple, 0, k)
	p := r.c.Permute(rng)
	for int64(len(out)) < k {
		t, ok := p.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out, nil
}

// SampleN is SampleK with the index probes fanned out across the default
// worker pool: the k distinct positions are drawn serially from the lazy
// Fisher–Yates shuffle (identical draws to SampleK for the same rng, hence
// the identical uniform-without-replacement distribution), and the k
// O(log |D|) accesses then run concurrently. Use it when k is large enough
// that random access dominates the draw.
func (r *RandomAccess) SampleN(k int64, rng *rand.Rand) ([]Tuple, error) {
	return raBackend{r}.sampleN(k, rng, 0)
}

// Enumerator yields answers in the index's fixed order. It is a thin
// single-consumer adapter over the iterator-native Handle.All / the index's
// sequential Access order; existing Next-loop call sites keep working
// unchanged.
type Enumerator struct {
	next func() (relation.Tuple, bool)
}

// Next returns the next answer; ok is false at the end.
func (e *Enumerator) Next() (Tuple, bool) { return e.next() }

// Permutation yields each answer exactly once, in uniformly random order.
// It is a single-consumer cursor: drive it from one goroutine (the
// underlying index may be shared freely).
type Permutation struct {
	next     func() (relation.Tuple, bool)
	nextN    func(k int64) []relation.Tuple
	nextNCtx func(ctx context.Context, k int64) ([]relation.Tuple, error)
}

// Next returns the next answer of the permutation; ok is false at the end.
func (p *Permutation) Next() (Tuple, bool) { return p.next() }

// NextN returns the next k answers of the permutation (fewer at the end,
// empty once exhausted). The emitted sequence is identical to k calls of
// Next, but the underlying random-access probes are fanned out across the
// worker pool — the batched form of random-order enumeration.
func (p *Permutation) NextN(k int64) []Tuple {
	if p.nextN != nil {
		return p.nextN(k)
	}
	c := k // initial capacity only: k may be "drain everything" (MaxInt64)
	if c > 1024 {
		c = 1024
	} else if c < 0 {
		c = 0
	}
	out := make([]Tuple, 0, c)
	for int64(len(out)) < k {
		t, ok := p.next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	return out
}

// NextNContext is NextN honoring cancellation between probe chunks: when ctx
// is cancelled mid-batch the call returns ctx.Err(). The k random draws are
// made serially up front (identical rng consumption to NextN), so a
// cancelled batch consumes its draws and discards the answers — the cursor
// stays valid and simply skips them, which is the right behavior for an
// abandoned network request draining a shared permutation.
func (p *Permutation) NextNContext(ctx context.Context, k int64) ([]Tuple, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Every constructor wires the batched context path; the guard only
	// protects a zero-value Permutation, whose draw is empty anyway.
	if p.nextNCtx == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return p.NextN(k), nil
	}
	return p.nextNCtx(ctx, k)
}

// RandomOrderUnion is REnum(UCQ) (Algorithm 5): a single-use random-order
// enumerator over a union of free-connex CQs, with expected-logarithmic
// delay.
type RandomOrderUnion struct {
	e *unionenum.Enumerator
}

// NewRandomOrderUnion prepares each disjunct (linear time) and returns the
// enumerator. The enumerator is single-use: Next consumes the union.
func NewRandomOrderUnion(db *Database, u *UCQ, rng *rand.Rand) (*RandomOrderUnion, error) {
	e, err := unionenum.NewFromUCQ(db, u, rng, reduce.Options{})
	if err != nil {
		return nil, err
	}
	return &RandomOrderUnion{e: e}, nil
}

// Next returns the next answer in uniformly random order, without
// repetitions; ok is false when the union is exhausted.
func (r *RandomOrderUnion) Next() (Tuple, bool) { return r.e.Next() }

// Rejections reports how many internal iterations were rejected so far (at
// most one per answer, which is what bounds the amortized delay).
func (r *RandomOrderUnion) Rejections() int64 { return r.e.Rejections }

// UnionAccess is REnum(mcUCQ) (Theorem 5.5): random access and random-order
// enumeration for mutually-compatible UCQs. Its probe surface is at parity
// with RandomAccess — Count, Access, AccessInto, AccessBatch, Page,
// PageParallel, SampleN, Contains, Head — so UCQ and CQ backends are
// interchangeable behind a Handle.
type UnionAccess struct {
	m    *mcucq.MCUCQ
	head []string
	// u is the union as compiled (after disjunct-order planning); snapshots
	// record it so restore pairs the saved indexes with the right disjuncts.
	u *query.UCQ
	// plan records the disjunct-order planning decision when Open compiled
	// this union in PlannerCost mode (nil otherwise).
	plan *plan.Plan
}

// NewUnionAccess prepares the disjuncts and all intersection CQs and
// assembles the union-trick access structure. It fails if some disjunct or
// intersection is not free-connex. When verify is true, order compatibility
// is checked explicitly (costs an enumeration of every intersection).
func NewUnionAccess(db *Database, u *UCQ, verify bool) (*UnionAccess, error) {
	return newUnionAccess(db, u, mcucq.Options{Verify: verify})
}

func newUnionAccess(db *Database, u *UCQ, opts mcucq.Options) (*UnionAccess, error) {
	m, err := mcucq.New(db, u, opts)
	if err != nil {
		return nil, err
	}
	// Every disjunct shares the first's output arity; position i of each
	// disjunct head is output column i, so the first disjunct's names are
	// the union's output order.
	head := append([]string(nil), u.Disjuncts[0].Head...)
	return &UnionAccess{m: m, head: head, u: u}, nil
}

// Count returns the number of answers of the union.
func (ua *UnionAccess) Count() int64 { return ua.m.Count() }

// Access returns the j-th answer of the union's enumeration order in
// O(2^m log² |D|).
func (ua *UnionAccess) Access(j int64) (Tuple, error) { return ua.m.Access(j) }

// AccessInto is Access writing into a caller-provided buffer of length
// Head() arity. Unlike RandomAccess.AccessInto it is not allocation-free —
// the mc-UCQ access primitive materializes the answer while resolving which
// disjunct serves position j — but the API contract (buffer reuse, identical
// answers) is the same, so capability-generic callers need no special case.
func (ua *UnionAccess) AccessInto(j int64, buf Tuple) error {
	if err := checkBufArity(buf, len(ua.head)); err != nil {
		return err
	}
	t, err := ua.m.Access(j)
	if err != nil {
		return err
	}
	copy(buf, t)
	return nil
}

// Contains reports whether t is an answer of the union.
func (ua *UnionAccess) Contains(t Tuple) bool { return ua.m.Test(t) }

// Head returns the output variable order (the first disjunct's head names;
// position i of every disjunct is output column i).
func (ua *UnionAccess) Head() []string { return ua.head }

// AccessBatch returns Access(j) for every j in js, in order, with the union
// probes fanned out over up to `workers` goroutines (workers <= 0 picks a
// default sized to the machine). Validation and duplicate semantics match
// RandomAccess.AccessBatch.
func (ua *UnionAccess) AccessBatch(js []int64, workers int) ([]Tuple, error) {
	return ua.accessBatchContext(context.Background(), js, workers)
}

func (ua *UnionAccess) accessBatchContext(ctx context.Context, js []int64, workers int) ([]Tuple, error) {
	n := ua.Count()
	for _, j := range js {
		if j < 0 || j >= n {
			return nil, ErrOutOfBounds
		}
	}
	out := make([]Tuple, len(js))
	if err := parallel.ForEachChunkCtx(ctx, len(js), workers, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			t, err := ua.m.Access(js[i])
			if err != nil {
				return err
			}
			out[i] = t
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Page returns answers offset..offset+limit-1 of the union's enumeration
// order, with the same clamping semantics as RandomAccess.Page: short pages
// at the end are returned without error, and an offset at or past Count()
// yields an empty page.
func (ua *UnionAccess) Page(offset, limit int64) ([]Tuple, error) {
	return ua.PageParallel(offset, limit, 1)
}

// PageParallel is Page with the per-row union probes fanned out over up to
// `workers` goroutines. Row order and content are identical to Page.
func (ua *UnionAccess) PageParallel(offset, limit int64, workers int) ([]Tuple, error) {
	js, err := pagePositions(offset, limit, ua.Count())
	if err != nil || js == nil {
		return nil, err
	}
	return ua.AccessBatch(js, workers)
}

// SampleN returns k uniformly random *distinct* answers of the union (all of
// them if k ≥ Count()): the first k steps of a lazy Fisher–Yates permutation
// over mc-UCQ random access, mirroring RandomAccess.SampleN — including the
// error shape (k < 0 is ErrOutOfBounds; an empty union yields an empty
// sample, not an error).
func (ua *UnionAccess) SampleN(k int64, rng *rand.Rand) ([]Tuple, error) {
	return uaBackend{ua}.sampleN(k, rng, 0)
}

// Permute returns a uniformly random permutation with O(log²) delay.
func (ua *UnionAccess) Permute(rng *rand.Rand) *Permutation {
	p := ua.m.Permute(rng)
	return &Permutation{
		next:     p.Next,
		nextN:    func(k int64) []Tuple { return p.NextN(k, 0) },
		nextNCtx: func(ctx context.Context, k int64) ([]Tuple, error) { return p.NextNContext(ctx, k, 0) },
	}
}

// Evaluate materializes Q(D) with a straightforward join — no complexity
// guarantees; works for every CQ, including cyclic ones. Intended for small
// inputs, debugging, and as ground truth.
func Evaluate(db *Database, q *CQ) ([]Tuple, error) { return naive.Evaluate(db, q) }

// EvaluateUCQ materializes the union's answers (deduplicated).
func EvaluateUCQ(db *Database, u *UCQ) ([]Tuple, error) { return naive.EvaluateUCQ(db, u) }

// ErrOutOfBounds is returned by Access for positions outside [0, Count()).
var ErrOutOfBounds = access.ErrOutOfBounds

// IsOutOfBounds reports whether err indicates an out-of-range Access call.
func IsOutOfBounds(err error) bool { return errors.Is(err, ErrOutOfBounds) }
