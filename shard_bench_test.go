package renum

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/synth"
)

// BenchmarkShardRouting prices the in-process sharding layer: the same star
// instance behind an unsharded index and behind WithShards(4), probed with
// identical position streams. The delta is the cost of the prefix-sum route
// (O(log K) fenwick descent) per probe; AccessInto must stay allocation-free
// through the sharded path — BENCH_shard.json pins both arms at 0 allocs/op.
func BenchmarkShardRouting(b *testing.B) {
	db, q, err := synth.Star(synth.Config{
		Relations: 3, TuplesPerRelation: 20_000, KeyDomain: 4_000, SkewS: 1.1, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	ref, err := Open(db, q)
	if err != nil {
		b.Fatal(err)
	}
	sh, err := Open(db, q, WithShards(4))
	if err != nil {
		b.Fatal(err)
	}
	n := ref.Count()
	if n == 0 || sh.Count() != n {
		b.Fatalf("bad fixture: counts %d vs %d", ref.Count(), sh.Count())
	}
	const batch = 1024
	rng := rand.New(rand.NewSource(13))
	js := make([]int64, batch)
	for i := range js {
		js[i] = rng.Int63n(n)
	}

	for _, arm := range []struct {
		name string
		h    *Handle
	}{{"Unsharded", ref}, {"K=4", sh}} {
		b.Run("AccessInto/"+arm.name, func(b *testing.B) {
			buf := make(Tuple, len(arm.h.Head()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := arm.h.AccessInto(js[i%batch], buf); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("AccessBatch%d/%s", batch, arm.name), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := arm.h.AccessBatch(js); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
