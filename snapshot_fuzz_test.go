package renum

import (
	"bytes"
	"testing"
)

// fuzzSeedSnapshot builds one valid catalog image (a CQ and a UCQ over an
// interned-string database) for the fuzz corpus.
func fuzzSeedSnapshot(f *testing.F) []byte {
	db := NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	for i := 0; i < 20; i++ {
		r.MustInsert(Value(i%5), db.Intern("w"))
		s.MustInsert(db.Intern("w"), Value(i%3))
	}
	q := MustCQ("q", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	u := MustUCQ("U",
		MustCQ("u1", []string{"x", "y"}, NewAtom("R", V("x"), V("y"))),
		MustCQ("u2", []string{"y", "x"}, NewAtom("S", V("y"), V("x"))))
	hq, err := Open(db, q)
	if err != nil {
		f.Fatal(err)
	}
	hu, err := Open(db, u)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, db, 3, []CatalogEntry{
		{Name: "q", Q: q, H: hq},
		{Name: "U", Q: u, H: hu},
	}); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzOpenSnapshot drives the snapshot decoder with mutated images:
// truncated, bit-flipped, version-bumped, or arbitrary bytes. The contract
// under test is the acceptance criterion of the format: the decoder either
// succeeds or returns an error in the ErrSnapshotInvalid family — it never
// panics and never reads out of bounds (the Go runtime turns an over-read
// of the aligned copy into a crash this fuzz target would catch). When an
// image does open, the restored handles are probed: the decoder's semantic
// validation guarantees probes cannot fault even if the content lies.
func FuzzOpenSnapshot(f *testing.F) {
	seed := fuzzSeedSnapshot(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:24])
	f.Add(seed[:len(seed)-7])
	bump := append([]byte(nil), seed...)
	bump[8] ^= 0x02 // version field
	f.Add(bump)
	flip := append([]byte(nil), seed...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	f.Add([]byte("RNMSNAP1 not really a snapshot"))

	f.Fuzz(func(t *testing.T, data []byte) {
		cat, err := OpenSnapshotBytes(data)
		if err != nil {
			if !IsSnapshotInvalid(err) {
				t.Fatalf("decode error %v is not in the ErrSnapshotInvalid family", err)
			}
			return
		}
		defer cat.Close()
		// Opened: probe every entry. Answers may be semantically wrong on a
		// forged file, but no probe may panic or over-read.
		for _, e := range cat.Entries() {
			h := e.H
			n := h.Count()
			if n < 0 {
				t.Fatalf("entry %s: negative count %d", e.Name, n)
			}
			if n == 0 {
				continue
			}
			for _, j := range []int64{0, n / 2, n - 1} {
				tu, err := h.Access(j)
				if err != nil {
					t.Fatalf("entry %s: Access(%d) on validated snapshot: %v", e.Name, j, err)
				}
				if inv, err2 := h.Inverter(); err2 == nil {
					inv.InvertedAccess(tu) // must not panic; result unchecked
				}
				if c, err2 := h.Container(); err2 == nil {
					c.Contains(tu)
				}
			}
		}
	})
}
