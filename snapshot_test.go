package renum

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/query"
	"repro/internal/snapshot"
)

// snapFixture builds a database with dictionary-interned (string) values —
// so the dict round-trips too — plus a CQ with a projection and a constant.
func snapFixture(t testing.TB) (*Database, *CQ, *UCQ) {
	t.Helper()
	db := NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	rng := rand.New(rand.NewSource(11))
	words := []string{"red", "green", "blue", "teal", "plum", "rust", "jade", "gold"}
	for i := 0; i < 150; i++ {
		r.MustInsert(db.Intern(words[rng.Intn(len(words))]), db.Intern(words[rng.Intn(4)]))
		s.MustInsert(db.Intern(words[rng.Intn(4)]), db.Intern(words[rng.Intn(len(words))]))
	}
	// Free-connex projection: c is existential, {a, b} is covered by R.
	q := MustCQ("q", []string{"a", "b"},
		NewAtom("R", V("a"), V("b")),
		NewAtom("S", V("b"), V("c")))
	u := MustUCQ("U",
		MustCQ("u1", []string{"x", "y"}, NewAtom("R", V("x"), V("y"))),
		MustCQ("u2", []string{"x", "y"}, NewAtom("S", V("x"), V("y"))))
	return db, q, u
}

// saveToTemp writes a catalog with both entries and returns its path.
func saveToTemp(t *testing.T, db *Database, gen uint64, entries []CatalogEntry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cat.snap")
	if err := SaveSnapshot(path, db, gen, entries); err != nil {
		t.Fatal(err)
	}
	return path
}

// assertProbeEqual drives the whole shared probe surface on both handles
// and fails on the first divergence: Count, Head, every Access position,
// the full All() enumeration, AccessBatch over random positions, Page, and
// seeded Shuffled/Sampler draws.
func assertProbeEqual(t *testing.T, built, restored *Handle) {
	t.Helper()
	if built.Count() != restored.Count() {
		t.Fatalf("Count: built %d, restored %d", built.Count(), restored.Count())
	}
	bh, rh := built.Head(), restored.Head()
	if len(bh) != len(rh) {
		t.Fatalf("Head: %v vs %v", bh, rh)
	}
	for i := range bh {
		if bh[i] != rh[i] {
			t.Fatalf("Head[%d]: %q vs %q", i, bh[i], rh[i])
		}
	}
	n := built.Count()
	for j := int64(0); j < n; j++ {
		bt, err := built.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := restored.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if !bt.Equal(rt) {
			t.Fatalf("Access(%d): built %v, restored %v", j, bt, rt)
		}
	}
	var bAll, rAll []Tuple
	for tu, err := range built.All() {
		if err != nil {
			t.Fatal(err)
		}
		bAll = append(bAll, tu)
	}
	for tu, err := range restored.All() {
		if err != nil {
			t.Fatal(err)
		}
		rAll = append(rAll, tu)
	}
	if len(bAll) != len(rAll) {
		t.Fatalf("All(): built %d answers, restored %d", len(bAll), len(rAll))
	}
	for i := range bAll {
		if !bAll[i].Equal(rAll[i]) {
			t.Fatalf("All()[%d]: built %v, restored %v", i, bAll[i], rAll[i])
		}
	}
	rng := rand.New(rand.NewSource(3))
	js := make([]int64, 300)
	for i := range js {
		js[i] = rng.Int63n(n)
	}
	bb, err := built.AccessBatch(js)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := restored.AccessBatch(js)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bb {
		if !bb[i].Equal(rb[i]) {
			t.Fatalf("AccessBatch[%d]: %v vs %v", i, bb[i], rb[i])
		}
	}
	bp, err := built.Page(n/3, 10)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := restored.Page(n/3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp) != len(rp) {
		t.Fatalf("Page: %d vs %d rows", len(bp), len(rp))
	}
	for i := range bp {
		if !bp[i].Equal(rp[i]) {
			t.Fatalf("Page[%d]: %v vs %v", i, bp[i], rp[i])
		}
	}
	bi, ri := 0, 0
	for tu, err := range built.Shuffled(rand.New(rand.NewSource(9))) {
		if err != nil {
			t.Fatal(err)
		}
		_ = tu
		bi++
	}
	for tu, err := range restored.Shuffled(rand.New(rand.NewSource(9))) {
		if err != nil {
			t.Fatal(err)
		}
		_ = tu
		ri++
	}
	if bi != ri {
		t.Fatalf("Shuffled drained %d vs %d", bi, ri)
	}
	bs, err := built.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := restored.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	bts, err := bs.SampleN(25, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	rts, err := rs.SampleN(25, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(bts) != len(rts) {
		t.Fatalf("SampleN: %d vs %d", len(bts), len(rts))
	}
	for i := range bts {
		if !bts[i].Equal(rts[i]) {
			t.Fatalf("SampleN[%d]: %v vs %v", i, bts[i], rts[i])
		}
	}
}

func TestSnapshotRoundTripCQ(t *testing.T) {
	db, q, _ := snapFixture(t)
	built := mustOpen(t, db, q)
	path := saveToTemp(t, db, 7, []CatalogEntry{{Name: "q", Q: q, H: built}})

	cat, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if cat.Generation() != 7 {
		t.Fatalf("Generation = %d, want 7", cat.Generation())
	}
	entries := cat.Entries()
	if len(entries) != 1 || entries[0].Name != "q" {
		t.Fatalf("entries = %+v", entries)
	}
	restored := entries[0].H
	if restored.Kind() != KindCQ {
		t.Fatalf("restored kind = %s", restored.Kind())
	}
	assertProbeEqual(t, built, restored)

	// Inverted access + membership survive the restore (and exercise the
	// lazy duplicate-index path of snapshot-backed relations).
	inv, err := restored.Inverter()
	if err != nil {
		t.Fatal(err)
	}
	for j := int64(0); j < built.Count(); j += 7 {
		tu, err := built.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := inv.InvertedAccess(tu)
		if !ok || got != j {
			t.Fatalf("InvertedAccess(Access(%d)) = (%d, %v)", j, got, ok)
		}
	}
	c, err := restored.Container()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(mustAccess(t, built, 0)) {
		t.Fatal("Contains(first answer) = false")
	}

	// Explain is the one capability a restored CQ honestly drops.
	if restored.Has(CapExplain) {
		t.Fatal("restored handle claims CapExplain")
	}
	if _, err := restored.Explain(); !IsUnsupported(err) {
		t.Fatalf("Explain err = %v, want ErrUnsupported", err)
	}
	if !restored.Has(CapSnapshot) {
		t.Fatal("restored handle lost CapSnapshot")
	}

	// The restored dictionary renders the same strings.
	bt := mustAccess(t, built, 0)
	for i, v := range mustAccess(t, cat.Entries()[0].H, 0) {
		if db.Dict().String(bt[i]) != cat.DB().Dict().String(v) {
			t.Fatalf("rendering diverged at column %d", i)
		}
	}
	// And supports lookups (lazy reverse-map hydration).
	if _, ok := cat.DB().Dict().Lookup("red"); !ok {
		t.Fatal("restored dict cannot look up an interned string")
	}
}

func mustAccess(t *testing.T, h *Handle, j int64) Tuple {
	t.Helper()
	tu, err := h.Access(j)
	if err != nil {
		t.Fatal(err)
	}
	return tu
}

func TestSnapshotRoundTripUCQ(t *testing.T) {
	db, _, u := snapFixture(t)
	built := mustOpen(t, db, u, WithVerify())
	path := saveToTemp(t, db, 1, []CatalogEntry{{Name: "U", Q: u, H: built}})

	cat, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	restored := cat.Entries()[0].H
	if restored.Kind() != KindUCQ {
		t.Fatalf("restored kind = %s", restored.Kind())
	}
	assertProbeEqual(t, built, restored)

	// Save again FROM the restored handle (snapshot of a snapshot) and
	// reopen: still byte-identical on the probe surface.
	again := filepath.Join(t.TempDir(), "again.snap")
	if err := SaveSnapshot(again, cat.DB(), cat.Generation()+1, cat.Entries()); err != nil {
		t.Fatal(err)
	}
	cat2, err := OpenSnapshot(again)
	if err != nil {
		t.Fatal(err)
	}
	defer cat2.Close()
	assertProbeEqual(t, built, cat2.Entries()[0].H)
}

func TestSnapshotMultiEntryAndWorkers(t *testing.T) {
	db, q, u := snapFixture(t)
	hq := mustOpen(t, db, q)
	hu := mustOpen(t, db, u)
	path := saveToTemp(t, db, 0, []CatalogEntry{
		{Name: "q", Q: q, H: hq},
		{Name: "U", Q: u, H: hu},
	})
	cat, err := OpenSnapshot(path, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	if got := cat.Entries(); len(got) != 2 || got[0].Name != "q" || got[1].Name != "U" {
		t.Fatalf("entries = %+v", got)
	}
	assertProbeEqual(t, hq, cat.Entries()[0].H)
	assertProbeEqual(t, hu, cat.Entries()[1].H)
}

// assertDynamicEqual compares two dynamic handles over their full current
// enumeration (Access position by position, plus inversion and
// membership). Dynamic handles have no All(), so assertProbeEqual does not
// apply.
func assertDynamicEqual(t *testing.T, a, b *Handle) {
	t.Helper()
	if a.Count() != b.Count() {
		t.Fatalf("Count: %d vs %d", a.Count(), b.Count())
	}
	inv, err := b.Inverter()
	if err != nil {
		t.Fatal(err)
	}
	for j := int64(0); j < a.Count(); j++ {
		at, err := a.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		bt, err := b.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if !at.Equal(bt) {
			t.Fatalf("Access(%d): %v vs %v", j, at, bt)
		}
		if p, ok := inv.InvertedAccess(at); !ok || p != j {
			t.Fatalf("InvertedAccess(%v) = %d,%v, want %d", at, p, ok, j)
		}
	}
}

// TestSnapshotDynamicRoundTrip: dynamic entries persist their base
// contents and restore to an equivalent, still-updatable index that can be
// saved again (CapSnapshot survives the round trip).
func TestSnapshotDynamicRoundTrip(t *testing.T) {
	db, _, _ := snapFixture(t)
	dq := MustCQ("dq", []string{"a", "b"}, NewAtom("R", V("a"), V("b")))
	dyn := mustOpen(t, db, dq, WithDynamic())
	if !dyn.Has(CapSnapshot) {
		t.Fatal("dynamic handle lacks CapSnapshot")
	}
	upd, err := dyn.Updater()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate past the build: inserts, deletes, and a revive.
	v1, v2 := db.Intern("fresh-one"), db.Intern("fresh-two")
	if _, err := upd.Insert("R", Tuple{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if _, err := upd.Delete("R", Tuple{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if _, err := upd.Insert("R", Tuple{v1, v2}); err != nil {
		t.Fatal(err)
	}
	if _, err := upd.Insert("R", Tuple{v2, v1}); err != nil {
		t.Fatal(err)
	}
	if _, err := upd.Delete("R", Tuple{v2, v1}); err != nil {
		t.Fatal(err)
	}

	path := saveToTemp(t, db, 7, []CatalogEntry{{Name: "dq", Q: dq, H: dyn}})
	cat, err := OpenSnapshot(path, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	re := cat.Entries()[0].H
	if re.Kind() != KindDynamic || !re.Has(CapUpdate) || !re.Has(CapSnapshot) {
		t.Fatalf("restored dynamic entry: kind %s caps %v", re.Kind(), re.Capabilities())
	}
	assertDynamicEqual(t, dyn, re)

	// Identical further updates keep them in lockstep — including the
	// revive of the pre-save tombstone (v2, v1), which must come back at
	// the same position on both sides.
	reUpd, err := re.Updater()
	if err != nil {
		t.Fatal(err)
	}
	rdict := cat.DB().Dict()
	w1, _ := rdict.Lookup("fresh-one")
	w2, _ := rdict.Lookup("fresh-two")
	for _, op := range []struct {
		del bool
		t   Tuple
		rt  Tuple
	}{
		{false, Tuple{v2, v1}, Tuple{w2, w1}}, // revive
		{true, Tuple{v1, v2}, Tuple{w1, w2}},
		{false, Tuple{v1, v1}, Tuple{w1, w1}},
	} {
		var e1, e2 error
		if op.del {
			_, e1 = upd.Delete("R", op.t)
			_, e2 = reUpd.Delete("R", op.rt)
		} else {
			_, e1 = upd.Insert("R", op.t)
			_, e2 = reUpd.Insert("R", op.rt)
		}
		if e1 != nil || e2 != nil {
			t.Fatal(e1, e2)
		}
	}
	assertDynamicEqual(t, dyn, re)

	// And the restored entry saves again.
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, cat.DB(), 8, []CatalogEntry{{Name: "dq", Q: cat.Entries()[0].Q, H: re}}); err != nil {
		t.Fatalf("re-save of restored dynamic entry: %v", err)
	}
}

func TestOpenSnapshotTypedErrors(t *testing.T) {
	db, q, _ := snapFixture(t)
	h := mustOpen(t, db, q)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, db, 0, []CatalogEntry{{Name: "q", Q: q, H: h}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"version", func(b []byte) []byte { b[8] ^= 0x7F; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)*2/3] }},
		{"bitflip", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }},
		{"tail cut", func(b []byte) []byte { return b[:len(b)-1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cat, err := OpenSnapshotBytes(tc.mutate(append([]byte(nil), data...)))
			if err == nil {
				cat.Close()
				t.Fatal("open succeeded on corrupt snapshot")
			}
			if !IsSnapshotInvalid(err) {
				t.Fatalf("err = %v, not in the ErrSnapshotInvalid family", err)
			}
		})
	}

	// A valid snapshot written to disk opens via the file path too.
	path := filepath.Join(t.TempDir(), "ok.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cat, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	cat.Close()

	// A missing file is an os error, not a decode error.
	if _, err := OpenSnapshot(filepath.Join(t.TempDir(), "absent.snap")); err == nil || IsSnapshotInvalid(err) {
		t.Fatalf("missing file err = %v", err)
	}
}

// TestSnapshotFrozenRelations pins the mutation guard: inserting into a
// snapshot-backed relation must fail with an error (not fault on the
// read-only mapping), while re-preparing a fresh index over the restored
// database — which only reads the base relations — must work.
func TestSnapshotFrozenRelations(t *testing.T) {
	db, q, _ := snapFixture(t)
	h := mustOpen(t, db, q)
	path := saveToTemp(t, db, 0, []CatalogEntry{{Name: "q", Q: q, H: h}})
	cat, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()

	r, err := cat.DB().Relation("R")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Insert(Tuple{1, 2}); err == nil {
		t.Fatal("Insert into snapshot-backed relation succeeded")
	}

	// Recompiling against the restored database is the daemon's rebuild
	// path: reduction filters into fresh heap relations, so it must succeed
	// and agree with the restored index.
	fresh, err := Open(cat.DB(), cat.Entries()[0].Q)
	if err != nil {
		t.Fatal(err)
	}
	assertProbeEqual(t, fresh, cat.Entries()[0].H)
}

func TestSnapshotRejectsErrorFamily(t *testing.T) {
	if !errors.Is(ErrSnapshotInvalid, ErrSnapshotInvalid) {
		t.Fatal("sanity")
	}
}

// TestOpenSnapshotRejectsCraftedCounts pins two decoder hardening cases a
// blind bit-flip cannot reach (they need checksum-valid files with hostile
// counts): meta section counts whose sum wraps to the real section count,
// and a union entry whose index count is astronomically large. Both must
// come back as typed errors, not a panic or a huge allocation.
func TestOpenSnapshotRejectsCraftedCounts(t *testing.T) {
	forge := func(build func(w *snapshot.Writer)) []byte {
		var buf bytes.Buffer
		w := snapshot.NewWriter(&buf)
		build(w)
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	writeDict := func(w *snapshot.Writer) {
		s := w.Section(2) // secDict
		s.U64(1)
		s.Str("")
		s.Close()
	}

	// Meta counts that wrap: 2^63 + 2^63 ≡ 0 mod 2^64 == len(secs)-2.
	overflow := forge(func(w *snapshot.Writer) {
		s := w.Section(1) // secMeta
		s.U64(0)
		s.U64(1 << 63)
		s.U64(1 << 63)
		s.Close()
		writeDict(w)
	})
	if _, err := OpenSnapshotBytes(overflow); !IsSnapshotInvalid(err) {
		t.Fatalf("wrapping meta counts: err = %v", err)
	}

	// A 3-disjunct union entry claiming 2^61 indexes.
	u := MustUCQ("U",
		MustCQ("a", []string{"x"}, NewAtom("R", V("x"))),
		MustCQ("b", []string{"x"}, NewAtom("S", V("x"))),
		MustCQ("c", []string{"x"}, NewAtom("T", V("x"))))
	hugeUnion := forge(func(w *snapshot.Writer) {
		s := w.Section(1)
		s.U64(0)
		s.U64(0) // no relations
		s.U64(1) // one entry
		s.Close()
		writeDict(w)
		s = w.Section(4) // secEntry
		s.Str("U")
		query.MarshalQuery(s, u)
		s.U64(2) // entryKindUCQ
		s.U64(1 << 61)
		s.Close()
	})
	if _, err := OpenSnapshotBytes(hugeUnion); !IsSnapshotInvalid(err) {
		t.Fatalf("huge union index count: err = %v", err)
	}
}
