package renum

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/naive"
	"repro/internal/tpch"
	"repro/internal/tpchq"
)

// TestQuickAccessBijection is the central end-to-end property test: for
// random databases and a pool of free-connex queries, Access is a bijection
// from [0, Count()) onto Q(D) and InvertedAccess is its inverse.
func TestQuickAccessBijection(t *testing.T) {
	queries := []*CQ{
		MustCQ("full", []string{"a", "b", "c"},
			NewAtom("R", V("a"), V("b")),
			NewAtom("S", V("b"), V("c"))),
		MustCQ("proj", []string{"a", "b"},
			NewAtom("R", V("a"), V("b")),
			NewAtom("S", V("b"), V("c"))),
		MustCQ("selfjoin", []string{"a", "b", "c"},
			NewAtom("R", V("a"), V("b")),
			NewAtom("R", V("b"), V("c"))),
		MustCQ("const", []string{"b", "c"},
			NewAtom("R", C(0), V("b")),
			NewAtom("S", V("b"), V("c"))),
		MustCQ("repeat", []string{"a"},
			NewAtom("R", V("a"), V("a"))),
	}
	prop := func(seed int64, sizeRaw uint8, domRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw%60) + 1
		dom := int64(domRaw%8) + 2
		db := NewDatabase()
		r := db.MustCreate("R", "r1", "r2")
		s := db.MustCreate("S", "s1", "s2")
		for i := 0; i < size; i++ {
			r.MustInsert(Value(rng.Int63n(dom)), Value(rng.Int63n(dom)))
			s.MustInsert(Value(rng.Int63n(dom)), Value(rng.Int63n(dom)))
		}
		for _, q := range queries {
			ra, err := NewRandomAccess(db, q)
			if err != nil {
				return false
			}
			want, err := Evaluate(db, q)
			if err != nil || ra.Count() != int64(len(want)) {
				return false
			}
			seen := make(map[string]bool, len(want))
			for j := int64(0); j < ra.Count(); j++ {
				a, err := ra.Access(j)
				if err != nil || seen[a.Key()] {
					return false
				}
				seen[a.Key()] = true
				if jj, ok := ra.InvertedAccess(a); !ok || jj != j {
					return false
				}
			}
			for _, w := range want {
				if !seen[w.Key()] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnionEnumeration: REnum(UCQ) emits exactly the union, without
// repetition, for random overlapping databases.
func TestQuickUnionEnumeration(t *testing.T) {
	q1 := MustCQ("q1", []string{"x", "y"}, NewAtom("R", V("x"), V("y")))
	q2 := MustCQ("q2", []string{"x", "y"}, NewAtom("S", V("x"), V("y")))
	q3 := MustCQ("q3", []string{"x", "y"},
		NewAtom("R", V("x"), V("z")),
		NewAtom("S", V("z"), V("y")),
		NewAtom("T", V("z"), V("y")))
	_ = q3
	u := MustUCQ("u", q1, q2)
	prop := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(sizeRaw%40) + 1
		db := NewDatabase()
		r := db.MustCreate("R", "r1", "r2")
		s := db.MustCreate("S", "s1", "s2")
		for i := 0; i < size; i++ {
			r.MustInsert(Value(rng.Int63n(6)), Value(rng.Int63n(6)))
			s.MustInsert(Value(rng.Int63n(6)), Value(rng.Int63n(6)))
		}
		want, err := EvaluateUCQ(db, u)
		if err != nil {
			return false
		}
		e, err := NewRandomOrderUnion(db, u, rng)
		if err != nil {
			return false
		}
		seen := make(map[string]bool)
		for {
			a, ok := e.Next()
			if !ok {
				break
			}
			if seen[a.Key()] {
				return false
			}
			seen[a.Key()] = true
		}
		if len(seen) != len(want) {
			return false
		}
		// mc-UCQ must agree on the count when it applies (R and S aligned).
		ua, err := NewUnionAccess(db, u, true)
		if err != nil {
			return false
		}
		return ua.Count() == int64(len(want))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTPCHEndToEnd exercises the whole stack on generated TPC-H data through
// the public API only.
func TestTPCHEndToEnd(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if err := tpchq.PrepareDerived(db); err != nil {
		t.Fatal(err)
	}
	for _, q := range tpchq.CQs() {
		ra, err := NewRandomAccess(db, q)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		want, err := naive.Evaluate(db, q)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Count() != int64(len(want)) {
			t.Fatalf("%s: count %d, oracle %d", q.Name, ra.Count(), len(want))
		}
		// Random permutation prefix must contain distinct answers only.
		p := ra.Permute(rand.New(rand.NewSource(2)))
		seen := make(map[string]bool)
		for i := 0; i < 100; i++ {
			a, ok := p.Next()
			if !ok {
				break
			}
			if seen[a.Key()] {
				t.Fatalf("%s: duplicate in permutation", q.Name)
			}
			seen[a.Key()] = true
			if !ra.Contains(a) {
				t.Fatalf("%s: emitted non-answer", q.Name)
			}
		}
	}
	for _, u := range tpchq.UCQs() {
		ua, err := NewUnionAccess(db, u, false)
		if err != nil {
			t.Fatalf("%s: %v", u.Name, err)
		}
		e, err := NewRandomOrderUnion(db, u, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		for {
			if _, ok := e.Next(); !ok {
				break
			}
			n++
		}
		if n != ua.Count() {
			t.Fatalf("%s: REnum(UCQ) emitted %d, mc-UCQ counted %d", u.Name, n, ua.Count())
		}
	}
}

// TestQuickPermutationPrefixUniform: on small instances, the first element
// of the permutation is uniform (a cheap distributional check under quick).
func TestQuickPermutationPrefixUniform(t *testing.T) {
	db := NewDatabase()
	r := db.MustCreate("R", "a")
	for i := 0; i < 8; i++ {
		r.MustInsert(Value(i))
	}
	q := MustCQ("q", []string{"a"}, NewAtom("R", V("a")))
	ra, err := NewRandomAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	rng := rand.New(rand.NewSource(77))
	const trials = 16000
	for i := 0; i < trials; i++ {
		p := ra.Permute(rng)
		a, _ := p.Next()
		counts[a[0]]++
	}
	for v, c := range counts {
		if c < trials/8-6*50 || c > trials/8+6*50 { // ±6σ, σ≈sqrt(2000·7/64)≈42
			t.Fatalf("value %d count %d far from %d", v, c, trials/8)
		}
	}
}
