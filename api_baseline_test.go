package renum

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// The exported-API baseline: every exported declaration of the root package,
// one normalized line each, recorded in api/renum.txt. TestAPIBaseline is
// the offline stand-in for golang.org/x/exp/cmd/apidiff (not vendorable in
// this environment): CI fails when a declaration disappears or changes shape
// (a breaking change — shrink the API deliberately, then regenerate) and
// when new API appears unrecorded (so additions are reviewed, not
// accidental).
//
// Regenerate after an intentional change with:
//
//	go test -run TestAPIBaseline -update-api-baseline .
var updateAPIBaseline = flag.Bool("update-api-baseline", false, "rewrite api/renum.txt from the current source")

const apiBaselineFile = "api/renum.txt"

func TestAPIBaseline(t *testing.T) {
	got := exportedAPI(t)

	if *updateAPIBaseline {
		if err := os.MkdirAll("api", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiBaselineFile, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d declarations)", apiBaselineFile, len(got))
		return
	}

	raw, err := os.ReadFile(apiBaselineFile)
	if err != nil {
		t.Fatalf("no API baseline (run `go test -run TestAPIBaseline -update-api-baseline .` once): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(raw)), "\n")

	gotSet := make(map[string]bool, len(got))
	for _, l := range got {
		gotSet[l] = true
	}
	wantSet := make(map[string]bool, len(want))
	for _, l := range want {
		wantSet[l] = true
	}

	var broken, added []string
	for _, l := range want {
		if !gotSet[l] {
			broken = append(broken, l)
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			added = append(added, l)
		}
	}
	if len(broken) > 0 {
		t.Errorf("BREAKING: %d baseline declarations missing or changed:\n  %s",
			len(broken), strings.Join(broken, "\n  "))
	}
	if len(added) > 0 {
		t.Errorf("unrecorded API additions (regenerate the baseline if intended):\n  %s",
			strings.Join(added, "\n  "))
	}
}

// exportedAPI parses the package sources (tests excluded) and renders every
// exported declaration as one canonical line.
func exportedAPI(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["renum"]
	if !ok {
		t.Fatalf("package renum not found in %v", pkgs)
	}

	var lines []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if l, ok := renderFunc(fset, d); ok {
					lines = append(lines, l)
				}
			case *ast.GenDecl:
				lines = append(lines, renderGen(fset, d)...)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func renderFunc(fset *token.FileSet, d *ast.FuncDecl) (string, bool) {
	if !d.Name.IsExported() {
		return "", false
	}
	if d.Recv != nil {
		if name, ok := recvTypeName(d.Recv.List[0].Type); !ok || !ast.IsExported(name) {
			return "", false
		}
	}
	clone := *d
	clone.Doc, clone.Body = nil, nil
	return printNode(fset, &clone), true
}

func renderGen(fset *token.FileSet, d *ast.GenDecl) []string {
	var out []string
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			clone := *s
			clone.Doc, clone.Comment = nil, nil
			clone.Type = pruneType(s.Type)
			out = append(out, "type "+printNode(fset, &clone))
		case *ast.ValueSpec:
			kw := "var"
			if d.Tok == token.CONST {
				kw = "const"
			}
			for _, n := range s.Names {
				if n.IsExported() {
					// Names only: initializer expressions are implementation.
					out = append(out, fmt.Sprintf("%s %s", kw, n.Name))
				}
			}
		}
	}
	return out
}

// pruneType drops unexported members from struct and interface types — they
// are not API — leaving everything else as written.
func pruneType(e ast.Expr) ast.Expr {
	switch tt := e.(type) {
	case *ast.StructType:
		kept := &ast.FieldList{}
		for _, f := range tt.Fields.List {
			if len(f.Names) == 0 { // embedded
				if name, ok := recvTypeName(f.Type); ok && ast.IsExported(name) {
					kept.List = append(kept.List, &ast.Field{Type: f.Type})
				}
				continue
			}
			var names []*ast.Ident
			for _, n := range f.Names {
				if n.IsExported() {
					names = append(names, ast.NewIdent(n.Name))
				}
			}
			if len(names) > 0 {
				kept.List = append(kept.List, &ast.Field{Names: names, Type: f.Type})
			}
		}
		return &ast.StructType{Struct: tt.Struct, Fields: kept}
	case *ast.InterfaceType:
		kept := &ast.FieldList{}
		for _, m := range tt.Methods.List {
			if len(m.Names) > 0 && !m.Names[0].IsExported() {
				continue
			}
			kept.List = append(kept.List, &ast.Field{Names: m.Names, Type: m.Type})
		}
		return &ast.InterfaceType{Interface: tt.Interface, Methods: kept}
	default:
		return e
	}
}

// recvTypeName unwraps *T / pkg.T / T to the base type name.
func recvTypeName(e ast.Expr) (string, bool) {
	for {
		switch tt := e.(type) {
		case *ast.StarExpr:
			e = tt.X
		case *ast.SelectorExpr:
			return tt.Sel.Name, true
		case *ast.Ident:
			return tt.Name, true
		case *ast.IndexExpr: // generic instantiation
			e = tt.X
		default:
			return "", false
		}
	}
}

// printNode renders a node and collapses it to one whitespace-normalized
// line, so formatting churn never shows up as an API change.
func printNode(fset *token.FileSet, n any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<print error: %v>", err)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}
