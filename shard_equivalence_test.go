package renum

import (
	"bufio"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/synth"
)

// shardKs is the partition-count matrix the equivalence suite runs:
// degenerate (K=1), even (K=2), and odd-with-remainder (K=7) splits.
var shardKs = []int{1, 2, 7}

// TestShardedEquivalence proves the sharded backend byte-identical to the
// unsharded one across the whole probe surface: Count, Access, AccessBatch,
// All, Shuffled, InvertedAccess, Contains and SampleN, for every K in the
// matrix, on the golden CQ instances.
func TestShardedEquivalence(t *testing.T) {
	for _, gi := range goldenInstances(t) {
		if _, ok := gi.q.(*CQ); !ok {
			continue // unions are rejected by WithShards; checked below
		}
		ref := mustOpen(t, gi.db, gi.q, gi.opts...)
		for _, k := range shardKs {
			t.Run(fmt.Sprintf("%s/K=%d", gi.name, k), func(t *testing.T) {
				opts := append(append([]Option{}, gi.opts...), WithShards(k))
				sh := mustOpen(t, gi.db, gi.q, opts...)
				assertHandleEquivalence(t, ref, sh)
			})
		}
	}
}

// assertHandleEquivalence drives ref and got through the same probes and
// requires byte-identical results.
func assertHandleEquivalence(t *testing.T, ref, got *Handle) {
	t.Helper()
	if got.Kind() != KindSharded {
		t.Fatalf("Kind = %s, want %s", got.Kind(), KindSharded)
	}
	n := ref.Count()
	if got.Count() != n {
		t.Fatalf("Count = %d, want %d", got.Count(), n)
	}
	if hw, hg := ref.Head(), got.Head(); strings.Join(hw, ",") != strings.Join(hg, ",") {
		t.Fatalf("Head = %v, want %v", hg, hw)
	}

	// All(): the full enumeration, byte for byte.
	var wantSeq []string
	var buf []byte
	for tu, err := range ref.All() {
		if err != nil {
			t.Fatal(err)
		}
		buf = formatAnswer(buf, tu)
		wantSeq = append(wantSeq, string(buf))
	}
	var j int
	for tu, err := range got.All() {
		if err != nil {
			t.Fatalf("All()[%d]: %v", j, err)
		}
		buf = formatAnswer(buf, tu)
		if string(buf) != wantSeq[j] {
			t.Fatalf("All()[%d] = %s, want %s", j, buf, wantSeq[j])
		}
		j++
	}
	if int64(j) != n {
		t.Fatalf("All() yielded %d answers, want %d", j, n)
	}

	// AccessBatch over random positions (with duplicates), both sides.
	rng := rand.New(rand.NewSource(17))
	js := make([]int64, 700)
	for i := range js {
		js[i] = rng.Int63n(n)
	}
	wantB, err := ref.AccessBatch(js)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := got.AccessBatch(js)
	if err != nil {
		t.Fatalf("AccessBatch: %v", err)
	}
	for i := range js {
		if string(formatAnswer(nil, gotB[i])) != string(formatAnswer(nil, wantB[i])) {
			t.Fatalf("AccessBatch slot %d (j=%d): got %v, want %v", i, js[i], gotB[i], wantB[i])
		}
	}

	// Shuffled: identical rng consumption means an identical permutation.
	wantShuf := drainShuffled(t, ref, 99)
	gotShuf := drainShuffled(t, got, 99)
	if len(wantShuf) != len(gotShuf) {
		t.Fatalf("Shuffled yielded %d answers, want %d", len(gotShuf), len(wantShuf))
	}
	for i := range wantShuf {
		if wantShuf[i] != gotShuf[i] {
			t.Fatalf("Shuffled[%d] = %s, want %s", i, gotShuf[i], wantShuf[i])
		}
	}

	// SampleN: same seed, same distinct draw.
	refS, err := ref.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := got.Sampler()
	if err != nil {
		t.Fatalf("Sampler: %v", err)
	}
	if !gotS.Distinct() {
		t.Fatal("sharded sampler must be distinct")
	}
	wantSmp, err := refS.SampleN(n/2+1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	gotSmp, err := gotS.SampleN(n/2+1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("SampleN: %v", err)
	}
	for i := range wantSmp {
		if string(formatAnswer(nil, gotSmp[i])) != string(formatAnswer(nil, wantSmp[i])) {
			t.Fatalf("SampleN[%d] = %v, want %v", i, gotSmp[i], wantSmp[i])
		}
	}

	// InvertedAccess + Contains: every k-th answer maps back to its global
	// position; a perturbed tuple does not.
	inv, err := got.Inverter()
	if err != nil {
		t.Fatalf("Inverter: %v", err)
	}
	cont, err := got.Container()
	if err != nil {
		t.Fatalf("Container: %v", err)
	}
	step := n/50 + 1
	for p := int64(0); p < n; p += step {
		tu, err := ref.Access(p)
		if err != nil {
			t.Fatal(err)
		}
		gp, ok := inv.InvertedAccess(tu)
		if !ok || gp != p {
			t.Fatalf("InvertedAccess(answer %d) = (%d, %v), want (%d, true)", p, gp, ok, p)
		}
		if !cont.Contains(tu) {
			t.Fatalf("Contains(answer %d) = false", p)
		}
	}

	// Out-of-bounds parity.
	if _, err := got.Access(n); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("Access(n) error = %v, want ErrOutOfBounds", err)
	}
	if _, err := got.AccessBatch([]int64{0, -1}); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("negative batch error = %v, want ErrOutOfBounds", err)
	}
}

func drainShuffled(t *testing.T, h *Handle, seed int64) []string {
	t.Helper()
	var out []string
	var buf []byte
	for tu, err := range h.Shuffled(rand.New(rand.NewSource(seed))) {
		if err != nil {
			t.Fatal(err)
		}
		buf = formatAnswer(buf, tu)
		out = append(out, string(buf))
	}
	return out
}

// TestShardedGoldenHash replays the 493k-answer golden instance through the
// sharded backend for every K: the SHA-256 of the full enumeration must
// equal the recorded unsharded hash — sharding cannot perturb a single
// byte of the order.
func TestShardedGoldenHash(t *testing.T) {
	if testing.Short() {
		t.Skip("large golden enumeration skipped in -short mode")
	}
	f, err := os.Open(goldenOrderFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var wantCount int64
	var wantHash string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "# hash star3big ") {
			fields := strings.Fields(line)
			wantCount, err = strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			wantHash = fields[6]
		}
	}
	if wantHash == "" {
		t.Fatal("no hash entry in golden file")
	}

	db, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 200, KeyDomain: 30, SkewS: 1.3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range shardKs {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			h := mustOpen(t, db, q, WithShards(k))
			if h.Count() != wantCount {
				t.Fatalf("Count = %d, want %d", h.Count(), wantCount)
			}
			hash := sha256.New()
			buf := make([]byte, 0, 64)
			answer := make(Tuple, len(h.Head()))
			for j := int64(0); j < wantCount; j++ {
				if err := h.AccessInto(j, answer); err != nil {
					t.Fatal(err)
				}
				buf = formatAnswer(buf, answer)
				buf = append(buf, '\n')
				hash.Write(buf)
			}
			if got := fmt.Sprintf("%x", hash.Sum(nil)); got != wantHash {
				t.Fatalf("K=%d sequence hash %s, golden %s (sharding changed the order)", k, got, wantHash)
			}
		})
	}
}

// TestShardSliceConcatenation proves the daemon-side option: the K slice
// handles, concatenated in slice order, reproduce the unsharded
// enumeration exactly, and each slice confines inverted access to its own
// window.
func TestShardSliceConcatenation(t *testing.T) {
	for _, gi := range goldenInstances(t) {
		if _, ok := gi.q.(*CQ); !ok {
			continue
		}
		ref := mustOpen(t, gi.db, gi.q, gi.opts...)
		for _, k := range shardKs {
			t.Run(fmt.Sprintf("%s/K=%d", gi.name, k), func(t *testing.T) {
				var global int64
				var total int64
				for i := 0; i < k; i++ {
					opts := append(append([]Option{}, gi.opts...), WithShardSlice(i, k))
					sl := mustOpen(t, gi.db, gi.q, opts...)
					total += sl.Count()
					inv, err := sl.Inverter()
					if err != nil {
						t.Fatalf("slice Inverter: %v", err)
					}
					for local := int64(0); local < sl.Count(); local++ {
						want, err := ref.Access(global)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sl.Access(local)
						if err != nil {
							t.Fatalf("slice %d Access(%d): %v", i, local, err)
						}
						if string(formatAnswer(nil, got)) != string(formatAnswer(nil, want)) {
							t.Fatalf("slice %d local %d: got %v, want %v", i, local, got, want)
						}
						if lj, ok := inv.InvertedAccess(want); !ok || lj != local {
							t.Fatalf("slice %d InvertedAccess = (%d, %v), want (%d, true)", i, lj, ok, local)
						}
						global++
					}
				}
				if total != ref.Count() {
					t.Fatalf("slices cover %d answers, want %d", total, ref.Count())
				}
			})
		}
	}
}

// TestSliceViewEquivalence proves the position-window wrapper (the
// snapshot-restore path, where the reduction is gone and only global
// positions exist): SliceView windows partition the handle exactly and
// answer every probe byte-identically to the underlying positions.
func TestSliceViewEquivalence(t *testing.T) {
	gi := goldenInstances(t)[0]
	ref := mustOpen(t, gi.db, gi.q, gi.opts...)
	n := ref.Count()
	for _, k := range shardKs {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			var global int64
			for i := 0; i < k; i++ {
				sl, err := SliceView(ref, i, k)
				if err != nil {
					t.Fatalf("SliceView(%d, %d): %v", i, k, err)
				}
				if sl.Kind() != ref.Kind() {
					t.Fatalf("slice Kind = %s, want %s (slices are transparent)", sl.Kind(), ref.Kind())
				}
				// Shuffled on a slice must be a permutation of exactly the
				// window (distinctness + coverage).
				seen := make(map[string]bool)
				for tu, err := range sl.Shuffled(rand.New(rand.NewSource(1))) {
					if err != nil {
						t.Fatal(err)
					}
					seen[string(formatAnswer(nil, tu))] = true
				}
				inv, err := sl.Inverter()
				if err != nil {
					t.Fatalf("SliceView Inverter: %v", err)
				}
				for local := int64(0); local < sl.Count(); local++ {
					want, err := ref.Access(global)
					if err != nil {
						t.Fatal(err)
					}
					got, err := sl.Access(local)
					if err != nil {
						t.Fatalf("slice %d Access(%d): %v", i, local, err)
					}
					key := string(formatAnswer(nil, got))
					if key != string(formatAnswer(nil, want)) {
						t.Fatalf("slice %d local %d: got %v, want %v", i, local, got, want)
					}
					if !seen[key] {
						t.Fatalf("slice %d: Shuffled missed answer %s", i, key)
					}
					if lj, ok := inv.InvertedAccess(want); !ok || lj != local {
						t.Fatalf("slice %d InvertedAccess = (%d, %v), want (%d, true)", i, lj, ok, local)
					}
					global++
				}
				if int64(len(seen)) != sl.Count() {
					t.Fatalf("slice %d: Shuffled yielded %d distinct answers, want %d", i, len(seen), sl.Count())
				}
			}
			if global != n {
				t.Fatalf("views cover %d positions, want %d", global, n)
			}
		})
	}
}

// TestShardOptionRejections pins the unsupported combinations.
func TestShardOptionRejections(t *testing.T) {
	instances := goldenInstances(t)
	var cq, ucq goldenInstance
	for _, gi := range instances {
		switch gi.q.(type) {
		case *CQ:
			if cq.q == nil {
				cq = gi
			}
		case *UCQ:
			ucq = gi
		}
	}
	if _, err := Open(ucq.db, ucq.q, WithShards(2)); !IsUnsupported(err) {
		t.Fatalf("WithShards on a union: err = %v, want ErrUnsupported", err)
	}
	if _, err := Open(cq.db, cq.q, WithShards(2), WithDynamic()); !IsUnsupported(err) {
		t.Fatalf("WithShards with WithDynamic: err = %v, want ErrUnsupported", err)
	}
	if _, err := Open(cq.db, cq.q, WithShards(2), WithShardSlice(0, 2)); err == nil {
		t.Fatal("WithShards with WithShardSlice accepted")
	}
	if _, err := Open(cq.db, cq.q, WithShards(0)); err != nil {
		t.Fatalf("WithShards(0) must mean unsharded, got err %v", err)
	}
	if _, err := Open(cq.db, cq.q, WithShardSlice(3, 2)); err == nil {
		t.Fatal("WithShardSlice(3, 2) accepted an out-of-range slice")
	}
	h := mustOpen(t, cq.db, cq.q)
	if _, err := SliceView(h, 2, 2); err == nil {
		t.Fatal("SliceView(2, 2) accepted an out-of-range slice")
	}
	if _, err := SliceView(nil, 0, 1); err == nil {
		t.Fatal("SliceView(nil) accepted")
	}
	// A sharded handle reports its capability set honestly: everything the
	// CQ backend has except snapshotting.
	sh := mustOpen(t, cq.db, cq.q, WithShards(3))
	if sh.Has(CapSnapshot) {
		t.Fatal("sharded handle claims CapSnapshot")
	}
	for _, c := range []Capability{CapEnumerate, CapInvert, CapSample, CapContains, CapExplain} {
		if !sh.Has(c) {
			t.Fatalf("sharded handle lacks %s", c)
		}
	}
	if _, err := sh.Explain(); err != nil {
		t.Fatalf("sharded Explain: %v", err)
	}
}
