package renum_test

import (
	"fmt"
	"math/rand"

	"repro"
)

// ExampleNewRandomAccess shows the core Theorem 4.3 facilities on a tiny
// database: constant-time counting, logarithmic random access and the
// constant-time inverted access.
func ExampleNewRandomAccess() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	r.MustInsert(1, 10)
	r.MustInsert(2, 10)
	s.MustInsert(10, 100)
	s.MustInsert(10, 200)

	q := renum.MustCQ("Q", []string{"a", "b", "c"},
		renum.NewAtom("R", renum.V("a"), renum.V("b")),
		renum.NewAtom("S", renum.V("b"), renum.V("c")))
	ra, err := renum.NewRandomAccess(db, q)
	if err != nil {
		panic(err)
	}
	fmt.Println("count:", ra.Count())
	t, _ := ra.Access(2)
	fmt.Println("third answer:", t)
	j, _ := ra.InvertedAccess(t)
	fmt.Println("its position:", j)
	// Output:
	// count: 4
	// third answer: [2 10 100]
	// its position: 2
}

// ExampleRandomAccess_Permute demonstrates REnum(CQ): a uniformly random
// permutation of the answers without repetitions.
func ExampleRandomAccess_Permute() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "a")
	for i := 1; i <= 4; i++ {
		r.MustInsert(renum.Value(i))
	}
	q := renum.MustCQ("Q", []string{"a"}, renum.NewAtom("R", renum.V("a")))
	ra, _ := renum.NewRandomAccess(db, q)
	perm := ra.Permute(rand.New(rand.NewSource(7)))
	seen := 0
	for {
		if _, ok := perm.Next(); !ok {
			break
		}
		seen++
	}
	fmt.Println("answers emitted exactly once each:", seen)
	// Output:
	// answers emitted exactly once each: 4
}

// ExampleNewRandomOrderUnion shows Algorithm 5 on a union of two CQs whose
// answer sets overlap: every element of the union appears exactly once.
func ExampleNewRandomOrderUnion() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "x")
	s := db.MustCreate("S", "x")
	r.MustInsert(1)
	r.MustInsert(2)
	s.MustInsert(2)
	s.MustInsert(3)
	u := renum.MustUCQ("U",
		renum.MustCQ("q1", []string{"x"}, renum.NewAtom("R", renum.V("x"))),
		renum.MustCQ("q2", []string{"x"}, renum.NewAtom("S", renum.V("x"))))
	e, _ := renum.NewRandomOrderUnion(db, u, rand.New(rand.NewSource(1)))
	n := 0
	for {
		if _, ok := e.Next(); !ok {
			break
		}
		n++
	}
	fmt.Println("union size:", n)
	// Output:
	// union size: 3
}

// ExampleIsFreeConnex classifies the two textbook queries: the full chain
// join (tractable) and its projection to the endpoints (the matrix
// multiplication pattern — provably not tractable for these tasks).
func ExampleIsFreeConnex() {
	full := renum.MustCQ("full", []string{"x", "y", "z"},
		renum.NewAtom("R", renum.V("x"), renum.V("y")),
		renum.NewAtom("S", renum.V("y"), renum.V("z")))
	proj := renum.MustCQ("proj", []string{"x", "z"},
		renum.NewAtom("R", renum.V("x"), renum.V("y")),
		renum.NewAtom("S", renum.V("y"), renum.V("z")))
	fmt.Println(renum.IsFreeConnex(full), renum.IsFreeConnex(proj))
	// Output:
	// true false
}
