package renum_test

import (
	"context"
	"fmt"
	"math/rand"

	"repro"
)

// ExampleNewRandomAccess shows the core Theorem 4.3 facilities on a tiny
// database: constant-time counting, logarithmic random access and the
// constant-time inverted access.
func ExampleNewRandomAccess() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	r.MustInsert(1, 10)
	r.MustInsert(2, 10)
	s.MustInsert(10, 100)
	s.MustInsert(10, 200)

	q := renum.MustCQ("Q", []string{"a", "b", "c"},
		renum.NewAtom("R", renum.V("a"), renum.V("b")),
		renum.NewAtom("S", renum.V("b"), renum.V("c")))
	ra, err := renum.NewRandomAccess(db, q)
	if err != nil {
		panic(err)
	}
	fmt.Println("count:", ra.Count())
	t, _ := ra.Access(2)
	fmt.Println("third answer:", t)
	j, _ := ra.InvertedAccess(t)
	fmt.Println("its position:", j)
	// Output:
	// count: 4
	// third answer: [2 10 100]
	// its position: 2
}

// ExampleRandomAccess_Permute demonstrates REnum(CQ): a uniformly random
// permutation of the answers without repetitions.
func ExampleRandomAccess_Permute() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "a")
	for i := 1; i <= 4; i++ {
		r.MustInsert(renum.Value(i))
	}
	q := renum.MustCQ("Q", []string{"a"}, renum.NewAtom("R", renum.V("a")))
	ra, _ := renum.NewRandomAccess(db, q)
	perm := ra.Permute(rand.New(rand.NewSource(7)))
	seen := 0
	for {
		if _, ok := perm.Next(); !ok {
			break
		}
		seen++
	}
	fmt.Println("answers emitted exactly once each:", seen)
	// Output:
	// answers emitted exactly once each: 4
}

// ExampleNewRandomOrderUnion shows Algorithm 5 on a union of two CQs whose
// answer sets overlap: every element of the union appears exactly once.
func ExampleNewRandomOrderUnion() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "x")
	s := db.MustCreate("S", "x")
	r.MustInsert(1)
	r.MustInsert(2)
	s.MustInsert(2)
	s.MustInsert(3)
	u := renum.MustUCQ("U",
		renum.MustCQ("q1", []string{"x"}, renum.NewAtom("R", renum.V("x"))),
		renum.MustCQ("q2", []string{"x"}, renum.NewAtom("S", renum.V("x"))))
	e, _ := renum.NewRandomOrderUnion(db, u, rand.New(rand.NewSource(1)))
	n := 0
	for {
		if _, ok := e.Next(); !ok {
			break
		}
		n++
	}
	fmt.Println("union size:", n)
	// Output:
	// union size: 3
}

// ExampleIsFreeConnex classifies the two textbook queries: the full chain
// join (tractable) and its projection to the endpoints (the matrix
// multiplication pattern — provably not tractable for these tasks).
func ExampleIsFreeConnex() {
	full := renum.MustCQ("full", []string{"x", "y", "z"},
		renum.NewAtom("R", renum.V("x"), renum.V("y")),
		renum.NewAtom("S", renum.V("y"), renum.V("z")))
	proj := renum.MustCQ("proj", []string{"x", "z"},
		renum.NewAtom("R", renum.V("x"), renum.V("y")),
		renum.NewAtom("S", renum.V("y"), renum.V("z")))
	fmt.Println(renum.IsFreeConnex(full), renum.IsFreeConnex(proj))
	// Output:
	// true false
}

// ExampleOpen shows the one-constructor API: Open takes a CQ or a UCQ plus
// functional options and returns a capability-based Handle exposing the
// shared probe surface directly.
func ExampleOpen() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	r.MustInsert(1, 10)
	r.MustInsert(2, 10)
	s.MustInsert(10, 100)
	s.MustInsert(10, 200)

	q := renum.MustCQ("Q", []string{"a", "b", "c"},
		renum.NewAtom("R", renum.V("a"), renum.V("b")),
		renum.NewAtom("S", renum.V("b"), renum.V("c")))
	h, err := renum.Open(db, q)
	if err != nil {
		panic(err)
	}
	fmt.Println("kind:", h.Kind())
	fmt.Println("count:", h.Count())
	t, _ := h.Access(2)
	fmt.Println("third answer:", t)
	page, _ := h.Page(1, 2)
	fmt.Println("page [1,3):", page)
	// Output:
	// kind: cq
	// count: 4
	// third answer: [2 10 100]
	// page [1,3): [[1 10 200] [2 10 100]]
}

// ExampleHandle_Capabilities demonstrates capability discovery: optional
// facilities are found on the handle — and missing ones fail with
// ErrUnsupported — instead of being guessed from a concrete type.
func ExampleHandle_Capabilities() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "x")
	s := db.MustCreate("S", "x")
	r.MustInsert(1)
	r.MustInsert(2)
	s.MustInsert(2)
	s.MustInsert(3)
	u := renum.MustUCQ("U",
		renum.MustCQ("q1", []string{"x"}, renum.NewAtom("R", renum.V("x"))),
		renum.MustCQ("q2", []string{"x"}, renum.NewAtom("S", renum.V("x"))))

	h, err := renum.Open(db, u, renum.WithVerify())
	if err != nil {
		panic(err)
	}
	fmt.Println("capabilities:", h.Capabilities())
	fmt.Println("can update:", h.Has(renum.CapUpdate))
	if _, err := h.Inverter(); renum.IsUnsupported(err) {
		fmt.Println("inverted access: unsupported on unions")
	}
	smp, _ := h.Sampler()
	fmt.Println("distinct sampling:", smp.Distinct())
	// Output:
	// capabilities: [enumerate contains sample snapshot]
	// can update: false
	// inverted access: unsupported on unions
	// distinct sampling: true
}

// ExampleHandle_All shows iterator-native enumeration: All yields the
// answers in the fixed enumeration order as an iter.Seq2, and Shuffled
// yields a uniformly random permutation.
func ExampleHandle_All() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "a")
	for i := 1; i <= 4; i++ {
		r.MustInsert(renum.Value(i))
	}
	q := renum.MustCQ("Q", []string{"a"}, renum.NewAtom("R", renum.V("a")))
	h, err := renum.Open(db, q)
	if err != nil {
		panic(err)
	}
	for t, err := range h.All() {
		if err != nil {
			panic(err)
		}
		fmt.Println(t)
	}
	shuffled := 0
	for _, err := range h.Shuffled(rand.New(rand.NewSource(7))) {
		if err != nil {
			panic(err)
		}
		shuffled++
	}
	fmt.Println("shuffled answers, each exactly once:", shuffled)
	// Output:
	// [1]
	// [2]
	// [3]
	// [4]
	// shuffled answers, each exactly once: 4
}

// ExampleHandle_AccessBatchContext shows the context-aware batch probes: a
// cancelled request stops a large batch between chunks.
func ExampleHandle_AccessBatchContext() {
	db := renum.NewDatabase()
	r := db.MustCreate("R", "a")
	for i := 0; i < 100; i++ {
		r.MustInsert(renum.Value(i))
	}
	q := renum.MustCQ("Q", []string{"a"}, renum.NewAtom("R", renum.V("a")))
	h, err := renum.Open(db, q)
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	if _, err := h.AccessBatchContext(ctx, []int64{0, 1, 2}); err != nil {
		fmt.Println("batch:", err)
	}
	ts, _ := h.AccessBatchContext(context.Background(), []int64{0, 99})
	fmt.Println("live batch:", ts)
	// Output:
	// batch: context canceled
	// live batch: [[0] [99]]
}
