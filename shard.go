package renum

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/access"
	"repro/internal/plan"
	"repro/internal/reduce"
	"repro/internal/shard"
	"repro/internal/shuffle"
)

// KindSharded: K partition indexes composed behind one global position
// space (WithShards). Single-slice handles (WithShardSlice / SliceView)
// report the kind they slice instead — a shard daemon is transparent, and
// the scale-out router echoes the logical kind clients would see unsharded.
const KindSharded Kind = "sharded"

// WithShards partitions the query's answers into k contiguous shards at
// load time and builds one index per shard in parallel, composed behind the
// ordinary Handle surface: Count, Access, AccessBatch, All and Shuffled are
// byte-identical to the unsharded index, with global positions routed to
// their shard through a prefix-sum table in O(log K). Requires a CQ;
// unions and WithDynamic fail with ErrUnsupported. The sharded handle has
// no CapSnapshot (persist the unsharded form and shard at load time).
func WithShards(k int) Option { return func(c *config) { c.shards = k } }

// WithShardSlice builds ONLY shard i of the k-way partition, serving its
// window of the global enumeration order as local positions 0..Count()-1.
// It is the shard daemon's option: each daemon builds 1/k of the index,
// and a router re-bases local positions onto the global order from the
// daemons' counts. Mutually exclusive with WithShards; same restrictions.
func WithShardSlice(i, k int) Option {
	return func(c *config) { c.sliceIdx, c.sliceOf = i, k }
}

// openSharded is the Open path for WithShards/WithShardSlice on a CQ. q is
// the planner's output (Open plans before shard dispatch, on the full
// database — so every slice of a fleet compiles the same chosen tree); pl is
// the plan record for Explain, nil when planning was off or not applicable.
func openSharded(db *Database, q *CQ, cfg config, pl *plan.Plan) (*Handle, error) {
	if cfg.dynamic {
		return nil, fmt.Errorf("renum: WithShards with WithDynamic: %w (positions shift under updates; shard the static form)", ErrUnsupported)
	}
	if cfg.shards > 0 && cfg.sliceOf > 0 {
		return nil, fmt.Errorf("renum: WithShards and WithShardSlice are mutually exclusive")
	}
	reduceOpts := reduce.Options{CanonicalOrder: cfg.canonical}
	buildOpts := access.BuildOptions{Workers: cfg.workers}
	t0 := time.Now()
	var (
		set *shard.Set
		err error
	)
	if cfg.sliceOf > 0 {
		set, err = shard.BuildSlice(db, q, cfg.sliceIdx, cfg.sliceOf, reduceOpts, buildOpts)
	} else {
		set, err = shard.Build(db, q, cfg.shards, reduceOpts, buildOpts)
	}
	if err != nil {
		return nil, err
	}
	if cfg.buildObserve != nil {
		cfg.buildObserve("shard_build", time.Since(t0))
	}
	return &Handle{b: shBackend{set: set, sliceIdx: cfg.sliceIdx, sliceOf: cfg.sliceOf, plan: pl}, workers: cfg.workers}, nil
}

// shBackend serves a Handle from a shard.Set. It carries the full optional
// surface of the static CQ backend except snapshotting: enumeration order
// is stable (global j-order), inverted access re-bases shard positions,
// sampling draws the same lazy Fisher–Yates prefix as the unsharded index.
type shBackend struct {
	set      *shard.Set
	sliceIdx int
	sliceOf  int        // > 0 when this is a single-slice build
	plan     *plan.Plan // cost-based planning record, nil when off
}

func (b shBackend) kind() Kind {
	if b.sliceOf > 0 {
		return KindCQ // a single slice serves its CQ transparently
	}
	return KindSharded
}

func (b shBackend) Count() int64   { return b.set.Count() }
func (b shBackend) Head() []string { return b.set.Head() }

func (b shBackend) Access(j int64) (Tuple, error) { return b.set.Access(j) }

func (b shBackend) AccessInto(j int64, buf Tuple) error { return b.set.AccessInto(j, buf) }

func (b shBackend) accessBatchContext(ctx context.Context, js []int64, workers int) ([]Tuple, error) {
	return b.set.AccessBatchContext(ctx, js, workers)
}

func (b shBackend) InvertedAccess(t Tuple) (int64, bool) { return b.set.InvertedAccess(t) }

func (b shBackend) Contains(t Tuple) bool { return b.set.Contains(t) }

// Permute consumes the rng exactly like the unsharded backend (one
// shuffle.New over the global count, one draw per answer), so Shuffled and
// random-order cursors are byte-identical to the unsharded path for the
// same seed.
func (b shBackend) Permute(rng *rand.Rand) *Permutation {
	return positionPermutation(b.set.Count(), rng, b.set.Access, b.set.AccessBatchContext)
}

func (shBackend) Distinct() bool { return true }

func (b shBackend) sampleN(k int64, rng *rand.Rand, workers int) ([]Tuple, error) {
	return samplePositions(b.set.Count(), k, rng, func(js []int64) ([]Tuple, error) {
		return b.set.AccessBatchContext(context.Background(), js, workers)
	})
}

func (b shBackend) Explain() string {
	var sb strings.Builder
	if b.plan != nil {
		sb.WriteString(b.plan.Explain())
	}
	if b.sliceOf > 0 {
		lo, hi := b.set.Bounds(0)
		fmt.Fprintf(&sb, "shard slice %d/%d: root rows [%d, %d), %d answers\n",
			b.sliceIdx, b.sliceOf, lo, hi, b.set.Count())
	} else {
		fmt.Fprintf(&sb, "sharded K=%d: per-shard answer counts [", b.set.NumShards())
		for i := 0; i < b.set.NumShards(); i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%d", b.set.ShardCount(i))
		}
		sb.WriteString("], global Access routed by prefix sums\n")
	}
	sb.WriteString(b.set.FullJoin().Explain())
	return sb.String()
}

// ---------------------------------------------------------------- SliceView

// SliceView returns a handle serving the i-th of k contiguous position
// windows of h's enumeration order as local positions 0..Count()-1 —
// WithShardSlice for handles that cannot be rebuilt from base relations
// (snapshot-restored catalogs: the mmap-backed index only faults the pages
// the window touches). The window boundaries are floor(i·N/k): the k
// slices partition h exactly, so concatenating them in slice order
// reproduces h byte-for-byte. Requires CapEnumerate (a stable order is
// what makes a position window meaningful).
func SliceView(h *Handle, i, k int) (*Handle, error) {
	if h == nil {
		return nil, fmt.Errorf("renum: SliceView: nil handle")
	}
	if k < 1 || i < 0 || i >= k {
		return nil, fmt.Errorf("renum: SliceView: slice %d/%d out of range", i, k)
	}
	if !h.Has(CapEnumerate) {
		return nil, fmt.Errorf("renum: SliceView requires a stable enumeration order: %w (kind %s)", ErrUnsupported, h.Kind())
	}
	n := h.Count()
	lo, hi := int64(i)*n/int64(k), int64(i+1)*n/int64(k)
	sb := sliceBackend{of: h.b, lo: lo, n: hi - lo, idx: i, k: k}
	if _, ok := h.b.(Inverter); ok {
		return &Handle{b: sliceInvBackend{sb}, workers: h.workers}, nil
	}
	return &Handle{b: sb, workers: h.workers}, nil
}

// sliceBackend is a contiguous position window over another backend.
type sliceBackend struct {
	of     backend
	lo, n  int64
	idx, k int
}

func (b sliceBackend) kind() Kind { return b.of.kind() }

func (b sliceBackend) Count() int64   { return b.n }
func (b sliceBackend) Head() []string { return b.of.Head() }

func (b sliceBackend) Access(j int64) (Tuple, error) {
	if j < 0 || j >= b.n {
		return nil, ErrOutOfBounds
	}
	return b.of.Access(b.lo + j)
}

func (b sliceBackend) AccessInto(j int64, buf Tuple) error {
	if j < 0 || j >= b.n {
		return ErrOutOfBounds
	}
	return b.of.AccessInto(b.lo+j, buf)
}

func (b sliceBackend) accessBatchContext(ctx context.Context, js []int64, workers int) ([]Tuple, error) {
	shifted := make([]int64, len(js))
	for i, j := range js {
		if j < 0 || j >= b.n {
			return nil, ErrOutOfBounds
		}
		shifted[i] = b.lo + j
	}
	return b.of.accessBatchContext(ctx, shifted, workers)
}

func (b sliceBackend) Permute(rng *rand.Rand) *Permutation {
	return positionPermutation(b.n, rng, b.Access, func(ctx context.Context, js []int64, workers int) ([]Tuple, error) {
		return b.accessBatchContext(ctx, js, workers)
	})
}

func (sliceBackend) Distinct() bool { return true }

func (b sliceBackend) sampleN(k int64, rng *rand.Rand, workers int) ([]Tuple, error) {
	return samplePositions(b.n, k, rng, func(js []int64) ([]Tuple, error) {
		return b.accessBatchContext(context.Background(), js, workers)
	})
}

func (b sliceBackend) Explain() string {
	prefix := fmt.Sprintf("slice %d/%d: positions [%d, %d) of the global order\n", b.idx, b.k, b.lo, b.lo+b.n)
	if ex, ok := b.of.(explainer); ok {
		return prefix + ex.Explain()
	}
	return prefix
}

// sliceInvBackend adds inverted access and membership when the wrapped
// backend can invert: a hit outside the window is not an answer of the
// slice. (Contains needs the inverse too — a bare Container could confirm
// membership in the whole answer set, not in this window.)
type sliceInvBackend struct {
	sliceBackend
}

func (b sliceInvBackend) InvertedAccess(t Tuple) (int64, bool) {
	g, ok := b.of.(Inverter).InvertedAccess(t)
	if !ok || g < b.lo || g >= b.lo+b.n {
		return 0, false
	}
	return g - b.lo, true
}

func (b sliceInvBackend) Contains(t Tuple) bool {
	_, ok := b.InvertedAccess(t)
	return ok
}

// ------------------------------------------------------------------ shared

// positionPermutation assembles a Permutation over positions 0..n-1 with
// the canonical rng consumption: shuffle.New(n, rng) up front, one draw per
// emitted answer, batched draws pulled serially before the probes fan out —
// byte-compatible with the unsharded cqenum permutation for the same rng.
func positionPermutation(n int64, rng *rand.Rand, accessFn func(int64) (Tuple, error), batchFn func(context.Context, []int64, int) ([]Tuple, error)) *Permutation {
	shuf := shuffle.New(n, rng)
	nextNCtx := func(ctx context.Context, k int64) ([]Tuple, error) {
		if k < 0 {
			return nil, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if r := shuf.Remaining(); k > r {
			k = r
		}
		js := make([]int64, 0, k)
		for int64(len(js)) < k {
			j, ok := shuf.Next()
			if !ok {
				break
			}
			js = append(js, j)
		}
		return batchFn(ctx, js, 0)
	}
	return &Permutation{
		next: func() (Tuple, bool) {
			j, ok := shuf.Next()
			if !ok {
				return nil, false
			}
			t, err := accessFn(j)
			if err != nil {
				return nil, false
			}
			return t, true
		},
		nextN: func(k int64) []Tuple {
			ts, _ := nextNCtx(context.Background(), k)
			return ts
		},
		nextNCtx: nextNCtx,
	}
}

// samplePositions draws k distinct positions with the canonical lazy
// Fisher–Yates prefix and resolves them through batch.
func samplePositions(n, k int64, rng *rand.Rand, batch func([]int64) ([]Tuple, error)) ([]Tuple, error) {
	if k < 0 {
		return nil, ErrOutOfBounds
	}
	if k > n {
		k = n
	}
	shuf := shuffle.New(n, rng)
	js := make([]int64, 0, k)
	for int64(len(js)) < k {
		j, ok := shuf.Next()
		if !ok {
			break
		}
		js = append(js, j)
	}
	return batch(js)
}
