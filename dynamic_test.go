package renum

import (
	"errors"
	"math/rand"
	"testing"
)

func TestPublicDynamicAccess(t *testing.T) {
	db := NewDatabase()
	db.MustCreate("R", "r1", "r2")
	db.MustCreate("S", "s1", "s2")
	q := MustCQ("q", []string{"a", "b", "c"},
		NewAtom("R", V("a"), V("b")),
		NewAtom("S", V("b"), V("c")))
	dyn, err := NewDynamicAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Count() != 0 {
		t.Fatal("fresh count")
	}
	if _, err := dyn.Insert("R", Tuple{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.Insert("S", Tuple{2, 3}); err != nil {
		t.Fatal(err)
	}
	if dyn.Count() != 1 {
		t.Fatalf("Count = %d", dyn.Count())
	}
	a, err := dyn.Access(0)
	if err != nil || !a.Equal(Tuple{1, 2, 3}) {
		t.Fatalf("Access = %v, %v", a, err)
	}
	if j, ok := dyn.InvertedAccess(a); !ok || j != 0 {
		t.Fatal("inverted access")
	}
	if !dyn.Contains(a) {
		t.Fatal("Contains")
	}
	if s, ok := dyn.Sample(rand.New(rand.NewSource(1))); !ok || !s.Equal(a) {
		t.Fatal("Sample")
	}
	if changed, _ := dyn.Delete("R", Tuple{1, 2}); !changed {
		t.Fatal("delete")
	}
	if dyn.Count() != 0 || dyn.Contains(a) {
		t.Fatal("state after delete")
	}
	if h := dyn.Head(); len(h) != 3 || h[2] != "c" {
		t.Fatalf("Head = %v", h)
	}
	// Non-full queries are rejected with the sentinel error.
	proj := MustCQ("p", []string{"a"}, NewAtom("R", V("a"), V("b")))
	if _, err := NewDynamicAccess(db, proj); !errors.Is(err, ErrNotFull) {
		t.Fatalf("err = %v", err)
	}
}

// TestDynamicMatchesStaticAfterUpdates: after a batch of updates, a fresh
// static index over the same data must agree with the maintained dynamic one
// on count and answer set.
func TestDynamicMatchesStaticAfterUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := MustCQ("q", []string{"a", "b", "c"},
		NewAtom("R", V("a"), V("b")),
		NewAtom("S", V("b"), V("c")))

	db := NewDatabase()
	db.MustCreate("R", "r1", "r2")
	db.MustCreate("S", "s1", "s2")
	dyn, err := NewDynamicAccess(db, q)
	if err != nil {
		t.Fatal(err)
	}

	// Mirror database receiving the same net content.
	type fact struct {
		rel  string
		t    Tuple
		live bool
	}
	facts := map[string]*fact{}
	key := func(rel string, t Tuple) string { return rel + "|" + t.Key() }
	for step := 0; step < 400; step++ {
		rel := []string{"R", "S"}[rng.Intn(2)]
		tu := Tuple{Value(rng.Intn(6)), Value(rng.Intn(6))}
		if rng.Intn(4) > 0 {
			dyn.Insert(rel, tu)
			facts[key(rel, tu)] = &fact{rel, tu, true}
		} else {
			dyn.Delete(rel, tu)
			if f, ok := facts[key(rel, tu)]; ok {
				f.live = false
			}
		}
	}
	mirror := NewDatabase()
	mr := mirror.MustCreate("R", "r1", "r2")
	ms := mirror.MustCreate("S", "s1", "s2")
	for _, f := range facts {
		if !f.live {
			continue
		}
		switch f.rel {
		case "R":
			if _, err := mr.Insert(f.t); err != nil {
				t.Fatal(err)
			}
		case "S":
			if _, err := ms.Insert(f.t); err != nil {
				t.Fatal(err)
			}
		}
	}
	static, err := NewRandomAccess(mirror, q)
	if err != nil {
		t.Fatal(err)
	}
	if static.Count() != dyn.Count() {
		t.Fatalf("static %d vs dynamic %d", static.Count(), dyn.Count())
	}
	for j := int64(0); j < dyn.Count(); j++ {
		a, err := dyn.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if !static.Contains(a) {
			t.Fatalf("dynamic answer %v not in static index", a)
		}
	}
}
