// Triangle gap: a runnable demonstration of Example 5.1 — the separation
// between enumeration and random access for unions of CQs.
//
// The union Q∪ = Q1 ∪ Q2 with
//
//	Q1(x,y,z) :- R(x,y), S(y,z)
//	Q2(x,y,z) :- S(y,z), T(x,z)
//
// consists of two free-connex CQs, so REnum(UCQ) enumerates it in uniformly
// random order with expected-logarithmic delay. But an efficient random
// access for Q∪ would count |Q∪(D)|, and |Q1|+|Q2|-|Q∪| = |Q1 ∩ Q2| is the
// number of triangles R(x,y), S(y,z), T(x,z) — which is not believed to be
// computable in linear time (the Triangle hypothesis). Consistently, the
// mc-UCQ constructor rejects this union: its intersection is the cyclic
// triangle query.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	db := renum.NewDatabase()
	r := db.MustCreate("R", "x", "y")
	s := db.MustCreate("S", "y", "z")
	tt := db.MustCreate("T", "x", "z")
	const n = 40
	for i := 0; i < 120; i++ {
		r.MustInsert(renum.Value(rng.Intn(n)), renum.Value(rng.Intn(n)))
		s.MustInsert(renum.Value(rng.Intn(n)), renum.Value(rng.Intn(n)))
		tt.MustInsert(renum.Value(rng.Intn(n)), renum.Value(rng.Intn(n)))
	}

	q1 := renum.MustCQ("Q1", []string{"x", "y", "z"},
		renum.NewAtom("R", renum.V("x"), renum.V("y")),
		renum.NewAtom("S", renum.V("y"), renum.V("z")))
	q2 := renum.MustCQ("Q2", []string{"x", "y", "z"},
		renum.NewAtom("S", renum.V("y"), renum.V("z")),
		renum.NewAtom("T", renum.V("x"), renum.V("z")))
	u := renum.MustUCQ("Q∪", q1, q2)

	// Each CQ alone: random access is easy (Theorem 4.3).
	h1, err := renum.Open(db, q1)
	if err != nil {
		panic(err)
	}
	h2, err := renum.Open(db, q2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("|Q1| = %d, |Q2| = %d  (each counted in O(1) after linear preprocessing)\n",
		h1.Count(), h2.Count())

	// The union: opening the mc-UCQ access handle must fail — the
	// intersection is the triangle query, which is cyclic.
	if _, err := renum.Open(db, u); err != nil {
		fmt.Printf("mc-UCQ random access rejected, as Example 5.1 predicts:\n  %v\n", err)
	} else {
		fmt.Println("unexpected: union access succeeded")
	}

	// REnum(UCQ) still enumerates the union in uniformly random order.
	enum, err := renum.NewRandomOrderUnion(db, u, rng)
	if err != nil {
		panic(err)
	}
	union := int64(0)
	for {
		if _, ok := enum.Next(); !ok {
			break
		}
		union++
	}
	fmt.Printf("|Q∪| = %d via REnum(UCQ) (%d rejections)\n", union, enum.Rejections())

	// And the inclusion–exclusion identity recovers the triangle count —
	// which is why a *linear-time* union count cannot exist under the
	// Triangle hypothesis.
	triangles := h1.Count() + h2.Count() - union
	fmt.Printf("triangles in (R,S,T): |Q1|+|Q2|-|Q∪| = %d\n", triangles)

	tri := renum.MustCQ("tri", []string{"x", "y", "z"},
		renum.NewAtom("R", renum.V("x"), renum.V("y")),
		renum.NewAtom("S", renum.V("y"), renum.V("z")),
		renum.NewAtom("T", renum.V("x"), renum.V("z")))
	ans, err := renum.Evaluate(db, tri)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cross-check with the naive evaluator: %d triangles\n", len(ans))
}
