// Union search: paging through the answers of a *union* of conjunctive
// queries in uniformly random order — the paper's keyword-search motivation
// (Section 1): present the first pages of results immediately, with each
// page an unbiased sample of everything that matches.
//
// The dataset is a small bibliography; the union asks for (person, paper,
// topic) results that match either of two searches over the same join:
//
//	hot:    the paper is about a currently "hot" topic
//	local:  the author belongs to the database lab
//
// Like the paper's QS7 ∪ QC7, the disjuncts are the same join with different
// selections (realized as order-preserving filtered relations), so they
// overlap: a db-lab member writing about a hot topic matches both. Algorithm
// 5 (REnum(UCQ)) enumerates the union without duplicates anyway, and — as a
// bonus — the union is mutually compatible, so mc-UCQ random access works
// too and tells us the total count up front.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	db := renum.NewDatabase()
	authored := db.MustCreate("authored", "person", "paper")
	about := db.MustCreate("about", "paper", "topic")

	people := []string{"noa", "ben", "mia", "lev", "zoe", "avi", "gal", "tal"}
	dbLab := map[string]bool{"noa": true, "mia": true, "gal": true}
	topics := []string{"joins", "enumeration", "sampling", "provenance", "ranking"}
	hot := map[string]bool{"enumeration": true, "sampling": true}

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		paper := fmt.Sprintf("paper%02d", i)
		about.MustInsert(db.Intern(paper), db.Intern(topics[rng.Intn(len(topics))]))
		// One or two authors per paper.
		authored.MustInsert(db.Intern(people[rng.Intn(len(people))]), db.Intern(paper))
		if rng.Intn(2) == 0 {
			authored.MustInsert(db.Intern(people[rng.Intn(len(people))]), db.Intern(paper))
		}
	}

	// Selections as order-preserving filtered relations (the same
	// construction the paper uses for its TPC-H unions).
	db.Add(about.Filter("about_hot", func(t renum.Tuple) bool {
		return hot[db.Dict().String(t[1])]
	}))
	db.Add(authored.Filter("authored_dblab", func(t renum.Tuple) bool {
		return dbLab[db.Dict().String(t[0])]
	}))

	head := []string{"person", "paper", "topic"}
	qHot := renum.MustCQ("hot", head,
		renum.NewAtom("authored", renum.V("person"), renum.V("paper")),
		renum.NewAtom("about_hot", renum.V("paper"), renum.V("topic")),
	)
	qLocal := renum.MustCQ("local", head,
		renum.NewAtom("authored_dblab", renum.V("person"), renum.V("paper")),
		renum.NewAtom("about", renum.V("paper"), renum.V("topic")),
	)
	u := renum.MustUCQ("search", qHot, qLocal)

	// One Open serves the union: the mc-UCQ backend gives the exact result
	// count right after preprocessing (WithVerify checks order
	// compatibility explicitly).
	h, err := renum.Open(db, u, renum.WithVerify())
	if err != nil {
		panic(err)
	}
	fmt.Printf("search matches: %d (counted via mc-UCQ inclusion–exclusion; capabilities %v)\n\n",
		h.Count(), h.Capabilities())

	// Random-order paging via REnum(UCQ).
	enum, err := renum.NewRandomOrderUnion(db, u, rand.New(rand.NewSource(9)))
	if err != nil {
		panic(err)
	}
	const pageSize = 5
	for page := 1; page <= 3; page++ {
		fmt.Printf("-- page %d --\n", page)
		for i := 0; i < pageSize; i++ {
			t, ok := enum.Next()
			if !ok {
				fmt.Printf("(end of results; %d internal rejections)\n", enum.Rejections())
				return
			}
			fmt.Printf("  %-4s  %-8s  %s\n",
				db.Dict().String(t[0]), db.Dict().String(t[1]), db.Dict().String(t[2]))
		}
	}
	fmt.Println("\n(stopped after three pages — every page was an unbiased sample;")
	fmt.Printf(" duplicates across the two searches were suppressed, %d rejections so far)\n",
		enum.Rejections())
}
