// Live dashboard: the dynamic-index extension in action. A monitoring view
// joins three live feeds — service deployments, host assignments and alert
// streams — and the dashboard needs, at any moment,
//
//   - the exact number of (service, host, alert) incidents (Count, O(1)),
//   - a uniform random sample of incidents to display (Sample), and
//   - membership probes ("is this incident still live?", Contains),
//
// while deployments and alerts come and go. A handle opened with
// renum.WithDynamic maintains all of this under insertions and deletions
// without rebuilding the index: the update and sampling facilities are
// discovered through its capabilities (Updater, Sampler, Container).
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	db := renum.NewDatabase()
	db.MustCreate("deployed", "service", "host")
	db.MustCreate("alerts", "host", "alert")

	// Incident(service, host, alert) :- deployed(service, host), alerts(host, alert)
	q := renum.MustCQ("incident", []string{"service", "host", "alert"},
		renum.NewAtom("deployed", renum.V("service"), renum.V("host")),
		renum.NewAtom("alerts", renum.V("host"), renum.V("alert")),
	)
	h, err := renum.Open(db, q, renum.WithDynamic())
	if err != nil {
		panic(err)
	}
	fmt.Printf("backend: %s, capabilities: %v\n", h.Kind(), h.Capabilities())
	// The dashboard needs updates, samples and membership probes — all
	// optional capabilities, checked once here instead of assumed.
	upd, err := h.Updater()
	if err != nil {
		panic(err)
	}
	smp, err := h.Sampler()
	if err != nil {
		panic(err)
	}
	cont, err := h.Container()
	if err != nil {
		panic(err)
	}

	svc := func(s string) renum.Value { return db.Intern(s) }
	report := func(when string) {
		fmt.Printf("%-28s live incidents: %d", when, h.Count())
		if ts, err := smp.SampleN(1, rand.New(rand.NewSource(1))); err == nil && len(ts) > 0 {
			t := ts[0]
			fmt.Printf("   e.g. %s on %s: %s",
				db.Dict().String(t[0]), db.Dict().String(t[1]), db.Dict().String(t[2]))
		}
		fmt.Println()
	}

	report("empty system:")

	// Deployments roll out.
	for _, d := range [][2]string{
		{"api", "host1"}, {"api", "host2"}, {"web", "host2"}, {"db", "host3"},
	} {
		upd.Insert("deployed", renum.Tuple{svc(d[0]), svc(d[1])})
	}
	report("after rollout:")

	// Alerts fire on host2: every service on host2 becomes an incident.
	upd.Insert("alerts", renum.Tuple{svc("host2"), svc("cpu-high")})
	upd.Insert("alerts", renum.Tuple{svc("host2"), svc("disk-full")})
	report("host2 alerting:")

	// host3 joins the party.
	upd.Insert("alerts", renum.Tuple{svc("host3"), svc("cpu-high")})
	report("host3 alerting too:")

	// The web service is drained off host2 — its incidents disappear.
	upd.Delete("deployed", renum.Tuple{svc("web"), svc("host2")})
	report("web drained from host2:")

	// The disk alert resolves.
	upd.Delete("alerts", renum.Tuple{svc("host2"), svc("disk-full")})
	report("disk alert resolved:")

	// Membership probe.
	probe := renum.Tuple{svc("api"), svc("host2"), svc("cpu-high")}
	fmt.Printf("\nis api/host2/cpu-high still live? %v\n", cont.Contains(probe))
	upd.Delete("alerts", renum.Tuple{svc("host2"), svc("cpu-high")})
	fmt.Printf("after resolving it:             %v\n", cont.Contains(probe))
	report("\nfinal state:")
}
