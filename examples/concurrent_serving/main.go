// Concurrent serving: one shared index, many clients.
//
// The scenario behind this example is a query-answering service: an index
// over a star join is built once (in parallel across the join tree) and then
// serves a mixed workload — point lookups, batched pages, distinct samples,
// inverted-access membership probes — from many goroutines at once, with no
// locking on the static index. A dynamic index handles the same traffic
// concurrently with a stream of updates.
//
// Run with: go run ./examples/concurrent_serving
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/access"
	"repro/internal/reduce"
	"repro/internal/synth"
)

func main() {
	const (
		relations = 6
		tuples    = 60_000
		clients   = 8
		opsEach   = 4_000
	)
	db, q, err := synth.Star(synth.Config{
		Relations: relations, TuplesPerRelation: tuples, KeyDomain: 4_000, Seed: 11,
	})
	if err != nil {
		fail(err)
	}

	// --- Parallel preprocessing -------------------------------------------
	// The star join tree has `relations` independent leaves: the per-node
	// bucket builds fan out across the worker pool. Serial and parallel
	// builds produce identical indexes.
	fj, err := reduce.BuildFullJoin(db, q, reduce.Options{})
	if err != nil {
		fail(err)
	}
	t0 := time.Now()
	serialIdx, err := access.NewWithOptions(fj, access.BuildOptions{Workers: 1})
	if err != nil {
		fail(err)
	}
	serialDur := time.Since(t0)
	t0 = time.Now()
	parIdx, err := access.NewWithOptions(fj, access.BuildOptions{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		fail(err)
	}
	parDur := time.Since(t0)
	if serialIdx.Count() != parIdx.Count() {
		fail(fmt.Errorf("parallel build diverged: %d vs %d answers", serialIdx.Count(), parIdx.Count()))
	}
	fmt.Printf("build %d-leaf star over %d tuples: serial %v, parallel(%d workers) %v — %d answers\n",
		relations, relations*tuples, serialDur.Round(time.Millisecond),
		runtime.GOMAXPROCS(0), parDur.Round(time.Millisecond), parIdx.Count())

	// --- Concurrent read serving ------------------------------------------
	// One capability handle shared by every client: static backends are
	// immutable, so probes need no locking.
	h, err := renum.Open(db, q)
	if err != nil {
		fail(err)
	}
	inv, err := h.Inverter()
	if err != nil {
		fail(err)
	}
	smp, err := h.Sampler()
	if err != nil {
		fail(err)
	}
	n := h.Count()
	var ops, checked atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				switch i % 4 {
				case 0: // point lookup + membership round trip
					j := rng.Int63n(n)
					t, err := h.Access(j)
					if err != nil {
						fail(err)
					}
					if jj, ok := inv.InvertedAccess(t); !ok || jj != j {
						fail(fmt.Errorf("inverted access mismatch at %d", j))
					}
					checked.Add(1)
				case 1: // batched point lookups
					js := make([]int64, 64)
					for k := range js {
						js[k] = rng.Int63n(n)
					}
					if _, err := h.AccessBatch(js); err != nil {
						fail(err)
					}
				case 2: // a deep page, probes fanned out
					if _, err := h.Page(rng.Int63n(n), 128); err != nil {
						fail(err)
					}
				case 3: // distinct uniform samples
					if _, err := smp.SampleN(32, rng); err != nil {
						fail(err)
					}
				}
				ops.Add(1)
			}
		}(int64(c) + 1)
	}
	wg.Wait()
	dur := time.Since(start)
	fmt.Printf("served %d mixed ops from %d clients in %v (%.0f ops/s), %d round-trips verified\n",
		ops.Load(), clients, dur.Round(time.Millisecond),
		float64(ops.Load())/dur.Seconds(), checked.Load())

	// --- Mixed readers and writers on the dynamic index -------------------
	dq, err := fullChainQuery()
	if err != nil {
		fail(err)
	}
	ddb := renum.NewDatabase()
	r := ddb.MustCreate("R", "a", "b")
	s := ddb.MustCreate("S", "b", "c")
	seedRng := rand.New(rand.NewSource(7))
	for i := 0; i < 20_000; i++ {
		r.MustInsert(renum.Value(seedRng.Intn(2_000)), renum.Value(seedRng.Intn(400)))
		s.MustInsert(renum.Value(seedRng.Intn(400)), renum.Value(seedRng.Intn(2_000)))
	}
	dh, err := renum.Open(ddb, dq, renum.WithDynamic())
	if err != nil {
		fail(err)
	}
	upd, err := dh.Updater()
	if err != nil {
		fail(err)
	}
	dsmp, err := dh.Sampler()
	if err != nil {
		fail(err)
	}
	dcont, err := dh.Container()
	if err != nil {
		fail(err)
	}
	var reads, writes atomic.Int64
	start = time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach/4; i++ {
				if seed%4 == 0 { // one writer per four clients
					tu := renum.Tuple{renum.Value(rng.Intn(2_000)), renum.Value(rng.Intn(400))}
					if i%2 == 0 {
						if _, err := upd.Insert("R", tu); err != nil {
							fail(err)
						}
					} else {
						if _, err := upd.Delete("R", tu); err != nil {
							fail(err)
						}
					}
					writes.Add(1)
					continue
				}
				if ts, err := dsmp.SampleN(8, rng); err != nil {
					fail(err)
				} else if len(ts) > 0 {
					if !dcont.Contains(ts[0]) {
						// A concurrent delete may have removed it — Contains
						// false is legal; just keep the read pressure up.
						_ = ts
					}
				}
				reads.Add(1)
			}
		}(int64(c))
	}
	wg.Wait()
	fmt.Printf("dynamic index: %d sample batches + %d updates concurrently in %v, final count %d\n",
		reads.Load(), writes.Load(), time.Since(start).Round(time.Millisecond), dh.Count())
}

// fullChainQuery is the projection-free 2-chain the dynamic index requires.
func fullChainQuery() (*renum.CQ, error) {
	return renum.NewCQ("chain", []string{"a", "b", "c"}, []renum.Atom{
		renum.NewAtom("R", renum.V("a"), renum.V("b")),
		renum.NewAtom("S", renum.V("b"), renum.V("c")),
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "concurrent_serving:", err)
	os.Exit(1)
}
