// Online aggregation over TPC-H: the paper's motivating use case for
// *random-order* enumeration (Section 1). A downstream aggregate computed
// over the first k answers is only statistically meaningful if those answers
// are a uniform sample of the result. This example estimates the share of
// join results involving European suppliers from growing prefixes of
//
//   - the deterministic enumeration order (biased: the order is an artifact
//     of the join tree), versus
//   - the uniformly random order of REnum(CQ) (unbiased at every prefix).
package main

import (
	"fmt"
	"iter"
	"math/rand"

	"repro"
	"repro/internal/tpch"
	"repro/internal/tpchq"
)

func main() {
	db, err := tpch.Generate(tpch.Config{ScaleFactor: 0.01, Seed: 11})
	if err != nil {
		panic(err)
	}
	if err := tpchq.PrepareDerived(db); err != nil {
		panic(err)
	}

	// Q0(region, nation, supplier, part): the supplier catalogue joined up
	// to regions. Head position 0 is the region key.
	q := tpchq.Q0()
	h, err := renum.Open(db, q)
	if err != nil {
		panic(err)
	}
	n := h.Count()

	// Ground truth: exact fraction of answers in region EUROPE (key 3),
	// computed by draining the deterministic iterator once.
	const europe = 3
	exact := 0.0
	for t, err := range h.All() {
		if err != nil {
			panic(err)
		}
		if t[0] == europe {
			exact++
		}
	}
	exact /= float64(n)
	fmt.Printf("answers: %d, exact EUROPE share: %.4f\n\n", n, exact)

	// The two orders side by side, as iterator cursors (iter.Pull2 turns
	// the range-native sequences into step-by-step pulls).
	fmt.Printf("%8s  %18s  %18s\n", "prefix", "index-order est.", "random-order est.")
	detNext, detStop := iter.Pull2(h.All())
	defer detStop()
	rndNext, rndStop := iter.Pull2(h.Shuffled(rand.New(rand.NewSource(5))))
	defer rndStop()
	detHits, rndHits := 0.0, 0.0
	seen := int64(0)
	next := int64(10)
	for seen < n {
		dt, _, _ := detNext()
		rt, _, _ := rndNext()
		if dt[0] == europe {
			detHits++
		}
		if rt[0] == europe {
			rndHits++
		}
		seen++
		if seen == next || seen == n {
			fmt.Printf("%8d  %12.4f (err %+.3f)  %12.4f (err %+.3f)\n",
				seen,
				detHits/float64(seen), detHits/float64(seen)-exact,
				rndHits/float64(seen), rndHits/float64(seen)-exact)
			next *= 10
		}
	}
	fmt.Println("\nThe random-order estimate converges from the first prefixes;")
	fmt.Println("the index-order estimate stays biased until the enumeration is")
	fmt.Println("nearly complete, because answers arrive grouped by join-tree order.")
}
