// HTTP traffic: hammer a renumd-style server with mixed probe traffic.
//
// The scenario is the serving tier under load: a star-join index is built
// once, put behind the HTTP API (the same internal/server handler that
// cmd/renumd serves), and then N client goroutines fire a mixed workload —
// point accesses (which the server coalesces into batches), explicit
// batches, pages, counts and samples — over real sockets. At the end the
// example fetches /metrics and prints the per-endpoint latency summary and
// the coalescer's merge ratio.
//
// Run with: go run ./examples/http_traffic [-clients 8] [-ops 400]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/synth"
	"repro/internal/wire"
)

func main() {
	var (
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		ops      = flag.Int("ops", 400, "requests per client")
		tuples   = flag.Int("tuples", 20_000, "tuples per relation")
		coalesce = flag.Duration("coalesce-window", 300*time.Microsecond, "server access-coalescing window")
	)
	flag.Parse()

	// --- Build the dataset and the serving stack --------------------------
	db, q, err := synth.Star(synth.Config{
		Relations: 4, TuplesPerRelation: *tuples, KeyDomain: 2_000, SkewS: 1.2, Seed: 7,
	})
	if err != nil {
		fail(err)
	}
	// Render the star CQ as program text for the registry (the daemon path).
	var atoms []string
	for _, a := range q.Body {
		terms := make([]string, len(a.Terms))
		for i, t := range a.Terms {
			terms[i] = t.Var
		}
		atoms = append(atoms, fmt.Sprintf("%s(%s)", a.Relation, strings.Join(terms, ", ")))
	}
	program := fmt.Sprintf("Q(%s) :- %s.", strings.Join(q.Head, ", "), strings.Join(atoms, ", "))

	reg := server.NewRegistry(db, server.CoalesceConfig{Window: *coalesce, MaxBatch: 64}, 0)
	t0 := time.Now()
	if _, err := reg.Register(program, false); err != nil {
		fail(err)
	}
	entry, _ := reg.Lookup("Q")
	n := entry.Count()
	fmt.Printf("index built in %v: %d answers over %d tuples\n", time.Since(t0).Round(time.Millisecond), n, db.Size())

	srv := server.New(reg, server.Config{})
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	// Open traffic only once /readyz reports 200 — never sleep-and-fire.
	// Against this in-process server it is one round trip; the same loop
	// pointed at a renumd -router waits for the whole shard fleet.
	if err := waitReady(base, 10*time.Second); err != nil {
		fail(err)
	}
	fmt.Printf("serving on %s\n", base)

	// --- Mixed traffic ----------------------------------------------------
	var requests, failures atomic.Int64
	var wireRows, wireBytes atomic.Int64
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *clients}}
	get := func(url string) {
		requests.Add(1)
		resp, err := client.Get(url)
		if err != nil {
			failures.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			failures.Add(1)
		}
	}
	// getWire asks for the binary wire format (Accept negotiation) and
	// decodes the frame with the shared client codec, checksum included.
	getWire := func(url string) {
		requests.Add(1)
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			failures.Add(1)
			return
		}
		req.Header.Set("Accept", wire.ContentType)
		resp, err := client.Do(req)
		if err != nil {
			failures.Add(1)
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != wire.ContentType {
			failures.Add(1)
			return
		}
		h, err := wire.ParseFunc(body, nil)
		if err != nil {
			failures.Add(1)
			return
		}
		wireRows.Add(int64(h.Rows))
		wireBytes.Add(int64(len(body)))
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < *ops; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // point lookups dominate: the coalescer's diet
					get(fmt.Sprintf("%s/v1/Q/access?j=%d", base, rng.Int63n(n)))
				case 4, 5:
					js := make([]string, 16)
					for k := range js {
						js[k] = fmt.Sprint(rng.Int63n(n))
					}
					url := fmt.Sprintf("%s/v1/Q/batch?js=%s", base, strings.Join(js, ","))
					if rng.Intn(2) == 0 { // half the batches ride the binary format
						getWire(url)
					} else {
						get(url)
					}
				case 6:
					url := fmt.Sprintf("%s/v1/Q/page?offset=%d&limit=25", base, rng.Int63n(n))
					if rng.Intn(2) == 0 {
						getWire(url)
					} else {
						get(url)
					}
				case 7:
					get(fmt.Sprintf("%s/v1/Q/sample?k=8&seed=%d", base, rng.Int63()))
				default:
					get(base + "/v1/Q/count")
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("\n%d requests from %d clients in %v (%.0f req/s), %d failures\n",
		requests.Load(), *clients, elapsed.Round(time.Millisecond),
		float64(requests.Load())/elapsed.Seconds(), failures.Load())
	if rows := wireRows.Load(); rows > 0 {
		fmt.Printf("binary wire format: %d rows decoded from %d frame bytes (CRC-checked)\n",
			rows, wireBytes.Load())
	}

	// --- Report /metrics --------------------------------------------------
	resp, err := client.Get(base + "/metrics?format=json")
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	var m struct {
		Endpoints []server.EndpointSummary `json:"endpoints"`
		Coalescer []struct {
			Query  string `json:"query"`
			Rounds int64  `json:"rounds"`
			Served int64  `json:"served"`
		} `json:"coalescer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		fail(err)
	}
	fmt.Printf("\n%-10s %8s %8s %9s %9s %9s %9s\n", "endpoint", "count", "errors", "p50 ms", "p90 ms", "p99 ms", "max ms")
	for _, ep := range m.Endpoints {
		fmt.Printf("%-10s %8d %8d %9.3f %9.3f %9.3f %9.3f\n",
			ep.Endpoint, ep.Count, ep.Errors, ep.MedianMs, ep.P90Ms, ep.P99Ms, ep.MaxMs)
	}
	for _, c := range m.Coalescer {
		if c.Served > 0 {
			fmt.Printf("\ncoalescer[%s]: %d accesses served by %d batch probes (%.2f per probe)\n",
				c.Query, c.Served, c.Rounds, float64(c.Served)/float64(c.Rounds))
		}
	}
}

// waitReady polls GET /readyz until the server reports 200.
func waitReady(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s/readyz not ready after %v (%v)", base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "http_traffic:", err)
	os.Exit(1)
}
