// Quickstart: build a small database, open a handle on a free-connex CQ,
// and use the paper's facilities — counting, random access, and uniformly
// random-order enumeration — through the one-constructor API.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	// A toy social database: Follows(user, followee), Lives(user, city).
	db := renum.NewDatabase()
	follows := db.MustCreate("follows", "user", "followee")
	lives := db.MustCreate("lives", "user", "city")

	people := []string{"ada", "bob", "cat", "dan", "eve"}
	cities := []string{"paris", "tokyo", "lima"}
	rng := rand.New(rand.NewSource(7))
	for i, p := range people {
		lives.MustInsert(db.Intern(p), db.Intern(cities[i%len(cities)]))
		for j, q := range people {
			if i != j && rng.Intn(2) == 0 {
				follows.MustInsert(db.Intern(p), db.Intern(q))
			}
		}
	}

	// Q(user, followee, city) :- follows(user, followee), lives(followee, city)
	// "Who follows whom, and where does the followee live?"
	q := renum.MustCQ("Q", []string{"user", "followee", "city"},
		renum.NewAtom("follows", renum.V("user"), renum.V("followee")),
		renum.NewAtom("lives", renum.V("followee"), renum.V("city")),
	)
	fmt.Printf("query: %v\n", q)
	fmt.Printf("free-connex: %v\n", renum.IsFreeConnex(q))

	// One constructor: linear-time preprocessing behind a capability-based
	// handle (renum.Open takes a *CQ or a *UCQ plus functional options).
	h, err := renum.Open(db, q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("backend: %s, capabilities: %v\n", h.Kind(), h.Capabilities())
	fmt.Printf("answers: %d (counted in O(1))\n", h.Count())

	// Random access: jump straight to any position of the enumeration order.
	mid, _ := h.Access(h.Count() / 2)
	fmt.Printf("middle answer: %s\n", render(db, mid))

	// Optional facilities are discovered, not assumed: the inverted-access
	// capability maps an answer back to its position.
	if inv, err := h.Inverter(); err == nil {
		j, _ := inv.InvertedAccess(mid)
		fmt.Printf("...and its position again via inverted access: %d\n", j)
	}

	// Random permutation as a native iterator: every answer exactly once,
	// uniformly random order, O(log) delay — intermediate prefixes are
	// unbiased samples.
	fmt.Println("random-order enumeration:")
	for t, err := range h.Shuffled(rand.New(rand.NewSource(42))) {
		if err != nil {
			panic(err)
		}
		fmt.Printf("  %s\n", render(db, t))
	}
}

func render(db *renum.Database, t renum.Tuple) string {
	out := ""
	for i, v := range t {
		if i > 0 {
			out += ", "
		}
		out += db.Dict().String(v)
	}
	return out
}
