// Package hypergraph implements the hypergraph machinery of Section 2 of the
// paper: the hypergraph H_Q of a CQ, the GYO ear-reduction test for
// α-acyclicity, join-tree construction, and the free-connex test (H_Q stays
// acyclic after adding a hyperedge consisting of the free variables).
//
// All algorithms here run on the query alone (constant size under data
// complexity), so simple quadratic scans are used for clarity.
package hypergraph

import (
	"fmt"
	"sort"

	"repro/internal/query"
)

// Edge is a hyperedge: a set of variables with a stable identifier. For edges
// derived from a CQ, ID is the index of the atom in the body; virtual edges
// (such as the head edge used by the free-connex test) use negative IDs.
type Edge struct {
	ID   int
	Vars map[string]bool
}

// NewEdge builds an edge from a variable list.
func NewEdge(id int, vars []string) Edge {
	m := make(map[string]bool, len(vars))
	for _, v := range vars {
		m[v] = true
	}
	return Edge{ID: id, Vars: m}
}

// VarList returns the variables sorted (stable diagnostics).
func (e Edge) VarList() []string {
	out := make([]string, 0, len(e.Vars))
	for v := range e.Vars {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Hypergraph is an ordered list of edges. Order matters: the GYO reduction
// processes edges in index order, which makes join-tree construction
// deterministic — a property the mc-UCQ compatible-order construction relies
// on (Section 5.2).
type Hypergraph struct {
	Edges []Edge
}

// FromCQ builds the hypergraph of a CQ: one edge per atom, containing the
// atom's variables (constants contribute nothing).
func FromCQ(q *query.CQ) *Hypergraph {
	h := &Hypergraph{}
	for i, a := range q.Body {
		h.Edges = append(h.Edges, NewEdge(i, a.Vars()))
	}
	return h
}

// WithHeadEdge returns a copy of h extended with a virtual edge (ID -1) made
// of the CQ's head variables, as used by the free-connex definition.
func (h *Hypergraph) WithHeadEdge(head []string) *Hypergraph {
	out := &Hypergraph{Edges: make([]Edge, len(h.Edges), len(h.Edges)+1)}
	copy(out.Edges, h.Edges)
	out.Edges = append(out.Edges, NewEdge(-1, head))
	return out
}

// TreeNode is a node of a join tree. EdgeID identifies the originating edge.
type TreeNode struct {
	EdgeID   int
	Vars     map[string]bool
	Parent   *TreeNode
	Children []*TreeNode
}

// Tree is a rooted join tree: nodes(T) = edges(H), and for every variable v
// the nodes containing v form a connected subtree.
type Tree struct {
	Root  *TreeNode
	Nodes []*TreeNode // in edge-index order of the source hypergraph
}

// NodeByEdgeID returns the node built from the given edge, or nil.
func (t *Tree) NodeByEdgeID(id int) *TreeNode {
	for _, n := range t.Nodes {
		if n.EdgeID == id {
			return n
		}
	}
	return nil
}

// IsAcyclic reports whether the hypergraph is α-acyclic (GYO reduction
// succeeds).
func (h *Hypergraph) IsAcyclic() bool {
	_, err := h.JoinTree()
	return err == nil
}

// JoinTree runs the GYO ear-reduction and returns a join tree, or an error if
// the hypergraph is cyclic. The reduction is deterministic: at every round the
// highest-index removable ear is removed, and its parent is the lowest-index
// witness covering its shared vertices; an ear whose vertices are all
// isolated attaches to the lowest-index surviving edge so the tree stays
// connected. Determinism of the tree shape is required by the mc-UCQ
// compatible-order construction (Section 5.2).
func (h *Hypergraph) JoinTree() (*Tree, error) {
	n := len(h.Edges)
	if n == 0 {
		return nil, fmt.Errorf("hypergraph: no edges")
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = -1
	}
	remaining := n

	// occurrences counts, across alive edges, how many edges contain each var.
	occurrences := func(v string) int {
		c := 0
		for i, e := range h.Edges {
			if alive[i] && e.Vars[v] {
				c++
			}
		}
		return c
	}

	for remaining > 1 {
		removed := false
		// Scan ears from the highest index down so that earlier edges
		// survive longer; in particular, when the first atom can be the
		// root, it is (matching the paper's Example 4.4 convention).
		for i := len(h.Edges) - 1; i >= 0; i-- {
			e := h.Edges[i]
			if !alive[i] {
				continue
			}
			// Non-isolated vertices of e: those shared with another alive edge.
			var shared []string
			for v := range e.Vars {
				if occurrences(v) > 1 {
					shared = append(shared, v)
				}
			}
			// Find the lowest-index alive witness covering all shared vars.
			witness := -1
			for j, f := range h.Edges {
				if j == i || !alive[j] {
					continue
				}
				covers := true
				for _, v := range shared {
					if !f.Vars[v] {
						covers = false
						break
					}
				}
				if covers {
					witness = j
					break
				}
			}
			if witness < 0 {
				continue
			}
			parent[i] = witness
			alive[i] = false
			remaining--
			removed = true
			break
		}
		if !removed {
			return nil, fmt.Errorf("hypergraph: cyclic (GYO reduction stuck with %d edges)", remaining)
		}
	}

	// Build the tree. The single alive edge is the root.
	nodes := make([]*TreeNode, n)
	for i, e := range h.Edges {
		vars := make(map[string]bool, len(e.Vars))
		for v := range e.Vars {
			vars[v] = true
		}
		nodes[i] = &TreeNode{EdgeID: e.ID, Vars: vars}
	}
	var root *TreeNode
	for i := range h.Edges {
		if parent[i] < 0 {
			root = nodes[i]
		} else {
			nodes[i].Parent = nodes[parent[i]]
		}
	}
	// Children in edge-index order (determinism).
	for i := range h.Edges {
		if parent[i] >= 0 {
			nodes[parent[i]].Children = append(nodes[parent[i]].Children, nodes[i])
		}
	}
	return &Tree{Root: root, Nodes: nodes}, nil
}

// IsAcyclicCQ reports whether the CQ's hypergraph is α-acyclic.
func IsAcyclicCQ(q *query.CQ) bool {
	return FromCQ(q).IsAcyclic()
}

// IsFreeConnex implements the paper's definition: Q is free-connex if Q is
// acyclic and H_Q extended with a hyperedge of the free variables is acyclic.
func IsFreeConnex(q *query.CQ) bool {
	h := FromCQ(q)
	if !h.IsAcyclic() {
		return false
	}
	return h.WithHeadEdge(q.Head).IsAcyclic()
}

// Validate checks the join-tree property of t against the hypergraph h (used
// by tests): node vars match edges, and every variable's occurrence set is
// connected in t.
func (t *Tree) Validate(h *Hypergraph) error {
	if len(t.Nodes) != len(h.Edges) {
		return fmt.Errorf("join tree: %d nodes for %d edges", len(t.Nodes), len(h.Edges))
	}
	vars := make(map[string][]*TreeNode)
	for i, node := range t.Nodes {
		if len(node.Vars) != len(h.Edges[i].Vars) {
			return fmt.Errorf("join tree: node %d vars mismatch", i)
		}
		for v := range node.Vars {
			if !h.Edges[i].Vars[v] {
				return fmt.Errorf("join tree: node %d has alien var %s", i, v)
			}
			vars[v] = append(vars[v], node)
		}
	}
	// Connectivity per variable: the nodes containing v, minus one
	// representative, must each have a parent chain within the set.
	for v, occ := range vars {
		if len(occ) <= 1 {
			continue
		}
		in := make(map[*TreeNode]bool, len(occ))
		for _, n := range occ {
			in[n] = true
		}
		// The subgraph induced on `in` must be connected: count nodes whose
		// parent is not in the set; exactly one (the subtree top) is allowed.
		tops := 0
		for _, n := range occ {
			if n.Parent == nil || !in[n.Parent] {
				tops++
			}
		}
		if tops != 1 {
			return fmt.Errorf("join tree: variable %s occurs in %d disconnected components", v, tops)
		}
	}
	return nil
}
