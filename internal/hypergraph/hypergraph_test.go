package hypergraph

import (
	"math/rand"
	"testing"

	"repro/internal/query"
)

func cq(head []string, body ...query.Atom) *query.CQ {
	return query.MustCQ("q", head, body...)
}

func TestAcyclicChain(t *testing.T) {
	q := cq([]string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")),
	)
	if !IsAcyclicCQ(q) {
		t.Fatal("chain join reported cyclic")
	}
}

func TestCyclicTriangle(t *testing.T) {
	q := cq([]string{"x"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")),
		query.NewAtom("T", query.V("x"), query.V("z")),
	)
	if IsAcyclicCQ(q) {
		t.Fatal("triangle reported acyclic")
	}
}

func TestAcyclicTriangleWithCover(t *testing.T) {
	// Adding an edge covering the triangle makes it α-acyclic.
	h := &Hypergraph{Edges: []Edge{
		NewEdge(0, []string{"x", "y"}),
		NewEdge(1, []string{"y", "z"}),
		NewEdge(2, []string{"x", "z"}),
		NewEdge(3, []string{"x", "y", "z"}),
	}}
	if !h.IsAcyclic() {
		t.Fatal("covered triangle must be α-acyclic")
	}
	tree, err := h.JoinTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(h); err != nil {
		t.Fatal(err)
	}
}

func TestCyclicSquare(t *testing.T) {
	h := &Hypergraph{Edges: []Edge{
		NewEdge(0, []string{"a", "b"}),
		NewEdge(1, []string{"b", "c"}),
		NewEdge(2, []string{"c", "d"}),
		NewEdge(3, []string{"d", "a"}),
	}}
	if h.IsAcyclic() {
		t.Fatal("4-cycle reported acyclic")
	}
}

func TestDisconnectedAcyclic(t *testing.T) {
	q := cq([]string{"x", "y"},
		query.NewAtom("R", query.V("x")),
		query.NewAtom("S", query.V("y")),
	)
	if !IsAcyclicCQ(q) {
		t.Fatal("disconnected (cross product) must be acyclic")
	}
	tree, err := FromCQ(q).JoinTree()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root == nil || len(tree.Nodes) != 2 {
		t.Fatal("bad tree for cross product")
	}
	if err := tree.Validate(FromCQ(q)); err != nil {
		t.Fatal(err)
	}
}

func TestJoinTreeValidOnExamples(t *testing.T) {
	// Example 4.4 of the paper: R1(v,w,x), R2(v,y), R3(w,z).
	q := cq([]string{"v", "w", "x", "y", "z"},
		query.NewAtom("R1", query.V("v"), query.V("w"), query.V("x")),
		query.NewAtom("R2", query.V("v"), query.V("y")),
		query.NewAtom("R3", query.V("w"), query.V("z")),
	)
	h := FromCQ(q)
	tree, err := h.JoinTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(h); err != nil {
		t.Fatal(err)
	}
	if tree.NodeByEdgeID(5) != nil {
		t.Fatal("NodeByEdgeID found nonexistent id")
	}
	if tree.NodeByEdgeID(0) == nil {
		t.Fatal("NodeByEdgeID missed id 0")
	}
}

func TestFreeConnexClassification(t *testing.T) {
	cases := []struct {
		name string
		q    *query.CQ
		want bool
	}{
		{
			// Full acyclic join: trivially free-connex.
			"full-chain",
			cq([]string{"x", "y", "z"},
				query.NewAtom("R", query.V("x"), query.V("y")),
				query.NewAtom("S", query.V("y"), query.V("z"))),
			true,
		},
		{
			// The classic non-free-connex acyclic query (matrix multiplication).
			"projected-chain",
			cq([]string{"x", "z"},
				query.NewAtom("R", query.V("x"), query.V("y")),
				query.NewAtom("S", query.V("y"), query.V("z"))),
			false,
		},
		{
			"single-projection",
			cq([]string{"x"},
				query.NewAtom("R", query.V("x"), query.V("y"))),
			true,
		},
		{
			"existential-tail",
			cq([]string{"x", "y"},
				query.NewAtom("R", query.V("x"), query.V("y")),
				query.NewAtom("S", query.V("y"), query.V("z")),
				query.NewAtom("T", query.V("z"), query.V("w"))),
			true,
		},
		{
			"cyclic",
			cq([]string{"x", "y", "z"},
				query.NewAtom("R", query.V("x"), query.V("y")),
				query.NewAtom("S", query.V("y"), query.V("z")),
				query.NewAtom("T", query.V("x"), query.V("z"))),
			false,
		},
		{
			// Star query with projection onto the center: free-connex.
			"star-center",
			cq([]string{"x"},
				query.NewAtom("R", query.V("x"), query.V("a")),
				query.NewAtom("S", query.V("x"), query.V("b")),
				query.NewAtom("T", query.V("x"), query.V("c"))),
			true,
		},
		{
			// Star projected onto the leaves: head edge {a,b} with body
			// R(x,a), S(x,b) — H+head is cyclic.
			"star-leaves",
			cq([]string{"a", "b"},
				query.NewAtom("R", query.V("x"), query.V("a")),
				query.NewAtom("S", query.V("x"), query.V("b"))),
			false,
		},
		{
			// Boolean query.
			"boolean",
			cq(nil,
				query.NewAtom("R", query.V("x"), query.V("y")),
				query.NewAtom("S", query.V("y"), query.V("z"))),
			true,
		},
	}
	for _, c := range cases {
		if got := IsFreeConnex(c.q); got != c.want {
			t.Errorf("%s: IsFreeConnex = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestQ7StructureIsFreeConnex(t *testing.T) {
	// The paper's Q7 (with a self-join on nation) must be free-connex.
	q := query.MustCQ("Q7",
		[]string{"ok", "ck", "nk1", "sk", "lpk", "ln", "nk2"},
		query.NewAtom("supplier", query.V("sk"), query.V("sn"), query.V("nk1")),
		query.NewAtom("lineitem", query.V("ok"), query.V("lpk"), query.V("sk"), query.V("ln")),
		query.NewAtom("orders", query.V("ok"), query.V("ck")),
		query.NewAtom("customer", query.V("ck"), query.V("cn"), query.V("nk2")),
		query.NewAtom("nation", query.V("nk1"), query.V("nn1"), query.V("rk1")),
		query.NewAtom("nation", query.V("nk2"), query.V("nn2"), query.V("rk2")),
	)
	if !IsFreeConnex(q) {
		t.Fatal("Q7 must be free-connex")
	}
}

// TestJoinTreeValidRandom cross-checks GYO against the join-tree property on
// random acyclic-ish hypergraphs: whenever JoinTree succeeds, the result must
// satisfy the join-tree property.
func TestJoinTreeValidRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	varNames := []string{"a", "b", "c", "d", "e", "f"}
	accepted := 0
	for iter := 0; iter < 2000; iter++ {
		ne := 2 + rng.Intn(4)
		h := &Hypergraph{}
		for i := 0; i < ne; i++ {
			k := 1 + rng.Intn(3)
			perm := rng.Perm(len(varNames))[:k]
			vars := make([]string, k)
			for j, p := range perm {
				vars[j] = varNames[p]
			}
			h.Edges = append(h.Edges, NewEdge(i, vars))
		}
		tree, err := h.JoinTree()
		if err != nil {
			continue
		}
		accepted++
		if err := tree.Validate(h); err != nil {
			t.Fatalf("iteration %d: invalid join tree: %v (edges %v)", iter, err, h.Edges)
		}
	}
	if accepted == 0 {
		t.Fatal("no acyclic instances generated; test is vacuous")
	}
}

// bruteForceAcyclic checks α-acyclicity by exhaustive search over all rooted
// trees on the edges (only feasible for tiny hypergraphs); used to validate
// GYO. A hypergraph is α-acyclic iff some tree over its edges satisfies the
// join-tree property.
func bruteForceAcyclic(h *Hypergraph) bool {
	n := len(h.Edges)
	if n == 1 {
		return true
	}
	if n > 5 {
		panic("too large for brute force")
	}
	parents := make([]int, n)

	checkTree := func(root int) bool {
		// Reject parent graphs with cycles (every non-root must reach root).
		for j := 0; j < n; j++ {
			if j == root {
				continue
			}
			k, steps := j, 0
			for k != root {
				k = parents[k]
				if steps++; steps > n {
					return false
				}
			}
		}
		nodes := make([]*TreeNode, n)
		for j := range nodes {
			nodes[j] = &TreeNode{EdgeID: h.Edges[j].ID, Vars: h.Edges[j].Vars}
		}
		for j := 0; j < n; j++ {
			if j == root {
				continue
			}
			nodes[j].Parent = nodes[parents[j]]
			nodes[parents[j]].Children = append(nodes[parents[j]].Children, nodes[j])
		}
		tr := &Tree{Root: nodes[root], Nodes: nodes}
		return tr.Validate(h) == nil
	}

	for root := 0; root < n; root++ {
		// Enumerate all parent assignments for the non-root nodes.
		var rec func(i int) bool
		rec = func(i int) bool {
			if i == n {
				return checkTree(root)
			}
			if i == root {
				return rec(i + 1)
			}
			for p := 0; p < n; p++ {
				if p == i {
					continue
				}
				parents[i] = p
				if rec(i + 1) {
					return true
				}
			}
			return false
		}
		if rec(0) {
			return true
		}
	}
	return false
}

func TestGYOMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	varNames := []string{"a", "b", "c", "d", "e"}
	for iter := 0; iter < 500; iter++ {
		ne := 2 + rng.Intn(3) // 2..4 edges
		h := &Hypergraph{}
		for i := 0; i < ne; i++ {
			k := 1 + rng.Intn(3)
			perm := rng.Perm(len(varNames))[:k]
			vars := make([]string, k)
			for j, p := range perm {
				vars[j] = varNames[p]
			}
			h.Edges = append(h.Edges, NewEdge(i, vars))
		}
		gyo := h.IsAcyclic()
		brute := bruteForceAcyclic(h)
		if gyo != brute {
			t.Fatalf("iteration %d: GYO=%v brute=%v for edges %v", iter, gyo, brute, h.Edges)
		}
	}
}

func TestWithHeadEdgeDoesNotMutate(t *testing.T) {
	h := &Hypergraph{Edges: []Edge{NewEdge(0, []string{"x", "y"})}}
	h2 := h.WithHeadEdge([]string{"x"})
	if len(h.Edges) != 1 || len(h2.Edges) != 2 {
		t.Fatal("WithHeadEdge mutated the receiver or failed to extend")
	}
	if h2.Edges[1].ID != -1 || !h2.Edges[1].Vars["x"] {
		t.Fatal("head edge malformed")
	}
}

func TestEdgeVarList(t *testing.T) {
	e := NewEdge(0, []string{"z", "a", "m"})
	got := e.VarList()
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Fatalf("VarList = %v", got)
	}
}
