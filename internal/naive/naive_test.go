package naive

import (
	"math/rand"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func buildChainDB() *relation.Database {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	r.MustInsert(1, 10)
	r.MustInsert(2, 10)
	r.MustInsert(3, 20)
	s.MustInsert(10, 100)
	s.MustInsert(10, 200)
	s.MustInsert(30, 300)
	return db
}

func TestEvaluateChain(t *testing.T) {
	db := buildChainDB()
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
	)
	ans, err := Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Tuple{
		{1, 10, 100}, {1, 10, 200}, {2, 10, 100}, {2, 10, 200},
	}
	if !SameAnswerSet(ans, want) {
		t.Fatalf("answers = %v, want %v", Sorted(ans), want)
	}
}

func TestEvaluateProjection(t *testing.T) {
	db := buildChainDB()
	q := query.MustCQ("q", []string{"a"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
	)
	ans, err := Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Tuple{{1}, {2}}
	if !SameAnswerSet(ans, want) {
		t.Fatalf("answers = %v, want %v", Sorted(ans), want)
	}
}

func TestEvaluateConstants(t *testing.T) {
	db := buildChainDB()
	q := query.MustCQ("q", []string{"b"},
		query.NewAtom("R", query.C(1), query.V("b")),
	)
	ans, err := Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !SameAnswerSet(ans, []relation.Tuple{{10}}) {
		t.Fatalf("answers = %v", ans)
	}
}

func TestEvaluateRepeatedVars(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	r.MustInsert(1, 1)
	r.MustInsert(1, 2)
	r.MustInsert(3, 3)
	q := query.MustCQ("q", []string{"x"},
		query.NewAtom("R", query.V("x"), query.V("x")),
	)
	ans, err := Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !SameAnswerSet(ans, []relation.Tuple{{1}, {3}}) {
		t.Fatalf("answers = %v", ans)
	}
}

func TestEvaluateSelfJoin(t *testing.T) {
	db := relation.NewDatabase()
	e := db.MustCreate("E", "a", "b")
	e.MustInsert(1, 2)
	e.MustInsert(2, 3)
	e.MustInsert(3, 1)
	// Paths of length 2.
	q := query.MustCQ("q", []string{"x", "z"},
		query.NewAtom("E", query.V("x"), query.V("y")),
		query.NewAtom("E", query.V("y"), query.V("z")),
	)
	ans, err := Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	want := []relation.Tuple{{1, 3}, {2, 1}, {3, 2}}
	if !SameAnswerSet(ans, want) {
		t.Fatalf("answers = %v, want %v", Sorted(ans), want)
	}
}

func TestEvaluateBoolean(t *testing.T) {
	db := buildChainDB()
	q := query.MustCQ("q", nil,
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
	)
	ans, err := Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || len(ans[0]) != 0 {
		t.Fatalf("boolean true answer = %v", ans)
	}
	// Empty case.
	qEmpty := query.MustCQ("q", nil,
		query.NewAtom("R", query.V("a"), query.C(999)),
	)
	ans, err = Evaluate(db, qEmpty)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("boolean false answer = %v", ans)
	}
}

func TestEvaluateCrossProduct(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a")
	s := db.MustCreate("S", "b")
	r.MustInsert(1)
	r.MustInsert(2)
	s.MustInsert(10)
	q := query.MustCQ("q", []string{"a", "b"},
		query.NewAtom("R", query.V("a")),
		query.NewAtom("S", query.V("b")),
	)
	ans, err := Evaluate(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if !SameAnswerSet(ans, []relation.Tuple{{1, 10}, {2, 10}}) {
		t.Fatalf("answers = %v", ans)
	}
}

func TestEvaluateErrors(t *testing.T) {
	db := buildChainDB()
	q := query.MustCQ("q", []string{"a"}, query.NewAtom("Missing", query.V("a")))
	if _, err := Evaluate(db, q); err == nil {
		t.Fatal("missing relation accepted")
	}
	q2 := query.MustCQ("q", []string{"a"}, query.NewAtom("R", query.V("a")))
	if _, err := Evaluate(db, q2); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestEvaluateUCQDeduplicates(t *testing.T) {
	db := buildChainDB()
	q1 := query.MustCQ("q1", []string{"a", "b"},
		query.NewAtom("R", query.V("a"), query.V("b")))
	q2 := query.MustCQ("q2", []string{"a", "b"},
		query.NewAtom("R", query.V("a"), query.V("b")))
	u := query.MustUCQ("u", q1, q2)
	ans, err := EvaluateUCQ(db, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 3 {
		t.Fatalf("union of identical CQs has %d answers, want 3", len(ans))
	}
}

// TestEvaluateAgainstTripleLoop verifies the backtracking join against a
// plain triple nested loop on random data.
func TestEvaluateAgainstTripleLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 30; iter++ {
		db := relation.NewDatabase()
		r := db.MustCreate("R", "a", "b")
		s := db.MustCreate("S", "b", "c")
		u := db.MustCreate("U", "c", "d")
		for i := 0; i < 30; i++ {
			r.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
			s.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
			u.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		}
		q := query.MustCQ("q", []string{"a", "b", "c", "d"},
			query.NewAtom("R", query.V("a"), query.V("b")),
			query.NewAtom("S", query.V("b"), query.V("c")),
			query.NewAtom("U", query.V("c"), query.V("d")),
		)
		got, err := Evaluate(db, q)
		if err != nil {
			t.Fatal(err)
		}
		var want []relation.Tuple
		seen := make(map[string]bool)
		for _, tr := range r.Tuples() {
			for _, ts := range s.Tuples() {
				if tr[1] != ts[0] {
					continue
				}
				for _, tu := range u.Tuples() {
					if ts[1] != tu[0] {
						continue
					}
					ans := relation.Tuple{tr[0], tr[1], ts[1], tu[1]}
					if !seen[ans.Key()] {
						seen[ans.Key()] = true
						want = append(want, ans)
					}
				}
			}
		}
		if !SameAnswerSet(got, want) {
			t.Fatalf("iteration %d: mismatch: got %d answers, want %d", iter, len(got), len(want))
		}
	}
}
