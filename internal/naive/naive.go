// Package naive evaluates CQs and UCQs by straightforward hash joins with
// backtracking. It makes no complexity guarantees and exists purely as a
// correctness oracle for the enumeration, random-access and sampling
// algorithms, and as the fallback evaluator for queries outside the
// free-connex class.
package naive

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/relation"
)

// Evaluate returns the full answer set Q(D) as a deduplicated slice of
// tuples (one value per head variable, in head order).
func Evaluate(db *relation.Database, q *query.CQ) ([]relation.Tuple, error) {
	rels := make([]*relation.Relation, len(q.Body))
	for i, a := range q.Body {
		r, err := db.Relation(a.Relation)
		if err != nil {
			return nil, fmt.Errorf("naive: query %s: %w", q.Name, err)
		}
		if r.Arity() != len(a.Terms) {
			return nil, fmt.Errorf("naive: query %s: atom %s has %d terms but relation has arity %d",
				q.Name, a, len(a.Terms), r.Arity())
		}
		rels[i] = r
	}

	// Order atoms greedily by connectivity to already-bound variables so the
	// backtracking join has selective prefixes.
	order := atomOrder(q)

	// For each atom (in join order), build a hash index keyed on the
	// positions whose variables are bound by earlier atoms (plus constants
	// and repeated variables checked inline).
	type step struct {
		atom       query.Atom
		rel        *relation.Relation
		keyPos     []int          // positions in the atom keyed on bound vars
		keyVars    []string       // the corresponding variable names
		keyScratch relation.Tuple // reused row for probe-key assembly
		index      map[string][]relation.Tuple
		allPass    []relation.Tuple // used when keyPos is empty
	}
	bound := make(map[string]bool)
	steps := make([]*step, len(order))
	for si, ai := range order {
		a := q.Body[ai]
		st := &step{atom: a, rel: rels[ai]}
		for pos, t := range a.Terms {
			if t.IsVar() && bound[t.Var] {
				st.keyPos = append(st.keyPos, pos)
				st.keyVars = append(st.keyVars, t.Var)
			}
		}
		// Build index over tuples that satisfy the atom's constants and
		// repeated-variable equalities.
		matches := func(tu relation.Tuple) bool {
			firstPos := make(map[string]int)
			for pos, t := range a.Terms {
				if !t.IsVar() {
					if tu[pos] != t.Const {
						return false
					}
					continue
				}
				if fp, ok := firstPos[t.Var]; ok {
					if tu[pos] != tu[fp] {
						return false
					}
				} else {
					firstPos[t.Var] = pos
				}
			}
			return true
		}
		if len(st.keyPos) == 0 {
			for _, tu := range st.rel.Tuples() {
				if matches(tu) {
					st.allPass = append(st.allPass, tu)
				}
			}
		} else {
			st.index = make(map[string][]relation.Tuple)
			for _, tu := range st.rel.Tuples() {
				if matches(tu) {
					k := tu.ProjectKey(st.keyPos)
					st.index[k] = append(st.index[k], tu)
				}
			}
		}
		st.keyScratch = make(relation.Tuple, len(st.keyVars))
		for _, t := range a.Terms {
			if t.IsVar() {
				bound[t.Var] = true
			}
		}
		steps[si] = st
	}

	assignment := make(map[string]relation.Value)
	seen := make(map[string]bool)
	var keyBuf []byte // reused probe-key buffer (canonical relation encoding)
	var out []relation.Tuple

	var rec func(si int)
	rec = func(si int) {
		if si == len(steps) {
			ans := make(relation.Tuple, len(q.Head))
			for i, h := range q.Head {
				ans[i] = assignment[h]
			}
			k := ans.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, ans)
			}
			return
		}
		st := steps[si]
		var candidates []relation.Tuple
		if st.index == nil {
			candidates = st.allPass
		} else {
			for i, v := range st.keyVars {
				st.keyScratch[i] = assignment[v]
			}
			keyBuf = st.keyScratch.AppendKey(keyBuf[:0])
			candidates = st.index[string(keyBuf)]
		}
		for _, tu := range candidates {
			// Bind new variables; remember which to unbind.
			var newly []string
			ok := true
			for pos, t := range st.atom.Terms {
				if !t.IsVar() {
					continue
				}
				if v, already := assignment[t.Var]; already {
					if v != tu[pos] {
						ok = false
						break
					}
				} else {
					assignment[t.Var] = tu[pos]
					newly = append(newly, t.Var)
				}
			}
			if ok {
				rec(si + 1)
			}
			for _, v := range newly {
				delete(assignment, v)
			}
		}
	}
	rec(0)
	return out, nil
}

// atomOrder returns atom indices ordered so each atom (after the first)
// shares a variable with an earlier atom when possible.
func atomOrder(q *query.CQ) []int {
	n := len(q.Body)
	used := make([]bool, n)
	var order []int
	bound := make(map[string]bool)
	for len(order) < n {
		best := -1
		bestShared := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			shared := 0
			for _, v := range q.Body[i].Vars() {
				if bound[v] {
					shared++
				}
			}
			if shared > bestShared {
				bestShared = shared
				best = i
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range q.Body[best].Vars() {
			bound[v] = true
		}
	}
	return order
}

// EvaluateUCQ returns the deduplicated union of the disjuncts' answers.
func EvaluateUCQ(db *relation.Database, u *query.UCQ) ([]relation.Tuple, error) {
	seen := make(map[string]bool)
	var out []relation.Tuple
	for _, q := range u.Disjuncts {
		ans, err := Evaluate(db, q)
		if err != nil {
			return nil, err
		}
		for _, t := range ans {
			k := t.Key()
			if !seen[k] {
				seen[k] = true
				out = append(out, t)
			}
		}
	}
	return out, nil
}

// Sorted returns a lexicographically sorted copy of tuples (canonical form
// for comparisons in tests).
func Sorted(tuples []relation.Tuple) []relation.Tuple {
	out := make([]relation.Tuple, len(tuples))
	copy(out, tuples)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// SameAnswerSet reports whether two answer multisets are equal as sets.
func SameAnswerSet(a, b []relation.Tuple) bool {
	as, bs := make(map[string]bool), make(map[string]bool)
	for _, t := range a {
		as[t.Key()] = true
	}
	for _, t := range b {
		bs[t.Key()] = true
	}
	if len(as) != len(bs) {
		return false
	}
	for k := range as {
		if !bs[k] {
			return false
		}
	}
	return true
}
