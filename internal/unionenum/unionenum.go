// Package unionenum implements Algorithm 5 of the paper: random-order
// enumeration of a union of sets S1 ∪ ... ∪ Sk, given per-set counting,
// uniform sampling, membership testing and deletion (Lemma 5.2). Applied to
// unions of free-connex CQs via the Lemma 5.3 sets, this is REnum(UCQ):
// linear preprocessing and expected logarithmic delay (Theorem 5.4).
//
// # Concurrency contract
//
// NewFromUCQ prepares the disjunct indexes on a worker pool (they are
// independent); the resulting Enumerator is strictly single-consumer:
// every Next mutates the deletable sets and the rng, so a shared Enumerator
// must be driven by one goroutine (or externally serialized). Build one
// Enumerator per consumer — the underlying indexes cannot be shared across
// enumerators anyway, since enumeration consumes the sets.
package unionenum

import (
	"math/rand"
	"time"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
)

// Set is the abstract interface required by Algorithm 5. All four operations
// must run in (poly)logarithmic time for the delay guarantee to hold.
type Set interface {
	// Count returns the number of remaining elements.
	Count() int64
	// Sample returns a uniformly random remaining element without removing
	// it; ok is false iff the set is empty.
	Sample(rng *rand.Rand) (relation.Tuple, bool)
	// Test reports whether t is a remaining element.
	Test(t relation.Tuple) bool
	// Delete removes t, reporting whether it was present.
	Delete(t relation.Tuple) bool
}

// Enumerator emits the elements of the union exactly once each, in uniformly
// random order. Each emission costs an expected O(k) set operations, where k
// is the number of sets; the delay is also amortized O(k) operations because
// every element is rejected at most once (it is deleted from all non-owner
// sets the first time it is sampled).
type Enumerator struct {
	sets []Set
	rng  *rand.Rand

	// Instrument enables wall-clock accounting of time spent on rejected
	// iterations versus emitting iterations (Figure 5 of the paper).
	Instrument bool

	// Rejections counts rejected iterations so far.
	Rejections int64
	// RejectTime and AnswerTime accumulate iteration wall-clock time when
	// Instrument is set.
	RejectTime time.Duration
	AnswerTime time.Duration
}

// New builds an enumerator over the given sets. The sets are consumed:
// enumeration deletes their elements.
func New(sets []Set, rng *rand.Rand) *Enumerator {
	return &Enumerator{sets: sets, rng: rng}
}

// NewFromUCQ prepares every disjunct of the UCQ (linear preprocessing per
// disjunct, disjuncts prepared concurrently on the default worker pool) and
// returns the Algorithm 5 enumerator over their answer sets.
func NewFromUCQ(db *relation.Database, u *query.UCQ, rng *rand.Rand, opts reduce.Options) (*Enumerator, error) {
	return NewFromUCQWorkers(db, u, rng, opts, 0)
}

// NewFromUCQWorkers is NewFromUCQ with the preparation fan-out capped at
// `workers` goroutines (0 means all cores; 1 prepares the disjuncts serially
// with serial index builds — the paper's single-threaded setup).
func NewFromUCQWorkers(db *relation.Database, u *query.UCQ, rng *rand.Rand, opts reduce.Options, workers int) (*Enumerator, error) {
	sets := make([]Set, len(u.Disjuncts))
	build := access.BuildOptions{Workers: workers}
	if err := parallel.ForEach(len(u.Disjuncts), workers, func(i int) error {
		c, err := cqenum.PrepareWithOptions(db, u.Disjuncts[i], opts, build)
		if err != nil {
			return err
		}
		sets[i] = c.NewDeletableSet()
		return nil
	}); err != nil {
		return nil, err
	}
	return New(sets, rng), nil
}

// Remaining returns the number of elements not yet emitted. Because an
// element may still be present in several sets, this is an upper bound that
// becomes exact as duplicates get deleted; Count()==0 is exact emptiness.
func (e *Enumerator) Remaining() int64 {
	var total int64
	for _, s := range e.sets {
		total += s.Count()
	}
	return total
}

// Next returns the next element of the random permutation of the union; ok
// is false once the union is exhausted.
func (e *Enumerator) Next() (relation.Tuple, bool) {
	for {
		var start time.Time
		if e.Instrument {
			start = time.Now()
		}

		// Line 1-2: weighted choice of a set by remaining cardinality.
		var total int64
		for _, s := range e.sets {
			total += s.Count()
		}
		if total == 0 {
			return nil, false
		}
		r := e.rng.Int63n(total)
		chosen := -1
		for i, s := range e.sets {
			c := s.Count()
			if r < c {
				chosen = i
				break
			}
			r -= c
		}

		// Line 3: uniform sample from the chosen set.
		element, ok := e.sets[chosen].Sample(e.rng)
		if !ok {
			// Unreachable: chosen has positive count.
			continue
		}

		// Line 4-5: providers and owner.
		owner := -1
		var providers []int
		for i, s := range e.sets {
			if i == chosen || s.Test(element) {
				providers = append(providers, i)
				if owner < 0 {
					owner = i
				}
			}
		}

		// Line 6-7: delete from non-owner providers.
		for _, i := range providers {
			if i != owner {
				e.sets[i].Delete(element)
			}
		}

		// Line 8-9: emit only when the owner was the sampled set.
		if owner == chosen {
			e.sets[owner].Delete(element)
			if e.Instrument {
				e.AnswerTime += time.Since(start)
			}
			return element, true
		}
		e.Rejections++
		if e.Instrument {
			e.RejectTime += time.Since(start)
		}
	}
}
