package unionenum

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
)

func overlapDB(seed int64, n int) *relation.Database {
	rng := rand.New(rand.NewSource(seed))
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x", "y")
	s := db.MustCreate("S", "y", "z")
	u := db.MustCreate("T", "x", "z")
	for i := 0; i < n; i++ {
		r.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		s.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
		u.MustInsert(relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6)))
	}
	return db
}

// ucqRS is the paper's Example 5.1 union: Q1(x,y,z) :- R(x,y),S(y,z) and
// Q2(x,y,z) :- S(y,z),T(x,z). Their union is enumerable but (provably) has
// no efficient random access.
func ucqRS() *query.UCQ {
	q1 := query.MustCQ("q1", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	q2 := query.MustCQ("q2", []string{"x", "y", "z"},
		query.NewAtom("S", query.V("y"), query.V("z")),
		query.NewAtom("T", query.V("x"), query.V("z")))
	return query.MustUCQ("u", q1, q2)
}

func TestUnionEnumeratesExactlyTheUnion(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		db := overlapDB(seed, 25)
		u := ucqRS()
		e, err := NewFromUCQ(db, u, rand.New(rand.NewSource(seed+100)), reduce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := naive.EvaluateUCQ(db, u)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		var got []relation.Tuple
		for {
			tup, ok := e.Next()
			if !ok {
				break
			}
			k := tup.Key()
			if seen[k] {
				t.Fatalf("seed %d: duplicate %v", seed, tup)
			}
			seen[k] = true
			got = append(got, tup)
		}
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("seed %d: got %d answers, oracle %d", seed, len(got), len(want))
		}
		if _, ok := e.Next(); ok {
			t.Fatal("Next after exhaustion")
		}
	}
}

// TestUnionEveryAnswerRejectedAtMostOnce validates the amortized-constant
// argument: total iterations ≤ 2 × answers.
func TestUnionEveryAnswerRejectedAtMostOnce(t *testing.T) {
	db := overlapDB(42, 40)
	u := ucqRS()
	e, err := NewFromUCQ(db, u, rand.New(rand.NewSource(7)), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	answers := int64(0)
	for {
		_, ok := e.Next()
		if !ok {
			break
		}
		answers++
	}
	if e.Rejections > answers {
		t.Fatalf("rejections %d > answers %d: some element rejected twice", e.Rejections, answers)
	}
}

// TestUnionFirstElementUniform: the first emitted element must be uniform
// over the union.
func TestUnionFirstElementUniform(t *testing.T) {
	db := overlapDB(3, 12)
	u := ucqRS()
	want, _ := naive.EvaluateUCQ(db, u)
	n := len(want)
	if n < 4 {
		t.Skip("instance too small")
	}
	rng := rand.New(rand.NewSource(8))
	trials := 400 * n
	counts := make(map[string]int)
	for i := 0; i < trials; i++ {
		e, err := NewFromUCQ(db, u, rng, reduce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		tup, ok := e.Next()
		if !ok {
			t.Fatal("no first answer")
		}
		counts[tup.Key()]++
	}
	if len(counts) != n {
		t.Fatalf("first answers cover %d of %d", len(counts), n)
	}
	expected := float64(trials) / float64(n)
	for _, c := range counts {
		if math.Abs(float64(c)-expected) > 6*math.Sqrt(expected) {
			t.Fatalf("first-answer count %d, expected ~%.0f", c, expected)
		}
	}
}

// TestUnionPermutationUniformTiny: full-order uniformity on a union with 3
// answers across two overlapping sets.
func TestUnionPermutationUniformTiny(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x")
	s := db.MustCreate("S", "x")
	r.MustInsert(1)
	r.MustInsert(2)
	s.MustInsert(2)
	s.MustInsert(3)
	q1 := query.MustCQ("q1", []string{"x"}, query.NewAtom("R", query.V("x")))
	q2 := query.MustCQ("q2", []string{"x"}, query.NewAtom("S", query.V("x")))
	u := query.MustUCQ("u", q1, q2)
	rng := rand.New(rand.NewSource(11))
	const trials = 30000
	counts := make(map[string]int)
	for i := 0; i < trials; i++ {
		e, err := NewFromUCQ(db, u, rng, reduce.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sig := ""
		for {
			tup, ok := e.Next()
			if !ok {
				break
			}
			sig += tup.Key()
		}
		counts[sig]++
	}
	if len(counts) != 6 {
		t.Fatalf("observed %d orders, want 6", len(counts))
	}
	expected := float64(trials) / 6
	stat := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		stat += d * d / expected
	}
	df := 5.0
	if limit := df + 6*math.Sqrt(2*df); stat > limit {
		t.Fatalf("order chi-square %.1f exceeds %.1f", stat, limit)
	}
}

func TestUnionDisjointNoRejections(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x")
	s := db.MustCreate("S", "x")
	for i := 0; i < 20; i++ {
		r.MustInsert(relation.Value(i))
		s.MustInsert(relation.Value(100 + i))
	}
	q1 := query.MustCQ("q1", []string{"x"}, query.NewAtom("R", query.V("x")))
	q2 := query.MustCQ("q2", []string{"x"}, query.NewAtom("S", query.V("x")))
	u := query.MustUCQ("u", q1, q2)
	e, err := NewFromUCQ(db, u, rand.New(rand.NewSource(2)), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, ok := e.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 40 {
		t.Fatalf("emitted %d, want 40", n)
	}
	if e.Rejections != 0 {
		t.Fatalf("disjoint union had %d rejections", e.Rejections)
	}
}

func TestUnionIdenticalSetsRejectsAboutHalf(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x")
	for i := 0; i < 200; i++ {
		r.MustInsert(relation.Value(i))
	}
	q1 := query.MustCQ("q1", []string{"x"}, query.NewAtom("R", query.V("x")))
	q2 := query.MustCQ("q2", []string{"x"}, query.NewAtom("R", query.V("x")))
	u := query.MustUCQ("u", q1, q2)
	e, err := NewFromUCQ(db, u, rand.New(rand.NewSource(3)), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	for {
		_, ok := e.Next()
		if !ok {
			break
		}
		n++
	}
	if n != 200 {
		t.Fatalf("emitted %d, want 200", n)
	}
	// Expected rejections ≈ half the shared elements reached via non-owner.
	if e.Rejections < 50 || e.Rejections > 150 {
		t.Fatalf("rejections = %d, expected around 100", e.Rejections)
	}
}

func TestUnionInstrumentation(t *testing.T) {
	db := overlapDB(5, 30)
	e, err := NewFromUCQ(db, ucqRS(), rand.New(rand.NewSource(4)), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.Instrument = true
	for {
		if _, ok := e.Next(); !ok {
			break
		}
	}
	if e.AnswerTime <= 0 {
		t.Fatal("AnswerTime not recorded")
	}
	if e.Rejections > 0 && e.RejectTime <= 0 {
		t.Fatal("RejectTime not recorded despite rejections")
	}
}

func TestUnionEmpty(t *testing.T) {
	db := relation.NewDatabase()
	db.MustCreate("R", "x")
	db.MustCreate("S", "x")
	q1 := query.MustCQ("q1", []string{"x"}, query.NewAtom("R", query.V("x")))
	q2 := query.MustCQ("q2", []string{"x"}, query.NewAtom("S", query.V("x")))
	u := query.MustUCQ("u", q1, q2)
	e, err := NewFromUCQ(db, u, rand.New(rand.NewSource(1)), reduce.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Next(); ok {
		t.Fatal("empty union emitted")
	}
	if e.Remaining() != 0 {
		t.Fatal("Remaining != 0")
	}
}
