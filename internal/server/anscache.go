// Generation-keyed hot-probe answer cache.
//
// The serving tier's /access path is already allocation-free, but a hot
// position still pays the full O(log n) probe plus JSON encoding on every
// request. Under the skewed access patterns the paper's "millions of users"
// scenario implies (a few celebrity answers probed constantly), the same
// bytes are rebuilt millions of times. The answer cache stores the exact
// encoded response body — the appendAccessBody output — keyed by
// (query, generation, position), so a hit is one lock-free map lookup and a
// buffered write: no probe, no dictionary resolution, no encoding.
//
// # Invalidation
//
// Correctness rides on two rules, both anchored to the registry's atomic
// generation swap:
//
//   - Keys carry the snapshot generation the body was built from. Every
//     admin mutation that can change answers (load, register, rebuild,
//     compaction) publishes a new generation, so a handler holding the new
//     generation can never match a stale entry — even in the window before
//     the drop-all below runs.
//   - Updatable (dynamic) entries are never cached. POST /v1/{query}/update
//     mutates the handle in place *without* a generation bump, so a
//     generation key cannot fence it; the cache skips CapUpdate entries the
//     same way the coalescer does. TestAnswerCacheUpdateInvalidation pins
//     that a pre-update body is never served post-update.
//
// The publish observer additionally drops the whole cache on every
// generation swap: superseded entries could never be served again (rule
// one), but dropping them immediately returns their bytes to the budget
// instead of waiting for FIFO eviction to push them out.
//
// # Admission
//
// Admission requires a position to miss twice: one-hit wonders — a client
// paging through positions sequentially, or a uniform random scan — never
// displace genuinely hot entries, and the copy + COW map publication below
// is paid only for positions with demonstrated reuse. Every coalesced
// request resolves through the cache first, so the positions the coalescer
// observes merging (concurrent demand = hot) are exactly the ones that
// reach the admission threshold fastest.
//
// # Concurrency
//
// Reads are lock-free: the live map is immutable behind an atomic pointer
// (the copy-on-write idiom the registry snapshot uses), and the struct key
// avoids any per-lookup allocation, keeping cache-enabled hits at zero
// allocations per request. Writers — admission, eviction, invalidation —
// serialize on a mutex and publish a fresh map; with the two-miss admission
// filter those are rare after warmup, so the O(entries) copy amortizes away.
package server

import (
	"sync"
	"sync/atomic"
)

// cacheKey identifies one encoded answer body. The generation is part of
// the key, not just the eviction policy: it is what makes a published
// rebuild invisible to stale entries with no synchronization on the read
// path.
type cacheKey struct {
	query string
	gen   uint64
	j     int64
}

// cacheEntryOverhead charges each entry for its key, map slot and eviction
// bookkeeping, so -answer-cache-bytes bounds the cache's real footprint,
// not just its payload bytes.
const cacheEntryOverhead = 96

// maxSeenTracked bounds the admission filter's memory: when the set of
// once-seen positions outgrows this, the filter resets. A reset only delays
// admission (a hot position re-earns its two misses); it never serves wrong
// bytes.
const maxSeenTracked = 1 << 16

type cacheMap map[cacheKey][]byte

// answerCache is the generation-keyed /access response cache. The zero
// value is unusable; construct with newAnswerCache. A nil *answerCache is
// the disabled state — handlers guard with one nil check.
type answerCache struct {
	maxBytes int64
	live     atomic.Pointer[cacheMap]

	mu    sync.Mutex // serializes admission, eviction, invalidation
	seen  map[cacheKey]struct{}
	order []cacheKey // admission order; FIFO eviction
	bytes int64

	hits          atomic.Int64
	misses        atomic.Int64
	admitted      atomic.Int64
	evicted       atomic.Int64
	invalidations atomic.Int64
}

func newAnswerCache(maxBytes int64) *answerCache {
	c := &answerCache{maxBytes: maxBytes}
	m := cacheMap{}
	c.live.Store(&m)
	return c
}

// get returns the cached body for (query, gen, j), or nil. Lock-free and
// allocation-free; callers must treat the bytes as immutable.
func (c *answerCache) get(query string, gen uint64, j int64) []byte {
	body, ok := (*c.live.Load())[cacheKey{query: query, gen: gen, j: j}]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return body
}

// offer records a miss for (query, gen, j) and admits the body on the
// second observation. body is copied on admission; the caller keeps
// ownership of the slice it passed.
func (c *answerCache) offer(query string, gen uint64, j int64, body []byte) {
	cost := int64(len(body)) + cacheEntryOverhead
	if cost > c.maxBytes {
		return // larger than the whole budget: unadmittable
	}
	k := cacheKey{query: query, gen: gen, j: j}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := *c.live.Load()
	if _, ok := cur[k]; ok {
		return // raced with another admission of the same position
	}
	if c.seen == nil || len(c.seen) >= maxSeenTracked {
		c.seen = make(map[cacheKey]struct{})
	}
	if _, ok := c.seen[k]; !ok {
		c.seen[k] = struct{}{} // first observation: remember, don't admit
		return
	}
	delete(c.seen, k)
	next := make(cacheMap, len(cur)+1)
	for kk, vv := range cur {
		next[kk] = vv
	}
	for c.bytes+cost > c.maxBytes && len(c.order) > 0 {
		ev := c.order[0]
		c.order = c.order[1:]
		if b, ok := next[ev]; ok {
			delete(next, ev)
			c.bytes -= int64(len(b)) + cacheEntryOverhead
			c.evicted.Add(1)
		}
	}
	next[k] = append([]byte(nil), body...)
	c.order = append(c.order, k)
	c.bytes += cost
	c.admitted.Add(1)
	c.live.Store(&next)
}

// invalidate drops every entry and resets the admission filter. Called on
// each registry publish: the generation key already fences stale entries,
// so this is about returning their bytes to the budget promptly.
func (c *answerCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := cacheMap{}
	c.live.Store(&m)
	c.seen = nil
	c.order = nil
	c.bytes = 0
	c.invalidations.Add(1)
}

// answerCacheStats is the scrape-time view for the renum_cache_* families.
type answerCacheStats struct {
	Hits, Misses, Admitted, Evicted, Invalidations int64
	Entries                                        int
	Bytes                                          int64
}

func (c *answerCache) stats() answerCacheStats {
	c.mu.Lock()
	bytes := c.bytes
	c.mu.Unlock()
	return answerCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Admitted:      c.admitted.Load(),
		Evicted:       c.evicted.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       len(*c.live.Load()),
		Bytes:         bytes,
	}
}
