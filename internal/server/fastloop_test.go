package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// startFast serves s with the fast loop on a loopback listener and returns
// the server plus its address. Serve's error is checked at cleanup.
func startFast(t testing.TB, s *Server) (*FastServer, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFastServer(s)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fs.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := fs.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
		}
	})
	return fs, ln.Addr().String()
}

// fastResponse is one parsed response off a fast-loop connection.
type fastResponse struct {
	status      int
	contentType string
	connClose   bool
	body        []byte
}

// readFastResponse parses one framed response (status line, headers,
// Content-Length body) from br.
func readFastResponse(t testing.TB, br *bufio.Reader) fastResponse {
	t.Helper()
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatalf("read status line: %v", err)
	}
	parts := strings.SplitN(strings.TrimRight(line, "\r\n"), " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.1") {
		t.Fatalf("bad status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		t.Fatalf("bad status in %q", line)
	}
	resp := fastResponse{status: status}
	clen := -1
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("read header: %v", err)
		}
		h = strings.TrimRight(h, "\r\n")
		if h == "" {
			break
		}
		k, v, ok := strings.Cut(h, ":")
		if !ok {
			t.Fatalf("bad header %q", h)
		}
		v = strings.TrimSpace(v)
		switch strings.ToLower(k) {
		case "content-length":
			if clen, err = strconv.Atoi(v); err != nil {
				t.Fatalf("bad content-length %q", v)
			}
		case "content-type":
			resp.contentType = v
		case "connection":
			resp.connClose = strings.EqualFold(v, "close")
		}
	}
	if clen < 0 {
		t.Fatal("response missing Content-Length")
	}
	resp.body = make([]byte, clen)
	if _, err := io.ReadFull(br, resp.body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp
}

// fastDo opens a fresh connection, issues one request, and parses the
// response.
func fastDo(t testing.TB, addr, method, target, body, accept string) fastResponse {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var req bytes.Buffer
	fmt.Fprintf(&req, "%s %s HTTP/1.1\r\nHost: test\r\n", method, target)
	if accept != "" {
		fmt.Fprintf(&req, "Accept: %s\r\n", accept)
	}
	if body != "" {
		fmt.Fprintf(&req, "Content-Type: application/json\r\nContent-Length: %d\r\n", len(body))
	}
	req.WriteString("\r\n")
	req.WriteString(body)
	if _, err := c.Write(req.Bytes()); err != nil {
		t.Fatal(err)
	}
	return readFastResponse(t, bufio.NewReader(c))
}

// TestFastLoopMatchesMux pins the fast loop's responses byte-for-byte
// against the mux path for the same requests — success, error, fast-path
// and fallback endpoints alike.
func TestFastLoopMatchesMux(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	e, _ := reg.Lookup("Q")
	n := e.Count()

	cases := []struct {
		name, method, target, body, accept string
	}{
		{"healthz", "GET", "/healthz", "", ""},
		{"count", "GET", "/v1/Q/count", "", ""},
		{"count ucq", "GET", "/v1/U/count", "", ""},
		{"count dynamic", "GET", "/v1/D/count", "", ""},
		{"access first", "GET", "/v1/Q/access?j=0", "", ""},
		{"access last", "GET", fmt.Sprintf("/v1/Q/access?j=%d", n-1), "", ""},
		{"access missing j", "GET", "/v1/Q/access", "", ""},
		{"access out of range", "GET", fmt.Sprintf("/v1/Q/access?j=%d", n), "", ""},
		{"access bad j", "GET", "/v1/Q/access?j=zap", "", ""},
		{"access escaped j", "GET", "/v1/Q/access?j=%30", "", ""},
		{"batch", "GET", "/v1/Q/batch?js=0,1,2", "", ""},
		{"batch spaced", "GET", "/v1/Q/batch?js=0,+1,,2", "", ""},
		{"batch empty", "GET", "/v1/Q/batch?js=", "", ""},
		{"batch bad", "GET", "/v1/Q/batch?js=1,x", "", ""},
		{"batch out of range", "GET", fmt.Sprintf("/v1/Q/batch?js=0,%d", n), "", ""},
		{"batch wire", "GET", "/v1/Q/batch?js=0,1,2", "", wire.ContentType},
		{"page", "GET", "/v1/Q/page?offset=1&limit=2", "", ""},
		{"page defaults", "GET", "/v1/Q/page", "", ""},
		{"page past end", "GET", fmt.Sprintf("/v1/Q/page?offset=%d&limit=3", n+5), "", ""},
		{"page negative", "GET", "/v1/Q/page?offset=-1&limit=2", "", ""},
		{"page wire", "GET", "/v1/Q/page?offset=0&limit=4", "", wire.ContentType},
		{"sample seeded", "GET", "/v1/Q/sample?k=3&seed=42", "", ""},
		{"sample ucq seeded", "GET", "/v1/U/sample?k=2&seed=7", "", ""},
		{"sample bad k", "GET", "/v1/Q/sample?k=-1", "", ""},
		{"unknown query", "GET", "/v1/nope/count", "", ""},
		{"enum next no cursor", "GET", "/v1/Q/enum/next?cursor=bogus&n=1", "", ""},
		{"enum next bad n", "GET", "/v1/Q/enum/next?cursor=bogus&n=0", "", ""},
		// Fallback (mux-served) endpoints over the same socket.
		{"list", "GET", "/v1", "", ""},
		{"meta", "GET", "/v1/Q", "", ""},
		{"unknown path", "GET", "/nope", "", ""},
		{"batch post", "POST", "/v1/Q/batch", `{"js": [0, 2]}`, ""},
		{"batch post bad", "POST", "/v1/Q/batch", `{"js": "zap"}`, ""},
		{"contains post", "POST", "/v1/Q/contains", `{"tuple": ["1", "2", "x"]}`, ""},
		{"update wrong kind", "POST", "/v1/Q/update", `{"op": "insert", "relation": "r", "tuple": ["9", "9"]}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wantBody, wantStatus, wantCT := doRawAccept(s, tc.method, tc.target, tc.body, tc.accept)
			got := fastDo(t, addr, tc.method, tc.target, tc.body, tc.accept)
			if got.status != wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", got.status, wantStatus, got.body)
			}
			if got.contentType != wantCT {
				t.Fatalf("content type = %q, want %q", got.contentType, wantCT)
			}
			if !bytes.Equal(got.body, wantBody) {
				t.Fatalf("body mismatch:\nfast: %q\nmux:  %q", got.body, wantBody)
			}
		})
	}
}

// TestFastLoopKeepAlive drives several requests down one connection.
func TestFastLoopKeepAlive(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	targets := []string{"/v1/Q/access?j=0", "/v1/Q/count", "/healthz", "/v1/Q/batch?js=1,2", "/v1/Q", "/v1/Q/access?j=1"}
	for _, target := range targets {
		fmt.Fprintf(c, "GET %s HTTP/1.1\r\nHost: test\r\n\r\n", target)
		resp := readFastResponse(t, br)
		if resp.status != 200 {
			t.Fatalf("GET %s = %d (%s)", target, resp.status, resp.body)
		}
		if resp.connClose {
			t.Fatalf("GET %s asked to close a keep-alive connection", target)
		}
		want, _, _ := doRawAccept(s, "GET", target, "", "")
		if !bytes.Equal(resp.body, want) {
			t.Fatalf("GET %s body %q, want %q", target, resp.body, want)
		}
	}
}

// TestFastLoopCursorEquivalence drains one cursor through the fast loop and
// a twin cursor through the mux, in both orders, asserting identical draws.
func TestFastLoopCursorEquivalence(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	for _, order := range []string{"enum", "random"} {
		t.Run(order, func(t *testing.T) {
			start := fmt.Sprintf("/v1/Q/enum/start?order=%s&seed=5", order)
			muxCur := do(t, s, "POST", start, "", 200)["cursor"].(string)
			fastStart := fastDo(t, addr, "POST", start, "", "")
			if fastStart.status != 200 {
				t.Fatalf("fast enum/start = %d (%s)", fastStart.status, fastStart.body)
			}
			var fastCur string
			if _, err := fmt.Sscanf(string(fastStart.body), `{"cursor":%q`, &fastCur); err != nil {
				t.Fatalf("parse cursor from %s: %v", fastStart.body, err)
			}
			for i := 0; i < 4; i++ {
				target := "/v1/Q/enum/next?n=2&cursor="
				wantBody, wantStatus, _ := doRawAccept(s, "GET", target+muxCur, "", "")
				got := fastDo(t, addr, "GET", target+fastCur, "", "")
				if got.status != wantStatus {
					t.Fatalf("draw %d: status %d, want %d", i, got.status, wantStatus)
				}
				// Bodies are identical because both cursors were started with
				// the same seed and order over the same static entry.
				if !bytes.Equal(got.body, wantBody) {
					t.Fatalf("draw %d:\nfast: %s\nmux:  %s", i, got.body, wantBody)
				}
			}
		})
	}
}

// TestFastLoopWireDraws checks binary-framed cursor draws over the socket.
func TestFastLoopWireDraws(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	resp := fastDo(t, addr, "POST", "/v1/Q/enum/start?order=enum", "", "")
	var cur string
	if _, err := fmt.Sscanf(string(resp.body), `{"cursor":%q`, &cur); err != nil {
		t.Fatalf("parse cursor: %v", err)
	}
	got := fastDo(t, addr, "GET", "/v1/Q/enum/next?n=3&cursor="+cur, "", wire.ContentType)
	if got.status != 200 || got.contentType != wire.ContentType {
		t.Fatalf("wire draw = %d %q", got.status, got.contentType)
	}
	h, rows, err := wire.Parse(got.body)
	if err != nil {
		t.Fatal(err)
	}
	if h.Arity != 3 || len(rows) != 3 {
		t.Fatalf("arity %d rows %d", h.Arity, len(rows))
	}
}

// TestFastLoopHTTP10Closes verifies an HTTP/1.0 request is served and the
// connection closed after the response.
func TestFastLoopHTTP10Closes(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /v1/Q/count HTTP/1.0\r\nHost: test\r\n\r\n")
	br := bufio.NewReader(c)
	resp := readFastResponse(t, br)
	if resp.status != 200 || !resp.connClose {
		t.Fatalf("HTTP/1.0 response: status %d close %v", resp.status, resp.connClose)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after HTTP/1.0 response: %v", err)
	}
}

// TestFastLoopShutdownDrains: Shutdown returns promptly with an idle
// keep-alive connection open, and new connections are refused after.
func TestFastLoopShutdown(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFastServer(s)
	serveErr := make(chan error, 1)
	go func() { serveErr <- fs.Serve(ln) }()
	addr := ln.Addr().String()
	// An idle keep-alive connection must not wedge Shutdown.
	resp := fastDo(t, addr, "GET", "/healthz", "", "")
	if resp.status != 200 {
		t.Fatalf("healthz = %d", resp.status)
	}
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := fs.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v", err)
	}
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Shutdown")
	}
}

// TestFastLoopOversizedRequestLine: a request line beyond the connection
// buffer is rejected with 431, not an unbounded read.
func TestFastLoopOversizedRequestLine(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "GET /%s HTTP/1.1\r\n", strings.Repeat("a", fastBufSize+10))
	resp := readFastResponse(t, bufio.NewReader(c))
	if resp.status != http.StatusRequestHeaderFieldsTooLarge {
		t.Fatalf("status = %d, want 431", resp.status)
	}
}

// hammerFast issues count identical GETs down one connection with a
// zero-allocation client loop and returns the average server+client heap
// allocations per request.
func hammerFast(t testing.TB, addr, target string, count int) float64 {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := []byte("GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n")
	br := bufio.NewReaderSize(c, 64<<10)
	roundTrip := func() {
		if _, err := c.Write(req); err != nil {
			t.Fatal(err)
		}
		clen := -1
		for first := true; ; first = false {
			line, err := br.ReadSlice('\n')
			if err != nil {
				t.Fatal(err)
			}
			if len(line) <= 2 {
				break
			}
			if first {
				if !bytes.HasPrefix(line, []byte("HTTP/1.1 200")) {
					t.Fatalf("response %q", line)
				}
				continue
			}
			if v, ok := bytes.CutPrefix(line, []byte("Content-Length: ")); ok {
				clen = 0
				for _, d := range v[:len(v)-2] {
					clen = clen*10 + int(d-'0')
				}
			}
		}
		if clen < 0 {
			t.Fatal("no content-length")
		}
		if _, err := br.Discard(clen); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up the connection scratch and pools before measuring.
	for i := 0; i < 64; i++ {
		roundTrip()
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < count; i++ {
		roundTrip()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(count)
}

// TestFastLoopSteadyStateAllocs pins the zero-allocation claim: steady-state
// probe requests through the fast loop cost (almost) no heap allocations —
// the measured number includes the test's client loop and any background
// runtime noise, so the bound is a small constant rather than exactly zero.
func TestFastLoopSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement is timing sensitive")
	}
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	for _, tc := range []struct {
		name, target string
		limit        float64
	}{
		{"access", "/v1/Q/access?j=1", 1.0},
		{"count", "/v1/Q/count", 1.0},
		{"batch", "/v1/Q/batch?js=0,1,2,3", 1.0},
		{"page", "/v1/Q/page?offset=0&limit=4", 1.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := hammerFast(t, addr, tc.target, 3000)
			t.Logf("%s: %.3f allocs/req", tc.name, got)
			if got > tc.limit {
				t.Fatalf("%s: %.3f allocs/req, want <= %.1f", tc.name, got, tc.limit)
			}
		})
	}
}
