package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastDoHeader is fastDo with one extra raw header line.
func fastDoHeader(t testing.TB, addr, method, target, header string) fastResponse {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := fmt.Sprintf("%s %s HTTP/1.1\r\nHost: test\r\n%s\r\n\r\n", method, target, header)
	if _, err := c.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	return readFastResponse(t, bufio.NewReader(c))
}

// tracesDoc decodes /debug/traces.
type tracesDoc struct {
	Traces  []TraceView `json:"traces"`
	Dropped uint64      `json:"dropped"`
}

func getTraces(t testing.TB, s *Server, query string) tracesDoc {
	t.Helper()
	raw, status := doRaw(s, "GET", "/debug/traces"+query, "")
	if status != 200 {
		t.Fatalf("GET /debug/traces = %d: %s", status, raw)
	}
	var doc tracesDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("bad traces JSON %q: %v", raw, err)
	}
	return doc
}

// doTraced issues one mux request carrying an X-Request-Id.
func doTraced(t testing.TB, s *Server, id, method, url string) int {
	t.Helper()
	req := httptest.NewRequest(method, url, nil)
	req.Header.Set("X-Request-Id", id)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Code
}

// TestTraceMux: a request with X-Request-Id is findable in /debug/traces
// with its endpoint, query attribution, status, and probe span.
func TestTraceMux(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{Window: time.Millisecond}, Config{})
	if code := doTraced(t, s, "req-abc", "GET", "/v1/Q/access?j=0"); code != 200 {
		t.Fatalf("traced access = %d", code)
	}
	if code := doTraced(t, s, "req-err", "GET", "/v1/Q/access?j=999999"); code != 400 {
		t.Fatalf("traced bad access = %d", code)
	}

	doc := getTraces(t, s, "?id=req-abc")
	if len(doc.Traces) != 1 {
		t.Fatalf("traces for req-abc = %d, want 1", len(doc.Traces))
	}
	tr := doc.Traces[0]
	if tr.Endpoint != "access" || tr.Query != "Q" || tr.Status != 200 {
		t.Fatalf("trace = %+v", tr)
	}
	// The coalescer is on, so the access span is the coalescer round.
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "coalesce" {
		t.Fatalf("spans = %+v, want a coalesce span", tr.Spans)
	}

	errDoc := getTraces(t, s, "?id=req-err")
	if len(errDoc.Traces) != 1 || errDoc.Traces[0].Status != 400 {
		t.Fatalf("error trace = %+v", errDoc.Traces)
	}
	// No probe ran for the out-of-range j, so no spans were recorded.
	if len(errDoc.Traces[0].Spans) != 0 {
		t.Fatalf("error trace spans = %+v, want none", errDoc.Traces[0].Spans)
	}

	// Untraced requests never enter the ring.
	do(t, s, "GET", "/v1/Q/count", "", 200)
	all := getTraces(t, s, "")
	for _, tv := range all.Traces {
		if tv.Endpoint == "count" {
			t.Fatalf("untraced count request was recorded: %+v", tv)
		}
	}
}

// TestTraceDirectProbeSpan: without a coalescer the access span is the raw
// probe.
func TestTraceDirectProbeSpan(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	doTraced(t, s, "direct-1", "GET", "/v1/Q/access?j=0")
	doc := getTraces(t, s, "?id=direct-1")
	if len(doc.Traces) != 1 || len(doc.Traces[0].Spans) == 0 || doc.Traces[0].Spans[0].Name != "probe" {
		t.Fatalf("trace = %+v, want a probe span", doc.Traces)
	}
}

// TestTraceFastLoop: the fast loop records the same trace shape, reachable
// through the mux's /debug/traces on the same server.
func TestTraceFastLoop(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)

	fr := fastDoHeader(t, addr, "GET", "/v1/Q/access?j=0", "X-Request-Id: fast-42")
	if fr.status != 200 {
		t.Fatalf("fast traced access = %d (%s)", fr.status, fr.body)
	}
	doc := getTraces(t, s, "?id=fast-42")
	if len(doc.Traces) != 1 {
		t.Fatalf("traces for fast-42 = %d, want 1", len(doc.Traces))
	}
	tr := doc.Traces[0]
	if tr.Endpoint != "access" || tr.Query != "Q" || tr.Status != 200 {
		t.Fatalf("fast trace = %+v", tr)
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "probe" {
		t.Fatalf("fast spans = %+v, want a probe span", tr.Spans)
	}

	// Untraced fast requests stay out of the ring.
	if fr := fastDo(t, addr, "GET", "/v1/Q/count", "", ""); fr.status != 200 {
		t.Fatalf("fast count = %d", fr.status)
	}
	for _, tv := range getTraces(t, s, "").Traces {
		if tv.Endpoint == "count" {
			t.Fatalf("untraced fast request was recorded: %+v", tv)
		}
	}
}

// TestTraceRingBounded: the ring evicts oldest-first at capacity and counts
// the drops.
func TestTraceRingBounded(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{TraceBuffer: 4})
	for i := 0; i < 10; i++ {
		doTraced(t, s, "ring-"+string(rune('a'+i)), "GET", "/v1/Q/count")
	}
	doc := getTraces(t, s, "")
	if len(doc.Traces) != 4 {
		t.Fatalf("ring holds %d traces, want 4", len(doc.Traces))
	}
	if doc.Dropped != 6 {
		t.Fatalf("dropped = %d, want 6", doc.Dropped)
	}
	// Newest first: the last request leads.
	if doc.Traces[0].ID != "ring-j" {
		t.Fatalf("newest trace = %q, want ring-j", doc.Traces[0].ID)
	}
	// ?n= bounds the page.
	if got := len(getTraces(t, s, "?n=2").Traces); got != 2 {
		t.Fatalf("?n=2 returned %d traces", got)
	}
}

// lockedBuf makes a bytes.Buffer safe for the fast loop's connection
// goroutine to write while the test reads.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func (b *lockedBuf) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf.Reset()
}

// waitLine polls until the buffer holds a complete line (the fast loop logs
// after the response bytes are already on the wire).
func (b *lockedBuf) waitLine(t testing.TB) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if s := b.String(); strings.Contains(s, "\n") {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no slow-log line appeared")
	return ""
}

// TestSlowLog: requests over the threshold produce one structured line with
// endpoint, duration and request id; fast-loop requests log the same way.
func TestSlowLog(t *testing.T) {
	var buf lockedBuf
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, _ := newTestServer(t, CoalesceConfig{}, Config{SlowLog: time.Nanosecond, Logger: logger})

	doTraced(t, s, "slow-1", "GET", "/v1/Q/access?j=0")
	line := buf.String()
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow log line is not JSON: %q", line)
	}
	if rec["msg"] != "slow request" || rec["endpoint"] != "access" || rec["query"] != "Q" || rec["request_id"] != "slow-1" {
		t.Fatalf("slow log = %v", rec)
	}
	if _, ok := rec["duration_us"]; !ok {
		t.Fatalf("slow log missing duration_us: %v", rec)
	}

	buf.Reset()
	_, addr := startFast(t, s)
	if fr := fastDoHeader(t, addr, "GET", "/v1/Q/count", "X-Request-Id: slow-2"); fr.status != 200 {
		t.Fatalf("fast count = %d", fr.status)
	}
	fline := buf.waitLine(t)
	var frec map[string]any
	if err := json.Unmarshal([]byte(fline), &frec); err != nil {
		t.Fatalf("fast slow log line is not JSON: %q", fline)
	}
	if frec["msg"] != "slow request" || frec["endpoint"] != "count" || frec["query"] != "Q" || frec["request_id"] != "slow-2" {
		t.Fatalf("fast slow log = %v", frec)
	}

	// Threshold off: nothing is logged.
	var quiet bytes.Buffer
	s2, _ := newTestServer(t, CoalesceConfig{}, Config{Logger: slog.New(slog.NewJSONHandler(&quiet, nil))})
	do(t, s2, "GET", "/v1/Q/count", "", 200)
	if quiet.Len() != 0 {
		t.Fatalf("SlowLog=0 logged: %q", quiet.String())
	}
}
