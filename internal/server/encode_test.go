package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/wire"
)

// hostileStrings is the escaping corpus: everything encoding/json treats
// specially, plus plain values for the common path.
var hostileStrings = []string{
	"",
	"plain",
	"with space",
	`quotes " and \ backslash`,
	"<html> & </html>",
	"newline\nreturn\rtab\t",
	"bell\x07 backspace\x08 formfeed\x0c nul\x00",
	"unicode: ünïcødé 世界 🚀",
	"line sep \u2028 para sep \u2029",
	"invalid utf8: \xff\xfe\x80",
	"truncated rune: \xe4\xb8",
	"mixed \x01<&>\u2028\xff end",
}

func TestAppendJSONStringMatchesEncodingJSON(t *testing.T) {
	check := func(s string) {
		t.Helper()
		got := appendJSONString(nil, s)
		// json.Marshal escapes HTML by default, exactly like the Encoder the
		// handlers used to run.
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("Marshal(%q): %v", s, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSONString(%q):\n got %s\nwant %s", s, got, want)
		}
	}
	for _, s := range hostileStrings {
		check(s)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(24))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		check(string(b))
	}
}

// TestBodyBuildersMatchEncodingJSON pins each response-shape builder against
// the exact map[string]any + json.Encoder pair the handlers used before.
func TestBodyBuildersMatchEncodingJSON(t *testing.T) {
	encodeOld := func(v any) []byte {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	db := renum.NewDatabase()
	dict := db.Dict()
	intern := func(cells ...string) renum.Tuple {
		tu := make(renum.Tuple, len(cells))
		for i, c := range cells {
			tu[i] = dict.Intern(c)
		}
		return tu
	}
	strs := func(tu renum.Tuple) []string {
		out := make([]string, len(tu))
		for i, v := range tu {
			out[i] = dict.String(v)
		}
		return out
	}
	t1 := intern("a", `esc"aped`, "<&>")
	t2 := intern("", "x\n", "\xff")
	ts := []renum.Tuple{t1, t2}
	tss := [][]string{strs(t1), strs(t2)}

	cases := []struct {
		name string
		got  []byte
		old  any
	}{
		{"healthz", healthzBody, map[string]any{"ok": true}},
		{"closed", closedBody, map[string]any{"closed": true}},
		{"count", appendCountBody(nil, 42), map[string]any{"count": int64(42)}},
		{"access", appendAccessBody(nil, dict, 7, t1), map[string]any{"j": int64(7), "answer": strs(t1)}},
		{"answers", appendAnswersBody(nil, dict, ts), map[string]any{"answers": tss}},
		{"answers empty", appendAnswersBody(nil, dict, nil), map[string]any{"answers": [][]string{}}},
		{"answers offset", closeAnswersOffsetBody(appendAnswersRow(openAnswersBody(nil), dict, true, t1), 3),
			map[string]any{"offset": int64(3), "answers": [][]string{strs(t1)}}},
		{"answers done", closeAnswersDoneBody(openAnswersBody(nil), true),
			map[string]any{"answers": [][]string{}, "done": true}},
		{"answers with_replacement", closeAnswersWithReplacementBody(appendAnswersRow(openAnswersBody(nil), dict, true, t2), false),
			map[string]any{"answers": [][]string{strs(t2)}, "with_replacement": false}},
		{"contains true", appendContainsBody(nil, true), map[string]any{"contains": true}},
		{"contains false", appendContainsBody(nil, false), map[string]any{"contains": false}},
		{"inverted found", appendInvertedBody(nil, 9, true), map[string]any{"j": int64(9), "found": true}},
		{"inverted missing", appendInvertedBody(nil, 0, false), map[string]any{"found": false}},
		{"changed", appendChangedBody(nil, true, 5), map[string]any{"changed": true, "count": int64(5)}},
		{"cursor", appendCursorBody(nil, `id"with<quote`, 300000), map[string]any{"cursor": `id"with<quote`, "ttl_ms": int64(300000)}},
		{"error", appendErrorBody(nil, `msg "quoted" & <tagged>`), map[string]string{"error": `msg "quoted" & <tagged>`}},
	}
	for _, tc := range cases {
		want := encodeOld(tc.old)
		if !bytes.Equal(tc.got, want) {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, tc.got, want)
		}
	}
}

// doRawAccept is doRaw with an Accept header.
func doRawAccept(s *Server, method, url, body, accept string) ([]byte, int, string) {
	req := httptest.NewRequest(method, url, strings.NewReader(body))
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Body.Bytes(), rec.Code, rec.Header().Get("Content-Type")
}

// answersOf decodes the "answers" rows of a JSON response.
func answersOf(t *testing.T, raw []byte) [][]string {
	t.Helper()
	var m struct {
		Answers [][]string `json:"answers"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	return m.Answers
}

func sameRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestWireGoldenEquivalence is the binary-format golden suite: for /batch,
// /page and both cursor orders, the wire response must decode to exactly the
// tuples the JSON path reports.
func TestWireGoldenEquivalence(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("Q")
	n := e.Count()
	if n < 3 {
		t.Fatalf("fixture too small: %d", n)
	}

	checkPair := func(name, jsonURL, wireURL string, wantAux uint64) wire.Header {
		t.Helper()
		rawJSON, code, ct := doRawAccept(s, "GET", jsonURL, "", "")
		if code != 200 || ct != "application/json" {
			t.Fatalf("%s JSON: code %d ct %q body %s", name, code, ct, rawJSON)
		}
		rawWire, code, ct := doRawAccept(s, "GET", wireURL, "", wire.ContentType)
		if code != 200 || ct != wire.ContentType {
			t.Fatalf("%s wire: code %d ct %q", name, code, ct)
		}
		h, rows, err := wire.Parse(rawWire)
		if err != nil {
			t.Fatalf("%s wire parse: %v", name, err)
		}
		if h.Aux != wantAux {
			t.Errorf("%s aux = %d, want %d", name, h.Aux, wantAux)
		}
		if jsonRows := answersOf(t, rawJSON); !sameRows(jsonRows, rows) {
			t.Errorf("%s rows diverge:\n json %v\n wire %v", name, jsonRows, rows)
		}
		if int(h.Arity) != len(e.Head()) {
			t.Errorf("%s arity = %d, want %d", name, h.Arity, len(e.Head()))
		}
		return h
	}

	checkPair("batch", "/v1/Q/batch?js=0,2,1,0", "/v1/Q/batch?js=0,2,1,0", 0)
	checkPair("batch empty", "/v1/Q/batch?js=", "/v1/Q/batch?js=", 0)
	checkPair("page", "/v1/Q/page?offset=1&limit=2", "/v1/Q/page?offset=1&limit=2", 1)
	checkPair("page tail", fmt.Sprintf("/v1/Q/page?offset=%d&limit=10", n-1), fmt.Sprintf("/v1/Q/page?offset=%d&limit=10", n-1), uint64(n-1))

	// Cursor draws, both orders: two cursors (one per format) walk the same
	// deterministic sequence — order=enum is access order, order=random with
	// a pinned seed is one fixed permutation.
	for _, order := range []string{"enum", "random"} {
		start := func() string {
			m := do(t, s, "POST", "/v1/Q/enum/start?order="+order+"&seed=11", "", 200)
			return m["cursor"].(string)
		}
		jsonCur, wireCur := start(), start()
		for draw := 0; ; draw++ {
			rawJSON, code, _ := doRawAccept(s, "GET", "/v1/Q/enum/next?cursor="+jsonCur+"&n=2", "", "")
			if code != 200 {
				t.Fatalf("order=%s draw %d JSON code %d: %s", order, draw, code, rawJSON)
			}
			rawWire, code, ct := doRawAccept(s, "GET", "/v1/Q/enum/next?cursor="+wireCur+"&n=2", "", wire.ContentType)
			if code != 200 || ct != wire.ContentType {
				t.Fatalf("order=%s draw %d wire code %d ct %q", order, draw, code, ct)
			}
			h, rows, err := wire.Parse(rawWire)
			if err != nil {
				t.Fatalf("order=%s draw %d wire parse: %v", order, draw, err)
			}
			var jm struct {
				Answers [][]string `json:"answers"`
				Done    bool       `json:"done"`
			}
			if err := json.Unmarshal(rawJSON, &jm); err != nil {
				t.Fatal(err)
			}
			if !sameRows(jm.Answers, rows) {
				t.Errorf("order=%s draw %d rows diverge:\n json %v\n wire %v", order, draw, jm.Answers, rows)
			}
			if h.Done() != jm.Done {
				t.Errorf("order=%s draw %d done: json %v wire %v", order, draw, jm.Done, h.Done())
			}
			if jm.Done {
				break
			}
			if draw > int(n) {
				t.Fatalf("order=%s cursor never finished", order)
			}
		}
	}
}

// TestResponsesByteIdenticalToOldEncoder replays the old handlers' exact
// map[string]any + json.Encoder rendering for live requests and compares
// bytes, pinning the "byte-identical to pre-PR responses" contract
// end-to-end (success and error paths).
func TestResponsesByteIdenticalToOldEncoder(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("Q")
	n := e.Count()
	render := func(tu renum.Tuple) []string { return s.renderTuple(tu) }
	oldEncode := func(v any) []byte {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(v); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	probe := func(j int64) renum.Tuple {
		tu, err := e.H.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		return tu
	}
	renderAll := func(js ...int64) [][]string {
		out := make([][]string, 0, len(js))
		for _, j := range js {
			out = append(out, render(probe(j)))
		}
		return out
	}

	cases := []struct {
		name   string
		method string
		url    string
		body   string
		status int
		old    any
	}{
		{"healthz", "GET", "/healthz", "", 200, map[string]any{"ok": true}},
		{"count", "GET", "/v1/Q/count", "", 200, map[string]any{"count": n}},
		{"access", "GET", "/v1/Q/access?j=0", "", 200, map[string]any{"j": int64(0), "answer": render(probe(0))}},
		{"access last", "GET", fmt.Sprintf("/v1/Q/access?j=%d", n-1), "", 200,
			map[string]any{"j": n - 1, "answer": render(probe(n - 1))}},
		{"batch", "GET", "/v1/Q/batch?js=0,2,0", "", 200, map[string]any{"answers": renderAll(0, 2, 0)}},
		{"batch empty", "GET", "/v1/Q/batch?js=", "", 200, map[string]any{"answers": [][]string{}}},
		{"batch post", "POST", "/v1/Q/batch", `{"js":[1,0]}`, 200, map[string]any{"answers": renderAll(1, 0)}},
		{"page", "GET", "/v1/Q/page?offset=1&limit=2", "", 200,
			map[string]any{"offset": int64(1), "answers": renderAll(1, 2)}},
		{"page past end", "GET", fmt.Sprintf("/v1/Q/page?offset=%d&limit=2", n+5), "", 200,
			map[string]any{"offset": n + 5, "answers": [][]string{}}},
		{"contains", "POST", "/v1/Q/contains", `{"tuple":["1","2","x"]}`, 200, map[string]any{"contains": true}},
		{"inverted", "POST", "/v1/Q/inverted", `{"tuple":["1","2","x"]}`, 200, map[string]any{"j": int64(0), "found": true}},
		{"inverted miss", "POST", "/v1/Q/inverted", `{"tuple":["9","9","x"]}`, 200, map[string]any{"found": false}},
		{"access out of range", "GET", "/v1/Q/access?j=99", "", 400,
			map[string]string{"error": fmt.Sprintf("j=99 out of range [0, %d)", n)}},
		{"bad js", "GET", "/v1/Q/batch?js=zap", "", 400,
			map[string]string{"error": `js: strconv.ParseInt: parsing "zap": invalid syntax`}},
		{"no cursor", "GET", "/v1/Q/enum/next?cursor=nope", "", 404,
			map[string]string{"error": ErrNoCursor.Error()}},
	}
	for _, tc := range cases {
		raw, status := doRaw(s, tc.method, tc.url, tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (body %s)", tc.name, status, tc.status, raw)
			continue
		}
		if want := oldEncode(tc.old); !bytes.Equal(raw, want) {
			t.Errorf("%s:\n got %q\nwant %q", tc.name, raw, want)
		}
	}
}
