package server

import (
	"sync"
	"sync/atomic"
	"time"

	"repro"
)

// coalescer merges concurrent single-position access requests into one
// AccessBatch call. The first request of a round opens a window; requests
// arriving while it is open join the round, and when the window elapses (or
// the round reaches maxBatch) one batch probe answers all of them. The
// positions keep their identity — request i receives exactly the tuple that
// a direct Access(j_i) would return (AccessBatch ≡ Access is a pinned
// library property), so coalesced and uncoalesced responses are
// byte-identical; only the probe fan-out cost is amortized.
//
// Positions must be validated against Count before Do is called: the
// underlying AccessBatch fails the whole batch on one out-of-range
// position, and an unvalidated straggler would poison its round-mates.
type coalescer struct {
	window   time.Duration
	maxBatch int
	batch    func(js []int64) ([]renum.Tuple, error)

	mu      sync.Mutex
	pending []coalWaiter
	round   uint64 // increments per flush; lets a timer detect a stale round

	// Counters, exported via /metrics: rounds is the number of AccessBatch
	// calls issued, served the number of requests answered through them.
	rounds atomic.Int64
	served atomic.Int64
}

type coalWaiter struct {
	j  int64
	ch chan coalResult
}

type coalResult struct {
	t   renum.Tuple
	err error
}

func newCoalescer(cfg CoalesceConfig, batch func([]int64) ([]renum.Tuple, error)) *coalescer {
	mb := cfg.MaxBatch
	if mb <= 0 {
		mb = 64
	}
	return &coalescer{window: cfg.Window, maxBatch: mb, batch: batch}
}

// Do answers Access(j) through the current round, blocking until the round
// flushes.
func (c *coalescer) Do(j int64) (renum.Tuple, error) {
	ch := make(chan coalResult, 1)
	c.mu.Lock()
	c.pending = append(c.pending, coalWaiter{j: j, ch: ch})
	if len(c.pending) >= c.maxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.flush(batch)
	} else {
		if len(c.pending) == 1 {
			round := c.round
			time.AfterFunc(c.window, func() { c.flushRound(round) })
		}
		c.mu.Unlock()
	}
	res := <-ch
	return res.t, res.err
}

// flushRound flushes the pending round if it is still the one the timer was
// armed for (a maxBatch flush may have raced ahead and already served it).
func (c *coalescer) flushRound(round uint64) {
	c.mu.Lock()
	if c.round != round || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.flush(batch)
}

func (c *coalescer) takeLocked() []coalWaiter {
	batch := c.pending
	c.pending = nil
	c.round++
	return batch
}

// flush issues one AccessBatch for the round and distributes the answers.
func (c *coalescer) flush(batch []coalWaiter) {
	js := make([]int64, len(batch))
	for i, w := range batch {
		js[i] = w.j
	}
	ts, err := c.batch(js)
	c.rounds.Add(1)
	c.served.Add(int64(len(batch)))
	for i, w := range batch {
		if err != nil {
			w.ch <- coalResult{err: err}
			continue
		}
		w.ch <- coalResult{t: ts[i]}
	}
}

// Stats reports lifetime round and served-request counts.
func (c *coalescer) Stats() (rounds, served int64) {
	return c.rounds.Load(), c.served.Load()
}
