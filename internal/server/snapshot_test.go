package server

import (
	"fmt"
	"strings"
	"testing"

	"repro"
	"repro/internal/load"
)

// saveAndReboot saves the server's current generation into dir and boots a
// second server from the newest snapshot there, returning it with its
// catalog held open for the test's lifetime.
func saveAndReboot(t *testing.T, s *Server, dir string, cfg Config) *Server {
	t.Helper()
	m := do(t, s, "POST", "/admin/save", "", 200)
	path, _ := m["saved"].(string)
	if path == "" {
		t.Fatalf("save response = %v", m)
	}
	latest, _, ok, err := load.LatestSnapshot(dir)
	if err != nil || !ok || latest != path {
		t.Fatalf("LatestSnapshot = (%q, %v, %v), saved %q", latest, ok, err, path)
	}
	cat, err := renum.OpenSnapshot(latest)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	reg, err := NewRegistryFromCatalog(cat, CoalesceConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(reg, cfg)
	t.Cleanup(s2.Close)
	return s2
}

// TestAdminSaveAndBootFromSnapshot pins the daemon's restart contract: the
// probe surface of a server booted from a saved snapshot is byte-identical
// to the server that saved it — count, every access position, batches,
// cursors — including dynamic entries, which persist their base contents
// and come back updatable.
func TestAdminSaveAndBootFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotDir: dir}
	s1, _ := newTestServer(t, CoalesceConfig{}, cfg)

	m := do(t, s1, "POST", "/admin/save", "", 200)
	if got := fmt.Sprint(m["skipped"]); got != "[]" {
		t.Fatalf("skipped = %v, want none (dynamic entries snapshot now)", got)
	}

	s2 := saveAndReboot(t, s1, dir, cfg)

	// The dynamic entry survives the reboot, position for position, and is
	// still updatable afterwards.
	d1 := do(t, s1, "GET", "/v1/D/count", "", 200)
	d2 := do(t, s2, "GET", "/v1/D/count", "", 200)
	if d1["count"] != d2["count"] {
		t.Fatalf("D count: %v vs %v", d1["count"], d2["count"])
	}
	for j := int64(0); j < int64(d1["count"].(float64)); j++ {
		url := fmt.Sprintf("/v1/D/access?j=%d", j)
		a1, st1 := doRaw(s1, "GET", url, "")
		a2, st2 := doRaw(s2, "GET", url, "")
		if st1 != 200 || st2 != 200 || string(a1) != string(a2) {
			t.Fatalf("D access j=%d: %d %s vs %d %s", j, st1, a1, st2, a2)
		}
	}
	upd := do(t, s2, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`, 200)
	if upd["changed"] != true {
		t.Fatalf("restored D rejects updates: %v", upd)
	}

	for _, name := range []string{"Q", "U"} {
		c1 := do(t, s1, "GET", "/v1/"+name+"/count", "", 200)
		c2 := do(t, s2, "GET", "/v1/"+name+"/count", "", 200)
		if c1["count"] != c2["count"] {
			t.Fatalf("%s count: %v vs %v", name, c1["count"], c2["count"])
		}
		n := int64(c1["count"].(float64))
		for j := int64(0); j < n; j++ {
			url := fmt.Sprintf("/v1/%s/access?j=%d", name, j)
			a1, st1 := doRaw(s1, "GET", url, "")
			a2, st2 := doRaw(s2, "GET", url, "")
			if st1 != 200 || st2 != 200 || string(a1) != string(a2) {
				t.Fatalf("%s access j=%d: %d %s vs %d %s", name, j, st1, a1, st2, a2)
			}
		}
		b1, _ := doRaw(s1, "GET", "/v1/"+name+"/batch?js=0,2,1,0", "")
		b2, _ := doRaw(s2, "GET", "/v1/"+name+"/batch?js=0,2,1,0", "")
		if string(b1) != string(b2) {
			t.Fatalf("%s batch: %s vs %s", name, b1, b2)
		}
		sm1, _ := doRaw(s1, "GET", "/v1/"+name+"/sample?k=3&seed=5", "")
		sm2, _ := doRaw(s2, "GET", "/v1/"+name+"/sample?k=3&seed=5", "")
		if string(sm1) != string(sm2) {
			t.Fatalf("%s sample: %s vs %s", name, sm1, sm2)
		}
	}

	// Cursor sessions over the restored entry drain the same sequence.
	c1 := do(t, s1, "POST", "/v1/Q/enum/start?order=enum", "", 200)
	c2 := do(t, s2, "POST", "/v1/Q/enum/start?order=enum", "", 200)
	n1, _ := doRaw(s1, "GET", "/v1/Q/enum/next?cursor="+c1["cursor"].(string)+"&n=4", "")
	n2, _ := doRaw(s2, "GET", "/v1/Q/enum/next?cursor="+c2["cursor"].(string)+"&n=4", "")
	if string(n1) != string(n2) {
		t.Fatalf("cursor draw: %s vs %s", n1, n2)
	}

	// Contains parses through the restored dictionary (lazy reverse map).
	ct1, _ := doRaw(s1, "POST", "/v1/Q/contains", `{"tuple":["1","2","x"]}`)
	ct2, _ := doRaw(s2, "POST", "/v1/Q/contains", `{"tuple":["1","2","x"]}`)
	if string(ct1) != string(ct2) {
		t.Fatalf("contains: %s vs %s", ct1, ct2)
	}
}

// TestSnapshotGenerationsPersistMonotonically: generations keep counting
// across save/boot cycles — a rebooted daemon's first publish supersedes
// every generation the previous process saved.
func TestSnapshotGenerationsPersistMonotonically(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotDir: dir}
	s1, _ := newTestServer(t, CoalesceConfig{}, cfg)

	g1 := uint64(do(t, s1, "GET", "/v1", "", 200)["generation"].(float64))
	s2 := saveAndReboot(t, s1, dir, cfg)
	g2 := uint64(do(t, s2, "GET", "/v1", "", 200)["generation"].(float64))
	if g2 != g1 {
		t.Fatalf("rebooted generation = %d, saved %d", g2, g1)
	}

	// An admin write on the rebooted server advances past the restored
	// generation, and a second save lands under the new number.
	do(t, s2, "POST", "/admin/load", `{"name":"extra","csv":"a,b\n9,9\n"}`, 200)
	g3 := uint64(do(t, s2, "GET", "/v1", "", 200)["generation"].(float64))
	if g3 != g1+1 {
		t.Fatalf("post-write generation = %d, want %d", g3, g1+1)
	}
	do(t, s2, "POST", "/admin/save", "", 200)
	latest, gen, ok, err := load.LatestSnapshot(dir)
	if err != nil || !ok || gen != g3 {
		t.Fatalf("LatestSnapshot after second save = (%q, %d, %v, %v), want gen %d", latest, gen, ok, err, g3)
	}
}

// TestRebootedServerRebuildsAndUpdates: a snapshot-booted registry is not a
// dead end — new tables load beside the frozen snapshot relations, and
// Rebuild recompiles the restored entries against the refreshed database
// (reading, never writing, the mapped columns).
func TestRebootedServerRebuildsAndUpdates(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{SnapshotDir: dir}
	s1, _ := newTestServer(t, CoalesceConfig{}, cfg)
	s2 := saveAndReboot(t, s1, dir, cfg)

	before := do(t, s2, "GET", "/v1/Q/count", "", 200)["count"]

	// Replace r with a superset (the original rows plus one new join row),
	// rebuild, and the count must grow.
	newR := rCSV + "9,9\n"
	do(t, s2, "POST", "/admin/load", fmt.Sprintf(`{"name":"r","csv":%q}`, newR), 200)
	do(t, s2, "POST", "/admin/load", `{"name":"s","csv":"`+strings.ReplaceAll(sCSV, "\n", `\n`)+`9,z\n"}`, 200)
	do(t, s2, "POST", "/admin/rebuild", "", 200)

	after := do(t, s2, "GET", "/v1/Q/count", "", 200)["count"]
	if after.(float64) <= before.(float64) {
		t.Fatalf("rebuild after reboot: count %v -> %v, want growth", before, after)
	}

	// And the rebuilt (heap) entries can be saved again.
	do(t, s2, "POST", "/admin/save", "", 200)
}

// TestAdminSaveWithoutDirIs400 pins the diagnostic when saving is not
// configured.
func TestAdminSaveWithoutDirIs400(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	raw, status := doRaw(s, "POST", "/admin/save", "")
	if status != 400 || !strings.Contains(string(raw), "snapshot-dir") {
		t.Fatalf("save without dir = %d %s", status, raw)
	}
}
