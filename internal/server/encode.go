package server

import (
	"context"
	"net/http"
	"repro"
	"repro/internal/jsonx"
	"repro/internal/wire"
	"strconv"
	"sync"
)

// This file is the hand-rolled encoder tier: every hot probe response is
// appended into a pooled buffer by a shape-specific builder instead of going
// through encoding/json's reflection walk. The output is byte-identical to
// what `json.NewEncoder(w).Encode(map[string]any{...})` produced before —
// same alphabetical key order, same escaping table (HTML-escaped by default,
// like the Encoder), same trailing newline — which the equivalence tests in
// encode_test.go pin against encoding/json itself. Cold, reflection-shaped
// endpoints (meta, list, metrics, admin) stay on writeJSON: their cost is
// irrelevant and their payloads change shape with the registry.

// enc is one request's encoder state: the response buffer plus probe scratch
// (a tuple row for AccessInto, a position slice for batch parsing), pooled so
// a steady-state request allocates nothing. The fast HTTP loop owns one per
// connection; mux handlers borrow from the pool per request.
type enc struct {
	buf []byte
	row renum.Tuple
	js  []int64
}

// Retention caps: a pathological response (a 64k-position batch) must not pin
// megabytes in the pool forever.
const (
	maxRetainedBuf = 1 << 20
	maxRetainedJS  = 1 << 12
)

var encPool = sync.Pool{New: func() any { return &enc{buf: make([]byte, 0, 4096)} }}

func getEnc() *enc {
	e := encPool.Get().(*enc)
	e.buf = e.buf[:0]
	return e
}

func (e *enc) release() {
	if cap(e.buf) > maxRetainedBuf {
		e.buf = make([]byte, 0, 4096)
	}
	if cap(e.js) > maxRetainedJS {
		e.js = nil
	}
	encPool.Put(e)
}

// rowFor returns the scratch tuple resized to arity.
func (e *enc) rowFor(arity int) renum.Tuple {
	if cap(e.row) < arity {
		e.row = make(renum.Tuple, arity)
	}
	e.row = e.row[:arity]
	return e.row
}

// jsFor returns the scratch position slice, emptied.
func (e *enc) jsFor() []int64 { return e.js[:0] }

// ---------------------------------------------------------- JSON primitives

// appendJSONString appends s as a quoted JSON string using exactly
// encoding/json's default (HTML-escaping) table; the implementation lives in
// internal/jsonx so the shard router produces byte-identical bodies.
func appendJSONString(dst []byte, s string) []byte {
	return jsonx.AppendString(dst, s)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

// appendCellString renders one value as a JSON string: the interned
// dictionary string when there is one, otherwise Dict.String's stable "#N"
// form rendered in place — '#' and decimal digits need no JSON escaping, so
// the formatting allocation Dict.String would pay is avoided entirely.
func appendCellString(dst []byte, dict *renum.Dict, v renum.Value) []byte {
	if s, ok := dict.StringInterned(v); ok {
		return appendJSONString(dst, s)
	}
	dst = append(dst, '"', '#')
	dst = strconv.AppendInt(dst, int64(v), 10)
	return append(dst, '"')
}

// appendTupleStrings renders one tuple as a JSON array of its dictionary
// strings, straight from the value-typed row — no []string materialization.
func appendTupleStrings(dst []byte, dict *renum.Dict, t renum.Tuple) []byte {
	dst = append(dst, '[')
	for i, v := range t {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendCellString(dst, dict, v)
	}
	return append(dst, ']')
}

func appendTuplesArray(dst []byte, dict *renum.Dict, ts []renum.Tuple) []byte {
	dst = append(dst, '[')
	for i, t := range ts {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendTupleStrings(dst, dict, t)
	}
	return append(dst, ']')
}

// ---------------------------------------------------------- response bodies
//
// One builder per response shape; keys appear in the alphabetical order
// encoding/json gives map keys, and every body ends with the Encoder's '\n'.

var (
	healthzBody = []byte("{\"ok\":true}\n")
	closedBody  = []byte("{\"closed\":true}\n")
)

func appendReadyzBody(dst []byte, ready bool, gen uint64) []byte {
	dst = append(dst, `{"generation":`...)
	dst = strconv.AppendUint(dst, gen, 10)
	dst = append(dst, `,"ready":`...)
	dst = appendBool(dst, ready)
	return append(dst, '}', '\n')
}

func appendCountBody(dst []byte, n int64) []byte {
	dst = append(dst, `{"count":`...)
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, '}', '\n')
}

func appendAccessBody(dst []byte, dict *renum.Dict, j int64, t renum.Tuple) []byte {
	dst = append(dst, `{"answer":`...)
	dst = appendTupleStrings(dst, dict, t)
	dst = append(dst, `,"j":`...)
	dst = strconv.AppendInt(dst, j, 10)
	return append(dst, '}', '\n')
}

// Batch bodies stream row by row: openAnswers / appendAnswersRow / a closer.
func openAnswersBody(dst []byte) []byte { return append(dst, `{"answers":[`...) }

func appendAnswersRow(dst []byte, dict *renum.Dict, first bool, t renum.Tuple) []byte {
	if !first {
		dst = append(dst, ',')
	}
	return appendTupleStrings(dst, dict, t)
}

func closeAnswersBody(dst []byte) []byte { return append(dst, ']', '}', '\n') }

func closeAnswersOffsetBody(dst []byte, offset int64) []byte {
	dst = append(dst, `],"offset":`...)
	dst = strconv.AppendInt(dst, offset, 10)
	return append(dst, '}', '\n')
}

func closeAnswersDoneBody(dst []byte, done bool) []byte {
	dst = append(dst, `],"done":`...)
	dst = appendBool(dst, done)
	return append(dst, '}', '\n')
}

func closeAnswersWithReplacementBody(dst []byte, withReplacement bool) []byte {
	dst = append(dst, `],"with_replacement":`...)
	dst = appendBool(dst, withReplacement)
	return append(dst, '}', '\n')
}

func appendAnswersBody(dst []byte, dict *renum.Dict, ts []renum.Tuple) []byte {
	dst = openAnswersBody(dst)
	for i, t := range ts {
		dst = appendAnswersRow(dst, dict, i == 0, t)
	}
	return closeAnswersBody(dst)
}

func appendContainsBody(dst []byte, contains bool) []byte {
	dst = append(dst, `{"contains":`...)
	dst = appendBool(dst, contains)
	return append(dst, '}', '\n')
}

func appendInvertedBody(dst []byte, j int64, found bool) []byte {
	if !found {
		return append(dst, "{\"found\":false}\n"...)
	}
	dst = append(dst, `{"found":true,"j":`...)
	dst = strconv.AppendInt(dst, j, 10)
	return append(dst, '}', '\n')
}

func appendChangedBody(dst []byte, changed bool, count int64) []byte {
	dst = append(dst, `{"changed":`...)
	dst = appendBool(dst, changed)
	dst = append(dst, `,"count":`...)
	dst = strconv.AppendInt(dst, count, 10)
	return append(dst, '}', '\n')
}

func appendCursorBody(dst []byte, id string, ttlMS int64) []byte {
	dst = append(dst, `{"cursor":`...)
	dst = appendJSONString(dst, id)
	dst = append(dst, `,"ttl_ms":`...)
	dst = strconv.AppendInt(dst, ttlMS, 10)
	return append(dst, '}', '\n')
}

func appendErrorBody(dst []byte, msg string) []byte {
	dst = append(dst, `{"error":`...)
	dst = appendJSONString(dst, msg)
	return append(dst, '}', '\n')
}

// Sentinel error responses recur verbatim (expired cursors under TTL churn,
// busy cursors under racing readers): preformatted once, written directly.
var (
	noCursorBody   = appendErrorBody(nil, ErrNoCursor.Error())
	cursorBusyBody = appendErrorBody(nil, ErrCursorBusy.Error())
)

// staticErrorBody returns the preformatted body for sentinel messages, nil
// otherwise.
func staticErrorBody(msg string) []byte {
	switch msg {
	case ErrNoCursor.Error():
		return noCursorBody
	case ErrCursorBusy.Error():
		return cursorBusyBody
	}
	return nil
}

// --------------------------------------------------- shared body assembly
//
// The mux handlers and the fast HTTP loop build identical bodies through
// these; divergence between the two serving paths would otherwise be an
// easy bug to grow.

// buildBatchBody probes js and renders the /batch response (JSON, or wire
// when asWire) into enc's buffer. A small, fully in-range batch streams
// sequentially through AccessInto into the pooled scratch row — the
// library's own AccessBatch is serial below its chunk threshold anyway, so
// no parallelism is lost and no []Tuple is materialized; larger batches
// keep AccessBatchContext's parallel fan-out. An out-of-range position
// takes the batch-probe path so the error is the probe's own.
func buildBatchBody(ctx context.Context, e *Entry, dict *renum.Dict, enc *enc, js []int64, asWire bool) ([]byte, error) {
	if len(js) <= streamBatchThreshold && jsInRange(js, e.Count()) {
		// One streamed batch is one chunk: honor cancellation at its
		// boundary, exactly like AccessBatchContext does between chunks.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := enc.rowFor(len(e.Head()))
		if asWire {
			buf := wire.AppendHeader(enc.buf, wire.Header{Arity: uint32(len(row)), Rows: uint64(len(js))})
			for _, j := range js {
				if err := e.H.AccessInto(j, row); err != nil {
					return nil, err
				}
				for _, val := range row {
					buf = appendWireCell(buf, dict, val)
				}
			}
			return wire.Finish(buf, 0), nil
		}
		buf := openAnswersBody(enc.buf)
		for i, j := range js {
			if err := e.H.AccessInto(j, row); err != nil {
				return nil, err
			}
			buf = appendAnswersRow(buf, dict, i == 0, row)
		}
		return closeAnswersBody(buf), nil
	}
	ts, err := e.accessBatch(ctx, js)
	if err != nil {
		return nil, err
	}
	if asWire {
		return appendWireTuples(enc.buf, dict, ts, len(e.Head()), 0, 0), nil
	}
	return appendAnswersBody(enc.buf, dict, ts), nil
}

// buildPageBody renders the /page response. Tail clamping mirrors
// Handle.Page: offset past the end is an empty page, an overshooting limit
// is shortened, never an error.
func buildPageBody(ctx context.Context, e *Entry, dict *renum.Dict, enc *enc, offset, limit int64, asWire bool) ([]byte, error) {
	n := e.Count()
	k := limit
	if offset >= n {
		k = 0
	} else if k > n-offset {
		k = n - offset
	}
	if k <= streamBatchThreshold {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := enc.rowFor(len(e.Head()))
		if asWire {
			buf := wire.AppendHeader(enc.buf, wire.Header{Arity: uint32(len(row)), Rows: uint64(k), Aux: uint64(offset)})
			for i := int64(0); i < k; i++ {
				if err := e.H.AccessInto(offset+i, row); err != nil {
					return nil, err
				}
				for _, val := range row {
					buf = appendWireCell(buf, dict, val)
				}
			}
			return wire.Finish(buf, 0), nil
		}
		buf := openAnswersBody(enc.buf)
		for i := int64(0); i < k; i++ {
			if err := e.H.AccessInto(offset+i, row); err != nil {
				return nil, err
			}
			buf = appendAnswersRow(buf, dict, i == 0, row)
		}
		return closeAnswersOffsetBody(buf, offset), nil
	}
	// Large pages keep Handle.Page's parallel fan-out (and its context
	// propagation between probe chunks).
	ts, err := e.H.PageContext(ctx, offset, limit)
	if err != nil {
		return nil, err
	}
	if asWire {
		return appendWireTuples(enc.buf, dict, ts, len(e.Head()), 0, uint64(offset)), nil
	}
	buf := openAnswersBody(enc.buf)
	for i, t := range ts {
		buf = appendAnswersRow(buf, dict, i == 0, t)
	}
	return closeAnswersOffsetBody(buf, offset), nil
}

// buildEnumNextBody renders a cursor draw.
func buildEnumNextBody(dict *renum.Dict, enc *enc, ts []renum.Tuple, arity int, done, asWire bool) []byte {
	if asWire {
		var flags uint32
		if done {
			flags = wire.FlagDone
		}
		return appendWireTuples(enc.buf, dict, ts, arity, flags, 0)
	}
	buf := openAnswersBody(enc.buf)
	for i, t := range ts {
		buf = appendAnswersRow(buf, dict, i == 0, t)
	}
	return closeAnswersDoneBody(buf, done)
}

// buildSampleBody renders a /sample draw.
func buildSampleBody(dict *renum.Dict, enc *enc, ts []renum.Tuple, withReplacement bool) []byte {
	buf := openAnswersBody(enc.buf)
	for i, t := range ts {
		buf = appendAnswersRow(buf, dict, i == 0, t)
	}
	return closeAnswersWithReplacementBody(buf, withReplacement)
}

// ------------------------------------------------------------- wire bodies

// appendWireCell appends one value as a length-prefixed wire cell, with the
// same interned-or-"#N" rendering as appendCellString.
func appendWireCell(dst []byte, dict *renum.Dict, v renum.Value) []byte {
	if s, ok := dict.StringInterned(v); ok {
		return wire.AppendCell(dst, s)
	}
	var num [24]byte
	cell := append(num[:0], '#')
	cell = strconv.AppendInt(cell, int64(v), 10)
	return wire.AppendCellBytes(dst, cell)
}

// appendWireTuples frames ts as one binary wire message (header + cells +
// CRC) appended to dst.
func appendWireTuples(dst []byte, dict *renum.Dict, ts []renum.Tuple, arity int, flags uint32, aux uint64) []byte {
	start := len(dst)
	dst = wire.AppendHeader(dst, wire.Header{
		Flags: flags,
		Arity: uint32(arity),
		Rows:  uint64(len(ts)),
		Aux:   aux,
	})
	for _, t := range ts {
		for _, v := range t {
			dst = appendWireCell(dst, dict, v)
		}
	}
	return wire.Finish(dst, start)
}

// wantsWire reports whether the request negotiated the binary format. A
// simple token scan: exact media type anywhere in Accept opts in (clients
// that want it say exactly that; there is no q-value dance worth doing).
func wantsWire(r *http.Request) bool {
	return acceptIsWire(r.Header.Get("Accept"))
}

func acceptIsWire(accept string) bool {
	for len(accept) > 0 {
		var part string
		if i := indexByte(accept, ','); i >= 0 {
			part, accept = accept[:i], accept[i+1:]
		} else {
			part, accept = accept, ""
		}
		part = trimSpaces(part)
		if i := indexByte(part, ';'); i >= 0 {
			part = trimSpaces(part[:i])
		}
		if part == wire.ContentType {
			return true
		}
	}
	return false
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

func trimSpaces(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// writeBody sends a fully built JSON body.
func writeBody(w http.ResponseWriter, body []byte) error {
	w.Header().Set("Content-Type", "application/json")
	_, err := w.Write(body)
	return err
}

// writeWireBody sends a fully built binary wire body.
func writeWireBody(w http.ResponseWriter, body []byte) error {
	w.Header().Set("Content-Type", wire.ContentType)
	_, err := w.Write(body)
	return err
}
