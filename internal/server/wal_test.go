package server

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/load"
	"repro/internal/wal"
)

// sweepD enumerates the dynamic entry D position by position through the
// HTTP surface and returns the concatenated raw /access bodies — the
// byte-level answer stream two servers must agree on.
func sweepD(t *testing.T, s *Server) string {
	t.Helper()
	m := do(t, s, "GET", "/v1/D/count", "", 200)
	n := int64(m["count"].(float64))
	out := fmt.Sprintf("count=%d;", n)
	for j := int64(0); j < n; j++ {
		body, status := doRaw(s, "GET", fmt.Sprintf("/v1/D/access?j=%d", j), "")
		if status != 200 {
			t.Fatalf("access j=%d: %d %s", j, status, body)
		}
		out += string(body)
	}
	return out
}

// TestUpdateRejectsBeforeInterning is the dict-poisoning regression: an
// insert aimed at a relation the query never joins (or with the wrong
// arity) must be rejected BEFORE its values reach the append-only
// dictionary. The old handler interned first and let Insert fail after —
// an attacker looping bad inserts grew server memory without bound.
func TestUpdateRejectsBeforeInterning(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	dictLen := reg.snap.Load().db.Dict().Len()
	for i := 0; i < 100; i++ {
		// Fresh never-seen strings each round: any interning is visible.
		bad := fmt.Sprintf(`{"op":"insert","relation":"zap","tuple":["evil-%d","evil-%d"]}`, i, i)
		do(t, s, "POST", "/v1/D/update", bad, 400)
		short := fmt.Sprintf(`{"op":"insert","relation":"r","tuple":["evil-%d"]}`, i)
		do(t, s, "POST", "/v1/D/update", short, 400)
	}
	if got := reg.snap.Load().db.Dict().Len(); got != dictLen {
		t.Fatalf("rejected inserts interned %d values into the dictionary", got-dictLen)
	}
	// A well-formed insert still works and still interns.
	m := do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["good","good"]}`, 200)
	if m["changed"] != true {
		t.Fatalf("good insert = %v", m)
	}
	if got := reg.snap.Load().db.Dict().Len(); got != dictLen+1 {
		t.Fatalf("good insert interned %d values, want 1", got-dictLen)
	}
}

// TestUpdateDuringRebuildRace drives /update and /admin/rebuild
// concurrently (run under -race). The update path must resolve the entry
// and the dictionary from ONE snapshot load — the view — so a rebuild
// publishing between two loads cannot pair an entry with another
// generation's state, and concurrent rebuilds must never corrupt either
// the retiring or the incoming index.
func TestUpdateDuringRebuildRace(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				val := fmt.Sprintf("%d-%d", g, i%7)
				body := fmt.Sprintf(`{"op":"insert","relation":"r","tuple":["%s","%s"]}`, val, val)
				if i%3 == 0 {
					body = fmt.Sprintf(`{"op":"delete","relation":"r","tuple":["%s","%s"]}`, val, val)
				}
				if resp, status := doRaw(s, "POST", "/v1/D/update", body); status != 200 {
					t.Errorf("update = %d %s", status, resp)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		do(t, s, "POST", "/admin/rebuild", "", 200)
		if _, status := doRaw(s, "GET", "/v1/D/count", ""); status != 200 {
			t.Fatalf("count during rebuild storm: %d", status)
		}
	}
	close(stop)
	wg.Wait()
	// The surviving entry still answers coherently: count equals the
	// number of accessible positions.
	sweepD(t, s)
}

// TestWALReplayRestoresUpdates: updates applied through the HTTP surface
// with a WAL attached are reproduced — byte for byte — by a fresh,
// identically-built registry attaching the same WAL directory.
func TestWALReplayRestoresUpdates(t *testing.T) {
	dir := t.TempDir()
	s1, reg1 := newTestServer(t, CoalesceConfig{}, Config{})
	if _, _, err := reg1.AttachWAL(dir, wal.SyncNone); err != nil {
		t.Fatal(err)
	}
	do(t, s1, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["7","8"]}`, 200)
	do(t, s1, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["8","9"]}`, 200)
	do(t, s1, "POST", "/v1/D/update", `{"op":"delete","relation":"r","tuple":["1","2"]}`, 200)
	// A delete of unknown values is a no-op and must NOT be logged (the
	// disk analog of dict poisoning).
	do(t, s1, "POST", "/v1/D/update", `{"op":"delete","relation":"r","tuple":["ghost","ghost"]}`, 200)
	st := reg1.WALStats()
	if !st.Attached || st.Depth != 3 {
		t.Fatalf("WAL stats after 3 effective updates = %+v", st)
	}
	want := sweepD(t, s1)
	if err := reg1.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Same boot sequence → same generation → the attach finds the segment.
	s2, reg2 := newTestServer(t, CoalesceConfig{}, Config{})
	replayed, skipped, err := reg2.AttachWAL(dir, wal.SyncNone)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 3 || skipped != 0 {
		t.Fatalf("replayed %d skipped %d, want 3/0", replayed, skipped)
	}
	if got := sweepD(t, s2); got != want {
		t.Fatalf("replayed state diverges:\n%s\nvs\n%s", got, want)
	}
	// The replayed registry keeps logging: one more update, one more record.
	do(t, s2, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["9","1"]}`, 200)
	if st := reg2.WALStats(); st.Depth != 4 {
		t.Fatalf("depth after post-replay update = %d, want 4", st.Depth)
	}
}

// TestSaveSnapshotRotatesWAL: /admin/save folds every logged record into
// the saved generation, so the segment rotates empty — and a boot from
// that snapshot replays nothing yet reproduces the full state.
func TestSaveSnapshotRotatesWAL(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	cfg := Config{SnapshotDir: snapDir}
	s1, reg1 := newTestServer(t, CoalesceConfig{}, cfg)
	if _, _, err := reg1.AttachWAL(walDir, wal.SyncNone); err != nil {
		t.Fatal(err)
	}
	do(t, s1, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["7","8"]}`, 200)
	do(t, s1, "POST", "/v1/D/update", `{"op":"delete","relation":"r","tuple":["1","2"]}`, 200)
	want := sweepD(t, s1)

	do(t, s1, "POST", "/admin/save", "", 200)
	if st := reg1.WALStats(); st.Depth != 0 {
		t.Fatalf("depth after save = %d, want 0 (records folded into the snapshot)", st.Depth)
	}

	s2 := saveAndReboot(t, s1, snapDir, cfg)
	if got := sweepD(t, s2); got != want {
		t.Fatalf("state after save+reboot diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestCompactFoldsWALIntoNewGeneration exercises the full online
// compaction cycle through /admin/compact: a new snapshot generation on
// disk, the WAL rotated empty at the new generation, served answers
// byte-identical across the swap, and updates still flowing afterwards.
func TestCompactFoldsWALIntoNewGeneration(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	cfg := Config{SnapshotDir: snapDir}
	s, reg := newTestServer(t, CoalesceConfig{}, cfg)
	if _, _, err := reg.AttachWAL(walDir, wal.SyncNone); err != nil {
		t.Fatal(err)
	}
	_, gen0 := reg.Snapshot()

	// An empty segment is a no-op: no new generation minted.
	m := do(t, s, "POST", "/admin/compact", "", 200)
	if uint64(m["generation"].(float64)) != gen0 || m["folded"].(float64) != 0 {
		t.Fatalf("no-op compact = %v", m)
	}

	do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["7","8"]}`, 200)
	do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["8","9"]}`, 200)
	do(t, s, "POST", "/v1/D/update", `{"op":"delete","relation":"r","tuple":["7","8"]}`, 200)
	want := sweepD(t, s)

	m = do(t, s, "POST", "/admin/compact", "", 200)
	if uint64(m["generation"].(float64)) != gen0+1 || m["folded"].(float64) != 3 {
		t.Fatalf("compact = %v, want generation %d folding 3", m, gen0+1)
	}
	if got := sweepD(t, s); got != want {
		t.Fatalf("answers changed across compaction:\n%s\nvs\n%s", got, want)
	}
	st := reg.WALStats()
	if st.Depth != 0 || st.Compactions != 1 || st.Folded != 3 || st.SegmentGen != gen0+1 {
		t.Fatalf("WAL stats after compact = %+v", st)
	}
	if _, err := os.Stat(load.SnapshotPath(snapDir, gen0+1)); err != nil {
		t.Fatalf("compacted snapshot missing: %v", err)
	}
	if _, err := os.Stat(load.WALPath(walDir, gen0+1)); err != nil {
		t.Fatalf("rotated segment missing: %v", err)
	}
	if _, err := os.Stat(load.WALPath(walDir, gen0)); !os.IsNotExist(err) {
		t.Fatalf("superseded segment not removed: %v", err)
	}

	// The compacted generation keeps accepting and logging updates, and a
	// cold boot from the new snapshot + segment reproduces everything.
	do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["5","5"]}`, 200)
	want = sweepD(t, s)
	cat, err := renum.OpenSnapshot(load.SnapshotPath(snapDir, gen0+1))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	reg2, err := NewRegistryFromCatalog(cat, CoalesceConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if replayed, _, err := reg2.AttachWAL(walDir, wal.SyncNone); err != nil || replayed != 1 {
		t.Fatalf("reboot replay = (%d, %v), want 1 record", replayed, err)
	}
	s2 := New(reg2, cfg)
	defer s2.Close()
	if got := sweepD(t, s2); got != want {
		t.Fatalf("cold boot from compacted generation diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestUpdateWithStaleViewAfterCompact is the ApplyUpdate-vs-Compact race
// regression: a handler resolves its lock-free view, a compaction publishes
// rebuilt-aside entries before the update reaches the mutex, and the update
// must land in the PUBLISHED handle. The old code applied to the superseded
// handle the view still pointed at — the acked change was invisible to
// every served read, and the next compaction (rebuilding from the served
// handle, then rotating away the segment holding the record) lost it
// permanently.
func TestUpdateWithStaleViewAfterCompact(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	cfg := Config{SnapshotDir: snapDir}
	s, reg := newTestServer(t, CoalesceConfig{}, cfg)
	if _, _, err := reg.AttachWAL(walDir, wal.SyncNone); err != nil {
		t.Fatal(err)
	}
	// One logged record so the compaction below actually mints a generation.
	do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["7","8"]}`, 200)

	// The in-flight handler's lock-free view, resolved BEFORE the
	// compaction publishes.
	stale, staleDB, gen0, ok := reg.LookupView("D")
	if !ok {
		t.Fatal("no entry D")
	}
	if _, _, err := reg.Compact(snapDir); err != nil {
		t.Fatal(err)
	}

	// The update reaches the mutex only after the swap: it must be applied
	// to the served handle, not the one the stale view captured.
	served, _ := reg.Lookup("D")
	before := served.Count()
	if changed, err := reg.ApplyUpdate(stale, staleDB, wal.OpInsert, "r", []string{"42", "42"}); err != nil || !changed {
		t.Fatalf("stale-view update = (%v, %v), want applied", changed, err)
	}
	if got := served.Count(); got != before+1 {
		t.Fatalf("served count = %d, want %d: acked update landed in the superseded handle", got, before+1)
	}
	want := sweepD(t, s)

	// And it survives the next fold plus a cold boot: the record is in the
	// rotated segment AND in the served state the next compaction rebuilds
	// from, so generation gen0+2 reproduces it with an empty WAL.
	if _, _, err := reg.Compact(snapDir); err != nil {
		t.Fatal(err)
	}
	cat, err := renum.OpenSnapshot(load.SnapshotPath(snapDir, gen0+2))
	if err != nil {
		t.Fatal(err)
	}
	defer cat.Close()
	reg2, err := NewRegistryFromCatalog(cat, CoalesceConfig{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg2.AttachWAL(walDir, wal.SyncNone); err != nil {
		t.Fatal(err)
	}
	s2 := New(reg2, cfg)
	defer s2.Close()
	if got := sweepD(t, s2); got != want {
		t.Fatalf("cold boot after stale-view update diverges:\n%s\nvs\n%s", got, want)
	}
}

// TestCompactUnderLiveTraffic runs probes and updates full tilt while
// compactions execute (run under -race): probes must stay lock-free and
// correct across the pointer swap, and no acknowledged update may be lost.
func TestCompactUnderLiveTraffic(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	cfg := Config{SnapshotDir: snapDir}
	s, reg := newTestServer(t, CoalesceConfig{}, cfg)
	if _, _, err := reg.AttachWAL(walDir, wal.SyncNone); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				val := fmt.Sprintf("t%d-%d", g, i%5)
				body := fmt.Sprintf(`{"op":"insert","relation":"r","tuple":["%s","%s"]}`, val, val)
				if resp, status := doRaw(s, "POST", "/v1/D/update", body); status != 200 {
					t.Errorf("update during compaction = %d %s", status, resp)
					return
				}
				if resp, status := doRaw(s, "GET", "/v1/D/access?j=0", ""); status != 200 {
					t.Errorf("probe during compaction = %d %s", status, resp)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 10; i++ {
		do(t, s, "POST", "/admin/compact", "", 200)
	}
	close(stop)
	wg.Wait()
	sweepD(t, s)
}

// TestCursorSurvivesSlowDraw is the janitor-race regression: a draw that
// outlives the TTL must neither be evicted mid-draw (its permutation
// positions would be silently lost) nor come back already expired — the
// TTL refreshes on completion, not just on admission.
func TestCursorSurvivesSlowDraw(t *testing.T) {
	store := newCursorStore(20*time.Millisecond, time.Hour)
	defer store.Shutdown()
	started := make(chan struct{})
	release := make(chan struct{})
	calls := 0
	id := store.Start("Q", func(context.Context, int64) ([]renum.Tuple, error) {
		calls++
		if calls == 1 {
			close(started)
			<-release // a draw slower than the whole TTL
		}
		return []renum.Tuple{{0}}, nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := store.Next(context.Background(), id, "Q", 1); err != nil {
			t.Errorf("slow draw failed: %v", err)
		}
	}()
	<-started
	// The cursor's admission-time TTL has lapsed; the janitor must skip the
	// busy cursor rather than delete it under the consumer.
	time.Sleep(40 * time.Millisecond)
	store.evict(time.Now())
	if store.Len() != 1 {
		t.Fatal("janitor evicted a cursor mid-draw")
	}
	close(release)
	wg.Wait()

	// Completion refreshed the TTL: an immediate next draw succeeds even
	// though the admission-time deadline is long gone.
	if _, _, err := store.Next(context.Background(), id, "Q", 1); err != nil {
		t.Fatalf("draw after slow draw = %v, want success (TTL refreshed on completion)", err)
	}
	// Idle expiry still works: once the consumer stops, the janitor frees it.
	time.Sleep(40 * time.Millisecond)
	store.evict(time.Now())
	if store.Len() != 0 {
		t.Fatalf("idle expired cursor not evicted (%d live)", store.Len())
	}
}
