package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/load"
)

// Entry is one served query: a name, the index kind, and exactly one built
// index. Entries are immutable once published — a rebuild produces fresh
// entries and swaps the whole snapshot, it never mutates a live one — so
// probe handlers read them without locks.
type Entry struct {
	// Name is the head predicate the entry is served under.
	Name string
	// Kind is "cq", "ucq" or "dynamic".
	Kind string
	// Text renders the query for /v1/{query} metadata responses.
	Text string
	// src is the parsed query, kept so Rebuild can recompile the entry
	// against the current database without reparsing.
	src load.Query

	// Exactly one of the three indexes is non-nil, matching Kind.
	RA *renum.RandomAccess
	UA *renum.UnionAccess
	DA *renum.DynamicAccess

	// coal merges concurrent single-position access requests into batches.
	// Nil when coalescing is disabled or the kind has no batch primitive.
	coal *coalescer
}

// Count returns the entry's current answer count.
func (e *Entry) Count() int64 {
	switch e.Kind {
	case "cq":
		return e.RA.Count()
	case "ucq":
		return e.UA.Count()
	default:
		return e.DA.Count()
	}
}

// Head returns the entry's output variable order.
func (e *Entry) Head() []string {
	switch e.Kind {
	case "cq":
		return e.RA.Head()
	case "ucq":
		// The mc-UCQ structure exposes no head; all disjuncts share the
		// first's output order.
		return e.src.UCQ.Disjuncts[0].Head
	default:
		return e.DA.Head()
	}
}

// access returns the j-th answer directly, bypassing the coalescer.
func (e *Entry) access(j int64) (renum.Tuple, error) {
	switch e.Kind {
	case "cq":
		return e.RA.Access(j)
	case "ucq":
		return e.UA.Access(j)
	default:
		return e.DA.Access(j)
	}
}

// accessBatch probes every position in js, fanning out across workers.
// Dynamic entries have no batch primitive, so they probe serially (each
// probe takes the index's shared read lock).
func (e *Entry) accessBatch(js []int64, workers int) ([]renum.Tuple, error) {
	switch e.Kind {
	case "cq":
		return e.RA.AccessBatch(js, workers)
	case "ucq":
		return e.UA.AccessBatch(js, workers)
	default:
		out := make([]renum.Tuple, len(js))
		for i, j := range js {
			t, err := e.DA.Access(j)
			if err != nil {
				return nil, err
			}
			out[i] = t
		}
		return out, nil
	}
}

// snapshot is one immutable generation of the registry: a database plus the
// entries compiled against it. Readers grab the current snapshot with one
// atomic load and keep using it even if a writer swaps in a successor.
type snapshot struct {
	db      *renum.Database
	entries map[string]*Entry
	gen     uint64
}

// Registry owns the served datasets and queries. Reads (Lookup, Snapshot)
// are lock-free: they atomically load the current snapshot. Writes
// (LoadTable, Register, Rebuild) serialize on a mutex, build a fresh
// snapshot aside, and publish it with one atomic swap — in-flight requests
// on the old snapshot finish undisturbed, new requests see the new
// generation. This is the concurrency contract the hammer tests enforce.
type Registry struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[snapshot]

	// coalesce configures the per-entry request coalescer applied to newly
	// built entries; the zero config disables coalescing.
	coalesce CoalesceConfig
	workers  int
}

// CoalesceConfig tunes the per-entry access coalescer. The zero value
// disables coalescing (every /access probes the index directly).
type CoalesceConfig struct {
	// Window is how long the first request of a batch waits for companions.
	Window time.Duration
	// MaxBatch flushes early once this many requests are pending (0 = 64).
	MaxBatch int
}

// NewRegistry returns a registry serving db with no queries yet.
func NewRegistry(db *renum.Database, coalesce CoalesceConfig, workers int) *Registry {
	r := &Registry{coalesce: coalesce, workers: workers}
	r.snap.Store(&snapshot{db: db, entries: map[string]*Entry{}})
	return r
}

// Snapshot returns the current generation. The result is immutable.
func (r *Registry) Snapshot() (db *renum.Database, gen uint64) {
	s := r.snap.Load()
	return s.db, s.gen
}

// Lookup returns the entry served under name in the current snapshot.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	e, ok := r.snap.Load().entries[name]
	return e, ok
}

// Names returns the served query names, sorted.
func (r *Registry) Names() []string {
	s := r.snap.Load()
	out := make([]string, 0, len(s.entries))
	for n := range s.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadTable registers CSV content as a relation named name in the database.
// Existing entries keep serving their already-built indexes (they snapshot
// the data at build time); call Rebuild to recompile them against the new
// table. Loading a name that already exists replaces that relation.
func (r *Registry) LoadTable(name string, csv io.Reader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	if err := load.CSV(cur.db, name, csv); err != nil {
		return err
	}
	// The database object is shared across generations (only writers touch
	// it, under r.mu; probe paths never read it), but bump the generation so
	// observers can tell the dataset changed.
	r.publish(cur.db, cur.entries)
	return nil
}

// Register compiles the program text (any number of queries, grouped by
// head) and publishes a snapshot serving them, replacing same-named entries.
// With dynamic true, single-rule full CQs build DynamicAccess instead of
// RandomAccess. It returns the registered query names.
func (r *Registry) Register(text string, dynamic bool) ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	qs, err := load.Queries(cur.db.Dict(), text)
	if err != nil {
		return nil, err
	}
	entries := cloneEntries(cur.entries)
	names := make([]string, 0, len(qs))
	for _, q := range qs {
		e, err := r.build(cur.db, q, dynamic)
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", q.Name, err)
		}
		entries[e.Name] = e
		names = append(names, e.Name)
	}
	r.publish(cur.db, entries)
	return names, nil
}

// Rebuild recompiles every entry from its source text against the current
// database and swaps the whole snapshot atomically. In-flight requests keep
// reading the generation they started on.
func (r *Registry) Rebuild() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	entries := make(map[string]*Entry, len(cur.entries))
	for name, old := range cur.entries {
		e, err := r.build(cur.db, old.src, old.Kind == "dynamic")
		if err != nil {
			return fmt.Errorf("rebuild %s: %w", name, err)
		}
		entries[e.Name] = e
	}
	r.publish(cur.db, entries)
	return nil
}

// build compiles one query into an Entry (no snapshot mutation).
func (r *Registry) build(db *renum.Database, q load.Query, dynamic bool) (*Entry, error) {
	e := &Entry{Name: q.Name, src: q}
	switch {
	case q.UCQ != nil:
		ua, err := renum.NewUnionAccess(db, q.UCQ, false)
		if err != nil {
			return nil, err
		}
		e.Kind, e.UA, e.Text = "ucq", ua, q.UCQ.String()
	case dynamic:
		da, err := renum.NewDynamicAccess(db, q.CQ)
		if err != nil {
			return nil, err
		}
		e.Kind, e.DA, e.Text = "dynamic", da, q.CQ.String()
	default:
		ra, err := renum.NewRandomAccess(db, q.CQ)
		if err != nil {
			return nil, err
		}
		e.Kind, e.RA, e.Text = "cq", ra, q.CQ.String()
	}
	// Dynamic entries stay uncoalesced: a concurrent delete can invalidate a
	// position after the handler validated it, and one stale position would
	// fail the whole merged batch for its round-mates. Static counts cannot
	// change, so the up-front validation there is airtight.
	if r.coalesce.Window > 0 && e.Kind != "dynamic" {
		e.coal = newCoalescer(r.coalesce, r.workers, e.accessBatch)
	}
	return e, nil
}

func (r *Registry) publish(db *renum.Database, entries map[string]*Entry) {
	gen := r.snap.Load().gen + 1
	r.snap.Store(&snapshot{db: db, entries: entries, gen: gen})
}

func cloneEntries(m map[string]*Entry) map[string]*Entry {
	out := make(map[string]*Entry, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
