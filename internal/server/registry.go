package server

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/load"
	"repro/internal/obs"
)

// Entry is one served query: a name and the capability-based handle serving
// it. Entries are immutable once published — a rebuild produces fresh
// entries and swaps the whole snapshot, it never mutates a live one — so
// probe handlers read them without locks.
//
// There is deliberately no backend dispatch here: every probe goes through
// the Handle's shared surface, and kind-specific behavior (inverted access,
// updates, cursors) is discovered via capabilities in the handlers. A new
// backend kind added to renum.Open is served without touching this file.
type Entry struct {
	// Name is the head predicate the entry is served under.
	Name string
	// Text renders the query for /v1/{query} metadata responses.
	Text string
	// H is the prepared handle; all probes dispatch through it.
	H *renum.Handle
	// src is the parsed query, kept so Rebuild can recompile the entry
	// against the current database without reparsing.
	src load.Query

	// coal merges concurrent single-position access requests into batches.
	// Nil when coalescing is disabled or unsafe for the backend.
	coal *coalescer

	// cacheable marks entries the answer cache may serve: static backends
	// only. Updatable handles mutate in place without a generation bump, so
	// a generation-keyed cache entry could outlive the answer it encodes —
	// the same reason updatable entries stay uncoalesced.
	cacheable bool

	// qm holds the per-operation probe histograms resolved from the
	// registry's observer at build time. Nil when no observer is set;
	// handlers record through these pointers with no lookup per request.
	qm *obs.ProbeOps
}

// Per-op histogram accessors, nil-safe for observer-less registries.
func (e *Entry) histAccess() *obs.Histogram {
	if e.qm == nil {
		return nil
	}
	return e.qm.Access
}
func (e *Entry) histCount() *obs.Histogram {
	if e.qm == nil {
		return nil
	}
	return e.qm.Count
}
func (e *Entry) histBatch() *obs.Histogram {
	if e.qm == nil {
		return nil
	}
	return e.qm.Batch
}
func (e *Entry) histPage() *obs.Histogram {
	if e.qm == nil {
		return nil
	}
	return e.qm.Page
}
func (e *Entry) histSample() *obs.Histogram {
	if e.qm == nil {
		return nil
	}
	return e.qm.Sample
}
func (e *Entry) histCursor() *obs.Histogram {
	if e.qm == nil {
		return nil
	}
	return e.qm.Cursor
}

// Kind names the handle's backend family (diagnostics/metadata only).
func (e *Entry) Kind() string { return string(e.H.Kind()) }

// Count returns the entry's current answer count.
func (e *Entry) Count() int64 { return e.H.Count() }

// Head returns the entry's output variable order.
func (e *Entry) Head() []string { return e.H.Head() }

// access returns the j-th answer directly, bypassing the coalescer.
func (e *Entry) access(j int64) (renum.Tuple, error) { return e.H.Access(j) }

// accessBatch probes every position in js through the handle, honoring the
// request context between chunks.
func (e *Entry) accessBatch(ctx context.Context, js []int64) ([]renum.Tuple, error) {
	return e.H.AccessBatchContext(ctx, js)
}

// snapshot is one immutable generation of the registry: a database plus the
// entries compiled against it. Readers grab the current snapshot with one
// atomic load and keep using it even if a writer swaps in a successor.
type snapshot struct {
	db      *renum.Database
	entries map[string]*Entry
	gen     uint64
}

// Registry owns the served datasets and queries. Reads (Lookup, Snapshot)
// are lock-free: they atomically load the current snapshot. Writes
// (LoadTable, Register, Rebuild) serialize on a mutex, build a fresh
// snapshot aside, and publish it with one atomic swap — in-flight requests
// on the old snapshot finish undisturbed, new requests see the new
// generation. This is the concurrency contract the hammer tests enforce.
type Registry struct {
	mu   sync.Mutex // serializes writers
	snap atomic.Pointer[snapshot]

	// coalesce configures the per-entry request coalescer applied to newly
	// built entries; the zero config disables coalescing.
	coalesce CoalesceConfig
	workers  int

	// wal is the registry's write-ahead log state (see wal.go). Its zero
	// value means no WAL is attached and updates are applied unlogged.
	wal walState

	// obs receives build/WAL/compaction/publish timings and resolves
	// per-query probe histograms. Written under r.mu (SetObserver) and read
	// under r.mu by the build/compact/publish paths; nil means unobserved.
	obs *obs.Observer

	// sliceIdx/sliceOf configure shard-daemon mode (SetShardSlice): every
	// entry serves only slice sliceIdx of a sliceOf-way partition of its
	// answers. sliceOf == 0 means the registry serves full answer sets.
	sliceIdx int
	sliceOf  int

	// planner selects the join-tree planning mode for entry builds
	// (SetPlanner). Empty means the library default (cost-based).
	planner renum.PlannerMode
}

// CoalesceConfig tunes the per-entry access coalescer. The zero value
// disables coalescing (every /access probes the index directly).
type CoalesceConfig struct {
	// Window is how long the first request of a batch waits for companions.
	Window time.Duration
	// MaxBatch flushes early once this many requests are pending (0 = 64).
	MaxBatch int
}

// NewRegistry returns a registry serving db with no queries yet.
func NewRegistry(db *renum.Database, coalesce CoalesceConfig, workers int) *Registry {
	r := &Registry{coalesce: coalesce, workers: workers}
	r.snap.Store(&snapshot{db: db, entries: map[string]*Entry{}})
	return r
}

// NewRegistryFromCatalog builds a registry around an opened snapshot
// catalog: the restored database and handles are served as-is (no
// recompilation — that is the whole point of booting from a snapshot), and
// the registry's generation numbering continues from the catalog's, so
// generations stay monotonic across daemon restarts. The catalog must stay
// open for the registry's lifetime (its handles alias the file mapping).
//
// Restored entries keep their parsed queries, so later LoadTable+Rebuild
// cycles recompile them against fresh data exactly like entries registered
// over HTTP.
func NewRegistryFromCatalog(cat *renum.Catalog, coalesce CoalesceConfig, workers int) (*Registry, error) {
	r := &Registry{coalesce: coalesce, workers: workers}
	entries := map[string]*Entry{}
	for _, ce := range cat.Entries() {
		src := load.QueryFromSrc(ce.Name, ce.Q)
		if src.Src() == nil {
			return nil, fmt.Errorf("catalog entry %s: unsupported query form", ce.Name)
		}
		e := &Entry{Name: ce.Name, Text: ce.Q.String(), H: ce.H, src: src, cacheable: !ce.H.Has(renum.CapUpdate)}
		if r.coalesce.Window > 0 && !ce.H.Has(renum.CapUpdate) {
			e.coal = newCoalescer(r.coalesce, ce.H.AccessBatch)
		}
		entries[ce.Name] = e
	}
	r.snap.Store(&snapshot{db: cat.DB(), entries: entries, gen: cat.Generation()})
	return r, nil
}

// SaveSnapshot persists the current generation into dir as
// gen-<generation>.snap (atomic write), returning the path, the generation
// saved, and the names of entries skipped because their backend has no
// snapshot form. It serializes with admin writes on the registry mutex:
// the snapshot on disk is always one the registry actually published,
// never a torn mid-load state.
//
// When a WAL is attached, the save also holds the update mutex — the saved
// state then includes every acknowledged update, so the segment's records
// are all folded in and the WAL rotates to an empty segment paired with
// the saved generation.
func (r *Registry) SaveSnapshot(dir string) (path string, gen uint64, skipped []string, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wal.mu.Lock()
	defer r.wal.mu.Unlock()
	s := r.snap.Load()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, nil, err
	}
	var entries []renum.CatalogEntry
	for _, name := range sortedNames(s.entries) {
		e := s.entries[name]
		if !e.H.Has(renum.CapSnapshot) {
			skipped = append(skipped, name)
			continue
		}
		entries = append(entries, renum.CatalogEntry{Name: name, Q: e.src.Src(), H: e.H})
	}
	path = load.SnapshotPath(dir, s.gen)
	t0 := time.Now()
	if err := renum.SaveSnapshot(path, s.db, s.gen, entries); err != nil {
		return "", 0, skipped, err
	}
	r.obs.ObserveSnapshotSave(s.gen, time.Since(t0))
	if r.wal.log != nil {
		if err := r.rotateLocked(s.gen); err != nil {
			return "", 0, skipped, err
		}
	}
	return path, s.gen, skipped, nil
}

func sortedNames(m map[string]*Entry) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetObserver installs (or replaces) the registry's observability hooks.
// Entries already published get their per-query probe histograms attached
// retroactively: the current snapshot is republished at the SAME generation
// with qm-carrying entry clones, so a server wired after boot-time
// registration (the daemon's order: register → AttachWAL → New) still
// observes every query. An attached WAL gets its append/fsync hooks here
// too, and again on every rotation.
func (r *Registry) SetObserver(o *obs.Observer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.obs = o
	cur := r.snap.Load()
	if len(cur.entries) > 0 {
		entries := make(map[string]*Entry, len(cur.entries))
		for name, e := range cur.entries {
			ne := *e
			ne.qm = o.Ops(name)
			entries[name] = &ne
		}
		// Same generation: nothing about the served data changed.
		r.snap.Store(&snapshot{db: cur.db, entries: entries, gen: cur.gen})
	}
	r.wal.mu.Lock()
	if r.wal.log != nil {
		r.wal.log.SetHooks(r.walHooks())
	}
	r.wal.mu.Unlock()
}

// SetShardSlice puts the registry in shard-daemon mode: every entry —
// already published or registered later — serves only slice i of a k-way
// partition of its answer space, as local positions 0..Count()-1. A router
// re-bases the slices onto the global order from the daemons' counts.
//
// CQ entries registered after the call are built with renum.WithShardSlice
// (only 1/k of the index is constructed); union entries and entries already
// restored from a snapshot are wrapped in a renum.SliceView position window
// over the full handle. Updatable entries are rejected: positions shift
// under updates, so a static slice of them would drift off its window.
func (r *Registry) SetShardSlice(i, k int) error {
	if k < 1 || i < 0 || i >= k {
		return fmt.Errorf("shard slice %d/%d out of range", i, k)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	entries := make(map[string]*Entry, len(cur.entries))
	for name, e := range cur.entries {
		if e.H.Has(renum.CapUpdate) {
			return fmt.Errorf("shard slice over updatable entry %s: %w", name, renum.ErrUnsupported)
		}
		sl, err := renum.SliceView(e.H, i, k)
		if err != nil {
			return fmt.Errorf("shard slice over entry %s: %w", name, err)
		}
		ne := *e
		ne.H = sl
		ne.coal = nil
		if r.coalesce.Window > 0 {
			ne.coal = newCoalescer(r.coalesce, sl.AccessBatch)
		}
		entries[name] = &ne
	}
	r.sliceIdx, r.sliceOf = i, k
	// Same generation: the served data did not change, only its window.
	r.snap.Store(&snapshot{db: cur.db, entries: entries, gen: cur.gen})
	return nil
}

// SetPlanner selects the join-tree planning mode applied to entries built
// after the call (Register, Rebuild): renum.PlannerCost searches candidate
// join trees and keeps the cheapest, renum.PlannerOff preserves the
// as-parsed tree byte-for-byte. Entries already published keep the tree
// they were built with until their next rebuild.
func (r *Registry) SetPlanner(mode renum.PlannerMode) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.planner = mode
}

// ShardSlice reports the registry's shard-daemon window (k == 0 when the
// registry serves full answer sets).
func (r *Registry) ShardSlice() (i, k int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sliceIdx, r.sliceOf
}

// EntryCount reports how many queries the current snapshot serves
// (lock-free; used by /readyz).
func (r *Registry) EntryCount() int {
	return len(r.snap.Load().entries)
}

// Snapshot returns the current generation. The result is immutable.
func (r *Registry) Snapshot() (db *renum.Database, gen uint64) {
	s := r.snap.Load()
	return s.db, s.gen
}

// Lookup returns the entry served under name in the current snapshot.
func (r *Registry) Lookup(name string) (*Entry, bool) {
	e, ok := r.snap.Load().entries[name]
	return e, ok
}

// LookupView resolves an entry together with the database and generation
// of the SAME snapshot, from one atomic load. Handlers that need both must
// use this rather than separate Lookup/Snapshot calls — two loads can
// straddle a concurrent rebuild and pair an old entry with a new
// generation's dictionary.
func (r *Registry) LookupView(name string) (e *Entry, db *renum.Database, gen uint64, ok bool) {
	s := r.snap.Load()
	e, ok = s.entries[name]
	return e, s.db, s.gen, ok
}

// lookupViewBytes is LookupView keyed by raw request bytes: the map access
// compiles to the no-copy string lookup, so the fast HTTP loop resolves a
// query name without allocating.
func (r *Registry) lookupViewBytes(name []byte) (e *Entry, db *renum.Database, gen uint64, ok bool) {
	s := r.snap.Load()
	e, ok = s.entries[string(name)]
	return e, s.db, s.gen, ok
}

// Names returns the served query names, sorted.
func (r *Registry) Names() []string {
	s := r.snap.Load()
	out := make([]string, 0, len(s.entries))
	for n := range s.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadTable registers CSV content as a relation named name in the database.
// Existing entries keep serving their already-built indexes (they snapshot
// the data at build time); call Rebuild to recompile them against the new
// table. Loading a name that already exists replaces that relation.
func (r *Registry) LoadTable(name string, csv io.Reader) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	if err := load.CSV(cur.db, name, csv); err != nil {
		return err
	}
	// The database object is shared across generations (only writers touch
	// it, under r.mu; probe paths never read it), but bump the generation so
	// observers can tell the dataset changed.
	r.publish(cur.db, cur.entries)
	return nil
}

// Register compiles the program text (any number of queries, grouped by
// head) and publishes a snapshot serving them, replacing same-named entries.
// With dynamic true, single-rule full CQs are opened with renum.WithDynamic
// (the entry gains the update capability). It returns the registered query
// names.
func (r *Registry) Register(text string, dynamic bool) ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	qs, err := load.Queries(cur.db.Dict(), text)
	if err != nil {
		return nil, err
	}
	entries := cloneEntries(cur.entries)
	names := make([]string, 0, len(qs))
	for _, q := range qs {
		e, err := r.build(cur.db, q, dynamic)
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", q.Name, err)
		}
		entries[e.Name] = e
		names = append(names, e.Name)
	}
	r.publish(cur.db, entries)
	return names, nil
}

// Rebuild recompiles every entry from its source text against the current
// database and swaps the whole snapshot atomically. In-flight requests keep
// reading the generation they started on.
func (r *Registry) Rebuild() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.snap.Load()
	entries := make(map[string]*Entry, len(cur.entries))
	for name, old := range cur.entries {
		e, err := r.build(cur.db, old.src, old.H.Has(renum.CapUpdate))
		if err != nil {
			return fmt.Errorf("rebuild %s: %w", name, err)
		}
		entries[e.Name] = e
	}
	r.publish(cur.db, entries)
	return nil
}

// build compiles one query into an Entry (no snapshot mutation).
func (r *Registry) build(db *renum.Database, q load.Query, dynamic bool) (*Entry, error) {
	opts := []renum.Option{renum.WithWorkers(r.workers)}
	// The dynamic flag applies to single-rule heads only; a union in the
	// same program still builds the static mc-UCQ backend (WithDynamic on a
	// UCQ is ErrUnsupported by contract).
	if dynamic && q.CQ != nil {
		opts = append(opts, renum.WithDynamic())
	}
	if r.planner != "" {
		opts = append(opts, renum.WithPlanner(r.planner))
	}
	if o := r.obs; o != nil && o.Build != nil {
		name := q.Name
		opts = append(opts, renum.WithBuildObserver(func(stage string, d time.Duration) {
			o.ObserveBuild(name, stage, d)
		}))
	}
	if o := r.obs; o != nil && o.Plan != nil {
		name := q.Name
		opts = append(opts, renum.WithPlanObserver(func(ps renum.PlanStats) {
			o.ObservePlan(name, ps.Candidates, ps.Identity, ps.ChosenCost, ps.IdentityCost, ps.Duration)
		}))
	}
	src := q.Src()
	t0 := time.Now()
	var h *renum.Handle
	var err error
	switch {
	case r.sliceOf > 0 && dynamic && q.CQ != nil:
		return nil, fmt.Errorf("shard slice with dynamic query %s: %w", q.Name, renum.ErrUnsupported)
	case r.sliceOf > 0 && q.CQ != nil:
		// Shard-daemon mode: build only this slice's 1/k of the index.
		h, err = renum.Open(db, src, append(opts, renum.WithShardSlice(r.sliceIdx, r.sliceOf))...)
	case r.sliceOf > 0:
		// Unions have no build-level slicing; build the full union index and
		// serve a position window over it.
		h, err = renum.Open(db, src, opts...)
		if err == nil {
			h, err = renum.SliceView(h, r.sliceIdx, r.sliceOf)
		}
	default:
		h, err = renum.Open(db, src, opts...)
	}
	if err != nil {
		return nil, err
	}
	r.obs.ObserveBuild(q.Name, "total", time.Since(t0))
	e := &Entry{Name: q.Name, Text: src.String(), H: h, src: q, qm: r.obs.Ops(q.Name), cacheable: !h.Has(renum.CapUpdate)}
	// Updatable entries stay uncoalesced: a concurrent delete can invalidate
	// a position after the handler validated it, and one stale position
	// would fail the whole merged batch for its round-mates. Static counts
	// cannot change, so the up-front validation there is airtight.
	if r.coalesce.Window > 0 && !h.Has(renum.CapUpdate) {
		e.coal = newCoalescer(r.coalesce, h.AccessBatch)
	}
	return e, nil
}

func (r *Registry) publish(db *renum.Database, entries map[string]*Entry) {
	gen := r.snap.Load().gen + 1
	r.snap.Store(&snapshot{db: db, entries: entries, gen: gen})
	r.obs.ObservePublish(gen)
}

func cloneEntries(m map[string]*Entry) map[string]*Entry {
	out := make(map[string]*Entry, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
