// Package server puts the enumeration indexes behind a network socket: a
// long-lived daemon (cmd/renumd) owning a registry of immutable indexes,
// serving the whole probe surface over HTTP/JSON to clients that do not
// link the Go library.
//
// # API
//
// Probe endpoints (all JSON; {query} is a registered head predicate):
//
//	GET  /v1                          → {"queries": [...names]}
//	GET  /v1/{query}                  → metadata: kind, count, head, rule text,
//	                                    capabilities (the renum.Handle set)
//	GET  /v1/{query}/count            → {"count": n}
//	GET  /v1/{query}/access?j=N       → {"j": N, "answer": [...strings]}
//	GET  /v1/{query}/batch?js=0,5,3   → {"answers": [[...], ...]}   (also POST {"js":[...]})
//	GET  /v1/{query}/page?offset=&limit= → {"offset": o, "answers": [...]}
//	GET  /v1/{query}/sample?k=&seed=  → {"answers": [...]} (distinct for cq/ucq,
//	                                    with replacement for dynamic)
//	POST /v1/{query}/contains  {"tuple": [...]}  → {"contains": bool}
//	POST /v1/{query}/inverted  {"tuple": [...]}  → {"j": N, "found": bool}
//	POST /v1/{query}/update    {"op": "insert"|"delete", "relation": r, "tuple": [...]}
//	                                  (dynamic entries only)
//
// Cursor sessions (stateful enumeration; single-consumer, TTL-evicted):
//
//	POST   /v1/{query}/enum/start?order=enum|random&seed=S → {"cursor": id, "ttl_ms": t}
//	GET    /v1/{query}/enum/next?cursor=&n=               → {"answers": [...], "done": bool}
//	DELETE /v1/{query}/enum?cursor=                        → {"closed": true}
//
// Operations:
//
//	GET  /healthz                      → {"ok": true}
//	GET  /metrics                      → per-endpoint counts + latency quantiles,
//	                                     coalescer rounds, live cursors, generation
//	POST /admin/load     {"name": r, "csv": "a,b\n1,2\n"}  → load/replace a table
//	POST /admin/register {"program": "...", "dynamic": bool} → compile + publish queries
//	POST /admin/rebuild                → recompile every entry, swap the snapshot
//	POST /admin/save                   → persist the current generation to the
//	                                     snapshot dir (dynamic entries included;
//	                                     with a WAL attached, the segment rotates
//	                                     empty — its records are now folded in)
//	POST /admin/compact                → rebuild updatable entries aside, save
//	                                     generation+1, rotate the WAL, publish
//
// # Durability
//
// With a WAL attached (renumd -wal-dir), every acknowledged /update is
// appended — fsynced under the default policy — before it is applied, so a
// SIGKILL loses no acked update: boot replays the newest snapshot
// generation's segment on top of that snapshot. Compaction (periodic via
// -compact-every, or on demand via /admin/compact) folds the segment into
// a new snapshot generation without blocking probes. Admin mutations
// (load/register/rebuild) are NOT logged; they are durable only through an
// explicit /admin/save or /admin/compact.
//
// # Dispatch
//
// Every entry is served through one *renum.Handle: handlers use the shared
// probe surface and discover optional facilities via capabilities (Inverter,
// Updater, Sampler, CapEnumerate). A probe the backend cannot serve fails
// with renum.ErrUnsupported, which maps uniformly to 501 — there is no
// backend type switch anywhere in this package, so new backend kinds are
// served without handler changes. Request contexts propagate into batched
// probes (/batch, /page, enum-order cursor draws): a disconnected client
// stops burning cores at the next chunk boundary. Random-order cursor draws
// are atomic — cancellation is only honored between draws, because a
// permutation's positions are consumed up front and aborting mid-draw
// would silently lose answers for subsequent requests.
//
// # Concurrency
//
// Probe handlers are lock-free against the registry: they atomically load
// the current snapshot and use its immutable indexes. Admin writes build a
// new snapshot aside and publish it with one atomic swap; requests that
// started on the old generation finish on it. Cursors capture the snapshot
// they started on and are single-consumer (a concurrent read of the same
// cursor fails fast with 409 rather than queueing).
//
// Concurrent /access requests for the same query arriving within the
// coalescing window are merged into one AccessBatch probe; responses are
// byte-identical to the uncoalesced path (AccessBatch ≡ Access is a pinned
// library property).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Config tunes a Server. The access coalescer and the probe fan-out are
// configured on the Registry (NewRegistry), which owns entry construction —
// each entry's Handle carries its worker budget.
type Config struct {
	// CursorTTL evicts idle enumeration sessions (0 = 5 minutes).
	CursorTTL time.Duration
	// CursorSweep is the janitor period (0 = TTL/4, min 1s).
	CursorSweep time.Duration
	// MaxBatch bounds the positions of one /batch or /page request (0 = 1<<16).
	MaxBatch int64
	// MaxCursorDraw bounds n of one /enum/next call (0 = 1<<16).
	MaxCursorDraw int64
	// AdminDisabled turns the /admin endpoints off (serve-only daemon).
	AdminDisabled bool
	// SnapshotDir is where /admin/save persists catalog snapshots
	// (gen-<generation>.snap). Empty disables saving with a descriptive 400.
	SnapshotDir string
	// SlowLog emits a structured log line for any request at least this
	// slow (0 disables slow-request logging).
	SlowLog time.Duration
	// Logger receives slow-request lines. Nil means slog.Default().
	Logger *slog.Logger
	// TraceBuffer caps the in-memory ring behind /debug/traces
	// (0 = 256 traced requests).
	TraceBuffer int
	// AnswerCacheBytes budgets the generation-keyed /access answer cache
	// (see anscache.go): encoded response bodies for hot positions of
	// static entries, invalidated by the registry's generation swap.
	// 0 disables the cache entirely (the default — cache-off is the
	// configuration the zero-allocation probe benchmarks pin).
	AnswerCacheBytes int64
}

// Server is the HTTP face of a Registry.
type Server struct {
	reg      *Registry
	cfg      Config
	cursors  *cursorStore
	metrics  *metricsRecorder
	obs      *obs.Registry
	traces   *traceStore
	anscache *answerCache // nil when AnswerCacheBytes == 0
	logger   *slog.Logger
	ready    atomic.Bool
	mux      *http.ServeMux
}

// New wires a server around reg. Call Close when done to stop the cursor
// janitor.
//
// New also installs the registry's observability hooks: per-query probe
// histograms, build/WAL/compaction timings and generation counters all land
// in the server's Prometheus registry (served at /metrics). The server
// starts ready; operators sequence readiness explicitly with SetReady
// around WAL replay and drain.
func New(reg *Registry, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1 << 16
	}
	if cfg.MaxCursorDraw <= 0 {
		cfg.MaxCursorDraw = 1 << 16
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	obsReg := obs.NewRegistry()
	s := &Server{
		reg:     reg,
		cfg:     cfg,
		cursors: newCursorStore(cfg.CursorTTL, cfg.CursorSweep),
		metrics: newMetricsRecorder(obsReg),
		obs:     obsReg,
		traces:  newTraceStore(cfg.TraceBuffer),
		logger:  logger,
		mux:     http.NewServeMux(),
	}
	if cfg.AnswerCacheBytes > 0 {
		s.anscache = newAnswerCache(cfg.AnswerCacheBytes)
	}
	s.ready.Store(true)
	s.registerCollectors()
	reg.SetObserver(newServerObserver(obsReg, s))
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /readyz", "readyz", s.handleReadyz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.route("GET /debug/traces", "debug_traces", s.handleDebugTraces)
	s.route("GET /v1", "list", s.handleList)
	s.route("GET /v1/{query}", "meta", s.entry(s.handleMeta))
	s.route("GET /v1/{query}/count", "count", s.entry(s.handleCount))
	s.route("GET /v1/{query}/access", "access", s.entry(s.handleAccess))
	s.route("GET /v1/{query}/batch", "batch", s.entry(s.handleBatch))
	s.route("POST /v1/{query}/batch", "batch", s.entry(s.handleBatch))
	s.route("GET /v1/{query}/page", "page", s.entry(s.handlePage))
	s.route("GET /v1/{query}/sample", "sample", s.entry(s.handleSample))
	s.route("POST /v1/{query}/contains", "contains", s.entry(s.handleContains))
	s.route("POST /v1/{query}/inverted", "inverted", s.entry(s.handleInverted))
	s.route("POST /v1/{query}/update", "update", s.entry(s.handleUpdate))
	s.route("POST /v1/{query}/enum/start", "enum_start", s.entry(s.handleEnumStart))
	s.route("GET /v1/{query}/enum/next", "enum_next", s.entry(s.handleEnumNext))
	s.route("DELETE /v1/{query}/enum", "enum_close", s.entry(s.handleEnumClose))
	if !cfg.AdminDisabled {
		s.route("POST /admin/load", "admin_load", s.handleAdminLoad)
		s.route("POST /admin/register", "admin_register", s.handleAdminRegister)
		s.route("POST /admin/rebuild", "admin_rebuild", s.handleAdminRebuild)
		s.route("POST /admin/save", "admin_save", s.handleAdminSave)
		s.route("POST /admin/compact", "admin_compact", s.handleAdminCompact)
	}
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetReady flips the /readyz verdict. The daemon sets it false at the top
// of a drain so load balancers stop routing new work before the listener
// goes away, and (already true by default) leaves it true once boot — WAL
// replay included — has finished.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Ready reports the /readyz verdict: the operator has not started a drain
// AND the registry is serving a published generation with at least one
// entry (a daemon serving nothing is not ready for traffic).
func (s *Server) Ready() bool {
	return s.ready.Load() && s.reg.EntryCount() > 0
}

// Close stops background work (cursor janitor) and marks the server
// unready. In-flight requests are the http.Server's business.
func (s *Server) Close() {
	s.ready.Store(false)
	s.cursors.Shutdown()
}

// httpError carries a status code through the handler plumbing.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) error {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response. There is no stdlib constant for it.
const statusClientClosedRequest = 499

// errorStatus maps a handler error to its HTTP status.
func errorStatus(err error, clientGone bool) int {
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case clientGone:
		return statusClientClosedRequest
	case renum.IsUnsupported(err):
		// Capability discovery is uniform: any probe the backend
		// cannot serve (inverted access on a union, updates or
		// cursors on the wrong kind) is 501, never a type switch.
		return http.StatusNotImplemented
	case errors.Is(err, renum.ErrOutOfBounds):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoCursor):
		return http.StatusNotFound
	case errors.Is(err, ErrCursorBusy):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// countingWriter counts response bytes for the per-endpoint bytes_out
// metric; pooled so the wrapper itself costs no allocation per request.
type countingWriter struct {
	http.ResponseWriter
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.ResponseWriter.Write(p)
	c.n += int64(n)
	return n, err
}

var cwPool = sync.Pool{New: func() any { return &countingWriter{} }}

// route installs a handler with metrics instrumentation. The endpoint's
// instruments are resolved here, once, at registration — the per-request
// closure records through pre-registered pointers.
func (s *Server) route(pattern, name string, h func(w http.ResponseWriter, r *http.Request) error) {
	ep := s.metrics.endpoint(name)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		cw := cwPool.Get().(*countingWriter)
		cw.ResponseWriter, cw.n = w, 0
		// A client-supplied X-Request-Id turns tracing on for this request
		// (and only then — untraced requests never touch the trace pool).
		var tr *traceRec
		if id := r.Header.Get("X-Request-Id"); id != "" {
			tr = s.traces.beginString(id, name, t0)
			r = r.WithContext(context.WithValue(r.Context(), traceCtxKey{}, tr))
		}
		// Sampled requests bracket the handler with heap-allocation reads
		// for the /metrics allocs_per_req_est column.
		var allocs0 uint64
		sampled := s.metrics.sampleTick()
		if sampled {
			allocs0 = heapAllocObjects()
		}
		err := h(cw, r)
		// A cancelled request context means the *client* abandoned the
		// probe mid-flight: report 499 (best effort — the client is gone)
		// and keep it out of the server-error metric, or dashboards would
		// read ordinary disconnects as faults.
		clientGone := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		if err != nil {
			writeError(cw, errorStatus(err, clientGone), err.Error())
		}
		if sampled {
			ep.observeAllocs(float64(heapAllocObjects() - allocs0))
		}
		d := time.Since(t0)
		ep.observe(d, err != nil && !clientGone, cw.n)
		status := http.StatusOK
		if err != nil {
			status = errorStatus(err, clientGone)
		}
		if tr != nil {
			tr.finish(status, d)
			s.traces.push(tr)
		}
		if s.cfg.SlowLog > 0 && d >= s.cfg.SlowLog {
			s.logSlow(name, r, d, status)
		}
		cw.ResponseWriter = nil
		cwPool.Put(cw)
	})
}

// logSlow emits one structured line for a request over the SlowLog
// threshold. Cold by definition — the request already blew its budget.
func (s *Server) logSlow(endpoint string, r *http.Request, d time.Duration, status int) {
	attrs := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.String("path", r.URL.Path),
		slog.Int64("duration_us", d.Microseconds()),
		slog.Int("status", status),
	}
	if q := r.PathValue("query"); q != "" {
		attrs = append(attrs, slog.String("query", q))
	}
	if id := r.Header.Get("X-Request-Id"); id != "" {
		attrs = append(attrs, slog.String("request_id", id))
	}
	s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow request", attrs...)
}

// logSlowFast is logSlow for the fast loop, which has no *http.Request.
func (s *Server) logSlowFast(endpoint, target, query, reqID string, d time.Duration, status int) {
	attrs := []slog.Attr{
		slog.String("endpoint", endpoint),
		slog.String("path", target),
		slog.Int64("duration_us", d.Microseconds()),
		slog.Int("status", status),
	}
	if query != "" {
		attrs = append(attrs, slog.String("query", query))
	}
	if reqID != "" {
		attrs = append(attrs, slog.String("request_id", reqID))
	}
	s.logger.LogAttrs(context.Background(), slog.LevelWarn, "slow request", attrs...)
}

// writeError emits the {"error": msg} body: preformatted bytes for the
// sentinel messages that recur verbatim, a pooled buffer otherwise — the old
// per-error map[string]string + json.Encoder pair is gone.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if body := staticErrorBody(msg); body != nil {
		w.Write(body)
		return
	}
	e := getEnc()
	w.Write(appendErrorBody(e.buf, msg))
	e.release()
}

// view is everything a handler needs from ONE atomic snapshot load: the
// entry's generation-mates. Resolving the entry and the dictionary with
// separate loads is a race — a concurrent /admin rebuild can publish a new
// generation between them, pairing an old entry with a new database —
// so the entry middleware builds the view once and handlers never go back
// to the registry.
type view struct {
	e   *Entry
	db  *renum.Database
	gen uint64
}

// entry resolves {query} against the current snapshot before the handler.
// The handler receives the entry and its same-snapshot view.
func (s *Server) entry(h func(w http.ResponseWriter, r *http.Request, e *Entry, v view) error) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		name := r.PathValue("query")
		e, db, gen, ok := s.reg.LookupView(name)
		if !ok {
			return httpErrorf(http.StatusNotFound, "no query %q (serving: %s)", name, strings.Join(s.reg.Names(), ", "))
		}
		if tr := traceFrom(r.Context()); tr != nil {
			tr.query = e.Name
		}
		return h(w, r, e, view{e: e, db: db, gen: gen})
	}
}

// probeClock times one probe section for the per-query histograms and the
// active trace. A value type with no-op semantics when neither consumer is
// present: the common untraced, unobserved case costs two nil checks.
type probeClock struct {
	qh   *obs.Histogram
	tr   *traceRec
	name string
	t0   time.Time
}

func startProbe(qh *obs.Histogram, tr *traceRec, name string) probeClock {
	pc := probeClock{qh: qh, tr: tr, name: name}
	if qh != nil || tr != nil {
		pc.t0 = time.Now()
	}
	return pc
}

func (pc probeClock) done() {
	if pc.qh == nil && pc.tr == nil {
		return
	}
	d := time.Since(pc.t0)
	if pc.qh != nil {
		pc.qh.Record(d)
	}
	pc.tr.span(pc.name, pc.t0, d)
}

// writeJSON is the reflection-based fallback for cold, registry-shaped
// endpoints (meta, list, metrics, admin). Hot probe responses go through the
// pooled builders in encode.go instead.
func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// renderTuple maps a tuple to its strings through the view's dictionary.
func (v view) renderTuple(t renum.Tuple) []string {
	return renderWith(v.db.Dict(), t)
}

func renderWith(dict *renum.Dict, t renum.Tuple) []string {
	out := make([]string, len(t))
	for i, val := range t {
		out[i] = dict.String(val)
	}
	return out
}

// renderTuples fetches the dictionary once per response, not per tuple —
// this sits on the hot path of large /batch and /page responses.
func (v view) renderTuples(ts []renum.Tuple) [][]string {
	dict := v.db.Dict()
	out := make([][]string, len(ts))
	for i, t := range ts {
		out[i] = renderWith(dict, t)
	}
	return out
}

// parseTuple interns nothing: a value absent from the dictionary cannot be
// part of any answer, so ok=false short-circuits contains/inverted to
// "not an answer" without growing the dictionary on attacker-chosen input.
func (v view) parseTuple(cells []string, arity int) (renum.Tuple, bool, error) {
	if len(cells) != arity {
		return nil, false, httpErrorf(http.StatusBadRequest, "tuple has %d values, query arity is %d", len(cells), arity)
	}
	t, known := lookupCells(v.db.Dict(), cells)
	if !known {
		return nil, false, nil
	}
	return t, true, nil
}

func queryInt64(r *http.Request, name string, def int64) (int64, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, httpErrorf(http.StatusBadRequest, "%s: %v", name, err)
	}
	return v, nil
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return httpErrorf(http.StatusBadRequest, "body: %v", err)
	}
	return nil
}

// rngFor builds the request's random source: deterministic when the client
// passes ?seed=, time-seeded otherwise.
func rngFor(r *http.Request) (*rand.Rand, error) {
	seed, err := queryInt64(r, "seed", time.Now().UnixNano())
	if err != nil {
		return nil, err
	}
	return rand.New(rand.NewSource(seed)), nil
}

// ---------------------------------------------------------------- handlers

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	return writeBody(w, healthzBody)
}

// handleReadyz reports whether the daemon should receive traffic: liveness
// (healthz) says the process runs; readiness says it serves — a published
// generation with entries, WAL replay finished (the daemon sequences that
// before listening), and no drain in progress. Unready is 503 so load
// balancers and kubelet-style probes fail it without parsing the body.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) error {
	_, gen := s.reg.Snapshot()
	enc := getEnc()
	defer enc.release()
	ready := s.Ready()
	if !ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(appendReadyzBody(enc.buf, false, gen))
		return nil
	}
	return writeBody(w, appendReadyzBody(enc.buf, true, gen))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) error {
	_, gen := s.reg.Snapshot()
	return writeJSON(w, map[string]any{"queries": s.reg.Names(), "generation": gen})
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	return writeJSON(w, map[string]any{
		"name":         e.Name,
		"kind":         e.Kind(),
		"count":        e.Count(),
		"head":         e.Head(),
		"query":        e.Text,
		"capabilities": e.H.Capabilities(),
	})
}

func (s *Server) handleCount(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	pc := startProbe(e.histCount(), traceFrom(r.Context()), "probe")
	n := e.Count()
	pc.done()
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendCountBody(enc.buf, n))
}

func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	j, err := queryInt64(r, "j", -1)
	if err != nil {
		return err
	}
	// Validate before coalescing: AccessBatch fails a whole batch on one bad
	// position, and a bad j must not poison the requests it is merged with.
	if j < 0 || j >= e.Count() {
		return httpErrorf(http.StatusBadRequest, "j=%d out of range [0, %d)", j, e.Count())
	}
	// Cache check before the coalescer: a hit skips probe and encoding both.
	// The generation comes from the handler's view, so entry, dictionary and
	// cache key all belong to one snapshot.
	cache := s.anscache
	if cache != nil && e.cacheable {
		if body := cache.get(e.Name, v.gen, j); body != nil {
			return writeBody(w, body)
		}
	} else {
		cache = nil
	}
	enc := getEnc()
	defer enc.release()
	var t renum.Tuple
	if e.coal != nil {
		// The span covers the whole coalescer round: the window wait plus
		// the shared batch probe — that wait is exactly what a latency
		// investigation needs to see.
		pc := startProbe(e.histAccess(), traceFrom(r.Context()), "coalesce")
		t, err = e.coal.Do(j)
		pc.done()
	} else {
		// Direct path: probe into the pooled scratch row — no []Tuple, no
		// per-request answer allocation.
		pc := startProbe(e.histAccess(), traceFrom(r.Context()), "probe")
		t = enc.rowFor(len(e.Head()))
		err = e.H.AccessInto(j, t)
		pc.done()
	}
	if err != nil {
		return err
	}
	body := appendAccessBody(enc.buf, v.db.Dict(), j, t)
	if cache != nil {
		// A miss is the admission signal: the second miss of a position
		// admits these exact bytes (offer copies; body stays pooled).
		cache.offer(e.Name, v.gen, j, body)
	}
	return writeBody(w, body)
}

// streamBatchThreshold: a batch at or below this many positions streams
// sequentially through AccessInto into the pooled scratch row — the library's
// own AccessBatch is serial below its chunk threshold anyway, so no
// parallelism is lost, and the per-request []Tuple materialization is gone.
// Larger batches keep AccessBatchContext's parallel fan-out.
const streamBatchThreshold = 256

// appendJSList parses a comma-separated position list into dst (the pooled
// scratch), with exactly the old strings.Split semantics: segments are
// space-trimmed, empty segments skipped.
func appendJSList(dst []int64, s string) ([]int64, error) {
	for s != "" {
		var part string
		if i := strings.IndexByte(s, ','); i >= 0 {
			part, s = s[:i], s[i+1:]
		} else {
			part, s = s, ""
		}
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		j, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return dst, httpErrorf(http.StatusBadRequest, "js: %v", err)
		}
		dst = append(dst, j)
	}
	return dst, nil
}

// jsInRange reports whether every position can be probed right now.
func jsInRange(js []int64, n int64) bool {
	for _, j := range js {
		if j < 0 || j >= n {
			return false
		}
	}
	return true
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	enc := getEnc()
	defer enc.release()
	var js []int64
	if r.Method == http.MethodPost {
		var body struct {
			Js []int64 `json:"js"`
		}
		if err := decodeBody(r, &body); err != nil {
			return err
		}
		js = body.Js
	} else {
		var err error
		js, err = appendJSList(enc.jsFor(), r.URL.Query().Get("js"))
		enc.js = js[:0] // keep grown scratch pooled
		if err != nil {
			return err
		}
	}
	if int64(len(js)) > s.cfg.MaxBatch {
		return httpErrorf(http.StatusBadRequest, "batch of %d exceeds limit %d", len(js), s.cfg.MaxBatch)
	}
	asWire := wantsWire(r)
	// The span covers probe + encode: buildBatchBody interleaves them.
	pc := startProbe(e.histBatch(), traceFrom(r.Context()), "build")
	body, err := buildBatchBody(r.Context(), e, v.db.Dict(), enc, js, asWire)
	pc.done()
	if err != nil {
		return err
	}
	if asWire {
		return writeWireBody(w, body)
	}
	return writeBody(w, body)
}

func (s *Server) handlePage(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	offset, err := queryInt64(r, "offset", 0)
	if err != nil {
		return err
	}
	limit, err := queryInt64(r, "limit", 10)
	if err != nil {
		return err
	}
	if limit > s.cfg.MaxBatch {
		return httpErrorf(http.StatusBadRequest, "limit %d exceeds %d", limit, s.cfg.MaxBatch)
	}
	if offset < 0 || limit < 0 {
		return httpErrorf(http.StatusBadRequest, "offset and limit must be non-negative")
	}
	enc := getEnc()
	defer enc.release()
	asWire := wantsWire(r)
	pc := startProbe(e.histPage(), traceFrom(r.Context()), "build")
	body, err := buildPageBody(r.Context(), e, v.db.Dict(), enc, offset, limit, asWire)
	pc.done()
	if err != nil {
		return err
	}
	if asWire {
		return writeWireBody(w, body)
	}
	return writeBody(w, body)
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	k, err := queryInt64(r, "k", 1)
	if err != nil {
		return err
	}
	if k < 0 || k > s.cfg.MaxBatch {
		return httpErrorf(http.StatusBadRequest, "k=%d out of range [0, %d]", k, s.cfg.MaxBatch)
	}
	rng, err := rngFor(r)
	if err != nil {
		return err
	}
	smp, err := e.H.Sampler()
	if err != nil {
		return err
	}
	pc := startProbe(e.histSample(), traceFrom(r.Context()), "probe")
	ts, err := smp.SampleN(k, rng)
	pc.done()
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	return writeBody(w, buildSampleBody(v.db.Dict(), enc, ts, !smp.Distinct()))
}

type tupleBody struct {
	Tuple []string `json:"tuple"`
}

func (s *Server) handleContains(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	var body tupleBody
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	t, ok, err := v.parseTuple(body.Tuple, len(e.Head()))
	if err != nil {
		return err
	}
	contains := false
	if ok {
		c, err := e.H.Container()
		if err != nil {
			return err
		}
		contains = c.Contains(t)
	}
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendContainsBody(enc.buf, contains))
}

func (s *Server) handleInverted(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	// Capability check before reading the body: a union (no inverted
	// primitive in the mc-UCQ structure) is 501 via ErrUnsupported.
	inv, err := e.H.Inverter()
	if err != nil {
		return err
	}
	var body tupleBody
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	t, ok, err := v.parseTuple(body.Tuple, len(e.Head()))
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	if ok {
		if j, found := inv.InvertedAccess(t); found {
			return writeBody(w, appendInvertedBody(enc.buf, j, true))
		}
	}
	return writeBody(w, appendInvertedBody(enc.buf, 0, false))
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	if _, err := e.H.Updater(); err != nil {
		return err // static index: 501 via ErrUnsupported
	}
	var body struct {
		Op       string   `json:"op"`
		Relation string   `json:"relation"`
		Tuple    []string `json:"tuple"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	var op wal.Op
	switch body.Op {
	case "insert":
		op = wal.OpInsert
	case "delete":
		op = wal.OpDelete
	default:
		return httpErrorf(http.StatusBadRequest, "op must be insert or delete, got %q", body.Op)
	}
	// ApplyUpdate validates the target relation and arity before interning,
	// logging, or applying anything — an insert aimed at a relation the
	// query never joins must not grow the append-only dictionary (the same
	// unbounded-memory attack the delete path always defended against).
	// Under its update mutex it re-resolves the entry and dictionary from
	// one snapshot load, so a compaction or rebuild publishing between this
	// handler's view and the apply cannot strand the update in a superseded
	// handle or split entry and dictionary across generations. When a WAL is
	// attached, the record is durable before the index changes and this
	// response is the acknowledgment.
	changed, err := s.reg.ApplyUpdate(e, v.db, op, body.Relation, body.Tuple)
	if err != nil {
		if errors.Is(err, errWALAppend) || renum.IsUnsupported(err) {
			return err // 500 / 501 via the route error mapper
		}
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendChangedBody(enc.buf, changed, e.Count()))
}

func (s *Server) handleEnumStart(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	// Cursors need a stable enumeration order across requests — exactly the
	// enumerate capability (dynamic entries lack it: updates shift
	// positions): 501 via ErrUnsupported.
	if !e.H.Has(renum.CapEnumerate) {
		return fmt.Errorf("enumeration cursors: %w (kind %s has no stable order)", renum.ErrUnsupported, e.Kind())
	}
	order := r.URL.Query().Get("order")
	if order == "" {
		order = "enum"
	}
	var nextN func(context.Context, int64) ([]renum.Tuple, error)
	switch order {
	case "enum":
		// Deterministic order = access order: drain sequential positions via
		// the batched probe. Probe errors — including a cancelled draw: the
		// position cursor only advances on success — surface to the client
		// (and leave the cursor alive) rather than masquerading as
		// exhaustion.
		var pos int64
		n := e.Count()
		nextN = func(ctx context.Context, k int64) ([]renum.Tuple, error) {
			if pos >= n {
				return nil, nil
			}
			if k > n-pos {
				k = n - pos
			}
			js := make([]int64, k)
			for i := range js {
				js[i] = pos + int64(i)
			}
			ts, err := e.accessBatch(ctx, js)
			if err != nil {
				return nil, err
			}
			pos += int64(len(ts))
			return ts, nil
		}
	case "random":
		rng, err := rngFor(r)
		if err != nil {
			return err
		}
		p, err := e.H.Permute(rng)
		if err != nil {
			return err
		}
		// Random-order draws are atomic: the permutation consumes its
		// shuffle positions up front, so aborting mid-batch would silently
		// lose those answers for every later request — violating
		// each-answer-exactly-once. Cancellation is honored *between*
		// draws (bounded by MaxCursorDraw per draw), never inside one.
		nextN = func(ctx context.Context, k int64) ([]renum.Tuple, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return p.NextN(k), nil
		}
	default:
		return httpErrorf(http.StatusBadRequest, "order must be enum or random, got %q", order)
	}
	id := s.cursors.Start(e.Name, nextN)
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendCursorBody(enc.buf, id, s.cursors.ttl.Milliseconds()))
}

func (s *Server) handleEnumNext(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	id := r.URL.Query().Get("cursor")
	n, err := queryInt64(r, "n", 1)
	if err != nil {
		return err
	}
	if n <= 0 || n > s.cfg.MaxCursorDraw {
		return httpErrorf(http.StatusBadRequest, "n=%d out of range [1, %d]", n, s.cfg.MaxCursorDraw)
	}
	pc := startProbe(e.histCursor(), traceFrom(r.Context()), "probe")
	ts, done, err := s.cursors.Next(r.Context(), id, e.Name, n)
	pc.done()
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	asWire := wantsWire(r)
	body := buildEnumNextBody(v.db.Dict(), enc, ts, len(e.Head()), done, asWire)
	if asWire {
		return writeWireBody(w, body)
	}
	return writeBody(w, body)
}

func (s *Server) handleEnumClose(w http.ResponseWriter, r *http.Request, e *Entry, v view) error {
	if !s.cursors.Close(r.URL.Query().Get("cursor"), e.Name) {
		return ErrNoCursor
	}
	return writeBody(w, closedBody)
}

// handleMetrics negotiates the exposition format: Prometheus text by
// default (what a scraper expects from /metrics), the original JSON
// document under ?format=json (what the examples and renumload consume).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	if r.URL.Query().Get("format") != "json" {
		return s.handlePrometheus(w)
	}
	uptime, eps := s.metrics.snapshot()
	_, gen := s.reg.Snapshot()
	type coalStats struct {
		Query  string `json:"query"`
		Rounds int64  `json:"rounds"`
		Served int64  `json:"served"`
	}
	var coal []coalStats
	for _, name := range s.reg.Names() {
		if e, ok := s.reg.Lookup(name); ok && e.coal != nil {
			rounds, served := e.coal.Stats()
			coal = append(coal, coalStats{Query: name, Rounds: rounds, Served: served})
		}
	}
	return writeJSON(w, map[string]any{
		"uptime_ms":  uptime.Milliseconds(),
		"generation": gen,
		"cursors":    s.cursors.Len(),
		"endpoints":  eps,
		"coalescer":  coal,
		"wal":        s.reg.WALStats(),
	})
}

func (s *Server) handleAdminLoad(w http.ResponseWriter, r *http.Request) error {
	var body struct {
		Name string `json:"name"`
		CSV  string `json:"csv"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	if body.Name == "" {
		return httpErrorf(http.StatusBadRequest, "name is required")
	}
	if err := s.reg.LoadTable(body.Name, strings.NewReader(body.CSV)); err != nil {
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}
	return writeJSON(w, map[string]any{"loaded": body.Name})
}

func (s *Server) handleAdminRegister(w http.ResponseWriter, r *http.Request) error {
	var body struct {
		Program string `json:"program"`
		Dynamic bool   `json:"dynamic"`
	}
	if err := decodeBody(r, &body); err != nil {
		return err
	}
	names, err := s.reg.Register(body.Program, body.Dynamic)
	if err != nil {
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}
	return writeJSON(w, map[string]any{"registered": names})
}

func (s *Server) handleAdminSave(w http.ResponseWriter, r *http.Request) error {
	if s.cfg.SnapshotDir == "" {
		return httpErrorf(http.StatusBadRequest, "snapshot saving is not configured (start the daemon with -snapshot-dir)")
	}
	path, gen, skipped, err := s.reg.SaveSnapshot(s.cfg.SnapshotDir)
	if err != nil {
		return err
	}
	if skipped == nil {
		skipped = []string{}
	}
	return writeJSON(w, map[string]any{"saved": path, "generation": gen, "skipped": skipped})
}

// handleAdminCompact folds the WAL into a fresh snapshot generation (see
// Registry.Compact). It needs both a WAL (-wal-dir) and a snapshot dir.
func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) error {
	if s.cfg.SnapshotDir == "" {
		return httpErrorf(http.StatusBadRequest, "snapshot saving is not configured (start the daemon with -snapshot-dir)")
	}
	gen, folded, err := s.reg.Compact(s.cfg.SnapshotDir)
	if err != nil {
		if errors.Is(err, errNoWAL) {
			return httpErrorf(http.StatusBadRequest, "%v", err)
		}
		// Snapshot-write, rotation, or rebuild-aside failures are server
		// faults, not client mistakes: 500 via the route error mapper.
		return err
	}
	return writeJSON(w, map[string]any{"generation": gen, "folded": folded})
}

func (s *Server) handleAdminRebuild(w http.ResponseWriter, r *http.Request) error {
	if err := s.reg.Rebuild(); err != nil {
		return httpErrorf(http.StatusBadRequest, "%v", err)
	}
	_, gen := s.reg.Snapshot()
	return writeJSON(w, map[string]any{"rebuilt": true, "generation": gen})
}
