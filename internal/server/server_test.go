package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/load"
)

// rCSV/sCSV mirror the internal/load fixtures:
//
//	r = {(1,2),(1,3),(2,3),(3,1)}   s = {(2,x),(3,y),(3,z),(1,w)}
//
// The tests assert server responses against the library's own probes on the
// same entries rather than hand-counted answers.
const (
	rCSV = "a,b\n1,2\n1,3\n2,3\n3,1\n"
	sCSV = "b,c\n2,x\n3,y\n3,z\n1,w\n"

	joinQ  = "Q(x, y, z) :- r(x, y), s(y, z)."
	unionQ = "U(x, y) :- r(x, y). U(x, y) :- s(x, y)."
	dynQ   = "D(x, y) :- r(x, y)."
)

// newTestServer builds a server over the fixture with a CQ, a UCQ and a
// dynamic entry registered. coal configures the registry's coalescer (the
// zero value disables it).
func newTestServer(t testing.TB, coal CoalesceConfig, cfg Config) (*Server, *Registry) {
	t.Helper()
	db := renum.NewDatabase()
	if err := load.CSV(db, "r", strings.NewReader(rCSV)); err != nil {
		t.Fatal(err)
	}
	if err := load.CSV(db, "s", strings.NewReader(sCSV)); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(db, coal, 0)
	if _, err := reg.Register(joinQ+" "+unionQ, false); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(dynQ, true); err != nil {
		t.Fatal(err)
	}
	s := New(reg, cfg)
	t.Cleanup(s.Close)
	return s, reg
}

// renderTuple maps a tuple through the server's current dictionary (test
// convenience; handlers use their per-request view instead).
func (s *Server) renderTuple(t renum.Tuple) []string {
	db, _ := s.reg.Snapshot()
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = db.Dict().String(v)
	}
	return out
}

// do issues one request against the handler and decodes the JSON response.
func do(t testing.TB, s *Server, method, url, body string, wantStatus int) map[string]any {
	t.Helper()
	raw, status := doRaw(s, method, url, body)
	if status != wantStatus {
		t.Fatalf("%s %s = %d, want %d (body %s)", method, url, status, wantStatus, raw)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
	}
	return m
}

func doRaw(s *Server, method, url, body string) ([]byte, int) {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, url, rd)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec.Body.Bytes(), rec.Code
}

func TestMetaAndCount(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("Q")
	n := e.Count()
	if n == 0 {
		t.Fatal("fixture join is empty")
	}

	m := do(t, s, "GET", "/v1", "", 200)
	if got := fmt.Sprint(m["queries"]); got != "[D Q U]" {
		t.Fatalf("queries = %s", got)
	}

	m = do(t, s, "GET", "/v1/Q", "", 200)
	if m["kind"] != "cq" || int64(m["count"].(float64)) != n {
		t.Fatalf("meta = %v", m)
	}
	m = do(t, s, "GET", "/v1/U", "", 200)
	if m["kind"] != "ucq" {
		t.Fatalf("meta U = %v", m)
	}
	m = do(t, s, "GET", "/v1/D", "", 200)
	if m["kind"] != "dynamic" {
		t.Fatalf("meta D = %v", m)
	}

	m = do(t, s, "GET", "/v1/Q/count", "", 200)
	if int64(m["count"].(float64)) != n {
		t.Fatalf("count = %v, want %d", m["count"], n)
	}

	do(t, s, "GET", "/v1/nope/count", "", 404)
}

func TestAccessMatchesLibrary(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	for _, name := range []string{"Q", "U", "D"} {
		e, _ := reg.Lookup(name)
		for j := int64(0); j < e.Count(); j++ {
			want, err := e.access(j)
			if err != nil {
				t.Fatal(err)
			}
			m := do(t, s, "GET", fmt.Sprintf("/v1/%s/access?j=%d", name, j), "", 200)
			got := m["answer"].([]any)
			for i, v := range want {
				if got[i] != s.renderTuple(renum.Tuple{v})[0] {
					t.Fatalf("%s access(%d) = %v, want %v", name, j, got, want)
				}
			}
		}
		do(t, s, "GET", fmt.Sprintf("/v1/%s/access?j=%d", name, e.Count()), "", 400)
		do(t, s, "GET", "/v1/"+name+"/access?j=-1", "", 400)
		do(t, s, "GET", "/v1/"+name+"/access?j=zap", "", 400)
	}
}

func TestBatchAndPage(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("Q")
	n := e.Count()

	// GET and POST bodies produce the same answers as per-position access.
	get := do(t, s, "GET", "/v1/Q/batch?js=0,2,1,2", "", 200)
	post := do(t, s, "POST", "/v1/Q/batch", `{"js":[0,2,1,2]}`, 200)
	if fmt.Sprint(get["answers"]) != fmt.Sprint(post["answers"]) {
		t.Fatalf("GET %v != POST %v", get["answers"], post["answers"])
	}
	answers := get["answers"].([]any)
	if len(answers) != 4 {
		t.Fatalf("got %d answers, want 4", len(answers))
	}
	if fmt.Sprint(answers[1]) != fmt.Sprint(answers[3]) {
		t.Fatal("duplicate positions must yield equal answers")
	}

	// The full page equals the full batch.
	js := make([]string, n)
	for i := range js {
		js[i] = fmt.Sprint(i)
	}
	batch := do(t, s, "GET", "/v1/Q/batch?js="+strings.Join(js, ","), "", 200)
	page := do(t, s, "GET", fmt.Sprintf("/v1/Q/page?offset=0&limit=%d", n), "", 200)
	if fmt.Sprint(batch["answers"]) != fmt.Sprint(page["answers"]) {
		t.Fatal("page != batch over the same positions")
	}

	// Tail clamping: a page past the end is empty, not an error.
	m := do(t, s, "GET", fmt.Sprintf("/v1/Q/page?offset=%d&limit=5", n+3), "", 200)
	if len(m["answers"].([]any)) != 0 {
		t.Fatalf("past-the-end page = %v", m["answers"])
	}

	do(t, s, "GET", "/v1/Q/batch?js=0,99999", "", 400)
	do(t, s, "GET", "/v1/Q/page?offset=-1&limit=5", "", 400)
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	for _, name := range []string{"Q", "U", "D"} {
		a, _ := doRaw(s, "GET", "/v1/"+name+"/sample?k=3&seed=7", "")
		b, _ := doRaw(s, "GET", "/v1/"+name+"/sample?k=3&seed=7", "")
		if string(a) != string(b) {
			t.Fatalf("%s: same seed, different samples: %s vs %s", name, a, b)
		}
	}
	m := do(t, s, "GET", "/v1/Q/sample?k=3&seed=7", "", 200)
	if len(m["answers"].([]any)) != 3 {
		t.Fatalf("sample = %v", m["answers"])
	}
	do(t, s, "GET", "/v1/Q/sample?k=-1", "", 400)
}

func TestContainsAndInverted(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("Q")
	want, err := e.access(0)
	if err != nil {
		t.Fatal(err)
	}
	cells := s.renderTuple(want)
	quoted, err := json.Marshal(cells)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"tuple":%s}`, quoted)

	m := do(t, s, "POST", "/v1/Q/contains", body, 200)
	if m["contains"] != true {
		t.Fatalf("contains(%v) = %v", cells, m)
	}
	m = do(t, s, "POST", "/v1/Q/inverted", body, 200)
	if m["found"] != true || int64(m["j"].(float64)) != 0 {
		t.Fatalf("inverted(%v) = %v", cells, m)
	}

	// A value the dictionary has never seen cannot be an answer.
	m = do(t, s, "POST", "/v1/Q/contains", `{"tuple":["nope","nope","nope"]}`, 200)
	if m["contains"] != false {
		t.Fatalf("contains(unknown) = %v", m)
	}
	m = do(t, s, "POST", "/v1/Q/inverted", `{"tuple":["nope","nope","nope"]}`, 200)
	if m["found"] != false {
		t.Fatalf("inverted(unknown) = %v", m)
	}

	// Arity mismatch and malformed bodies are client errors.
	do(t, s, "POST", "/v1/Q/contains", `{"tuple":["1"]}`, 400)
	do(t, s, "POST", "/v1/Q/contains", `{"tup`, 400)

	// Inverted access is undefined on unions.
	do(t, s, "POST", "/v1/U/inverted", `{"tuple":["1","2"]}`, 501)
}

func TestCursorLifecycle(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("Q")
	n := e.Count()

	// Deterministic cursor: draining in pages reproduces the batch order.
	m := do(t, s, "POST", "/v1/Q/enum/start?order=enum", "", 200)
	id := m["cursor"].(string)
	var got []string
	for {
		m = do(t, s, "GET", "/v1/Q/enum/next?cursor="+id+"&n=2", "", 200)
		for _, a := range m["answers"].([]any) {
			got = append(got, fmt.Sprint(a))
		}
		if m["done"] == true {
			break
		}
	}
	if int64(len(got)) != n {
		t.Fatalf("cursor drained %d answers, want %d", len(got), n)
	}
	js := make([]string, n)
	for i := range js {
		js[i] = fmt.Sprint(i)
	}
	batch := do(t, s, "GET", "/v1/Q/batch?js="+strings.Join(js, ","), "", 200)
	for i, a := range batch["answers"].([]any) {
		if got[i] != fmt.Sprint(a) {
			t.Fatalf("cursor[%d] = %s, want %s", i, got[i], fmt.Sprint(a))
		}
	}

	// A drained cursor is gone.
	do(t, s, "GET", "/v1/Q/enum/next?cursor="+id+"&n=1", "", 404)

	// Random cursor: same seed reproduces the permutation; the drain covers
	// every answer exactly once.
	m = do(t, s, "POST", "/v1/Q/enum/start?order=random&seed=5", "", 200)
	id = m["cursor"].(string)
	m = do(t, s, "GET", fmt.Sprintf("/v1/Q/enum/next?cursor=%s&n=%d", id, n+1), "", 200)
	perm := m["answers"].([]any)
	if int64(len(perm)) != n || m["done"] != true {
		t.Fatalf("random drain = %d answers done=%v, want %d done", len(perm), m["done"], n)
	}
	seen := map[string]bool{}
	for _, a := range perm {
		seen[fmt.Sprint(a)] = true
	}
	if int64(len(seen)) != n {
		t.Fatalf("permutation repeated answers: %d distinct of %d", len(seen), n)
	}

	// Close drops a live cursor.
	m = do(t, s, "POST", "/v1/Q/enum/start?order=enum", "", 200)
	id = m["cursor"].(string)
	do(t, s, "DELETE", "/v1/Q/enum?cursor="+id, "", 200)
	do(t, s, "GET", "/v1/Q/enum/next?cursor="+id+"&n=1", "", 404)

	// A cursor is scoped to the query it was started on: presenting it under
	// another query's path (or an unregistered one) is an unknown cursor.
	m = do(t, s, "POST", "/v1/Q/enum/start?order=enum", "", 200)
	id = m["cursor"].(string)
	do(t, s, "GET", "/v1/U/enum/next?cursor="+id+"&n=1", "", 404)
	do(t, s, "GET", "/v1/nope/enum/next?cursor="+id+"&n=1", "", 404)
	do(t, s, "DELETE", "/v1/U/enum?cursor="+id, "", 404)
	do(t, s, "GET", "/v1/Q/enum/next?cursor="+id+"&n=1", "", 200) // still alive under Q
	do(t, s, "DELETE", "/v1/Q/enum?cursor="+id, "", 200)

	// Cursors on dynamic entries are rejected; bad order too.
	do(t, s, "POST", "/v1/D/enum/start", "", 501)
	do(t, s, "POST", "/v1/Q/enum/start?order=zigzag", "", 400)
	do(t, s, "GET", "/v1/Q/enum/next?cursor=bogus&n=1", "", 404)
}

func TestCursorTTLEviction(t *testing.T) {
	store := newCursorStore(10*time.Millisecond, time.Hour)
	id := store.Start("Q", func(context.Context, int64) ([]renum.Tuple, error) { return nil, nil })
	if store.Len() != 1 {
		t.Fatal("cursor not registered")
	}
	// Lazy expiry: after the TTL, Next refuses even before the janitor runs.
	time.Sleep(20 * time.Millisecond)
	if _, _, err := store.Next(context.Background(), id, "Q", 1); err != ErrNoCursor {
		t.Fatalf("expired Next err = %v, want ErrNoCursor", err)
	}
	// The janitor frees the memory.
	store.evict(time.Now())
	if store.Len() != 0 {
		t.Fatalf("janitor left %d cursors", store.Len())
	}
	store.Shutdown()
}

func TestDynamicUpdate(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("D")
	n := e.Count()

	m := do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`, 200)
	if m["changed"] != true || int64(m["count"].(float64)) != n+1 {
		t.Fatalf("insert = %v, want changed with count %d", m, n+1)
	}
	// The new value is queryable.
	m = do(t, s, "POST", "/v1/D/contains", `{"tuple":["9","9"]}`, 200)
	if m["contains"] != true {
		t.Fatal("inserted tuple not contained")
	}
	// Duplicate insert is a no-op.
	m = do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`, 200)
	if m["changed"] != false {
		t.Fatalf("duplicate insert = %v", m)
	}
	m = do(t, s, "POST", "/v1/D/update", `{"op":"delete","relation":"r","tuple":["9","9"]}`, 200)
	if m["changed"] != true || int64(m["count"].(float64)) != n {
		t.Fatalf("delete = %v", m)
	}

	// Deleting a tuple with a never-seen value is a no-op that must not grow
	// the append-only dictionary (attacker-chosen input).
	dictLen := reg.snap.Load().db.Dict().Len()
	m = do(t, s, "POST", "/v1/D/update", `{"op":"delete","relation":"r","tuple":["ghost","ghost"]}`, 200)
	if m["changed"] != false {
		t.Fatalf("delete of unknown value = %v", m)
	}
	if got := reg.snap.Load().db.Dict().Len(); got != dictLen {
		t.Fatalf("delete interned %d new values", got-dictLen)
	}

	do(t, s, "POST", "/v1/D/update", `{"op":"upsert","relation":"r","tuple":["9","9"]}`, 400)
	do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"zap","tuple":["9","9"]}`, 400)
	// Static indexes reject updates.
	do(t, s, "POST", "/v1/Q/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`, 501)
}

func TestAdminFlow(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})

	// Load a fresh table and register a query over it.
	do(t, s, "POST", "/admin/load", `{"name":"t","csv":"u,v\na,b\nc,d\n"}`, 200)
	m := do(t, s, "POST", "/admin/register", `{"program":"T(u, v) :- t(u, v)."}`, 200)
	if fmt.Sprint(m["registered"]) != "[T]" {
		t.Fatalf("registered = %v", m["registered"])
	}
	m = do(t, s, "GET", "/v1/T/count", "", 200)
	if int64(m["count"].(float64)) != 2 {
		t.Fatalf("T count = %v", m["count"])
	}

	// Replacing the table does not disturb the live index until rebuild.
	do(t, s, "POST", "/admin/load", `{"name":"t","csv":"u,v\na,b\nc,d\ne,f\n"}`, 200)
	m = do(t, s, "GET", "/v1/T/count", "", 200)
	if int64(m["count"].(float64)) != 2 {
		t.Fatalf("pre-rebuild count = %v, want the old snapshot's 2", m["count"])
	}
	_, genBefore := reg.Snapshot()
	do(t, s, "POST", "/admin/rebuild", "", 200)
	_, genAfter := reg.Snapshot()
	if genAfter <= genBefore {
		t.Fatalf("generation %d -> %d, want increase", genBefore, genAfter)
	}
	m = do(t, s, "GET", "/v1/T/count", "", 200)
	if int64(m["count"].(float64)) != 3 {
		t.Fatalf("post-rebuild count = %v, want 3", m["count"])
	}

	// Bad inputs are client errors.
	do(t, s, "POST", "/admin/load", `{"csv":"a\n1\n"}`, 400)
	do(t, s, "POST", "/admin/load", `{"name":"x","csv":""}`, 400)
	do(t, s, "POST", "/admin/register", `{"program":"Q(x) :- "}`, 400)
	// A cyclic query cannot be indexed.
	do(t, s, "POST", "/admin/register",
		`{"program":"C(x, y, z) :- r(x, y), r(y, z), r(z, x)."}`, 400)
}

func TestAdminDisabled(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{AdminDisabled: true})
	_, status := doRaw(s, "POST", "/admin/rebuild", "")
	if status != 404 {
		t.Fatalf("admin on disabled server = %d, want 404", status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{Window: time.Millisecond}, Config{})
	do(t, s, "GET", "/v1/Q/count", "", 200)
	do(t, s, "GET", "/v1/Q/access?j=0", "", 200)
	do(t, s, "GET", "/v1/Q/access?j=999999", "", 400)

	m := do(t, s, "GET", "/metrics?format=json", "", 200)
	eps := m["endpoints"].([]any)
	byName := map[string]map[string]any{}
	for _, e := range eps {
		ep := e.(map[string]any)
		byName[ep["endpoint"].(string)] = ep
	}
	if c := byName["count"]; c == nil || int64(c["count"].(float64)) != 1 {
		t.Fatalf("count endpoint metrics = %v", byName["count"])
	}
	acc := byName["access"]
	if acc == nil || int64(acc["count"].(float64)) != 2 || int64(acc["errors"].(float64)) != 1 {
		t.Fatalf("access endpoint metrics = %v", acc)
	}
	if acc["p50_ms"] == nil || acc["p99_ms"] == nil {
		t.Fatalf("missing latency quantiles: %v", acc)
	}
	// The coalescer section lists the static entries.
	if fmt.Sprint(m["coalescer"]) == "[]" {
		t.Fatal("no coalescer stats reported")
	}
	if _, ok := m["generation"]; !ok {
		t.Fatal("no generation in metrics")
	}
}

func TestHealthz(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	m := do(t, s, "GET", "/healthz", "", 200)
	if m["ok"] != true {
		t.Fatalf("healthz = %v", m)
	}
}

// TestMetaReportsCapabilities: the metadata endpoint advertises each
// entry's capability set, so clients discover what an entry supports
// instead of inferring it from the kind string.
func TestMetaReportsCapabilities(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	caps := func(name string) string {
		m := do(t, s, "GET", "/v1/"+name, "", 200)
		return fmt.Sprint(m["capabilities"])
	}
	if got := caps("Q"); got != "[enumerate contains invert sample explain snapshot]" {
		t.Fatalf("Q capabilities = %s", got)
	}
	if got := caps("U"); got != "[enumerate contains sample snapshot]" {
		t.Fatalf("U capabilities = %s", got)
	}
	if got := caps("D"); got != "[contains invert sample update snapshot]" {
		t.Fatalf("D capabilities = %s", got)
	}
}

// TestUnsupportedProbesAre501: every capability miss surfaces through
// renum.ErrUnsupported and maps to 501 uniformly — /inverted on a union,
// /update on a static entry, cursors on a dynamic one.
func TestUnsupportedProbesAre501(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	for _, tc := range []struct{ method, url, body string }{
		{"POST", "/v1/U/inverted", `{"tuple":["1","2"]}`},
		{"POST", "/v1/Q/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`},
		{"POST", "/v1/U/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`},
		{"POST", "/v1/D/enum/start", ""},
		{"POST", "/v1/D/enum/start?order=random", ""},
	} {
		m := do(t, s, tc.method, tc.url, tc.body, 501)
		if !strings.Contains(fmt.Sprint(m["error"]), "unsupported") {
			t.Fatalf("%s %s error = %v, want an ErrUnsupported-derived message", tc.method, tc.url, m["error"])
		}
	}
}

// TestBatchHonorsRequestContext: a request whose context is already
// cancelled must not be served — the handler propagates ctx into the
// batched probe and reports the cancellation instead of answers.
func TestBatchHonorsRequestContext(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/Q/batch?js=0,1,2", strings.NewReader("")).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code == 200 {
		t.Fatalf("cancelled batch served 200: %s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "context canceled") {
		t.Fatalf("cancelled batch body = %s, want a context cancellation", rec.Body.String())
	}
	// The entry is unharmed: the same batch succeeds on a live context.
	do(t, s, "GET", "/v1/Q/batch?js=0,1,2", "", 200)
}

// TestRandomCursorSurvivesCancelledDraw: a cancelled request on an
// order=random cursor must not consume answers — draws are atomic, the
// cursor stays alive, and a later full drain still delivers every answer
// exactly once.
func TestRandomCursorSurvivesCancelledDraw(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("Q")
	n := e.Count()

	m := do(t, s, "POST", "/v1/Q/enum/start?order=random&seed=11", "", 200)
	id := m["cursor"].(string)

	// A request whose context is already cancelled fails without drawing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", fmt.Sprintf("/v1/Q/enum/next?cursor=%s&n=%d", id, n), strings.NewReader("")).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code == 200 {
		t.Fatalf("cancelled cursor draw served 200: %s", rec.Body.String())
	}

	// The cursor is alive and nothing was lost: the full drain still yields
	// every answer exactly once.
	m = do(t, s, "GET", fmt.Sprintf("/v1/Q/enum/next?cursor=%s&n=%d", id, n+1), "", 200)
	perm := m["answers"].([]any)
	if int64(len(perm)) != n || m["done"] != true {
		t.Fatalf("post-cancel drain = %d answers done=%v, want %d done", len(perm), m["done"], n)
	}
	seen := map[string]bool{}
	for _, a := range perm {
		seen[fmt.Sprint(a)] = true
	}
	if int64(len(seen)) != n {
		t.Fatalf("post-cancel drain lost answers: %d distinct of %d", len(seen), n)
	}
}

// TestUnionSampleAndPageParity: the UCQ entry serves /sample and /page with
// the same semantics as the CQ path (distinct samples, page ≡ batch) — the
// API-parity satellite surfaced over HTTP.
func TestUnionSampleAndPageParity(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	e, _ := reg.Lookup("U")
	n := e.Count()

	m := do(t, s, "GET", fmt.Sprintf("/v1/U/sample?k=%d&seed=3", n+5), "", 200)
	if m["with_replacement"] != false {
		t.Fatalf("union sampling must be distinct, got %v", m)
	}
	got := m["answers"].([]any)
	if int64(len(got)) != n {
		t.Fatalf("union sample clamped to %d, want Count %d", len(got), n)
	}
	seen := map[string]bool{}
	for _, a := range got {
		seen[fmt.Sprint(a)] = true
	}
	if int64(len(seen)) != n {
		t.Fatalf("union sample repeated answers: %d distinct of %d", len(seen), n)
	}

	js := make([]string, n)
	for i := range js {
		js[i] = fmt.Sprint(i)
	}
	batch := do(t, s, "GET", "/v1/U/batch?js="+strings.Join(js, ","), "", 200)
	page := do(t, s, "GET", fmt.Sprintf("/v1/U/page?offset=0&limit=%d", n), "", 200)
	if fmt.Sprint(batch["answers"]) != fmt.Sprint(page["answers"]) {
		t.Fatal("union page != union batch over the same positions")
	}
}
