package server

import (
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// allocSamples bounds the per-endpoint allocs/req reservoir. Sampling is
// 1-in-allocSampleEvery requests (process-wide), so the window covers a long
// stretch of traffic with negligible overhead.
const (
	allocSamples     = 64
	allocSampleEvery = 64
)

// endpointMetrics holds one endpoint's instruments. It is resolved once at
// route-registration time (the mux closes over it; the fast loop indexes an
// array by opcode), so the record path is pointer-chasing plus atomics —
// no map lookup, no label rendering, no lock, no allocation.
//
// Latency goes into a log-bucketed obs.Histogram with exact counts: the
// /metrics quantiles cover every request ever served, not a recent sample
// window like the old 2048-entry ring, which silently forgot the early
// distribution under sustained load.
type endpointMetrics struct {
	name   string
	count  *obs.Counter
	errors *obs.Counter
	bytes  *obs.Counter
	lat    *obs.Histogram

	// Sampled heap-allocation deltas around whole requests. The delta is a
	// process-wide counter, so concurrent requests bleed into each other's
	// samples: the median below is an estimate, not an exact attribution.
	allocMu   sync.Mutex
	allocRing [allocSamples]float64
	allocN    int
	allocNext int
}

// observe records one request.
func (ep *endpointMetrics) observe(d time.Duration, isErr bool, bytes int64) {
	ep.count.Inc()
	if isErr {
		ep.errors.Inc()
	}
	if bytes > 0 {
		ep.bytes.Add(uint64(bytes))
	}
	ep.lat.Record(d)
}

// observeAllocs records one sampled whole-request allocation delta.
func (ep *endpointMetrics) observeAllocs(allocs float64) {
	ep.allocMu.Lock()
	ep.allocRing[ep.allocNext] = allocs
	ep.allocNext = (ep.allocNext + 1) % allocSamples
	if ep.allocN < allocSamples {
		ep.allocN++
	}
	ep.allocMu.Unlock()
}

// metricsRecorder owns the per-endpoint instruments and their Prometheus
// registration. The mutex guards creation only; recording is lock-free.
type metricsRecorder struct {
	seq   atomic.Uint64
	start time.Time
	reg   *obs.Registry
	mu    sync.Mutex
	byEP  map[string]*endpointMetrics
}

func newMetricsRecorder(reg *obs.Registry) *metricsRecorder {
	return &metricsRecorder{start: time.Now(), reg: reg, byEP: make(map[string]*endpointMetrics)}
}

// endpoint resolves (or creates) the named endpoint's instruments,
// registering its label set with the Prometheus families. Called at route
// registration, never per request.
func (m *metricsRecorder) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ep := m.byEP[name]; ep != nil {
		return ep
	}
	labels := obs.Labels("endpoint", name)
	ep := &endpointMetrics{
		name:   name,
		count:  m.reg.Counter("renum_http_requests_total", "Requests served, by endpoint.", labels),
		errors: m.reg.Counter("renum_http_request_errors_total", "Requests that failed with a server-attributed error (client disconnects excluded).", labels),
		bytes:  m.reg.Counter("renum_http_response_bytes_total", "Response body bytes written, by endpoint.", labels),
		lat:    m.reg.Histogram("renum_http_request_duration_seconds", "Whole-request latency, by endpoint.", labels),
	}
	m.byEP[name] = ep
	return ep
}

// sampleTick reports whether this request should measure an allocation delta
// (1 in allocSampleEvery, process-wide).
func (m *metricsRecorder) sampleTick() bool {
	return m.seq.Add(1)%allocSampleEvery == 0
}

// heapAllocsSample is pooled so reading the counter does not itself allocate
// (the read brackets a handler; its own garbage would inflate the delta).
var heapAllocsSamplePool = sync.Pool{
	New: func() any {
		s := make([]metrics.Sample, 1)
		s[0].Name = "/gc/heap/allocs:objects"
		return &s
	},
}

// heapAllocObjects reads the process-lifetime count of allocated heap
// objects from runtime/metrics (no stop-the-world, unlike ReadMemStats).
func heapAllocObjects() uint64 {
	sp := heapAllocsSamplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value.Uint64()
	heapAllocsSamplePool.Put(sp)
	return v
}

// EndpointSummary is the exported per-endpoint metrics document. Its JSON
// field names are a compatibility surface (the dashboard examples and
// renumload -metrics-url decode it); TestMetricsJSONShapeStable pins them.
type EndpointSummary struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	BytesOut int64   `json:"bytes_out"`
	Window   int     `json:"latency_window"` // observations behind the quantiles (now: all of them)
	MeanMs   float64 `json:"mean_ms"`
	MedianMs float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	StdDevMs float64 `json:"stddev_ms"`
	// AllocsPerReqEst is the median of sampled whole-request heap-allocation
	// deltas. Concurrent requests share the underlying counter, so treat it
	// as an estimate (exact when the daemon serves one request at a time).
	AllocsPerReqEst float64 `json:"allocs_per_req_est"`
	AllocsWindow    int     `json:"allocs_window"`
}

const maxInt = int(^uint(0) >> 1)

// snapshot summarizes every endpoint seen so far, sorted by endpoint name.
// Quantiles come from the histogram (≤ 1/16 relative error, full history);
// mean and max are exact.
func (m *metricsRecorder) snapshot() (uptime time.Duration, eps []EndpointSummary) {
	m.mu.Lock()
	byEP := make([]*endpointMetrics, 0, len(m.byEP))
	for _, ep := range m.byEP {
		byEP = append(byEP, ep)
	}
	m.mu.Unlock()

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, ep := range byEP {
		s := ep.lat.Snapshot()
		window := maxInt
		if s.Count < uint64(maxInt) {
			window = int(s.Count)
		}
		ep.allocMu.Lock()
		allocEst := 0.0
		allocN := ep.allocN
		if allocN > 0 {
			as := make([]float64, allocN)
			copy(as, ep.allocRing[:allocN])
			sort.Float64s(as)
			allocEst = as[(allocN-1)/2]
		}
		ep.allocMu.Unlock()
		eps = append(eps, EndpointSummary{
			Endpoint:        ep.name,
			Count:           int64(ep.count.Value()),
			Errors:          int64(ep.errors.Value()),
			BytesOut:        int64(ep.bytes.Value()),
			Window:          window,
			MeanMs:          ms(s.Mean()),
			MedianMs:        ms(s.Quantile(0.50)),
			P90Ms:           ms(s.Quantile(0.90)),
			P99Ms:           ms(s.Quantile(0.99)),
			MaxMs:           ms(time.Duration(s.MaxNs)),
			StdDevMs:        ms(s.StdDev()),
			AllocsPerReqEst: allocEst,
			AllocsWindow:    allocN,
		})
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })
	return time.Since(m.start), eps
}
