package server

import (
	"sort"
	"sync"
	"time"

	"repro/internal/stats"
)

// latencySamples bounds the per-endpoint latency reservoir: quantiles are
// computed over the most recent window of this many requests.
const latencySamples = 2048

// endpointMetrics accumulates one endpoint's counters and a ring of recent
// latencies.
type endpointMetrics struct {
	count  int64
	errors int64
	ring   [latencySamples]float64 // milliseconds
	n      int                     // filled slots
	next   int                     // ring cursor
}

// metricsRecorder aggregates per-endpoint request counts and latency
// summaries. One mutex guards everything: the critical section is a few
// stores, so contention stays negligible next to the probes themselves.
type metricsRecorder struct {
	mu    sync.Mutex
	start time.Time
	byEP  map[string]*endpointMetrics
}

func newMetricsRecorder() *metricsRecorder {
	return &metricsRecorder{start: time.Now(), byEP: make(map[string]*endpointMetrics)}
}

// observe records one request against the named endpoint.
func (m *metricsRecorder) observe(endpoint string, d time.Duration, isErr bool) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	ep := m.byEP[endpoint]
	if ep == nil {
		ep = &endpointMetrics{}
		m.byEP[endpoint] = ep
	}
	ep.count++
	if isErr {
		ep.errors++
	}
	ep.ring[ep.next] = ms
	ep.next = (ep.next + 1) % latencySamples
	if ep.n < latencySamples {
		ep.n++
	}
	m.mu.Unlock()
}

// EndpointSummary is the exported per-endpoint metrics document.
type EndpointSummary struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	Window   int     `json:"latency_window"` // samples behind the quantiles
	MeanMs   float64 `json:"mean_ms"`
	MedianMs float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	StdDevMs float64 `json:"stddev_ms"`
}

// snapshot summarizes every endpoint seen so far, sorted by endpoint name.
func (m *metricsRecorder) snapshot() (uptime time.Duration, eps []EndpointSummary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, ep := range m.byEP {
		xs := make([]float64, ep.n)
		copy(xs, ep.ring[:ep.n])
		s := stats.Summarize(xs)
		sort.Float64s(xs)
		p90, p99 := 0.0, 0.0
		if len(xs) > 0 {
			p90 = stats.Quantile(xs, 0.90)
			p99 = stats.Quantile(xs, 0.99)
		}
		eps = append(eps, EndpointSummary{
			Endpoint: name,
			Count:    ep.count,
			Errors:   ep.errors,
			Window:   ep.n,
			MeanMs:   s.Mean,
			MedianMs: s.Median,
			P90Ms:    p90,
			P99Ms:    p99,
			MaxMs:    s.Max,
			StdDevMs: s.StdDev,
		})
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })
	return time.Since(m.start), eps
}
