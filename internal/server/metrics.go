package server

import (
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// latencySamples bounds the per-endpoint latency reservoir: quantiles are
// computed over the most recent window of this many requests.
const latencySamples = 2048

// allocSamples bounds the per-endpoint allocs/req reservoir. Sampling is
// 1-in-allocSampleEvery requests (process-wide), so the window covers a long
// stretch of traffic with negligible overhead.
const (
	allocSamples     = 64
	allocSampleEvery = 64
)

// endpointMetrics accumulates one endpoint's counters and a ring of recent
// latencies.
type endpointMetrics struct {
	count  int64
	errors int64
	bytes  int64
	ring   [latencySamples]float64 // milliseconds
	n      int                     // filled slots
	next   int                     // ring cursor

	// Sampled heap-allocation deltas around whole requests. The delta is a
	// process-wide counter, so concurrent requests bleed into each other's
	// samples: the median below is an estimate, not an exact attribution.
	allocRing [allocSamples]float64
	allocN    int
	allocNext int
}

// metricsRecorder aggregates per-endpoint request counts and latency
// summaries. One mutex guards everything: the critical section is a few
// stores, so contention stays negligible next to the probes themselves.
type metricsRecorder struct {
	seq   atomic.Uint64
	mu    sync.Mutex
	start time.Time
	byEP  map[string]*endpointMetrics
}

func newMetricsRecorder() *metricsRecorder {
	return &metricsRecorder{start: time.Now(), byEP: make(map[string]*endpointMetrics)}
}

func (m *metricsRecorder) endpointLocked(endpoint string) *endpointMetrics {
	ep := m.byEP[endpoint]
	if ep == nil {
		ep = &endpointMetrics{}
		m.byEP[endpoint] = ep
	}
	return ep
}

// observe records one request against the named endpoint.
func (m *metricsRecorder) observe(endpoint string, d time.Duration, isErr bool, bytes int64) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	ep := m.endpointLocked(endpoint)
	ep.count++
	if isErr {
		ep.errors++
	}
	ep.bytes += bytes
	ep.ring[ep.next] = ms
	ep.next = (ep.next + 1) % latencySamples
	if ep.n < latencySamples {
		ep.n++
	}
	m.mu.Unlock()
}

// sampleTick reports whether this request should measure an allocation delta
// (1 in allocSampleEvery, process-wide).
func (m *metricsRecorder) sampleTick() bool {
	return m.seq.Add(1)%allocSampleEvery == 0
}

// observeAllocs records one sampled whole-request allocation delta.
func (m *metricsRecorder) observeAllocs(endpoint string, allocs float64) {
	m.mu.Lock()
	ep := m.endpointLocked(endpoint)
	ep.allocRing[ep.allocNext] = allocs
	ep.allocNext = (ep.allocNext + 1) % allocSamples
	if ep.allocN < allocSamples {
		ep.allocN++
	}
	m.mu.Unlock()
}

// heapAllocsSample is pooled so reading the counter does not itself allocate
// (the read brackets a handler; its own garbage would inflate the delta).
var heapAllocsSamplePool = sync.Pool{
	New: func() any {
		s := make([]metrics.Sample, 1)
		s[0].Name = "/gc/heap/allocs:objects"
		return &s
	},
}

// heapAllocObjects reads the process-lifetime count of allocated heap
// objects from runtime/metrics (no stop-the-world, unlike ReadMemStats).
func heapAllocObjects() uint64 {
	sp := heapAllocsSamplePool.Get().(*[]metrics.Sample)
	metrics.Read(*sp)
	v := (*sp)[0].Value.Uint64()
	heapAllocsSamplePool.Put(sp)
	return v
}

// EndpointSummary is the exported per-endpoint metrics document.
type EndpointSummary struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	BytesOut int64   `json:"bytes_out"`
	Window   int     `json:"latency_window"` // samples behind the quantiles
	MeanMs   float64 `json:"mean_ms"`
	MedianMs float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	StdDevMs float64 `json:"stddev_ms"`
	// AllocsPerReqEst is the median of sampled whole-request heap-allocation
	// deltas. Concurrent requests share the underlying counter, so treat it
	// as an estimate (exact when the daemon serves one request at a time).
	AllocsPerReqEst float64 `json:"allocs_per_req_est"`
	AllocsWindow    int     `json:"allocs_window"`
}

// snapshot summarizes every endpoint seen so far, sorted by endpoint name.
func (m *metricsRecorder) snapshot() (uptime time.Duration, eps []EndpointSummary) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, ep := range m.byEP {
		xs := make([]float64, ep.n)
		copy(xs, ep.ring[:ep.n])
		s := stats.Summarize(xs)
		sort.Float64s(xs)
		p90, p99 := 0.0, 0.0
		if len(xs) > 0 {
			p90 = stats.Quantile(xs, 0.90)
			p99 = stats.Quantile(xs, 0.99)
		}
		allocEst := 0.0
		if ep.allocN > 0 {
			as := make([]float64, ep.allocN)
			copy(as, ep.allocRing[:ep.allocN])
			sort.Float64s(as)
			allocEst = stats.Quantile(as, 0.50)
		}
		eps = append(eps, EndpointSummary{
			Endpoint:        name,
			Count:           ep.count,
			Errors:          ep.errors,
			BytesOut:        ep.bytes,
			Window:          ep.n,
			MeanMs:          s.Mean,
			MedianMs:        s.Median,
			P90Ms:           p90,
			P99Ms:           p99,
			MaxMs:           s.Max,
			StdDevMs:        s.StdDev,
			AllocsPerReqEst: allocEst,
			AllocsWindow:    ep.allocN,
		})
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })
	return time.Since(m.start), eps
}
