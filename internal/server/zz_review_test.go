package server

import (
	"bufio"
	"fmt"
	"net"
	"testing"
	"time"
)

// HEAD vs std server: does the fast fallback send a body for HEAD?
func TestReviewHeadBody(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fmt.Fprintf(c, "HEAD /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 4096)
	n, _ := c.Read(buf)
	t.Logf("HEAD response:\n%q", buf[:n])
}

// cursor + escaped n param: scratch aliasing.
func TestReviewCursorScratchAlias(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)
	// start a cursor via fallback POST
	fmt.Fprintf(c, "POST /v1/Q/enum/start HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
	r1 := readFastResponse(t, br)
	t.Logf("start: %d %s", r1.status, r1.body)
	var cur string
	fmt.Sscanf(string(r1.body), `{"cursor":%q`, &cur)
	if cur == "" {
		// crude parse
		b := r1.body
		i := 11 // {"cursor":"
		j := i
		for b[j] != '"' {
			j++
		}
		cur = string(b[i:j])
	}
	t.Logf("cursor=%q", cur)
	// ask with unescaped cursor, escaped n — n=%31 is "1"
	fmt.Fprintf(c, "GET /v1/Q/enum/next?cursor=%%36%%36%s&n=%%31 HTTP/1.1\r\nHost: x\r\n\r\n", cur[2:])
	r2 := readFastResponse(t, br)
	t.Logf("next (escaped cursor then escaped n): %d %s", r2.status, r2.body)
}
