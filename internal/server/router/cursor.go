package router

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// Cursor-session errors; identical text (and HTTP mappings) to the shard
// daemons' own cursor store — a client cannot tell from an error body
// whether it hit a daemon or the router, and transcript diffs against a
// single daemon stay byte-clean even on error probes.
var (
	// ErrNoCursor: unknown or expired cursor id.
	ErrNoCursor = errors.New("server: unknown or expired cursor")
	// ErrCursorBusy: a second consumer tried to read a cursor mid-call.
	ErrCursorBusy = errors.New("server: cursor is in use by another request")
)

// cursor is one stateful enumeration session held at the router: the
// position counter (order=enum) or shuffle state (order=random) lives here,
// and each draw scatter-gathers the resolved positions across the shards.
// Single-consumer like the daemon-side store: a concurrent read fails fast
// with ErrCursorBusy.
type cursor struct {
	id      string
	query   string
	nextN   func(ctx context.Context, n int64) ([][]string, error)
	busy    sync.Mutex
	expires time.Time // guarded by store.mu
}

type cursorStore struct {
	mu   sync.Mutex
	m    map[string]*cursor
	ttl  time.Duration
	stop chan struct{}
	wg   sync.WaitGroup
}

func newCursorStore(ttl, sweep time.Duration) *cursorStore {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	if sweep <= 0 {
		sweep = ttl / 4
		if sweep < time.Second {
			sweep = time.Second
		}
	}
	s := &cursorStore{m: make(map[string]*cursor), ttl: ttl, stop: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(sweep)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				s.evict(now)
			}
		}
	}()
	return s
}

func (s *cursorStore) Start(query string, nextN func(context.Context, int64) ([][]string, error)) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	id := hex.EncodeToString(b[:])
	c := &cursor{id: id, query: query, nextN: nextN}
	s.mu.Lock()
	c.expires = time.Now().Add(s.ttl)
	s.m[id] = c
	s.mu.Unlock()
	return id
}

// Next draws up to n rows, refreshing the TTL on admission and again on
// completion (a draw slower than the TTL must not expire itself). done when
// the draw comes back short; a failed draw — including a shard fault
// mid-batch — leaves the cursor alive so the client can retry once the
// fleet recovers.
func (s *cursorStore) Next(ctx context.Context, id, query string, n int64) (rows [][]string, done bool, err error) {
	now := time.Now()
	s.mu.Lock()
	c, ok := s.m[id]
	if !ok || c.query != query || now.After(c.expires) {
		s.mu.Unlock()
		return nil, false, ErrNoCursor
	}
	c.expires = now.Add(s.ttl)
	s.mu.Unlock()

	if !c.busy.TryLock() {
		return nil, false, ErrCursorBusy
	}
	defer c.busy.Unlock()
	defer func() {
		s.mu.Lock()
		if _, ok := s.m[id]; ok {
			c.expires = time.Now().Add(s.ttl)
		}
		s.mu.Unlock()
	}()
	rows, err = c.nextN(ctx, n)
	if err != nil {
		return nil, false, err
	}
	if int64(len(rows)) < n {
		s.mu.Lock()
		delete(s.m, id)
		s.mu.Unlock()
		return rows, true, nil
	}
	return rows, false, nil
}

func (s *cursorStore) Close(id, query string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[id]
	if !ok || c.query != query {
		return false
	}
	delete(s.m, id)
	return true
}

func (s *cursorStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *cursorStore) evict(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, c := range s.m {
		if !now.After(c.expires) {
			continue
		}
		// Never evict mid-draw: a random-order draw has already consumed its
		// shuffle positions. TryLock under store.mu cannot deadlock against
		// Next (which never takes busy while holding store.mu).
		if !c.busy.TryLock() {
			continue
		}
		delete(s.m, id)
		c.busy.Unlock()
	}
}

func (s *cursorStore) Shutdown() {
	close(s.stop)
	s.wg.Wait()
}
