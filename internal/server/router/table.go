package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/fenwick"
)

// table is one immutable view of the shard fleet: which daemons serve, what
// queries they agree on, and how each query's global position space maps
// onto per-shard windows. Readers load it atomically; the scrape loop swaps
// in successors.
type table struct {
	shards  []string // base URLs, in fan-out (= global concatenation) order
	gen     uint64   // max generation across shards
	queries map[string]*route
	names   []string // sorted query names
}

// route is the prefix-sum routing state for one query: shard i serves the
// contiguous global position window [starts[i], starts[i]+counts[i]).
// Concatenating the shards' local enumerations in shard order reproduces the
// unsharded global order (the library's partition contract), so global
// position j lives on shard tree.FindPrefix(j) at local j-starts[shard].
type route struct {
	name   string
	kind   string
	text   string
	head   []string
	caps   []string
	counts []int64
	starts []int64
	tree   *fenwick.Tree
	total  int64
}

// locate routes a global position to (shard, local position).
func (rt *route) locate(j int64) (shard int, local int64) {
	s := rt.tree.FindPrefix(j)
	return s, j - rt.starts[s]
}

// shardMeta is the /v1/{query} response a shard daemon serves.
type shardMeta struct {
	Name         string   `json:"name"`
	Kind         string   `json:"kind"`
	Count        int64    `json:"count"`
	Head         []string `json:"head"`
	Query        string   `json:"query"`
	Capabilities []string `json:"capabilities"`
}

type shardList struct {
	Generation uint64   `json:"generation"`
	Queries    []string `json:"queries"`
}

type shardReady struct {
	Generation uint64 `json:"generation"`
	Ready      bool   `json:"ready"`
}

// loadShards resolves the fleet: the static list, or (when ShardsFile is
// set) the newline-separated URL list at that path — typically a file the
// operator drops into the shared snapshot dir, so the fleet can be re-shaped
// without restarting the router (the scrape loop re-reads it every period).
func (r *Router) loadShards() ([]string, error) {
	if r.cfg.ShardsFile == "" {
		return r.cfg.Shards, nil
	}
	data, err := os.ReadFile(r.cfg.ShardsFile)
	if err != nil {
		return nil, fmt.Errorf("shards file: %w", err)
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out, nil
}

// scrape builds a fresh table by interrogating every shard: /readyz must
// report ready, /v1 lists the queries, /v1/{query} supplies head, kind and
// this shard's count. All shards must serve the same query set with the
// same head — a disagreement means the fleet was booted inconsistently and
// the router refuses the table rather than serving torn answers.
func (r *Router) scrape(ctx context.Context) (*table, error) {
	shards, err := r.loadShards()
	if err != nil {
		return nil, err
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("no shards configured")
	}
	t := &table{shards: shards, queries: map[string]*route{}}
	for i, base := range shards {
		var ready shardReady
		if err := r.getJSON(ctx, base, "/readyz", &ready); err != nil {
			return nil, err
		}
		if !ready.Ready {
			return nil, &shardError{shard: base, err: fmt.Errorf("not ready (generation %d)", ready.Generation)}
		}
		if ready.Generation > t.gen {
			t.gen = ready.Generation
		}
		var list shardList
		if err := r.getJSON(ctx, base, "/v1", &list); err != nil {
			return nil, err
		}
		if i == 0 {
			t.names = append([]string{}, list.Queries...)
			sort.Strings(t.names)
		} else if len(list.Queries) != len(t.names) {
			return nil, &shardError{shard: base, err: fmt.Errorf("serves %d queries, shard %s serves %d", len(list.Queries), shards[0], len(t.names))}
		}
		for _, name := range list.Queries {
			var meta shardMeta
			if err := r.getJSON(ctx, base, "/v1/"+name, &meta); err != nil {
				return nil, err
			}
			rt := t.queries[name]
			if rt == nil {
				if i != 0 {
					return nil, &shardError{shard: base, err: fmt.Errorf("serves query %s unknown to shard %s", name, shards[0])}
				}
				rt = &route{
					name:   name,
					kind:   meta.Kind,
					text:   meta.Query,
					head:   meta.Head,
					caps:   meta.Capabilities,
					counts: make([]int64, len(shards)),
				}
				t.queries[name] = rt
			} else if strings.Join(meta.Head, ",") != strings.Join(rt.head, ",") {
				return nil, &shardError{shard: base, err: fmt.Errorf("query %s head %v disagrees with shard %s head %v", name, meta.Head, shards[0], rt.head)}
			}
			rt.counts[i] = meta.Count
		}
	}
	for _, rt := range t.queries {
		rt.starts = make([]int64, len(rt.counts)+1)
		for i, c := range rt.counts {
			rt.starts[i+1] = rt.starts[i] + c
		}
		rt.tree = fenwick.New(rt.counts)
		rt.total = rt.tree.Total()
	}
	return t, nil
}

// shardError is the typed fault for a shard-hop failure: the router's 502
// names the failing daemon so an operator reads the blast radius straight
// off the error body.
type shardError struct {
	shard string
	err   error
}

func (e *shardError) Error() string { return fmt.Sprintf("shard %s: %v", e.shard, e.err) }

func (e *shardError) Unwrap() error { return e.err }

// ------------------------------------------------------------- shard client

// do performs one HTTP exchange with a shard, instrumented: the per-shard
// request counter, latency histogram and error counter all tick here, and a
// failure marks the shard unhealthy (flipping /readyz to 503) until the next
// successful scrape proves it back.
func (r *Router) do(req *http.Request, base string) (*http.Response, error) {
	m := r.shardMetrics(base)
	m.reqs.Inc()
	t0 := time.Now()
	resp, err := r.client.Do(req)
	m.lat.Record(time.Since(t0))
	if err != nil {
		m.errs.Inc()
		r.markUnhealthy(base)
		return nil, &shardError{shard: base, err: err}
	}
	return resp, nil
}

// fetch runs one request and returns the response body, mapping non-2xx
// responses (with their JSON error bodies) to shardError.
func (r *Router) fetch(ctx context.Context, method, base, path, accept string, body io.Reader) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, base+path, body)
	if err != nil {
		return nil, err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.do(req, base)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		r.shardMetrics(base).errs.Inc()
		r.markUnhealthy(base)
		return nil, &shardError{shard: base, err: err}
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		err := &shardError{shard: base, err: fmt.Errorf("status %d: %s", resp.StatusCode, msg)}
		// 4xx from a shard is the router's routing bug or a client input the
		// shard rejected — not a fleet fault; only 5xx flips health.
		if resp.StatusCode >= 500 {
			r.shardMetrics(base).errs.Inc()
			r.markUnhealthy(base)
		}
		return nil, err
	}
	return data, nil
}

func (r *Router) getJSON(ctx context.Context, base, path string, v any) error {
	data, err := r.fetch(ctx, http.MethodGet, base, path, "", nil)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return &shardError{shard: base, err: fmt.Errorf("%s: %v", path, err)}
	}
	return nil
}
