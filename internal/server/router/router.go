// Package router is the scale-out tier: one stateless HTTP daemon that
// composes K shard daemons (renumd -shard-slice i/K) back into a single
// query surface. Each shard serves a contiguous window of the global
// enumeration order as local positions; the router scrapes per-shard counts
// into a prefix-sum table and routes global positions to (shard, local) in
// O(log K).
//
// # Byte-identity
//
// The router's probe responses are byte-identical to a single unsharded
// daemon's: bodies are rebuilt with the same alphabetical-key builders and
// escaping table (internal/jsonx), enumeration cursors draw sequential
// global positions exactly like the daemon's, and random-order cursors and
// /sample consume a seeded rng exactly like the library backends (one
// lazy Fisher–Yates over the global count). Shard-to-router hops negotiate
// the binary wire format (internal/wire) so fan-out bandwidth does not pay
// JSON costs twice.
//
// # Degradation
//
// The router degrades honestly rather than silently: /readyz is 503 until
// every shard has scraped ready, any shard fault during a probe is a typed
// 502 naming the failing daemon (and flips /readyz until a scrape proves
// the fleet back), and a mid-batch shard death fails that request without
// corrupting cursor state — the cursor only advances on success, so the
// client resumes cleanly once the shard returns.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/shuffle"
	"repro/internal/wire"
)

// Config tunes a Router.
type Config struct {
	// Shards is the static fleet: base URLs (http://host:port) in shard
	// order. Shard order IS the global enumeration order — it must match the
	// -shard-slice indexes the daemons were booted with.
	Shards []string
	// ShardsFile, when set, overrides Shards with a newline-separated URL
	// list read from this path (re-read every refresh period) — typically a
	// file in the fleet's shared snapshot dir.
	ShardsFile string
	// Refresh is the scrape period for counts and health (0 = 2s).
	Refresh time.Duration
	// Client performs shard requests (nil = 10s-timeout default client).
	Client *http.Client
	// MaxBatch bounds one /batch or /page request (0 = 1<<16).
	MaxBatch int64
	// MaxCursorDraw bounds n of one /enum/next call (0 = 1<<16).
	MaxCursorDraw int64
	// CursorTTL evicts idle enumeration sessions (0 = 5 minutes).
	CursorTTL time.Duration
	// CursorSweep is the janitor period (0 = TTL/4, min 1s).
	CursorSweep time.Duration
	// Logger receives scrape-failure lines. Nil means slog.Default().
	Logger *slog.Logger
}

// shardMetrics is one shard's instrument set, resolved once per shard.
type shardMetricsSet struct {
	reqs    *obs.Counter
	errs    *obs.Counter
	lat     *obs.Histogram
	healthy *obs.Gauge
	up      atomic.Bool
}

// Router is the HTTP face of a shard fleet.
type Router struct {
	cfg    Config
	client *http.Client
	logger *slog.Logger

	table   atomic.Pointer[table]
	cursors *cursorStore
	mux     *http.ServeMux

	obs       *obs.Registry
	fanouts   *obs.Counter // number of scatter-gather rounds
	fanoutSum *obs.Counter // total sub-requests across rounds (sum of widths)
	scrapes   *obs.Counter
	scrapeErr *obs.Counter

	mu     sync.Mutex // guards shards map growth
	shards map[string]*shardMetricsSet

	draining atomic.Bool
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New wires a router. Call Start to begin scraping (the first successful
// scrape flips /readyz), and Close to stop background work.
func New(cfg Config) *Router {
	if cfg.Refresh <= 0 {
		cfg.Refresh = 2 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1 << 16
	}
	if cfg.MaxCursorDraw <= 0 {
		cfg.MaxCursorDraw = 1 << 16
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	reg := obs.NewRegistry()
	r := &Router{
		cfg:       cfg,
		client:    client,
		logger:    logger,
		cursors:   newCursorStore(cfg.CursorTTL, cfg.CursorSweep),
		mux:       http.NewServeMux(),
		obs:       reg,
		fanouts:   reg.Counter("renum_shard_fanout_total", "Scatter-gather rounds issued by the router.", ""),
		fanoutSum: reg.Counter("renum_shard_fanout_width_total", "Total shard sub-requests across scatter-gather rounds (divide by renum_shard_fanout_total for mean width).", ""),
		scrapes:   reg.Counter("renum_shard_scrapes_total", "Routing-table scrape attempts.", ""),
		scrapeErr: reg.Counter("renum_shard_scrape_errors_total", "Routing-table scrapes that failed.", ""),
		shards:    map[string]*shardMetricsSet{},
		stop:      make(chan struct{}),
	}
	reg.GaugeFunc("renum_router_generation", "Max shard generation in the current routing table.", "", func() float64 {
		if t := r.table.Load(); t != nil {
			return float64(t.gen)
		}
		return 0
	})
	reg.GaugeFunc("renum_router_cursors_live", "Live router-held enumeration cursors.", "", func() float64 {
		return float64(r.cursors.Len())
	})
	r.route("GET /healthz", r.handleHealthz)
	r.route("GET /readyz", r.handleReadyz)
	r.route("GET /metrics", r.handleMetrics)
	r.route("GET /v1", r.handleList)
	r.route("GET /v1/{query}", r.query(r.handleMeta))
	r.route("GET /v1/{query}/count", r.query(r.handleCount))
	r.route("GET /v1/{query}/access", r.query(r.handleAccess))
	r.route("GET /v1/{query}/batch", r.query(r.handleBatch))
	r.route("POST /v1/{query}/batch", r.query(r.handleBatch))
	r.route("GET /v1/{query}/page", r.query(r.handlePage))
	r.route("GET /v1/{query}/sample", r.query(r.handleSample))
	r.route("POST /v1/{query}/contains", r.query(r.handleContains))
	r.route("POST /v1/{query}/inverted", r.query(r.handleInverted))
	r.route("POST /v1/{query}/update", r.query(r.handleUpdate))
	r.route("POST /v1/{query}/enum/start", r.query(r.handleEnumStart))
	r.route("GET /v1/{query}/enum/next", r.query(r.handleEnumNext))
	r.route("DELETE /v1/{query}/enum", r.query(r.handleEnumClose))
	return r
}

// Handler returns the root handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Start launches the scrape loop. The returned channel closes after the
// first scrape attempt (success or not), so a booting daemon can wait for
// the fleet before accepting traffic without racing the first request.
func (r *Router) Start() <-chan struct{} {
	first := make(chan struct{})
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.refresh()
		close(first)
		tick := time.NewTicker(r.cfg.Refresh)
		defer tick.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-tick.C:
				r.refresh()
			}
		}
	}()
	return first
}

// Refresh scrapes the fleet once, synchronously (tests and boot paths).
func (r *Router) Refresh(ctx context.Context) error {
	r.scrapes.Inc()
	t, err := r.scrape(ctx)
	if err != nil {
		r.scrapeErr.Inc()
		return err
	}
	r.table.Store(t)
	// A full successful scrape is the proof that flips failed shards back
	// to healthy.
	for _, base := range t.shards {
		m := r.shardMetrics(base)
		m.up.Store(true)
		m.healthy.Set(1)
	}
	return nil
}

func (r *Router) refresh() {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.Refresh+10*time.Second)
	defer cancel()
	if err := r.Refresh(ctx); err != nil {
		r.logger.Warn("router: scrape failed", slog.String("error", err.Error()))
	}
}

// SetReady flips the drain flag (false = /readyz reports 503 regardless of
// fleet health; used at the top of a shutdown drain).
func (r *Router) SetReady(ready bool) { r.draining.Store(!ready) }

// Ready reports the /readyz verdict: not draining, a routing table exists,
// and every shard in it is healthy.
func (r *Router) Ready() bool {
	if r.draining.Load() {
		return false
	}
	t := r.table.Load()
	if t == nil {
		return false
	}
	for _, base := range t.shards {
		if !r.shardMetrics(base).up.Load() {
			return false
		}
	}
	return true
}

// Close stops the scrape loop and cursor janitor.
func (r *Router) Close() {
	r.draining.Store(true)
	close(r.stop)
	r.wg.Wait()
	r.cursors.Shutdown()
}

// shardMetrics resolves (lazily creating) the instrument set for one shard.
func (r *Router) shardMetrics(base string) *shardMetricsSet {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.shards[base]
	if !ok {
		labels := obs.Labels("shard", base)
		m = &shardMetricsSet{
			reqs:    r.obs.Counter("renum_shard_requests_total", "Requests the router sent to each shard daemon.", labels),
			errs:    r.obs.Counter("renum_shard_request_errors_total", "Shard requests that failed (transport error or 5xx).", labels),
			lat:     r.obs.Histogram("renum_shard_request_duration_seconds", "Latency of router-to-shard requests.", labels),
			healthy: r.obs.Gauge("renum_shard_healthy", "1 when the shard's last interaction succeeded, 0 after a fault (until a scrape proves it back).", labels),
		}
		m.up.Store(true)
		m.healthy.Set(1)
		r.shards[base] = m
	}
	return m
}

func (r *Router) markUnhealthy(base string) {
	m := r.shardMetrics(base)
	m.up.Store(false)
	m.healthy.Set(0)
}

// ------------------------------------------------------------------ errors

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func httpErrorf(status int, format string, args ...any) error {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

const statusClientClosedRequest = 499

func errorStatus(err error) int {
	var he *httpError
	var se *shardError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.As(err, &se):
		// The shard hop failed: the router is fine, the upstream is not —
		// 502, with the failing daemon named in the body.
		return http.StatusBadGateway
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return statusClientClosedRequest
	case renum.IsUnsupported(err):
		return http.StatusNotImplemented
	case errors.Is(err, renum.ErrOutOfBounds):
		return http.StatusBadRequest
	case errors.Is(err, ErrNoCursor):
		return http.StatusNotFound
	case errors.Is(err, ErrCursorBusy):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	e := getEnc()
	w.Write(appendErrorBody(e.buf, msg))
	e.release()
}

func writeBody(w http.ResponseWriter, body []byte) error {
	w.Header().Set("Content-Type", "application/json")
	_, err := w.Write(body)
	return err
}

func writeWireBody(w http.ResponseWriter, body []byte) error {
	w.Header().Set("Content-Type", wire.ContentType)
	_, err := w.Write(body)
	return err
}

func (r *Router) route(pattern string, h func(w http.ResponseWriter, req *http.Request) error) {
	r.mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
		if err := h(w, req); err != nil {
			writeError(w, errorStatus(err), err.Error())
		}
	})
}

// query resolves the {query} path element against the current routing
// table. No table yet (fleet never scraped ready) is a 503: the router
// knows nothing, which is different from knowing the query does not exist.
func (r *Router) query(h func(w http.ResponseWriter, req *http.Request, t *table, rt *route) error) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, req *http.Request) error {
		t := r.table.Load()
		if t == nil {
			return httpErrorf(http.StatusServiceUnavailable, "no routing table yet (shards not scraped ready)")
		}
		name := req.PathValue("query")
		rt, ok := t.queries[name]
		if !ok {
			return httpErrorf(http.StatusNotFound, "no query %q (serving: %s)", name, strings.Join(t.names, ", "))
		}
		return h(w, req, t, rt)
	}
}

// ---------------------------------------------------------------- handlers

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) error {
	return writeBody(w, healthzBody)
}

func (r *Router) handleReadyz(w http.ResponseWriter, req *http.Request) error {
	var gen uint64
	if t := r.table.Load(); t != nil {
		gen = t.gen
	}
	enc := getEnc()
	defer enc.release()
	if !r.Ready() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(appendReadyzBody(enc.buf, false, gen))
		return nil
	}
	return writeBody(w, appendReadyzBody(enc.buf, true, gen))
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return r.obs.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

func (r *Router) handleList(w http.ResponseWriter, req *http.Request) error {
	t := r.table.Load()
	if t == nil {
		return httpErrorf(http.StatusServiceUnavailable, "no routing table yet (shards not scraped ready)")
	}
	return writeJSON(w, map[string]any{"queries": t.names, "generation": t.gen})
}

func (r *Router) handleMeta(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	return writeJSON(w, map[string]any{
		"name":         rt.name,
		"kind":         rt.kind,
		"count":        rt.total,
		"head":         rt.head,
		"query":        rt.text,
		"capabilities": rt.caps,
	})
}

func (r *Router) handleCount(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendCountBody(enc.buf, rt.total))
}

func (r *Router) handleAccess(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	j, err := queryInt64(req, "j", -1)
	if err != nil {
		return err
	}
	if j < 0 || j >= rt.total {
		return httpErrorf(http.StatusBadRequest, "j=%d out of range [0, %d)", j, rt.total)
	}
	sh, local := rt.locate(j)
	var body struct {
		Answer []string `json:"answer"`
		J      int64    `json:"j"`
	}
	if err := r.getJSON(req.Context(), t.shards[sh], "/v1/"+rt.name+"/access?j="+strconv.FormatInt(local, 10), &body); err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	// The shard answered with its local position; the client asked in global
	// coordinates, so the response carries the global j back.
	return writeBody(w, appendAccessBody(enc.buf, j, body.Answer))
}

func decodeBody(req *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, req.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return httpErrorf(http.StatusBadRequest, "body: %v", err)
	}
	return nil
}

func queryInt64(req *http.Request, name string, def int64) (int64, error) {
	s := req.URL.Query().Get(name)
	if s == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, httpErrorf(http.StatusBadRequest, "%s: %v", name, err)
	}
	return v, nil
}

// appendJSList mirrors the daemon's comma-list parsing exactly: segments
// space-trimmed, empty segments skipped.
func appendJSList(dst []int64, s string) ([]int64, error) {
	for s != "" {
		var part string
		if i := strings.IndexByte(s, ','); i >= 0 {
			part, s = s[:i], s[i+1:]
		} else {
			part, s = s, ""
		}
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		j, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return dst, httpErrorf(http.StatusBadRequest, "js: %v", err)
		}
		dst = append(dst, j)
	}
	return dst, nil
}

func wantsWire(req *http.Request) bool {
	for _, part := range strings.Split(req.Header.Get("Accept"), ",") {
		part = strings.TrimSpace(part)
		if i := strings.IndexByte(part, ';'); i >= 0 {
			part = strings.TrimSpace(part[:i])
		}
		if part == wire.ContentType {
			return true
		}
	}
	return false
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	enc := getEnc()
	defer enc.release()
	var js []int64
	if req.Method == http.MethodPost {
		var body struct {
			Js []int64 `json:"js"`
		}
		if err := decodeBody(req, &body); err != nil {
			return err
		}
		js = body.Js
	} else {
		var err error
		js, err = appendJSList(enc.jsFor(), req.URL.Query().Get("js"))
		enc.js = js[:0]
		if err != nil {
			return err
		}
	}
	if int64(len(js)) > r.cfg.MaxBatch {
		return httpErrorf(http.StatusBadRequest, "batch of %d exceeds limit %d", len(js), r.cfg.MaxBatch)
	}
	rows, err := r.scatterBatch(req.Context(), t, rt, js)
	if err != nil {
		return err
	}
	if wantsWire(req) {
		return writeWireBody(w, appendWireRows(enc.buf, rows, len(rt.head), 0, 0))
	}
	buf := openAnswersBody(enc.buf)
	buf = appendAnswersRows(buf, rows)
	return writeBody(w, closeAnswersBody(buf))
}

// scatterBatch resolves arbitrary global positions: validated up front (one
// bad position fails the whole batch, exactly like the library), split per
// shard through the prefix-sum table, fanned out concurrently, scattered
// back into request order.
func (r *Router) scatterBatch(ctx context.Context, t *table, rt *route, js []int64) ([][]string, error) {
	for _, j := range js {
		if j < 0 || j >= rt.total {
			return nil, renum.ErrOutOfBounds
		}
	}
	out := make([][]string, len(js))
	if len(js) == 0 {
		return out, nil
	}
	perJS := make([][]int64, len(t.shards))
	perAt := make([][]int, len(t.shards))
	for i, j := range js {
		sh, local := rt.locate(j)
		perJS[sh] = append(perJS[sh], local)
		perAt[sh] = append(perAt[sh], i)
	}
	reqs := make([]shardDraw, 0, len(t.shards))
	for sh, local := range perJS {
		if len(local) > 0 {
			reqs = append(reqs, shardDraw{shard: sh, js: local, at: perAt[sh]})
		}
	}
	return out, r.fanOut(ctx, t, reqs, func(ctx context.Context, _ int, d shardDraw) error {
		rows, err := r.shardBatch(ctx, t.shards[d.shard], rt.name, d.js)
		if err != nil {
			return err
		}
		if len(rows) != len(d.js) {
			return &shardError{shard: t.shards[d.shard], err: fmt.Errorf("batch returned %d rows for %d positions", len(rows), len(d.js))}
		}
		for i, row := range rows {
			out[d.at[i]] = row
		}
		return nil
	})
}

// shardDraw is one shard's portion of a scatter-gather round.
type shardDraw struct {
	shard int
	js    []int64 // local positions (batch) — nil for page draws
	at    []int   // request slots (batch)
	lo, n int64   // local window (page)
}

// fanOut runs one sub-request per shard portion concurrently and collects
// the first error. Fan-out width lands in the router metrics.
func (r *Router) fanOut(ctx context.Context, t *table, reqs []shardDraw, do func(context.Context, int, shardDraw) error) error {
	r.fanouts.Inc()
	r.fanoutSum.Add(uint64(len(reqs)))
	if len(reqs) == 1 {
		return do(ctx, 0, reqs[0])
	}
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, d := range reqs {
		wg.Add(1)
		go func(i int, d shardDraw) {
			defer wg.Done()
			errs[i] = do(ctx, i, d)
		}(i, d)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// shardBatch posts local positions to one shard's /batch, negotiating the
// binary wire format for the hop, and returns the parsed rows.
func (r *Router) shardBatch(ctx context.Context, base, query string, js []int64) ([][]string, error) {
	body := []byte(`{"js":[`)
	for i, j := range js {
		if i > 0 {
			body = append(body, ',')
		}
		body = strconv.AppendInt(body, j, 10)
	}
	body = append(body, ']', '}')
	data, err := r.fetch(ctx, http.MethodPost, base, "/v1/"+query+"/batch", wire.ContentType, strings.NewReader(string(body)))
	if err != nil {
		return nil, err
	}
	_, rows, err := wire.Parse(data)
	if err != nil {
		r.markUnhealthy(base)
		return nil, &shardError{shard: base, err: fmt.Errorf("wire parse: %v", err)}
	}
	return rows, nil
}

// shardPage fetches one shard's local window [lo, lo+n) via /page (wire hop).
func (r *Router) shardPage(ctx context.Context, base, query string, lo, n int64) ([][]string, error) {
	path := fmt.Sprintf("/v1/%s/page?offset=%d&limit=%d", query, lo, n)
	data, err := r.fetch(ctx, http.MethodGet, base, path, wire.ContentType, nil)
	if err != nil {
		return nil, err
	}
	_, rows, err := wire.Parse(data)
	if err != nil {
		r.markUnhealthy(base)
		return nil, &shardError{shard: base, err: fmt.Errorf("wire parse: %v", err)}
	}
	if int64(len(rows)) != n {
		return nil, &shardError{shard: base, err: fmt.Errorf("page returned %d rows for window of %d", len(rows), n)}
	}
	return rows, nil
}

func (r *Router) handlePage(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	offset, err := queryInt64(req, "offset", 0)
	if err != nil {
		return err
	}
	limit, err := queryInt64(req, "limit", 10)
	if err != nil {
		return err
	}
	if limit > r.cfg.MaxBatch {
		return httpErrorf(http.StatusBadRequest, "limit %d exceeds %d", limit, r.cfg.MaxBatch)
	}
	if offset < 0 || limit < 0 {
		return httpErrorf(http.StatusBadRequest, "offset and limit must be non-negative")
	}
	rows, err := r.gatherPage(req.Context(), t, rt, offset, limit)
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	if wantsWire(req) {
		return writeWireBody(w, appendWireRows(enc.buf, rows, len(rt.head), 0, uint64(offset)))
	}
	buf := openAnswersBody(enc.buf)
	buf = appendAnswersRows(buf, rows)
	return writeBody(w, closeAnswersOffsetBody(buf, offset))
}

// gatherPage resolves the contiguous global window [offset, offset+limit):
// each shard's intersection with the window is one local page request, and
// the shard results concatenate in shard order — which IS global order, by
// the partition contract. Tail clamping mirrors the daemon: offset past the
// end is an empty page, an overshooting limit is shortened.
func (r *Router) gatherPage(ctx context.Context, t *table, rt *route, offset, limit int64) ([][]string, error) {
	k := limit
	if offset >= rt.total {
		k = 0
	} else if k > rt.total-offset {
		k = rt.total - offset
	}
	if k == 0 {
		return [][]string{}, nil
	}
	var reqs []shardDraw
	for sh := range t.shards {
		shLo, shHi := rt.starts[sh], rt.starts[sh+1]
		lo, hi := max64(offset, shLo), min64(offset+k, shHi)
		if lo >= hi {
			continue
		}
		reqs = append(reqs, shardDraw{shard: sh, lo: lo - shLo, n: hi - lo})
	}
	parts := make([][][]string, len(reqs))
	err := r.fanOut(ctx, t, reqs, func(ctx context.Context, i int, d shardDraw) error {
		rows, err := r.shardPage(ctx, t.shards[d.shard], rt.name, d.lo, d.n)
		if err != nil {
			return err
		}
		parts[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([][]string, 0, k)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// rngFor mirrors the daemon: deterministic under ?seed=, time-seeded
// otherwise.
func rngFor(req *http.Request) (*rand.Rand, error) {
	seed, err := queryInt64(req, "seed", time.Now().UnixNano())
	if err != nil {
		return nil, err
	}
	return rand.New(rand.NewSource(seed)), nil
}

func (r *Router) handleSample(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	k, err := queryInt64(req, "k", 1)
	if err != nil {
		return err
	}
	if k < 0 || k > r.cfg.MaxBatch {
		return httpErrorf(http.StatusBadRequest, "k=%d out of range [0, %d]", k, r.cfg.MaxBatch)
	}
	rng, err := rngFor(req)
	if err != nil {
		return err
	}
	// The shards are static slices, so the global sample is distinct — and
	// drawing a lazy Fisher–Yates prefix over the global count consumes the
	// seeded rng exactly like the library's sampler: same seed, same
	// positions, same bytes as the unsharded daemon.
	js := drawPositions(rt.total, k, rng)
	rows, err := r.scatterBatch(req.Context(), t, rt, js)
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	buf := openAnswersBody(enc.buf)
	buf = appendAnswersRows(buf, rows)
	return writeBody(w, closeAnswersWithReplacementBody(buf, false))
}

// drawPositions draws min(k, n) distinct positions via the canonical lazy
// Fisher–Yates prefix.
func drawPositions(n, k int64, rng *rand.Rand) []int64 {
	if k > n {
		k = n
	}
	shuf := shuffle.New(n, rng)
	js := make([]int64, 0, k)
	for int64(len(js)) < k {
		j, ok := shuf.Next()
		if !ok {
			break
		}
		js = append(js, j)
	}
	return js
}

type tupleBody struct {
	Tuple []string `json:"tuple"`
}

// forwardTuple re-posts a tuple probe to shard daemons in shard order until
// hit (the shards partition the answer space, so at most one can claim it).
func (r *Router) forwardTuple(ctx context.Context, t *table, rt *route, path string, tuple []string, hit func(shard int, data []byte) (bool, error)) error {
	body, err := json.Marshal(tupleBody{Tuple: tuple})
	if err != nil {
		return err
	}
	for sh, base := range t.shards {
		data, err := r.fetch(ctx, http.MethodPost, base, "/v1/"+rt.name+path, "", strings.NewReader(string(body)))
		if err != nil {
			return err
		}
		found, err := hit(sh, data)
		if err != nil || found {
			return err
		}
	}
	return nil
}

func (r *Router) handleContains(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	if !hasCap(rt, string(renum.CapContains)) {
		return fmt.Errorf("contains: %w (kind %s)", renum.ErrUnsupported, rt.kind)
	}
	var body tupleBody
	if err := decodeBody(req, &body); err != nil {
		return err
	}
	if len(body.Tuple) != len(rt.head) {
		return httpErrorf(http.StatusBadRequest, "tuple has %d values, query arity is %d", len(body.Tuple), len(rt.head))
	}
	contains := false
	err := r.forwardTuple(req.Context(), t, rt, "/contains", body.Tuple, func(sh int, data []byte) (bool, error) {
		var cb struct {
			Contains bool `json:"contains"`
		}
		if err := json.Unmarshal(data, &cb); err != nil {
			return false, &shardError{shard: t.shards[sh], err: err}
		}
		contains = cb.Contains
		return cb.Contains, nil
	})
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendContainsBody(enc.buf, contains))
}

func (r *Router) handleInverted(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	if !hasCap(rt, string(renum.CapInvert)) {
		return fmt.Errorf("inverted access: %w (kind %s)", renum.ErrUnsupported, rt.kind)
	}
	var body tupleBody
	if err := decodeBody(req, &body); err != nil {
		return err
	}
	if len(body.Tuple) != len(rt.head) {
		return httpErrorf(http.StatusBadRequest, "tuple has %d values, query arity is %d", len(body.Tuple), len(rt.head))
	}
	foundJ, found := int64(0), false
	err := r.forwardTuple(req.Context(), t, rt, "/inverted", body.Tuple, func(sh int, data []byte) (bool, error) {
		var ib struct {
			Found bool  `json:"found"`
			J     int64 `json:"j"`
		}
		if err := json.Unmarshal(data, &ib); err != nil {
			return false, &shardError{shard: t.shards[sh], err: err}
		}
		if ib.Found {
			// The shard found it at a local position; the global position
			// re-bases through the shard's window start.
			foundJ, found = rt.starts[sh]+ib.J, true
		}
		return ib.Found, nil
	})
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendInvertedBody(enc.buf, foundJ, found))
}

func (r *Router) handleUpdate(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	// A sharded fleet is static by construction (shard slices reject
	// updatable entries); the router mirrors the daemon's vocabulary: 501.
	return fmt.Errorf("updates through the router: %w (shard slices are static)", renum.ErrUnsupported)
}

func hasCap(rt *route, c string) bool {
	for _, have := range rt.caps {
		if have == c {
			return true
		}
	}
	return false
}

func (r *Router) handleEnumStart(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	if !hasCap(rt, string(renum.CapEnumerate)) {
		return fmt.Errorf("enumeration cursors: %w (kind %s has no stable order)", renum.ErrUnsupported, rt.kind)
	}
	order := req.URL.Query().Get("order")
	if order == "" {
		order = "enum"
	}
	var nextN func(context.Context, int64) ([][]string, error)
	switch order {
	case "enum":
		// Sequential global positions: each draw is one contiguous window,
		// gathered with the page fan-out. The position only advances on
		// success, so a shard fault mid-draw loses nothing — the client
		// retries the same window once the shard returns.
		var pos int64
		n := rt.total
		nextN = func(ctx context.Context, k int64) ([][]string, error) {
			if pos >= n {
				return nil, nil
			}
			if k > n-pos {
				k = n - pos
			}
			rows, err := r.gatherPage(ctx, t, rt, pos, k)
			if err != nil {
				return nil, err
			}
			pos += int64(len(rows))
			return rows, nil
		}
	case "random":
		rng, err := rngFor(req)
		if err != nil {
			return err
		}
		// One lazy Fisher–Yates over the global count, positions drawn
		// serially per request — the same rng consumption as the library's
		// Permutation, so same-seed draws are byte-identical to a single
		// daemon's. Draws are atomic (positions are consumed up front);
		// a failed scatter re-draws nothing and the cursor stays alive, so
		// the positions of a failed draw ARE lost to that cursor — exactly
		// the each-answer-at-most-once reading a fleet can honor.
		shuf := shuffle.New(rt.total, rng)
		nextN = func(ctx context.Context, k int64) ([][]string, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if rem := shuf.Remaining(); k > rem {
				k = rem
			}
			js := make([]int64, 0, k)
			for int64(len(js)) < k {
				j, ok := shuf.Next()
				if !ok {
					break
				}
				js = append(js, j)
			}
			return r.scatterBatch(ctx, t, rt, js)
		}
	default:
		return httpErrorf(http.StatusBadRequest, "order must be enum or random, got %q", order)
	}
	id := r.cursors.Start(rt.name, nextN)
	enc := getEnc()
	defer enc.release()
	return writeBody(w, appendCursorBody(enc.buf, id, r.cursors.ttl.Milliseconds()))
}

func (r *Router) handleEnumNext(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	id := req.URL.Query().Get("cursor")
	n, err := queryInt64(req, "n", 1)
	if err != nil {
		return err
	}
	if n <= 0 || n > r.cfg.MaxCursorDraw {
		return httpErrorf(http.StatusBadRequest, "n=%d out of range [1, %d]", n, r.cfg.MaxCursorDraw)
	}
	rows, done, err := r.cursors.Next(req.Context(), id, rt.name, n)
	if err != nil {
		return err
	}
	enc := getEnc()
	defer enc.release()
	if wantsWire(req) {
		var flags uint32
		if done {
			flags = wire.FlagDone
		}
		return writeWireBody(w, appendWireRows(enc.buf, rows, len(rt.head), flags, 0))
	}
	buf := openAnswersBody(enc.buf)
	buf = appendAnswersRows(buf, rows)
	return writeBody(w, closeAnswersDoneBody(buf, done))
}

func (r *Router) handleEnumClose(w http.ResponseWriter, req *http.Request, t *table, rt *route) error {
	if !r.cursors.Close(req.URL.Query().Get("cursor"), rt.name) {
		return ErrNoCursor
	}
	return writeBody(w, closedBody)
}
