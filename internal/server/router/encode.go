package router

import (
	"strconv"
	"sync"

	"repro/internal/jsonx"
	"repro/internal/wire"
)

// The router re-encodes shard rows (already-rendered string cells) into the
// exact bodies internal/server's pooled builders produce: keys in
// alphabetical order, encoding/json's escaping table (internal/jsonx), a
// trailing '\n'. A transcript captured against the router must diff clean
// against one captured from a single daemon — that byte-identity is what the
// shard-smoke CI job enforces.

var (
	healthzBody = []byte("{\"ok\":true}\n")
	closedBody  = []byte("{\"closed\":true}\n")
)

type enc struct {
	buf []byte
	js  []int64
}

var encPool = sync.Pool{New: func() any { return &enc{buf: make([]byte, 0, 4096)} }}

func getEnc() *enc {
	e := encPool.Get().(*enc)
	e.buf = e.buf[:0]
	return e
}

func (e *enc) release() { encPool.Put(e) }

func (e *enc) jsFor() []int64 { return e.js[:0] }

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, "true"...)
	}
	return append(dst, "false"...)
}

func appendStringsRow(dst []byte, row []string) []byte {
	dst = append(dst, '[')
	for i, c := range row {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = jsonx.AppendString(dst, c)
	}
	return append(dst, ']')
}

func appendReadyzBody(dst []byte, ready bool, gen uint64) []byte {
	dst = append(dst, `{"generation":`...)
	dst = strconv.AppendUint(dst, gen, 10)
	dst = append(dst, `,"ready":`...)
	dst = appendBool(dst, ready)
	return append(dst, '}', '\n')
}

func appendCountBody(dst []byte, n int64) []byte {
	dst = append(dst, `{"count":`...)
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, '}', '\n')
}

func appendAccessBody(dst []byte, j int64, row []string) []byte {
	dst = append(dst, `{"answer":`...)
	dst = appendStringsRow(dst, row)
	dst = append(dst, `,"j":`...)
	dst = strconv.AppendInt(dst, j, 10)
	return append(dst, '}', '\n')
}

func openAnswersBody(dst []byte) []byte { return append(dst, `{"answers":[`...) }

func appendAnswersRows(dst []byte, rows [][]string) []byte {
	for i, row := range rows {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendStringsRow(dst, row)
	}
	return dst
}

func closeAnswersBody(dst []byte) []byte { return append(dst, ']', '}', '\n') }

func closeAnswersOffsetBody(dst []byte, offset int64) []byte {
	dst = append(dst, `],"offset":`...)
	dst = strconv.AppendInt(dst, offset, 10)
	return append(dst, '}', '\n')
}

func closeAnswersDoneBody(dst []byte, done bool) []byte {
	dst = append(dst, `],"done":`...)
	dst = appendBool(dst, done)
	return append(dst, '}', '\n')
}

func closeAnswersWithReplacementBody(dst []byte, withReplacement bool) []byte {
	dst = append(dst, `],"with_replacement":`...)
	dst = appendBool(dst, withReplacement)
	return append(dst, '}', '\n')
}

func appendContainsBody(dst []byte, contains bool) []byte {
	dst = append(dst, `{"contains":`...)
	dst = appendBool(dst, contains)
	return append(dst, '}', '\n')
}

func appendInvertedBody(dst []byte, j int64, found bool) []byte {
	if !found {
		return append(dst, "{\"found\":false}\n"...)
	}
	dst = append(dst, `{"found":true,"j":`...)
	dst = strconv.AppendInt(dst, j, 10)
	return append(dst, '}', '\n')
}

func appendCursorBody(dst []byte, id string, ttlMS int64) []byte {
	dst = append(dst, `{"cursor":`...)
	dst = jsonx.AppendString(dst, id)
	dst = append(dst, `,"ttl_ms":`...)
	dst = strconv.AppendInt(dst, ttlMS, 10)
	return append(dst, '}', '\n')
}

func appendErrorBody(dst []byte, msg string) []byte {
	dst = append(dst, `{"error":`...)
	dst = jsonx.AppendString(dst, msg)
	return append(dst, '}', '\n')
}

// appendWireRows renders rows as one binary wire message (the same format
// the shards themselves speak).
func appendWireRows(dst []byte, rows [][]string, arity int, flags uint32, aux uint64) []byte {
	dst = wire.AppendHeader(dst, wire.Header{Flags: flags, Arity: uint32(arity), Rows: uint64(len(rows)), Aux: aux})
	for _, row := range rows {
		for _, c := range row {
			dst = wire.AppendCell(dst, c)
		}
	}
	return wire.Finish(dst, 0)
}
