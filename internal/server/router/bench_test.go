package router

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/wire"
)

// BenchmarkRouter prices one scatter-gather hop: the router handler serving
// probes whose shard legs cross real sockets (httptest servers running full
// shard daemons). ns/op is the end-to-end request including fan-out, wire
// decode and the byte-identical re-encode — the number an operator compares
// against a single daemon's serving latency to price the scale-out tier.
func BenchmarkRouter(b *testing.B) {
	f := newFleet(b, 2)
	n := count(b, f.rt.Handler(), "Q")
	rng := rand.New(rand.NewSource(17))

	b.Run("Access", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", fmt.Sprintf("/v1/Q/access?j=%d", rng.Int63n(n)), nil)
			rec := httptest.NewRecorder()
			f.rt.Handler().ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})

	batchURL := func(k int64) string {
		js := make([]byte, 0, 4*k)
		for i := int64(0); i < k; i++ {
			if i > 0 {
				js = append(js, ',')
			}
			js = append(js, fmt.Sprintf("%d", rng.Int63n(n))...)
		}
		return "/v1/Q/batch?js=" + string(js)
	}
	b.Run("Batch256", func(b *testing.B) {
		url := batchURL(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", url, nil)
			rec := httptest.NewRecorder()
			f.rt.Handler().ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})

	b.Run("Batch256Wire", func(b *testing.B) {
		url := batchURL(256)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", url, nil)
			req.Header.Set("Accept", wire.ContentType)
			rec := httptest.NewRecorder()
			f.rt.Handler().ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})

	b.Run("Page256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", fmt.Sprintf("/v1/Q/page?offset=%d&limit=256", rng.Int63n(n)), nil)
			rec := httptest.NewRecorder()
			f.rt.Handler().ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
}
