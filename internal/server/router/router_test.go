package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/load"
	"repro/internal/server"
	"repro/internal/wire"
)

// The equivalence suite boots a real fleet — K shard daemons (each a full
// internal/server over a SetShardSlice registry) behind one Router — next to
// a single unsharded reference daemon over the same database, then
// byte-compares every probe body. This is the in-process version of the CI
// shard-smoke job's transcript diff.

const (
	joinQ  = "Q(x, y, z) :- r(x, y), s(y, z)."
	unionQ = "U(x, y) :- r(x, y). U(x, y) :- s(x, y)."
)

// fixtureDB synthesizes a join instance big enough that every K in the suite
// gets non-trivial slices (a few thousand join answers, skewed keys).
func fixtureDB(t testing.TB) *renum.Database {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var r, s strings.Builder
	r.WriteString("a,b\n")
	s.WriteString("b,c\n")
	for i := 0; i < 240; i++ {
		fmt.Fprintf(&r, "k%d,v%d\n", rng.Intn(40), rng.Intn(25))
		fmt.Fprintf(&s, "v%d,w%d\n", rng.Intn(25), rng.Intn(30))
	}
	db := renum.NewDatabase()
	if err := load.CSV(db, "r", strings.NewReader(r.String())); err != nil {
		t.Fatal(err)
	}
	if err := load.CSV(db, "s", strings.NewReader(s.String())); err != nil {
		t.Fatal(err)
	}
	return db
}

// flakyProxy wraps one shard's handler with a switchable injected fault, so
// tests can kill and revive a shard without tearing down its listener.
type flakyProxy struct {
	h    http.Handler
	fail atomic.Bool
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.fail.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte("{\"error\":\"injected fault\"}\n"))
		return
	}
	p.h.ServeHTTP(w, r)
}

type fleet struct {
	ref    http.Handler // single unsharded daemon
	rt     *Router
	urls   []string
	flaky  []*flakyProxy
	shards []*httptest.Server
}

func shardHandler(t testing.TB, db *renum.Database, slice, of int) http.Handler {
	t.Helper()
	reg := server.NewRegistry(db, server.CoalesceConfig{}, 0)
	if of > 0 {
		// Before Register, like renumd -shard-slice: CQs build 1/K indexes.
		if err := reg.SetShardSlice(slice, of); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := reg.Register(joinQ+" "+unionQ, false); err != nil {
		t.Fatal(err)
	}
	s := server.New(reg, server.Config{})
	t.Cleanup(s.Close)
	return s.Handler()
}

func newFleet(t testing.TB, k int) *fleet {
	t.Helper()
	db := fixtureDB(t)
	f := &fleet{ref: shardHandler(t, db, -1, 0)}
	for i := 0; i < k; i++ {
		p := &flakyProxy{h: shardHandler(t, db, i, k)}
		ts := httptest.NewServer(p)
		t.Cleanup(ts.Close)
		f.flaky = append(f.flaky, p)
		f.shards = append(f.shards, ts)
		f.urls = append(f.urls, ts.URL)
	}
	f.rt = New(Config{Shards: f.urls, Client: &http.Client{Timeout: 10 * time.Second}})
	t.Cleanup(f.rt.Close)
	if err := f.rt.Refresh(context.Background()); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	return f
}

func exchange(h http.Handler, method, url, body, accept string) ([]byte, int) {
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, url, rd)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Body.Bytes(), rec.Code
}

// compare issues the same request to the reference daemon and the router and
// requires byte-identical bodies and equal status codes.
func (f *fleet) compare(t *testing.T, method, url, body, accept string) []byte {
	t.Helper()
	want, wantCode := exchange(f.ref, method, url, body, accept)
	got, gotCode := exchange(f.rt.Handler(), method, url, body, accept)
	if gotCode != wantCode {
		t.Fatalf("%s %s: router status %d (%s), reference %d (%s)", method, url, gotCode, got, wantCode, want)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s %s: router body %q != reference %q", method, url, got, want)
	}
	return got
}

func count(t testing.TB, h http.Handler, query string) int64 {
	t.Helper()
	raw, code := exchange(h, "GET", "/v1/"+query+"/count", "", "")
	if code != 200 {
		t.Fatalf("count %s: status %d (%s)", query, code, raw)
	}
	var m struct {
		Count int64 `json:"count"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	return m.Count
}

func TestRouterEquivalence(t *testing.T) {
	for _, k := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			f := newFleet(t, k)
			n := count(t, f.ref, "Q")
			if n < 100 {
				t.Fatalf("fixture too small: %d answers", n)
			}
			if got := count(t, f.rt.Handler(), "Q"); got != n {
				t.Fatalf("router count %d, reference %d", got, n)
			}

			f.compare(t, "GET", "/v1/Q/count", "", "")
			f.compare(t, "GET", "/v1/U/count", "", "")

			for _, j := range []int64{0, 1, n / 3, n / 2, n - 1} {
				f.compare(t, "GET", fmt.Sprintf("/v1/Q/access?j=%d", j), "", "")
			}
			f.compare(t, "GET", "/v1/U/access?j=3", "", "")

			// Batches: duplicates, cross-shard scatter, GET and POST, both
			// formats on the client edge.
			js := fmt.Sprintf("0,5,%d,%d,3,3,%d", n-1, n/2, n/4)
			f.compare(t, "GET", "/v1/Q/batch?js="+js, "", "")
			f.compare(t, "GET", "/v1/Q/batch?js=%201%20,%202%20,,4", "", "")
			f.compare(t, "POST", "/v1/Q/batch", fmt.Sprintf(`{"js":[%s]}`, js), "")
			f.compare(t, "GET", "/v1/Q/batch?js="+js, "", wire.ContentType)
			f.compare(t, "GET", "/v1/U/batch?js=0,9,4", "", "")

			// Pages: inside one shard, crossing boundaries, overshooting
			// tails, past the end, empty.
			for _, pg := range [][2]int64{{0, 10}, {n/2 - 3, 9}, {n - 4, 100}, {n + 5, 10}, {0, 0}, {0, n}} {
				url := fmt.Sprintf("/v1/Q/page?offset=%d&limit=%d", pg[0], pg[1])
				f.compare(t, "GET", url, "", "")
				f.compare(t, "GET", url, "", wire.ContentType)
			}
			f.compare(t, "GET", "/v1/U/page?offset=2&limit=11", "", "")

			// Seeded samples consume the rng exactly like the library's lazy
			// Fisher–Yates prefix, so same seed = same bytes.
			f.compare(t, "GET", "/v1/Q/sample?k=7&seed=42", "", "")
			f.compare(t, "GET", "/v1/Q/sample?k=0&seed=1", "", "")
			f.compare(t, "GET", fmt.Sprintf("/v1/Q/sample?k=%d&seed=9", n+10), "", "")
			f.compare(t, "GET", "/v1/U/sample?k=5&seed=13", "", "")

			// Tuple probes: take known answers off the reference, plus misses.
			raw, _ := exchange(f.ref, "GET", fmt.Sprintf("/v1/Q/access?j=%d", n/2), "", "")
			var ab struct {
				Answer []string `json:"answer"`
			}
			if err := json.Unmarshal(raw, &ab); err != nil {
				t.Fatal(err)
			}
			hit, _ := json.Marshal(map[string][]string{"tuple": ab.Answer})
			f.compare(t, "POST", "/v1/Q/contains", string(hit), "")
			f.compare(t, "POST", "/v1/Q/inverted", string(hit), "")
			miss := `{"tuple":["nope","nope","nope"]}`
			f.compare(t, "POST", "/v1/Q/contains", miss, "")
			f.compare(t, "POST", "/v1/Q/inverted", miss, "")

			// Error vocabulary: out-of-range, bad input, unsupported.
			f.compare(t, "GET", fmt.Sprintf("/v1/Q/access?j=%d", n), "", "")
			f.compare(t, "GET", "/v1/Q/access?j=-1", "", "")
			f.compare(t, "GET", fmt.Sprintf("/v1/Q/batch?js=0,%d", n), "", "")
			f.compare(t, "GET", "/v1/Q/batch?js=zap", "", "")
			f.compare(t, "GET", "/v1/Q/page?offset=-1&limit=5", "", "")
			f.compare(t, "POST", "/v1/Q/contains", `{"tuple":["a"]}`, "")
			f.compare(t, "POST", "/v1/U/inverted", `{"tuple":["a","b"]}`, "")
			f.compare(t, "GET", "/v1/Q/enum/next?cursor=bogus", "", "")
			if _, code := exchange(f.rt.Handler(), "POST", "/v1/Q/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`, ""); code != http.StatusNotImplemented {
				t.Fatalf("router update status %d, want 501", code)
			}
			if _, code := exchange(f.rt.Handler(), "GET", "/v1/Nope/count", "", ""); code != http.StatusNotFound {
				t.Fatalf("unknown query status %d, want 404", code)
			}
		})
	}
}

// startCursor starts an enumeration cursor and returns its id.
func startCursor(t *testing.T, h http.Handler, url string) string {
	t.Helper()
	raw, code := exchange(h, "POST", url, "", "")
	if code != 200 {
		t.Fatalf("start %s: status %d (%s)", url, code, raw)
	}
	var cb struct {
		Cursor string `json:"cursor"`
	}
	if err := json.Unmarshal(raw, &cb); err != nil {
		t.Fatal(err)
	}
	return cb.Cursor
}

// drainCursors drives the same-order cursors on the reference daemon and the
// router in lockstep and requires byte-identical draw bodies.
func drainCursors(t *testing.T, f *fleet, startURL string, n int64, accept string) {
	t.Helper()
	refID := startCursor(t, f.ref, startURL)
	rtID := startCursor(t, f.rt.Handler(), startURL)
	for step := 0; step < 10000; step++ {
		url := fmt.Sprintf("/v1/Q/enum/next?cursor=%s&n=%d", refID, n)
		want, wantCode := exchange(f.ref, "GET", url, "", accept)
		url = fmt.Sprintf("/v1/Q/enum/next?cursor=%s&n=%d", rtID, n)
		got, gotCode := exchange(f.rt.Handler(), "GET", url, "", accept)
		if gotCode != wantCode || !bytes.Equal(got, want) {
			t.Fatalf("%s draw %d: router %d %q, reference %d %q", startURL, step, gotCode, got, wantCode, want)
		}
		if accept == wire.ContentType {
			h, _, err := wire.Parse(got)
			if err != nil {
				t.Fatal(err)
			}
			if h.Flags&wire.FlagDone != 0 {
				return
			}
		} else {
			var db struct {
				Done bool `json:"done"`
			}
			if err := json.Unmarshal(got, &db); err != nil {
				t.Fatal(err)
			}
			if db.Done {
				return
			}
		}
	}
	t.Fatalf("%s: cursor never finished", startURL)
}

func TestRouterCursorEquivalence(t *testing.T) {
	f := newFleet(t, 3)
	drainCursors(t, f, "/v1/Q/enum/start", 64, "")
	drainCursors(t, f, "/v1/Q/enum/start?order=enum", 7, wire.ContentType)
	drainCursors(t, f, "/v1/Q/enum/start?order=random&seed=5", 64, "")
	drainCursors(t, f, "/v1/Q/enum/start?order=random&seed=99", 17, "")

	// Explicit close works and a second close is a 404.
	id := startCursor(t, f.rt.Handler(), "/v1/Q/enum/start")
	if raw, code := exchange(f.rt.Handler(), "DELETE", "/v1/Q/enum?cursor="+id, "", ""); code != 200 {
		t.Fatalf("close: %d (%s)", code, raw)
	}
	if _, code := exchange(f.rt.Handler(), "DELETE", "/v1/Q/enum?cursor="+id, "", ""); code != http.StatusNotFound {
		t.Fatalf("double close: %d, want 404", code)
	}
}

// TestRouterFaultInjection kills one shard mid-fleet and checks the honest
// degradation contract: typed 502 naming the shard, /readyz 503, cursors
// resuming cleanly after recovery.
func TestRouterFaultInjection(t *testing.T) {
	f := newFleet(t, 2)
	n := count(t, f.rt.Handler(), "Q")
	if !f.rt.Ready() {
		t.Fatal("fleet not ready after refresh")
	}

	// An enum cursor in flight, parked 5 positions before the shard
	// boundary so its next draw must span the shard about to die.
	c0 := count(t, f.flaky[0], "Q")
	if c0 < 10 || n-c0 < 10 {
		t.Fatalf("degenerate split: %d/%d", c0, n-c0)
	}
	refID := startCursor(t, f.ref, "/v1/Q/enum/start")
	rtID := startCursor(t, f.rt.Handler(), "/v1/Q/enum/start")
	draw := func(h http.Handler, id string, k int64) ([]byte, int) {
		return exchange(h, "GET", fmt.Sprintf("/v1/Q/enum/next?cursor=%s&n=%d", id, k), "", "")
	}
	want1, _ := draw(f.ref, refID, c0-5)
	got1, _ := draw(f.rt.Handler(), rtID, c0-5)
	if !bytes.Equal(got1, want1) {
		t.Fatalf("pre-fault draw: %q != %q", got1, want1)
	}

	f.flaky[1].fail.Store(true)

	// A batch spanning both shards fails as a 502 that names the daemon.
	raw, code := exchange(f.rt.Handler(), "GET", fmt.Sprintf("/v1/Q/batch?js=0,%d", n-1), "", "")
	if code != http.StatusBadGateway {
		t.Fatalf("batch during fault: status %d (%s), want 502", code, raw)
	}
	if !strings.Contains(string(raw), "shard "+f.urls[1]) {
		t.Fatalf("fault body %q does not name shard %s", raw, f.urls[1])
	}

	// The fault flipped readiness, honestly.
	if f.rt.Ready() {
		t.Fatal("router still ready after shard fault")
	}
	if raw, code := exchange(f.rt.Handler(), "GET", "/readyz", "", ""); code != http.StatusServiceUnavailable || !strings.Contains(string(raw), `"ready":false`) {
		t.Fatalf("readyz during fault: %d (%s), want 503 not-ready", code, raw)
	}

	// A shard-0-only probe still answers (position 0 lives on shard 0).
	if raw, code := exchange(f.rt.Handler(), "GET", "/v1/Q/access?j=0", "", ""); code != 200 {
		t.Fatalf("healthy-shard access during fault: %d (%s)", code, raw)
	}

	// A cursor draw that needs the dead shard fails without advancing...
	if raw, code := draw(f.rt.Handler(), rtID, 10); code != http.StatusBadGateway {
		t.Fatalf("draw during fault: %d (%s), want 502", code, raw)
	}

	// ...and recovery is a scrape away. The retried draw returns exactly the
	// window the failed draw would have.
	f.flaky[1].fail.Store(false)
	if err := f.rt.Refresh(context.Background()); err != nil {
		t.Fatalf("recovery refresh: %v", err)
	}
	if !f.rt.Ready() {
		t.Fatal("router not ready after recovery")
	}
	want2, _ := draw(f.ref, refID, 10)
	got2, code := draw(f.rt.Handler(), rtID, 10)
	if code != 200 || !bytes.Equal(got2, want2) {
		t.Fatalf("post-recovery draw: %d %q, want %q", code, got2, want2)
	}
	f.compare(t, "GET", fmt.Sprintf("/v1/Q/batch?js=0,%d", n-1), "", "")
}

// TestRouterScrapeRejectsTornFleet boots shards with mismatched query sets
// and checks the router refuses the table instead of serving torn answers.
func TestRouterScrapeRejectsTornFleet(t *testing.T) {
	db := fixtureDB(t)
	reg := server.NewRegistry(db, server.CoalesceConfig{}, 0)
	if err := reg.SetShardSlice(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(joinQ, false); err != nil { // missing U
		t.Fatal(err)
	}
	s := server.New(reg, server.Config{})
	t.Cleanup(s.Close)
	odd := httptest.NewServer(s.Handler())
	t.Cleanup(odd.Close)

	full := httptest.NewServer(shardHandler(t, db, 1, 2))
	t.Cleanup(full.Close)

	rt := New(Config{Shards: []string{full.URL, odd.URL}})
	t.Cleanup(rt.Close)
	err := rt.Refresh(context.Background())
	if err == nil {
		t.Fatal("refresh accepted a torn fleet")
	}
	if !strings.Contains(err.Error(), "shard "+odd.URL) {
		t.Fatalf("torn-fleet error %q does not name the odd shard", err)
	}
	if rt.Ready() {
		t.Fatal("router ready with no table")
	}
	if _, code := exchange(rt.Handler(), "GET", "/v1/Q/count", "", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("probe with no table: %d, want 503", code)
	}
}

// TestRouterHammer races scatter-gather traffic against routing-table
// refreshes and an injected fault flap; run under -race this is the
// concurrency gate for the router's atomic table swap and health flips.
func TestRouterHammer(t *testing.T) {
	f := newFleet(t, 3)
	n := count(t, f.rt.Handler(), "Q")
	stop := make(chan struct{})
	var wg, churn sync.WaitGroup

	churn.Add(1)
	go func() { // table churn
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.rt.Refresh(context.Background())
			}
		}
	}()
	churn.Add(1)
	go func() { // health flap
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				f.flaky[2].fail.Store(false)
				return
			default:
				f.flaky[2].fail.Store(i%4 == 0)
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 60; i++ {
				var url string
				switch i % 4 {
				case 0:
					url = fmt.Sprintf("/v1/Q/access?j=%d", rng.Int63n(n))
				case 1:
					url = fmt.Sprintf("/v1/Q/batch?js=%d,%d,%d", rng.Int63n(n), rng.Int63n(n), rng.Int63n(n))
				case 2:
					url = fmt.Sprintf("/v1/Q/page?offset=%d&limit=17", rng.Int63n(n))
				case 3:
					url = fmt.Sprintf("/v1/Q/sample?k=5&seed=%d", rng.Int63())
				}
				raw, code := exchange(f.rt.Handler(), "GET", url, "", "")
				// Faults are injected, so 502 is legal; anything else must
				// be a clean 200.
				if code != 200 && code != http.StatusBadGateway {
					t.Errorf("%s: status %d (%s)", url, code, raw)
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	churn.Wait()

	// After the dust settles the fleet heals and equivalence still holds.
	if err := f.rt.Refresh(context.Background()); err != nil {
		t.Fatalf("final refresh: %v", err)
	}
	f.compare(t, "GET", "/v1/Q/page?offset=0&limit=50", "", "")
}
