// Request-scoped tracing for /debug/traces.
//
// A request is traced only when the client sends X-Request-Id — the hot
// benchmark paths never do, so the untraced request stays exactly as
// allocation-free as before. Traced requests use pooled fixed-shape
// records (a [64]byte id buffer, an [8]-span array of static-string
// names), pushed into a bounded mutex ring whose evictions recycle back
// into the pool; steady-state tracing therefore allocates only what the
// stdlib context plumbing does on the mux path and nothing at all on the
// fast loop.
package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

const (
	traceMaxSpans   = 8
	traceIDMax      = 64 // longer client ids are truncated, not rejected
	defaultTraceCap = 256
)

// traceSpan is one timed section inside a request, relative to its start.
type traceSpan struct {
	name  string // static string: "probe", "coalesce", "build", ...
	offNs int64
	durNs int64
}

// traceRec is one traced request. Fixed shape; pooled.
type traceRec struct {
	id       [traceIDMax]byte
	idLen    int
	endpoint string // static route name
	query    string // entry name (shares the snapshot's string)
	start    time.Time
	durNs    int64
	status   int
	spans    [traceMaxSpans]traceSpan
	nspans   int
}

// span records one timed section. Safe to call with a nil receiver so
// handlers do not branch; start is the section's own clock origin.
func (tr *traceRec) span(name string, start time.Time, d time.Duration) {
	if tr == nil || tr.nspans >= traceMaxSpans {
		return
	}
	tr.spans[tr.nspans] = traceSpan{
		name:  name,
		offNs: start.Sub(tr.start).Nanoseconds(),
		durNs: d.Nanoseconds(),
	}
	tr.nspans++
}

func (tr *traceRec) finish(status int, d time.Duration) {
	tr.status = status
	tr.durNs = d.Nanoseconds()
}

// traceStore is the bounded in-memory ring behind /debug/traces.
type traceStore struct {
	pool    sync.Pool
	evicted atomic.Uint64
	mu      sync.Mutex
	ring    []*traceRec
	next    int
	n       int
}

func newTraceStore(capacity int) *traceStore {
	if capacity <= 0 {
		capacity = defaultTraceCap
	}
	return &traceStore{
		pool: sync.Pool{New: func() any { return new(traceRec) }},
		ring: make([]*traceRec, capacity),
	}
}

// begin starts a trace for a request carrying id. id may alias a network
// read buffer: it is copied into the record's fixed buffer immediately.
func (t *traceStore) begin(id []byte, endpoint string, start time.Time) *traceRec {
	tr := t.pool.Get().(*traceRec)
	if len(id) > traceIDMax {
		id = id[:traceIDMax]
	}
	tr.idLen = copy(tr.id[:], id)
	tr.endpoint = endpoint
	tr.query = ""
	tr.start = start
	tr.durNs = 0
	tr.status = 0
	tr.nspans = 0
	return tr
}

// beginString is begin for the mux path (http.Header values are strings).
func (t *traceStore) beginString(id, endpoint string, start time.Time) *traceRec {
	tr := t.pool.Get().(*traceRec)
	if len(id) > traceIDMax {
		id = id[:traceIDMax]
	}
	tr.idLen = copy(tr.id[:], id)
	tr.endpoint = endpoint
	tr.query = ""
	tr.start = start
	tr.durNs = 0
	tr.status = 0
	tr.nspans = 0
	return tr
}

// push files a finished record; the displaced one recycles to the pool.
func (t *traceStore) push(tr *traceRec) {
	t.mu.Lock()
	old := t.ring[t.next]
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	if old != nil {
		t.evicted.Add(1)
		t.pool.Put(old)
	}
}

func (t *traceStore) dropped() uint64 { return t.evicted.Load() }

// TraceSpanView is one span of a trace, as served by /debug/traces.
type TraceSpanView struct {
	Name       string `json:"name"`
	OffsetUs   int64  `json:"offset_us"`
	DurationUs int64  `json:"duration_us"`
}

// TraceView is one traced request, as served by /debug/traces.
type TraceView struct {
	ID         string          `json:"id"`
	Endpoint   string          `json:"endpoint"`
	Query      string          `json:"query,omitempty"`
	Start      time.Time       `json:"start"`
	DurationUs int64           `json:"duration_us"`
	Status     int             `json:"status"`
	Spans      []TraceSpanView `json:"spans"`
}

// snapshot copies up to limit records, newest first, optionally filtered
// by exact request id. Cold path: allocations here are fine.
func (t *traceStore) snapshot(filterID string, limit int) []TraceView {
	t.mu.Lock()
	defer t.mu.Unlock()
	if limit <= 0 || limit > t.n {
		limit = t.n
	}
	out := make([]TraceView, 0, limit)
	for i := 1; i <= t.n && len(out) < limit; i++ {
		tr := t.ring[(t.next-i+len(t.ring))%len(t.ring)]
		if tr == nil {
			break
		}
		id := string(tr.id[:tr.idLen])
		if filterID != "" && id != filterID {
			continue
		}
		v := TraceView{
			ID:         id,
			Endpoint:   tr.endpoint,
			Query:      tr.query,
			Start:      tr.start,
			DurationUs: tr.durNs / 1e3,
			Status:     tr.status,
			Spans:      make([]TraceSpanView, tr.nspans),
		}
		for j := 0; j < tr.nspans; j++ {
			v.Spans[j] = TraceSpanView{
				Name:       tr.spans[j].name,
				OffsetUs:   tr.spans[j].offNs / 1e3,
				DurationUs: tr.spans[j].durNs / 1e3,
			}
		}
		out = append(out, v)
	}
	return out
}

// traceCtxKey carries the active trace through the mux handler chain.
type traceCtxKey struct{}

func traceFrom(ctx context.Context) *traceRec {
	tr, _ := ctx.Value(traceCtxKey{}).(*traceRec)
	return tr
}

// handleDebugTraces serves the ring: ?id= filters by request id, ?n=
// bounds the result (default all buffered, newest first).
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) error {
	n, err := queryInt64(r, "n", 0)
	if err != nil {
		return err
	}
	return writeJSON(w, map[string]any{
		"traces":  s.traces.snapshot(r.URL.Query().Get("id"), int(n)),
		"dropped": s.traces.dropped(),
	})
}
