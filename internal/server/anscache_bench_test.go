package server

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro"
	"repro/internal/load"
)

// benchCacheServer builds a server over a 3-way chain join big enough that
// an uncached access pays a real probe (multi-node descent + dictionary
// rendering + encode), which is the work a cache hit elides.
func benchCacheServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	table := func(h0, h1 string) string {
		var sb strings.Builder
		sb.WriteString(h0 + "," + h1 + "\n")
		for i := 0; i < 20_000; i++ {
			fmt.Fprintf(&sb, "k%d,k%d\n", rng.Intn(500), rng.Intn(500))
		}
		return sb.String()
	}
	db := renum.NewDatabase()
	for i, cols := range [][2]string{{"c0", "c1"}, {"c1", "c2"}, {"c2", "c3"}} {
		if err := load.CSV(db, fmt.Sprintf("t%d", i+1), strings.NewReader(table(cols[0], cols[1]))); err != nil {
			b.Fatal(err)
		}
	}
	reg := NewRegistry(db, CoalesceConfig{}, 0)
	if _, err := reg.Register("Q(c0, c1, c2, c3) :- t1(c0, c1), t2(c1, c2), t3(c2, c3).", false); err != nil {
		b.Fatal(err)
	}
	s := New(reg, cfg)
	b.Cleanup(s.Close)
	return s
}

// BenchmarkAnswerCacheAccess measures the /access handler under a Zipfian
// position stream — the workload the answer cache exists for — with the
// cache off and on. The committed BENCH_plan.json pins both arms: the cached
// arm must stay below the uncached one (CI asserts the ratio), and a cache
// regression that slows the uncached path would show up in the first arm.
func BenchmarkAnswerCacheAccess(b *testing.B) {
	for _, arm := range []struct {
		name string
		cfg  Config
	}{
		{"Uncached", Config{}},
		{"Cached", Config{AnswerCacheBytes: 64 << 20}},
	} {
		arm := arm
		b.Run(arm.name, func(b *testing.B) {
			s := benchCacheServer(b, arm.cfg)
			e, ok := s.reg.Lookup("Q")
			if !ok {
				b.Fatal("entry Q missing")
			}
			n := e.Count()
			if n == 0 {
				b.Fatal("empty fixture join")
			}
			rng := rand.New(rand.NewSource(99))
			zipf := rand.NewZipf(rng, 1.3, 8, uint64(n-1))
			const stream = 2048
			urls := make([]string, stream)
			for i := range urls {
				urls[i] = fmt.Sprintf("/v1/Q/access?j=%d", zipf.Uint64())
			}
			// Warm both arms identically: two passes move every hot position
			// past the cache's two-miss admission threshold.
			for pass := 0; pass < 2; pass++ {
				for _, u := range urls {
					if _, status := doRaw(s, "GET", u, ""); status != 200 {
						b.Fatalf("warmup %s = %d", u, status)
					}
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, status := doRaw(s, "GET", urls[i%stream], ""); status != 200 {
					b.Fatal("access failed")
				}
			}
			b.StopTimer()
			if s.anscache != nil && s.anscache.stats().Hits == 0 {
				b.Fatal("cached arm never hit the cache")
			}
		})
	}
}
