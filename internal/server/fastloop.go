package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/textproto"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/wire"
)

// This file is the serving tier's probe micro-architecture: a hand-rolled
// HTTP/1.1 connection loop that serves the hot GET probe surface
// (/healthz, count, access, batch, page, sample, enum/next) from
// per-connection pooled state — request parsing, routing, parameter
// decoding, body building and response framing all run without a single
// steady-state heap allocation. net/http's generic path costs ~18
// allocations per request before a handler runs (request struct, header
// map, URL parse, per-request context, mux pattern match); at the paper's
// "millions of users" scale that floor, not the O(log n) probe, dominates.
//
// Everything else — POST/DELETE endpoints, admin, metadata, unknown paths —
// falls back to the Server's ordinary mux: the fast loop builds a real
// http.Request from the parsed bytes and delegates, so cold endpoints keep
// exactly one implementation and one behavior (including error bodies and
// the route metrics instrumentation).
//
// Responses are byte-identical to the mux path: both build bodies through
// the shared builders in encode.go, and TestFastLoopMatchesMux pins every
// endpoint's bytes against the mux output.

const (
	// fastIdleTimeout closes a keep-alive connection with no next request.
	fastIdleTimeout = 60 * time.Second
	// fastHeaderTimeout bounds reading one request's header block (the
	// net/http server this replaces used ReadHeaderTimeout: 5s).
	fastHeaderTimeout = 5 * time.Second
	// fastBodyTimeout bounds reading one request body on the fallback path.
	fastBodyTimeout = 30 * time.Second
	// fastMaxHeaders caps header count per request (431 beyond).
	fastMaxHeaders = 128
	// fastBufSize sizes the per-connection read/write buffers; it also
	// bounds the request line + any single header line.
	fastBufSize = 16 << 10
)

// FastServer serves a Server's API with the pooled connection loop.
type FastServer struct {
	s        *Server
	eps      [len(opNames)]*endpointMetrics // per-op instruments, resolved once
	mu       sync.Mutex
	ln       net.Listener
	conns    map[*fastConn]struct{}
	wg       sync.WaitGroup
	shutting atomic.Bool
	baseCtx  context.Context
	cancel   context.CancelFunc
}

// NewFastServer wraps s. Serve/ListenAndServe run the accept loop;
// Shutdown drains like net/http's.
func NewFastServer(s *Server) *FastServer {
	ctx, cancel := context.WithCancel(context.Background())
	f := &FastServer{s: s, conns: make(map[*fastConn]struct{}), baseCtx: ctx, cancel: cancel}
	// Resolving the instruments here (not per request) is what keeps the hot
	// loop free of map lookups and label rendering; the names match the mux
	// routes, so both serving paths share one set of series.
	for op := opHealthz; op < len(opNames); op++ {
		f.eps[op] = s.metrics.endpoint(opNames[op])
	}
	return f
}

// ListenAndServe listens on addr and serves until Shutdown.
func (f *FastServer) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return f.Serve(ln)
}

// Addr returns the bound listener address ("" before Serve).
func (f *FastServer) Addr() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.ln == nil {
		return ""
	}
	return f.ln.Addr().String()
}

// Serve accepts connections on ln until Shutdown closes it; it then
// returns http.ErrServerClosed, mirroring net/http so callers can reuse
// their shutdown plumbing.
func (f *FastServer) Serve(ln net.Listener) error {
	f.mu.Lock()
	if f.shutting.Load() {
		f.mu.Unlock()
		ln.Close()
		return http.ErrServerClosed
	}
	f.ln = ln
	f.mu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if f.shutting.Load() {
				return http.ErrServerClosed
			}
			return err
		}
		fc := &fastConn{
			f:  f,
			c:  c,
			br: bufio.NewReaderSize(c, fastBufSize),
			bw: bufio.NewWriterSize(c, fastBufSize),
		}
		fc.enc.buf = make([]byte, 0, 4096)
		// Register under the mutex: Shutdown flips the flag under the same
		// mutex, so either this Add happens-before its Wait or we observe
		// the shutdown here and drop the connection.
		f.mu.Lock()
		if f.shutting.Load() {
			f.mu.Unlock()
			c.Close()
			continue
		}
		f.conns[fc] = struct{}{}
		f.wg.Add(1)
		f.mu.Unlock()
		go func() {
			defer f.wg.Done()
			fc.serve()
			f.mu.Lock()
			delete(f.conns, fc)
			f.mu.Unlock()
		}()
	}
}

// Shutdown stops accepting, lets in-flight requests finish, and closes
// idle connections. Past ctx's deadline every remaining connection is
// force-closed and ctx's error returned.
func (f *FastServer) Shutdown(ctx context.Context) error {
	f.mu.Lock()
	f.shutting.Store(true)
	if f.ln != nil {
		f.ln.Close()
	}
	for fc := range f.conns {
		if !fc.busy.Load() {
			// Kick connections blocked waiting for a next request; the
			// serve loop re-checks the shutdown flag and exits. A request
			// racing in still gets served (its bytes are already buffered).
			fc.c.SetReadDeadline(time.Unix(1, 0))
		}
	}
	f.mu.Unlock()
	done := make(chan struct{})
	go func() { f.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		f.cancel() // cancel handler contexts, then cut the sockets
		f.mu.Lock()
		for fc := range f.conns {
			fc.c.Close()
		}
		f.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// fastConn is one connection's reusable state.
type fastConn struct {
	f       *FastServer
	c       net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	enc     enc    // body builder + probe scratch, connection-owned
	head    []byte // response head scratch
	target  []byte // stable copy of the request target
	val     []byte // percent-decoding scratch
	reqID   []byte // X-Request-Id copy (tracing); empty when untraced
	busy    atomic.Bool
	closing bool
	wrote   int64 // body bytes of the current request (metrics)
}

// headerMeta is what the fast path needs from a header block.
type headerMeta struct {
	contentLength int64
	close         bool
	wantWire      bool
	chunked       bool
	expect100     bool
}

var (
	bGET    = []byte("GET")
	bHTTP11 = []byte("HTTP/1.1")
	bHTTP10 = []byte("HTTP/1.0")
)

// Fast-path ops.
const (
	opNone = iota
	opHealthz
	opReadyz
	opCount
	opAccess
	opBatch
	opPage
	opSample
	opEnumNext
)

// opNames index by op; the strings match the mux route names so /metrics
// aggregates both serving paths under one endpoint.
var opNames = [...]string{"", "healthz", "readyz", "count", "access", "batch", "page", "sample", "enum_next"}

func (fc *fastConn) serve() {
	defer fc.c.Close()
	for {
		fc.busy.Store(false)
		fc.c.SetReadDeadline(time.Now().Add(fastIdleTimeout))
		if fc.f.shutting.Load() {
			return
		}
		line, err := fc.readLine()
		if err != nil {
			if errors.Is(err, bufio.ErrBufferFull) {
				fc.closing = true
				fc.writeResponse(http.StatusRequestHeaderFieldsTooLarge, "application/json",
					appendErrorBody(fc.enc.buf[:0], "request line too long"))
			}
			return // EOF, idle timeout, shutdown kick: close quietly
		}
		fc.busy.Store(true)
		if fc.f.shutting.Load() {
			fc.closing = true // serve the raced-in request, then close
		}
		if !fc.handleRequest(line) || fc.closing {
			return
		}
	}
}

// readLine returns the next CRLF- (or LF-) terminated line, stripped.
func (fc *fastConn) readLine() ([]byte, error) {
	line, err := fc.br.ReadSlice('\n')
	if err != nil {
		return nil, err
	}
	n := len(line) - 1
	if n > 0 && line[n-1] == '\r' {
		n--
	}
	return line[:n], nil
}

// handleRequest parses one request line and dispatches. It reports whether
// the connection can carry another request.
func (fc *fastConn) handleRequest(line []byte) bool {
	sp1 := bytes.IndexByte(line, ' ')
	sp2 := bytes.LastIndexByte(line, ' ')
	if sp1 <= 0 || sp2 <= sp1+1 {
		fc.abort(http.StatusBadRequest, "malformed request line")
		return false
	}
	method, rawTarget, proto := line[:sp1], line[sp1+1:sp2], line[sp2+1:]
	switch {
	case bytes.Equal(proto, bHTTP11):
	case bytes.Equal(proto, bHTTP10):
		fc.closing = true
	default:
		fc.abort(http.StatusHTTPVersionNotSupported, "unsupported protocol")
		return false
	}
	// Copy the target out of the bufio window: header reads may slide it.
	fc.target = append(fc.target[:0], rawTarget...)
	target := fc.target
	path, query := target, []byte(nil)
	if i := bytes.IndexByte(target, '?'); i >= 0 {
		path, query = target[:i], target[i+1:]
	}
	op, qname := opNone, []byte(nil)
	// Percent-escaped paths go to the mux for canonical decoding.
	if bytes.Equal(method, bGET) && bytes.IndexByte(path, '%') < 0 {
		op, qname = fastRoute(path)
	}
	if op == opNone {
		return fc.serveFallback(method, target)
	}
	fc.c.SetReadDeadline(time.Now().Add(fastHeaderTimeout))
	var hm headerMeta
	hm.contentLength = -1
	fc.reqID = fc.reqID[:0] // a request without the header must not inherit one
	if !fc.scanHeaders(&hm) {
		return false
	}
	if hm.close {
		fc.closing = true
	}
	if hm.chunked {
		fc.abort(http.StatusNotImplemented, "chunked request bodies are not supported")
		return false
	}
	// A GET with a body is legal if pointless; keep framing by draining it.
	if hm.contentLength > 0 {
		if hm.contentLength > fastBufSize {
			fc.abort(http.StatusRequestEntityTooLarge, "unexpected request body")
			return false
		}
		if _, err := fc.br.Discard(int(hm.contentLength)); err != nil {
			return false
		}
	}

	t0 := time.Now()
	s := fc.f.s
	ep := fc.f.eps[op]
	// A client-supplied X-Request-Id turns tracing on for this request; the
	// benchmark harness never sends one, so the untraced loop stays 0-alloc.
	var tr *traceRec
	if len(fc.reqID) > 0 {
		tr = s.traces.begin(fc.reqID, opNames[op], t0)
	}
	var allocs0 uint64
	sampled := s.metrics.sampleTick()
	if sampled {
		allocs0 = heapAllocObjects()
	}
	fc.wrote = 0
	err := fc.serveFast(op, qname, query, hm, tr)
	clientGone := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	if err != nil {
		status, msg := errorStatus(err, clientGone), err.Error()
		body := staticErrorBody(msg)
		if body == nil {
			body = appendErrorBody(fc.enc.buf[:0], msg)
		}
		if werr := fc.writeResponse(status, "application/json", body); werr != nil {
			return false
		}
	}
	if sampled {
		ep.observeAllocs(float64(heapAllocObjects() - allocs0))
	}
	d := time.Since(t0)
	ep.observe(d, err != nil && !clientGone, fc.wrote)
	status := http.StatusOK
	if err != nil {
		status = errorStatus(err, clientGone)
	}
	if tr != nil {
		tr.finish(status, d)
		s.traces.push(tr)
	}
	if s.cfg.SlowLog > 0 && d >= s.cfg.SlowLog {
		s.logSlowFast(opNames[op], string(fc.target), string(qname), string(fc.reqID), d, status)
	}
	return true
}

// fastRoute maps a path to a fast op. qname is a sub-slice of path.
func fastRoute(path []byte) (int, []byte) {
	if string(path) == "/healthz" {
		return opHealthz, nil
	}
	if string(path) == "/readyz" {
		return opReadyz, nil
	}
	const v1 = "/v1/"
	if len(path) < len(v1) || string(path[:len(v1)]) != v1 {
		return opNone, nil
	}
	rest := path[len(v1):]
	slash := bytes.IndexByte(rest, '/')
	if slash <= 0 {
		return opNone, nil // /v1 or /v1/{query} metadata: mux
	}
	qname, op := rest[:slash], rest[slash+1:]
	switch string(op) {
	case "count":
		return opCount, qname
	case "access":
		return opAccess, qname
	case "batch":
		return opBatch, qname
	case "page":
		return opPage, qname
	case "sample":
		return opSample, qname
	case "enum/next":
		return opEnumNext, qname
	}
	return opNone, nil
}

// scanHeaders walks the header block extracting only the scalars the fast
// path needs; everything else is skipped without retention.
func (fc *fastConn) scanHeaders(hm *headerMeta) bool {
	for n := 0; ; n++ {
		if n > fastMaxHeaders {
			fc.abort(http.StatusRequestHeaderFieldsTooLarge, "too many headers")
			return false
		}
		line, err := fc.readLine()
		if err != nil {
			if errors.Is(err, bufio.ErrBufferFull) {
				fc.abort(http.StatusRequestHeaderFieldsTooLarge, "header line too long")
			}
			return false
		}
		if len(line) == 0 {
			return true
		}
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			fc.abort(http.StatusBadRequest, "malformed header")
			return false
		}
		name, val := line[:colon], trimOWS(line[colon+1:])
		switch {
		case asciiEqualFold(name, "content-length"):
			v, ok := parseInt64Bytes(val)
			if !ok || v < 0 {
				fc.abort(http.StatusBadRequest, "bad content-length")
				return false
			}
			hm.contentLength = v
		case asciiEqualFold(name, "connection"):
			if tokenListHasFold(val, "close") {
				hm.close = true
			}
		case asciiEqualFold(name, "accept"):
			if acceptBytesWire(val) {
				hm.wantWire = true
			}
		case asciiEqualFold(name, "transfer-encoding"):
			hm.chunked = true
		case asciiEqualFold(name, "expect"):
			hm.expect100 = asciiEqualFold(val, "100-continue")
		case asciiEqualFold(name, "x-request-id"):
			// Copy out of the bufio window now: later reads slide it.
			fc.reqID = append(fc.reqID[:0], val...)
		}
	}
}

// serveFast runs one fast-path op. A returned error becomes the JSON error
// response (same mapping as the mux route wrapper).
func (fc *fastConn) serveFast(op int, qname, query []byte, hm headerMeta, tr *traceRec) error {
	s := fc.f.s
	if op == opHealthz {
		return fc.writeResponse(http.StatusOK, "application/json", healthzBody)
	}
	if op == opReadyz {
		_, gen := s.reg.Snapshot()
		if !s.Ready() {
			return fc.writeResponse(http.StatusServiceUnavailable, "application/json",
				appendReadyzBody(fc.enc.buf[:0], false, gen))
		}
		return fc.writeResponse(http.StatusOK, "application/json", appendReadyzBody(fc.enc.buf[:0], true, gen))
	}
	e, db, gen, ok := s.reg.lookupViewBytes(qname)
	if !ok {
		return httpErrorf(http.StatusNotFound, "no query %q (serving: %s)", string(qname), joinNames(s.reg.Names()))
	}
	if tr != nil {
		tr.query = e.Name
	}
	dict := db.Dict()
	switch op {
	case opCount:
		pc := startProbe(e.histCount(), tr, "probe")
		n := e.Count()
		pc.done()
		return fc.writeResponse(http.StatusOK, "application/json", appendCountBody(fc.enc.buf[:0], n))

	case opAccess:
		j, err := fc.paramInt64(query, "j", -1)
		if err != nil {
			return err
		}
		if j < 0 || j >= e.Count() {
			return httpErrorf(http.StatusBadRequest, "j=%d out of range [0, %d)", j, e.Count())
		}
		// Generation-keyed answer cache: a hit is one lock-free lookup on
		// e.Name (no byte→string conversion, so the hit path allocates
		// nothing) and serves the exact bytes the miss path would build.
		cache := s.anscache
		if cache != nil && e.cacheable {
			if body := cache.get(e.Name, gen, j); body != nil {
				return fc.writeResponse(http.StatusOK, "application/json", body)
			}
		} else {
			cache = nil
		}
		var t renum.Tuple
		if e.coal != nil {
			pc := startProbe(e.histAccess(), tr, "coalesce")
			t, err = e.coal.Do(j)
			pc.done()
		} else {
			pc := startProbe(e.histAccess(), tr, "probe")
			t = fc.enc.rowFor(len(e.Head()))
			err = e.H.AccessInto(j, t)
			pc.done()
		}
		if err != nil {
			return err
		}
		body := appendAccessBody(fc.enc.buf[:0], dict, j, t)
		if cache != nil {
			cache.offer(e.Name, gen, j, body)
		}
		return fc.writeResponse(http.StatusOK, "application/json", body)

	case opBatch:
		raw, _ := fc.param(query, "js")
		js, err := appendJSListBytes(fc.enc.jsFor(), raw)
		fc.enc.js = js[:0]
		if err != nil {
			return err
		}
		if int64(len(js)) > s.cfg.MaxBatch {
			return httpErrorf(http.StatusBadRequest, "batch of %d exceeds limit %d", len(js), s.cfg.MaxBatch)
		}
		fc.enc.buf = fc.enc.buf[:0]
		pc := startProbe(e.histBatch(), tr, "build")
		body, err := buildBatchBody(fc.f.baseCtx, e, dict, &fc.enc, js, hm.wantWire)
		pc.done()
		if err != nil {
			return err
		}
		return fc.writeNegotiated(body, hm.wantWire)

	case opPage:
		offset, err := fc.paramInt64(query, "offset", 0)
		if err != nil {
			return err
		}
		limit, err := fc.paramInt64(query, "limit", 10)
		if err != nil {
			return err
		}
		if limit > s.cfg.MaxBatch {
			return httpErrorf(http.StatusBadRequest, "limit %d exceeds %d", limit, s.cfg.MaxBatch)
		}
		if offset < 0 || limit < 0 {
			return httpErrorf(http.StatusBadRequest, "offset and limit must be non-negative")
		}
		fc.enc.buf = fc.enc.buf[:0]
		pc := startProbe(e.histPage(), tr, "build")
		body, err := buildPageBody(fc.f.baseCtx, e, dict, &fc.enc, offset, limit, hm.wantWire)
		pc.done()
		if err != nil {
			return err
		}
		return fc.writeNegotiated(body, hm.wantWire)

	case opSample:
		k, err := fc.paramInt64(query, "k", 1)
		if err != nil {
			return err
		}
		if k < 0 || k > s.cfg.MaxBatch {
			return httpErrorf(http.StatusBadRequest, "k=%d out of range [0, %d]", k, s.cfg.MaxBatch)
		}
		seed, err := fc.paramInt64(query, "seed", time.Now().UnixNano())
		if err != nil {
			return err
		}
		smp, err := e.H.Sampler()
		if err != nil {
			return err
		}
		pc := startProbe(e.histSample(), tr, "probe")
		ts, err := smp.SampleN(k, rand.New(rand.NewSource(seed)))
		pc.done()
		if err != nil {
			return err
		}
		fc.enc.buf = fc.enc.buf[:0]
		return fc.writeResponse(http.StatusOK, "application/json", buildSampleBody(dict, &fc.enc, ts, !smp.Distinct()))

	case opEnumNext:
		rawCur, _ := fc.param(query, "cursor")
		n, err := fc.paramInt64(query, "n", 1)
		if err != nil {
			return err
		}
		if n <= 0 || n > s.cfg.MaxCursorDraw {
			return httpErrorf(http.StatusBadRequest, "n=%d out of range [1, %d]", n, s.cfg.MaxCursorDraw)
		}
		pc := startProbe(e.histCursor(), tr, "probe")
		ts, done, err := s.cursors.Next(fc.f.baseCtx, string(rawCur), e.Name, n)
		pc.done()
		if err != nil {
			return err
		}
		fc.enc.buf = fc.enc.buf[:0]
		return fc.writeNegotiated(buildEnumNextBody(dict, &fc.enc, ts, len(e.Head()), done, hm.wantWire), hm.wantWire)
	}
	return httpErrorf(http.StatusInternalServerError, "unreachable fast op %d", op)
}

func (fc *fastConn) writeNegotiated(body []byte, asWire bool) error {
	ct := "application/json"
	if asWire {
		ct = wire.ContentType
	}
	return fc.writeResponse(http.StatusOK, ct, body)
}

// ----------------------------------------------------------- response side

// statusLines covers every status the handlers produce; others format cold.
func statusLine(status int) string {
	switch status {
	case http.StatusOK:
		return "HTTP/1.1 200 OK\r\n"
	case http.StatusBadRequest:
		return "HTTP/1.1 400 Bad Request\r\n"
	case http.StatusNotFound:
		return "HTTP/1.1 404 Not Found\r\n"
	case http.StatusConflict:
		return "HTTP/1.1 409 Conflict\r\n"
	case statusClientClosedRequest:
		return "HTTP/1.1 499 Client Closed Request\r\n"
	case http.StatusInternalServerError:
		return "HTTP/1.1 500 Internal Server Error\r\n"
	case http.StatusNotImplemented:
		return "HTTP/1.1 501 Not Implemented\r\n"
	}
	text := http.StatusText(status)
	if text == "" {
		text = "Status"
	}
	return fmt.Sprintf("HTTP/1.1 %d %s\r\n", status, text)
}

// dateEntry caches the RFC 1123 Date header value, re-rendered once per
// second — time formatting would otherwise be the hottest call on the
// response path.
type dateEntry struct {
	unix  int64
	bytes [29]byte
}

var cachedDate atomic.Pointer[dateEntry]

func appendHTTPDate(dst []byte, now time.Time) []byte {
	e := cachedDate.Load()
	if sec := now.Unix(); e == nil || e.unix != sec {
		ne := &dateEntry{unix: sec}
		ne.bytes = [29]byte{}
		b := now.UTC().AppendFormat(ne.bytes[:0], http.TimeFormat)
		if len(b) == len(ne.bytes) {
			cachedDate.Store(ne)
			e = ne
		} else {
			// Format drift (never expected): fall back without caching.
			return append(dst, b...)
		}
	}
	return append(dst, e.bytes[:]...)
}

// writeResponse frames and sends one response (head into the connection
// scratch, one buffered write, one flush).
func (fc *fastConn) writeResponse(status int, contentType string, body []byte) error {
	h := fc.head[:0]
	h = append(h, statusLine(status)...)
	h = append(h, "Content-Type: "...)
	h = append(h, contentType...)
	h = append(h, "\r\nDate: "...)
	h = appendHTTPDate(h, time.Now())
	if fc.closing {
		h = append(h, "\r\nConnection: close"...)
	}
	h = append(h, "\r\nContent-Length: "...)
	h = strconv.AppendInt(h, int64(len(body)), 10)
	h = append(h, '\r', '\n', '\r', '\n')
	fc.head = h
	if _, err := fc.bw.Write(h); err != nil {
		return err
	}
	if _, err := fc.bw.Write(body); err != nil {
		return err
	}
	fc.wrote += int64(len(body))
	return fc.bw.Flush()
}

// abort sends an error response and marks the connection for closing (used
// for protocol-level failures where framing is no longer trustworthy).
func (fc *fastConn) abort(status int, msg string) {
	fc.closing = true
	fc.writeResponse(status, "application/json", appendErrorBody(fc.enc.buf[:0], msg))
}

// ---------------------------------------------------------- fallback path

// serveFallback parses the rest of the request into a real http.Request and
// delegates to the Server's mux, buffering the response so it can be framed
// with a Content-Length on this keep-alive connection. Cold by design: the
// allocations here buy exact behavioral parity for every non-hot endpoint.
func (fc *fastConn) serveFallback(method, target []byte) bool {
	fc.c.SetReadDeadline(time.Now().Add(fastHeaderTimeout))
	hdr := make(http.Header, 8)
	var hm headerMeta
	hm.contentLength = -1
	for n := 0; ; n++ {
		if n > fastMaxHeaders {
			fc.abort(http.StatusRequestHeaderFieldsTooLarge, "too many headers")
			return false
		}
		line, err := fc.readLine()
		if err != nil {
			if errors.Is(err, bufio.ErrBufferFull) {
				fc.abort(http.StatusRequestHeaderFieldsTooLarge, "header line too long")
			}
			return false
		}
		if len(line) == 0 {
			break
		}
		colon := bytes.IndexByte(line, ':')
		if colon <= 0 {
			fc.abort(http.StatusBadRequest, "malformed header")
			return false
		}
		name, val := line[:colon], trimOWS(line[colon+1:])
		key := textproto.CanonicalMIMEHeaderKey(string(name))
		hdr[key] = append(hdr[key], string(val))
		switch {
		case asciiEqualFold(name, "content-length"):
			v, ok := parseInt64Bytes(val)
			if !ok || v < 0 {
				fc.abort(http.StatusBadRequest, "bad content-length")
				return false
			}
			hm.contentLength = v
		case asciiEqualFold(name, "connection"):
			if tokenListHasFold(val, "close") {
				hm.close = true
			}
		case asciiEqualFold(name, "transfer-encoding"):
			hm.chunked = true
		case asciiEqualFold(name, "expect"):
			hm.expect100 = asciiEqualFold(val, "100-continue")
		}
	}
	if hm.close {
		fc.closing = true
	}
	if hm.chunked {
		fc.abort(http.StatusNotImplemented, "chunked request bodies are not supported")
		return false
	}
	u, err := url.ParseRequestURI(string(target))
	if err != nil {
		fc.abort(http.StatusBadRequest, "bad request target")
		return false
	}
	var bodyReader io.Reader = eofReader{}
	var lr *io.LimitedReader
	if hm.contentLength > 0 {
		fc.c.SetReadDeadline(time.Now().Add(fastBodyTimeout))
		if hm.expect100 {
			if _, err := fc.bw.WriteString("HTTP/1.1 100 Continue\r\n\r\n"); err != nil {
				return false
			}
			if err := fc.bw.Flush(); err != nil {
				return false
			}
		}
		lr = &io.LimitedReader{R: fc.br, N: hm.contentLength}
		bodyReader = lr
	}
	req := &http.Request{
		Method:        string(method),
		URL:           u,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        hdr,
		Body:          io.NopCloser(bodyReader),
		ContentLength: hm.contentLength,
		Host:          hdr.Get("Host"),
		RequestURI:    string(target),
	}
	if fc.c.RemoteAddr() != nil {
		req.RemoteAddr = fc.c.RemoteAddr().String()
	}
	req = req.WithContext(fc.f.baseCtx)
	rw := &bufferedResponse{}
	fc.f.s.mux.ServeHTTP(rw, req)
	// Drain what the handler left so the next request starts on a boundary.
	if lr != nil && lr.N > 0 {
		if _, err := io.Copy(io.Discard, lr); err != nil {
			fc.closing = true
		}
	}
	return fc.writeBuffered(rw)
}

type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }

// bufferedResponse is the fallback path's ResponseWriter: handlers write a
// complete response into memory, then writeBuffered frames it.
type bufferedResponse struct {
	hdr    http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header {
	if b.hdr == nil {
		b.hdr = make(http.Header, 4)
	}
	return b.hdr
}

func (b *bufferedResponse) WriteHeader(status int) {
	if b.status == 0 {
		b.status = status
	}
}

func (b *bufferedResponse) Write(p []byte) (int, error) {
	b.WriteHeader(http.StatusOK)
	return b.body.Write(p)
}

func (fc *fastConn) writeBuffered(rw *bufferedResponse) bool {
	if rw.status == 0 {
		rw.status = http.StatusOK
	}
	h := fc.head[:0]
	h = append(h, statusLine(rw.status)...)
	for k, vs := range rw.hdr {
		for _, v := range vs {
			h = append(h, k...)
			h = append(h, ':', ' ')
			h = append(h, v...)
			h = append(h, '\r', '\n')
		}
	}
	h = append(h, "Date: "...)
	h = appendHTTPDate(h, time.Now())
	if fc.closing {
		h = append(h, "\r\nConnection: close"...)
	}
	h = append(h, "\r\nContent-Length: "...)
	h = strconv.AppendInt(h, int64(rw.body.Len()), 10)
	h = append(h, '\r', '\n', '\r', '\n')
	fc.head = h
	if _, err := fc.bw.Write(h); err != nil {
		return false
	}
	if _, err := fc.bw.Write(rw.body.Bytes()); err != nil {
		return false
	}
	fc.wrote += int64(rw.body.Len())
	return fc.bw.Flush() == nil
}

// -------------------------------------------------------- byte-level bits

// trimOWS strips optional whitespace (space/tab) from both ends.
func trimOWS(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// asciiEqualFold compares b to the lowercase ASCII string s, case-folding b.
func asciiEqualFold(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// tokenListHasFold reports whether the comma-separated token list contains
// tok (lowercase).
func tokenListHasFold(b []byte, tok string) bool {
	for len(b) > 0 {
		var part []byte
		if i := bytes.IndexByte(b, ','); i >= 0 {
			part, b = b[:i], b[i+1:]
		} else {
			part, b = b, nil
		}
		if asciiEqualFold(trimOWS(part), tok) {
			return true
		}
	}
	return false
}

// acceptBytesWire is acceptIsWire over raw header bytes.
func acceptBytesWire(b []byte) bool {
	for len(b) > 0 {
		var part []byte
		if i := bytes.IndexByte(b, ','); i >= 0 {
			part, b = b[:i], b[i+1:]
		} else {
			part, b = b, nil
		}
		part = trimOWS(part)
		if i := bytes.IndexByte(part, ';'); i >= 0 {
			part = trimOWS(part[:i])
		}
		if string(part) == wire.ContentType {
			return true
		}
	}
	return false
}

// parseInt64Bytes parses a decimal int64 with optional sign; ok=false on
// anything strconv.ParseInt would reject (the caller reproduces the exact
// strconv error on that cold path).
func parseInt64Bytes(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg, i := false, 0
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		i++
		if len(b) == 1 {
			return 0, false
		}
	}
	var n uint64
	for ; i < len(b); i++ {
		c := b[i] - '0'
		if c > 9 {
			return 0, false
		}
		if n > (1<<63)/10 {
			return 0, false // would overflow
		}
		n = n*10 + uint64(c)
	}
	if neg {
		if n > 1<<63 {
			return 0, false
		}
		return -int64(n), true
	}
	if n > 1<<63-1 {
		return 0, false
	}
	return int64(n), true
}

// param returns key's percent-decoded value from the raw query bytes
// (first occurrence, like url.Values.Get).
func (fc *fastConn) param(query []byte, key string) ([]byte, bool) {
	for len(query) > 0 {
		var pair []byte
		if i := bytes.IndexByte(query, '&'); i >= 0 {
			pair, query = query[:i], query[i+1:]
		} else {
			pair, query = query, nil
		}
		k, v := pair, []byte(nil)
		if i := bytes.IndexByte(pair, '='); i >= 0 {
			k, v = pair[:i], pair[i+1:]
		}
		if string(k) == key {
			return fc.unescape(v), true
		}
	}
	return nil, false
}

// unescape percent-decodes v into the connection scratch when needed.
// Malformed escapes pass through literally (hostile input; the probe then
// rejects the value).
func (fc *fastConn) unescape(v []byte) []byte {
	if bytes.IndexByte(v, '%') < 0 && bytes.IndexByte(v, '+') < 0 {
		return v
	}
	dst := fc.val[:0]
	for i := 0; i < len(v); i++ {
		switch c := v[i]; {
		case c == '+':
			dst = append(dst, ' ')
		case c == '%' && i+2 < len(v) && isHex(v[i+1]) && isHex(v[i+2]):
			dst = append(dst, unhex(v[i+1])<<4|unhex(v[i+2]))
			i += 2
		default:
			dst = append(dst, c)
		}
	}
	fc.val = dst
	return dst
}

func isHex(c byte) bool {
	return '0' <= c && c <= '9' || 'a' <= c && c <= 'f' || 'A' <= c && c <= 'F'
}

func unhex(c byte) byte {
	switch {
	case c >= 'a':
		return c - 'a' + 10
	case c >= 'A':
		return c - 'A' + 10
	}
	return c - '0'
}

// paramInt64 mirrors queryInt64: absent or empty values take the default,
// and the error text matches strconv's exactly.
func (fc *fastConn) paramInt64(query []byte, key string, def int64) (int64, error) {
	v, ok := fc.param(query, key)
	if !ok || len(v) == 0 {
		return def, nil
	}
	n, ok := parseInt64Bytes(v)
	if !ok {
		_, err := strconv.ParseInt(string(v), 10, 64)
		return 0, httpErrorf(http.StatusBadRequest, "%s: %v", key, err)
	}
	return n, nil
}

// appendJSListBytes is appendJSList over raw query bytes.
func appendJSListBytes(dst []int64, s []byte) ([]int64, error) {
	for len(s) > 0 {
		var part []byte
		if i := bytes.IndexByte(s, ','); i >= 0 {
			part, s = s[:i], s[i+1:]
		} else {
			part, s = s, nil
		}
		part = bytes.TrimSpace(part)
		if len(part) == 0 {
			continue
		}
		j, ok := parseInt64Bytes(part)
		if !ok {
			_, err := strconv.ParseInt(string(part), 10, 64)
			return dst, httpErrorf(http.StatusBadRequest, "js: %v", err)
		}
		dst = append(dst, j)
	}
	return dst, nil
}

// joinNames mirrors strings.Join(names, ", ") (cold: 404 bodies only).
func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}
