// Prometheus exposition for the serving tier.
//
// Families and their label sets are registered up front (or at entry build
// time for per-query series); the request path only touches pre-resolved
// instrument pointers, which is what keeps the fast loop at 0 allocs/request
// with observability fully enabled. Values owned elsewhere — generation,
// live cursors, coalescer counters, WAL state — are exported through
// scrape-time collectors instead of write-through gauges.
package server

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// newServerObserver builds the obs.Observer the registry emits into: build,
// plan-search, WAL, snapshot, compaction and publish timings, plus per-query
// probe histograms resolved once per entry. It takes the Server (not just
// the Registry) because a publish also drops the answer cache: the
// generation key already fences stale entries, but dropping them returns
// their bytes to the budget immediately.
func newServerObserver(reg *obs.Registry, s *Server) *obs.Observer {
	r := s.reg
	walAppend := reg.Histogram("renum_wal_append_duration_seconds",
		"WAL record write latency (encode+write, fsync excluded).", "")
	walAppendBytes := reg.Counter("renum_wal_append_bytes_total",
		"Bytes appended to the write-ahead log.", "")
	walFsync := reg.Histogram("renum_wal_fsync_duration_seconds",
		"WAL fsync latency.", "")
	snapSave := reg.Histogram("renum_snapshot_save_duration_seconds",
		"Snapshot generation write latency.", "")
	compact := reg.Histogram("renum_compaction_duration_seconds",
		"WAL-fold compaction latency (rebuild aside + snapshot + rotate + publish).", "")
	compactFolded := reg.Counter("renum_compaction_records_folded_total",
		"WAL records folded into snapshot generations by compaction.", "")
	published := reg.Counter("renum_generations_published_total",
		"Registry generations published (snapshot pointer swaps).", "")
	planCandidates := reg.Counter("renum_plan_candidates_total",
		"Candidate join trees costed by the planner across all searches.", "")
	planImproved := reg.Counter("renum_plan_improved_total",
		"Planner searches that chose a tree strictly cheaper than the as-parsed one.", "")
	planDur := reg.Histogram("renum_plan_search_duration_seconds",
		"Planner search latency (candidate enumeration + costing), at entry build time.", "")

	return &obs.Observer{
		Build: func(query, stage string, d time.Duration) {
			// Builds are rare (admin register/rebuild), so rendering the
			// generation label here is off every request path. The label
			// makes build latency attributable per published generation.
			gen := strconv.FormatUint(r.snap.Load().gen+1, 10)
			reg.Histogram("renum_build_duration_seconds",
				"Index build latency, by query, build stage and the generation the build published.",
				obs.Labels("query", query, "stage", stage, "generation", gen)).Record(d)
		},
		WALAppend: func(bytes int, d time.Duration) {
			walAppend.Record(d)
			walAppendBytes.Add(uint64(bytes))
		},
		WALFsync:     walFsync.Record,
		SnapshotSave: func(gen uint64, d time.Duration) { snapSave.Record(d) },
		Compaction: func(d time.Duration, folded int64) {
			compact.Record(d)
			if folded > 0 {
				compactFolded.Add(uint64(folded))
			}
		},
		Publish: func(gen uint64) {
			published.Inc()
			if s.anscache != nil {
				s.anscache.invalidate()
			}
		},
		Plan: func(query string, candidates int, identity bool, chosenCost, identityCost float64, d time.Duration) {
			// Plan searches are build-time events (admin register/rebuild),
			// so resolving the per-query series here is off every request
			// path — same reasoning as the build histogram above.
			reg.Counter("renum_plan_searches_total",
				"Planner searches run at entry build time, by query.",
				obs.Labels("query", query)).Inc()
			planCandidates.Add(uint64(candidates))
			if !identity {
				planImproved.Inc()
			}
			planDur.Record(d)
		},
		QueryOps: func(query string) *obs.ProbeOps {
			h := func(op string) *obs.Histogram {
				return reg.Histogram("renum_probe_duration_seconds",
					"Probe-section latency, by query and operation (excludes parse/encode; access includes coalescer wait).",
					obs.Labels("query", query, "op", op))
			}
			return &obs.ProbeOps{
				Access: h("access"),
				Count:  h("count"),
				Batch:  h("batch"),
				Page:   h("page"),
				Sample: h("sample"),
				Cursor: h("cursor"),
			}
		},
	}
}

// registerCollectors exports the server's scrape-time values.
func (s *Server) registerCollectors() {
	s.obs.CollectorFunc("renum_generation", "Currently served registry generation.",
		obs.KindGauge, func(emit func(string, float64)) {
			_, gen := s.reg.Snapshot()
			emit("", float64(gen))
		})
	s.obs.CollectorFunc("renum_cursors", "Live enumeration cursors.",
		obs.KindGauge, func(emit func(string, float64)) {
			emit("", float64(s.cursors.Len()))
		})
	s.obs.CollectorFunc("renum_uptime_seconds", "Seconds since the server started.",
		obs.KindGauge, func(emit func(string, float64)) {
			emit("", time.Since(s.metrics.start).Seconds())
		})
	s.obs.CollectorFunc("renum_ready", "Readiness: 1 when serving traffic, 0 during boot or drain.",
		obs.KindGauge, func(emit func(string, float64)) {
			v := 0.0
			if s.Ready() {
				v = 1
			}
			emit("", v)
		})
	s.obs.CollectorFunc("renum_coalescer_rounds_total", "Batch probes issued by the access coalescer, by query.",
		obs.KindCounter, func(emit func(string, float64)) {
			for _, name := range s.reg.Names() {
				if e, ok := s.reg.Lookup(name); ok && e.coal != nil {
					rounds, _ := e.coal.Stats()
					emit(obs.Labels("query", name), float64(rounds))
				}
			}
		})
	s.obs.CollectorFunc("renum_coalescer_served_total", "Access requests served through coalesced batches, by query.",
		obs.KindCounter, func(emit func(string, float64)) {
			for _, name := range s.reg.Names() {
				if e, ok := s.reg.Lookup(name); ok && e.coal != nil {
					_, served := e.coal.Stats()
					emit(obs.Labels("query", name), float64(served))
				}
			}
		})
	s.obs.CollectorFunc("renum_wal_depth", "Records in the current WAL segment (replayed + appended).",
		obs.KindGauge, func(emit func(string, float64)) {
			if st := s.reg.WALStats(); st.Attached {
				emit("", float64(st.Depth))
			}
		})
	s.obs.CollectorFunc("renum_wal_replayed_records", "Records replayed from the WAL at boot.",
		obs.KindGauge, func(emit func(string, float64)) {
			if st := s.reg.WALStats(); st.Attached {
				emit("", float64(st.Replayed))
			}
		})
	s.obs.CollectorFunc("renum_compactions_total", "Completed WAL-fold compactions.",
		obs.KindCounter, func(emit func(string, float64)) {
			if st := s.reg.WALStats(); st.Attached {
				emit("", float64(st.Compactions))
			}
		})
	s.obs.CollectorFunc("renum_traces_dropped_total", "Trace records evicted from the /debug/traces ring.",
		obs.KindCounter, func(emit func(string, float64)) {
			emit("", float64(s.traces.dropped()))
		})
	// Answer-cache families emit only when the cache is configured, the same
	// way the WAL families emit only when a log is attached.
	s.obs.CollectorFunc("renum_cache_hits_total", "Access requests served from the answer cache.",
		obs.KindCounter, func(emit func(string, float64)) {
			if c := s.anscache; c != nil {
				emit("", float64(c.stats().Hits))
			}
		})
	s.obs.CollectorFunc("renum_cache_misses_total", "Access requests that missed the answer cache (cacheable entries only).",
		obs.KindCounter, func(emit func(string, float64)) {
			if c := s.anscache; c != nil {
				emit("", float64(c.stats().Misses))
			}
		})
	s.obs.CollectorFunc("renum_cache_admitted_total", "Answer bodies admitted to the cache (second miss of a position).",
		obs.KindCounter, func(emit func(string, float64)) {
			if c := s.anscache; c != nil {
				emit("", float64(c.stats().Admitted))
			}
		})
	s.obs.CollectorFunc("renum_cache_evicted_total", "Answer bodies evicted to stay inside the byte budget.",
		obs.KindCounter, func(emit func(string, float64)) {
			if c := s.anscache; c != nil {
				emit("", float64(c.stats().Evicted))
			}
		})
	s.obs.CollectorFunc("renum_cache_invalidations_total", "Whole-cache drops triggered by registry generation publishes.",
		obs.KindCounter, func(emit func(string, float64)) {
			if c := s.anscache; c != nil {
				emit("", float64(c.stats().Invalidations))
			}
		})
	s.obs.CollectorFunc("renum_cache_entries", "Answer bodies currently cached.",
		obs.KindGauge, func(emit func(string, float64)) {
			if c := s.anscache; c != nil {
				emit("", float64(c.stats().Entries))
			}
		})
	s.obs.CollectorFunc("renum_cache_bytes", "Bytes held by the answer cache (payload + per-entry overhead).",
		obs.KindGauge, func(emit func(string, float64)) {
			if c := s.anscache; c != nil {
				emit("", float64(c.stats().Bytes))
			}
		})
}

// handlePrometheus renders the text exposition (format version 0.0.4).
func (s *Server) handlePrometheus(w http.ResponseWriter) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return s.obs.WritePrometheus(w)
}
