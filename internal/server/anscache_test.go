package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"
)

func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
}

// TestAnswerCacheAdmissionAndEviction drives the cache directly: admission
// on the second miss, budget-bounded FIFO eviction, drop-all invalidation.
func TestAnswerCacheAdmissionAndEviction(t *testing.T) {
	c := newAnswerCache(2 * (10 + cacheEntryOverhead)) // room for two 10-byte bodies
	body := func(i int) []byte { return []byte(fmt.Sprintf("body-%05d", i)) }

	if got := c.get("Q", 1, 0); got != nil {
		t.Fatalf("empty cache get = %q", got)
	}
	c.offer("Q", 1, 0, body(0)) // first miss: observed, not admitted
	if got := c.get("Q", 1, 0); got != nil {
		t.Fatalf("after one offer get = %q, want miss", got)
	}
	c.offer("Q", 1, 0, body(0)) // second miss: admitted
	if got := c.get("Q", 1, 0); !bytes.Equal(got, body(0)) {
		t.Fatalf("after admission get = %q, want %q", got, body(0))
	}
	// The cached bytes are a copy, not an alias of the offered slice.
	b := body(1)
	c.offer("Q", 1, 1, b)
	c.offer("Q", 1, 1, b)
	b[0] = 'X'
	if got := c.get("Q", 1, 1); !bytes.Equal(got, body(1)) {
		t.Fatalf("cached bytes alias the caller's slice: %q", got)
	}

	// A third admission exceeds the two-entry budget: the oldest goes.
	c.offer("Q", 1, 2, body(2))
	c.offer("Q", 1, 2, body(2))
	if got := c.get("Q", 1, 0); got != nil {
		t.Fatalf("oldest entry survived eviction: %q", got)
	}
	if got := c.get("Q", 1, 2); !bytes.Equal(got, body(2)) {
		t.Fatalf("newest entry missing after eviction: %q", got)
	}
	st := c.stats()
	if st.Admitted != 3 || st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 3 admitted, 1 evicted, 2 entries", st)
	}
	if st.Bytes > c.maxBytes {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, c.maxBytes)
	}

	// Different generation, same position: a distinct key (miss).
	if got := c.get("Q", 2, 2); got != nil {
		t.Fatalf("generation bleed: gen-2 get served gen-1 bytes %q", got)
	}

	// A body larger than the whole budget is never admitted.
	huge := bytes.Repeat([]byte("x"), int(c.maxBytes))
	c.offer("Q", 1, 9, huge)
	c.offer("Q", 1, 9, huge)
	if got := c.get("Q", 1, 9); got != nil {
		t.Fatal("over-budget body was admitted")
	}

	c.invalidate()
	if got := c.get("Q", 1, 2); got != nil {
		t.Fatalf("entry survived invalidation: %q", got)
	}
	if st := c.stats(); st.Entries != 0 || st.Bytes != 0 || st.Invalidations != 1 {
		t.Fatalf("post-invalidate stats = %+v", st)
	}
}

// TestAnswerCacheServesIdenticalBytes pins the core contract on both
// serving paths: a cache hit returns byte-for-byte what the uncached probe
// builds, and hot positions actually hit after the two-miss admission.
func TestAnswerCacheServesIdenticalBytes(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{AnswerCacheBytes: 1 << 20})
	_, addr := startFast(t, s)

	// Mux path: requests 1 and 2 miss (observe + admit), request 3 hits.
	var first []byte
	for i := 0; i < 3; i++ {
		raw, status := doRaw(s, "GET", "/v1/Q/access?j=1", "")
		if status != 200 {
			t.Fatalf("access #%d = %d (%s)", i, status, raw)
		}
		if i == 0 {
			first = append([]byte(nil), raw...)
		} else if !bytes.Equal(raw, first) {
			t.Fatalf("access #%d = %q, first = %q", i, raw, first)
		}
	}
	if st := s.anscache.stats(); st.Hits == 0 {
		t.Fatalf("no cache hits after 3 identical accesses: %+v", st)
	}

	// Fast-loop path serves the same cached bytes.
	resp := fastDo(t, addr, "GET", "/v1/Q/access?j=1", "", "")
	if resp.status != 200 || !bytes.Equal(resp.body, first) {
		t.Fatalf("fast loop = %d %q, want 200 %q", resp.status, resp.body, first)
	}
}

// TestAnswerCacheUpdateInvalidation is the staleness regression test the
// cache's correctness argument rests on: a cached pre-update answer must
// never be served post-update, on either invalidation mechanism —
//
//   - dynamic entries: /update mutates the handle in place with NO
//     generation bump, so such entries are excluded from caching entirely;
//   - static entries: admin mutations publish a new generation, which both
//     re-keys every lookup and drops the cache.
func TestAnswerCacheUpdateInvalidation(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{AnswerCacheBytes: 1 << 20})

	// Dynamic entry: hammer one position far past the admission threshold,
	// then delete the exact tuple it returns.
	var dynBody []byte
	for i := 0; i < 5; i++ {
		raw, status := doRaw(s, "GET", "/v1/D/access?j=0", "")
		if status != 200 {
			t.Fatalf("D access = %d (%s)", status, raw)
		}
		dynBody = append(dynBody[:0], raw...)
	}
	if st := s.anscache.stats(); st.Admitted != 0 {
		t.Fatalf("dynamic entry was admitted to the cache: %+v", st)
	}
	var parsed struct {
		Answer []string `json:"answer"`
		J      int64    `json:"j"`
	}
	mustUnmarshal(t, dynBody, &parsed)
	del := fmt.Sprintf(`{"op":"delete","relation":"r","tuple":["%s","%s"]}`,
		parsed.Answer[0], parsed.Answer[1])
	if m := do(t, s, "POST", "/v1/D/update", del, 200); m["changed"] != true {
		t.Fatalf("delete did not change the index: %v", m)
	}
	raw, status := doRaw(s, "GET", "/v1/D/access?j=0", "")
	if status != 200 {
		t.Fatalf("post-update access = %d (%s)", status, raw)
	}
	if bytes.Equal(raw, dynBody) {
		t.Fatalf("stale pre-update answer served post-update: %q", raw)
	}

	// Static entry: admit position 0, verify it hits, then replace the r
	// table and rebuild — a new generation both re-keys and drops the cache.
	var statBody []byte
	for i := 0; i < 3; i++ {
		raw, status := doRaw(s, "GET", "/v1/Q/access?j=0", "")
		if status != 200 {
			t.Fatalf("Q access = %d (%s)", status, raw)
		}
		statBody = append(statBody[:0], raw...)
	}
	hitsBefore := s.anscache.stats().Hits
	if hitsBefore == 0 {
		t.Fatal("static entry never hit the cache")
	}
	if err := reg.LoadTable("r", strings.NewReader("a,b\n9,2\n")); err != nil {
		t.Fatal(err)
	}
	if err := reg.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if st := s.anscache.stats(); st.Entries != 0 || st.Invalidations == 0 {
		t.Fatalf("publish did not drop the cache: %+v", st)
	}
	raw, status = doRaw(s, "GET", "/v1/Q/access?j=0", "")
	if status != 200 {
		t.Fatalf("post-rebuild access = %d (%s)", status, raw)
	}
	if bytes.Equal(raw, statBody) {
		t.Fatalf("stale pre-rebuild answer served post-rebuild: %q", raw)
	}
	mustUnmarshal(t, raw, &parsed)
	if parsed.Answer[0] != "9" {
		t.Fatalf("post-rebuild answer = %v, want the replaced table's value 9", parsed.Answer)
	}
}

// TestAnswerCacheCoalescedPath pins that the cache composes with the
// coalescer: the hit short-circuits before the coalescing window, and
// admitted bytes match the coalesced build.
func TestAnswerCacheCoalescedPath(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{Window: 200 * time.Microsecond}, Config{AnswerCacheBytes: 1 << 20})
	var first []byte
	for i := 0; i < 3; i++ {
		raw, status := doRaw(s, "GET", "/v1/Q/access?j=2", "")
		if status != 200 {
			t.Fatalf("access = %d (%s)", status, raw)
		}
		if i == 0 {
			first = append([]byte(nil), raw...)
		} else if !bytes.Equal(raw, first) {
			t.Fatalf("access #%d = %q, first = %q", i, raw, first)
		}
	}
	if st := s.anscache.stats(); st.Hits == 0 {
		t.Fatalf("no hits through the coalesced path: %+v", st)
	}
}
