package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"repro"
)

// Cursor-session errors, mapped to HTTP statuses by the handlers.
var (
	// ErrNoCursor: unknown or expired cursor id.
	ErrNoCursor = errors.New("server: unknown or expired cursor")
	// ErrCursorBusy: a second consumer tried to read a cursor mid-call.
	ErrCursorBusy = errors.New("server: cursor is in use by another request")
)

// cursor is one stateful enumeration session. Cursors are single-consumer
// (the library contract for Enumerator/Permutation): instead of queueing a
// second reader behind the first, Next fails fast with ErrCursorBusy so a
// misbehaving client cannot pin a server goroutine.
//
// A cursor captures the entry it was started on: a registry rebuild does not
// disturb it — it keeps draining the snapshot it began with, which is the
// only coherent reading of "enumerate without repetitions" across a swap.
type cursor struct {
	id      string
	query   string // owning query: a cursor is only valid under its own path
	nextN   func(ctx context.Context, n int64) ([]renum.Tuple, error)
	busy    sync.Mutex
	expires time.Time // guarded by store.mu
}

// cursorStore owns the live cursors and their TTL accounting. Expiry is
// enforced both lazily (Get rejects an expired cursor) and by a janitor
// goroutine that frees abandoned sessions' memory.
type cursorStore struct {
	mu   sync.Mutex
	m    map[string]*cursor
	ttl  time.Duration
	stop chan struct{}
	wg   sync.WaitGroup
}

func newCursorStore(ttl time.Duration, sweep time.Duration) *cursorStore {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	if sweep <= 0 {
		sweep = ttl / 4
		if sweep < time.Second {
			sweep = time.Second
		}
	}
	s := &cursorStore{m: make(map[string]*cursor), ttl: ttl, stop: make(chan struct{})}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(sweep)
		defer tick.Stop()
		for {
			select {
			case <-s.stop:
				return
			case now := <-tick.C:
				s.evict(now)
			}
		}
	}()
	return s
}

// Start registers a new session owned by the named query and returns its
// id.
func (s *cursorStore) Start(query string, nextN func(context.Context, int64) ([]renum.Tuple, error)) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	id := hex.EncodeToString(b[:])
	c := &cursor{id: id, query: query, nextN: nextN}
	s.mu.Lock()
	c.expires = time.Now().Add(s.ttl)
	s.m[id] = c
	s.mu.Unlock()
	return id
}

// Next draws up to n answers from the cursor, refreshing its TTL. The
// cursor must belong to query (a cursor id presented under another query's
// path is treated as unknown). ctx is the requesting client's context; how
// the draw honors it is the order's business (enum-order draws abort
// between chunks without advancing, random-order draws are atomic), but in
// every case a cancelled draw leaves the cursor alive — like any probe
// error — so a later request can keep draining without losing answers.
// done reports that the enumeration is exhausted (the session is then
// removed); a probe error leaves the cursor alive so the client can retry.
//
// The TTL is refreshed twice: once when the draw is admitted and again
// when it completes. The second refresh is the one that matters for slow
// draws — a draw that itself outlives the TTL must not leave the cursor
// already expired (or evicted mid-draw) the moment it returns.
func (s *cursorStore) Next(ctx context.Context, id, query string, n int64) (ts []renum.Tuple, done bool, err error) {
	now := time.Now()
	s.mu.Lock()
	c, ok := s.m[id]
	if !ok || c.query != query || now.After(c.expires) {
		s.mu.Unlock()
		return nil, false, ErrNoCursor
	}
	c.expires = now.Add(s.ttl) // refresh while the consumer is active
	s.mu.Unlock()

	if !c.busy.TryLock() {
		return nil, false, ErrCursorBusy
	}
	defer c.busy.Unlock()
	// Refresh on completion, before releasing busy. The existence check
	// matters: the exhausted path below removes the session, and a revived
	// map entry would leak.
	defer func() {
		s.mu.Lock()
		if _, ok := s.m[id]; ok {
			c.expires = time.Now().Add(s.ttl)
		}
		s.mu.Unlock()
	}()
	ts, err = c.nextN(ctx, n)
	if err != nil {
		return nil, false, err
	}
	if int64(len(ts)) < n {
		s.mu.Lock()
		delete(s.m, id)
		s.mu.Unlock()
		return ts, true, nil
	}
	return ts, false, nil
}

// Close drops a session explicitly (DELETE /enum). Like Next, it only acts
// on cursors owned by query.
func (s *cursorStore) Close(id, query string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[id]
	if !ok || c.query != query {
		return false
	}
	delete(s.m, id)
	return true
}

// Len reports the number of live sessions.
func (s *cursorStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

func (s *cursorStore) evict(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, c := range s.m {
		if !now.After(c.expires) {
			continue
		}
		// Never evict a cursor mid-draw: a draw consumes answers (a
		// random-order permutation's positions are gone once drawn), so
		// deleting the session under the consumer would silently lose them.
		// TryLock is non-blocking, so holding store.mu here cannot deadlock
		// against Next (which never takes busy while holding store.mu). A
		// busy cursor is skipped; its completion refresh re-arms the TTL.
		if !c.busy.TryLock() {
			continue
		}
		delete(s.m, id)
		c.busy.Unlock()
	}
}

// Shutdown stops the janitor.
func (s *cursorStore) Shutdown() {
	close(s.stop)
	s.wg.Wait()
}
