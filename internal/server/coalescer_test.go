package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
)

// TestCoalescerMergesConcurrentAccess is the acceptance-criterion test: two
// concurrent /access requests must be served by a single AccessBatch call,
// and the HTTP responses must be byte-identical to an uncoalesced server's.
//
// Determinism: the coalesced server's window is effectively infinite and
// MaxBatch is 2, so the first request can only be released by the second
// joining its round — the merge is forced, not timing-dependent.
func TestCoalescerMergesConcurrentAccess(t *testing.T) {
	coalesced, regC := newTestServer(t, CoalesceConfig{Window: time.Hour, MaxBatch: 2}, Config{})
	plain, _ := newTestServer(t, CoalesceConfig{}, Config{})

	e, _ := regC.Lookup("Q")
	if e.coal == nil {
		t.Fatal("static entry has no coalescer")
	}

	const n = 2
	responses := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			raw, status := doRaw(coalesced, "GET", fmt.Sprintf("/v1/Q/access?j=%d", j), "")
			if status != 200 {
				t.Errorf("access j=%d status %d: %s", j, status, raw)
			}
			responses[j] = raw
		}(i)
	}
	wg.Wait()

	rounds, served := e.coal.Stats()
	if rounds != 1 {
		t.Fatalf("2 concurrent accesses used %d AccessBatch calls, want exactly 1", rounds)
	}
	if served != n {
		t.Fatalf("coalescer served %d requests, want %d", served, n)
	}

	for j := 0; j < n; j++ {
		want, status := doRaw(plain, "GET", fmt.Sprintf("/v1/Q/access?j=%d", j), "")
		if status != 200 {
			t.Fatalf("uncoalesced access j=%d status %d", j, status)
		}
		if string(responses[j]) != string(want) {
			t.Fatalf("j=%d: coalesced response %q differs from uncoalesced %q", j, responses[j], want)
		}
	}
}

// TestCoalescerWindowFlush covers the timer path: a lone request below
// MaxBatch is released when its window elapses.
func TestCoalescerWindowFlush(t *testing.T) {
	var calls atomic.Int64
	c := newCoalescer(CoalesceConfig{Window: 2 * time.Millisecond, MaxBatch: 64},
		func(js []int64) ([]renum.Tuple, error) {
			calls.Add(1)
			out := make([]renum.Tuple, len(js))
			for i, j := range js {
				out[i] = renum.Tuple{renum.Value(j)}
			}
			return out, nil
		})
	tup, err := c.Do(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tup) != 1 || tup[0] != 42 {
		t.Fatalf("Do(42) = %v", tup)
	}
	if calls.Load() != 1 {
		t.Fatalf("batch calls = %d", calls.Load())
	}
}

// TestCoalescerKeepsPositionIdentity drives many concurrent positions
// (several rounds, duplicates included) and checks every waiter got exactly
// its own answer back.
func TestCoalescerKeepsPositionIdentity(t *testing.T) {
	c := newCoalescer(CoalesceConfig{Window: time.Millisecond, MaxBatch: 8},
		func(js []int64) ([]renum.Tuple, error) {
			out := make([]renum.Tuple, len(js))
			for i, j := range js {
				out[i] = renum.Tuple{renum.Value(j)}
			}
			return out, nil
		})
	const clients = 64
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(j int64) {
			defer wg.Done()
			tup, err := c.Do(j)
			if err != nil {
				t.Errorf("Do(%d): %v", j, err)
				return
			}
			if len(tup) != 1 || int64(tup[0]) != j {
				t.Errorf("Do(%d) = %v: got someone else's answer", j, tup)
			}
		}(int64(i % 16)) // duplicates on purpose
	}
	wg.Wait()
	rounds, served := c.Stats()
	if served != clients {
		t.Fatalf("served %d, want %d", served, clients)
	}
	if rounds < 1 || rounds > clients {
		t.Fatalf("implausible round count %d", rounds)
	}
}

// TestCoalescerBatchError: a failing batch probe must fail every waiter of
// its round, not hang them.
func TestCoalescerBatchError(t *testing.T) {
	boom := errors.New("boom")
	c := newCoalescer(CoalesceConfig{Window: time.Hour, MaxBatch: 2},
		func(js []int64) ([]renum.Tuple, error) { return nil, boom })
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(j int64) {
			defer wg.Done()
			if _, err := c.Do(j); !errors.Is(err, boom) {
				t.Errorf("Do(%d) err = %v, want boom", j, err)
			}
		}(int64(i))
	}
	wg.Wait()
}
