package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestServerHammer is the subsystem's -race test: many concurrent clients
// mixing every endpoint against one registry while an admin goroutine loads
// tables, re-registers queries and rebuilds (snapshot swaps), and an update
// goroutine mutates the dynamic entry. It asserts no data races (the test's
// reason to exist), no unexpected statuses, and valid JSON throughout.
func TestServerHammer(t *testing.T) {
	s, reg := newTestServer(t,
		CoalesceConfig{Window: 200 * time.Microsecond, MaxBatch: 8},
		Config{CursorTTL: time.Minute})

	const (
		clients = 6
		ops     = 150
	)
	allowed := map[int]bool{200: true, 400: true, 404: true, 409: true, 501: true}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			queries := []string{"Q", "U", "D"}
			var cursor string
			for i := 0; i < ops; i++ {
				q := queries[rng.Intn(len(queries))]
				var raw []byte
				var status int
				switch rng.Intn(10) {
				case 0:
					raw, status = doRaw(s, "GET", "/v1/"+q+"/count", "")
				case 1:
					raw, status = doRaw(s, "GET", fmt.Sprintf("/v1/%s/access?j=%d", q, rng.Intn(12)), "")
				case 2:
					raw, status = doRaw(s, "POST", "/v1/"+q+"/batch", `{"js":[0,1,2,1]}`)
				case 3:
					raw, status = doRaw(s, "GET", fmt.Sprintf("/v1/%s/page?offset=%d&limit=3", q, rng.Intn(8)), "")
				case 4:
					raw, status = doRaw(s, "GET", fmt.Sprintf("/v1/%s/sample?k=2&seed=%d", q, rng.Int63()), "")
				case 5:
					raw, status = doRaw(s, "POST", "/v1/"+q+"/contains", `{"tuple":["1","2"]}`)
					if q == "Q" {
						raw, status = doRaw(s, "POST", "/v1/"+q+"/contains", `{"tuple":["1","2","x"]}`)
					}
				case 6:
					// Alternate formats so the hammer covers both the
					// Prometheus render and the JSON snapshot path.
					if i%2 == 0 {
						praw, pstatus := doRaw(s, "GET", "/metrics", "")
						if pstatus != 200 {
							t.Errorf("client %d op %d: /metrics status %d body %s", id, i, pstatus, praw)
							return
						}
					}
					raw, status = doRaw(s, "GET", "/metrics?format=json", "")
				case 7:
					// Cursor lifecycle: start one, drain a little, maybe close.
					if cursor == "" {
						var m map[string]any
						raw, status = doRaw(s, "POST", "/v1/Q/enum/start?order=random&seed=1", "")
						if status == 200 && json.Unmarshal(raw, &m) == nil {
							cursor = m["cursor"].(string)
						}
					} else {
						raw, status = doRaw(s, "GET", "/v1/Q/enum/next?cursor="+cursor+"&n=2", "")
						var m map[string]any
						if json.Unmarshal(raw, &m) == nil && m["done"] == true {
							cursor = ""
						}
						if rng.Intn(4) == 0 && cursor != "" {
							doRaw(s, "DELETE", "/v1/Q/enum?cursor="+cursor, "")
							cursor = ""
						}
					}
				case 8:
					raw, status = doRaw(s, "GET", "/v1/"+q, "")
				default:
					val := fmt.Sprint(rng.Intn(20))
					op := "insert"
					if rng.Intn(2) == 0 {
						op = "delete"
					}
					raw, status = doRaw(s, "POST", "/v1/D/update",
						fmt.Sprintf(`{"op":%q,"relation":"r","tuple":[%q,%q]}`, op, val, val))
				}
				if status != 0 && !allowed[status] {
					t.Errorf("client %d op %d: status %d body %s", id, i, status, raw)
					return
				}
			}
		}(c)
	}

	// Admin churn: loads, re-registrations and rebuilds force snapshot swaps
	// under the probe traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			csv := fmt.Sprintf(`{"name":"t%d","csv":"u,v\n1,%d\n"}`, i%3, i)
			if raw, status := doRaw(s, "POST", "/admin/load", csv); status != 200 {
				t.Errorf("admin load: %d %s", status, raw)
				return
			}
			if raw, status := doRaw(s, "POST", "/admin/register", `{"program":"`+joinQ+` `+unionQ+`"}`); status != 200 {
				t.Errorf("admin register: %d %s", status, raw)
				return
			}
			if raw, status := doRaw(s, "POST", "/admin/rebuild", ""); status != 200 {
				t.Errorf("admin rebuild: %d %s", status, raw)
				return
			}
		}
	}()

	wg.Wait()

	// The registry must still serve a coherent snapshot.
	if _, gen := reg.Snapshot(); gen == 0 {
		t.Fatal("no snapshot swaps happened")
	}
	m := do(t, s, "GET", "/v1/Q/count", "", 200)
	if m["count"] == nil {
		t.Fatal("post-hammer count missing")
	}
	m = do(t, s, "GET", "/metrics?format=json", "", 200)
	if m["endpoints"] == nil {
		t.Fatal("post-hammer metrics missing")
	}
}

// TestRebuildKeepsOldSnapshotCoherent pins the swap semantics directly: an
// entry captured before a rebuild keeps answering from its own generation.
func TestRebuildKeepsOldSnapshotCoherent(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{}, Config{})
	old, _ := reg.Lookup("Q")
	oldCount := old.Count()
	oldFirst, err := old.access(0)
	if err != nil {
		t.Fatal(err)
	}

	// Grow r and rebuild: the registry serves a new generation...
	do(t, s, "POST", "/admin/load", `{"name":"r","csv":"a,b\n1,2\n1,3\n2,3\n3,1\n7,3\n"}`, 200)
	do(t, s, "POST", "/admin/rebuild", "", 200)
	fresh, _ := reg.Lookup("Q")
	if fresh == old {
		t.Fatal("rebuild did not replace the entry")
	}
	if fresh.Count() <= oldCount {
		t.Fatalf("rebuilt count = %d, want > %d", fresh.Count(), oldCount)
	}

	// ...while the captured entry still answers exactly as before.
	if old.Count() != oldCount {
		t.Fatalf("old snapshot count changed: %d", old.Count())
	}
	gotFirst, err := old.access(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oldFirst {
		if gotFirst[i] != oldFirst[i] {
			t.Fatalf("old snapshot answer changed: %v vs %v", gotFirst, oldFirst)
		}
	}
}
