package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// promText scrapes the default (Prometheus) /metrics format.
func promText(t testing.TB, s *Server) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	return rec.Body.String()
}

// TestPrometheusExposition drives every hot endpoint, then checks the text
// exposition is lint-clean and carries the families the dashboards rely on:
// per-endpoint HTTP series and per-query, per-op probe histograms.
func TestPrometheusExposition(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{Window: time.Millisecond}, Config{})
	do(t, s, "GET", "/v1/Q/count", "", 200)
	do(t, s, "GET", "/v1/Q/access?j=0", "", 200)
	do(t, s, "GET", "/v1/Q/batch?js=0,1", "", 200)
	do(t, s, "GET", "/v1/Q/page?offset=0&limit=2", "", 200)
	do(t, s, "GET", "/v1/Q/sample?k=1&seed=1", "", 200)
	m := do(t, s, "POST", "/v1/Q/enum/start?order=enum", "", 200)
	do(t, s, "GET", "/v1/Q/enum/next?cursor="+m["cursor"].(string)+"&n=2", "", 200)
	// The initial Register ran before New installed the observer; a rebuild
	// is the first observed build and populates the build histograms.
	do(t, s, "POST", "/admin/rebuild", "", 200)

	text := promText(t, s)
	if errs := obs.Lint(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition fails lint: %v\nfull text:\n%s", errs, text)
	}

	for _, want := range []string{
		`renum_http_requests_total{endpoint="count"} 1`,
		`renum_http_requests_total{endpoint="access"} 1`,
		`renum_http_request_duration_seconds_bucket{endpoint="access",le="+Inf"} 1`,
		`renum_probe_duration_seconds_count{query="Q",op="access"} 1`,
		`renum_probe_duration_seconds_count{query="Q",op="count"} 1`,
		`renum_probe_duration_seconds_count{query="Q",op="batch"} 1`,
		`renum_probe_duration_seconds_count{query="Q",op="page"} 1`,
		`renum_probe_duration_seconds_count{query="Q",op="sample"} 1`,
		`renum_probe_duration_seconds_count{query="Q",op="cursor"} 1`,
		"\nrenum_generation ",
		"renum_ready 1",
		"# TYPE renum_http_request_duration_seconds histogram",
		"# TYPE renum_probe_duration_seconds histogram",
		"# TYPE renum_build_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The rebuild was observed per stage and in total, labeled with the
	// generation it published.
	_, gen := s.reg.Snapshot()
	for _, want := range []string{
		fmt.Sprintf(`renum_build_duration_seconds_count{query="Q",stage="total",generation="%d"} 1`, gen),
		fmt.Sprintf(`renum_build_duration_seconds_count{query="Q",stage="index_build",generation="%d"} 1`, gen),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want,
				grepLines(text, "renum_build_duration_seconds_count"))
		}
	}
}

// TestPrometheusWALAndCompactionFamilies: an acknowledged update appears in
// the WAL append/fsync histograms, and a compaction in the compaction ones.
func TestPrometheusWALAndCompactionFamilies(t *testing.T) {
	snapDir, walDir := t.TempDir(), t.TempDir()
	s, reg := newTestServer(t, CoalesceConfig{}, Config{SnapshotDir: snapDir})
	if _, _, err := reg.AttachWAL(walDir, wal.SyncAlways); err != nil {
		t.Fatal(err)
	}
	defer reg.CloseWAL()
	do(t, s, "POST", "/v1/D/update", `{"op":"insert","relation":"r","tuple":["9","9"]}`, 200)

	text := promText(t, s)
	for _, want := range []string{
		"renum_wal_append_duration_seconds_count 1",
		"renum_wal_fsync_duration_seconds_count 1",
		"renum_wal_append_bytes_total",
		"renum_wal_depth 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("after update, exposition missing %q\n%s", want, text)
		}
	}

	if _, _, err := reg.Compact(snapDir); err != nil {
		t.Fatal(err)
	}
	text = promText(t, s)
	for _, want := range []string{
		"renum_compaction_duration_seconds_count 1",
		"renum_compaction_records_folded_total 1",
		"renum_compactions_total 1",
		"renum_snapshot_save_duration_seconds_count 1",
		"renum_generations_published_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("after compaction, exposition missing %q\n%s", want, text)
		}
	}
	if errs := obs.Lint(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition fails lint after compaction: %v", errs)
	}
}

// TestPrometheusPlanAndCacheFamilies: planner searches observed at rebuild
// time land in the per-query plan families, and a configured answer cache
// exports its hit/miss/byte families — all lint-clean.
func TestPrometheusPlanAndCacheFamilies(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{AnswerCacheBytes: 1 << 20})
	// The initial Register predates the observer; the rebuild is the first
	// observed build and runs one planner search per static entry (Q and U —
	// the dynamic D skips planning).
	do(t, s, "POST", "/admin/rebuild", "", 200)
	for i := 0; i < 3; i++ { // miss, admit, hit
		do(t, s, "GET", "/v1/Q/access?j=0", "", 200)
	}

	text := promText(t, s)
	if errs := obs.Lint(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition fails lint: %v\nfull text:\n%s", errs, text)
	}
	for _, want := range []string{
		`renum_plan_searches_total{query="Q"} 1`,
		`renum_plan_searches_total{query="U"} 1`,
		"renum_plan_candidates_total ",
		"renum_plan_improved_total ",
		"renum_plan_search_duration_seconds_count 2",
		"renum_cache_hits_total 1",
		"renum_cache_misses_total 2",
		"renum_cache_admitted_total 1",
		"renum_cache_evicted_total 0",
		// The rebuild published a generation while the cache was attached.
		"renum_cache_invalidations_total 1",
		"renum_cache_entries 1",
		"renum_cache_bytes ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, grepLines(text, "renum_plan")+grepLines(text, "renum_cache"))
		}
	}

	// With no cache configured, the cache families emit no samples (headers
	// remain) — the same contract the WAL families follow with no log
	// attached, so dashboards see absence, not zeros.
	s2, _ := newTestServer(t, CoalesceConfig{}, Config{})
	for _, line := range strings.Split(promText(t, s2), "\n") {
		if strings.HasPrefix(line, "renum_cache_") {
			t.Errorf("cache sample exported without a configured cache: %q", line)
		}
	}
}

// TestMetricsJSONShapeStable pins the ?format=json document shape: the
// top-level keys and every EndpointSummary field name are a compatibility
// surface (examples/http_traffic and renumload -metrics-url decode them).
func TestMetricsJSONShapeStable(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	do(t, s, "GET", "/v1/Q/count", "", 200)

	m := do(t, s, "GET", "/metrics?format=json", "", 200)
	for _, key := range []string{"uptime_ms", "generation", "cursors", "endpoints", "coalescer", "wal"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics JSON missing top-level key %q", key)
		}
	}
	if len(m) != 6 {
		t.Errorf("metrics JSON has %d top-level keys, want 6: %v", len(m), m)
	}

	eps := m["endpoints"].([]any)
	if len(eps) == 0 {
		t.Fatal("no endpoint summaries")
	}
	wantFields := []string{
		"endpoint", "count", "errors", "bytes_out", "latency_window",
		"mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms", "stddev_ms",
		"allocs_per_req_est", "allocs_window",
	}
	ep := eps[0].(map[string]any)
	for _, f := range wantFields {
		if _, ok := ep[f]; !ok {
			t.Errorf("EndpointSummary missing field %q", f)
		}
	}
	if len(ep) != len(wantFields) {
		t.Errorf("EndpointSummary has %d fields, want %d: %v", len(ep), len(wantFields), ep)
	}

	// The same scrape decoded twice is byte-identical modulo uptime: the
	// document is a deterministic function of the recorded state.
	raw1, _ := doRaw(s, "GET", "/metrics?format=json", "")
	var d1, d2 map[string]any
	if err := json.Unmarshal(raw1, &d1); err != nil {
		t.Fatal(err)
	}
	raw2, _ := doRaw(s, "GET", "/metrics?format=json", "")
	if err := json.Unmarshal(raw2, &d2); err != nil {
		t.Fatal(err)
	}
	delete(d1, "uptime_ms")
	delete(d2, "uptime_ms")
	// The metrics endpoint's own counters move between the scrapes; drop the
	// endpoints array and compare the rest.
	delete(d1, "endpoints")
	delete(d2, "endpoints")
	b1, _ := json.Marshal(d1)
	b2, _ := json.Marshal(d2)
	if string(b1) != string(b2) {
		t.Errorf("metrics JSON not stable across idle scrapes:\n%s\n%s", b1, b2)
	}
}

// TestMetricsScrapeHammer runs concurrent probe recording, both scrape
// formats, and generation swaps together; meaningful mainly under -race.
func TestMetricsScrapeHammer(t *testing.T) {
	s, reg := newTestServer(t, CoalesceConfig{Window: 100 * time.Microsecond}, Config{})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch i % 4 {
				case 0:
					doRaw(s, "GET", "/v1/Q/access?j=0", "")
				case 1:
					doRaw(s, "GET", "/v1/U/count", "")
				case 2:
					doRaw(s, "GET", "/metrics", "")
				default:
					doRaw(s, "GET", "/metrics?format=json", "")
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := reg.Rebuild(); err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	text := promText(t, s)
	if errs := obs.Lint(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition fails lint after hammer: %v", errs)
	}
	// Rebuilt generations share the probe series with the original entries
	// (get-or-create registration), so the access counts survived the swaps.
	if !strings.Contains(text, `renum_probe_duration_seconds_count{query="Q",op="access"} 100`) {
		t.Errorf("probe counts did not survive generation swaps:\n%s",
			grepLines(text, "renum_probe_duration_seconds_count"))
	}
}

// grepLines extracts matching lines for a focused failure message.
func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return fmt.Sprint(strings.Join(out, "\n"))
}

// TestReadyz: ready by default, 503 while drained, parity on the fast loop.
func TestReadyz(t *testing.T) {
	s, _ := newTestServer(t, CoalesceConfig{}, Config{})
	_, addr := startFast(t, s)

	m := do(t, s, "GET", "/readyz", "", 200)
	if m["ready"] != true {
		t.Fatalf("readyz = %v", m)
	}
	if fr := fastDo(t, addr, "GET", "/readyz", "", ""); fr.status != 200 {
		t.Fatalf("fast readyz = %d (%s)", fr.status, fr.body)
	}

	s.SetReady(false)
	raw, status := doRaw(s, "GET", "/readyz", "")
	if status != 503 || !strings.Contains(string(raw), `"ready":false`) {
		t.Fatalf("drained readyz = %d %s, want 503 ready:false", status, raw)
	}
	if fr := fastDo(t, addr, "GET", "/readyz", "", ""); fr.status != 503 {
		t.Fatalf("fast drained readyz = %d", fr.status)
	}
	// Liveness is unaffected by the drain: the process is still healthy.
	do(t, s, "GET", "/healthz", "", 200)

	s.SetReady(true)
	do(t, s, "GET", "/readyz", "", 200)
}
