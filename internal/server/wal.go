// Write-ahead logging and online compaction for the registry.
//
// The durability contract: when a WAL is attached, every accepted /update
// is appended to the current segment — and fsynced, under the default
// policy — *before* it mutates the index, and acknowledged only after
// both. The served dynamic state is therefore always reconstructible as
// the newest snapshot generation plus a replay of that generation's
// segment, which is exactly what boot does (Registry.AttachWAL after
// restoring gen-G.snap opens wal-G.log and replays it).
//
// Records store tuple cells as strings, not interned values: replay
// re-interns them against the restored dictionary, whose append-only,
// deterministic assignment reproduces consistent values without the log
// depending on dictionary state.
//
// Compaction folds the segment back into the snapshot lineage: rebuild
// every updatable entry aside (Handle.CompactAside — byte-identical
// enumeration, tombstones preserved), write gen+1's snapshot atomically,
// rotate the WAL to gen+1's empty segment, and publish the rebuilt entries
// with the registry's usual pointer swap. Probes never block — only
// updates pause, on the same mutex that orders append against apply. A
// crash between any two of those steps leaves a recoverable pairing on
// disk: the newest snapshot plus whatever segment matches it.
package server

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro"
	"repro/internal/load"
	"repro/internal/wal"
)

// errWALAppend marks a failed append: the update was NOT applied (the
// contract is append-before-apply) and the client must see a server error,
// not a 400.
var errWALAppend = errors.New("server: WAL append failed; update not applied")

// errNoWAL marks Compact called without an attached WAL — a configuration
// mistake by the caller (400), unlike the internal fold/rotate failures.
var errNoWAL = errors.New("server: no WAL attached (start the daemon with -wal-dir)")

// walState couples the registry to its write-ahead log. The zero value is
// "no WAL attached"; mu is meaningful either way — it serializes updates
// so that log order always equals apply order.
type walState struct {
	mu     sync.Mutex
	log    *wal.Log
	dir    string
	policy wal.SyncPolicy
	gen    uint64 // generation whose snapshot this segment extends

	replayed    int64
	skipped     int64
	compactions int64
	folded      int64

	// Rotation cleanup warnings: the rotation itself succeeded (new segment
	// installed, old records folded) but closing or removing the superseded
	// segment failed. Non-fatal, surfaced via /metrics so disk problems are
	// not silent.
	rotateWarns    int64
	lastRotateWarn string
}

// AttachWAL opens (creating if absent) the WAL segment paired with the
// registry's current generation inside dir, replays its records against
// the served entries, and begins appending subsequent updates to it. A
// torn tail — the signature of a crash mid-append — is truncated, never
// fatal. Records that no longer resolve (entry gone, no longer updatable,
// bad target) are counted as skipped rather than failing the boot.
func (r *Registry) AttachWAL(dir string, policy wal.SyncPolicy) (replayed, skipped int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wal.mu.Lock()
	defer r.wal.mu.Unlock()
	if r.wal.log != nil {
		return 0, 0, errors.New("server: WAL already attached")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, 0, err
	}
	s := r.snap.Load()
	lg, recs, err := wal.Open(load.WALPath(dir, s.gen), policy)
	if err != nil {
		return 0, 0, err
	}
	for _, rec := range recs {
		if err := replayRecord(s, rec); err != nil {
			skipped++
			continue
		}
		replayed++
	}
	lg.SetHooks(r.walHooks())
	r.wal.log = lg
	r.wal.dir = dir
	r.wal.policy = policy
	r.wal.gen = s.gen
	r.wal.replayed = int64(replayed)
	r.wal.skipped = int64(skipped)
	return replayed, skipped, nil
}

// walHooks renders the registry's observer as wal.Hooks (empty when
// unobserved, so the log's append path does no timing at all).
func (r *Registry) walHooks() wal.Hooks {
	o := r.obs
	if o == nil {
		return wal.Hooks{}
	}
	return wal.Hooks{Append: o.WALAppend, Sync: o.WALFsync}
}

// CloseWAL detaches and closes the log (daemon shutdown). Updates applied
// afterwards are no longer logged.
func (r *Registry) CloseWAL() error {
	r.wal.mu.Lock()
	defer r.wal.mu.Unlock()
	if r.wal.log == nil {
		return nil
	}
	err := r.wal.log.Close()
	r.wal.log = nil
	return err
}

// replayRecord applies one logged update to the snapshot's entries,
// without re-logging it. It mirrors ApplyUpdate's resolution exactly.
func replayRecord(s *snapshot, rec wal.Record) error {
	e, ok := s.entries[rec.Query]
	if !ok {
		return fmt.Errorf("no entry %q", rec.Query)
	}
	upd, err := e.H.Updater()
	if err != nil {
		return err
	}
	if uv, ok := upd.(renum.UpdateValidator); ok {
		if err := uv.ValidateUpdate(rec.Relation, len(rec.Tuple)); err != nil {
			return err
		}
	}
	dict := s.db.Dict()
	switch rec.Op {
	case wal.OpInsert:
		_, err = upd.Insert(rec.Relation, internCells(dict, rec.Tuple))
	case wal.OpDelete:
		t, known := lookupCells(dict, rec.Tuple)
		if !known {
			return nil // a tuple with unknown values is in no relation
		}
		_, err = upd.Delete(rec.Relation, t)
	default:
		err = fmt.Errorf("unknown op %v", rec.Op)
	}
	return err
}

func internCells(dict *renum.Dict, cells []string) renum.Tuple {
	t := make(renum.Tuple, len(cells))
	for i, c := range cells {
		t[i] = dict.Intern(c)
	}
	return t
}

func lookupCells(dict *renum.Dict, cells []string) (renum.Tuple, bool) {
	t := make(renum.Tuple, len(cells))
	for i, c := range cells {
		v, ok := dict.Lookup(c)
		if !ok {
			return nil, false
		}
		t[i] = v
	}
	return t, true
}

// ApplyUpdate runs one update through the served entry's updater with the
// append-before-apply contract: the record lands in the WAL (durable to
// the attached policy's standard) strictly before the dictionary or the
// index change, and the caller acknowledges the client strictly after.
// e and db are the handler's lock-free view; under the update mutex they
// are re-resolved from the snapshot current at apply time, because a
// Compact can publish rebuilt-aside entries between the handler's load and
// this lock — applying to the superseded handle would append the record to
// the rotated segment yet leave the change invisible to every served read,
// and the next compaction (which rebuilds from the served handle) would
// drop it permanently. Entry and dictionary still come from ONE load, so a
// concurrent rebuild cannot split them across generations.
//
// The update mutex spans append + apply, so WAL order equals apply order;
// probes stay lock-free throughout.
func (r *Registry) ApplyUpdate(e *Entry, db *renum.Database, op wal.Op, relName string, cells []string) (changed bool, err error) {
	r.wal.mu.Lock()
	defer r.wal.mu.Unlock()
	// Compact holds this mutex across its pointer swap, so the snapshot
	// loaded here is the generation the append will extend.
	if s := r.snap.Load(); s.entries[e.Name] != nil {
		e, db = s.entries[e.Name], s.db
	}
	upd, err := e.H.Updater()
	if err != nil {
		return false, err
	}
	// Validate before any side effect: garbage must not reach the
	// append-only dictionary or the log.
	if uv, ok := upd.(renum.UpdateValidator); ok {
		if err := uv.ValidateUpdate(relName, len(cells)); err != nil {
			return false, err
		}
	}
	dict := db.Dict()
	switch op {
	case wal.OpDelete:
		// Resolve first — a tuple with values the dictionary has never
		// seen is in no relation: nothing to apply, and nothing worth
		// logging (an attacker looping such deletes would otherwise grow
		// the log without bound, the disk analog of dict poisoning).
		t, known := lookupCells(dict, cells)
		if !known {
			return false, nil
		}
		if err := r.appendLocked(op, e.Name, relName, cells); err != nil {
			return false, err
		}
		return upd.Delete(relName, t)
	case wal.OpInsert:
		// Append before interning: the record carries the cell strings,
		// so the log never depends on dictionary state, and a failed
		// append leaves the dictionary untouched.
		if err := r.appendLocked(op, e.Name, relName, cells); err != nil {
			return false, err
		}
		return upd.Insert(relName, internCells(dict, cells))
	}
	return false, fmt.Errorf("server: unknown update op %v", op)
}

// appendLocked logs one record if a WAL is attached (wal.mu held).
func (r *Registry) appendLocked(op wal.Op, query, rel string, cells []string) error {
	if r.wal.log == nil {
		return nil
	}
	if err := r.wal.log.Append(wal.Record{Op: op, Query: query, Relation: rel, Tuple: cells}); err != nil {
		return fmt.Errorf("%w: %v", errWALAppend, err)
	}
	return nil
}

// rotateLocked starts a fresh, empty segment paired with gen and removes
// the superseded one (both locks held). When the segment for gen is the
// current file, Create truncates it in place and nothing is removed.
// Close/remove failures on the superseded segment do not fail the rotation
// — the new segment is already installed and the old records are folded —
// but they are recorded as rotate warnings (see WALStats), not dropped.
func (r *Registry) rotateLocked(gen uint64) error {
	newLog, err := wal.Create(load.WALPath(r.wal.dir, gen), r.wal.policy)
	if err != nil {
		return err
	}
	newLog.SetHooks(r.walHooks())
	old, oldPath := r.wal.log, r.wal.log.Path()
	r.wal.log, r.wal.gen = newLog, gen
	if err := old.Close(); err != nil {
		r.rotateWarnLocked(fmt.Sprintf("close superseded segment %s: %v", oldPath, err))
	}
	if oldPath != newLog.Path() {
		if err := os.Remove(oldPath); err != nil {
			r.rotateWarnLocked(fmt.Sprintf("remove superseded segment %s: %v", oldPath, err))
		}
	}
	return nil
}

// rotateWarnLocked records a non-fatal rotation cleanup failure (wal.mu
// held) for /metrics.
func (r *Registry) rotateWarnLocked(msg string) {
	r.wal.rotateWarns++
	r.wal.lastRotateWarn = msg
}

// Compact folds the WAL into a new snapshot generation: every updatable
// entry is rebuilt aside from its current logical contents, the catalog is
// saved as gen+1's snapshot, the WAL rotates to gen+1's empty segment, and
// the rebuilt entries are published with one atomic pointer swap. Probes
// never block (in-flight readers keep the old snapshot; new requests see
// the new one); updates pause for the duration. An empty segment is a
// no-op: folding nothing would just mint generations.
//
// Crash safety: the snapshot is written atomically *before* the rotation,
// and the rotation before the publish — at every intermediate point the
// disk holds a snapshot generation plus a segment whose replay reproduces
// exactly the acknowledged state.
func (r *Registry) Compact(snapshotDir string) (gen uint64, folded int64, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wal.mu.Lock()
	defer r.wal.mu.Unlock()
	if r.wal.log == nil {
		return 0, 0, errNoWAL
	}
	cur := r.snap.Load()
	folded = r.wal.log.Depth()
	if folded == 0 {
		return cur.gen, 0, nil
	}
	t0 := time.Now()
	newGen := cur.gen + 1
	entries := make(map[string]*Entry, len(cur.entries))
	for name, e := range cur.entries {
		if !e.H.Has(renum.CapUpdate) {
			entries[name] = e // static entries did not change; share them
			continue
		}
		h, err := e.H.CompactAside()
		if err != nil {
			return 0, 0, fmt.Errorf("compact %s: %w", name, err)
		}
		// Updatable entries stay uncoalesced, same as build(); they keep
		// recording into the query's existing probe histograms.
		entries[name] = &Entry{Name: e.Name, Text: e.Text, H: h, src: e.src, qm: e.qm}
	}
	if err := os.MkdirAll(snapshotDir, 0o755); err != nil {
		return 0, 0, err
	}
	var ces []renum.CatalogEntry
	for _, name := range sortedNames(entries) {
		e := entries[name]
		if !e.H.Has(renum.CapSnapshot) {
			return 0, 0, fmt.Errorf("compact: entry %q has no snapshot form", name)
		}
		ces = append(ces, renum.CatalogEntry{Name: name, Q: e.src.Src(), H: e.H})
	}
	snapPath := load.SnapshotPath(snapshotDir, newGen)
	saveT0 := time.Now()
	if err := renum.SaveSnapshot(snapPath, cur.db, newGen, ces); err != nil {
		return 0, 0, err
	}
	r.obs.ObserveSnapshotSave(newGen, time.Since(saveT0))
	if err := r.rotateLocked(newGen); err != nil {
		// The registry keeps serving gen cur.gen and acking updates into
		// wal-<cur.gen>.log, but boot pairs the NEWEST snapshot with its own
		// segment: leaving gen+1's snapshot behind would pair it with an
		// empty wal-<gen+1>.log on the next boot and silently drop every
		// update acked after this failure. Unpublish it before reporting.
		if rmErr := os.Remove(snapPath); rmErr != nil {
			return 0, 0, fmt.Errorf("rotate WAL: %w; orphaned snapshot %s not removed (%v) — remove it before restarting or updates acked after this point will be lost on boot", err, snapPath, rmErr)
		}
		return 0, 0, err
	}
	r.wal.compactions++
	r.wal.folded += folded
	r.snap.Store(&snapshot{db: cur.db, entries: entries, gen: newGen})
	r.obs.ObserveCompaction(time.Since(t0), folded)
	r.obs.ObservePublish(newGen)
	return newGen, folded, nil
}

// WALStats is the /metrics view of the write-ahead log.
type WALStats struct {
	Attached      bool   `json:"attached"`
	Path          string `json:"path,omitempty"`
	SegmentGen    uint64 `json:"segment_generation"`
	Depth         int64  `json:"depth"`
	Replayed      int64  `json:"replayed"`
	ReplaySkipped int64  `json:"replay_skipped"`
	TornTail      bool   `json:"torn_tail_recovered"`
	Compactions   int64  `json:"compactions"`
	Folded        int64  `json:"records_folded"`

	// Non-fatal rotation cleanup failures (close/remove of a superseded
	// segment); the fold itself succeeded.
	RotateWarnings    int64  `json:"rotate_warnings,omitempty"`
	LastRotateWarning string `json:"last_rotate_warning,omitempty"`
}

// WALStats reports the current WAL state for /metrics.
func (r *Registry) WALStats() WALStats {
	r.wal.mu.Lock()
	defer r.wal.mu.Unlock()
	st := WALStats{
		Replayed:          r.wal.replayed,
		ReplaySkipped:     r.wal.skipped,
		Compactions:       r.wal.compactions,
		Folded:            r.wal.folded,
		RotateWarnings:    r.wal.rotateWarns,
		LastRotateWarning: r.wal.lastRotateWarn,
	}
	if r.wal.log != nil {
		st.Attached = true
		st.Path = r.wal.log.Path()
		st.SegmentGen = r.wal.gen
		st.Depth = r.wal.log.Depth()
		st.TornTail = r.wal.log.TornTail() != nil
	}
	return st
}
