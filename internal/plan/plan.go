// Package plan is the cost-based join-tree planner. The paper's guarantees —
// logarithmic random access after linear preprocessing — hold for *any*
// valid join tree of a free-connex CQ, but the constant factors (bucket
// widths, probe depth, index size) vary a lot with which tree is picked, and
// the tree is a function of the body-atom order the reduction sees. The
// planner enumerates body-atom orders (and disjunct orders of a UCQ), replays
// the reduction's elimination decisions on schemas alone
// (reduce.SimulateEliminate — the same driver the real reduction runs, so the
// predicted tree is exactly what BuildFullJoin will produce), costs each
// candidate from per-relation statistics (stats.CollectRelation: tuple counts
// and per-column distinct counts off relation.GroupBy), and returns the
// cheapest order. The as-parsed order is always candidate 0 and wins ties, so
// the planner never makes a query more expensive under its own model.
package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/hypergraph"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/stats"
)

// Mode selects the planner behavior.
type Mode string

const (
	// ModeCost enumerates and costs candidate trees, picking the cheapest.
	ModeCost Mode = "cost"
	// ModeOff keeps the as-parsed order byte-for-byte (the planner is not
	// consulted at all).
	ModeOff Mode = "off"
)

// ParseMode validates a planner mode string (CLI flags).
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeCost, ModeOff:
		return Mode(s), nil
	}
	return "", fmt.Errorf("plan: unknown planner mode %q (want cost or off)", s)
}

const (
	// maxExactAtoms bounds exhaustive permutation: n! orders up to 6 atoms
	// (720 schema-only simulations — microseconds), heuristic orders beyond.
	maxExactAtoms = 6
	// maxCandidates bounds the distinct trees recorded and costed.
	maxCandidates = 256
	// probeWeight converts per-probe cost into build-cost units: the serving
	// tier amortizes each index over many probes, so a tree that probes
	// cheaper is worth a moderately larger build.
	probeWeight = 256.0
)

// Candidate is one costed join-tree alternative.
type Candidate struct {
	// Order is the body-atom permutation (CQ) or disjunct permutation (UCQ)
	// relative to the as-parsed query. Candidate 0 is always the identity.
	Order []int
	// Cost is the total estimated cost (Build + probeWeight·Probe).
	Cost float64
	// Build estimates the index build work: the sum of estimated node sizes
	// of the remainder join tree.
	Build float64
	// Probe estimates one random-access probe: log2 of the root size plus
	// log2 of each non-root node's expected bucket width.
	Probe float64
	// Tree renders the predicted remainder tree: surviving atoms (by
	// as-parsed index) with their parents.
	Tree string
}

// Plan records a planning decision for Explain and metrics.
type Plan struct {
	// Kind is "cq" or "ucq".
	Kind string
	// Mode the planner ran in.
	Mode Mode
	// Candidates lists the distinct costed trees, identity first.
	Candidates []Candidate
	// Chosen indexes the winning candidate.
	Chosen int
	// Enumerated counts the orders examined before tree deduplication.
	Enumerated int
	// Duration is the wall-clock planning time.
	Duration time.Duration
}

// Identity reports whether the chosen order is the as-parsed one.
func (p *Plan) Identity() bool {
	return p == nil || p.Chosen == 0
}

// ChosenCost returns the winner's cost; IdentityCost the as-parsed cost.
func (p *Plan) ChosenCost() float64   { return p.Candidates[p.Chosen].Cost }
func (p *Plan) IdentityCost() float64 { return p.Candidates[0].Cost }

// Explain renders the candidate set with costs and the winner, the section
// Handle.Explain prepends to the join-tree rendering.
func (p *Plan) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan: %s %s, %d candidate tree(s) from %d order(s) in %s\n",
		p.Kind, p.Mode, len(p.Candidates), p.Enumerated, p.Duration.Round(time.Microsecond))
	const maxListed = 12
	for i, c := range p.Candidates {
		if i >= maxListed {
			fmt.Fprintf(&sb, "  … %d more candidate(s)\n", len(p.Candidates)-maxListed)
			break
		}
		marker := " "
		if i == p.Chosen {
			marker = "*"
		}
		note := ""
		if i == 0 {
			note = "  (as parsed)"
		}
		fmt.Fprintf(&sb, "%s [%d] order %v  cost %.3g (build %.3g, probe %.3g)  %s%s\n",
			marker, i, c.Order, c.Cost, c.Build, c.Probe, c.Tree, note)
	}
	return sb.String()
}

// ---------------------------------------------------------------------- CQ

// ChooseCQ plans q over db: it returns the body-reordered CQ of the cheapest
// candidate tree (the as-parsed query itself when identity wins) plus the
// plan record. Planning failures of the as-parsed order (cyclic body,
// non-free-connex head) return q unchanged with the error — the caller's
// real build will surface the same condition with its usual typed error.
func ChooseCQ(db *relation.Database, q *query.CQ, mode Mode) (*query.CQ, *Plan, error) {
	t0 := time.Now()
	p := &Plan{Kind: "cq", Mode: mode}
	head := q.HeadSet()

	est, err := atomEstimates(db, q)
	if err != nil {
		return q, nil, err
	}

	seen := make(map[string]bool)
	best, bestCost := 0, math.Inf(1)
	for _, order := range bodyOrders(q, est) {
		p.Enumerated++
		c, sig, err := costOrder(q, order, head, est)
		if err != nil {
			if len(p.Candidates) == 0 {
				// The as-parsed order itself is outside the supported class.
				return q, nil, err
			}
			continue
		}
		if seen[sig] {
			continue
		}
		seen[sig] = true
		if len(p.Candidates) >= maxCandidates {
			break
		}
		p.Candidates = append(p.Candidates, c)
		// Strict improvement only: ties keep the earlier (identity-first)
		// candidate, so equal-cost plans never perturb the as-parsed order.
		if c.Cost < bestCost {
			best, bestCost = len(p.Candidates)-1, c.Cost
		}
	}
	p.Chosen = best
	p.Duration = time.Since(t0)
	if p.Identity() {
		return q, p, nil
	}
	return permuteBody(q, p.Candidates[best].Order), p, nil
}

// permuteBody returns q with its body atoms reordered; the head (and thus
// the answer set) is unchanged.
func permuteBody(q *query.CQ, order []int) *query.CQ {
	body := make([]query.Atom, len(order))
	for i, o := range order {
		body[i] = q.Body[o]
	}
	return &query.CQ{
		Name: q.Name,
		Head: append([]string(nil), q.Head...),
		Body: body,
	}
}

// bodyOrders yields the candidate body-atom orders: all n! permutations in
// lexicographic order (identity first) up to maxExactAtoms, and beyond that
// the identity, size-sorted (ascending and descending) and adjacent-swap
// orders — a bounded neighborhood that still finds the common wins (a small
// filtered atom promoted to the root).
func bodyOrders(q *query.CQ, est []atomEst) [][]int {
	n := len(q.Body)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if n <= 1 {
		return [][]int{identity}
	}
	if n <= maxExactAtoms {
		return permutations(n)
	}
	var orders [][]int
	add := func(o []int) { orders = append(orders, o) }
	add(identity)
	bySize := func(desc bool) []int {
		o := append([]int(nil), identity...)
		sort.SliceStable(o, func(a, b int) bool {
			if desc {
				return est[o[a]].size > est[o[b]].size
			}
			return est[o[a]].size < est[o[b]].size
		})
		return o
	}
	add(bySize(false))
	add(bySize(true))
	for i := 0; i < n-1; i++ {
		o := append([]int(nil), identity...)
		o[i], o[i+1] = o[i+1], o[i]
		add(o)
	}
	return orders
}

// permutations returns every permutation of 0..n-1 in lexicographic order.
func permutations(n int) [][]int {
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var out [][]int
	for {
		out = append(out, append([]int(nil), cur...))
		// Next lexicographic permutation.
		i := n - 2
		for i >= 0 && cur[i] >= cur[i+1] {
			i--
		}
		if i < 0 {
			return out
		}
		j := n - 1
		for cur[j] <= cur[i] {
			j--
		}
		cur[i], cur[j] = cur[j], cur[i]
		for l, r := i+1, n-1; l < r; l, r = l+1, r-1 {
			cur[l], cur[r] = cur[r], cur[l]
		}
	}
}

// costOrder simulates the reduction for one body order and costs the
// predicted remainder tree. sig is a structural signature used to collapse
// orders that produce the identical index.
func costOrder(q *query.CQ, order []int, head map[string]bool, est []atomEst) (Candidate, string, error) {
	schemas := make([][]string, len(order))
	for i, o := range order {
		schemas[i] = q.Body[o].Vars()
	}
	surviving, atoms, err := reduce.SimulateEliminate(schemas, head)
	if err != nil {
		return Candidate{}, "", err
	}
	rh := &hypergraph.Hypergraph{}
	for i, s := range surviving {
		rh.Edges = append(rh.Edges, hypergraph.NewEdge(i, s))
	}
	rtree, err := rh.JoinTree()
	if err != nil {
		return Candidate{}, "", err
	}

	// Parent of survivor i (as survivor index), -1 for the root.
	parent := make([]int, len(surviving))
	for i := range parent {
		parent[i] = -1
	}
	for _, tn := range rtree.Nodes {
		if tn.Parent != nil {
			parent[tn.EdgeID] = tn.Parent.EdgeID
		}
	}

	var build, probe float64
	var sig, tree strings.Builder
	for i, s := range surviving {
		orig := order[atoms[i]] // as-parsed atom index of this survivor
		e := est[orig]
		size := e.setDistinct(s)
		build += size
		if parent[i] < 0 {
			probe += math.Log2(1 + size)
			fmt.Fprintf(&tree, "%d", orig)
		} else {
			shared := intersect(s, surviving[parent[i]])
			width := size / math.Max(1, e.setDistinct(shared))
			probe += math.Log2(1 + math.Max(1, width))
			fmt.Fprintf(&tree, " %d→%d", orig, order[atoms[parent[i]]])
		}
		fmt.Fprintf(&sig, "%d:%v<%d;", orig, s, parent[i])
	}
	return Candidate{
		Order: append([]int(nil), order...),
		Cost:  build + probeWeight*probe,
		Build: build,
		Probe: probe,
		Tree:  "{" + tree.String() + "}",
	}, sig.String(), nil
}

func intersect(a, b []string) []string {
	var out []string
	for _, v := range a {
		for _, w := range b {
			if v == w {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// ------------------------------------------------------------------- stats

// atomEst carries the statistics-derived estimates of one instantiated atom.
type atomEst struct {
	// size estimates the instantiated relation's cardinality: the base tuple
	// count divided by the distinct count of every constant-selected or
	// repeated-variable column.
	size float64
	// varDistinct estimates the distinct values of each atom variable.
	varDistinct map[string]float64
}

// setDistinct estimates the distinct combinations of the variable set s in
// this atom: the product of per-variable distinct counts capped by the
// atom's size (mirroring stats.DistinctAt at the variable level).
func (e atomEst) setDistinct(s []string) float64 {
	est := 1.0
	for _, v := range s {
		if d, ok := e.varDistinct[v]; ok {
			est *= d
		}
		if est > e.size {
			return e.size
		}
	}
	return est
}

// atomEstimates collects base-relation statistics (once per distinct
// relation) and derives per-atom estimates.
func atomEstimates(db *relation.Database, q *query.CQ) ([]atomEst, error) {
	cache := make(map[string]*stats.Stats)
	out := make([]atomEst, len(q.Body))
	for i, a := range q.Body {
		base, err := db.Relation(a.Relation)
		if err != nil {
			return nil, err
		}
		if base.Arity() != len(a.Terms) {
			return nil, fmt.Errorf("plan: atom %s has %d terms, relation %s has arity %d",
				a, len(a.Terms), a.Relation, base.Arity())
		}
		st, ok := cache[a.Relation]
		if !ok {
			st = stats.CollectRelation(base)
			cache[a.Relation] = st
		}
		out[i] = estimateAtom(a, st)
	}
	return out, nil
}

// estimateAtom derives an atom's size and per-variable distinct estimates
// from its base relation's statistics.
func estimateAtom(a query.Atom, st *stats.Stats) atomEst {
	size := float64(st.Tuples)
	firstPos := make(map[string]int, len(a.Terms))
	for pos, t := range a.Terms {
		if t.IsVar() {
			if _, ok := firstPos[t.Var]; !ok {
				firstPos[t.Var] = pos
				continue
			}
		}
		// A constant selection or a repeated-variable equality filters the
		// base relation by roughly one distinct value of this column.
		size /= math.Max(1, float64(st.Distinct[pos]))
	}
	if st.Tuples > 0 && size < 1 {
		size = 1
	}
	vd := make(map[string]float64, len(firstPos))
	for v, pos := range firstPos {
		d := math.Max(1, float64(st.Distinct[pos]))
		if d > size && size > 0 {
			d = size
		}
		vd[v] = d
	}
	return atomEst{size: size, varDistinct: vd}
}

// ---------------------------------------------------------------------- UCQ

// ChooseUCQ plans a union's disjunct order. Only disjuncts 1..n-1 are
// permuted: the first disjunct's head names the union's output columns, so
// keeping it fixed keeps the public Head() (and every wire response's
// column naming) identical while still letting large disjuncts move forward.
// The cost model is the expected scan depth of mc-UCQ position resolution —
// position j is resolved by walking disjunct ranges in order, so putting
// heavy disjuncts early serves most probes with a shallow walk. The caller
// must fall back to the as-parsed order if the reordered union fails
// mc-compatibility (order compatibility is checked by the real build).
func ChooseUCQ(db *relation.Database, u *query.UCQ, mode Mode) (*query.UCQ, *Plan, error) {
	t0 := time.Now()
	p := &Plan{Kind: "ucq", Mode: mode}
	n := len(u.Disjuncts)

	// Estimated mass of each disjunct: the sum of its atoms' estimated
	// instantiated sizes (a proxy for both its answer count and probe work).
	mass := make([]float64, n)
	for i, d := range u.Disjuncts {
		est, err := atomEstimates(db, d)
		if err != nil {
			return u, nil, err
		}
		for _, e := range est {
			mass[i] += e.size
		}
	}

	seen := make(map[string]bool)
	best, bestCost := 0, math.Inf(1)
	for _, order := range disjunctOrders(n, mass) {
		p.Enumerated++
		sig := fmt.Sprint(order)
		if seen[sig] {
			continue
		}
		seen[sig] = true
		var cost float64
		var tree strings.Builder
		for depth, o := range order {
			cost += float64(depth+1) * mass[o]
			if depth > 0 {
				tree.WriteByte(' ')
			}
			fmt.Fprintf(&tree, "%d", o)
		}
		c := Candidate{
			Order: append([]int(nil), order...),
			Cost:  cost,
			Probe: cost,
			Tree:  "{" + tree.String() + "}",
		}
		if len(p.Candidates) >= maxCandidates {
			break
		}
		p.Candidates = append(p.Candidates, c)
		if cost < bestCost {
			best, bestCost = len(p.Candidates)-1, cost
		}
	}
	p.Chosen = best
	p.Duration = time.Since(t0)
	if p.Identity() {
		return u, p, nil
	}
	order := p.Candidates[best].Order
	djs := make([]*query.CQ, n)
	for i, o := range order {
		djs[i] = u.Disjuncts[o]
	}
	return &query.UCQ{Name: u.Name, Disjuncts: djs}, p, nil
}

// disjunctOrders yields candidate disjunct orders with disjunct 0 fixed:
// all (n-1)! tail permutations for small unions, else identity plus the
// mass-sorted tails.
func disjunctOrders(n int, mass []float64) [][]int {
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if n <= 2 {
		return [][]int{identity}
	}
	var orders [][]int
	if n-1 <= maxExactAtoms {
		for _, tail := range permutations(n - 1) {
			o := make([]int, n)
			for i, t := range tail {
				o[i+1] = t + 1
			}
			orders = append(orders, o)
		}
		return orders
	}
	orders = append(orders, identity)
	for _, desc := range []bool{true, false} {
		o := append([]int(nil), identity...)
		tail := o[1:]
		sort.SliceStable(tail, func(a, b int) bool {
			if desc {
				return mass[tail[a]] > mass[tail[b]]
			}
			return mass[tail[a]] < mass[tail[b]]
		})
		orders = append(orders, o)
	}
	return orders
}
