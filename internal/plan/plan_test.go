package plan

import (
	"strings"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

// chainDB builds R1(a,b) ⋈ R2(b,c) with deliberately lopsided sizes: R1 has
// one tuple, R2 has many, so a planner with working statistics can tell the
// orders apart.
func chainDB(t *testing.T) (*relation.Database, *query.CQ) {
	t.Helper()
	db := relation.NewDatabase()
	r1 := db.MustCreate("R1", "a", "b")
	r1.MustInsert(1, 1)
	r2 := db.MustCreate("R2", "b", "c")
	for i := 0; i < 50; i++ {
		r2.MustInsert(relation.Value(i%5), relation.Value(i))
	}
	q, err := query.NewCQ("Q", []string{"a", "b", "c"},
		[]query.Atom{
			query.NewAtom("R1", query.V("a"), query.V("b")),
			query.NewAtom("R2", query.V("b"), query.V("c")),
		})
	if err != nil {
		t.Fatal(err)
	}
	return db, q
}

func TestParseMode(t *testing.T) {
	for _, ok := range []string{"cost", "off"} {
		if m, err := ParseMode(ok); err != nil || string(m) != ok {
			t.Fatalf("ParseMode(%q) = %q, %v", ok, m, err)
		}
	}
	for _, bad := range []string{"", "Cost", "on", "auto"} {
		if _, err := ParseMode(bad); err == nil {
			t.Fatalf("ParseMode(%q) accepted", bad)
		}
	}
}

func TestPermutationsLexOrder(t *testing.T) {
	got := permutations(3)
	want := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	if len(got) != len(want) {
		t.Fatalf("permutations(3) has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("permutations(3)[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestChooseCQIdentityFirstAndTies(t *testing.T) {
	db, q := chainDB(t)
	_, p, err := ChooseCQ(db, q, ModeCost)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != "cq" || len(p.Candidates) == 0 {
		t.Fatalf("plan = %+v", p)
	}
	for i, o := range p.Candidates[0].Order {
		if o != i {
			t.Fatalf("candidate 0 order = %v, want identity", p.Candidates[0].Order)
		}
	}
	if p.ChosenCost() > p.IdentityCost() {
		t.Fatalf("chosen %g > identity %g", p.ChosenCost(), p.IdentityCost())
	}
	// A tie must keep the identity: feed a symmetric query where every order
	// costs the same.
	sym := relation.NewDatabase()
	a := sym.MustCreate("A", "x", "y")
	b := sym.MustCreate("B", "y", "z")
	for i := 0; i < 10; i++ {
		a.MustInsert(relation.Value(i), relation.Value(i))
		b.MustInsert(relation.Value(i), relation.Value(i))
	}
	qs, err := query.NewCQ("S", []string{"x", "y", "z"},
		[]query.Atom{
			query.NewAtom("A", query.V("x"), query.V("y")),
			query.NewAtom("B", query.V("y"), query.V("z")),
		})
	if err != nil {
		t.Fatal(err)
	}
	planned, p, err := ChooseCQ(sym, qs, ModeCost)
	if err != nil {
		t.Fatal(err)
	}
	if p.ChosenCost() == p.IdentityCost() && !p.Identity() {
		t.Fatalf("equal-cost plan moved off the as-parsed order: chose %d", p.Chosen)
	}
	if p.Identity() && planned != qs {
		t.Fatal("identity plan must return the query pointer unchanged")
	}
}

func TestChooseCQPermutesBodyOnly(t *testing.T) {
	db, q := chainDB(t)
	_, p, err := ChooseCQ(db, q, ModeCost)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Candidates {
		pq := permuteBody(q, c.Order)
		if pq.Name != q.Name || len(pq.Head) != len(q.Head) || len(pq.Body) != len(q.Body) {
			t.Fatalf("permuted query shape changed: %v", pq)
		}
		for i, h := range q.Head {
			if pq.Head[i] != h {
				t.Fatalf("head changed under permutation: %v", pq.Head)
			}
		}
		seen := make(map[string]int)
		for _, a := range q.Body {
			seen[a.String()]++
		}
		for _, a := range pq.Body {
			seen[a.String()]--
		}
		for s, n := range seen {
			if n != 0 {
				t.Fatalf("atom multiset changed under order %v: %s off by %d", c.Order, s, n)
			}
		}
	}
}

func TestChooseCQErrors(t *testing.T) {
	db, _ := chainDB(t)
	missing, err := query.NewCQ("M", []string{"x", "y"},
		[]query.Atom{query.NewAtom("NoSuch", query.V("x"), query.V("y"))})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ChooseCQ(db, missing, ModeCost); err == nil {
		t.Fatal("unknown relation did not error")
	}
	wrongArity, err := query.NewCQ("W", []string{"x"},
		[]query.Atom{query.NewAtom("R1", query.V("x"))})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ChooseCQ(db, wrongArity, ModeCost); err == nil {
		t.Fatal("arity mismatch did not error")
	}
}

func TestExplainRendering(t *testing.T) {
	db, q := chainDB(t)
	_, p, err := ChooseCQ(db, q, ModeCost)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Explain()
	for _, want := range []string{"plan: cq cost", "candidate tree(s)", "(as parsed)", "*"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain() missing %q:\n%s", want, out)
		}
	}
}

// TestBodyOrdersHeuristicBeyondExact: above maxExactAtoms the enumeration
// must stay polynomial — identity, two size-sorted orders, and the n-1
// adjacent swaps — instead of n! permutations.
func TestBodyOrdersHeuristicBeyondExact(t *testing.T) {
	db := relation.NewDatabase()
	n := maxExactAtoms + 2
	var body []query.Atom
	head := []string{"x0"}
	for i := 0; i < n; i++ {
		name := "T" + string(rune('A'+i))
		r := db.MustCreate(name, "a", "b")
		for j := 0; j <= i; j++ { // distinct sizes so the sorts differ
			r.MustInsert(relation.Value(j), relation.Value(j))
		}
		lo := "x" + string(rune('0'+i))
		hi := "x" + string(rune('0'+i+1))
		body = append(body, query.NewAtom(name, query.V(lo), query.V(hi)))
		head = append(head, hi)
	}
	q, err := query.NewCQ("big", head, body)
	if err != nil {
		t.Fatal(err)
	}
	est, err := atomEstimates(db, q)
	if err != nil {
		t.Fatal(err)
	}
	orders := bodyOrders(q, est)
	if want := 3 + (n - 1); len(orders) != want {
		t.Fatalf("bodyOrders yielded %d orders for %d atoms, want %d", len(orders), n, want)
	}
	for i, o := range orders[0] {
		if o != i {
			t.Fatalf("first heuristic order is not the identity: %v", orders[0])
		}
	}
	_, p, err := ChooseCQ(db, q, ModeCost)
	if err != nil {
		t.Fatal(err)
	}
	if p.Enumerated != len(orders) {
		t.Fatalf("Enumerated = %d, want %d", p.Enumerated, len(orders))
	}
}

func TestChooseUCQKeepsFirstDisjunct(t *testing.T) {
	db := relation.NewDatabase()
	small := db.MustCreate("Small", "a", "b")
	small.MustInsert(1, 1)
	big := db.MustCreate("Big", "a", "b")
	for i := 0; i < 40; i++ {
		big.MustInsert(relation.Value(i), relation.Value(i))
	}
	mid := db.MustCreate("Mid", "a", "b")
	for i := 0; i < 10; i++ {
		mid.MustInsert(relation.Value(i), relation.Value(i))
	}
	mk := func(name, rel string) *query.CQ {
		q, err := query.NewCQ(name, []string{"a", "b"},
			[]query.Atom{query.NewAtom(rel, query.V("a"), query.V("b"))})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	u, err := query.NewUCQ("U", mk("Q1", "Small"), mk("Q2", "Mid"), mk("Q3", "Big"))
	if err != nil {
		t.Fatal(err)
	}
	planned, p, err := ChooseUCQ(db, u, ModeCost)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range p.Candidates {
		if c.Order[0] != 0 {
			t.Fatalf("candidate %d moved disjunct 0: %v", i, c.Order)
		}
	}
	if planned.Disjuncts[0] != u.Disjuncts[0] {
		t.Fatal("planned union changed its first disjunct")
	}
	// The scan-depth model puts the heavy disjunct before the lighter one.
	if !p.Identity() {
		got := p.Candidates[p.Chosen].Order
		if got[1] != 2 || got[2] != 1 {
			t.Fatalf("chosen order %v, want the heavy disjunct promoted to position 1", got)
		}
	}
}
