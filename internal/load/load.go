// Package load turns external inputs — CSV files and datalog query text —
// into the library's data model. It is the single code path behind both the
// renum CLI and the renumd daemon, so the CSV dialect and the program
// grouping rules live here instead of in a main package.
//
// # CSV dialect
//
// A CSV file registers one relation: the file's base name (minus .csv) is
// the relation name, the header row is the schema, and every cell is
// dictionary-interned verbatim (numbers included), so constants in queries
// must be single-quoted: r(x, '42'). Duplicate rows are deduplicated by
// Relation.Insert; an empty file (no header) is an error. Registering a name
// that already exists replaces the previous relation (Database.Add
// semantics) — indexes built against the old relation keep working, which is
// what the daemon's load-then-rebuild dataset refresh relies on.
//
// # Programs
//
// A program is a sequence of datalog rules. Rules are grouped by head
// predicate, preserving first-appearance order: a head with one rule is a
// conjunctive query, a head with several rules is a union of CQs (the same
// convention the parser's ParseUCQ applies, including the #i disjunct
// renaming for diagnostics).
package load

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/parser"
	"repro/internal/query"
	"repro/internal/relation"
)

// CSVFile registers the file at path as a relation named after the file
// (base name minus .csv).
func CSVFile(db *relation.Database, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	name := strings.TrimSuffix(filepath.Base(path), ".csv")
	if err := CSV(db, name, f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// Tables registers every path in order. It stops at the first error.
func Tables(db *relation.Database, paths []string) error {
	for _, path := range paths {
		if err := CSVFile(db, path); err != nil {
			return err
		}
	}
	return nil
}

// CSV registers one relation from CSV content: the first record is the
// schema, every later record is a tuple with each cell interned.
func CSV(db *relation.Database, name string, r io.Reader) error {
	rd := csv.NewReader(r)
	rows, err := rd.ReadAll()
	if err != nil {
		return err
	}
	if len(rows) < 1 {
		return fmt.Errorf("empty file")
	}
	rel, err := db.Create(name, rows[0]...)
	if err != nil {
		return err
	}
	for _, row := range rows[1:] {
		tup := make(relation.Tuple, len(row))
		for i, cell := range row {
			tup[i] = db.Intern(cell)
		}
		if _, err := rel.Insert(tup); err != nil {
			return err
		}
	}
	return nil
}

// Query is one named query of a program: exactly one of CQ or UCQ is set.
type Query struct {
	// Name is the head predicate shared by the query's rules.
	Name string
	// CQ is the single rule of a one-rule head.
	CQ *query.CQ
	// UCQ is the union of a multi-rule head.
	UCQ *query.UCQ
}

// Src returns the parsed query as the sealed query.Query — the form
// renum.Open takes — so consumers need no CQ-vs-UCQ branch of their own.
func (q Query) Src() query.Query {
	if q.CQ != nil {
		return q.CQ
	}
	return q.UCQ
}

// Queries parses a datalog program and groups its rules by head predicate
// (first-appearance order). Constants in the rules are interned into dict.
func Queries(dict *relation.Dict, text string) ([]Query, error) {
	rules, err := parser.ParseProgram(text, dict)
	if err != nil {
		return nil, err
	}
	var order []string
	byHead := make(map[string][]*query.CQ)
	for _, q := range rules {
		if _, seen := byHead[q.Name]; !seen {
			order = append(order, q.Name)
		}
		byHead[q.Name] = append(byHead[q.Name], q)
	}
	out := make([]Query, 0, len(order))
	for _, name := range order {
		group := byHead[name]
		if len(group) == 1 {
			out = append(out, Query{Name: name, CQ: group[0]})
			continue
		}
		// Disambiguate disjunct names for diagnostics, matching ParseUCQ.
		for i, q := range group {
			q.Name = fmt.Sprintf("%s#%d", name, i)
		}
		u, err := query.NewUCQ(name, group...)
		if err != nil {
			return nil, err
		}
		out = append(out, Query{Name: name, UCQ: u})
	}
	return out, nil
}

// One parses a program that must define exactly one query (any number of
// rules, all sharing one head predicate) — the CLI contract of cmd/renum.
func One(dict *relation.Dict, text string) (Query, error) {
	qs, err := Queries(dict, text)
	if err != nil {
		return Query{}, err
	}
	if len(qs) != 1 {
		names := make([]string, len(qs))
		for i, q := range qs {
			names[i] = q.Name
		}
		return Query{}, fmt.Errorf("program defines %d queries (%s), want exactly one",
			len(qs), strings.Join(names, ", "))
	}
	return qs[0], nil
}
