// Catalog plumbing: compiling CSV+program inputs into saved snapshot
// catalogs and locating the newest catalog in a snapshot directory. This is
// the load-layer half of the persistent-snapshot seam — cmd/renum's build
// mode and the renumd daemon share it, the way they already share the CSV
// dialect and program grouping rules above.

package load

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro"
	"repro/internal/query"
)

// QueryFromSrc rebuilds the load-layer Query wrapper around a parsed query
// — the inverse of Query.Src, used when entries come back out of a snapshot
// (which persists queries structurally, not as text).
func QueryFromSrc(name string, q query.Query) Query {
	switch q := q.(type) {
	case *query.CQ:
		return Query{Name: name, CQ: q}
	case *query.UCQ:
		return Query{Name: name, UCQ: q}
	}
	return Query{Name: name}
}

// Compile parses every program, groups rules by head (the shared grouping
// rules of this package) and opens one static handle per query: the
// build-once half of a build/serve split. The returned entries are ready
// for renum.SaveSnapshot. Dynamic indexes are deliberately not compiled
// here — build mode produces static artifacts; updatable entries belong to
// the serving daemon, which snapshots them through its own save/compact
// paths.
func Compile(db *renum.Database, programs []string, workers int, canonical bool) ([]renum.CatalogEntry, error) {
	var entries []renum.CatalogEntry
	seen := make(map[string]bool)
	for _, program := range programs {
		qs, err := Queries(db.Dict(), program)
		if err != nil {
			return nil, err
		}
		for _, q := range qs {
			if seen[q.Name] {
				return nil, fmt.Errorf("query %s defined more than once across programs", q.Name)
			}
			seen[q.Name] = true
			opts := []renum.Option{renum.WithWorkers(workers)}
			if canonical {
				opts = append(opts, renum.WithCanonical())
			}
			h, err := renum.Open(db, q.Src(), opts...)
			if err != nil {
				return nil, fmt.Errorf("query %s: %w", q.Name, err)
			}
			entries = append(entries, renum.CatalogEntry{Name: q.Name, Q: q.Src(), H: h})
		}
	}
	return entries, nil
}

// snapshotPrefix/snapshotExt name catalog files inside a snapshot
// directory: gen-<generation>.snap, zero-padded so lexical and numeric
// order agree.
const (
	snapshotPrefix = "gen-"
	snapshotExt    = ".snap"
)

// SnapshotPath returns the catalog filename for a generation inside dir.
func SnapshotPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016d%s", snapshotPrefix, gen, snapshotExt))
}

// WALPath returns the write-ahead-log segment filename paired with a
// snapshot generation: wal-<generation>.log extends gen-<generation>.snap.
// Same zero-padding as SnapshotPath so lexical and numeric order agree.
func WALPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.log", gen))
}

// LatestSnapshot scans dir for catalog files and returns the one with the
// highest generation. ok is false when the directory holds none (including
// when it does not exist — an empty snapshot dir on first boot is normal,
// not an error).
func LatestSnapshot(dir string) (path string, gen uint64, ok bool, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", 0, false, nil
		}
		return "", 0, false, err
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, snapshotPrefix) || !strings.HasSuffix(name, snapshotExt) {
			continue
		}
		g, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapshotPrefix), snapshotExt), 10, 64)
		if perr != nil {
			continue
		}
		if !ok || g > gen {
			ok, gen, path = true, g, filepath.Join(dir, name)
		}
	}
	return path, gen, ok, nil
}
