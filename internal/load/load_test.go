package load

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestCSVFile(t *testing.T) {
	db := relation.NewDatabase()
	if err := Tables(db, []string{
		filepath.Join("testdata", "r.csv"),
		filepath.Join("testdata", "s.csv"),
	}); err != nil {
		t.Fatal(err)
	}
	r, err := db.Relation("r")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.Schema().String(), "(a, b)"; got != want {
		t.Fatalf("r schema = %s, want %s", got, want)
	}
	if r.Len() != 4 {
		t.Fatalf("r has %d tuples, want 4", r.Len())
	}
	s, err := db.Relation("s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("s has %d tuples, want 4", s.Len())
	}
	// Cells are interned verbatim: "1" in r.a and "1" in s.b share a Value.
	v, ok := db.Dict().Lookup("1")
	if !ok {
		t.Fatal(`"1" not interned`)
	}
	if got := db.Dict().String(v); got != "1" {
		t.Fatalf("round trip = %q", got)
	}
}

func TestCSVErrors(t *testing.T) {
	db := relation.NewDatabase()
	if err := CSV(db, "empty", strings.NewReader("")); err == nil {
		t.Fatal("empty CSV: want error")
	}
	if err := CSV(db, "r", strings.NewReader("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	// Re-registering a name replaces the relation (dataset refresh).
	if err := CSV(db, "r", strings.NewReader("a,b\n3,4\n5,6\n")); err != nil {
		t.Fatal(err)
	}
	if r, _ := db.Relation("r"); r.Len() != 2 {
		t.Fatalf("replaced r has %d tuples, want 2", r.Len())
	}
	// Ragged rows are a CSV error.
	if err := CSV(db, "bad", strings.NewReader("a,b\n1,2,3\n")); err == nil {
		t.Fatal("ragged row: want error")
	}
}

func TestQueriesGrouping(t *testing.T) {
	db := relation.NewDatabase()
	qs, err := Queries(db.Dict(), `
		Q(x, y) :- r(x, y).
		P(x) :- r(x, y), s(y, z).
		Q(x, y) :- s(x, y).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 2 {
		t.Fatalf("got %d queries, want 2", len(qs))
	}
	// First-appearance order: Q (two rules → UCQ), then P (one rule → CQ).
	if qs[0].Name != "Q" || qs[0].UCQ == nil || qs[0].CQ != nil {
		t.Fatalf("qs[0] = %+v, want UCQ named Q", qs[0])
	}
	if len(qs[0].UCQ.Disjuncts) != 2 {
		t.Fatalf("Q has %d disjuncts, want 2", len(qs[0].UCQ.Disjuncts))
	}
	if qs[1].Name != "P" || qs[1].CQ == nil || qs[1].UCQ != nil {
		t.Fatalf("qs[1] = %+v, want CQ named P", qs[1])
	}
	// Src exposes the sealed query form renum.Open consumes: the UCQ for
	// multi-rule heads, the CQ otherwise.
	if got, want := any(qs[0].Src()), any(qs[0].UCQ); got != want {
		t.Fatalf("Src of a union = %T, want the UCQ", qs[0].Src())
	}
	if got, want := any(qs[1].Src()), any(qs[1].CQ); got != want {
		t.Fatalf("Src of a single rule = %T, want the CQ", qs[1].Src())
	}
}

func TestQueriesArityMismatch(t *testing.T) {
	db := relation.NewDatabase()
	if _, err := Queries(db.Dict(), "Q(x, y) :- r(x, y). Q(x) :- s(x, y)."); err == nil {
		t.Fatal("mismatched disjunct arity: want error")
	}
}

func TestOne(t *testing.T) {
	db := relation.NewDatabase()
	q, err := One(db.Dict(), "Q(x, y) :- r(x, y). Q(y, x) :- r(x, y).")
	if err != nil {
		t.Fatal(err)
	}
	if q.UCQ == nil {
		t.Fatal("want UCQ")
	}
	if _, err := One(db.Dict(), "Q(x) :- r(x, y). P(x) :- r(x, y)."); err == nil {
		t.Fatal("two heads: want error")
	}
}
