package shard

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/synth"
)

// prepare builds the unsharded reference index and the database/query it
// came from.
func prepare(t *testing.T) (*relation.Database, *query.CQ, *cqenum.CQ) {
	t.Helper()
	db, q, err := synth.Star(synth.Config{Relations: 3, TuplesPerRelation: 80, KeyDomain: 20, SkewS: 1.2, Seed: 11})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	ref, err := cqenum.Prepare(db, q, reduce.Options{})
	if err != nil {
		t.Fatalf("prepare reference: %v", err)
	}
	return db, q, ref
}

func tupleEq(a, b relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSetMatchesUnshardedOrder(t *testing.T) {
	db, q, ref := prepare(t)
	n := ref.Index.Count()
	if n == 0 {
		t.Fatal("reference instance has no answers; tighten the synth config")
	}
	for _, k := range []int{1, 2, 3, 7, 16} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			set, err := Build(db, q, k, reduce.Options{}, access.BuildOptions{})
			if err != nil {
				t.Fatalf("Build K=%d: %v", k, err)
			}
			if got := set.Count(); got != n {
				t.Fatalf("Count = %d, want %d", got, n)
			}
			if set.NumShards() != k {
				t.Fatalf("NumShards = %d, want %d", set.NumShards(), k)
			}
			var sum int64
			for i := 0; i < k; i++ {
				sum += set.ShardCount(i)
			}
			if sum != n {
				t.Fatalf("shard counts sum to %d, want %d", sum, n)
			}
			buf := make(relation.Tuple, len(set.Head()))
			for j := int64(0); j < n; j++ {
				want, err := ref.Index.Access(j)
				if err != nil {
					t.Fatalf("reference Access(%d): %v", j, err)
				}
				got, err := set.Access(j)
				if err != nil {
					t.Fatalf("sharded Access(%d): %v", j, err)
				}
				if !tupleEq(got, want) {
					t.Fatalf("Access(%d) = %v, want %v", j, got, want)
				}
				if err := set.AccessInto(j, buf); err != nil {
					t.Fatalf("AccessInto(%d): %v", j, err)
				}
				if !tupleEq(buf, want) {
					t.Fatalf("AccessInto(%d) = %v, want %v", j, buf, want)
				}
				gj, ok := set.InvertedAccess(want)
				if !ok || gj != j {
					t.Fatalf("InvertedAccess(%v) = (%d, %v), want (%d, true)", want, gj, ok, j)
				}
			}
		})
	}
}

func TestSetAccessBatch(t *testing.T) {
	db, q, ref := prepare(t)
	n := ref.Index.Count()
	set, err := Build(db, q, 3, reduce.Options{}, access.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	// Large enough to cross batchSerialThreshold, with duplicates.
	js := make([]int64, 1500)
	for i := range js {
		js[i] = rng.Int63n(n)
	}
	got, err := set.AccessBatch(js, 4)
	if err != nil {
		t.Fatalf("AccessBatch: %v", err)
	}
	want, err := ref.Index.AccessBatch(js, 4)
	if err != nil {
		t.Fatalf("reference AccessBatch: %v", err)
	}
	for i := range js {
		if !tupleEq(got[i], want[i]) {
			t.Fatalf("batch slot %d (j=%d): got %v, want %v", i, js[i], got[i], want[i])
		}
	}
	// One out-of-range position fails the whole batch.
	if _, err := set.AccessBatch([]int64{0, n}, 0); err != access.ErrOutOfBounds {
		t.Fatalf("out-of-range batch error = %v, want ErrOutOfBounds", err)
	}
	if _, err := set.Access(-1); err != access.ErrOutOfBounds {
		t.Fatalf("Access(-1) error = %v, want ErrOutOfBounds", err)
	}
	// Cancelled context surfaces instead of answers.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := set.AccessBatchContext(ctx, js, 0); err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
}

func TestBuildSliceWindows(t *testing.T) {
	db, q, ref := prepare(t)
	n := ref.Index.Count()
	const k = 4
	full, err := Build(db, q, k, reduce.Options{}, access.BuildOptions{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var global int64
	for i := 0; i < k; i++ {
		sl, err := BuildSlice(db, q, i, k, reduce.Options{}, access.BuildOptions{})
		if err != nil {
			t.Fatalf("BuildSlice(%d): %v", i, err)
		}
		if sl.NumShards() != 1 {
			t.Fatalf("slice %d: NumShards = %d, want 1", i, sl.NumShards())
		}
		if sl.Count() != full.ShardCount(i) {
			t.Fatalf("slice %d: Count = %d, want %d", i, sl.Count(), full.ShardCount(i))
		}
		// The slice's local order is the corresponding window of the
		// global (= unsharded) order.
		for local := int64(0); local < sl.Count(); local++ {
			want, err := ref.Index.Access(global)
			if err != nil {
				t.Fatalf("reference Access(%d): %v", global, err)
			}
			got, err := sl.Access(local)
			if err != nil {
				t.Fatalf("slice %d Access(%d): %v", i, local, err)
			}
			if !tupleEq(got, want) {
				t.Fatalf("slice %d local %d: got %v, want %v", i, local, got, want)
			}
			global++
		}
	}
	if global != n {
		t.Fatalf("slices cover %d positions, want %d", global, n)
	}
	if _, err := BuildSlice(db, q, 4, 4, reduce.Options{}, access.BuildOptions{}); err == nil {
		t.Fatal("BuildSlice(4, 4) accepted an out-of-range slice")
	}
}

// TestMoreShardsThanRootRows pins the empty-chunk edge: K larger than the
// root relation leaves some shards with zero rows, which must behave as
// count-0 shards, not panic.
func TestMoreShardsThanRootRows(t *testing.T) {
	db, q, ref := prepare(t)
	rootRows := ref.FullJoin.Root.Rel.Len()
	k := rootRows + 5
	set, err := Build(db, q, k, reduce.Options{}, access.BuildOptions{})
	if err != nil {
		t.Fatalf("Build K=%d: %v", k, err)
	}
	if set.Count() != ref.Index.Count() {
		t.Fatalf("Count = %d, want %d", set.Count(), ref.Index.Count())
	}
	for j := int64(0); j < set.Count(); j += 7 {
		want, _ := ref.Index.Access(j)
		got, err := set.Access(j)
		if err != nil {
			t.Fatalf("Access(%d): %v", j, err)
		}
		if !tupleEq(got, want) {
			t.Fatalf("Access(%d) = %v, want %v", j, got, want)
		}
	}
}
