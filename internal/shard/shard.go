// Package shard partitions a conjunctive query's answer space into K
// disjoint pieces served by independent access.Index instances, composed
// behind one probe surface with the same disjoint-partition counting trick
// internal/mcucq uses across union disjuncts.
//
// # Partitioning scheme
//
// The enumeration order of access.Index is root-major: the answers extended
// from root tuple t are contiguous, and root tuples appear in relation
// order (the root's bucket key is empty, so all of its tuples share bucket
// 0 and the stable counting sort preserves relation order). Slicing the
// root relation into K contiguous row windows therefore slices the global
// answer sequence into K contiguous position windows: concatenating the
// shards' enumerations in shard order reproduces the unsharded order
// byte-for-byte. That is the whole determinism argument — no merge, no
// re-sort, just concatenation.
//
// Build runs the reduction ONCE (set semantics are applied once, so no
// duplicate can resurface from partitioning), then clones the join tree K
// times with the root relation replaced by a zero-copy column window.
// Non-root relations are shared across shards; only the per-shard bucket
// tables are built K times.
//
// # Routing
//
// Per-shard answer counts form a prefix-sum table (internal/fenwick), so a
// global position routes to its shard in O(log K); batches split their
// position vectors per shard and fan out on internal/parallel, scattering
// results back into request order.
package shard

import (
	"context"
	"fmt"

	"repro/internal/access"
	"repro/internal/fenwick"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
)

// Set is K access.Index shards composed behind one global position space.
// Like the indexes it wraps, a Set is immutable after Build and safe for
// concurrent probes without locking.
type Set struct {
	head   []string
	shards []*access.Index
	tree   *fenwick.Tree // per-shard answer counts, in shard order
	starts []int64       // starts[i]: global position of shard i's first answer
	count  int64
	fj     *reduce.FullJoin // the single reduction all shards slice
	bounds [][2]int         // root-row window [lo, hi) per shard
}

// Build partitions q's answers over db into k contiguous shards and builds
// the per-shard indexes, fanning the builds out across the worker budget
// (each shard's build itself uses the wave-scheduled parallel builder with
// its share of the budget). k must be >= 1; k = 1 degenerates to a single
// index behind the Set surface.
func Build(db *relation.Database, q *query.CQ, k int, reduceOpts reduce.Options, buildOpts access.BuildOptions) (*Set, error) {
	return build(db, q, 0, k, true, reduceOpts, buildOpts)
}

// BuildSlice builds only shard `slice` of the k-way partition, as a
// single-shard Set over LOCAL positions 0..count-1. It is the shard
// daemon's constructor: each daemon serves its own window, and the router
// re-bases local positions onto the global order from the shards' counts.
func BuildSlice(db *relation.Database, q *query.CQ, slice, k int, reduceOpts reduce.Options, buildOpts access.BuildOptions) (*Set, error) {
	if slice < 0 || slice >= k {
		return nil, fmt.Errorf("shard: slice %d out of range [0, %d)", slice, k)
	}
	return build(db, q, slice, k, false, reduceOpts, buildOpts)
}

func build(db *relation.Database, q *query.CQ, slice, k int, all bool, reduceOpts reduce.Options, buildOpts access.BuildOptions) (*Set, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: K must be >= 1, got %d", k)
	}
	// One reduction for every shard: the full reduce applies set semantics
	// exactly once, so the contiguous root windows below partition the
	// already-deduplicated answer space.
	fj, err := reduce.BuildFullJoin(db, q, reduceOpts)
	if err != nil {
		return nil, err
	}
	lo := 0
	hi := k
	if !all {
		lo, hi = slice, slice+1
	}
	n := fj.Root.Rel.Len()
	bounds := make([][2]int, 0, hi-lo)
	chunks := make([]*reduce.FullJoin, 0, hi-lo)
	for i := lo; i < hi; i++ {
		rowLo, rowHi := i*n/k, (i+1)*n/k
		chunk, err := sliceFullJoin(fj, rowLo, rowHi)
		if err != nil {
			return nil, err
		}
		bounds = append(bounds, [2]int{rowLo, rowHi})
		chunks = append(chunks, chunk)
	}

	// Shard builds are independent: fan them out, splitting the worker
	// budget between the outer fleet and each shard's wave-parallel build.
	workers := buildOpts.Workers
	if workers <= 0 {
		workers = parallel.Workers()
	}
	outer := len(chunks)
	if outer > workers {
		outer = workers
	}
	inner := buildOpts
	inner.Workers = workers / outer
	if inner.Workers < 1 {
		inner.Workers = 1
	}
	indexes := make([]*access.Index, len(chunks))
	if err := parallel.ForEach(len(chunks), outer, func(i int) error {
		idx, err := access.NewWithOptions(chunks[i], inner)
		if err != nil {
			return err
		}
		indexes[i] = idx
		return nil
	}); err != nil {
		return nil, err
	}

	s := &Set{head: fj.Head, shards: indexes, fj: fj, bounds: bounds}
	counts := make([]int64, len(indexes))
	s.starts = make([]int64, len(indexes)+1)
	for i, idx := range indexes {
		counts[i] = idx.Count()
		s.starts[i+1] = s.starts[i] + counts[i]
	}
	s.tree = fenwick.New(counts)
	s.count = s.tree.Total()
	return s, nil
}

// sliceFullJoin clones fj's node tree with the root relation replaced by
// the zero-copy column window [lo, hi). Non-root relations are shared: the
// access builder only reads them (GroupBy returns fresh groupings), so
// concurrent shard builds over the same children are race-free.
func sliceFullJoin(fj *reduce.FullJoin, lo, hi int) (*reduce.FullJoin, error) {
	root := fj.Root.Rel
	cols := make([][]relation.Value, root.Arity())
	for a := range cols {
		cols[a] = root.Col(a)[lo:hi]
	}
	chunk, err := relation.FromColumns(root.Name(), root.Schema(), cols)
	if err != nil {
		return nil, err
	}
	// The access builder identifies nodes by pointer (root = nil Parent,
	// edges from Parent links, fj.Nodes order), so the clone preserves all
	// three while swapping the root's relation.
	clone := make(map[*reduce.Node]*reduce.Node, len(fj.Nodes))
	for _, fn := range fj.Nodes {
		rel := fn.Rel
		if fn == fj.Root {
			rel = chunk
		}
		clone[fn] = &reduce.Node{Rel: rel}
	}
	out := &reduce.FullJoin{Head: fj.Head, Root: clone[fj.Root]}
	for _, fn := range fj.Nodes {
		c := clone[fn]
		if fn.Parent != nil {
			c.Parent = clone[fn.Parent]
			c.Parent.Children = append(c.Parent.Children, c)
		}
		out.Nodes = append(out.Nodes, c)
	}
	return out, nil
}

// Head returns the output variable order (identical across shards).
func (s *Set) Head() []string { return s.head }

// Count returns the global answer count in constant time.
func (s *Set) Count() int64 { return s.count }

// NumShards returns K (1 for a BuildSlice set).
func (s *Set) NumShards() int { return len(s.shards) }

// ShardCount returns shard i's answer count.
func (s *Set) ShardCount(i int) int64 { return s.tree.Value(i) }

// Bounds returns shard i's root-row window [lo, hi).
func (s *Set) Bounds(i int) (lo, hi int) { return s.bounds[i][0], s.bounds[i][1] }

// FullJoin exposes the single reduction backing every shard (plan
// rendering; nil only for a zero Set).
func (s *Set) FullJoin() *reduce.FullJoin { return s.fj }

// Locate routes a global position to (shard, local position) in O(log K).
func (s *Set) Locate(j int64) (shard int, local int64, err error) {
	if j < 0 || j >= s.count {
		return 0, 0, access.ErrOutOfBounds
	}
	shard = s.tree.FindPrefix(j)
	return shard, j - s.starts[shard], nil
}

// Access returns the j-th answer of the global enumeration order — the
// byte-identical order of the unsharded index — or ErrOutOfBounds.
func (s *Set) Access(j int64) (relation.Tuple, error) {
	sh, local, err := s.Locate(j)
	if err != nil {
		return nil, err
	}
	return s.shards[sh].Access(local)
}

// AccessInto is Access writing into a caller-provided buffer; the routing
// adds one O(log K) Fenwick walk to the shard probe and no allocation.
func (s *Set) AccessInto(j int64, buf relation.Tuple) error {
	sh, local, err := s.Locate(j)
	if err != nil {
		return err
	}
	return s.shards[sh].AccessInto(local, buf)
}

// batchSerialThreshold mirrors access.Index's batching: below it the
// per-shard split would cost more than it saves, so positions are probed
// serially through the same Fenwick routing.
const batchSerialThreshold = 256

// AccessBatch is AccessBatchContext with a background context.
func (s *Set) AccessBatch(js []int64, workers int) ([]relation.Tuple, error) {
	return s.AccessBatchContext(context.Background(), js, workers)
}

// AccessBatchContext returns Access(j) for every j in js, in order: the
// position vector is validated up front (one out-of-range position fails
// the whole batch, like the unsharded index), split per shard, fanned out
// across the worker budget, and the shard results scattered back into
// request order.
func (s *Set) AccessBatchContext(ctx context.Context, js []int64, workers int) ([]relation.Tuple, error) {
	for _, j := range js {
		if j < 0 || j >= s.count {
			return nil, access.ErrOutOfBounds
		}
	}
	out := make([]relation.Tuple, len(js))
	if len(js) == 0 {
		return out, nil
	}
	if len(js) <= batchSerialThreshold || len(s.shards) == 1 {
		if len(s.shards) == 1 {
			return s.shards[0].AccessBatchContext(ctx, js, workers)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i, j := range js {
			t, err := s.Access(j)
			if err != nil {
				return nil, err
			}
			out[i] = t
		}
		return out, nil
	}
	// Split the position vector per shard, remembering each position's
	// request slot so shard results land back in request order.
	perJS := make([][]int64, len(s.shards))
	perAt := make([][]int, len(s.shards))
	for i, j := range js {
		sh := s.tree.FindPrefix(j)
		perJS[sh] = append(perJS[sh], j-s.starts[sh])
		perAt[sh] = append(perAt[sh], i)
	}
	if workers <= 0 {
		workers = parallel.Workers()
	}
	active := 0
	for _, p := range perJS {
		if len(p) > 0 {
			active++
		}
	}
	inner := workers / active
	if inner < 1 {
		inner = 1
	}
	err := parallel.ForEach(len(s.shards), workers, func(sh int) error {
		if len(perJS[sh]) == 0 {
			return nil
		}
		ts, err := s.shards[sh].AccessBatchContext(ctx, perJS[sh], inner)
		if err != nil {
			return err
		}
		at := perAt[sh]
		for i, t := range ts {
			out[at[i]] = t
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// InvertedAccess returns the GLOBAL position of an answer, or ok=false.
// Shards partition the answer space, so at most one can claim the tuple;
// a miss at a shard's root is one failed hash probe, keeping the scan O(K)
// lookups, not O(K) index walks.
func (s *Set) InvertedAccess(t relation.Tuple) (int64, bool) {
	for i, idx := range s.shards {
		if j, ok := idx.InvertedAccess(t); ok {
			return s.starts[i] + j, true
		}
	}
	return 0, false
}

// Contains reports whether t is an answer.
func (s *Set) Contains(t relation.Tuple) bool {
	_, ok := s.InvertedAccess(t)
	return ok
}

// OrderSpec returns the head variables in decreasing significance of the
// enumeration order (identical across shards by construction).
func (s *Set) OrderSpec() []string { return s.shards[0].OrderSpec() }
