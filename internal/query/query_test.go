package query

import (
	"strings"
	"testing"
)

func TestNewCQValidation(t *testing.T) {
	if _, err := NewCQ("q", []string{"x"}, nil); err == nil {
		t.Fatal("empty body accepted")
	}
	if _, err := NewCQ("q", []string{"x", "x"}, []Atom{NewAtom("R", V("x"))}); err == nil {
		t.Fatal("duplicate head accepted")
	}
	if _, err := NewCQ("q", []string{"y"}, []Atom{NewAtom("R", V("x"))}); err == nil {
		t.Fatal("unsafe head accepted")
	}
	if _, err := NewCQ("q", []string{""}, []Atom{NewAtom("R", V("x"))}); err == nil {
		t.Fatal("empty head var accepted")
	}
	q, err := NewCQ("q", []string{"x"}, []Atom{NewAtom("R", V("x"), V("y"))})
	if err != nil || q == nil {
		t.Fatal(err)
	}
}

func TestAtomVars(t *testing.T) {
	a := NewAtom("R", V("x"), C(5), V("y"), V("x"))
	vars := a.Vars()
	if len(vars) != 2 || vars[0] != "x" || vars[1] != "y" {
		t.Fatalf("Vars = %v", vars)
	}
	if got := a.String(); got != "R(x, 5, y, x)" {
		t.Fatalf("String = %q", got)
	}
}

func TestCQVarSets(t *testing.T) {
	q := MustCQ("q", []string{"x", "z"},
		NewAtom("R", V("x"), V("y")),
		NewAtom("S", V("y"), V("z")),
	)
	if got := q.Vars(); len(got) != 3 || got[0] != "x" || got[1] != "y" || got[2] != "z" {
		t.Fatalf("Vars = %v", got)
	}
	if got := q.ExistentialVars(); len(got) != 1 || got[0] != "y" {
		t.Fatalf("ExistentialVars = %v", got)
	}
	if q.IsFull() {
		t.Fatal("query with existential var reported full")
	}
	full := MustCQ("f", []string{"x", "y"}, NewAtom("R", V("x"), V("y")))
	if !full.IsFull() {
		t.Fatal("full query not reported full")
	}
}

func TestSelfJoinDetection(t *testing.T) {
	q := MustCQ("q", []string{"x"},
		NewAtom("R", V("x"), V("y")),
		NewAtom("R", V("y"), V("x")),
	)
	if !q.HasSelfJoin() {
		t.Fatal("self-join not detected")
	}
	q2 := MustCQ("q2", []string{"x"}, NewAtom("R", V("x")), NewAtom("S", V("x")))
	if q2.HasSelfJoin() {
		t.Fatal("false self-join")
	}
}

func TestCQString(t *testing.T) {
	q := MustCQ("Q", []string{"x"}, NewAtom("R", V("x"), V("y")))
	s := q.String()
	if !strings.Contains(s, "Q(x)") || !strings.Contains(s, "R(x, y)") {
		t.Fatalf("String = %q", s)
	}
}

func TestUCQValidation(t *testing.T) {
	q1 := MustCQ("q1", []string{"x", "y"}, NewAtom("R", V("x"), V("y")))
	q2 := MustCQ("q2", []string{"a", "b"}, NewAtom("S", V("a"), V("b")))
	u, err := NewUCQ("u", q1, q2)
	if err != nil || u.Arity() != 2 {
		t.Fatal(err)
	}
	bad := MustCQ("bad", []string{"a"}, NewAtom("S", V("a")))
	if _, err := NewUCQ("u", q1, bad); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := NewUCQ("u"); err == nil {
		t.Fatal("empty union accepted")
	}
}

func TestUCQIntersection(t *testing.T) {
	// Q1(x,y,z) :- R(x,y), S(y,z)   Q2(x,y,z) :- S(y,z), T(x,z)
	q1 := MustCQ("q1", []string{"x", "y", "z"},
		NewAtom("R", V("x"), V("y")), NewAtom("S", V("y"), V("z")))
	q2 := MustCQ("q2", []string{"a", "b", "c"},
		NewAtom("S", V("b"), V("c")), NewAtom("T", V("a"), V("c")))
	u := MustUCQ("u", q1, q2)
	qi, err := u.Intersection("q12", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// The intersection must be the triangle-like query over head vars x,y,z
	// with atoms R(x,y), S(y,z), S(y,z), T(x,z).
	if len(qi.Head) != 3 || qi.Head[0] != "x" || qi.Head[2] != "z" {
		t.Fatalf("Head = %v", qi.Head)
	}
	if len(qi.Body) != 4 {
		t.Fatalf("Body len = %d", len(qi.Body))
	}
	// Atom from q2's T(a,c) must be renamed to T(x,z).
	last := qi.Body[3]
	if last.Relation != "T" || last.Terms[0].Var != "x" || last.Terms[1].Var != "z" {
		t.Fatalf("renamed atom = %v", last)
	}
}

func TestUCQIntersectionExistentialLocal(t *testing.T) {
	// Existential variables with the same name in different disjuncts must
	// not be unified in the intersection.
	q1 := MustCQ("q1", []string{"x"},
		NewAtom("R", V("x"), V("w")))
	q2 := MustCQ("q2", []string{"x"},
		NewAtom("S", V("x"), V("w")))
	u := MustUCQ("u", q1, q2)
	qi, err := u.Intersection("qi", []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	v1 := qi.Body[0].Terms[1].Var
	v2 := qi.Body[1].Terms[1].Var
	if v1 == v2 {
		t.Fatalf("existential vars unified across disjuncts: %q", v1)
	}
	if _, err := u.Intersection("bad", nil); err == nil {
		t.Fatal("empty index set accepted")
	}
}

func TestTermString(t *testing.T) {
	if V("x").String() != "x" || C(7).String() != "7" {
		t.Fatal("Term.String wrong")
	}
	if !V("x").IsVar() || C(7).IsVar() {
		t.Fatal("IsVar wrong")
	}
}
