// Snapshot encoding of query syntax. Queries are persisted structurally —
// name, head, atoms, terms — rather than as source text: constants are
// dictionary Values whose rendered form is not re-parseable, and the
// structural form round-trips exactly through the same NewCQ/NewUCQ
// validation the parser uses.
package query

import (
	"repro/internal/relation"
	"repro/internal/snapshot"
)

const (
	queryTagCQ  = 1
	queryTagUCQ = 2
)

// MarshalQuery appends q (a *CQ or *UCQ) to a section writer.
func MarshalQuery(s *snapshot.SectionWriter, q Query) {
	switch q := q.(type) {
	case *CQ:
		s.U64(queryTagCQ)
		marshalCQ(s, q)
	case *UCQ:
		s.U64(queryTagUCQ)
		s.Str(q.Name)
		s.U64(uint64(len(q.Disjuncts)))
		for _, d := range q.Disjuncts {
			marshalCQ(s, d)
		}
	}
}

func marshalCQ(s *snapshot.SectionWriter, q *CQ) {
	s.Str(q.Name)
	s.U64(uint64(len(q.Head)))
	for _, h := range q.Head {
		s.Str(h)
	}
	s.U64(uint64(len(q.Body)))
	for _, a := range q.Body {
		s.Str(a.Relation)
		s.U64(uint64(len(a.Terms)))
		for _, t := range a.Terms {
			if t.IsVar() {
				s.U64(1)
				s.Str(t.Var)
			} else {
				s.U64(0)
				s.I64(int64(t.Const))
			}
		}
	}
}

// UnmarshalQuery restores a *CQ or *UCQ, revalidating it through the public
// constructors so a corrupt-but-checksummed payload cannot produce a query
// the rest of the library would reject.
func UnmarshalQuery(r *snapshot.Reader) (Query, error) {
	switch tag := r.U64(); tag {
	case queryTagCQ:
		return unmarshalCQ(r)
	case queryTagUCQ:
		name := r.Str()
		n := r.U64()
		if n > uint64(r.Remaining()/8) {
			return nil, snapshot.Corruptf("ucq %s: disjunct count %d exceeds payload", name, n)
		}
		ds := make([]*CQ, n)
		for i := range ds {
			d, err := unmarshalCQ(r)
			if err != nil {
				return nil, err
			}
			ds[i] = d
		}
		u, err := NewUCQ(name, ds...)
		if err != nil {
			return nil, snapshot.Corruptf("%v", err)
		}
		return u, nil
	default:
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, snapshot.Corruptf("unknown query tag %d", tag)
	}
}

func unmarshalCQ(r *snapshot.Reader) (*CQ, error) {
	name := r.Str()
	nh := r.U64()
	if nh > uint64(r.Remaining()/8) {
		return nil, snapshot.Corruptf("cq %s: head count %d exceeds payload", name, nh)
	}
	head := make([]string, nh)
	for i := range head {
		head[i] = r.Str()
	}
	na := r.U64()
	if na > uint64(r.Remaining()/8) {
		return nil, snapshot.Corruptf("cq %s: atom count %d exceeds payload", name, na)
	}
	body := make([]Atom, na)
	for i := range body {
		rel := r.Str()
		nt := r.U64()
		if nt > uint64(r.Remaining()/16) {
			return nil, snapshot.Corruptf("cq %s: term count %d exceeds payload", name, nt)
		}
		terms := make([]Term, nt)
		for j := range terms {
			if r.U64() == 1 {
				v := r.Str()
				if v == "" {
					return nil, snapshot.Corruptf("cq %s: empty variable name", name)
				}
				terms[j] = V(v)
			} else {
				terms[j] = C(relation.Value(r.I64()))
			}
		}
		body[i] = Atom{Relation: rel, Terms: terms}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	q, err := NewCQ(name, head, body)
	if err != nil {
		return nil, snapshot.Corruptf("%v", err)
	}
	return q, nil
}
