// Package query defines the abstract syntax of conjunctive queries (CQs) and
// unions of conjunctive queries (UCQs) exactly as in Section 2 of the paper:
// a CQ is a rule Q(x̄) :- R1(t̄1), ..., Rn(t̄n) whose terms are variables or
// constants, with head (free) variables x̄ and existential variables the rest.
package query

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Term is a variable or a constant appearing in an atom.
type Term struct {
	// Var is the variable name; empty when the term is a constant.
	Var string
	// Const is the constant value, meaningful only when Var == "".
	Const relation.Value
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(v relation.Value) Term { return Term{Const: v} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return fmt.Sprintf("%d", int64(t.Const))
}

// Atom is a relational atom R(t̄).
type Atom struct {
	Relation string
	Terms    []Term
}

// NewAtom builds an atom.
func NewAtom(rel string, terms ...Term) Atom {
	return Atom{Relation: rel, Terms: terms}
}

// Vars returns the distinct variables of the atom, in first-occurrence order.
func (a Atom) Vars() []string {
	var out []string
	seen := make(map[string]bool)
	for _, t := range a.Terms {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

func (a Atom) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return a.Relation + "(" + strings.Join(parts, ", ") + ")"
}

// Query is the sealed interface over the two query forms the public API
// accepts: exactly *CQ and *UCQ implement it. The root package re-exports it
// as renum.Query, so renum.Open can take either form through one parameter
// while the compiler still rules out everything else.
type Query interface {
	fmt.Stringer
	// isQuery seals the interface to this package's query forms.
	isQuery()
}

func (*CQ) isQuery()  {}
func (*UCQ) isQuery() {}

// CQ is a conjunctive query.
type CQ struct {
	// Name identifies the query in diagnostics and experiment output.
	Name string
	// Head lists the head (free/output) variables, in output order.
	Head []string
	// Body lists the atoms.
	Body []Atom
}

// NewCQ builds a CQ and validates it: head variables must be distinct and
// safe (each must occur in the body), and the body must be non-empty.
func NewCQ(name string, head []string, body []Atom) (*CQ, error) {
	q := &CQ{Name: name, Head: head, Body: body}
	if len(body) == 0 {
		return nil, fmt.Errorf("query %s: empty body", name)
	}
	seen := make(map[string]bool)
	for _, h := range head {
		if h == "" {
			return nil, fmt.Errorf("query %s: empty head variable", name)
		}
		if seen[h] {
			return nil, fmt.Errorf("query %s: duplicate head variable %q", name, h)
		}
		seen[h] = true
	}
	bodyVars := q.varSet()
	for _, h := range head {
		if !bodyVars[h] {
			return nil, fmt.Errorf("query %s: head variable %q does not occur in the body (unsafe)", name, h)
		}
	}
	return q, nil
}

// MustCQ is NewCQ that panics on error.
func MustCQ(name string, head []string, body ...Atom) *CQ {
	q, err := NewCQ(name, head, body)
	if err != nil {
		panic(err)
	}
	return q
}

func (q *CQ) varSet() map[string]bool {
	s := make(map[string]bool)
	for _, a := range q.Body {
		for _, t := range a.Terms {
			if t.IsVar() {
				s[t.Var] = true
			}
		}
	}
	return s
}

// Vars returns all variables of the query, sorted.
func (q *CQ) Vars() []string {
	s := q.varSet()
	out := make([]string, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HeadSet returns the head variables as a set.
func (q *CQ) HeadSet() map[string]bool {
	s := make(map[string]bool, len(q.Head))
	for _, h := range q.Head {
		s[h] = true
	}
	return s
}

// ExistentialVars returns the body variables that are not in the head, sorted.
func (q *CQ) ExistentialVars() []string {
	head := q.HeadSet()
	var out []string
	for _, v := range q.Vars() {
		if !head[v] {
			out = append(out, v)
		}
	}
	return out
}

// IsFull reports whether the query has no existential variables (a full join
// query in the paper's terminology).
func (q *CQ) IsFull() bool { return len(q.ExistentialVars()) == 0 }

// HasSelfJoin reports whether two distinct atoms use the same relation symbol.
func (q *CQ) HasSelfJoin() bool {
	seen := make(map[string]bool)
	for _, a := range q.Body {
		if seen[a.Relation] {
			return true
		}
		seen[a.Relation] = true
	}
	return false
}

func (q *CQ) String() string {
	atoms := make([]string, len(q.Body))
	for i, a := range q.Body {
		atoms[i] = a.String()
	}
	return fmt.Sprintf("%s(%s) :- %s", q.Name, strings.Join(q.Head, ", "), strings.Join(atoms, ", "))
}

// UCQ is a union of CQs with identical head arity. The paper additionally
// requires the same head-variable *sequence*; we require same length and
// treat position i of every disjunct as output column i.
type UCQ struct {
	Name      string
	Disjuncts []*CQ
}

// NewUCQ validates head arities and returns the union.
func NewUCQ(name string, disjuncts ...*CQ) (*UCQ, error) {
	if len(disjuncts) == 0 {
		return nil, fmt.Errorf("ucq %s: no disjuncts", name)
	}
	arity := len(disjuncts[0].Head)
	for _, q := range disjuncts[1:] {
		if len(q.Head) != arity {
			return nil, fmt.Errorf("ucq %s: disjunct %s has head arity %d, want %d", name, q.Name, len(q.Head), arity)
		}
	}
	return &UCQ{Name: name, Disjuncts: disjuncts}, nil
}

// MustUCQ is NewUCQ that panics on error.
func MustUCQ(name string, disjuncts ...*CQ) *UCQ {
	u, err := NewUCQ(name, disjuncts...)
	if err != nil {
		panic(err)
	}
	return u
}

// Arity returns the common head arity.
func (u *UCQ) Arity() int { return len(u.Disjuncts[0].Head) }

func (u *UCQ) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, " ∪ ")
}

// Intersection builds the CQ computing ⋂_{i∈idx} u.Disjuncts[i], used by the
// mc-UCQ algorithms (Section 5.2): the conjunction of all bodies after
// renaming each disjunct's variables so that head position j is the shared
// variable of the first selected disjunct and existential variables are
// disjunct-local. idx must be non-empty and sorted.
func (u *UCQ) Intersection(name string, idx []int) (*CQ, error) {
	if len(idx) == 0 {
		return nil, fmt.Errorf("ucq %s: empty intersection index set", u.Name)
	}
	base := u.Disjuncts[idx[0]]
	var body []Atom
	for _, i := range idx {
		q := u.Disjuncts[i]
		// Head variable at position j renames to base.Head[j]; existential
		// variable v renames to a disjunct-local name.
		ren := make(map[string]string)
		for j, h := range q.Head {
			ren[h] = base.Head[j]
		}
		for _, a := range q.Body {
			terms := make([]Term, len(a.Terms))
			for k, t := range a.Terms {
				if !t.IsVar() {
					terms[k] = t
					continue
				}
				if to, ok := ren[t.Var]; ok {
					terms[k] = V(to)
				} else {
					terms[k] = V(fmt.Sprintf("%s@%d", t.Var, i))
				}
			}
			body = append(body, Atom{Relation: a.Relation, Terms: terms})
		}
	}
	return NewCQ(name, append([]string(nil), base.Head...), body)
}
