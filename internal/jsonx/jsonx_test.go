package jsonx

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestAppendStringMatchesEncodingJSON pins byte identity with the stdlib
// encoder over the escaping table's edge cases and random fuzz, including
// invalid UTF-8.
func TestAppendStringMatchesEncodingJSON(t *testing.T) {
	cases := []string{
		"",
		"plain",
		`quote " and backslash \`,
		"control \x00 \x01 \x1f bytes",
		"\b\f\n\r\t",
		"html <script>&amp;</script>",
		"unicode é 世界",
		"line seps \u2028 \u2029",
		"invalid \xff\xfe utf8",
		"trailing continuation \xc3",
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(40))
		for j := range b {
			b[j] = byte(rng.Intn(256))
		}
		cases = append(cases, string(b))
	}
	for _, s := range cases {
		want, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := AppendString(nil, s); string(got) != string(want) {
			t.Errorf("AppendString(%q):\n got %s\nwant %s", s, got, want)
		}
	}
}
