// Package jsonx holds the zero-allocation JSON string escaper shared by the
// serving tier and the shard router: both build response bodies by hand into
// pooled buffers, and both must produce byte-identical output to
// encoding/json so transcripts from either tier diff clean against the
// reference encoder.
package jsonx

import "unicode/utf8"

const hexDigits = "0123456789abcdef"

// AppendString appends s as a quoted JSON string using exactly
// encoding/json's default (HTML-escaping) table: `"` and `\` get a backslash,
// \b \f \n \r \t their short escapes, other control bytes `\u00xx`, `<` `>` `&`
// their `\u00xx` forms, U+2028/U+2029 their `\u202x` forms, and invalid
// UTF-8 the literal `�` escape.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		switch {
		case c == utf8.RuneError && size == 1:
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
		case c == '\u2028' || c == '\u2029':
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
		default:
			i += size
		}
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
