package reduce

import (
	"errors"
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/query"
	"repro/internal/relation"
)

// ErrCyclic is returned when the query's hypergraph is cyclic.
var ErrCyclic = errors.New("reduce: query is cyclic")

// ErrNotFreeConnex is returned when the query is acyclic but not free-connex,
// i.e. existential variables cannot be eliminated in linear time.
var ErrNotFreeConnex = errors.New("reduce: query is not free-connex")

// Node is a node of the reduced full-join tree. Its relation's schema
// consists of head variables only.
type Node struct {
	Rel      *relation.Relation
	Parent   *Node
	Children []*Node
}

// FullJoin is the output of Proposition 4.2: a rooted join tree of relations
// over head variables whose natural join equals Q(D), with each answer
// produced by exactly one combination of tuples (one per node).
type FullJoin struct {
	// Head is the output variable order (the CQ's head).
	Head []string
	// Root is the root of the join tree.
	Root *Node
	// Nodes lists all nodes in a deterministic order (the order in which the
	// surviving atoms appeared in the query body).
	Nodes []*Node
}

// Options tunes BuildFullJoin.
type Options struct {
	// SkipFullReduce skips the Yannakakis semijoin sweeps. The construction
	// stays correct (dangling tuples receive weight zero in the access index)
	// but preprocessing does less work up front and the index holds dead
	// tuples. Exposed for the ablation benchmarks.
	SkipFullReduce bool

	// CanonicalOrder sorts every node relation lexicographically before the
	// index is built, making the enumeration order of Access(j) depend only
	// on the data *content*, not on tuple ingestion order. Sorting costs
	// O(n log n), so preprocessing is no longer strictly linear. Structural
	// compatibility between aligned queries (Section 5.2) is preserved:
	// sorted order-preserving subsets stay order-preserving.
	CanonicalOrder bool
}

// BuildFullJoin implements Proposition 4.2. It returns ErrCyclic or
// ErrNotFreeConnex (wrapped with context) for queries outside the supported
// class.
func BuildFullJoin(db *relation.Database, q *query.CQ, opts Options) (*FullJoin, error) {
	rels, err := InstantiateAll(db, q)
	if err != nil {
		return nil, err
	}

	// Join tree over the original (instantiated) atoms; fails on cyclic.
	h := hypergraph.FromCQ(q)
	tree, err := h.JoinTree()
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCyclic, q.Name)
	}
	if !opts.SkipFullReduce {
		if err := FullReduce(tree, rels); err != nil {
			return nil, err
		}
	}

	// Protected GYO elimination over (schema, relation) items.
	items := make([]*relation.Relation, len(rels))
	copy(items, rels)
	head := q.HeadSet()

	items, err = eliminate(items, head)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNotFreeConnex, q.Name, err)
	}

	if opts.CanonicalOrder {
		for _, r := range items {
			r.SortTuples()
		}
	}

	// The remainder is a full join over head variables; build its join tree.
	rh := &hypergraph.Hypergraph{}
	for i, r := range items {
		rh.Edges = append(rh.Edges, hypergraph.NewEdge(i, []string(r.Schema())))
	}
	rtree, err := rh.JoinTree()
	if err != nil {
		// Cannot happen for acyclic inputs: both elimination operations are
		// GYO steps and preserve acyclicity. Guard anyway.
		return nil, fmt.Errorf("%w: %s: remainder cyclic", ErrNotFreeConnex, q.Name)
	}

	fj := &FullJoin{Head: append([]string(nil), q.Head...)}
	nodes := make([]*Node, len(items))
	for i, r := range items {
		nodes[i] = &Node{Rel: r}
	}
	for i, tn := range rtree.Nodes {
		if tn.Parent != nil {
			// rtree.Nodes is in edge-index order; EdgeID is the item index.
			nodes[tn.EdgeID].Parent = nodes[tn.Parent.EdgeID]
		}
		_ = i
	}
	for _, n := range nodes {
		if n.Parent != nil {
			n.Parent.Children = append(n.Parent.Children, n)
		} else {
			fj.Root = n
		}
	}
	fj.Nodes = nodes
	return fj, nil
}

// elimOps receives the data-level effects of the elimination decisions. The
// decisions themselves — which variables to project away, which atom absorbs
// which — are purely schema-driven, so runEliminate computes them from
// schemas alone and calls back for the (expensive) relation work. The
// planner's cost simulation plugs in a no-op implementation and gets the
// exact surviving structure without touching any tuples, guaranteed to match
// what the real reduction will build.
type elimOps interface {
	// Project narrows item i to the keep attributes (in schema order).
	Project(i int, keep []string) error
	// Absorb replaces item `into` by into ⋉ drop and deletes item `drop`.
	Absorb(into, drop int) error
}

// eliminate runs the protected GYO elimination until only head variables
// remain, returning the surviving relations (in original atom order). The two
// operations are:
//
//   - project: drop variables that are existential and occur in exactly one
//     surviving atom (a single-relation projection — linear time);
//   - absorb: if vars(a) ⊆ vars(b) for surviving atoms a ≠ b, replace b by
//     b ⋉ a and drop a (correct unconditionally because the join with a adds
//     no columns beyond b's and acts as a filter on b).
//
// For equal variable sets the later atom is absorbed into the earlier one;
// for strict subsets the subset atom is absorbed into its superset. This
// deterministic policy is what aligns the tree shapes of structurally-equal
// queries (required for mc-UCQ order compatibility, Section 5.2).
func eliminate(items []*relation.Relation, head map[string]bool) ([]*relation.Relation, error) {
	schemas := make([]relation.Schema, len(items))
	for i, r := range items {
		schemas[i] = r.Schema()
	}
	ops := &relElim{items: items}
	if _, _, err := runEliminate(schemas, head, ops); err != nil {
		return nil, err
	}
	return ops.items, nil
}

// relElim applies elimination decisions to real relations.
type relElim struct {
	items []*relation.Relation
}

func (e *relElim) Project(i int, keep []string) error {
	p, err := e.items[i].Project(e.items[i].Name(), keep)
	if err != nil {
		return err
	}
	e.items[i] = p
	return nil
}

func (e *relElim) Absorb(into, drop int) error {
	e.items[into].SemijoinWith(e.items[drop])
	e.items = append(e.items[:drop], e.items[drop+1:]...)
	return nil
}

// noopElim discards the data effects: runEliminate then reduces to a pure
// schema simulation.
type noopElim struct{}

func (noopElim) Project(int, []string) error { return nil }
func (noopElim) Absorb(int, int) error       { return nil }

// SimulateEliminate replays the protected GYO elimination on atom schemas
// alone, with no database: it returns the surviving schemas (post-projection)
// and, aligned with them, the index of the original atom each survivor came
// from. The decisions are computed by the same driver the real reduction
// uses, so the surviving structure — and hence the remainder join tree built
// over it — is exactly what BuildFullJoin would produce for a query with
// these atom schemas. The error mirrors the non-free-connex failure.
func SimulateEliminate(schemas [][]string, head map[string]bool) (surviving [][]string, atoms []int, err error) {
	ss := make([]relation.Schema, len(schemas))
	for i, s := range schemas {
		ss[i] = relation.Schema(s)
	}
	out, atoms, err := runEliminate(ss, head, noopElim{})
	if err != nil {
		return nil, nil, err
	}
	surviving = make([][]string, len(out))
	for i, s := range out {
		surviving[i] = []string(s)
	}
	return surviving, atoms, nil
}

// runEliminate is the elimination driver: it owns the decision logic over
// schemas, mirrors every decision into ops, and returns the surviving
// schemas plus the original item index of each survivor.
func runEliminate(schemas []relation.Schema, head map[string]bool, ops elimOps) ([]relation.Schema, []int, error) {
	origin := make([]int, len(schemas))
	for i := range origin {
		origin[i] = i
	}
	for {
		changed := false

		// Projection pass.
		occurrences := make(map[string]int)
		for _, s := range schemas {
			for _, v := range s {
				occurrences[v]++
			}
		}
		for i, s := range schemas {
			var keep []string
			for _, v := range s {
				if head[v] || occurrences[v] > 1 {
					keep = append(keep, v)
				}
			}
			if len(keep) == len(s) {
				continue
			}
			if err := ops.Project(i, keep); err != nil {
				return nil, nil, err
			}
			schemas[i] = relation.Schema(keep)
			changed = true
		}

		// One absorption (then restart, so occurrence counts stay fresh).
		absorbed := false
		drop := func(into, j int) error {
			if err := ops.Absorb(into, j); err != nil {
				return err
			}
			schemas = append(schemas[:j], schemas[j+1:]...)
			origin = append(origin[:j], origin[j+1:]...)
			return nil
		}
		// Equal sets: keep the earlier atom.
		for i := 0; i < len(schemas) && !absorbed; i++ {
			for j := i + 1; j < len(schemas); j++ {
				if schemaSubset(schemas[j], schemas[i]) {
					if err := drop(i, j); err != nil {
						return nil, nil, err
					}
					absorbed = true
					break
				}
			}
		}
		// Strict subsets: absorb the subset into its superset.
		if !absorbed {
			for i := 0; i < len(schemas) && !absorbed; i++ {
				for j := 0; j < len(schemas); j++ {
					if i == j {
						continue
					}
					if schemaSubset(schemas[i], schemas[j]) {
						if err := drop(j, i); err != nil {
							return nil, nil, err
						}
						absorbed = true
						break
					}
				}
			}
		}
		if absorbed {
			changed = true
		}

		if !changed {
			break
		}
	}

	for _, s := range schemas {
		for _, v := range s {
			if !head[v] {
				return nil, nil, fmt.Errorf("existential variable %q cannot be eliminated", v)
			}
		}
	}
	return schemas, origin, nil
}

// schemaSubset reports whether every attribute of a occurs in b.
func schemaSubset(a, b relation.Schema) bool {
	for _, v := range a {
		if !b.Contains(v) {
			return false
		}
	}
	return true
}

// Answers materializes the full join by backtracking along the tree (used by
// tests; not part of the enumeration fast path). Answers are produced in the
// enumeration order of the access index built on this tree: for each node,
// tuples in relation order; earlier children are more significant than later
// ones; a child's whole subtree is more significant than its next sibling.
func (fj *FullJoin) Answers() []relation.Tuple {
	type binding = map[string]relation.Value
	var out []relation.Tuple
	emit := func(b binding) {
		t := make(relation.Tuple, len(fj.Head))
		for i, h := range fj.Head {
			t[i] = b[h]
		}
		out = append(out, t)
	}
	// Materialize each node's rows once up front (Tuples copies out of the
	// columns; doing it inside the recursion would re-copy per branch).
	rows := make(map[*Node][]relation.Tuple, len(fj.Nodes))
	for _, n := range fj.Nodes {
		rows[n] = n.Rel.Tuples()
	}
	var recAll func(pending []*Node, b binding)
	recAll = func(pending []*Node, b binding) {
		if len(pending) == 0 {
			emit(b)
			return
		}
		n := pending[0]
		rest := pending[1:]
		schema := n.Rel.Schema()
		for _, tu := range rows[n] {
			ok := true
			for i, v := range schema {
				if val, bound := b[v]; bound && val != tu[i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nb := make(binding, len(b)+len(schema))
			for k, v := range b {
				nb[k] = v
			}
			for i, v := range schema {
				nb[v] = tu[i]
			}
			recAll(append(append([]*Node(nil), n.Children...), rest...), nb)
		}
	}
	if fj.Root != nil {
		recAll([]*Node{fj.Root}, binding{})
	}
	return out
}
