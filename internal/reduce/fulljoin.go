package reduce

import (
	"errors"
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/query"
	"repro/internal/relation"
)

// ErrCyclic is returned when the query's hypergraph is cyclic.
var ErrCyclic = errors.New("reduce: query is cyclic")

// ErrNotFreeConnex is returned when the query is acyclic but not free-connex,
// i.e. existential variables cannot be eliminated in linear time.
var ErrNotFreeConnex = errors.New("reduce: query is not free-connex")

// Node is a node of the reduced full-join tree. Its relation's schema
// consists of head variables only.
type Node struct {
	Rel      *relation.Relation
	Parent   *Node
	Children []*Node
}

// FullJoin is the output of Proposition 4.2: a rooted join tree of relations
// over head variables whose natural join equals Q(D), with each answer
// produced by exactly one combination of tuples (one per node).
type FullJoin struct {
	// Head is the output variable order (the CQ's head).
	Head []string
	// Root is the root of the join tree.
	Root *Node
	// Nodes lists all nodes in a deterministic order (the order in which the
	// surviving atoms appeared in the query body).
	Nodes []*Node
}

// Options tunes BuildFullJoin.
type Options struct {
	// SkipFullReduce skips the Yannakakis semijoin sweeps. The construction
	// stays correct (dangling tuples receive weight zero in the access index)
	// but preprocessing does less work up front and the index holds dead
	// tuples. Exposed for the ablation benchmarks.
	SkipFullReduce bool

	// CanonicalOrder sorts every node relation lexicographically before the
	// index is built, making the enumeration order of Access(j) depend only
	// on the data *content*, not on tuple ingestion order. Sorting costs
	// O(n log n), so preprocessing is no longer strictly linear. Structural
	// compatibility between aligned queries (Section 5.2) is preserved:
	// sorted order-preserving subsets stay order-preserving.
	CanonicalOrder bool
}

// BuildFullJoin implements Proposition 4.2. It returns ErrCyclic or
// ErrNotFreeConnex (wrapped with context) for queries outside the supported
// class.
func BuildFullJoin(db *relation.Database, q *query.CQ, opts Options) (*FullJoin, error) {
	rels, err := InstantiateAll(db, q)
	if err != nil {
		return nil, err
	}

	// Join tree over the original (instantiated) atoms; fails on cyclic.
	h := hypergraph.FromCQ(q)
	tree, err := h.JoinTree()
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrCyclic, q.Name)
	}
	if !opts.SkipFullReduce {
		if err := FullReduce(tree, rels); err != nil {
			return nil, err
		}
	}

	// Protected GYO elimination over (schema, relation) items.
	items := make([]*relation.Relation, len(rels))
	copy(items, rels)
	head := q.HeadSet()

	items, err = eliminate(items, head)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrNotFreeConnex, q.Name, err)
	}

	if opts.CanonicalOrder {
		for _, r := range items {
			r.SortTuples()
		}
	}

	// The remainder is a full join over head variables; build its join tree.
	rh := &hypergraph.Hypergraph{}
	for i, r := range items {
		rh.Edges = append(rh.Edges, hypergraph.NewEdge(i, []string(r.Schema())))
	}
	rtree, err := rh.JoinTree()
	if err != nil {
		// Cannot happen for acyclic inputs: both elimination operations are
		// GYO steps and preserve acyclicity. Guard anyway.
		return nil, fmt.Errorf("%w: %s: remainder cyclic", ErrNotFreeConnex, q.Name)
	}

	fj := &FullJoin{Head: append([]string(nil), q.Head...)}
	nodes := make([]*Node, len(items))
	for i, r := range items {
		nodes[i] = &Node{Rel: r}
	}
	for i, tn := range rtree.Nodes {
		if tn.Parent != nil {
			// rtree.Nodes is in edge-index order; EdgeID is the item index.
			nodes[tn.EdgeID].Parent = nodes[tn.Parent.EdgeID]
		}
		_ = i
	}
	for _, n := range nodes {
		if n.Parent != nil {
			n.Parent.Children = append(n.Parent.Children, n)
		} else {
			fj.Root = n
		}
	}
	fj.Nodes = nodes
	return fj, nil
}

// eliminate runs the protected GYO elimination until only head variables
// remain, returning the surviving relations (in original atom order). The two
// operations are:
//
//   - project: drop variables that are existential and occur in exactly one
//     surviving atom (a single-relation projection — linear time);
//   - absorb: if vars(a) ⊆ vars(b) for surviving atoms a ≠ b, replace b by
//     b ⋉ a and drop a (correct unconditionally because the join with a adds
//     no columns beyond b's and acts as a filter on b).
//
// For equal variable sets the later atom is absorbed into the earlier one;
// for strict subsets the subset atom is absorbed into its superset. This
// deterministic policy is what aligns the tree shapes of structurally-equal
// queries (required for mc-UCQ order compatibility, Section 5.2).
func eliminate(items []*relation.Relation, head map[string]bool) ([]*relation.Relation, error) {
	for {
		changed := false

		// Projection pass.
		occurrences := make(map[string]int)
		for _, r := range items {
			for _, v := range r.Schema() {
				occurrences[v]++
			}
		}
		for i, r := range items {
			var keep []string
			for _, v := range r.Schema() {
				if head[v] || occurrences[v] > 1 {
					keep = append(keep, v)
				}
			}
			if len(keep) == len(r.Schema()) {
				continue
			}
			p, err := r.Project(r.Name(), keep)
			if err != nil {
				return nil, err
			}
			items[i] = p
			changed = true
		}

		// One absorption (then restart, so occurrence counts stay fresh).
		absorbed := false
		// Equal sets: keep the earlier atom.
		for i := 0; i < len(items) && !absorbed; i++ {
			for j := i + 1; j < len(items); j++ {
				if schemaSubset(items[j].Schema(), items[i].Schema()) {
					items[i].SemijoinWith(items[j])
					items = append(items[:j], items[j+1:]...)
					absorbed = true
					break
				}
			}
		}
		// Strict subsets: absorb the subset into its superset.
		if !absorbed {
			for i := 0; i < len(items) && !absorbed; i++ {
				for j := 0; j < len(items); j++ {
					if i == j {
						continue
					}
					if schemaSubset(items[i].Schema(), items[j].Schema()) {
						items[j].SemijoinWith(items[i])
						items = append(items[:i], items[i+1:]...)
						absorbed = true
						break
					}
				}
			}
		}
		if absorbed {
			changed = true
		}

		if !changed {
			break
		}
	}

	for _, r := range items {
		for _, v := range r.Schema() {
			if !head[v] {
				return nil, fmt.Errorf("existential variable %q cannot be eliminated", v)
			}
		}
	}
	return items, nil
}

// schemaSubset reports whether every attribute of a occurs in b.
func schemaSubset(a, b relation.Schema) bool {
	for _, v := range a {
		if !b.Contains(v) {
			return false
		}
	}
	return true
}

// Answers materializes the full join by backtracking along the tree (used by
// tests; not part of the enumeration fast path). Answers are produced in the
// enumeration order of the access index built on this tree: for each node,
// tuples in relation order; earlier children are more significant than later
// ones; a child's whole subtree is more significant than its next sibling.
func (fj *FullJoin) Answers() []relation.Tuple {
	type binding = map[string]relation.Value
	var out []relation.Tuple
	emit := func(b binding) {
		t := make(relation.Tuple, len(fj.Head))
		for i, h := range fj.Head {
			t[i] = b[h]
		}
		out = append(out, t)
	}
	// Materialize each node's rows once up front (Tuples copies out of the
	// columns; doing it inside the recursion would re-copy per branch).
	rows := make(map[*Node][]relation.Tuple, len(fj.Nodes))
	for _, n := range fj.Nodes {
		rows[n] = n.Rel.Tuples()
	}
	var recAll func(pending []*Node, b binding)
	recAll = func(pending []*Node, b binding) {
		if len(pending) == 0 {
			emit(b)
			return
		}
		n := pending[0]
		rest := pending[1:]
		schema := n.Rel.Schema()
		for _, tu := range rows[n] {
			ok := true
			for i, v := range schema {
				if val, bound := b[v]; bound && val != tu[i] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			nb := make(binding, len(b)+len(schema))
			for k, v := range b {
				nb[k] = v
			}
			for i, v := range schema {
				nb[v] = tu[i]
			}
			recAll(append(append([]*Node(nil), n.Children...), rest...), nb)
		}
	}
	if fj.Root != nil {
		recAll([]*Node{fj.Root}, binding{})
	}
	return out
}
