package reduce

import (
	"fmt"

	"repro/internal/hypergraph"
	"repro/internal/relation"
)

// FullReduce runs the Yannakakis full reducer over the given join tree: a
// bottom-up semijoin sweep followed by a top-down semijoin sweep. After the
// call, the relations are globally consistent: every remaining tuple agrees
// with at least one answer of the full acyclic join. Relations are modified
// in place; tuple order is preserved. rels[i] is the relation of tree node i
// (tree.Nodes order).
//
// The two-sweep full reducer is from Yannakakis (VLDB 1981), cited as [29] in
// the paper.
func FullReduce(tree *hypergraph.Tree, rels []*relation.Relation) error {
	if len(rels) != len(tree.Nodes) {
		return fmt.Errorf("reduce: %d relations for %d tree nodes", len(rels), len(tree.Nodes))
	}
	relOf := make(map[*hypergraph.TreeNode]*relation.Relation, len(rels))
	for i, n := range tree.Nodes {
		relOf[n] = rels[i]
	}

	// Bottom-up: parent ⋉ child for every edge, children first.
	var up func(n *hypergraph.TreeNode)
	up = func(n *hypergraph.TreeNode) {
		for _, c := range n.Children {
			up(c)
			relOf[n].SemijoinWith(relOf[c])
		}
	}
	up(tree.Root)

	// Top-down: child ⋉ parent for every edge, parents first.
	var down func(n *hypergraph.TreeNode)
	down = func(n *hypergraph.TreeNode) {
		for _, c := range n.Children {
			relOf[c].SemijoinWith(relOf[n])
			down(c)
		}
	}
	down(tree.Root)
	return nil
}
