package reduce

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/relation"
)

// TestEliminationMatchesDefinition is the key structural consistency check of
// the library: for random queries, the constructive pipeline (BuildFullJoin's
// protected GYO elimination) must succeed exactly on the queries the
// definitional test (hypergraph.IsFreeConnex — GYO on H and on H ∪ {head})
// accepts. If these ever diverged, either the classifier or the construction
// would be wrong.
func TestEliminationMatchesDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	varNames := []string{"a", "b", "c", "d", "e"}
	relNames := []string{"R0", "R1", "R2", "R3"}

	// A tiny database covering every relation/arity the generator may emit.
	makeDB := func(q *query.CQ) *relation.Database {
		db := relation.NewDatabase()
		for i, a := range q.Body {
			name := a.Relation
			if db.Has(name) {
				continue
			}
			attrs := make([]string, len(a.Terms))
			for j := range attrs {
				attrs[j] = fmt.Sprintf("c%d_%d", i, j)
			}
			r := db.MustCreate(name, attrs...)
			for k := 0; k < 10; k++ {
				tu := make(relation.Tuple, len(attrs))
				for j := range tu {
					tu[j] = relation.Value(rng.Intn(4))
				}
				if _, err := r.Insert(tu); err != nil {
					panic(err)
				}
			}
		}
		return db
	}

	tested, fcCount := 0, 0
	for iter := 0; iter < 3000; iter++ {
		// Random query: 1-4 atoms, arity 1-3, head = random subset of vars.
		nAtoms := 1 + rng.Intn(4)
		var body []query.Atom
		varSet := map[string]bool{}
		for i := 0; i < nAtoms; i++ {
			arity := 1 + rng.Intn(3)
			terms := make([]query.Term, arity)
			for j := range terms {
				v := varNames[rng.Intn(len(varNames))]
				terms[j] = query.V(v)
				varSet[v] = true
			}
			// Distinct relation symbol per atom (self-joins are covered by
			// relation reuse below in ~20% of cases).
			name := relNames[i]
			if rng.Intn(5) == 0 && i > 0 {
				name = relNames[rng.Intn(i)]
			}
			body = append(body, query.Atom{Relation: name, Terms: terms})
		}
		var head []string
		for v := range varSet {
			if rng.Intn(2) == 0 {
				head = append(head, v)
			}
		}
		q, err := query.NewCQ("q", head, body)
		if err != nil {
			continue // unsafe head etc.
		}
		// Atoms of the same relation must have the same arity for the DB.
		arities := map[string]int{}
		ok := true
		for _, a := range q.Body {
			if ar, seen := arities[a.Relation]; seen && ar != len(a.Terms) {
				ok = false
				break
			}
			arities[a.Relation] = len(a.Terms)
		}
		if !ok {
			continue
		}
		tested++

		db := makeDB(q)
		fj, err := BuildFullJoin(db, q, Options{})
		def := hypergraph.IsFreeConnex(q)
		if def != (err == nil) {
			t.Fatalf("iter %d: IsFreeConnex=%v but BuildFullJoin err=%v for %v", iter, def, err, q)
		}
		if err != nil {
			// Error classification must be one of the two public reasons.
			if !errors.Is(err, ErrCyclic) && !errors.Is(err, ErrNotFreeConnex) {
				t.Fatalf("iter %d: unexpected error type %v", iter, err)
			}
			continue
		}
		fcCount++
		// And the construction must be semantically correct.
		want, err := naive.Evaluate(db, q)
		if err != nil {
			t.Fatal(err)
		}
		got := fj.Answers()
		if !naive.SameAnswerSet(got, want) {
			t.Fatalf("iter %d: wrong answers for %v: got %d want %d", iter, q, len(got), len(want))
		}
	}
	if tested < 500 || fcCount < 100 {
		t.Fatalf("test too weak: %d queries tested, %d free-connex", tested, fcCount)
	}
}
