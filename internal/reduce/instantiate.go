// Package reduce implements Proposition 4.2 of the paper: given a free-connex
// CQ Q and a database D, compute — in linear time — a *full* acyclic join
// query Q' and database D' with Q(D) = Q'(D') where D' is globally consistent
// with respect to Q'. It is built from three pieces:
//
//  1. atom instantiation: turn every atom R(t̄) into a relation over the
//     atom's variables (applying constant selections and repeated-variable
//     equalities),
//  2. the Yannakakis full reducer (two semijoin sweeps over a join tree)
//     which removes dangling tuples, and
//  3. protected GYO elimination: repeatedly project away existential
//     variables that are local to a single atom and absorb atoms subsumed by
//     others via semijoins, until only free variables remain.
//
// All relation operations preserve relative tuple order, which is what makes
// enumeration orders of structurally-aligned queries compatible (Section 5.2).
package reduce

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// Instantiate converts atom a of q into a relation whose schema is the atom's
// distinct variables (in first-occurrence order). Tuples violating the atom's
// constants or repeated-variable equalities are dropped; the remaining tuples
// are projected onto the variable positions with set semantics, preserving
// the base relation's tuple order.
func Instantiate(db *relation.Database, q *query.CQ, atomIdx int) (*relation.Relation, error) {
	a := q.Body[atomIdx]
	base, err := db.Relation(a.Relation)
	if err != nil {
		return nil, fmt.Errorf("reduce: query %s: %w", q.Name, err)
	}
	if base.Arity() != len(a.Terms) {
		return nil, fmt.Errorf("reduce: query %s: atom %s has %d terms, relation %s has arity %d",
			q.Name, a, len(a.Terms), a.Relation, base.Arity())
	}
	vars := a.Vars()
	schema, err := relation.NewSchema(vars...)
	if err != nil {
		return nil, fmt.Errorf("reduce: query %s atom %d: %w", q.Name, atomIdx, err)
	}
	// Position of the first occurrence of each variable.
	firstPos := make(map[string]int)
	for pos, t := range a.Terms {
		if t.IsVar() {
			if _, ok := firstPos[t.Var]; !ok {
				firstPos[t.Var] = pos
			}
		}
	}
	varPos := make([]int, len(vars))
	for i, v := range vars {
		varPos[i] = firstPos[v]
	}

	name := fmt.Sprintf("%s#%d[%s]", q.Name, atomIdx, a.Relation)
	out := relation.NewRelation(name, schema)
	// Columnar scan: selection conditions read the base columns in place and
	// the projection gathers into a reused scratch row (Insert copies it) —
	// no per-tuple materialization.
	scratch := make(relation.Tuple, len(varPos))
	n := base.Len()
	for i := 0; i < n; i++ {
		ok := true
		for pos, t := range a.Terms {
			if !t.IsVar() {
				if base.At(i, pos) != t.Const {
					ok = false
					break
				}
				continue
			}
			if base.At(i, pos) != base.At(i, firstPos[t.Var]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for k, p := range varPos {
			scratch[k] = base.At(i, p)
		}
		if _, err := out.Insert(scratch); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// InstantiateAll instantiates every atom of q.
func InstantiateAll(db *relation.Database, q *query.CQ) ([]*relation.Relation, error) {
	out := make([]*relation.Relation, len(q.Body))
	for i := range q.Body {
		r, err := Instantiate(db, q, i)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
