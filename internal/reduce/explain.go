package reduce

import (
	"fmt"
	"strings"
)

// Explain renders the reduced full-join tree in a human-readable indented
// form, one line per node: relation name, schema, cardinality and the
// attributes shared with the parent. Used by the CLI's -explain flag and by
// debugging sessions.
func (fj *FullJoin) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "full join over %d node(s), head %v\n", len(fj.Nodes), fj.Head)
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		shared := ""
		if n.Parent != nil {
			shared = fmt.Sprintf("  ⋈ parent on %v", n.Rel.Schema().Intersect(n.Parent.Rel.Schema()))
		}
		fmt.Fprintf(&b, "%s%s %v  [%d tuples]%s\n", indent, n.Rel.Name(), n.Rel.Schema(), n.Rel.Len(), shared)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if fj.Root != nil {
		walk(fj.Root, 1)
	}
	return b.String()
}
