package reduce

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/relation"
)

func chainDB() *relation.Database {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x", "y")
	s := db.MustCreate("S", "y", "z")
	r.MustInsert(1, 10)
	r.MustInsert(2, 10)
	r.MustInsert(3, 20)
	r.MustInsert(4, 99) // dangling: 99 not in S
	s.MustInsert(10, 100)
	s.MustInsert(10, 200)
	s.MustInsert(20, 300)
	s.MustInsert(77, 400) // dangling
	return db
}

func TestInstantiateConstantsAndRepeats(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b", "c")
	r.MustInsert(1, 1, 5)
	r.MustInsert(1, 2, 5)
	r.MustInsert(2, 2, 7)
	q := query.MustCQ("q", []string{"x"},
		query.NewAtom("R", query.V("x"), query.V("x"), query.C(5)))
	rel, err := Instantiate(db, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 1 || rel.Tuple(0)[0] != 1 {
		t.Fatalf("instantiated = %v", rel.Tuples())
	}
	if !rel.Schema().Equal(relation.MustSchema("x")) {
		t.Fatalf("schema = %v", rel.Schema())
	}
}

func TestInstantiateErrors(t *testing.T) {
	db := relation.NewDatabase()
	db.MustCreate("R", "a", "b")
	q := query.MustCQ("q", []string{"x"}, query.NewAtom("Missing", query.V("x")))
	if _, err := Instantiate(db, q, 0); err == nil {
		t.Fatal("missing relation accepted")
	}
	q2 := query.MustCQ("q", []string{"x"}, query.NewAtom("R", query.V("x")))
	if _, err := Instantiate(db, q2, 0); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestFullReduceRemovesDangling(t *testing.T) {
	db := chainDB()
	q := query.MustCQ("q", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	rels, err := InstantiateAll(db, q)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := hypergraph.FromCQ(q).JoinTree()
	if err != nil {
		t.Fatal(err)
	}
	if err := FullReduce(tree, rels); err != nil {
		t.Fatal(err)
	}
	if rels[0].Len() != 3 { // (4,99) removed
		t.Fatalf("R reduced to %d tuples, want 3", rels[0].Len())
	}
	if rels[1].Len() != 3 { // (77,400) removed
		t.Fatalf("S reduced to %d tuples, want 3", rels[1].Len())
	}
	// Order preserved.
	if rels[0].Tuple(0)[0] != 1 || rels[0].Tuple(2)[0] != 3 {
		t.Fatal("full reduction reordered tuples")
	}
}

func TestFullReduceLengthMismatch(t *testing.T) {
	q := query.MustCQ("q", []string{"x"}, query.NewAtom("R", query.V("x")))
	tree, _ := hypergraph.FromCQ(q).JoinTree()
	if err := FullReduce(tree, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestBuildFullJoinFullQuery(t *testing.T) {
	db := chainDB()
	q := query.MustCQ("q", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	fj, err := BuildFullJoin(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.Evaluate(db, q)
	got := fj.Answers()
	if !naive.SameAnswerSet(got, want) {
		t.Fatalf("full join answers wrong: got %d, want %d", len(got), len(want))
	}
}

func TestBuildFullJoinProjection(t *testing.T) {
	db := chainDB()
	// Free-connex projection: Q(x, y) :- R(x,y), S(y,z).
	q := query.MustCQ("q", []string{"x", "y"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	fj, err := BuildFullJoin(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.Evaluate(db, q)
	got := fj.Answers()
	if !naive.SameAnswerSet(got, want) {
		t.Fatalf("got %v want %v", naive.Sorted(got), naive.Sorted(want))
	}
	// Every node schema must contain only head vars.
	for _, n := range fj.Nodes {
		for _, v := range n.Rel.Schema() {
			if v != "x" && v != "y" {
				t.Fatalf("existential var %s survived", v)
			}
		}
	}
}

func TestBuildFullJoinNotFreeConnex(t *testing.T) {
	db := chainDB()
	q := query.MustCQ("q", []string{"x", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	_, err := BuildFullJoin(db, q, Options{})
	if !errors.Is(err, ErrNotFreeConnex) {
		t.Fatalf("err = %v, want ErrNotFreeConnex", err)
	}
}

func TestBuildFullJoinCyclic(t *testing.T) {
	db := relation.NewDatabase()
	db.MustCreate("R", "x", "y")
	db.MustCreate("S", "y", "z")
	db.MustCreate("T", "x", "z")
	q := query.MustCQ("q", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")),
		query.NewAtom("T", query.V("x"), query.V("z")))
	_, err := BuildFullJoin(db, q, Options{})
	if !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestBuildFullJoinBoolean(t *testing.T) {
	db := chainDB()
	q := query.MustCQ("q", nil,
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	fj, err := BuildFullJoin(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := fj.Answers()
	if len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("boolean answers = %v", got)
	}
}

func TestBuildFullJoinEmptyResult(t *testing.T) {
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x", "y")
	db.MustCreate("S", "y", "z") // empty
	r.MustInsert(1, 2)
	q := query.MustCQ("q", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	fj, err := BuildFullJoin(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fj.Answers(); len(got) != 0 {
		t.Fatalf("answers = %v, want none", got)
	}
}

func TestBuildFullJoinSkipFullReduceStillCorrect(t *testing.T) {
	db := chainDB()
	q := query.MustCQ("q", []string{"x", "y", "z"},
		query.NewAtom("R", query.V("x"), query.V("y")),
		query.NewAtom("S", query.V("y"), query.V("z")))
	fj, err := BuildFullJoin(db, q, Options{SkipFullReduce: true})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.Evaluate(db, q)
	// Answers() backtracks, so dangling tuples are filtered during the walk.
	if !naive.SameAnswerSet(fj.Answers(), want) {
		t.Fatal("skip-reduce changed the answer set")
	}
}

func TestBuildFullJoinStar(t *testing.T) {
	// Star query projected onto the center plus one ray: free-connex.
	db := relation.NewDatabase()
	r := db.MustCreate("R", "x", "a")
	s := db.MustCreate("S", "x", "b")
	u := db.MustCreate("U", "x", "c")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		r.MustInsert(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
		s.MustInsert(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
		u.MustInsert(relation.Value(rng.Intn(8)), relation.Value(rng.Intn(8)))
	}
	q := query.MustCQ("q", []string{"x", "a"},
		query.NewAtom("R", query.V("x"), query.V("a")),
		query.NewAtom("S", query.V("x"), query.V("b")),
		query.NewAtom("U", query.V("x"), query.V("c")))
	fj, err := BuildFullJoin(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := naive.Evaluate(db, q)
	if !naive.SameAnswerSet(fj.Answers(), want) {
		t.Fatal("star projection wrong")
	}
}

// TestBuildFullJoinRandomAgainstOracle fuzzes random chain/star databases and
// compares the reduced full join against the naive evaluator.
func TestBuildFullJoinRandomAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	queries := []*query.CQ{
		query.MustCQ("chain3", []string{"a", "b", "c", "d"},
			query.NewAtom("R", query.V("a"), query.V("b")),
			query.NewAtom("S", query.V("b"), query.V("c")),
			query.NewAtom("U", query.V("c"), query.V("d"))),
		query.MustCQ("chain3proj", []string{"a", "b"},
			query.NewAtom("R", query.V("a"), query.V("b")),
			query.NewAtom("S", query.V("b"), query.V("c")),
			query.NewAtom("U", query.V("c"), query.V("d"))),
		query.MustCQ("starproj", []string{"b", "a"},
			query.NewAtom("R", query.V("a"), query.V("b")),
			query.NewAtom("S", query.V("a"), query.V("c")),
			query.NewAtom("U", query.V("a"), query.V("d"))),
	}
	for iter := 0; iter < 25; iter++ {
		db := relation.NewDatabase()
		for _, name := range []string{"R", "S", "U"} {
			re := db.MustCreate(name, name+"1", name+"2")
			n := 5 + rng.Intn(40)
			for i := 0; i < n; i++ {
				re.MustInsert(relation.Value(rng.Intn(7)), relation.Value(rng.Intn(7)))
			}
		}
		for _, q := range queries {
			fj, err := BuildFullJoin(db, q, Options{})
			if err != nil {
				t.Fatalf("%s: %v", q.Name, err)
			}
			want, err := naive.Evaluate(db, q)
			if err != nil {
				t.Fatal(err)
			}
			got := fj.Answers()
			if !naive.SameAnswerSet(got, want) {
				t.Fatalf("iter %d %s: got %d answers want %d", iter, q.Name, len(got), len(want))
			}
			// No duplicates: the tree must produce each answer exactly once.
			seen := make(map[string]bool)
			for _, a := range got {
				k := a.Key()
				if seen[k] {
					t.Fatalf("iter %d %s: duplicate answer %v", iter, q.Name, a)
				}
				seen[k] = true
			}
		}
	}
}

func TestEliminateKeepsEarlierOnEqualSets(t *testing.T) {
	// Two atoms over the same variables: the earlier one must survive
	// (deterministic alignment for mc-UCQs).
	db := relation.NewDatabase()
	a := db.MustCreate("A", "x", "y")
	b := db.MustCreate("B", "x", "y")
	a.MustInsert(1, 1)
	a.MustInsert(2, 2)
	b.MustInsert(2, 2)
	b.MustInsert(3, 3)
	q := query.MustCQ("q", []string{"x", "y"},
		query.NewAtom("A", query.V("x"), query.V("y")),
		query.NewAtom("B", query.V("x"), query.V("y")))
	fj, err := BuildFullJoin(db, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fj.Nodes) != 1 {
		t.Fatalf("nodes = %d, want 1", len(fj.Nodes))
	}
	got := fj.Answers()
	if len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("answers = %v, want [[2 2]]", got)
	}
	// The surviving relation must be derived from atom 0 (A).
	if fj.Nodes[0].Rel.Name() != "q#0[A]" {
		t.Fatalf("survivor = %s, want q#0[A]", fj.Nodes[0].Rel.Name())
	}
}
