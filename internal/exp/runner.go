// Package exp is the experiment harness reproducing every figure and table of
// the paper's Section 6 and Appendix B (see DESIGN.md §3 for the index):
//
//	Fig1  — total enumeration time, REnum(CQ) vs Sample(EW), six CQs
//	Fig2  — delay box plots, full enumeration
//	Fig3  — delay box plots, 50% enumeration
//	Fig4a — UCQ total time: cumulative CQs vs REnum(UCQ) vs REnum(mcUCQ)
//	Fig4b — QS7∪QC7 total time across percentages
//	Fig5  — REnum(UCQ) time on answers vs time on rejections per decile
//	Fig6  — Fig1 plus the Sample(EO) baseline
//	Fig7  — delay mean / standard deviation / outlier percentage tables
//	Fig8  — Q3 with the Sample(OE) baseline
//	RS    — appendix B.2.3: the Sample(RS) baseline on Q3
//
// Absolute times depend on hardware and scale factor; the harness reproduces
// the paper's *shapes*: who wins, how gaps grow with the requested fraction
// of answers, and where crossovers occur.
package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/access"
	"repro/internal/cqenum"
	"repro/internal/query"
	"repro/internal/reduce"
	"repro/internal/relation"
	"repro/internal/sample"
	"repro/internal/tpch"
	"repro/internal/tpchq"
)

// DefaultPercentages are the answer fractions used by Figure 1.
var DefaultPercentages = []int{1, 5, 10, 30, 50, 70, 90}

// Config controls a harness run.
type Config struct {
	// ScaleFactor is the TPC-H scale factor (the paper uses 5; laptop-scale
	// defaults are far smaller).
	ScaleFactor float64
	// Seed drives data generation and all algorithm randomness.
	Seed int64
	// Percentages overrides DefaultPercentages when non-empty.
	Percentages []int
	// Timeout caps each single algorithm run; zero means no cap. Runs that
	// exceed it report DNF for the remaining thresholds.
	Timeout time.Duration
	// Out receives the rendered tables; nil discards them.
	Out io.Writer
	// Workers caps the goroutines used by index construction (per-query
	// join-tree builds and the mc-UCQ disjunct/intersection preparation).
	// 0 means all cores; 1 forces serial builds — the paper's measurements
	// are single-threaded, so use 1 when comparing against its absolute
	// numbers.
	Workers int
}

// Runner owns the generated database and configuration.
type Runner struct {
	cfg Config
	db  *relation.Database
	rng *rand.Rand
}

// NewRunner generates the TPC-H database (plus derived relations) and returns
// a harness.
func NewRunner(cfg Config) (*Runner, error) {
	if cfg.ScaleFactor == 0 {
		cfg.ScaleFactor = 0.02
	}
	if len(cfg.Percentages) == 0 {
		cfg.Percentages = DefaultPercentages
	}
	db, err := tpch.Generate(tpch.Config{ScaleFactor: cfg.ScaleFactor, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	if err := tpchq.PrepareDerived(db); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg, db: db, rng: rand.New(rand.NewSource(cfg.Seed + 1))}, nil
}

// DB exposes the generated database (examples and tests reuse it).
func (r *Runner) DB() *relation.Database { return r.db }

func (r *Runner) printf(format string, args ...interface{}) {
	if r.cfg.Out != nil {
		fmt.Fprintf(r.cfg.Out, format, args...)
	}
}

// DNF marks a threshold that was not reached within the timeout.
const DNF = -1.0

// thresholds converts percentages to absolute answer counts for a result of
// size n (at least 1 per threshold so tiny scales stay meaningful).
func (r *Runner) thresholds(n int64) []int64 {
	out := make([]int64, len(r.cfg.Percentages))
	for i, p := range r.cfg.Percentages {
		k := n * int64(p) / 100
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		out[i] = k
	}
	return out
}

// prepareCQ prepares a CQ, returning the prepared query and the preprocessing
// wall time. The index build honours Config.Workers (the parallel builder).
func (r *Runner) prepareCQ(q *query.CQ) (*cqenum.CQ, float64, error) {
	start := time.Now()
	c, err := cqenum.PrepareWithOptions(r.db, q, reduce.Options{}, r.buildOptions())
	if err != nil {
		return nil, 0, fmt.Errorf("exp: %s: %w", q.Name, err)
	}
	return c, time.Since(start).Seconds(), nil
}

// buildOptions returns the index-construction options used across the
// harness.
func (r *Runner) buildOptions() access.BuildOptions {
	return access.BuildOptions{Workers: r.cfg.Workers}
}

// runThresholds drives next() until each threshold (cumulative answers) is
// hit, recording elapsed seconds per threshold; DNF after the timeout or if
// next() gives up early.
func (r *Runner) runThresholds(ks []int64, next func() bool) []float64 {
	out := make([]float64, len(ks))
	for i := range out {
		out[i] = DNF
	}
	start := time.Now()
	var produced int64
	ti := 0
	for ti < len(ks) {
		if r.cfg.Timeout > 0 && time.Since(start) > r.cfg.Timeout {
			return out
		}
		if !next() {
			return out
		}
		produced++
		for ti < len(ks) && produced >= ks[ti] {
			out[ti] = time.Since(start).Seconds()
			ti++
		}
	}
	return out
}

// fmtSec renders seconds or DNF.
func fmtSec(s float64) string {
	if s == DNF {
		return "DNF"
	}
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.3fs", s)
	}
}

// reduceOptions returns the reduction options used across the harness.
func (r *Runner) reduceOptions() reduce.Options { return reduce.Options{} }

// newSampler builds a baseline sampler over a prepared CQ.
func (r *Runner) newSampler(c *cqenum.CQ, m sample.Method) *sample.Sampler {
	return sample.New(c.Index, m, rand.New(rand.NewSource(r.cfg.Seed+int64(m)+13)))
}
