package exp

import (
	"math/rand"

	"repro/internal/query"
	"repro/internal/sample"
	"repro/internal/tpchq"
)

// Fig1Row is one (query, algorithm) series of Figure 1 (and Figures 6/8):
// total time to produce each percentage of distinct answers, split into
// preprocessing and enumeration.
type Fig1Row struct {
	Query      string
	Algorithm  string
	Answers    int64     // |Q(D)|
	Preprocess float64   // seconds
	Percent    []int     // thresholds, e.g. 1,5,...,90
	TotalAtPct []float64 // preprocessing + enumeration seconds per threshold (DNF = -1)
}

// Fig1 reproduces Figure 1: REnum(CQ) vs Sample(EW) on the six TPC-H CQs.
func (r *Runner) Fig1() ([]Fig1Row, error) {
	return r.figTotalTime(tpchq.CQs(), []sample.Method{sample.EW}, "Figure 1")
}

// Fig6 reproduces Appendix Figure 6: adds the Sample(EO) baseline (the paper
// omits Q10, where EO times out; we keep it and let it DNF).
func (r *Runner) Fig6() ([]Fig1Row, error) {
	return r.figTotalTime(tpchq.CQs(), []sample.Method{sample.EW, sample.EO}, "Figure 6")
}

// Fig8 reproduces Appendix Figure 8: Q3 with the Sample(OE) baseline.
func (r *Runner) Fig8() ([]Fig1Row, error) {
	return r.figTotalTime([]*query.CQ{tpchq.Q3()}, []sample.Method{sample.EW, sample.OE}, "Figure 8")
}

func (r *Runner) figTotalTime(queries []*query.CQ, baselines []sample.Method, title string) ([]Fig1Row, error) {
	var rows []Fig1Row
	r.printf("== %s: total enumeration time (sf=%v) ==\n", title, r.cfg.ScaleFactor)
	for _, q := range queries {
		c, prep, err := r.prepareCQ(q)
		if err != nil {
			return nil, err
		}
		n := c.Count()
		ks := r.thresholds(n)

		// REnum(CQ): one random permutation pass, recording thresholds.
		perm := c.Permute(rand.New(rand.NewSource(r.cfg.Seed + 7)))
		renum := r.runThresholds(ks, func() bool {
			_, ok := perm.Next()
			return ok
		})
		rows = append(rows, r.emitFig1Row(q.Name, "REnum(CQ)", n, prep, renum))

		// Baselines: fresh preprocessing timing is identical (same index);
		// the enumeration differs.
		for _, m := range baselines {
			s := r.newSampler(c, m)
			res := r.runThresholds(ks, func() bool {
				_, ok := s.Next()
				return ok
			})
			rows = append(rows, r.emitFig1Row(q.Name, "Sample("+m.String()+")", n, prep, res))
		}
	}
	return rows, nil
}

func (r *Runner) emitFig1Row(qname, algo string, n int64, prep float64, enum []float64) Fig1Row {
	row := Fig1Row{
		Query:      qname,
		Algorithm:  algo,
		Answers:    n,
		Preprocess: prep,
		Percent:    append([]int(nil), r.cfg.Percentages...),
	}
	row.TotalAtPct = make([]float64, len(enum))
	for i, e := range enum {
		if e == DNF {
			row.TotalAtPct[i] = DNF
		} else {
			row.TotalAtPct[i] = prep + e
		}
	}
	r.printf("%-4s %-12s n=%-9d prep=%-9s", qname, algo, n, fmtSec(prep))
	for i, tt := range row.TotalAtPct {
		r.printf(" %d%%:%s", row.Percent[i], fmtSec(tt))
	}
	r.printf("\n")
	return row
}
