package exp

import (
	"math/rand"
	"time"

	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/tpchq"
)

// DelayRow is one box plot of Figures 2/3 and one table line of Figure 7:
// the distribution of per-answer delays for a (query, algorithm) pair.
type DelayRow struct {
	Query     string
	Algorithm string
	Fraction  float64 // fraction of answers enumerated (1.0 or 0.5)
	Complete  bool    // false when the timeout cut the run short
	Summary   stats.Summary
}

// Fig2 reproduces Figure 2: per-answer delay distributions over a full
// enumeration, REnum(CQ) vs Sample(EW), on the six CQs.
func (r *Runner) Fig2() ([]DelayRow, error) { return r.delays(1.0, "Figure 2") }

// Fig3 reproduces Figure 3: the same at 50% of the answers.
func (r *Runner) Fig3() ([]DelayRow, error) { return r.delays(0.5, "Figure 3") }

func (r *Runner) delays(fraction float64, title string) ([]DelayRow, error) {
	var rows []DelayRow
	r.printf("== %s: delay distributions at %.0f%% (sf=%v) ==\n", title, fraction*100, r.cfg.ScaleFactor)
	for _, q := range tpchq.CQs() {
		c, _, err := r.prepareCQ(q)
		if err != nil {
			return nil, err
		}
		k := int64(float64(c.Count()) * fraction)
		if k < 1 {
			k = 1
		}

		perm := c.Permute(rand.New(rand.NewSource(r.cfg.Seed + 3)))
		renumDelays, renumDone := r.collectDelays(k, func() bool {
			_, ok := perm.Next()
			return ok
		})
		rows = append(rows, r.emitDelayRow(q.Name, "REnum(CQ)", fraction, renumDelays, renumDone))

		s := r.newSampler(c, sample.EW)
		ewDelays, ewDone := r.collectDelays(k, func() bool {
			_, ok := s.Next()
			return ok
		})
		rows = append(rows, r.emitDelayRow(q.Name, "Sample(EW)", fraction, ewDelays, ewDone))
	}
	return rows, nil
}

// collectDelays runs next() k times (or until timeout / exhaustion),
// recording the wall time between consecutive answers in seconds.
func (r *Runner) collectDelays(k int64, next func() bool) ([]float64, bool) {
	delays := make([]float64, 0, k)
	start := time.Now()
	last := start
	for int64(len(delays)) < k {
		if r.cfg.Timeout > 0 && time.Since(start) > r.cfg.Timeout {
			return delays, false
		}
		if !next() {
			return delays, false
		}
		now := time.Now()
		delays = append(delays, now.Sub(last).Seconds())
		last = now
	}
	return delays, true
}

func (r *Runner) emitDelayRow(qname, algo string, fraction float64, delays []float64, done bool) DelayRow {
	row := DelayRow{
		Query: qname, Algorithm: algo, Fraction: fraction,
		Complete: done, Summary: stats.Summarize(delays),
	}
	suffix := ""
	if !done {
		suffix = " (timeout)"
	}
	r.printf("%-4s %-12s %s%s\n", qname, algo, row.Summary.String(), suffix)
	return row
}

// Fig7 reproduces the two tables of Figure 7: mean, standard deviation and
// outlier percentage of the delay, at 50% and at full enumeration.
func (r *Runner) Fig7() (half, full []DelayRow, err error) {
	half, err = r.Fig3()
	if err != nil {
		return nil, nil, err
	}
	full, err = r.Fig2()
	if err != nil {
		return nil, nil, err
	}
	r.printf("== Figure 7: delay mean / SD / outliers ==\n")
	r.printf("%-6s %-12s | %-28s | %-28s\n", "query", "algorithm", "50% enumeration", "full enumeration")
	for i := range half {
		h, f := half[i], full[i]
		r.printf("%-6s %-12s | mean=%-9s sd=%-9s out=%4.2f%% | mean=%-9s sd=%-9s out=%4.2f%%\n",
			h.Query, h.Algorithm,
			fmtSec(h.Summary.Mean), fmtSec(h.Summary.StdDev), h.Summary.OutlierPercent,
			fmtSec(f.Summary.Mean), fmtSec(f.Summary.StdDev), f.Summary.OutlierPercent)
	}
	return half, full, nil
}
