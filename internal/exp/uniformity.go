package exp

import (
	"math"
	"math/rand"

	"repro/internal/cqenum"
	"repro/internal/mcucq"
	"repro/internal/stats"
	"repro/internal/tpchq"
	"repro/internal/unionenum"
)

// UniformityRow reports an empirical check of the statistical guarantee that
// distinguishes this paper's algorithms from heuristic shufflers: the first
// emitted answer of every random-permutation algorithm must be uniform over
// the answer set. The chi-square statistic is compared against a ~6σ bound
// (df + 6·sqrt(2·df)).
type UniformityRow struct {
	Workload  string
	Algorithm string
	Answers   int64
	Trials    int
	ChiSquare float64
	DF        int
	Limit     float64
	Pass      bool
}

// Uniformity runs first-answer uniformity checks for REnum(CQ) on Q0,
// REnum(UCQ) and REnum(mcUCQ) on QS7∪QC7, restricted to modest answer
// spaces so the chi-square test has power.
func (r *Runner) Uniformity() ([]UniformityRow, error) {
	r.printf("== Uniformity: first-answer chi-square checks ==\n")
	var rows []UniformityRow

	// REnum(CQ) on Q0.
	{
		c, _, err := r.prepareCQ(tpchq.Q0())
		if err != nil {
			return nil, err
		}
		n := c.Count()
		trials := trialBudget(n)
		counts := make(map[string]int, n)
		rng := rand.New(rand.NewSource(r.cfg.Seed + 41))
		for i := 0; i < trials; i++ {
			p := c.Permute(rng)
			t, ok := p.Next()
			if !ok {
				break
			}
			counts[t.Key()]++
		}
		rows = append(rows, r.emitUniformity("Q0", "REnum(CQ)", n, trials, counts))
	}

	// REnum(UCQ) on QS7∪QC7. The disjuncts are prepared once; each trial
	// only rebuilds the O(1) deletable-set wrappers, so trials are cheap.
	{
		u := tpchq.UnionQ7()
		var prepared []*cqenum.CQ
		for _, q := range u.Disjuncts {
			c, _, err := r.prepareCQ(q)
			if err != nil {
				return nil, err
			}
			prepared = append(prepared, c)
		}
		m, err := mcucq.New(r.db, u, mcucq.Options{Reduce: r.reduceOptions(), Workers: r.cfg.Workers})
		if err != nil {
			return nil, err
		}
		n := m.Count()
		trials := trialBudget(n)
		rng := rand.New(rand.NewSource(r.cfg.Seed + 43))
		counts := make(map[string]int, n)
		for i := 0; i < trials; i++ {
			sets := make([]unionenum.Set, len(prepared))
			for si, c := range prepared {
				sets[si] = c.NewDeletableSet()
			}
			e := unionenum.New(sets, rng)
			t, ok := e.Next()
			if !ok {
				break
			}
			counts[t.Key()]++
		}
		rows = append(rows, r.emitUniformity(u.Name, "REnum(UCQ)", n, trials, counts))

		// REnum(mcUCQ) on the same union (fresh permutation per trial over
		// the one prepared structure — preprocessing is deterministic).
		counts = make(map[string]int, n)
		for i := 0; i < trials; i++ {
			p := m.Permute(rng)
			t, ok := p.Next()
			if !ok {
				break
			}
			counts[t.Key()]++
		}
		rows = append(rows, r.emitUniformity(u.Name, "REnum(mcUCQ)", n, trials, counts))
	}
	return rows, nil
}

// trialBudget picks a trial count that gives the chi-square test power
// without making the experiment quadratic in the answer count.
func trialBudget(n int64) int {
	t := int(20 * n)
	if t < 2000 {
		t = 2000
	}
	if t > 400000 {
		t = 400000
	}
	return t
}

func (r *Runner) emitUniformity(workload, algo string, n int64, trials int, counts map[string]int) UniformityRow {
	// Build the dense count vector: unseen answers count as zero cells.
	vec := make([]int, 0, n)
	for _, c := range counts {
		vec = append(vec, c)
	}
	for int64(len(vec)) < n {
		vec = append(vec, 0)
	}
	stat, df := stats.ChiSquareUniform(vec)
	limit := float64(df) + 6*math.Sqrt(2*float64(df))
	row := UniformityRow{
		Workload: workload, Algorithm: algo, Answers: n, Trials: trials,
		ChiSquare: stat, DF: df, Limit: limit, Pass: stat <= limit,
	}
	verdict := "PASS"
	if !row.Pass {
		verdict = "FAIL"
	}
	r.printf("%-10s %-14s answers=%-8d trials=%-8d chi2=%-10.1f limit=%-10.1f %s\n",
		workload, algo, n, trials, stat, limit, verdict)
	return row
}
