package exp

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/sample"
	"repro/internal/tpchq"
)

// RSRow reports the appendix B.2.3 measurement: how fast Sample(RS) produces
// distinct answers of Q3 compared to Sample(EW).
type RSRow struct {
	Algorithm string
	Budget    time.Duration
	Distinct  int64
	Trials    int64
	Rejects   int64
}

// RS reproduces appendix B.2.3: the naive rejection sampler on Q3 within a
// fixed wall-clock budget, against Sample(EW) under the same budget. In the
// paper RS could not produce 1% of Q3's answers within an hour; here the
// shape to observe is a distinct-answer rate that is orders of magnitude
// lower than EW's.
func (r *Runner) RS() ([]RSRow, error) {
	q := tpchq.Q3()
	c, _, err := r.prepareCQ(q)
	if err != nil {
		return nil, err
	}
	budget := r.cfg.Timeout
	if budget <= 0 {
		budget = 2 * time.Second
	}
	r.printf("== Appendix B.2.3: Sample(RS) vs Sample(EW) on Q3 (budget %v) ==\n", budget)

	var rows []RSRow
	for _, m := range []sample.Method{sample.RS, sample.EW} {
		s := r.newSampler(c, m)
		start := time.Now()
		for time.Since(start) < budget {
			if _, ok := s.Next(); !ok {
				break
			}
		}
		row := RSRow{
			Algorithm: "Sample(" + m.String() + ")",
			Budget:    budget,
			Distinct:  s.Emitted(),
			Trials:    s.Trials,
			Rejects:   s.TrialRejections,
		}
		r.printf("%-12s distinct=%-9d trials=%-10d trial-rejections=%d\n",
			row.Algorithm, row.Distinct, row.Trials, row.Rejects)
		rows = append(rows, row)
	}
	return rows, nil
}

// Names lists the experiment identifiers accepted by Run.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fig7Tables bundles the two tables of Figure 7 for structured export.
type Fig7Tables struct {
	Half []DelayRow `json:"half"`
	Full []DelayRow `json:"full"`
}

// registry maps experiment names to data-returning drivers; the returned
// value is JSON-marshalable for RunData.
var registry = map[string]func(*Runner) (interface{}, error){
	"fig1":  func(r *Runner) (interface{}, error) { return r.Fig1() },
	"fig2":  func(r *Runner) (interface{}, error) { return r.Fig2() },
	"fig3":  func(r *Runner) (interface{}, error) { return r.Fig3() },
	"fig4a": func(r *Runner) (interface{}, error) { return r.Fig4a() },
	"fig4b": func(r *Runner) (interface{}, error) { return r.Fig4b() },
	"fig5":  func(r *Runner) (interface{}, error) { return r.Fig5() },
	"fig6":  func(r *Runner) (interface{}, error) { return r.Fig6() },
	"fig7": func(r *Runner) (interface{}, error) {
		half, full, err := r.Fig7()
		return Fig7Tables{Half: half, Full: full}, err
	},
	"fig8": func(r *Runner) (interface{}, error) { return r.Fig8() },
	"rs":   func(r *Runner) (interface{}, error) { return r.RS() },
	"uniformity": func(r *Runner) (interface{}, error) {
		rows, err := r.Uniformity()
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			if !row.Pass {
				return rows, fmt.Errorf("uniformity check failed: %s/%s chi2=%.1f > %.1f",
					row.Workload, row.Algorithm, row.ChiSquare, row.Limit)
			}
		}
		return rows, nil
	},
}

// Run executes one experiment by name ("all" runs every one in sorted order).
func (r *Runner) Run(name string) error {
	_, err := r.RunData(name)
	return err
}

// RunData executes an experiment and returns its structured rows (a map of
// experiment name → rows when name is "all").
func (r *Runner) RunData(name string) (interface{}, error) {
	if name == "all" {
		out := make(map[string]interface{}, len(registry))
		for _, n := range Names() {
			data, err := registry[n](r)
			if err != nil {
				return nil, fmt.Errorf("exp %s: %w", n, err)
			}
			out[n] = data
		}
		return out, nil
	}
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", name, Names())
	}
	data, err := f(r)
	if err != nil {
		return nil, err
	}
	return data, nil
}
