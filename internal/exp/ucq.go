package exp

import (
	"math/rand"
	"time"

	"repro/internal/cqenum"
	"repro/internal/mcucq"
	"repro/internal/query"
	"repro/internal/tpchq"
	"repro/internal/unionenum"
)

// UCQRow is one bar group of Figure 4a: total preprocessing and enumeration
// time of one algorithm on one union.
type UCQRow struct {
	Union      string
	Algorithm  string
	Answers    int64 // distinct answers produced
	Preprocess float64
	Enumerate  float64
	Rejections int64 // REnum(UCQ) only
}

// Fig4a reproduces Figure 4a: full-enumeration cost of the three unions under
// cumulative REnum(CQ), REnum(UCQ) and REnum(mcUCQ).
func (r *Runner) Fig4a() ([]UCQRow, error) {
	var rows []UCQRow
	r.printf("== Figure 4a: UCQ total time (sf=%v) ==\n", r.cfg.ScaleFactor)
	for _, u := range tpchq.UCQs() {
		cum, err := r.cumulativeCQRow(u)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r.emitUCQRow(cum))

		ucq, err := r.renumUCQRow(u, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r.emitUCQRow(ucq))

		mc, err := r.mcucqRow(u)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r.emitUCQRow(mc))
	}
	return rows, nil
}

// cumulativeCQRow runs REnum(CQ) to completion on every disjunct separately
// (the paper's baseline: not a real UCQ enumeration — duplicates across
// disjuncts and no global order — but the natural cost floor).
func (r *Runner) cumulativeCQRow(u *query.UCQ) (UCQRow, error) {
	row := UCQRow{Union: u.Name, Algorithm: "REnum(CQ) cumulative"}
	for _, q := range u.Disjuncts {
		c, prep, err := r.prepareCQ(q)
		if err != nil {
			return row, err
		}
		row.Preprocess += prep
		perm := c.Permute(rand.New(rand.NewSource(r.cfg.Seed + 17)))
		start := time.Now()
		for {
			if _, ok := perm.Next(); !ok {
				break
			}
			row.Answers++
		}
		row.Enumerate += time.Since(start).Seconds()
	}
	return row, nil
}

// renumUCQRow runs REnum(UCQ) (Algorithm 5) to completion. If deciles is
// non-nil, it receives per-decile rejection/answer time splits (Figure 5).
func (r *Runner) renumUCQRow(u *query.UCQ, deciles *[]Fig5Row) (UCQRow, error) {
	row := UCQRow{Union: u.Name, Algorithm: "REnum(UCQ)"}
	start := time.Now()
	e, err := unionenum.NewFromUCQWorkers(r.db, u, rand.New(rand.NewSource(r.cfg.Seed+19)), r.reduceOptions(), r.cfg.Workers)
	if err != nil {
		return row, err
	}
	row.Preprocess = time.Since(start).Seconds()

	e.Instrument = deciles != nil
	// Total distinct answers: drain fully. For decile accounting we need the
	// final count first; Remaining() is an upper bound, so collect and split
	// afterwards using the recorded per-decile snapshots.
	type snapshot struct {
		answers                int64
		rejectTime, answerTime time.Duration
	}
	var snaps []snapshot
	enumStart := time.Now()
	for {
		_, ok := e.Next()
		if !ok {
			break
		}
		row.Answers++
		if deciles != nil {
			snaps = append(snaps, snapshot{row.Answers, e.RejectTime, e.AnswerTime})
		}
	}
	row.Enumerate = time.Since(enumStart).Seconds()
	row.Rejections = e.Rejections

	if deciles != nil && row.Answers > 0 {
		prevReject, prevAnswer := time.Duration(0), time.Duration(0)
		for d := 1; d <= 10; d++ {
			i := row.Answers*int64(d)/10 - 1
			if i < 0 {
				i = 0
			}
			s := snaps[i]
			*deciles = append(*deciles, Fig5Row{
				Union:     u.Name,
				Decile:    d * 10,
				AnswerSec: (s.answerTime - prevAnswer).Seconds(),
				RejectSec: (s.rejectTime - prevReject).Seconds(),
			})
			prevReject, prevAnswer = s.rejectTime, s.answerTime
		}
	}
	return row, nil
}

// mcucqRow runs REnum(mcUCQ) (Theorem 5.5 + Fisher–Yates) to completion.
func (r *Runner) mcucqRow(u *query.UCQ) (UCQRow, error) {
	row := UCQRow{Union: u.Name, Algorithm: "REnum(mcUCQ)"}
	start := time.Now()
	m, err := mcucq.New(r.db, u, mcucq.Options{Reduce: r.reduceOptions(), Workers: r.cfg.Workers})
	if err != nil {
		return row, err
	}
	row.Preprocess = time.Since(start).Seconds()
	perm := m.Permute(rand.New(rand.NewSource(r.cfg.Seed + 23)))
	enumStart := time.Now()
	for {
		if _, ok := perm.Next(); !ok {
			break
		}
		row.Answers++
	}
	row.Enumerate = time.Since(enumStart).Seconds()
	return row, nil
}

func (r *Runner) emitUCQRow(row UCQRow) UCQRow {
	r.printf("%-14s %-22s answers=%-9d prep=%-9s enum=%-9s",
		row.Union, row.Algorithm, row.Answers, fmtSec(row.Preprocess), fmtSec(row.Enumerate))
	if row.Rejections > 0 {
		r.printf(" rejections=%d", row.Rejections)
	}
	r.printf("\n")
	return row
}

// Fig4bRow is one series point of Figure 4b.
type Fig4bRow struct {
	Algorithm  string
	Percent    []int
	TotalAtPct []float64 // preprocessing + enumeration
}

// Fig4b reproduces Figure 4b: total time of the three algorithms on QS7∪QC7
// when producing increasing fractions of the answers (the paper adds 100%).
func (r *Runner) Fig4b() ([]Fig4bRow, error) {
	u := tpchq.UnionQ7()
	pcts := append(append([]int(nil), r.cfg.Percentages...), 100)
	r.printf("== Figure 4b: %s total time by percentage ==\n", u.Name)
	var rows []Fig4bRow

	// Determine the union cardinality once (for thresholds) via mc-UCQ count.
	mPre, err := mcucq.New(r.db, u, mcucq.Options{Reduce: r.reduceOptions(), Workers: r.cfg.Workers})
	if err != nil {
		return nil, err
	}
	n := mPre.Count()
	ks := make([]int64, len(pcts))
	for i, p := range pcts {
		k := n * int64(p) / 100
		if k < 1 {
			k = 1
		}
		if k > n {
			k = n
		}
		ks[i] = k
	}

	// Cumulative REnum(CQ): enumerate p% of each disjunct, interleaved
	// round-robin so "k answers" is spread across the union's CQs.
	{
		var prep float64
		var perms []*cqenum.RandomPermutation
		for _, q := range u.Disjuncts {
			c, p, err := r.prepareCQ(q)
			if err != nil {
				return nil, err
			}
			prep += p
			perms = append(perms, c.Permute(rand.New(rand.NewSource(r.cfg.Seed+29))))
		}
		i := 0
		res := r.runThresholds(ks, func() bool {
			for tries := 0; tries < len(perms); tries++ {
				pw := perms[i%len(perms)]
				i++
				if _, ok := pw.Next(); ok {
					return true
				}
			}
			return false
		})
		rows = append(rows, r.emitFig4bRow("REnum(CQ) cumulative", pcts, prep, res))
	}

	// REnum(UCQ).
	{
		start := time.Now()
		e, err := unionenum.NewFromUCQWorkers(r.db, u, rand.New(rand.NewSource(r.cfg.Seed+31)), r.reduceOptions(), r.cfg.Workers)
		if err != nil {
			return nil, err
		}
		prep := time.Since(start).Seconds()
		res := r.runThresholds(ks, func() bool {
			_, ok := e.Next()
			return ok
		})
		rows = append(rows, r.emitFig4bRow("REnum(UCQ)", pcts, prep, res))
	}

	// REnum(mcUCQ).
	{
		start := time.Now()
		m, err := mcucq.New(r.db, u, mcucq.Options{Reduce: r.reduceOptions(), Workers: r.cfg.Workers})
		if err != nil {
			return nil, err
		}
		prep := time.Since(start).Seconds()
		perm := m.Permute(rand.New(rand.NewSource(r.cfg.Seed + 37)))
		res := r.runThresholds(ks, func() bool {
			_, ok := perm.Next()
			return ok
		})
		rows = append(rows, r.emitFig4bRow("REnum(mcUCQ)", pcts, prep, res))
	}
	return rows, nil
}

func (r *Runner) emitFig4bRow(algo string, pcts []int, prep float64, enum []float64) Fig4bRow {
	row := Fig4bRow{Algorithm: algo, Percent: pcts, TotalAtPct: make([]float64, len(enum))}
	for i, e := range enum {
		if e == DNF {
			row.TotalAtPct[i] = DNF
		} else {
			row.TotalAtPct[i] = prep + e
		}
	}
	r.printf("%-22s", algo)
	for i, tt := range row.TotalAtPct {
		r.printf(" %d%%:%s", pcts[i], fmtSec(tt))
	}
	r.printf("\n")
	return row
}

// Fig5Row is one decile of Figure 5.
type Fig5Row struct {
	Union     string
	Decile    int // 10, 20, ..., 100
	AnswerSec float64
	RejectSec float64
}

// Fig5 reproduces Figure 5: per-decile time REnum(UCQ) spends emitting
// answers versus producing rejections across a full enumeration of QS7∪QC7.
func (r *Runner) Fig5() ([]Fig5Row, error) {
	u := tpchq.UnionQ7()
	r.printf("== Figure 5: %s answer vs rejection time per decile ==\n", u.Name)
	var deciles []Fig5Row
	if _, err := r.renumUCQRow(u, &deciles); err != nil {
		return nil, err
	}
	for _, d := range deciles {
		r.printf("%3d%%: answers=%-10s rejections=%s\n", d.Decile, fmtSec(d.AnswerSec), fmtSec(d.RejectSec))
	}
	return deciles, nil
}
