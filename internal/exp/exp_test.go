package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testRunner(t *testing.T, out *bytes.Buffer) *Runner {
	t.Helper()
	r, err := NewRunner(Config{
		ScaleFactor: 0.005,
		Seed:        42,
		Timeout:     5 * time.Second,
		Out:         out,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFig1ProducesAllSeries(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	rows, err := r.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// 6 queries × 2 algorithms.
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, row := range rows {
		if row.Answers <= 0 {
			t.Fatalf("%s/%s: no answers", row.Query, row.Algorithm)
		}
		if len(row.TotalAtPct) != len(DefaultPercentages) {
			t.Fatalf("%s/%s: %d thresholds", row.Query, row.Algorithm, len(row.TotalAtPct))
		}
		// Totals must be non-decreasing across percentages (ignoring DNF).
		prev := 0.0
		for i, tt := range row.TotalAtPct {
			if tt == DNF {
				continue
			}
			if tt < prev {
				t.Fatalf("%s/%s: time decreased at threshold %d", row.Query, row.Algorithm, i)
			}
			prev = tt
		}
		if row.Preprocess <= 0 {
			t.Fatalf("%s/%s: no preprocessing time", row.Query, row.Algorithm)
		}
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Fatal("no table output")
	}
}

func TestFig2And3(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	rows, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("fig2 rows = %d", len(rows))
	}
	for _, row := range rows {
		if row.Summary.N == 0 {
			t.Fatalf("%s/%s: no delays", row.Query, row.Algorithm)
		}
	}
	rows3, err := r.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows3) != 12 {
		t.Fatalf("fig3 rows = %d", len(rows3))
	}
}

func TestFig4aAllAlgorithmsAgree(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	rows, err := r.Fig4a()
	if err != nil {
		t.Fatal(err)
	}
	// 3 unions × 3 algorithms.
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	// REnum(UCQ) and REnum(mcUCQ) must produce the same number of distinct
	// answers per union (the true |union|).
	byUnion := map[string]map[string]int64{}
	for _, row := range rows {
		if byUnion[row.Union] == nil {
			byUnion[row.Union] = map[string]int64{}
		}
		byUnion[row.Union][row.Algorithm] = row.Answers
	}
	for union, algos := range byUnion {
		if algos["REnum(UCQ)"] != algos["REnum(mcUCQ)"] {
			t.Fatalf("%s: UCQ=%d mcUCQ=%d", union, algos["REnum(UCQ)"], algos["REnum(mcUCQ)"])
		}
		// Cumulative counts duplicates, so it is ≥ the union size.
		if algos["REnum(CQ) cumulative"] < algos["REnum(UCQ)"] {
			t.Fatalf("%s: cumulative %d < union %d", union, algos["REnum(CQ) cumulative"], algos["REnum(UCQ)"])
		}
	}
}

func TestFig4b(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	rows, err := r.Fig4b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if len(row.Percent) != len(DefaultPercentages)+1 {
			t.Fatalf("%s: %d thresholds", row.Algorithm, len(row.Percent))
		}
		if row.Percent[len(row.Percent)-1] != 100 {
			t.Fatal("last threshold must be 100%")
		}
	}
}

func TestFig5DecilesSumToFullRun(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	rows, err := r.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("deciles = %d, want 10", len(rows))
	}
	for _, d := range rows {
		if d.AnswerSec < 0 || d.RejectSec < 0 {
			t.Fatalf("negative decile time: %+v", d)
		}
	}
}

func TestFig6IncludesEO(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	rows, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	hasEO := false
	for _, row := range rows {
		if row.Algorithm == "Sample(EO)" {
			hasEO = true
		}
	}
	if !hasEO {
		t.Fatal("no EO series")
	}
}

func TestFig7Tables(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	half, full, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(half) != len(full) || len(half) != 12 {
		t.Fatalf("rows: %d half, %d full", len(half), len(full))
	}
	if !strings.Contains(out.String(), "Figure 7") {
		t.Fatal("table not rendered")
	}
}

func TestFig8UsesOE(t *testing.T) {
	var out bytes.Buffer
	r := testRunner(t, &out)
	rows, err := r.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // Q3 × {REnum, EW, OE}
		t.Fatalf("rows = %d, want 3", len(rows))
	}
}

func TestRSExperiment(t *testing.T) {
	var out bytes.Buffer
	r, err := NewRunner(Config{ScaleFactor: 0.005, Seed: 1, Timeout: 300 * time.Millisecond, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.RS()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var rs, ew RSRow
	for _, row := range rows {
		switch row.Algorithm {
		case "Sample(RS)":
			rs = row
		case "Sample(EW)":
			ew = row
		}
	}
	// Shape: EW produces (usually vastly) more distinct answers per budget.
	if ew.Distinct < rs.Distinct {
		t.Fatalf("EW (%d) produced fewer distinct answers than RS (%d)", ew.Distinct, rs.Distinct)
	}
}

func TestUniformityExperiment(t *testing.T) {
	var out bytes.Buffer
	r, err := NewRunner(Config{ScaleFactor: 0.002, Seed: 5, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.Uniformity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, row := range rows {
		if !row.Pass {
			t.Fatalf("%s/%s failed uniformity: chi2=%.1f limit=%.1f",
				row.Workload, row.Algorithm, row.ChiSquare, row.Limit)
		}
	}
}

func TestRunRegistry(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("registry has %d experiments", len(names))
	}
	var out bytes.Buffer
	r := testRunner(t, &out)
	if err := r.Run("fig5"); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunDataJSONMarshal(t *testing.T) {
	var out bytes.Buffer
	r, err := NewRunner(Config{ScaleFactor: 0.002, Seed: 2, Timeout: 2 * time.Second, Out: &out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.RunData("fig4a")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), "REnum(mcUCQ)") {
		t.Fatalf("JSON missing expected series: %s", blob[:200])
	}
	if _, err := r.RunData("bogus"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestNewRunnerDefaults(t *testing.T) {
	r, err := NewRunner(Config{Seed: 3, ScaleFactor: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if r.DB() == nil {
		t.Fatal("no database")
	}
	if len(r.cfg.Percentages) == 0 {
		t.Fatal("no default percentages")
	}
}
