package obs

import (
	"strings"
	"testing"
)

func lintStr(s string) []error { return Lint(strings.NewReader(s)) }

func TestLintValid(t *testing.T) {
	doc := `# HELP http_requests_total Requests.
# TYPE http_requests_total counter
http_requests_total{method="get",code="200"} 1027
http_requests_total{method="post",code="200"} 3
# HELP temp_celsius Temperature.
# TYPE temp_celsius gauge
temp_celsius -12.5
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 5
lat_seconds_bucket{le="0.5"} 8
lat_seconds_bucket{le="+Inf"} 10
lat_seconds_sum 4.2
lat_seconds_count 10
`
	if errs := lintStr(doc); len(errs) > 0 {
		t.Fatalf("valid doc rejected: %v", errs)
	}
}

func TestLintCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"bad metric name", "9bad_name 1\n", "invalid metric name"},
		{"bad value", "m abc\n", "unparsable sample"},
		{"duplicate sample", "m 1\nm 2\n", "duplicate sample"},
		{"duplicate type", "# TYPE m counter\n# TYPE m gauge\nm 1\n", "duplicate TYPE"},
		{"unknown type", "# TYPE m widget\nm 1\n", "unknown metric type"},
		{"type after samples", "m_total{a=\"b\"} 1\n# TYPE m_total counter\n", "after its samples"},
		{"bucket missing le", "# TYPE h histogram\nh_bucket 3\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", "missing le"},
		{"non-cumulative", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "cumulative bucket decreased"},
		{"missing inf", "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n", "missing +Inf"},
		{"count mismatch", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n", "_count 6 != +Inf bucket 5"},
		{"buckets out of order", "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n", "out of order"},
		{"invalid label name", "m{9x=\"v\"} 1\n", "invalid label name"},
		{"malformed comment", "#TYPE m counter\nm 1\n", "comment must start"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := lintStr(c.doc)
			if len(errs) == 0 {
				t.Fatalf("expected lint errors for:\n%s", c.doc)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want error containing %q, got %v", c.want, errs)
			}
		})
	}
}

func TestLintTolerates(t *testing.T) {
	// Things promtool accepts and so must we: untyped samples,
	// free-form comments, timestamps, escaped label values, Inf/NaN.
	doc := "# just a comment\nuntyped_thing 1 1700000000000\n" +
		"weird{msg=\"a\\\\b\\\"c\\nd\"} NaN\ninf_val +Inf\n"
	if errs := lintStr(doc); len(errs) > 0 {
		t.Fatalf("tolerated forms rejected: %v", errs)
	}
}
