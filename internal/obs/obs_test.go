package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestBucketLayout(t *testing.T) {
	// Every value must land in a bucket whose [lower, upper) range
	// contains it, and buckets must tile the axis without gaps.
	vals := []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range vals {
		i := bucketIdx(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, i)
		}
		if lo := bucketLower(i); v < lo {
			t.Errorf("value %d below bucket %d lower bound %d", v, i, lo)
		}
		if hi := bucketUpper(i); i != numBuckets-1 && v >= hi {
			t.Errorf("value %d at/above bucket %d upper bound %d", v, i, hi)
		}
	}
	for i := 1; i < numBuckets; i++ {
		if bucketLower(i) != bucketUpper(i-1) {
			t.Fatalf("gap between bucket %d upper %d and bucket %d lower %d",
				i-1, bucketUpper(i-1), i, bucketLower(i))
		}
	}
	// Relative bucket width bounds the quantile error: ≤ 1/16 above
	// the linear range.
	for i := histSub; i < numBuckets-1; i++ {
		lo, hi := bucketLower(i), bucketUpper(i)
		if rel := float64(hi-lo) / float64(lo); rel > 1.0/histSub+1e-9 {
			t.Fatalf("bucket %d relative width %g exceeds 1/%d", i, rel, histSub)
		}
	}
}

func TestHistogramRecordZeroAllocs(t *testing.T) {
	h := new(Histogram)
	d := 173 * time.Microsecond
	if n := testing.AllocsPerRun(1000, func() { h.Record(d) }); n != 0 {
		t.Fatalf("Histogram.Record allocates %v per call, want 0", n)
	}
	c := new(Counter)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per call, want 0", n)
	}
	g := new(Gauge)
	if n := testing.AllocsPerRun(1000, func() { g.Set(42) }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v per call, want 0", n)
	}
}

// recordedWorkload synthesizes a latency trace shaped like the
// serving tier's: a tight fast-path mode, a slower coalesced mode,
// and a heavy tail — then shifts regime midway, which is exactly
// where a sampling ring loses the early distribution.
func recordedWorkload(n int) []time.Duration {
	rng := rand.New(rand.NewSource(42))
	out := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		var d time.Duration
		switch {
		case i >= (n*3)/5: // late regime: ~50x slower (e.g. cold cache)
			d = time.Duration(200_000 + rng.Intn(400_000))
		case rng.Float64() < 0.02: // tail
			d = time.Duration(1_000_000 + rng.Intn(9_000_000))
		case rng.Float64() < 0.3: // coalesced mode
			d = time.Duration(30_000 + rng.Intn(50_000))
		default: // fast path
			d = time.Duration(2_000 + rng.Intn(6_000))
		}
		out = append(out, d)
	}
	return out
}

func TestHistogramQuantileVsExact(t *testing.T) {
	// The satellite fix: histogram-derived quantiles must track exact
	// quantiles over a full recorded workload within the log-linear
	// bucket error bound, where the old 2048-sample ring only ever
	// saw the most recent window.
	work := recordedWorkload(50_000)
	h := new(Histogram)
	exact := make([]float64, len(work))
	for i, d := range work {
		h.Record(d)
		exact[i] = float64(d)
	}
	sort.Float64s(exact)

	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		got := float64(s.Quantile(q))
		want := stats.Quantile(exact, q)
		relErr := math.Abs(got-want) / want
		// 1/16 bucket width + interpolation slack + exact-vs-nearest
		// rank convention differences.
		if relErr > 0.10 {
			t.Errorf("q=%v: histogram %v exact %v (rel err %.3f)", q, time.Duration(got), time.Duration(want), relErr)
		}
	}
	if got, want := s.Count, uint64(len(work)); got != want {
		t.Fatalf("count %d want %d", got, want)
	}
	if got := time.Duration(s.MaxNs); got != work[maxIdx(work)] {
		t.Fatalf("max %v want %v", got, work[maxIdx(work)])
	}

	// Demonstrate the failure mode being fixed: a 2048-sample ring
	// over the same stream forgets the first regime entirely, so its
	// p50 lands in the late mode — off by an order of magnitude.
	ring := make([]float64, 0, 2048)
	next := 0
	for _, d := range work {
		if len(ring) < cap(ring) {
			ring = append(ring, float64(d))
		} else {
			ring[next] = float64(d)
			next = (next + 1) % cap(ring)
		}
	}
	sort.Float64s(ring)
	ringP50 := stats.Quantile(ring, 0.5)
	exactP50 := stats.Quantile(exact, 0.5)
	if math.Abs(ringP50-exactP50)/exactP50 < 1.0 {
		t.Fatalf("expected the sampling ring to be badly wrong on this workload (ring p50 %v, exact %v) — workload no longer exercises the regression",
			time.Duration(ringP50), time.Duration(exactP50))
	}
}

func maxIdx(ds []time.Duration) int {
	best := 0
	for i, d := range ds {
		if d > ds[best] {
			best = i
		}
	}
	return best
}

func TestHistogramMerge(t *testing.T) {
	a, b, all := new(Histogram), new(Histogram), new(Histogram)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		d := time.Duration(rng.Intn(1_000_000))
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
		all.Record(d)
	}
	a.Merge(b)
	sa, sall := a.Snapshot(), all.Snapshot()
	if sa.Count != sall.Count || sa.SumNs != sall.SumNs || sa.MaxNs != sall.MaxNs {
		t.Fatalf("merge mismatch: %+v vs %+v", sa.Count, sall.Count)
	}
	if sa.Buckets != sall.Buckets {
		t.Fatal("merged buckets differ from direct recording")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := new(Histogram)
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(time.Duration(rng.Intn(1 << 22)))
			}
		}(int64(g))
	}
	// Concurrent readers while recording: must be race-free and
	// never observe impossible states.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			s := h.Snapshot()
			if s.Quantile(0.99) < 0 {
				t.Error("negative quantile")
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got, want := h.Count(), uint64(goroutines*per); got != want {
		t.Fatalf("count %d want %d", got, want)
	}
	var bucketTotal uint64
	s := h.Snapshot()
	for _, n := range s.Buckets {
		bucketTotal += n
	}
	if bucketTotal != uint64(goroutines*per) {
		t.Fatalf("bucket total %d want %d", bucketTotal, goroutines*per)
	}
}

func TestHistogramEmptyAndEdge(t *testing.T) {
	h := new(Histogram)
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Record(-5) // clamps to 0
	h.Record(0)
	h.Record(time.Duration(math.MaxInt64))
	s = h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count %d", s.Count)
	}
	if q := s.Quantile(1.0); q != time.Duration(math.MaxInt64) {
		t.Fatalf("p100 %v want max int64", q)
	}
}

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	o.ObserveBuild("q", "total", time.Second)
	o.ObserveWALAppend(10, time.Millisecond)
	o.ObserveWALFsync(time.Millisecond)
	o.ObserveSnapshotSave(1, time.Millisecond)
	o.ObserveCompaction(time.Millisecond, 3)
	o.ObservePublish(2)
	if o.Ops("q") != nil {
		t.Fatal("nil observer must resolve nil ops")
	}
	// Zero-valued observer too.
	o = &Observer{}
	o.ObserveBuild("q", "total", time.Second)
	if o.Ops("q") != nil {
		t.Fatal("zero observer must resolve nil ops")
	}
}
