package obs

import "time"

// ProbeOps holds one query's per-operation latency histograms. The
// serving tier resolves this once per registry entry and records
// straight into the pointers — no lookup on the request path.
type ProbeOps struct {
	Access *Histogram
	Count  *Histogram
	Batch  *Histogram
	Page   *Histogram
	Sample *Histogram
	Cursor *Histogram
}

// Observer is the hook surface the core paths emit into. Every field
// is optional and every method is safe on a nil receiver, so
// instrumented code calls unconditionally:
//
//	obs.ObserveBuild("Q", "total", time.Since(t0))
//
// The server tier supplies an Observer backed by a Registry; library
// users and tests can leave it nil for zero overhead.
type Observer struct {
	// Build fires after an index build stage for a query. Stages:
	// "total" (the whole renum.Open), "index_build" (the access
	// structure's own wave build), "dynamic_build", "union_build".
	Build func(query, stage string, d time.Duration)
	// WALAppend fires per record appended (encode+write, no fsync).
	WALAppend func(bytes int, d time.Duration)
	// WALFsync fires per fsync of the write-ahead log.
	WALFsync func(d time.Duration)
	// SnapshotSave fires after a snapshot generation is written.
	SnapshotSave func(gen uint64, d time.Duration)
	// Compaction fires after Registry.Compact folds the WAL into a
	// new snapshot generation.
	Compaction func(d time.Duration, folded int64)
	// Publish fires when a new registry generation becomes visible.
	Publish func(gen uint64)
	// Plan fires after the cost-based planner searches a query's join
	// trees at build time: how many candidates were costed, whether the
	// as-parsed tree won (identity), the chosen and as-parsed costs, and
	// the search duration. Build-time only, never on a probe path.
	Plan func(query string, candidates int, identity bool, chosenCost, identityCost float64, d time.Duration)
	// QueryOps resolves the per-operation probe histograms for a
	// query; called at entry build/registration time, never per
	// request.
	QueryOps func(query string) *ProbeOps
}

// ObserveBuild reports a build stage duration.
func (o *Observer) ObserveBuild(query, stage string, d time.Duration) {
	if o == nil || o.Build == nil {
		return
	}
	o.Build(query, stage, d)
}

// ObserveWALAppend reports one WAL record write.
func (o *Observer) ObserveWALAppend(bytes int, d time.Duration) {
	if o == nil || o.WALAppend == nil {
		return
	}
	o.WALAppend(bytes, d)
}

// ObserveWALFsync reports one WAL fsync.
func (o *Observer) ObserveWALFsync(d time.Duration) {
	if o == nil || o.WALFsync == nil {
		return
	}
	o.WALFsync(d)
}

// ObserveSnapshotSave reports one snapshot write.
func (o *Observer) ObserveSnapshotSave(gen uint64, d time.Duration) {
	if o == nil || o.SnapshotSave == nil {
		return
	}
	o.SnapshotSave(gen, d)
}

// ObserveCompaction reports one completed compaction.
func (o *Observer) ObserveCompaction(d time.Duration, folded int64) {
	if o == nil || o.Compaction == nil {
		return
	}
	o.Compaction(d, folded)
}

// ObservePublish reports a newly published generation.
func (o *Observer) ObservePublish(gen uint64) {
	if o == nil || o.Publish == nil {
		return
	}
	o.Publish(gen)
}

// ObservePlan reports one planner search.
func (o *Observer) ObservePlan(query string, candidates int, identity bool, chosenCost, identityCost float64, d time.Duration) {
	if o == nil || o.Plan == nil {
		return
	}
	o.Plan(query, candidates, identity, chosenCost, identityCost, d)
}

// Ops resolves per-query probe histograms, or nil when unobserved.
func (o *Observer) Ops(query string) *ProbeOps {
	if o == nil || o.QueryOps == nil {
		return nil
	}
	return o.QueryOps(query)
}
