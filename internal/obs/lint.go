package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Lint validates a Prometheus text exposition (format version 0.0.4)
// the way promtool's check does, in pure Go: comment structure, name
// and label syntax, sample values, TYPE consistency, duplicate
// series, and histogram invariants (le label present, cumulative
// buckets non-decreasing, +Inf present, _count == +Inf). It returns
// one error per problem found; an empty slice means the exposition
// is valid.
func Lint(r io.Reader) []error {
	var errs []error
	addf := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := make(map[string]string) // family -> declared type
	helped := make(map[string]bool)
	seen := make(map[string]bool) // name{labels} dedupe
	// histogram bookkeeping, keyed by family + non-le labels
	type histState struct {
		lastCum  float64
		lastLe   float64
		infSeen  bool
		infValue float64
		line     int
	}
	hists := make(map[string]*histState)
	counts := make(map[string]float64) // histogram family+labels -> _count value

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	sawFinalNewline := false
	var lastFamily string
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		sawFinalNewline = true // bufio strips \n; emptiness checked below
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			if !strings.HasPrefix(rest, " ") {
				addf(lineNo, "comment must start with '# '")
				continue
			}
			fields := strings.SplitN(strings.TrimPrefix(rest, " "), " ", 3)
			switch fields[0] {
			case "HELP":
				if len(fields) < 2 || !validMetricName(fields[1]) {
					addf(lineNo, "malformed HELP line")
					continue
				}
				if helped[fields[1]] {
					addf(lineNo, "duplicate HELP for %s", fields[1])
				}
				helped[fields[1]] = true
			case "TYPE":
				if len(fields) < 3 || !validMetricName(fields[1]) {
					addf(lineNo, "malformed TYPE line")
					continue
				}
				name, typ := fields[1], strings.TrimSpace(fields[2])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					addf(lineNo, "unknown metric type %q", typ)
					continue
				}
				if _, dup := types[name]; dup {
					addf(lineNo, "duplicate TYPE for %s", name)
					continue
				}
				if familySamplesSeen(seen, name) {
					addf(lineNo, "TYPE for %s after its samples", name)
				}
				types[name] = typ
				lastFamily = name
			default:
				// free-form comment: allowed
			}
			continue
		}

		name, labels, value, ok := parseSample(line)
		if !ok {
			addf(lineNo, "unparsable sample %q", line)
			continue
		}
		if !validMetricName(name) {
			addf(lineNo, "invalid metric name %q", name)
			continue
		}
		for _, ln := range labelNames(labels) {
			if !validLabelName(ln) {
				addf(lineNo, "invalid label name %q", ln)
			}
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			addf(lineNo, "duplicate sample %s", key)
		}
		seen[key] = true

		fam, suffix := familyOf(name, types)
		if typ := types[fam]; typ == "histogram" {
			base := stripLabel(labels, "le")
			hkey := fam + "{" + base + "}"
			switch suffix {
			case "_bucket":
				le, leOK := labelValue(labels, "le")
				if !leOK {
					addf(lineNo, "%s histogram bucket missing le label", name)
					continue
				}
				h := hists[hkey]
				if h == nil {
					h = &histState{lastLe: math.Inf(-1)}
					hists[hkey] = h
				}
				h.line = lineNo
				if le == "+Inf" {
					h.infSeen = true
					h.infValue = value
					if value < h.lastCum {
						addf(lineNo, "%s +Inf bucket %g below prior cumulative %g", hkey, value, h.lastCum)
					}
					continue
				}
				leV, err := strconv.ParseFloat(le, 64)
				if err != nil {
					addf(lineNo, "%s has unparsable le %q", name, le)
					continue
				}
				if leV <= h.lastLe {
					addf(lineNo, "%s buckets out of order (le %g after %g)", hkey, leV, h.lastLe)
				}
				if value < h.lastCum {
					addf(lineNo, "%s cumulative bucket decreased (%g after %g)", hkey, value, h.lastCum)
				}
				h.lastLe, h.lastCum = leV, value
			case "_count":
				counts[hkey] = value
			case "_sum":
				// any float fine
			case "":
				addf(lineNo, "bare sample %s for histogram family %s", name, fam)
			}
			continue
		}
		if fam == "" && lastFamily != "" && strings.HasPrefix(name, lastFamily) {
			// e.g. foo_total after TYPE foo — tolerated as untyped
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, fmt.Errorf("read: %w", err))
	}
	_ = sawFinalNewline

	for hkey, h := range hists {
		if !h.infSeen {
			errs = append(errs, fmt.Errorf("line %d: %s missing +Inf bucket", h.line, hkey))
			continue
		}
		if c, ok := counts[hkey]; ok && c != h.infValue {
			errs = append(errs, fmt.Errorf("line %d: %s _count %g != +Inf bucket %g", h.line, hkey, c, h.infValue))
		}
	}
	return errs
}

// familyOf resolves which declared family a sample belongs to,
// honouring histogram/summary suffixes.
func familyOf(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, s) {
			base := strings.TrimSuffix(name, s)
			if _, ok := types[base]; ok {
				return base, s
			}
		}
	}
	return "", ""
}

func familySamplesSeen(seen map[string]bool, fam string) bool {
	for k := range seen {
		name := k[:strings.IndexByte(k, '{')]
		if name == fam || name == fam+"_bucket" || name == fam+"_sum" || name == fam+"_count" {
			return true
		}
	}
	return false
}

// parseSample splits `name{labels} value [timestamp]`.
func parseSample(line string) (name, labels string, value float64, ok bool) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := findLabelsEnd(rest[i+1:])
		if end < 0 {
			return "", "", 0, false
		}
		labels = rest[i+1 : i+1+end]
		rest = rest[i+1+end+1:]
	} else {
		j := strings.IndexAny(rest, " \t")
		if j < 0 {
			return "", "", 0, false
		}
		name = rest[:j]
		rest = rest[j:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", 0, false
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return "", "", 0, false
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", "", 0, false
		}
	}
	return name, labels, v, true
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// findLabelsEnd returns the index of the closing '}' in s (which
// starts just after '{'), honouring quoted values with escapes.
func findLabelsEnd(s string) int {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

// labelNames extracts label names from a rendered label string.
func labelNames(labels string) []string {
	var out []string
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			break
		}
		out = append(out, strings.TrimSpace(labels[i:i+eq]))
		i += eq + 1
		// skip quoted value
		if i < len(labels) && labels[i] == '"' {
			j := i + 1
			for j < len(labels) {
				if labels[j] == '\\' {
					j += 2
					continue
				}
				if labels[j] == '"' {
					break
				}
				j++
			}
			i = j + 1
		}
		if i < len(labels) && labels[i] == ',' {
			i++
		}
	}
	return out
}

func labelValue(labels, name string) (string, bool) {
	i := 0
	for i < len(labels) {
		eq := strings.IndexByte(labels[i:], '=')
		if eq < 0 {
			return "", false
		}
		ln := strings.TrimSpace(labels[i : i+eq])
		i += eq + 1
		if i >= len(labels) || labels[i] != '"' {
			return "", false
		}
		j := i + 1
		var val strings.Builder
		for j < len(labels) {
			if labels[j] == '\\' && j+1 < len(labels) {
				switch labels[j+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(labels[j+1])
				}
				j += 2
				continue
			}
			if labels[j] == '"' {
				break
			}
			val.WriteByte(labels[j])
			j++
		}
		if ln == name {
			return val.String(), true
		}
		i = j + 1
		if i < len(labels) && labels[i] == ',' {
			i++
		}
	}
	return "", false
}

// stripLabel removes one label (and its value) from a rendered label
// string — used to group histogram buckets by their base series.
func stripLabel(labels, name string) string {
	parts := splitLabels(labels)
	var keep []string
	for _, p := range parts {
		if !strings.HasPrefix(p, name+"=") {
			keep = append(keep, p)
		}
	}
	return strings.Join(keep, ",")
}

// splitLabels splits a rendered label string at top-level commas.
func splitLabels(labels string) []string {
	var out []string
	start := 0
	inQuote := false
	for i := 0; i < len(labels); i++ {
		switch labels[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, labels[start:i])
				start = i + 1
			}
		}
	}
	if start < len(labels) {
		out = append(out, labels[start:])
	}
	return out
}
