package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a Prometheus metric family type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes a lock; recording never
// does — callers hold the instrument pointers they got back.
//
// Registration is get-or-create: asking for the same (name, labels)
// pair twice returns the same instrument, so a rebuilt query keeps
// accumulating into the histograms its previous generation created.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

type family struct {
	name string
	help string
	kind Kind

	mu     sync.Mutex
	order  []string       // label-set insertion order, for stable output
	series map[string]any // labels -> *Counter | *Gauge | *Histogram | func() float64
	// collect, when set, renders this family dynamically at scrape
	// time instead of from registered series (counter/gauge only).
	collect func(emit func(labels string, value float64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Labels renders a label set ("k1", "v1", "k2", "v2", ...) into the
// pre-escaped string form instruments are registered under. Render
// once at registration time; never on the record path.
func Labels(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs.Labels: odd number of arguments")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func (r *Registry) familyFor(name, help string, kind Kind) *family {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic("obs: metric " + name + " re-registered as " + kind.String() + " (was " + f.kind.String() + ")")
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, series: make(map[string]any)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func (f *family) getOrCreate(labels string, make func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if v, ok := f.series[labels]; ok {
		return v
	}
	v := make()
	f.series[labels] = v
	f.order = append(f.order, labels)
	return v
}

// Counter returns the counter for (name, labels), creating the
// family and series as needed. labels comes from Labels() or "".
func (r *Registry) Counter(name, help, labels string) *Counter {
	f := r.familyFor(name, help, KindCounter)
	return f.getOrCreate(labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for (name, labels).
func (r *Registry) Gauge(name, help, labels string) *Gauge {
	f := r.familyFor(name, help, KindGauge)
	return f.getOrCreate(labels, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge series evaluated at scrape time.
func (r *Registry) GaugeFunc(name, help, labels string, fn func() float64) {
	f := r.familyFor(name, help, KindGauge)
	f.getOrCreate(labels, func() any { return fn })
}

// Histogram returns the duration histogram for (name, labels). By
// convention the family name ends in _seconds: observations are
// recorded in nanoseconds and exposed in seconds.
func (r *Registry) Histogram(name, help, labels string) *Histogram {
	f := r.familyFor(name, help, KindHistogram)
	return f.getOrCreate(labels, func() any { return new(Histogram) }).(*Histogram)
}

// CollectorFunc registers a family whose series are produced at
// scrape time by fn — for values owned elsewhere (generation number,
// live cursor count, coalescer stats) that would otherwise need a
// write-through gauge on every change. Counter and gauge kinds only.
func (r *Registry) CollectorFunc(name, help string, kind Kind, fn func(emit func(labels string, value float64))) {
	if kind == KindHistogram {
		panic("obs: CollectorFunc does not support histograms")
	}
	f := r.familyFor(name, help, kind)
	f.mu.Lock()
	f.collect = fn
	f.mu.Unlock()
}

// WritePrometheus renders every family in registration order as
// Prometheus text exposition (version 0.0.4). Histograms are
// rendered from a snapshot so cumulative buckets within one scrape
// are mutually consistent.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) render(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(strings.ReplaceAll(strings.ReplaceAll(f.help, "\\", `\\`), "\n", `\n`))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')

	f.mu.Lock()
	collect := f.collect
	order := make([]string, len(f.order))
	copy(order, f.order)
	series := make(map[string]any, len(f.series))
	for k, v := range f.series {
		series[k] = v
	}
	f.mu.Unlock()

	if collect != nil {
		collect(func(labels string, value float64) {
			writeSample(b, f.name, labels, formatFloat(value))
		})
		return
	}
	for _, labels := range order {
		switch v := series[labels].(type) {
		case *Counter:
			writeSample(b, f.name, labels, strconv.FormatUint(v.Value(), 10))
		case *Gauge:
			writeSample(b, f.name, labels, strconv.FormatInt(v.Value(), 10))
		case func() float64:
			writeSample(b, f.name, labels, formatFloat(v()))
		case *Histogram:
			renderHistogram(b, f.name, labels, v.Snapshot())
		}
	}
}

// renderHistogram emits cumulative le-buckets (only at points where
// the cumulative count changes, plus +Inf), then _sum and _count.
// Bucket bounds and the sum are converted from ns to seconds.
func renderHistogram(b *strings.Builder, name, labels string, s HistSnapshot) {
	var cum uint64
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		le := formatFloat(float64(bucketUpper(i)) / 1e9)
		writeSample(b, name+"_bucket", joinLabels(labels, `le="`+le+`"`), strconv.FormatUint(cum, 10))
	}
	writeSample(b, name+"_bucket", joinLabels(labels, `le="+Inf"`), strconv.FormatUint(cum, 10))
	// _count mirrors the +Inf bucket (not the racy live counter) so a
	// single scrape is internally consistent.
	writeSample(b, name+"_sum", labels, formatFloat(float64(s.SumNs)/1e9))
	writeSample(b, name+"_count", labels, strconv.FormatUint(cum, 10))
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

func writeSample(b *strings.Builder, name, labels, value string) {
	b.WriteString(name)
	if labels != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedFamilies returns family names in sorted order (test helper).
func (r *Registry) SortedFamilies() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f.name)
	}
	sort.Strings(out)
	return out
}
