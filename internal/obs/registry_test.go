package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests served.", Labels("endpoint", "access"))
	c.Add(7)
	r.Counter("test_requests_total", "Requests served.", Labels("endpoint", "count")).Add(2)
	g := r.Gauge("test_cursors", "Open cursors.", "")
	g.Set(3)
	r.GaugeFunc("test_uptime_seconds", "Uptime.", "", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", Labels("query", `Q"1`))
	h.Record(100 * time.Microsecond)
	h.Record(3 * time.Millisecond)
	r.CollectorFunc("test_dynamic", "Scrape-time values.", KindGauge, func(emit func(string, float64)) {
		emit(Labels("k", "v"), 9)
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP test_requests_total Requests served.",
		"# TYPE test_requests_total counter",
		`test_requests_total{endpoint="access"} 7`,
		`test_requests_total{endpoint="count"} 2`,
		"# TYPE test_cursors gauge",
		"test_cursors 3",
		"test_uptime_seconds 1.5",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{query="Q\"1",le="+Inf"} 2`,
		`test_latency_seconds_count{query="Q\"1"} 2`,
		`test_dynamic{k="v"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// The output must pass our own promtool-style lint.
	if errs := Lint(strings.NewReader(out)); len(errs) > 0 {
		t.Fatalf("self-lint failed: %v\n---\n%s", errs, out)
	}

	// Get-or-create: same (name, labels) returns the same instrument.
	if c2 := r.Counter("test_requests_total", "Requests served.", Labels("endpoint", "access")); c2 != c {
		t.Fatal("counter not deduped by (name, labels)")
	}
	if h2 := r.Histogram("test_latency_seconds", "Latency.", Labels("query", `Q"1`)); h2 != h {
		t.Fatal("histogram not deduped by (name, labels)")
	}
}

func TestRegistryPanicsOnMisuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "h", "")
	mustPanic(t, "kind clash", func() { r.Gauge("ok_total", "h", "") })
	mustPanic(t, "bad name", func() { r.Counter("0bad", "h", "") })
	mustPanic(t, "odd labels", func() { Labels("k") })
	mustPanic(t, "histogram collector", func() {
		r.CollectorFunc("h_seconds", "h", KindHistogram, func(func(string, float64)) {})
	})
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestHistogramExpositionCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("cum_seconds", "x", "")
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if errs := Lint(strings.NewReader(b.String())); len(errs) > 0 {
		t.Fatalf("lint: %v\n%s", errs, b.String())
	}
	// Lint already checks monotonicity; double-check +Inf == count.
	if !strings.Contains(b.String(), `cum_seconds_bucket{le="+Inf"} 1000`) {
		t.Fatalf("+Inf bucket wrong:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "cum_seconds_count 1000") {
		t.Fatalf("_count wrong:\n%s", b.String())
	}
}
