// Package obs is the observability core: lock-free, fixed-footprint
// instruments (counters, gauges, log-bucketed latency histograms), a
// small Prometheus-text registry that exposes them, and an Observer
// hook surface that lets the probe/build/compaction paths emit timing
// without importing HTTP.
//
// Design constraints, in order:
//
//   - Recording must be 0 allocs and lock-free. Instruments are plain
//     structs of atomics; histograms have a fixed bucket layout so
//     Record is an index computation plus three atomic adds and a
//     CAS-max. testing.AllocsPerRun pins this in obs_test.go.
//   - Label sets are pre-registered: callers render labels once at
//     registration time and hold the instrument pointer. There is no
//     per-record map lookup, mutex, or label hashing anywhere.
//   - Histograms are exact-count and mergeable. Buckets are
//     log-linear (HDR-style): 16 linear sub-buckets per power-of-two
//     octave, so any quantile is recovered with ≤ 1/16 relative
//     bucket-width error regardless of how long the window has been
//     accumulating. This replaces the old 2048-sample ring, which
//     silently degraded into a sparse sample under sustained load.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Log-linear bucket layout. Values are durations in nanoseconds.
// Buckets 0..15 are exact (1ns wide). Above that, each power-of-two
// octave [2^e, 2^(e+1)) is split into histSub linear sub-buckets, so
// the relative width of any bucket is at most 1/histSub.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits                 // 16 sub-buckets per octave
	numBuckets  = (64 - histSubBits + 1) * histSub // 976; covers all of uint64
)

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := uint(bits.Len64(v) - 1)
	return int(exp-histSubBits+1)<<histSubBits + int((v>>(exp-histSubBits))&(histSub-1))
}

// bucketLower returns the inclusive lower bound of bucket i, in ns.
func bucketLower(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := uint(i>>histSubBits) + histSubBits - 1
	sub := uint64(i & (histSub - 1))
	return 1<<exp + sub<<(exp-histSubBits)
}

// bucketUpper returns the exclusive upper bound of bucket i, in ns.
// The final bucket's bound saturates at MaxUint64.
func bucketUpper(i int) uint64 {
	if i == numBuckets-1 {
		return math.MaxUint64
	}
	if i < histSub {
		return uint64(i) + 1
	}
	exp := uint(i>>histSubBits) + histSubBits - 1
	sub := uint64(i&(histSub-1)) + 1
	return 1<<exp + sub<<(exp-histSubBits)
}

// Histogram is a fixed-footprint latency histogram: ~7.8 KiB of
// atomic bucket counters plus count, sum and max. Record is 0 allocs
// and lock-free; concurrent recorders never block each other.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [numBuckets]atomic.Uint64
}

// Record adds one observation. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	h.buckets[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Merge folds other's observations into h. Bucket counts add
// exactly, so merged quantiles are as accurate as if every
// observation had been recorded into h directly.
func (h *Histogram) Merge(other *Histogram) {
	for i := range other.buckets {
		if n := other.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	om := other.max.Load()
	for {
		old := h.max.Load()
		if om <= old || h.max.CompareAndSwap(old, om) {
			return
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram, safe to walk
// without racing live recorders. Quantile/Mean/StdDev operate on the
// copy so a single /metrics render sees one consistent view.
type HistSnapshot struct {
	Count   uint64
	SumNs   uint64
	MaxNs   uint64
	Buckets [numBuckets]uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	// Count/sum/max loaded after buckets so derived stats never see
	// more observations than buckets do.
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	s.MaxNs = h.max.Load()
	return s
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) with linear
// interpolation inside the containing bucket. The relative error is
// bounded by the bucket width: at most 1/16 of the value.
func (s *HistSnapshot) Quantile(q float64) time.Duration {
	// The snapshot's Count field can lag the bucket copies (recorders
	// bump buckets first); rank against what the buckets actually hold.
	var total uint64
	for i := range s.Buckets {
		total += s.Buckets[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		lo, hi := float64(bucketLower(i)), float64(bucketUpper(i))
		frac := float64(rank-(cum-n)) / float64(n)
		v := lo + frac*(hi-lo)
		// The exact max beats the bucket's upper bound; it also keeps
		// the float64 result inside int64 range for the top octave.
		if s.MaxNs > 0 && v >= float64(s.MaxNs) {
			return time.Duration(s.MaxNs)
		}
		return time.Duration(v)
	}
	return time.Duration(s.MaxNs)
}

// Mean returns the exact mean (true sum over true count).
func (s *HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNs / s.Count)
}

// StdDev estimates the standard deviation from bucket midpoints.
func (s *HistSnapshot) StdDev() time.Duration {
	if s.Count == 0 {
		return 0
	}
	mean := float64(s.SumNs) / float64(s.Count)
	var m2 float64 // E[x^2] accumulator from bucket midpoints
	var total uint64
	for i := range s.Buckets {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		total += n
		mid := (float64(bucketLower(i)) + float64(bucketUpper(i))) / 2
		m2 += float64(n) * mid * mid
	}
	if total == 0 {
		return 0
	}
	v := m2/float64(total) - mean*mean
	if v < 0 {
		v = 0
	}
	return time.Duration(math.Sqrt(v))
}
