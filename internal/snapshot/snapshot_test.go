package snapshot

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// buildSample writes a two-section snapshot exercising every primitive.
func buildSample(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := w.Section(1)
	s.U64(42)
	s.Str("hello")
	s.I64s([]int64{-1, 2, 3})
	s.Close()
	s = w.Section(2)
	s.I32s([]int32{7, -8, 9})
	s.U32s([]uint32{10, 11})
	s.Str("") // empty string round-trips
	s.Close()
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := buildSample(t)
	f, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	secs := f.Sections()
	if len(secs) != 2 || secs[0].Tag != 1 || secs[1].Tag != 2 {
		t.Fatalf("sections = %+v", secs)
	}
	r := secs[0].Reader()
	if v := r.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if v := r.Str(); v != "hello" {
		t.Fatalf("Str = %q", v)
	}
	if got := r.I64s(); len(got) != 3 || got[0] != -1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("I64s = %v", got)
	}
	if !r.AtEnd() {
		t.Fatalf("section 1 not fully consumed: %d left, err %v", r.Remaining(), r.Err())
	}
	r = secs[1].Reader()
	if got := r.I32s(); len(got) != 3 || got[1] != -8 {
		t.Fatalf("I32s = %v", got)
	}
	if got := r.U32s(); len(got) != 2 || got[1] != 11 {
		t.Fatalf("U32s = %v", got)
	}
	if v := r.Str(); v != "" {
		t.Fatalf("Str = %q", v)
	}
	if !r.AtEnd() {
		t.Fatalf("section 2 not fully consumed: %d left, err %v", r.Remaining(), r.Err())
	}
}

func TestOpenFileMmap(t *testing.T) {
	data := buildSample(t)
	path := filepath.Join(t.TempDir(), "s.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Sections()) != 2 {
		t.Fatalf("sections = %d", len(f.Sections()))
	}
	r := f.Sections()[0].Reader()
	if v := r.U64(); v != 42 {
		t.Fatalf("U64 = %d", v)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestTypedErrors(t *testing.T) {
	data := buildSample(t)

	check := func(name string, mutate func([]byte) []byte, want error) {
		t.Run(name, func(t *testing.T) {
			b := mutate(append([]byte(nil), data...))
			_, err := OpenBytes(b)
			if err == nil {
				t.Fatal("open succeeded on corrupt input")
			}
			if !errors.Is(err, want) {
				t.Fatalf("err = %v, want %v", err, want)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Fatalf("err = %v does not wrap ErrInvalid", err)
			}
		})
	}

	check("empty", func(b []byte) []byte { return nil }, ErrTruncated)
	check("bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrBadMagic)
	check("version bump", func(b []byte) []byte { b[8] ^= 0x40; return b }, ErrVersion)
	check("endian flip", func(b []byte) []byte { b[12], b[15] = b[15], b[12]; return b }, ErrEndian)
	check("truncated tail", func(b []byte) []byte { return b[:len(b)-9] }, ErrTruncated)
	check("truncated mid-section", func(b []byte) []byte { return b[:40] }, ErrTruncated)
	check("payload bit flip", func(b []byte) []byte { b[headerLen+sectionHeaderLen] ^= 0x01; return b }, ErrChecksum)
}

func TestReaderOverread(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	s := w.Section(1)
	s.U64(3)
	s.Close()
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	f, err := OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r := f.Sections()[0].Reader()
	r.U64()
	if got := r.I64s(); got != nil {
		t.Fatalf("overread returned %v", got)
	}
	if r.Err() == nil || !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("sticky error = %v, want ErrCorrupt", r.Err())
	}
	// A count that claims more elements than the payload holds must fail,
	// not allocate or slice out of range.
	var buf2 bytes.Buffer
	w2 := NewWriter(&buf2)
	s2 := w2.Section(1)
	s2.U64(1 << 60) // absurd count with no data behind it
	s2.Close()
	if err := w2.Finish(); err != nil {
		t.Fatal(err)
	}
	f2, err := OpenBytes(buf2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	r2 := f2.Sections()[0].Reader()
	if got := r2.I64s(); got != nil || !errors.Is(r2.Err(), ErrCorrupt) {
		t.Fatalf("huge count: got %v err %v", got, r2.Err())
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.snap")
	data := buildSample(t)
	if err := WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch after atomic write")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp file left behind: %v", ents)
	}
}
