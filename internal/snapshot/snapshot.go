// Package snapshot defines the versioned binary container behind the
// library's persistent index snapshots: a flat sequence of checksummed
// sections whose numeric payloads are laid out so that a reader can view
// them in place — []int64 / []int32 / []uint32 slices aliasing the mapped
// file region, no decode copy — while strings are length-validated and
// copied out.
//
// # Layout
//
//	file    = header | section* | trailer
//	header  = magic "RNMSNAP1" (8) | version u32 | endian u32 | reserved u64
//	section = tag u32 | reserved u32 | payloadLen u64 | crc32c(payload) u64
//	          | payload | pad to 8
//	trailer = sectionCount u64 | fileLen u64 | magic "RNMSNAPE" (8)
//
// The header is 24 bytes and every payload is padded to a multiple of 8, so
// each section payload starts 8-aligned within the file; mmap regions are
// page-aligned, which makes every numeric array view correctly aligned.
// Scalars and array elements are written in the host's byte order
// (binary.NativeEndian) — the whole point is casting file bytes to in-memory
// slices — and the endian marker in the header rejects files written on a
// machine of the other sex with a typed error instead of garbage.
//
// # Validation contract
//
// Open (OpenFile/OpenBytes) validates the magic, version, endian marker,
// trailer, section framing and every section's per-section CRC-32C (Castagnoli — hardware-accelerated on amd64/arm64, the ext4/iSCSI polynomial) before returning.
// Reader primitives bounds-check every access and fail sticky with
// ErrCorrupt. All failure modes — truncation, bit flips, version bumps,
// structural nonsense — surface as typed errors wrapping ErrInvalid; the
// decoder never panics and never reads past the buffer (the fuzz target
// FuzzOpenSnapshot at the repository root enforces this).
//
// This package is deliberately schemaless: it knows bytes, sections and
// checksums. Domain layouts (relations, dictionaries, indexes, queries,
// whole catalogs) live with the packages that own those types.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"
)

// Format identity.
const (
	magic        = "RNMSNAP1"
	trailerMagic = "RNMSNAPE"
	// Version is the on-disk format version. Bump it on any layout change;
	// readers reject other versions with ErrVersion (no silent migration).
	Version uint32 = 1
	// endianMark reads back as itself only on a host with the writer's byte
	// order; the mirrored value means "other endianness", a typed error.
	endianMark uint32 = 0x0A0B0C0D

	headerLen        = 24
	sectionHeaderLen = 24
	trailerLen       = 24
)

// Typed errors. Every decode failure wraps ErrInvalid, so callers can test
// the whole family with one errors.Is; the finer sentinels distinguish the
// failure for diagnostics and tests.
var (
	// ErrInvalid is the base error of every snapshot decode failure.
	ErrInvalid = errors.New("snapshot: invalid or corrupt snapshot")
	// ErrBadMagic: the file does not start with the snapshot magic.
	ErrBadMagic = fmt.Errorf("%w: bad magic", ErrInvalid)
	// ErrVersion: the format version is not the one this build reads.
	ErrVersion = fmt.Errorf("%w: unsupported format version", ErrInvalid)
	// ErrEndian: the file was written on a host of the other byte order.
	ErrEndian = fmt.Errorf("%w: foreign byte order", ErrInvalid)
	// ErrTruncated: the file ends before its framing says it should.
	ErrTruncated = fmt.Errorf("%w: truncated", ErrInvalid)
	// ErrChecksum: a section's payload does not match its CRC-32C.
	ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	// ErrCorrupt: structurally invalid content (bad lengths, bad counts,
	// out-of-range references) inside an otherwise well-framed file.
	ErrCorrupt = fmt.Errorf("%w: corrupt content", ErrInvalid)
)

// Corruptf returns an ErrCorrupt-wrapping error with detail. Domain decoders
// (relation, access, the catalog layer) use it so that every structural
// complaint stays inside the typed-error family.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ---------------------------------------------------------------- writing

// Writer assembles a snapshot file section by section. Each section is
// buffered in memory until Close so its length and checksum can prefix the
// payload; Finish writes the trailer. Writers are single-goroutine.
type Writer struct {
	w        io.Writer
	off      uint64
	sections uint64
	err      error
	started  bool
}

// NewWriter starts a snapshot stream on w (the header is written lazily on
// the first section so that a constructor cannot fail).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(b)
	w.off += uint64(n)
	if err != nil {
		w.err = err
	}
}

func (w *Writer) header() {
	if w.started {
		return
	}
	w.started = true
	var h [headerLen]byte
	copy(h[:8], magic)
	binary.NativeEndian.PutUint32(h[8:], Version)
	binary.NativeEndian.PutUint32(h[12:], endianMark)
	w.write(h[:])
}

// Section starts a new section with the given tag; write the payload through
// the returned SectionWriter and Close it before starting the next section.
func (w *Writer) Section(tag uint32) *SectionWriter {
	return &SectionWriter{w: w, tag: tag}
}

// Finish writes the trailer and returns the first error of the stream.
func (w *Writer) Finish() error {
	w.header()
	var t [trailerLen]byte
	binary.NativeEndian.PutUint64(t[0:], w.sections)
	binary.NativeEndian.PutUint64(t[8:], w.off+trailerLen)
	copy(t[16:], trailerMagic)
	w.write(t[:])
	return w.err
}

// SectionWriter buffers one section's payload. The primitives mirror the
// Reader's and keep the payload 8-aligned after every field, which is what
// lets the reader hand out aligned zero-copy views.
type SectionWriter struct {
	w   *Writer
	tag uint32
	buf []byte
}

// pad8 pads the payload to a multiple of 8.
func (s *SectionWriter) pad8() {
	for len(s.buf)%8 != 0 {
		s.buf = append(s.buf, 0)
	}
}

// U64 appends one unsigned 64-bit scalar.
func (s *SectionWriter) U64(v uint64) {
	s.buf = binary.NativeEndian.AppendUint64(s.buf, v)
}

// I64 appends one signed 64-bit scalar.
func (s *SectionWriter) I64(v int64) { s.U64(uint64(v)) }

// Str appends a length-prefixed string, padded to 8.
func (s *SectionWriter) Str(v string) {
	s.U64(uint64(len(v)))
	s.buf = append(s.buf, v...)
	s.pad8()
}

// I64s appends a count-prefixed []int64 as raw host-order bytes.
func (s *SectionWriter) I64s(v []int64) {
	s.U64(uint64(len(v)))
	s.buf = append(s.buf, i64bytes(v)...)
}

// I32s appends a count-prefixed []int32 as raw host-order bytes, padded to 8.
func (s *SectionWriter) I32s(v []int32) {
	s.U64(uint64(len(v)))
	s.buf = append(s.buf, i32bytes(v)...)
	s.pad8()
}

// U32s appends a count-prefixed []uint32 as raw host-order bytes, padded to 8.
func (s *SectionWriter) U32s(v []uint32) {
	s.U64(uint64(len(v)))
	s.buf = append(s.buf, u32bytes(v)...)
	s.pad8()
}

// Close frames the buffered payload (tag, length, checksum) into the stream.
func (s *SectionWriter) Close() {
	w := s.w
	w.header()
	var h [sectionHeaderLen]byte
	binary.NativeEndian.PutUint32(h[0:], s.tag)
	binary.NativeEndian.PutUint64(h[8:], uint64(len(s.buf)))
	binary.NativeEndian.PutUint64(h[16:], uint64(crc32.Checksum(s.buf, crcTable)))
	w.write(h[:])
	w.write(s.buf)
	if pad := (8 - len(s.buf)%8) % 8; pad > 0 {
		w.write(make([]byte, pad))
	}
	w.sections++
}

// ---------------------------------------------------------------- reading

// Section is one checksummed region of an open snapshot. Payload aliases the
// file mapping: it is valid until the File is closed and must not be written.
type Section struct {
	Tag     uint32
	payload []byte
}

// Reader returns a cursor over the section's payload.
func (s *Section) Reader() *Reader { return &Reader{b: s.payload} }

// File is an open, frame-validated snapshot: the backing buffer (mmap or
// aligned heap copy) plus its section table. Close releases the mapping;
// every zero-copy view handed out by section readers dangles afterwards, so
// a File must outlive all structures restored from it.
type File struct {
	data     []byte
	sections []Section
	close    func() error
}

// Sections returns the file's sections in on-disk order.
func (f *File) Sections() []Section { return f.sections }

// Close releases the backing mapping (or buffer). Idempotent.
func (f *File) Close() error {
	c := f.close
	f.close = nil
	f.data = nil
	f.sections = nil
	if c != nil {
		return c()
	}
	return nil
}

// OpenFile maps the snapshot at path read-only and validates its framing and
// every section checksum. On unix the numeric payloads alias the mapping
// (zero copy); elsewhere the file is read into an aligned buffer.
func OpenFile(path string) (*File, error) {
	data, closer, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	f, err := open(data, closer)
	if err != nil {
		closer()
		return nil, err
	}
	return f, nil
}

// OpenBytes validates a snapshot held in memory. The bytes are copied into
// an 8-aligned buffer first (arbitrary input alignment would break the
// zero-copy views), so b may be reused by the caller. This is the entry
// point the fuzz target drives.
func OpenBytes(b []byte) (*File, error) {
	return open(alignedCopy(b), nil)
}

// alignedCopy copies b into a fresh 8-byte-aligned buffer.
func alignedCopy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	words := make([]uint64, (len(b)+7)/8)
	out := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(b))
	copy(out, b)
	return out
}

func open(data []byte, closer func() error) (*File, error) {
	if len(data) < headerLen+trailerLen {
		return nil, ErrTruncated
	}
	if string(data[:8]) != magic {
		return nil, ErrBadMagic
	}
	if v := binary.NativeEndian.Uint32(data[8:]); v != Version {
		// Distinguish the mirrored endian marker from a genuine future
		// version: check endianness first so the error names the real cause.
		if em := binary.NativeEndian.Uint32(data[12:]); em != endianMark {
			return nil, ErrEndian
		}
		return nil, fmt.Errorf("%w: got %d, this build reads %d", ErrVersion, v, Version)
	}
	if em := binary.NativeEndian.Uint32(data[12:]); em != endianMark {
		return nil, ErrEndian
	}
	trailer := data[len(data)-trailerLen:]
	if string(trailer[16:]) != trailerMagic {
		return nil, ErrTruncated
	}
	if binary.NativeEndian.Uint64(trailer[8:]) != uint64(len(data)) {
		return nil, ErrTruncated
	}
	wantSections := binary.NativeEndian.Uint64(trailer[0:])

	f := &File{data: data, close: closer}
	end := uint64(len(data) - trailerLen)
	pos := uint64(headerLen)
	for pos < end {
		if end-pos < sectionHeaderLen {
			return nil, ErrTruncated
		}
		tag := binary.NativeEndian.Uint32(data[pos:])
		plen := binary.NativeEndian.Uint64(data[pos+8:])
		crc := binary.NativeEndian.Uint64(data[pos+16:])
		pos += sectionHeaderLen
		if plen > end-pos {
			return nil, ErrTruncated
		}
		payload := data[pos : pos+plen : pos+plen]
		if uint64(crc32.Checksum(payload, crcTable)) != crc {
			return nil, fmt.Errorf("%w: section %d (tag %d)", ErrChecksum, len(f.sections), tag)
		}
		f.sections = append(f.sections, Section{Tag: tag, payload: payload})
		pos += plen
		pos += (8 - pos%8) % 8
	}
	if uint64(len(f.sections)) != wantSections {
		return nil, fmt.Errorf("%w: trailer records %d sections, file holds %d", ErrCorrupt, wantSections, len(f.sections))
	}
	return f, nil
}

// Reader is a bounds-checked cursor over one section payload. On the first
// out-of-range access it goes sticky-invalid: every later read returns zero
// values and Err reports the failure. Alignment is an invariant, not a
// check: all primitives consume multiples of 8 bytes.
type Reader struct {
	b   []byte
	off int
	err error
}

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = Corruptf(format, args...)
	}
}

// Remaining returns the unread payload bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// AtEnd reports whether the payload was consumed exactly.
func (r *Reader) AtEnd() bool { return r.err == nil && r.off == len(r.b) }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b)-r.off {
		r.fail("read of %d bytes at offset %d exceeds payload of %d", n, r.off, len(r.b))
		return nil
	}
	b := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

func (r *Reader) skipPad() {
	if pad := (8 - r.off%8) % 8; pad > 0 {
		r.take(pad)
	}
}

// U64 reads one unsigned 64-bit scalar.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.NativeEndian.Uint64(b)
}

// I64 reads one signed 64-bit scalar.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// count reads an element count and verifies width*count fits the remainder.
func (r *Reader) count(width int, what string) int {
	n := r.U64()
	if r.err != nil {
		return 0
	}
	if n > uint64(math.MaxInt64)/uint64(width) || int64(n)*int64(width) > int64(r.Remaining()) {
		r.fail("%s count %d exceeds remaining payload %d", what, n, r.Remaining())
		return 0
	}
	return int(n)
}

// Str reads a length-prefixed string (copied out of the buffer).
func (r *Reader) Str() string {
	n := r.count(1, "string")
	b := r.take(n)
	r.skipPad()
	if b == nil {
		return ""
	}
	return string(b)
}

// I64s reads a count-prefixed []int64 viewing the payload in place.
func (r *Reader) I64s() []int64 {
	n := r.count(8, "int64 array")
	b := r.take(8 * n)
	if b == nil || n == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
}

// I32s reads a count-prefixed []int32 viewing the payload in place.
func (r *Reader) I32s() []int32 {
	n := r.count(4, "int32 array")
	b := r.take(4 * n)
	r.skipPad()
	if b == nil || n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
}

// U32s reads a count-prefixed []uint32 viewing the payload in place.
func (r *Reader) U32s() []uint32 {
	n := r.count(4, "uint32 array")
	b := r.take(4 * n)
	r.skipPad()
	if b == nil || n == 0 {
		return nil
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), n)
}

// ---------------------------------------------------------------- casts

func i64bytes(v []int64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 8*len(v))
}

func i32bytes(v []int32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

func u32bytes(v []uint32) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), 4*len(v))
}

// WriteFileAtomic writes a complete snapshot to path via a temp file in the
// same directory and an atomic rename, so a crash mid-save can never leave a
// half-written snapshot where a boot scan would find it.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp files are 0600; snapshots are ordinary artifacts — give
	// them conventional permissions before they appear under path.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}
