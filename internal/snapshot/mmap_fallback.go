//go:build !unix

package snapshot

import "os"

// mapFile on platforms without mmap support reads the whole file into an
// 8-aligned heap buffer: same validation and views, one extra copy.
func mapFile(path string) (data []byte, closer func() error, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return alignedCopy(b), func() error { return nil }, nil
}
