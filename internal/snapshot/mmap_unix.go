//go:build unix

package snapshot

import (
	"io"
	"os"
	"syscall"
	"unsafe"
)

// mmapThreshold is the file size below which plain read-into-aligned-buffer
// beats mmap: a small catalog costs fewer syscalls and no page faults read
// outright, and the checksum pass touches every byte anyway. Large catalogs
// map, so columns and bucket tables page in lazily and share page cache
// across processes.
const mmapThreshold = 1 << 20

// mapFile maps path read-only. The mapping is page-aligned, which makes
// every 8-aligned file offset an 8-aligned address — the invariant the
// zero-copy array views rely on. An empty file maps to an empty buffer
// (mmap of length 0 is an error on Linux), which open rejects as truncated.
func mapFile(path string) (data []byte, closer func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if size != int64(int(size)) {
		return nil, nil, Corruptf("snapshot of %d bytes exceeds the address space", size)
	}
	if size <= mmapThreshold {
		b := make([]uint64, (size+7)/8)
		buf := unsafe.Slice((*byte)(unsafe.Pointer(&b[0])), size)
		if _, err := io.ReadFull(f, buf); err != nil {
			return nil, nil, err
		}
		return buf, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
