package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		for _, n := range []int{0, 1, 2, 999, 1024} {
			hits := make([]atomic.Int32, n)
			if err := ForEachChunk(n, workers, func(lo, hi int) error {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
				return nil
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEach(100, 4, func(i int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want %v", err, sentinel)
	}
}

func TestGroupCancelsAfterFailure(t *testing.T) {
	sentinel := errors.New("boom")
	g := NewGroup(1) // serialize so scheduling order is deterministic
	var ran atomic.Int32
	g.Go(func() error { return sentinel })
	if err := g.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want %v", err, sentinel)
	}
	// After failure the group is canceled: a late Go is dropped.
	g.Go(func() error { ran.Add(1); return nil })
	g.wg.Wait()
	if ran.Load() != 0 {
		t.Fatal("task ran on a canceled group")
	}
}

func TestGroupRecoversPanic(t *testing.T) {
	g := NewGroup(2)
	g.Go(func() error { panic("kaboom") })
	err := g.Wait()
	if err == nil {
		t.Fatal("panic was swallowed")
	}
}

func TestGroupLimitIsRespected(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, peak atomic.Int32
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, limit)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
