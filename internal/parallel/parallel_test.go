package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 1000
		hits := make([]atomic.Int32, n)
		if err := ForEach(n, workers, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		for _, n := range []int{0, 1, 2, 999, 1024} {
			hits := make([]atomic.Int32, n)
			if err := ForEachChunk(n, workers, func(lo, hi int) error {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
				}
				for i := lo; i < hi; i++ {
					hits[i].Add(1)
				}
				return nil
			}); err != nil {
				t.Fatalf("workers=%d n=%d: %v", workers, n, err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForEachPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEach(100, 4, func(i int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want %v", err, sentinel)
	}
}

func TestGroupCancelsAfterFailure(t *testing.T) {
	sentinel := errors.New("boom")
	g := NewGroup(1) // serialize so scheduling order is deterministic
	var ran atomic.Int32
	g.Go(func() error { return sentinel })
	if err := g.Wait(); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want %v", err, sentinel)
	}
	// After failure the group is canceled: a late Go is dropped.
	g.Go(func() error { ran.Add(1); return nil })
	g.wg.Wait()
	if ran.Load() != 0 {
		t.Fatal("task ran on a canceled group")
	}
}

func TestGroupRecoversPanic(t *testing.T) {
	g := NewGroup(2)
	g.Go(func() error { panic("kaboom") })
	err := g.Wait()
	if err == nil {
		t.Fatal("panic was swallowed")
	}
}

func TestGroupLimitIsRespected(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, peak atomic.Int32
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", p, limit)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}

func TestForEachChunkCtxCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		n := 5000 // > ctxChunkSize, so the bounded-chunk path is exercised
		var hits atomic.Int64
		covered := make([]atomic.Int32, n)
		err := ForEachChunkCtx(context.Background(), n, workers, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
				hits.Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if hits.Load() != int64(n) {
			t.Fatalf("workers=%d: %d hits, want %d", workers, hits.Load(), n)
		}
		for i := range covered {
			if covered[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, covered[i].Load())
			}
		}
	}
}

// TestForEachChunkCtxStopsOnCancel: a context cancelled from inside a chunk
// stops the fleet before the index space is exhausted, returns ctx.Err(),
// and never runs a chunk after the cancellation was observable by every
// worker.
func TestForEachChunkCtxStopsOnCancel(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		n := 1 << 20
		var done atomic.Int64
		err := ForEachChunkCtx(ctx, n, workers, func(lo, hi int) error {
			if done.Add(int64(hi-lo)) > ctxChunkSize {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// At most one in-flight chunk per worker can complete after cancel.
		if max := int64(ctxChunkSize) * int64(workers+2); done.Load() > max {
			t.Fatalf("workers=%d: %d indexes ran after cancellation (cap %d)", workers, done.Load(), max)
		}
	}
}

// TestForEachChunkCtxPreCancelled: a context cancelled before the call runs
// nothing at all.
func TestForEachChunkCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachChunkCtx(ctx, 100, 4, func(lo, hi int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("chunk ran under a pre-cancelled context")
	}
}

// TestForEachChunkCtxBackgroundMatchesPlain: a never-cancellable context is
// the plain ForEachChunk (same chunk geometry, no per-chunk ctx tax).
func TestForEachChunkCtxBackgroundMatchesPlain(t *testing.T) {
	var a, b []int
	_ = ForEachChunk(10_000, 1, func(lo, hi int) error { a = append(a, lo, hi); return nil })
	_ = ForEachChunkCtx(context.Background(), 10_000, 1, func(lo, hi int) error { b = append(b, lo, hi); return nil })
	if len(a) != len(b) {
		t.Fatalf("chunk geometry differs: %d vs %d bounds", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("chunk bounds differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
