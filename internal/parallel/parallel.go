// Package parallel provides the small concurrency toolkit used by the
// preprocessing and serving layers: a bounded task group with errgroup-style
// first-error cancellation, and index-space fan-out helpers.
//
// The package deliberately has no dependency on the rest of the module (it
// sits below internal/access) and no external dependencies: the container
// environment is stdlib-only, so the errgroup shape is reimplemented here.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers returns the default worker count for CPU-bound fan-out:
// GOMAXPROCS, which tracks both the machine size and any explicit cap the
// embedding process set.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// Group runs tasks on a bounded number of goroutines and records the first
// error. After a task fails, Go becomes a no-op for tasks not yet started
// (cancellation), while already-running tasks finish normally — the same
// contract as golang.org/x/sync/errgroup with a context.
//
// The zero value is unbounded. A Group must not be reused after Wait.
type Group struct {
	wg       sync.WaitGroup
	sem      chan struct{}
	errOnce  sync.Once
	err      error
	canceled atomic.Bool
}

// NewGroup returns a group running at most limit tasks concurrently
// (limit <= 0 means Workers()).
func NewGroup(limit int) *Group {
	g := &Group{}
	g.SetLimit(limit)
	return g
}

// SetLimit caps concurrent tasks at n (n <= 0 means Workers()). It must be
// called before the first Go.
func (g *Group) SetLimit(n int) {
	if n <= 0 {
		n = Workers()
	}
	g.sem = make(chan struct{}, n)
}

// Go schedules fn. If the group is already canceled by a previous failure,
// fn is dropped. A panic inside fn is captured as an error rather than
// crashing the process, so a failed build surfaces as a build error.
func (g *Group) Go(fn func() error) {
	if g.canceled.Load() {
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			g.sem <- struct{}{}
			defer func() { <-g.sem }()
		}
		if g.canceled.Load() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				g.fail(fmt.Errorf("parallel: task panicked: %v", r))
			}
		}()
		if err := fn(); err != nil {
			g.fail(err)
		}
	}()
}

func (g *Group) fail(err error) {
	g.errOnce.Do(func() {
		g.err = err
		g.canceled.Store(true)
	})
}

// Wait blocks until every scheduled task finished and returns the first
// error, if any.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// Canceled reports whether a task has failed (and the group stopped
// admitting new tasks).
func (g *Group) Canceled() bool { return g.canceled.Load() }

// ForEach runs fn(i) for every i in [0, n) on up to workers goroutines
// (workers <= 0 means Workers()). Iterations are dealt out one index at a
// time, which balances uneven per-item cost; the first error cancels the
// remaining undealt indexes.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var next atomic.Int64
	g := NewGroup(workers)
	for w := 0; w < workers; w++ {
		g.Go(func() error {
			for {
				i := next.Add(1) - 1
				if i >= int64(n) || g.Canceled() {
					return nil
				}
				if err := fn(int(i)); err != nil {
					return err
				}
			}
		})
	}
	return g.Wait()
}

// ForEachChunk splits [0, n) into at most `workers` contiguous chunks and
// runs fn(lo, hi) for each on its own goroutine (workers <= 0 means
// Workers()). Use it when per-index work is tiny and uniform — batched
// random access, page assembly — so the per-task overhead is paid once per
// chunk, not once per index.
func ForEachChunk(n, workers int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return fn(0, n)
	}
	g := NewGroup(workers)
	size := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		lo, hi := lo, hi
		g.Go(func() error { return fn(lo, hi) })
	}
	return g.Wait()
}

// ctxChunkSize bounds the chunk size of ForEachChunkCtx: a cancelled context
// is observed after at most this many indexes of remaining work per worker,
// whatever n is. 1024 keeps the per-chunk bookkeeping negligible next to the
// O(log n) cost of one probe while still bounding cancellation latency to
// microseconds-to-milliseconds of work.
const ctxChunkSize = 1024

// ForEachChunkCtx is ForEachChunk with cooperative cancellation: ctx is
// consulted between chunks, and the index space is split into bounded chunks
// (at most ctxChunkSize indexes each) rather than workers-many slabs, so a
// large n cannot postpone the cancellation check to the end of the call.
// When ctx is cancelled, workers stop dealing out new chunks and the first
// error returned is ctx.Err(); chunks already running finish normally, so fn
// never observes a torn chunk. A nil or never-cancellable ctx (no Done
// channel) takes the exact ForEachChunk fast path.
func ForEachChunkCtx(ctx context.Context, n, workers int, fn func(lo, hi int) error) error {
	if ctx == nil || ctx.Done() == nil {
		return ForEachChunk(n, workers, fn)
	}
	if n <= 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	size := (n + workers - 1) / workers
	if size > ctxChunkSize {
		size = ctxChunkSize
	}
	if workers == 1 {
		for lo := 0; lo < n; lo += size {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := lo + size
			if hi > n {
				hi = n
			}
			if err := fn(lo, hi); err != nil {
				return err
			}
		}
		return nil
	}
	// Chunks are dealt out dynamically: each worker claims the next chunk
	// after re-checking the context, so cancellation stops the fleet within
	// one chunk per worker.
	var next atomic.Int64
	g := NewGroup(workers)
	for w := 0; w < workers; w++ {
		g.Go(func() error {
			for {
				if err := ctx.Err(); err != nil {
					return err
				}
				lo := int(next.Add(int64(size))) - size
				if lo >= n || g.Canceled() {
					return nil
				}
				hi := lo + size
				if hi > n {
					hi = n
				}
				if err := fn(lo, hi); err != nil {
					return err
				}
			}
		})
	}
	return g.Wait()
}
