// Package relation provides the relational substrate used by the whole
// library: dictionary-encoded values, tuples, schemas, relations, databases,
// and the linear-time operators (selection, projection, semijoin) required by
// the enumeration algorithms.
//
// The paper's computation model is the DRAM variant of the RAM model with
// uniform cost measure, which permits constant-time lookup tables of
// polynomial size. Go hash maps play that role here.
package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Value is a single attribute value. All values are 64-bit integers; string
// data is interned through a Dict, so that tuples are compact and hashing is
// cheap. This mirrors dictionary encoding in column stores.
type Value int64

// Tuple is an ordered list of values, positionally aligned with a schema.
type Tuple []Value

// Clone returns a copy of the tuple that does not alias t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples have the same length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Key encodes the tuple as a string usable as a hash-map key. The encoding is
// fixed-width (8 bytes per value, big-endian) so distinct tuples of the same
// arity always produce distinct keys.
func (t Tuple) Key() string {
	b := make([]byte, 8*len(t))
	for i, v := range t {
		putValue(b[8*i:], v)
	}
	return string(b)
}

func putValue(b []byte, v Value) {
	u := uint64(v)
	b[0] = byte(u >> 56)
	b[1] = byte(u >> 48)
	b[2] = byte(u >> 40)
	b[3] = byte(u >> 32)
	b[4] = byte(u >> 24)
	b[5] = byte(u >> 16)
	b[6] = byte(u >> 8)
	b[7] = byte(u)
}

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(positions []int) Tuple {
	p := make(Tuple, len(positions))
	for i, pos := range positions {
		p[i] = t[pos]
	}
	return p
}

// ProjectKey is Project followed by Key without allocating the intermediate
// tuple.
func (t Tuple) ProjectKey(positions []int) string {
	b := make([]byte, 8*len(positions))
	for i, pos := range positions {
		putValue(b[8*i:], t[pos])
	}
	return string(b)
}

// Dict interns strings as Values. It is safe for concurrent use. Value 0 is
// reserved for the empty string so that zero values decode cleanly.
type Dict struct {
	mu      sync.RWMutex
	byName  map[string]Value
	byValue []string
}

// NewDict returns an empty dictionary with "" pre-interned as 0.
func NewDict() *Dict {
	d := &Dict{byName: make(map[string]Value)}
	d.byName[""] = 0
	d.byValue = append(d.byValue, "")
	return d
}

// Intern returns the Value for s, assigning a fresh one if needed.
func (d *Dict) Intern(s string) Value {
	d.mu.RLock()
	v, ok := d.byName[s]
	d.mu.RUnlock()
	if ok {
		return v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok = d.byName[s]; ok {
		return v
	}
	v = Value(len(d.byValue))
	d.byName[s] = v
	d.byValue = append(d.byValue, s)
	return v
}

// Lookup returns the Value for s without interning.
func (d *Dict) Lookup(s string) (Value, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.byName[s]
	return v, ok
}

// String returns the string for an interned value, or a numeric rendering if
// the value was never interned.
func (d *Dict) String(v Value) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v >= 0 && int(v) < len(d.byValue) {
		return d.byValue[v]
	}
	return fmt.Sprintf("#%d", int64(v))
}

// Len reports the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byValue)
}

// SortedStrings returns all interned strings in sorted order (for tests and
// debug output).
func (d *Dict) SortedStrings() []string {
	d.mu.RLock()
	out := make([]string, len(d.byValue))
	copy(out, d.byValue)
	d.mu.RUnlock()
	sort.Strings(out)
	return out
}
