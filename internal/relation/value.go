// Package relation provides the relational substrate used by the whole
// library: dictionary-encoded values, tuples, schemas, relations, databases,
// and the linear-time operators (selection, projection, semijoin) required by
// the enumeration algorithms.
//
// Storage is column-major (see Relation): one contiguous []Value per
// attribute, with dense group IDs (see GroupBy) replacing string-keyed hash
// maps on every hot path. String keys survive only as the fallback for wide
// or non-packable tuples, and every string key in the codebase is produced by
// the single canonical encoder in this file.
//
// The paper's computation model is the DRAM variant of the RAM model with
// uniform cost measure, which permits constant-time lookup tables of
// polynomial size. Go hash maps (and, after preprocessing, plain arrays
// indexed by group ID) play that role here.
package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Value is a single attribute value. All values are 64-bit integers; string
// data is interned through a Dict, so that tuples are compact and hashing is
// cheap. This mirrors dictionary encoding in column stores.
type Value int64

// Tuple is an ordered list of values, positionally aligned with a schema.
type Tuple []Value

// Clone returns a copy of the tuple that does not alias t.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports whether two tuples have the same length and values.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// appendValue appends the canonical fixed-width encoding of v (8 bytes,
// big-endian) to dst. This is THE tuple-key encoder of the codebase: every
// string-keyed map over tuples — relation indexes, dynamic-index buckets,
// the naive evaluator's join indexes, the samplers' seen-sets — goes through
// this function via Key / ProjectKey / AppendKey / AppendProjectedKey.
// Do not re-implement the encoding elsewhere; distinct tuples of equal arity
// must keep producing distinct keys, and mixed encoders would silently break
// cross-package key comparisons.
func appendValue(dst []byte, v Value) []byte {
	u := uint64(v)
	return append(dst,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// AppendKey appends the canonical key encoding of t to dst and returns the
// extended slice. Passing a stack buffer's [:0] slice keeps hot lookups
// allocation-free: m[string(b)] map reads do not copy the key.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = appendValue(dst, v)
	}
	return dst
}

// AppendProjectedKey appends the canonical key encoding of t's values at the
// given positions to dst (Project followed by AppendKey without the
// intermediate tuple).
func (t Tuple) AppendProjectedKey(dst []byte, positions []int) []byte {
	for _, pos := range positions {
		dst = appendValue(dst, t[pos])
	}
	return dst
}

// Key encodes the tuple as a string usable as a hash-map key. The encoding is
// fixed-width (8 bytes per value, big-endian) so distinct tuples of the same
// arity always produce distinct keys.
func (t Tuple) Key() string {
	return string(t.AppendKey(make([]byte, 0, 8*len(t))))
}

// Project returns the sub-tuple at the given positions.
func (t Tuple) Project(positions []int) Tuple {
	p := make(Tuple, len(positions))
	for i, pos := range positions {
		p[i] = t[pos]
	}
	return p
}

// ProjectKey is Project followed by Key without allocating the intermediate
// tuple.
func (t Tuple) ProjectKey(positions []int) string {
	return string(t.AppendProjectedKey(make([]byte, 0, 8*len(positions)), positions))
}

// Packed 64-bit keys: a tuple key of one attribute is the value itself
// (uint64(v) is a bijection on int64), and a key of two attributes packs both
// values into one word when each fits 32 bits — true for every
// dictionary-encoded value until the dictionary exceeds 4Gi entries. Wider or
// non-packable keys fall back to the canonical string encoding above.

// packable32 reports whether v fits the 32-bit half of a packed pair key.
func packable32(v Value) bool { return v >= 0 && v < 1<<32 }

// packPair packs two 32-bit-packable values into one uint64 key.
func packPair(a, b Value) uint64 { return uint64(a)<<32 | uint64(b) }

// packVals packs up to two values into a uint64 key; ok is false when the
// values do not fit the packed representation (the caller falls back to the
// string encoding).
func packVals(vals ...Value) (uint64, bool) {
	switch len(vals) {
	case 0:
		return 0, true
	case 1:
		return uint64(vals[0]), true
	case 2:
		if !packable32(vals[0]) || !packable32(vals[1]) {
			return 0, false
		}
		return packPair(vals[0], vals[1]), true
	}
	return 0, false
}

// KeyBufCap is the stack-buffer size used for allocation-free string-key
// lookups: keys of up to KeyBufCap/8 attributes never touch the heap. The
// constant is exported so other packages encoding probe keys (dynaccess) can
// size their stack buffers to match.
const KeyBufCap = 256

// KeyScratch returns a key-encoding destination for n encoded values: the
// caller's stack buffer when it fits, a heap slice otherwise. Every
// stack-or-heap key site — here and in consumer packages (dynaccess) —
// routes through this helper so the sizing rule lives in one place. It is
// tiny enough to inline, so the buffer stays on the caller's stack.
func KeyScratch(buf *[KeyBufCap]byte, n int) []byte {
	if 8*n <= KeyBufCap {
		return buf[:0]
	}
	return make([]byte, 0, 8*n)
}

// Dict interns strings as Values. It is safe for concurrent use. Value 0 is
// reserved for the empty string so that zero values decode cleanly.
//
// A dictionary restored from a snapshot (NewDictFromStrings) defers its
// reverse map: rendering values to strings needs only the byValue table, so
// a cold start pays nothing; the byName map is hydrated under the lock on
// the first Lookup or Intern.
type Dict struct {
	mu      sync.RWMutex
	byName  map[string]Value // nil until hydrated for restored dictionaries
	byValue []string
}

// NewDict returns an empty dictionary with "" pre-interned as 0.
func NewDict() *Dict {
	d := &Dict{byName: make(map[string]Value)}
	d.byName[""] = 0
	d.byValue = append(d.byValue, "")
	return d
}

// NewDictFromStrings restores a dictionary from its value table: byValue[v]
// is the string of Value v. The slice is adopted, not copied. The table must
// start with the reserved empty string.
func NewDictFromStrings(byValue []string) (*Dict, error) {
	if len(byValue) == 0 || byValue[0] != "" {
		return nil, fmt.Errorf("relation: dictionary table must start with the reserved empty string")
	}
	return &Dict{byValue: byValue}, nil
}

// hydrateLocked builds the deferred byName map. Caller holds d.mu for write.
func (d *Dict) hydrateLocked() {
	if d.byName != nil {
		return
	}
	d.byName = make(map[string]Value, len(d.byValue))
	for i, s := range d.byValue {
		d.byName[s] = Value(i)
	}
}

// Intern returns the Value for s, assigning a fresh one if needed.
func (d *Dict) Intern(s string) Value {
	d.mu.RLock()
	var v Value
	var ok bool
	if d.byName != nil {
		v, ok = d.byName[s]
	}
	d.mu.RUnlock()
	if ok {
		return v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hydrateLocked()
	if v, ok = d.byName[s]; ok {
		return v
	}
	v = Value(len(d.byValue))
	d.byName[s] = v
	d.byValue = append(d.byValue, s)
	return v
}

// Lookup returns the Value for s without interning.
func (d *Dict) Lookup(s string) (Value, bool) {
	d.mu.RLock()
	if d.byName != nil {
		v, ok := d.byName[s]
		d.mu.RUnlock()
		return v, ok
	}
	d.mu.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hydrateLocked()
	v, ok := d.byName[s]
	return v, ok
}

// String returns the string for an interned value, or the stable numeric
// rendering "#N" for a value outside the dictionary. The bounds check
// compares in the Value domain: converting first (int(v) < len) truncates
// huge values on 32-bit platforms, so a never-interned value like 2^32+3
// would collide with real intern slot 3 and render a foreign string — worse
// under concurrent growth, where the collision target shifts as other
// goroutines intern. A value that is out of range at call time always
// renders "#N", never another slot's string.
func (d *Dict) String(v Value) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v >= 0 && v < Value(len(d.byValue)) {
		return d.byValue[v]
	}
	return fmt.Sprintf("#%d", int64(v))
}

// StringInterned returns the interned string for v, or ok=false for a
// value outside the dictionary. Unlike String it never formats: callers on
// allocation-free paths render the out-of-dictionary "#N" form themselves
// (strconv.AppendInt into their own buffer).
func (d *Dict) StringInterned(v Value) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v >= 0 && v < Value(len(d.byValue)) {
		return d.byValue[v], true
	}
	return "", false
}

// Len reports the number of interned strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.byValue)
}

// SortedStrings returns all interned strings in sorted order (for tests and
// debug output).
func (d *Dict) SortedStrings() []string {
	d.mu.RLock()
	out := make([]string, len(d.byValue))
	copy(out, d.byValue)
	d.mu.RUnlock()
	sort.Strings(out)
	return out
}
