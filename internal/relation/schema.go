package relation

import (
	"fmt"
	"strings"
)

// Schema is an ordered list of attribute names. Attribute names are global:
// two relations sharing an attribute name join on it (natural-join
// convention), matching the variable-based formalism of conjunctive queries.
type Schema []string

// NewSchema validates and returns a schema. Attribute names must be non-empty
// and distinct within one schema.
func NewSchema(attrs ...string) (Schema, error) {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation: empty attribute name")
		}
		if seen[a] {
			return nil, fmt.Errorf("relation: duplicate attribute %q in schema", a)
		}
		seen[a] = true
	}
	return Schema(attrs), nil
}

// MustSchema is NewSchema that panics on error; for literals in tests and
// generators.
func MustSchema(attrs ...string) Schema {
	s, err := NewSchema(attrs...)
	if err != nil {
		panic(err)
	}
	return s
}

// Position returns the index of attribute a, or -1.
func (s Schema) Position(a string) int {
	for i, x := range s {
		if x == a {
			return i
		}
	}
	return -1
}

// Positions maps a list of attribute names to their positions. It returns an
// error if any attribute is missing.
func (s Schema) Positions(attrs []string) ([]int, error) {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		p := s.Position(a)
		if p < 0 {
			return nil, fmt.Errorf("relation: attribute %q not in schema %v", a, s)
		}
		out[i] = p
	}
	return out, nil
}

// Contains reports whether attribute a is in the schema.
func (s Schema) Contains(a string) bool { return s.Position(a) >= 0 }

// Intersect returns the attributes of s that also occur in other, in s-order.
func (s Schema) Intersect(other Schema) []string {
	var out []string
	for _, a := range s {
		if other.Contains(a) {
			out = append(out, a)
		}
	}
	return out
}

// Equal reports element-wise equality.
func (s Schema) Equal(other Schema) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

func (s Schema) String() string { return "(" + strings.Join(s, ", ") + ")" }
