package relation

// Bitset is a dense bit vector, used for group-ID membership during semijoin
// reduction: one bit per group instead of one hash entry per tuple.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits, all clear.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b Bitset) Get(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Grouping is the result of Relation.GroupBy: a dense uint32 group ID per
// tuple, where tuples share a group iff they agree on the key positions.
// Group IDs are assigned in order of first appearance, so they inherit the
// relation's insertion-order determinism. A Grouping is immutable once built
// and safe for concurrent readers.
//
// The access index addresses its buckets by these IDs: what used to be a
// map[string]*bucket probe per join-tree edge becomes a plain array index.
type Grouping struct {
	width int

	// GroupOf[i] is the group ID of tuple i.
	GroupOf []uint32
	// First[g] is the position of the first tuple of group g (a
	// representative row for re-deriving the group's key values).
	First []int32

	// Key lookup: exactly one of packed/wide is non-nil for width ≥ 1.
	// packed holds 64-bit packed keys (width ≤ 2 with all values packable);
	// wide holds canonical string keys.
	packed map[uint64]uint32
	wide   map[string]uint32
}

// NumGroups returns the number of distinct groups.
func (g *Grouping) NumGroups() int { return len(g.First) }

// Width returns the number of key positions the grouping was built on.
func (g *Grouping) Width() int { return g.width }

// GroupBy scans the relation once and assigns a dense group ID to every
// tuple. Keys of ≤ 2 attributes use a packed 64-bit fast path; wider keys —
// or a key containing a value outside [0, 2^32) at width 2 — fall back to the
// canonical string encoding (the whole grouping migrates on first overflow,
// so lookups stay consistent). Zero positions puts every tuple in group 0.
func (r *Relation) GroupBy(positions []int) *Grouping {
	g := &Grouping{width: len(positions), GroupOf: make([]uint32, r.n)}
	if len(positions) == 0 {
		if r.n > 0 {
			g.First = []int32{0}
		}
		return g
	}
	if len(positions) <= 2 {
		g.packed = make(map[uint64]uint32)
		for i := 0; i < r.n; i++ {
			k, ok := r.packAt(i, positions)
			if !ok {
				g.migrateWide(r, positions)
				g.scanWide(r, positions, i)
				return g
			}
			id, seen := g.packed[k]
			if !seen {
				id = uint32(len(g.First))
				g.packed[k] = id
				g.First = append(g.First, int32(i))
			}
			g.GroupOf[i] = id
		}
		return g
	}
	g.wide = make(map[string]uint32)
	g.scanWide(r, positions, 0)
	return g
}

// migrateWide converts a packed grouping to the string-keyed form by
// re-encoding one representative row per existing group.
func (g *Grouping) migrateWide(r *Relation, positions []int) {
	g.wide = make(map[string]uint32, len(g.First))
	for id, first := range g.First {
		g.wide[r.keyAt(int(first), positions)] = uint32(id)
	}
	g.packed = nil
}

// scanWide continues the grouping scan from row `from` using string keys.
func (g *Grouping) scanWide(r *Relation, positions []int, from int) {
	var buf [KeyBufCap]byte
	for i := from; i < r.n; i++ {
		b := KeyScratch(&buf, len(positions))
		for _, p := range positions {
			b = appendValue(b, r.cols[p][i])
		}
		id, seen := g.wide[string(b)]
		if !seen {
			id = uint32(len(g.First))
			g.wide[string(b)] = id
			g.First = append(g.First, int32(i))
		}
		g.GroupOf[i] = id
	}
}

// LookupAt returns the group whose key equals the values at positions proj
// of row i of r — which need not be the relation the grouping was built on:
// this is how a join-tree parent resolves its tuples to child bucket IDs.
// len(proj) must equal the grouping's width. Allocation-free for packed
// groupings and for wide keys of ≤ KeyBufCap/8 attributes.
func (g *Grouping) LookupAt(r *Relation, i int, proj []int) (uint32, bool) {
	if g.width == 0 {
		return 0, len(g.First) > 0
	}
	if g.packed != nil {
		var k uint64
		switch len(proj) {
		case 1:
			k = uint64(r.cols[proj[0]][i])
		default:
			a, b := r.cols[proj[0]][i], r.cols[proj[1]][i]
			if !packable32(a) || !packable32(b) {
				return 0, false
			}
			k = packPair(a, b)
		}
		id, ok := g.packed[k]
		return id, ok
	}
	var buf [KeyBufCap]byte
	b := KeyScratch(&buf, len(proj))
	for _, p := range proj {
		b = appendValue(b, r.cols[p][i])
	}
	id, ok := g.wide[string(b)]
	return id, ok
}
