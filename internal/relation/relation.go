package relation

import (
	"fmt"
	"sort"
)

// Relation is a finite set of tuples over a schema. Insertion order is
// preserved and duplicates are rejected; this determinism is what later lets
// two access structures built from filtered versions of the same relation
// have *compatible* enumeration orders (Section 5.2 of the paper).
type Relation struct {
	name   string
	schema Schema
	tuples []Tuple
	index  map[string]int // Tuple.Key() -> position in tuples
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema Schema) *Relation {
	return &Relation{
		name:   name,
		schema: schema,
		index:  make(map[string]int),
	}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema. Callers must not mutate it.
func (r *Relation) Schema() Schema { return r.schema }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.schema) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds a tuple. It returns an error on arity mismatch and reports
// whether the tuple was newly added (false means it was already present —
// set semantics).
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != len(r.schema) {
		return false, fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.name, len(t), len(r.schema))
	}
	k := t.Key()
	if _, dup := r.index[k]; dup {
		return false, nil
	}
	r.index[k] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return true, nil
}

// MustInsert inserts and panics on arity errors; duplicates are ignored.
func (r *Relation) MustInsert(vals ...Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Tuple returns the i-th tuple in insertion order. Callers must not mutate it.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Tuples returns the underlying tuple slice. Callers must not mutate it.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.index[t.Key()]
	return ok
}

// Position returns the insertion position of t, or -1.
func (r *Relation) Position(t Tuple) int {
	if i, ok := r.index[t.Key()]; ok {
		return i
	}
	return -1
}

// Rename returns a view of r with a new name and schema (same tuples). The
// new schema must have the same arity. Tuples are shared, not copied: this is
// how a query atom R(x, y) binds relation attributes to query variables.
func (r *Relation) Rename(name string, schema Schema) (*Relation, error) {
	if len(schema) != len(r.schema) {
		return nil, fmt.Errorf("relation %s: rename to arity %d != %d", r.name, len(schema), len(r.schema))
	}
	return &Relation{name: name, schema: schema, tuples: r.tuples, index: r.index}, nil
}

// Filter returns a new relation containing the tuples satisfying keep, in the
// original relative order (order preservation is required for compatible
// enumeration orders across selections of the same base relation).
func (r *Relation) Filter(name string, keep func(Tuple) bool) *Relation {
	out := NewRelation(name, r.schema)
	for _, t := range r.tuples {
		if keep(t) {
			out.index[t.Key()] = len(out.tuples)
			out.tuples = append(out.tuples, t)
		}
	}
	return out
}

// Project returns the projection of r onto attrs (set semantics, first
// occurrence wins, order preserved).
func (r *Relation) Project(name string, attrs []string) (*Relation, error) {
	pos, err := r.schema.Positions(attrs)
	if err != nil {
		return nil, err
	}
	out := NewRelation(name, Schema(attrs))
	for _, t := range r.tuples {
		p := t.Project(pos)
		if _, dup := out.index[p.Key()]; dup {
			continue
		}
		out.index[p.Key()] = len(out.tuples)
		out.tuples = append(out.tuples, p)
	}
	return out, nil
}

// SemijoinWith removes from r (in place) every tuple that has no matching
// tuple in s on their shared attributes: r ← r ⋉ s. If the relations share no
// attributes, r is unchanged when s is non-empty and emptied when s is empty
// (the join with an empty relation is empty). It returns the number of tuples
// removed. Linear time in |r| + |s|.
func (r *Relation) SemijoinWith(s *Relation) int {
	shared := r.schema.Intersect(s.schema)
	if len(shared) == 0 {
		if s.Len() > 0 {
			return 0
		}
		n := len(r.tuples)
		r.tuples = nil
		r.index = make(map[string]int)
		return n
	}
	rPos, _ := r.schema.Positions(shared)
	sPos, _ := s.schema.Positions(shared)
	present := make(map[string]bool, s.Len())
	for _, t := range s.tuples {
		present[t.ProjectKey(sPos)] = true
	}
	kept := r.tuples[:0]
	removed := 0
	for _, t := range r.tuples {
		if present[t.ProjectKey(rPos)] {
			kept = append(kept, t)
		} else {
			removed++
		}
	}
	if removed > 0 {
		r.tuples = kept
		r.index = make(map[string]int, len(kept))
		for i, t := range r.tuples {
			r.index[t.Key()] = i
		}
	}
	return removed
}

// Clone returns a deep-enough copy of r: the tuple slice and index are fresh,
// tuple contents are shared (tuples are treated as immutable).
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.name, r.schema)
	out.tuples = make([]Tuple, len(r.tuples))
	copy(out.tuples, r.tuples)
	for k, v := range r.index {
		out.index[k] = v
	}
	return out
}

// SortTuples sorts the tuples lexicographically and rebuilds the index. Used
// by tests that need canonical order; the enumeration algorithms never
// require sorted input.
func (r *Relation) SortTuples() {
	sort.Slice(r.tuples, func(i, j int) bool {
		a, b := r.tuples[i], r.tuples[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	for i, t := range r.tuples {
		r.index[t.Key()] = i
	}
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s%v[%d tuples]", r.name, r.schema, len(r.tuples))
}
