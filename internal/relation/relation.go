package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Relation is a finite set of tuples over a schema, stored column-major: one
// contiguous []Value per attribute. Insertion order is preserved and
// duplicates are rejected; this determinism is what later lets two access
// structures built from filtered versions of the same relation have
// *compatible* enumeration orders (Section 5.2 of the paper).
//
// Duplicate detection is backed by a packed 64-bit key index for relations of
// arity ≤ 2 (no per-tuple string allocation on load) and by the canonical
// string-key index otherwise.
//
// # Concurrency
//
// A Relation is not synchronized. The contract used across the library is
// build-then-share: mutations (Insert, SemijoinWith, SortTuples) happen
// during preprocessing on one goroutine; after an index is built over the
// relation, the column arrays are immutable and may be read — including via
// Col, which exposes them directly — from any number of goroutines.
type Relation struct {
	name   string
	schema Schema
	cols   [][]Value
	n      int

	// Full-tuple duplicate index: exactly one of pindex/windex is non-nil
	// once the index exists. Snapshot-restored relations defer it (see
	// lazyOnce): probes that never test membership never pay for it.
	pindex map[uint64]int32
	windex map[string]int32

	// lazyOnce is non-nil for relations whose duplicate index is built on
	// first use (FromColumns): cold-start restores stay O(open) instead of
	// rehashing every tuple. ensureIndex routes through it; nil means the
	// index is maintained eagerly as the relation mutates.
	lazyOnce *sync.Once

	// frozen marks a relation whose columns alias a read-only snapshot
	// mapping: mutating it would fault on the mapped pages, so mutators
	// refuse up front with a typed panic/error instead.
	frozen bool
}

// NewRelation creates an empty relation with the given name and schema.
func NewRelation(name string, schema Schema) *Relation {
	r := &Relation{
		name:   name,
		schema: schema,
		cols:   make([][]Value, len(schema)),
	}
	if len(schema) <= 2 {
		r.pindex = make(map[uint64]int32)
	} else {
		r.windex = make(map[string]int32)
	}
	return r
}

// FromColumns constructs a relation directly over existing column storage —
// the restore half of the snapshot seam. The columns are adopted, not
// copied (they typically alias a read-only file mapping), the relation is
// marked immutable, and the duplicate index is deferred to first use
// (Position / Contains / inverted access), so opening a snapshot costs no
// per-tuple hashing. Rows are trusted to be duplicate-free: they were
// written by a relation that enforced set semantics.
func FromColumns(name string, schema Schema, cols [][]Value) (*Relation, error) {
	if len(cols) != len(schema) {
		return nil, fmt.Errorf("relation %s: %d columns for schema arity %d", name, len(cols), len(schema))
	}
	n := 0
	if len(cols) > 0 {
		n = len(cols[0])
		for a, col := range cols {
			if len(col) != n {
				return nil, fmt.Errorf("relation %s: column %d has %d rows, column 0 has %d", name, a, len(col), n)
			}
		}
		if n > MaxTuples {
			return nil, fmt.Errorf("relation %s: %d tuples exceeds the %d-tuple limit", name, n, MaxTuples)
		}
	}
	return &Relation{name: name, schema: schema, cols: cols, n: n, lazyOnce: new(sync.Once), frozen: true}, nil
}

// ensureIndex materializes a deferred duplicate index. Safe under concurrent
// probes (sync.Once); a no-op for eagerly indexed relations.
func (r *Relation) ensureIndex() {
	if o := r.lazyOnce; o != nil {
		o.Do(r.buildIndex)
	}
}

// buildIndex (re)builds the duplicate index from the columns: packed keys
// for arities ≤ 2 (falling back to string keys at the first unpackable
// tuple), string keys otherwise.
func (r *Relation) buildIndex() {
	if len(r.schema) <= 2 {
		all := r.allPositions()
		r.windex = nil
		r.pindex = make(map[uint64]int32, r.n)
		for i := 0; i < r.n; i++ {
			k, ok := r.packAt(i, all)
			if !ok {
				r.migrateWideIndex()
				return
			}
			r.pindex[k] = int32(i)
		}
		return
	}
	r.pindex = nil
	r.windex = make(map[string]int32, r.n)
	var buf [KeyBufCap]byte
	for i := 0; i < r.n; i++ {
		b := KeyScratch(&buf, len(r.cols))
		for a := range r.cols {
			b = appendValue(b, r.cols[a][i])
		}
		r.windex[string(b)] = int32(i)
	}
}

// mustBeMutable guards the in-place mutators: a frozen relation's columns
// alias a read-only snapshot mapping, and writing them would fault.
func (r *Relation) mustBeMutable(op string) {
	if r.frozen {
		panic(fmt.Sprintf("relation %s: %s on a snapshot-backed (immutable) relation", r.name, op))
	}
}

// Name returns the relation's name.
func (r *Relation) Name() string { return r.name }

// Schema returns the relation's schema. Callers must not mutate it.
func (r *Relation) Schema() Schema { return r.schema }

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.schema) }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Col returns the column of attribute position a: Col(a)[i] is tuple i's
// value at a. The slice aliases the relation's storage — callers must treat
// it as read-only, and may share it freely once the relation is no longer
// being mutated (see the concurrency contract above).
func (r *Relation) Col(a int) []Value { return r.cols[a] }

// At returns the value of tuple i at attribute position a.
func (r *Relation) At(i, a int) Value { return r.cols[a][i] }

// appendRow appends t's values to the columns (no duplicate check).
func (r *Relation) appendRow(t Tuple) {
	for a := range r.cols {
		r.cols[a] = append(r.cols[a], t[a])
	}
	r.n++
}

// keyAt returns the canonical string key of row i's values at positions.
func (r *Relation) keyAt(i int, positions []int) string {
	b := make([]byte, 0, 8*len(positions))
	for _, p := range positions {
		b = appendValue(b, r.cols[p][i])
	}
	return string(b)
}

// packAt packs row i's values at positions (len ≤ 2) into a uint64 key.
func (r *Relation) packAt(i int, positions []int) (uint64, bool) {
	switch len(positions) {
	case 0:
		return 0, true
	case 1:
		return uint64(r.cols[positions[0]][i]), true
	case 2:
		a, b := r.cols[positions[0]][i], r.cols[positions[1]][i]
		if !packable32(a) || !packable32(b) {
			return 0, false
		}
		return packPair(a, b), true
	}
	return 0, false
}

// migrateWideIndex rebuilds the duplicate index with string keys (first
// unpackable tuple on an arity-≤2 relation).
func (r *Relation) migrateWideIndex() {
	r.windex = make(map[string]int32, r.n)
	var buf [KeyBufCap]byte
	for i := 0; i < r.n; i++ {
		b := KeyScratch(&buf, len(r.cols))
		for a := range r.cols {
			b = appendValue(b, r.cols[a][i])
		}
		r.windex[string(b)] = int32(i)
	}
	r.pindex = nil
}

// MaxTuples is the hard per-relation size limit: tuple positions are stored
// as int32 throughout the engine (position indexes, groupings, the access
// index's flattened bucket tables), so a relation must stay below 2^31-1
// rows. Insert fails explicitly at the limit instead of wrapping silently.
const MaxTuples = 1<<31 - 1

// Insert adds a tuple. It returns an error on arity mismatch (or on a
// relation at MaxTuples) and reports whether the tuple was newly added
// (false means it was already present — set semantics). The tuple's values
// are copied; callers may reuse t.
func (r *Relation) Insert(t Tuple) (bool, error) {
	if len(t) != len(r.schema) {
		return false, fmt.Errorf("relation %s: tuple arity %d != schema arity %d", r.name, len(t), len(r.schema))
	}
	if r.frozen {
		return false, fmt.Errorf("relation %s: insert into a snapshot-backed (immutable) relation", r.name)
	}
	r.ensureIndex()
	if r.n >= MaxTuples {
		return false, fmt.Errorf("relation %s: at the %d-tuple limit (positions are int32)", r.name, MaxTuples)
	}
	if r.pindex != nil {
		if k, ok := packVals(t...); ok {
			if _, dup := r.pindex[k]; dup {
				return false, nil
			}
			r.pindex[k] = int32(r.n)
			r.appendRow(t)
			return true, nil
		}
		r.migrateWideIndex()
	}
	var buf [KeyBufCap]byte
	b := t.AppendKey(KeyScratch(&buf, len(t)))
	if _, dup := r.windex[string(b)]; dup {
		return false, nil
	}
	r.windex[string(b)] = int32(r.n)
	r.appendRow(t)
	return true, nil
}

// MustInsert inserts and panics on arity errors; duplicates are ignored.
func (r *Relation) MustInsert(vals ...Value) {
	if _, err := r.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// Tuple returns the i-th tuple in insertion order, gathered from the columns
// into a fresh Tuple. Hot paths should read columns directly (Col, At,
// ReadTuple) instead.
func (r *Relation) Tuple(i int) Tuple {
	t := make(Tuple, len(r.cols))
	for a, col := range r.cols {
		t[a] = col[i]
	}
	return t
}

// ReadTuple gathers the i-th tuple into buf (len must equal the arity) —
// the allocation-free form of Tuple.
func (r *Relation) ReadTuple(i int, buf Tuple) {
	for a, col := range r.cols {
		buf[a] = col[i]
	}
}

// Tuples materializes all tuples in insertion order (one contiguous backing
// array, two allocations). It is a copy: intended for cold paths — oracles,
// bulk loads, tests; hot paths iterate the columns. Callers must not mutate
// the returned tuples (they may share backing with future calls' captures).
func (r *Relation) Tuples() []Tuple {
	arity := len(r.cols)
	out := make([]Tuple, r.n)
	if arity == 0 {
		for i := range out {
			out[i] = Tuple{}
		}
		return out
	}
	backing := make([]Value, r.n*arity)
	for i := range out {
		t := backing[i*arity : (i+1)*arity : (i+1)*arity]
		for a, col := range r.cols {
			t[a] = col[i]
		}
		out[i] = t
	}
	return out
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t Tuple) bool { return r.Position(t) >= 0 }

// Position returns the insertion position of t, or -1. Allocation-free for
// packed indexes and for arities ≤ 32.
func (r *Relation) Position(t Tuple) int {
	if len(t) != len(r.schema) {
		return -1
	}
	r.ensureIndex()
	if r.pindex != nil {
		k, ok := packVals(t...)
		if !ok {
			return -1 // every stored tuple is packable; t cannot be present
		}
		if p, ok := r.pindex[k]; ok {
			return int(p)
		}
		return -1
	}
	var buf [KeyBufCap]byte
	b := t.AppendKey(KeyScratch(&buf, len(t)))
	if p, ok := r.windex[string(b)]; ok {
		return int(p)
	}
	return -1
}

// PositionProjected returns the insertion position of the tuple whose i-th
// value is src[proj[i]] — Position(src.Project(proj)) without the
// intermediate tuple, and allocation-free on the same terms as Position.
// len(proj) must equal the relation's arity. This is the constant-time
// "locate the node tuple inside an answer" step of inverted access
// (Algorithm 4 line 4).
func (r *Relation) PositionProjected(src Tuple, proj []int) int {
	if len(proj) != len(r.schema) {
		return -1
	}
	r.ensureIndex()
	if r.pindex != nil {
		var k uint64
		switch len(proj) {
		case 0:
			k = 0
		case 1:
			k = uint64(src[proj[0]])
		default:
			a, b := src[proj[0]], src[proj[1]]
			if !packable32(a) || !packable32(b) {
				return -1
			}
			k = packPair(a, b)
		}
		if p, ok := r.pindex[k]; ok {
			return int(p)
		}
		return -1
	}
	var buf [KeyBufCap]byte
	b := src.AppendProjectedKey(KeyScratch(&buf, len(proj)), proj)
	if p, ok := r.windex[string(b)]; ok {
		return int(p)
	}
	return -1
}

// Rename returns a view of r with a new name and schema (same tuples). The
// new schema must have the same arity. Columns and index are shared, not
// copied: this is how a query atom R(x, y) binds relation attributes to
// query variables. Mutating either relation afterwards corrupts the other;
// renamed views are read-only by convention.
func (r *Relation) Rename(name string, schema Schema) (*Relation, error) {
	if len(schema) != len(r.schema) {
		return nil, fmt.Errorf("relation %s: rename to arity %d != %d", r.name, len(schema), len(r.schema))
	}
	// The view shares the duplicate index, so a deferred index must exist
	// before the maps are captured (the view has no lazy hook of its own).
	r.ensureIndex()
	return &Relation{name: name, schema: schema, cols: r.cols, n: r.n, pindex: r.pindex, windex: r.windex, frozen: r.frozen}, nil
}

// Filter returns a new relation containing the tuples satisfying keep, in the
// original relative order (order preservation is required for compatible
// enumeration orders across selections of the same base relation). The tuple
// passed to keep is a scratch buffer reused between calls — read it, do not
// retain it.
func (r *Relation) Filter(name string, keep func(Tuple) bool) *Relation {
	out := NewRelation(name, r.schema)
	scratch := make(Tuple, len(r.cols))
	for i := 0; i < r.n; i++ {
		r.ReadTuple(i, scratch)
		if keep(scratch) {
			if _, err := out.Insert(scratch); err != nil {
				panic(err) // unreachable: schemas are identical
			}
		}
	}
	return out
}

// Project returns the projection of r onto attrs (set semantics, first
// occurrence wins, order preserved).
func (r *Relation) Project(name string, attrs []string) (*Relation, error) {
	pos, err := r.schema.Positions(attrs)
	if err != nil {
		return nil, err
	}
	out := NewRelation(name, Schema(attrs))
	scratch := make(Tuple, len(pos))
	for i := 0; i < r.n; i++ {
		for k, p := range pos {
			scratch[k] = r.cols[p][i]
		}
		if _, err := out.Insert(scratch); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SemijoinWith removes from r (in place) every tuple that has no matching
// tuple in s on their shared attributes: r ← r ⋉ s. If the relations share no
// attributes, r is unchanged when s is non-empty and emptied when s is empty
// (the join with an empty relation is empty). It returns the number of tuples
// removed. Linear time in |r| + |s|: both sides are grouped on the shared
// attributes once, a group-ID membership bitmap is computed with one lookup
// per distinct r-side key (not per tuple), and surviving rows are compacted
// column by column.
func (r *Relation) SemijoinWith(s *Relation) int {
	r.mustBeMutable("SemijoinWith")
	shared := r.schema.Intersect(s.schema)
	if len(shared) == 0 {
		if s.Len() > 0 {
			return 0
		}
		n := r.n
		r.clear()
		return n
	}
	rPos, _ := r.schema.Positions(shared)
	sPos, _ := s.schema.Positions(shared)
	rg := r.GroupBy(rPos)
	sg := s.GroupBy(sPos)
	keep := NewBitset(rg.NumGroups())
	removed := 0
	for g := 0; g < rg.NumGroups(); g++ {
		if _, ok := sg.LookupAt(r, int(rg.First[g]), rPos); ok {
			keep.Set(g)
		}
	}
	w := 0
	for i := 0; i < r.n; i++ {
		if !keep.Get(int(rg.GroupOf[i])) {
			removed++
			continue
		}
		if w != i {
			for a := range r.cols {
				r.cols[a][w] = r.cols[a][i]
			}
		}
		w++
	}
	if removed > 0 {
		for a := range r.cols {
			r.cols[a] = r.cols[a][:w]
		}
		r.n = w
		r.reindex()
	}
	return removed
}

// clear empties the relation in place.
func (r *Relation) clear() {
	for a := range r.cols {
		r.cols[a] = nil
	}
	r.n = 0
	if r.pindex != nil {
		r.pindex = make(map[uint64]int32)
	} else {
		r.windex = make(map[string]int32)
	}
}

// reindex rebuilds the duplicate index from the columns (positions changed).
func (r *Relation) reindex() { r.buildIndex() }

// allPositions returns [0, 1, ..., arity-1].
func (r *Relation) allPositions() []int {
	out := make([]int, len(r.cols))
	for i := range out {
		out[i] = i
	}
	return out
}

// Clone returns a deep copy of r: columns and index are fresh. Cloning a
// snapshot-backed relation yields an ordinary mutable heap relation.
func (r *Relation) Clone() *Relation {
	r.ensureIndex()
	out := NewRelation(r.name, r.schema)
	for a := range r.cols {
		out.cols[a] = append([]Value(nil), r.cols[a]...)
	}
	out.n = r.n
	if r.pindex != nil {
		out.pindex = make(map[uint64]int32, len(r.pindex))
		for k, v := range r.pindex {
			out.pindex[k] = v
		}
	} else {
		out.pindex = nil
		out.windex = make(map[string]int32, len(r.windex))
		for k, v := range r.windex {
			out.windex[k] = v
		}
	}
	return out
}

// SortTuples sorts the tuples lexicographically and rebuilds the index. Used
// by the canonical-order mode and by tests that need content-determined
// order; the enumeration algorithms never require sorted input.
func (r *Relation) SortTuples() {
	r.mustBeMutable("SortTuples")
	perm := make([]int, r.n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(x, y int) bool {
		i, j := perm[x], perm[y]
		for _, col := range r.cols {
			if col[i] != col[j] {
				return col[i] < col[j]
			}
		}
		return false
	})
	for a, col := range r.cols {
		nc := make([]Value, r.n)
		for x, i := range perm {
			nc[x] = col[i]
		}
		r.cols[a] = nc
	}
	r.reindex()
}

func (r *Relation) String() string {
	return fmt.Sprintf("%s%v[%d tuples]", r.name, r.schema, r.n)
}
