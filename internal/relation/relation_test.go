package relation

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTupleKeyDistinct(t *testing.T) {
	f := func(a, b []int64) bool {
		ta := make(Tuple, len(a))
		for i, v := range a {
			ta[i] = Value(v)
		}
		tb := make(Tuple, len(b))
		for i, v := range b {
			tb[i] = Value(v)
		}
		if ta.Equal(tb) {
			return ta.Key() == tb.Key()
		}
		return len(ta) != len(tb) || ta.Key() != tb.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTupleKeyFixedWidth(t *testing.T) {
	a := Tuple{1, 2}
	b := Tuple{1, 2, 3}
	if a.Key() == b.Key() {
		t.Fatal("keys of different arities collided")
	}
	// Negative values must round-trip distinctly too.
	c := Tuple{-1}
	d := Tuple{1}
	if c.Key() == d.Key() {
		t.Fatal("negative/positive collision")
	}
}

func TestTupleProjectKeyMatchesProject(t *testing.T) {
	tu := Tuple{10, 20, 30, 40}
	pos := []int{3, 1}
	if tu.ProjectKey(pos) != tu.Project(pos).Key() {
		t.Fatal("ProjectKey disagrees with Project().Key()")
	}
}

func TestTupleClone(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestDictInternRoundTrip(t *testing.T) {
	d := NewDict()
	v1 := d.Intern("hello")
	v2 := d.Intern("world")
	v3 := d.Intern("hello")
	if v1 != v3 {
		t.Fatal("re-interning gave a different value")
	}
	if v1 == v2 {
		t.Fatal("distinct strings interned to same value")
	}
	if d.String(v1) != "hello" || d.String(v2) != "world" {
		t.Fatal("String round trip failed")
	}
	if got := d.String(0); got != "" {
		t.Fatalf("value 0 should decode to empty string, got %q", got)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Fatal("Lookup found absent string")
	}
	if d.Len() != 3 { // "", hello, world
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestDictStringUninterned(t *testing.T) {
	d := NewDict()
	if got := d.String(12345); got != "#12345" {
		t.Fatalf("uninterned String = %q", got)
	}
}

// TestDictStringNoSlotCollision pins the bounds-check regression: the old
// comparison converted the value to int before comparing against the slice
// length, so a huge never-interned value (e.g. 2^32 + slot) truncates on
// 32-bit platforms and renders a *real* intern slot's string. The rendering
// of an out-of-range value must always be "#N", for any N.
func TestDictStringNoSlotCollision(t *testing.T) {
	d := NewDict()
	d.Intern("a") // slot 1
	d.Intern("b") // slot 2
	for _, v := range []Value{
		Value(1) << 32,       // truncates to 0 under int32 conversion
		Value(1)<<32 + 2,     // truncates to real slot 2
		Value(math.MaxInt64), // truncates to -1
		-1,                   // negative: never a slot
		Value(math.MinInt64), // negative extreme
		3,                    // one past the last real slot
	} {
		want := fmt.Sprintf("#%d", int64(v))
		if got := d.String(v); got != want {
			t.Errorf("String(%d) = %q, want %q (collided with an intern slot)", int64(v), got, want)
		}
	}
}

// TestDictStringDuringGrowth exercises the race-adjacent lookup path: while
// one goroutine interns new strings (growing byValue), concurrent String
// calls on a value that is out of range at call time must return either the
// stable "#N" rendering or — once the slot is filled — exactly the string
// interned at N, never a different slot's string.
func TestDictStringDuringGrowth(t *testing.T) {
	d := NewDict()
	const n = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			d.Intern(fmt.Sprintf("s%d", i))
		}
	}()
	probe := Value(n / 2) // becomes the slot of "s<n/2-1>" mid-run
	wantLate := fmt.Sprintf("s%d", int(probe)-1)
	wantEarly := fmt.Sprintf("#%d", int64(probe))
	for i := 0; i < 10000; i++ {
		if got := d.String(probe); got != wantEarly && got != wantLate {
			t.Fatalf("String(%d) = %q mid-growth, want %q or %q", int64(probe), got, wantEarly, wantLate)
		}
	}
	<-done
	if got := d.String(probe); got != wantLate {
		t.Fatalf("String(%d) = %q after growth, want %q", int64(probe), got, wantLate)
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("a", "b", "a"); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Fatal("empty attribute accepted")
	}
	s := MustSchema("x", "y", "z")
	if s.Position("y") != 1 || s.Position("w") != -1 {
		t.Fatal("Position wrong")
	}
	if !s.Contains("z") || s.Contains("q") {
		t.Fatal("Contains wrong")
	}
}

func TestSchemaIntersect(t *testing.T) {
	a := MustSchema("x", "y", "z")
	b := MustSchema("z", "w", "x")
	got := a.Intersect(b)
	if len(got) != 2 || got[0] != "x" || got[1] != "z" {
		t.Fatalf("Intersect = %v", got)
	}
}

func TestSchemaPositionsError(t *testing.T) {
	s := MustSchema("x", "y")
	if _, err := s.Positions([]string{"x", "q"}); err == nil {
		t.Fatal("missing attribute not reported")
	}
}

func TestRelationInsertSetSemantics(t *testing.T) {
	r := NewRelation("R", MustSchema("a", "b"))
	added, err := r.Insert(Tuple{1, 2})
	if err != nil || !added {
		t.Fatal("first insert failed")
	}
	added, err = r.Insert(Tuple{1, 2})
	if err != nil || added {
		t.Fatal("duplicate insert not deduplicated")
	}
	if _, err := r.Insert(Tuple{1}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if !r.Contains(Tuple{1, 2}) || r.Contains(Tuple{2, 1}) {
		t.Fatal("Contains wrong")
	}
	if r.Position(Tuple{1, 2}) != 0 || r.Position(Tuple{9, 9}) != -1 {
		t.Fatal("Position wrong")
	}
}

func TestRelationInsertionOrderPreserved(t *testing.T) {
	r := NewRelation("R", MustSchema("a"))
	for i := 0; i < 100; i++ {
		r.MustInsert(Value(i * 7 % 100))
	}
	for i := 0; i < 100; i++ {
		if r.Tuple(i)[0] != Value(i*7%100) {
			t.Fatal("insertion order not preserved")
		}
	}
}

func TestRelationRename(t *testing.T) {
	r := NewRelation("R", MustSchema("a", "b"))
	r.MustInsert(1, 2)
	v, err := r.Rename("S", MustSchema("x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "S" || !v.Schema().Equal(MustSchema("x", "y")) || v.Len() != 1 {
		t.Fatal("rename view wrong")
	}
	if _, err := r.Rename("S", MustSchema("x")); err == nil {
		t.Fatal("arity change accepted")
	}
}

func TestRelationFilterPreservesOrder(t *testing.T) {
	r := NewRelation("R", MustSchema("a"))
	for i := 0; i < 20; i++ {
		r.MustInsert(Value(i))
	}
	f := r.Filter("even", func(t Tuple) bool { return t[0]%2 == 0 })
	if f.Len() != 10 {
		t.Fatalf("filter Len = %d", f.Len())
	}
	for i := 0; i < 10; i++ {
		if f.Tuple(i)[0] != Value(2*i) {
			t.Fatal("filter order not preserved")
		}
	}
	// Original untouched.
	if r.Len() != 20 {
		t.Fatal("filter mutated source")
	}
}

func TestRelationProject(t *testing.T) {
	r := NewRelation("R", MustSchema("a", "b"))
	r.MustInsert(1, 10)
	r.MustInsert(1, 20)
	r.MustInsert(2, 10)
	p, err := r.Project("P", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("project Len = %d, want 2 (set semantics)", p.Len())
	}
	if p.Tuple(0)[0] != 1 || p.Tuple(1)[0] != 2 {
		t.Fatal("projection values or order wrong")
	}
	if _, err := r.Project("P", []string{"zz"}); err == nil {
		t.Fatal("projection onto unknown attribute accepted")
	}
}

func TestSemijoin(t *testing.T) {
	r := NewRelation("R", MustSchema("a", "b"))
	r.MustInsert(1, 10)
	r.MustInsert(2, 20)
	r.MustInsert(3, 30)
	s := NewRelation("S", MustSchema("b", "c"))
	s.MustInsert(10, 100)
	s.MustInsert(30, 300)
	removed := r.SemijoinWith(s)
	if removed != 1 || r.Len() != 2 {
		t.Fatalf("semijoin removed %d, len %d", removed, r.Len())
	}
	if !r.Contains(Tuple{1, 10}) || !r.Contains(Tuple{3, 30}) || r.Contains(Tuple{2, 20}) {
		t.Fatal("semijoin kept wrong tuples")
	}
	// Index must be rebuilt correctly.
	if r.Position(Tuple{3, 30}) != 1 {
		t.Fatal("index stale after semijoin")
	}
}

func TestSemijoinNoSharedAttrs(t *testing.T) {
	r := NewRelation("R", MustSchema("a"))
	r.MustInsert(1)
	s := NewRelation("S", MustSchema("b"))
	s.MustInsert(7)
	if removed := r.SemijoinWith(s); removed != 0 || r.Len() != 1 {
		t.Fatal("semijoin with disjoint non-empty relation must be a no-op")
	}
	empty := NewRelation("E", MustSchema("c"))
	if removed := r.SemijoinWith(empty); removed != 1 || r.Len() != 0 {
		t.Fatal("semijoin with disjoint empty relation must empty r")
	}
}

func TestSemijoinIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewRelation("R", MustSchema("a", "b"))
	s := NewRelation("S", MustSchema("b"))
	for i := 0; i < 200; i++ {
		r.MustInsert(Value(rng.Intn(50)), Value(rng.Intn(20)))
	}
	for i := 0; i < 10; i++ {
		s.MustInsert(Value(rng.Intn(20)))
	}
	r.SemijoinWith(s)
	n := r.Len()
	if again := r.SemijoinWith(s); again != 0 || r.Len() != n {
		t.Fatal("semijoin not idempotent")
	}
}

func TestRelationClone(t *testing.T) {
	r := NewRelation("R", MustSchema("a"))
	r.MustInsert(1)
	c := r.Clone()
	c.MustInsert(2)
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone shares tuple storage")
	}
	if !c.Contains(Tuple{1}) {
		t.Fatal("clone lost tuples")
	}
}

func TestRelationSortTuples(t *testing.T) {
	r := NewRelation("R", MustSchema("a", "b"))
	r.MustInsert(2, 1)
	r.MustInsert(1, 9)
	r.MustInsert(1, 3)
	r.SortTuples()
	want := []Tuple{{1, 3}, {1, 9}, {2, 1}}
	for i, w := range want {
		if !r.Tuple(i).Equal(w) {
			t.Fatalf("sorted order wrong at %d: %v", i, r.Tuple(i))
		}
		if r.Position(w) != i {
			t.Fatal("index stale after sort")
		}
	}
}

func TestDatabaseBasics(t *testing.T) {
	d := NewDatabase()
	r := d.MustCreate("R", "a", "b")
	r.MustInsert(1, 2)
	s := d.MustCreate("S", "b")
	s.MustInsert(2)

	got, err := d.Relation("R")
	if err != nil || got != r {
		t.Fatal("Relation lookup failed")
	}
	if _, err := d.Relation("missing"); err == nil {
		t.Fatal("missing relation not reported")
	}
	if !d.Has("S") || d.Has("T") {
		t.Fatal("Has wrong")
	}
	names := d.Names()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Fatalf("Names = %v", names)
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if _, err := d.Create("bad", "a", "a"); err == nil {
		t.Fatal("bad schema accepted")
	}
	v := d.Intern("x")
	if d.Dict().String(v) != "x" {
		t.Fatal("database dict broken")
	}
}
