package relation

import (
	"fmt"
	"sort"
)

// Database maps relation names to relations and owns the string dictionary
// for the instance.
type Database struct {
	relations map[string]*Relation
	dict      *Dict
}

// NewDatabase returns an empty database with a fresh dictionary.
func NewDatabase() *Database {
	return &Database{relations: make(map[string]*Relation), dict: NewDict()}
}

// NewDatabaseWithDict returns an empty database owning an existing
// dictionary — the restore path, where the dictionary was decoded from a
// snapshot before its relations.
func NewDatabaseWithDict(d *Dict) *Database {
	return &Database{relations: make(map[string]*Relation), dict: d}
}

// Dict returns the database's string dictionary.
func (d *Database) Dict() *Dict { return d.dict }

// Add registers a relation under its name, replacing any previous relation of
// that name.
func (d *Database) Add(r *Relation) { d.relations[r.Name()] = r }

// Create makes an empty relation with the given name and schema, registers it
// and returns it.
func (d *Database) Create(name string, attrs ...string) (*Relation, error) {
	s, err := NewSchema(attrs...)
	if err != nil {
		return nil, err
	}
	r := NewRelation(name, s)
	d.Add(r)
	return r, nil
}

// MustCreate is Create that panics on error.
func (d *Database) MustCreate(name string, attrs ...string) *Relation {
	r, err := d.Create(name, attrs...)
	if err != nil {
		panic(err)
	}
	return r
}

// Relation returns the relation registered under name, or an error.
func (d *Database) Relation(name string) (*Relation, error) {
	r, ok := d.relations[name]
	if !ok {
		return nil, fmt.Errorf("relation: no relation named %q", name)
	}
	return r, nil
}

// Has reports whether a relation of that name exists.
func (d *Database) Has(name string) bool {
	_, ok := d.relations[name]
	return ok
}

// Names returns the registered relation names, sorted.
func (d *Database) Names() []string {
	out := make([]string, 0, len(d.relations))
	for n := range d.relations {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Size returns the total number of tuples across all relations (the |D| that
// "linear preprocessing" is measured against).
func (d *Database) Size() int {
	n := 0
	for _, r := range d.relations {
		n += r.Len()
	}
	return n
}

// Intern is shorthand for d.Dict().Intern.
func (d *Database) Intern(s string) Value { return d.dict.Intern(s) }
