// Snapshot encoding of the relational substrate: dictionaries and relations.
// Numeric columns are the bulk of an instance and restore zero-copy (the
// []Value views alias the snapshot mapping via FromColumns); strings —
// dictionary entries, names, schemas — are validated and copied.
package relation

import (
	"unsafe"

	"repro/internal/snapshot"
)

// valuesAsInt64s reinterprets a column for raw serialization (Value is a
// defined int64, so the memory layouts are identical).
func valuesAsInt64s(v []Value) []int64 {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&v[0])), len(v))
}

// int64sAsValues is the inverse view, used on restored file regions.
func int64sAsValues(v []int64) []Value {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*Value)(unsafe.Pointer(&v[0])), len(v))
}

// RestoreGrouping rebuilds a Grouping from its persisted per-tuple group
// IDs: First is reconstructed in one scan, the key maps are not restored
// (LookupAt reports a miss — it is a build-time facility; probes only read
// GroupOf). Every group in [0, numGroups) must be inhabited, as GroupBy
// guarantees for the groupings it produced.
func RestoreGrouping(groupOf []uint32, numGroups int, width int) (*Grouping, error) {
	if numGroups < 0 || numGroups > len(groupOf) {
		return nil, snapshot.Corruptf("grouping: %d groups over %d tuples", numGroups, len(groupOf))
	}
	first := make([]int32, numGroups)
	for i := range first {
		first[i] = -1
	}
	for i, g := range groupOf {
		if g >= uint32(numGroups) {
			return nil, snapshot.Corruptf("grouping: tuple %d has group %d of %d", i, g, numGroups)
		}
		if first[g] < 0 {
			first[g] = int32(i)
		}
	}
	for g, f := range first {
		if f < 0 {
			return nil, snapshot.Corruptf("grouping: group %d is empty", g)
		}
	}
	return &Grouping{width: width, GroupOf: groupOf, First: first}, nil
}

// MarshalDict appends the dictionary's value table.
func MarshalDict(s *snapshot.SectionWriter, d *Dict) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	s.U64(uint64(len(d.byValue)))
	for _, str := range d.byValue {
		s.Str(str)
	}
}

// UnmarshalDict restores a dictionary (reverse map deferred; see
// NewDictFromStrings).
func UnmarshalDict(r *snapshot.Reader) (*Dict, error) {
	n := r.U64()
	// Each entry costs at least its 8-byte length prefix, so a count beyond
	// Remaining()/8 is structurally impossible: reject before allocating.
	if n > uint64(r.Remaining()/8) {
		return nil, snapshot.Corruptf("dictionary count %d exceeds payload", n)
	}
	byValue := make([]string, n)
	for i := range byValue {
		byValue[i] = r.Str()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	d, err := NewDictFromStrings(byValue)
	if err != nil {
		return nil, snapshot.Corruptf("%v", err)
	}
	return d, nil
}

// MarshalRelation appends the relation: name, schema, and one raw column per
// attribute. The duplicate index is not persisted — restored relations
// rebuild it lazily on first membership probe.
func MarshalRelation(s *snapshot.SectionWriter, r *Relation) {
	s.Str(r.name)
	s.U64(uint64(len(r.schema)))
	for _, a := range r.schema {
		s.Str(a)
	}
	s.U64(uint64(r.n))
	for _, col := range r.cols {
		s.I64s(valuesAsInt64s(col))
	}
}

// UnmarshalRelation restores a relation whose columns view the snapshot
// region in place (immutable, deferred duplicate index).
func UnmarshalRelation(r *snapshot.Reader) (*Relation, error) {
	name := r.Str()
	arity := r.U64()
	if arity > uint64(r.Remaining()/8) {
		return nil, snapshot.Corruptf("relation %s: arity %d exceeds payload", name, arity)
	}
	attrs := make([]string, arity)
	for i := range attrs {
		attrs[i] = r.Str()
	}
	n := r.U64()
	cols := make([][]Value, arity)
	for a := range cols {
		col := int64sAsValues(r.I64s())
		if uint64(len(col)) != n && r.Err() == nil {
			return nil, snapshot.Corruptf("relation %s: column %d has %d rows, want %d", name, a, len(col), n)
		}
		cols[a] = col
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	schema, err := NewSchema(attrs...)
	if err != nil {
		return nil, snapshot.Corruptf("relation %s: %v", name, err)
	}
	rel, err := FromColumns(name, schema, cols)
	if err != nil {
		return nil, snapshot.Corruptf("%v", err)
	}
	// Arity-0 relations carry no columns, so n must be restored explicitly
	// (0 or 1 are the only coherent values: a nullary relation is a bool).
	if arity == 0 {
		if n > 1 {
			return nil, snapshot.Corruptf("relation %s: nullary relation with %d tuples", name, n)
		}
		rel.n = int(n)
	}
	return rel, nil
}
