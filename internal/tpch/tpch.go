// Package tpch is a deterministic, dbgen-style generator for the subset of
// the TPC-H schema exercised by the paper's experiments (Section 6 and
// Appendix B.1): REGION, NATION, SUPPLIER, CUSTOMER, PART, PARTSUPP, ORDERS
// and LINEITEM. It reproduces the structural properties the enumeration
// algorithms interact with — key spaces, join fan-outs (exactly four
// suppliers per part, 1–7 lineitems per order, 25 nations over 5 regions,
// one third of customers without orders) — at a configurable scale factor,
// substituting for the original C dbgen tool (see DESIGN.md §4).
//
// Nation and region keys follow the official TPC-H mapping, so the paper's
// selection constants carry over: nationkey 24 = UNITED STATES and
// nationkey 23 = UNITED KINGDOM (queries QA and QE).
package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/relation"
)

// Cardinality bases at scale factor 1 (dbgen's numbers).
const (
	BaseSuppliers = 10_000
	BaseCustomers = 150_000
	BaseParts     = 200_000
	BaseOrders    = 1_500_000
	// PARTSUPP is 4 rows per part; LINEITEM averages 4 rows per order.
)

// regions is the official TPC-H region table (key = slice index).
var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nations is the official TPC-H nation table: name and region key, with the
// nation key equal to the slice index.
var nations = []struct {
	Name      string
	RegionKey int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"RUSSIA", 3}, {"SAUDI ARABIA", 4}, {"VIETNAM", 2},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

// NationKeyUS and NationKeyUK are the selection constants used by the
// paper's QA/QE and QS7/QC7 queries.
const (
	NationKeyUS = 24
	NationKeyUK = 23
)

// Config controls generation.
type Config struct {
	// ScaleFactor scales all table cardinalities (dbgen's -s). The paper
	// uses 5; the test/bench default here is far smaller.
	ScaleFactor float64
	// Seed makes generation deterministic.
	Seed int64
}

// Generate builds the database. Relation schemas (column order matters for
// the query definitions in internal/tpchq):
//
//	region  (r_regionkey, r_name)
//	nation  (n_nationkey, n_name, n_regionkey)
//	supplier(s_suppkey, s_name, s_nationkey)
//	customer(c_custkey, c_name, c_nationkey)
//	part    (p_partkey, p_name)
//	partsupp(ps_partkey, ps_suppkey)
//	orders  (o_orderkey, o_custkey)
//	lineitem(l_orderkey, l_partkey, l_suppkey, l_linenumber)
func Generate(cfg Config) (*relation.Database, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %v", cfg.ScaleFactor)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := relation.NewDatabase()

	nSupp := scaled(BaseSuppliers, cfg.ScaleFactor)
	nCust := scaled(BaseCustomers, cfg.ScaleFactor)
	nPart := scaled(BaseParts, cfg.ScaleFactor)
	nOrd := scaled(BaseOrders, cfg.ScaleFactor)

	region := db.MustCreate("region", "r_regionkey", "r_name")
	for k, name := range regions {
		region.MustInsert(relation.Value(k), db.Intern(name))
	}

	nation := db.MustCreate("nation", "n_nationkey", "n_name", "n_regionkey")
	for k, n := range nations {
		nation.MustInsert(relation.Value(k), db.Intern(n.Name), relation.Value(n.RegionKey))
	}

	supplier := db.MustCreate("supplier", "s_suppkey", "s_name", "s_nationkey")
	for i := 1; i <= nSupp; i++ {
		supplier.MustInsert(
			relation.Value(i),
			db.Intern(fmt.Sprintf("Supplier#%09d", i)),
			relation.Value(rng.Intn(len(nations))),
		)
	}

	customer := db.MustCreate("customer", "c_custkey", "c_name", "c_nationkey")
	for i := 1; i <= nCust; i++ {
		customer.MustInsert(
			relation.Value(i),
			db.Intern(fmt.Sprintf("Customer#%09d", i)),
			relation.Value(rng.Intn(len(nations))),
		)
	}

	part := db.MustCreate("part", "p_partkey", "p_name")
	for i := 1; i <= nPart; i++ {
		part.MustInsert(relation.Value(i), db.Intern(partName(rng)))
	}

	// PARTSUPP: exactly 4 suppliers per part, spread deterministically like
	// dbgen's formula so supplier load is balanced.
	partsupp := db.MustCreate("partsupp", "ps_partkey", "ps_suppkey")
	for p := 1; p <= nPart; p++ {
		for i := 0; i < 4; i++ {
			s := partSupplier(p, i, nSupp)
			partsupp.MustInsert(relation.Value(p), relation.Value(s))
		}
	}

	// ORDERS: dbgen never assigns orders to custkeys divisible by 3, leaving
	// one third of customers orderless (dangling w.r.t. customer joins).
	orders := db.MustCreate("orders", "o_orderkey", "o_custkey")
	lineitem := db.MustCreate("lineitem", "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber")
	for o := 1; o <= nOrd; o++ {
		c := 1 + rng.Intn(nCust)
		for c%3 == 0 {
			c = 1 + rng.Intn(nCust)
		}
		orders.MustInsert(relation.Value(o), relation.Value(c))
		nl := 1 + rng.Intn(7)
		for l := 1; l <= nl; l++ {
			p := 1 + rng.Intn(nPart)
			s := partSupplier(p, rng.Intn(4), nSupp)
			lineitem.MustInsert(
				relation.Value(o), relation.Value(p), relation.Value(s), relation.Value(l),
			)
		}
	}
	return db, nil
}

// partSupplier mirrors dbgen's PART_SUPP_BRIDGE: the i-th (0..3) supplier of
// part p among S suppliers, guaranteed distinct for the four i values when
// S ≥ 4.
func partSupplier(p, i, s int) int {
	return (p+i*(s/4+(p-1+i)/s))%s + 1
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

var partAdjectives = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
	"chiffon", "chocolate", "coral", "cornflower",
}

var partNouns = []string{
	"anchor", "ball", "bearing", "bracket", "casing", "coil", "cog", "dynamo",
	"fitting", "flange", "gear", "gasket", "hinge", "lever", "piston", "rod",
	"spring", "valve",
}

func partName(rng *rand.Rand) string {
	return partAdjectives[rng.Intn(len(partAdjectives))] + " " +
		partNouns[rng.Intn(len(partNouns))]
}

// NationName returns the TPC-H nation name for a key (for display).
func NationName(k int) string {
	if k < 0 || k >= len(nations) {
		return fmt.Sprintf("NATION-%d", k)
	}
	return nations[k].Name
}

// RegionName returns the TPC-H region name for a key.
func RegionName(k int) string {
	if k < 0 || k >= len(regions) {
		return fmt.Sprintf("REGION-%d", k)
	}
	return regions[k]
}

// NumNations returns the number of nations (always 25).
func NumNations() int { return len(nations) }
