package tpch

import (
	"testing"

	"repro/internal/relation"
)

func gen(t *testing.T, sf float64, seed int64) *relation.Database {
	t.Helper()
	db, err := Generate(Config{ScaleFactor: sf, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateCardinalities(t *testing.T) {
	db := gen(t, 0.01, 1)
	expect := map[string]int{
		"region":   5,
		"nation":   25,
		"supplier": 100,
		"customer": 1500,
		"part":     2000,
		"partsupp": 8000,
		"orders":   15000,
	}
	for name, want := range expect {
		r, err := db.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		if r.Len() != want {
			t.Errorf("%s: %d rows, want %d", name, r.Len(), want)
		}
	}
	li, _ := db.Relation("lineitem")
	// 1..7 lineitems per order, expectation 4: allow a broad band.
	if li.Len() < 15000 || li.Len() > 7*15000 {
		t.Errorf("lineitem: %d rows out of range", li.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen(t, 0.005, 7)
	b := gen(t, 0.005, 7)
	for _, name := range a.Names() {
		ra, _ := a.Relation(name)
		rb, _ := b.Relation(name)
		if ra.Len() != rb.Len() {
			t.Fatalf("%s: nondeterministic cardinality", name)
		}
		for i := 0; i < ra.Len(); i++ {
			if !ra.Tuple(i).Equal(rb.Tuple(i)) {
				t.Fatalf("%s: nondeterministic tuple %d", name, i)
			}
		}
	}
	c := gen(t, 0.005, 8)
	ra, _ := a.Relation("orders")
	rc, _ := c.Relation("orders")
	diff := false
	for i := 0; i < ra.Len() && i < rc.Len(); i++ {
		if !ra.Tuple(i).Equal(rc.Tuple(i)) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical orders")
	}
}

func TestPartsuppFanout(t *testing.T) {
	db := gen(t, 0.01, 2)
	ps, _ := db.Relation("partsupp")
	counts := make(map[relation.Value]int)
	for _, tu := range ps.Tuples() {
		counts[tu[0]]++
	}
	for p, c := range counts {
		if c != 4 {
			t.Fatalf("part %d has %d suppliers, want 4", p, c)
		}
	}
}

func TestForeignKeysValid(t *testing.T) {
	db := gen(t, 0.005, 3)
	nation, _ := db.Relation("nation")
	region, _ := db.Relation("region")
	supplier, _ := db.Relation("supplier")
	customer, _ := db.Relation("customer")
	orders, _ := db.Relation("orders")
	lineitem, _ := db.Relation("lineitem")
	part, _ := db.Relation("part")

	regionKeys := make(map[relation.Value]bool)
	for _, tu := range region.Tuples() {
		regionKeys[tu[0]] = true
	}
	for _, tu := range nation.Tuples() {
		if !regionKeys[tu[2]] {
			t.Fatalf("nation %v has invalid region", tu)
		}
	}
	nationKeys := make(map[relation.Value]bool)
	for _, tu := range nation.Tuples() {
		nationKeys[tu[0]] = true
	}
	for _, tu := range supplier.Tuples() {
		if !nationKeys[tu[2]] {
			t.Fatalf("supplier %v invalid nation", tu)
		}
	}
	for _, tu := range customer.Tuples() {
		if !nationKeys[tu[2]] {
			t.Fatalf("customer %v invalid nation", tu)
		}
	}
	custKeys := make(map[relation.Value]bool)
	for _, tu := range customer.Tuples() {
		custKeys[tu[0]] = true
	}
	orderKeys := make(map[relation.Value]bool)
	for _, tu := range orders.Tuples() {
		if !custKeys[tu[1]] {
			t.Fatalf("order %v invalid customer", tu)
		}
		if tu[1]%3 == 0 {
			t.Fatalf("order %v assigned to custkey divisible by 3", tu)
		}
		orderKeys[tu[0]] = true
	}
	partKeys := make(map[relation.Value]bool)
	for _, tu := range part.Tuples() {
		partKeys[tu[0]] = true
	}
	suppKeys := make(map[relation.Value]bool)
	for _, tu := range supplier.Tuples() {
		suppKeys[tu[0]] = true
	}
	for _, tu := range lineitem.Tuples() {
		if !orderKeys[tu[0]] || !partKeys[tu[1]] || !suppKeys[tu[2]] {
			t.Fatalf("lineitem %v has invalid foreign key", tu)
		}
	}
}

func TestNationConstants(t *testing.T) {
	db := gen(t, 0.001, 1)
	nation, _ := db.Relation("nation")
	us := nation.Tuple(NationKeyUS)
	uk := nation.Tuple(NationKeyUK)
	if db.Dict().String(us[1]) != "UNITED STATES" {
		t.Fatalf("nationkey 24 = %q", db.Dict().String(us[1]))
	}
	if db.Dict().String(uk[1]) != "UNITED KINGDOM" {
		t.Fatalf("nationkey 23 = %q", db.Dict().String(uk[1]))
	}
	if NationName(NationKeyUS) != "UNITED STATES" || RegionName(3) != "EUROPE" {
		t.Fatal("name helpers wrong")
	}
	if NationName(-1) == "" || RegionName(99) == "" {
		t.Fatal("out-of-range names empty")
	}
	if NumNations() != 25 {
		t.Fatal("NumNations != 25")
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := Generate(Config{ScaleFactor: 0}); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Generate(Config{ScaleFactor: -1}); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestTinyScaleStillWorks(t *testing.T) {
	db := gen(t, 0.0001, 4)
	// Every base table must be non-empty even at absurdly small scale.
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		r, err := db.Relation(name)
		if err != nil || r.Len() == 0 {
			t.Fatalf("%s empty at tiny scale", name)
		}
	}
}
