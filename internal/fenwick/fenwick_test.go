package fenwick

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatal("empty tree wrong")
	}
	if tr.FindPrefix(0) != -1 {
		t.Fatal("FindPrefix on empty must be -1")
	}
}

func TestAppendAndPrefix(t *testing.T) {
	tr := New([]int64{3, 0, 5, 2})
	if tr.Len() != 4 || tr.Total() != 10 {
		t.Fatalf("len/total = %d/%d", tr.Len(), tr.Total())
	}
	wantPrefix := []int64{0, 3, 3, 8, 10}
	for n, w := range wantPrefix {
		if got := tr.Prefix(n); got != w {
			t.Fatalf("Prefix(%d) = %d, want %d", n, got, w)
		}
	}
	if tr.Range(1, 3) != 5 {
		t.Fatalf("Range(1,3) = %d", tr.Range(1, 3))
	}
}

func TestSetAddValue(t *testing.T) {
	tr := New([]int64{1, 1, 1})
	tr.Set(1, 5)
	if tr.Value(1) != 5 || tr.Total() != 7 {
		t.Fatal("Set wrong")
	}
	tr.Add(0, 2)
	if tr.Value(0) != 3 || tr.Prefix(1) != 3 {
		t.Fatal("Add wrong")
	}
	tr.Add(2, 0) // no-op fast path
	if tr.Total() != 9 {
		t.Fatal("no-op Add changed total")
	}
}

func TestFindPrefixKnown(t *testing.T) {
	tr := New([]int64{3, 0, 5, 2})
	// Ranges: [0,3) → pos 0; pos 1 empty; [3,8) → pos 2; [8,10) → pos 3.
	cases := map[int64]int{0: 0, 2: 0, 3: 2, 7: 2, 8: 3, 9: 3}
	for target, want := range cases {
		if got := tr.FindPrefix(target); got != want {
			t.Fatalf("FindPrefix(%d) = %d, want %d", target, got, want)
		}
	}
	if tr.FindPrefix(10) != -1 || tr.FindPrefix(-1) != -1 {
		t.Fatal("out-of-range FindPrefix")
	}
}

// TestQuickAgainstNaive fuzzes mixed operations against a plain slice.
func TestQuickAgainstNaive(t *testing.T) {
	prop := func(seed int64, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := int(opsRaw)%200 + 10
		var tr Tree
		var naive []int64
		for i := 0; i < ops; i++ {
			switch rng.Intn(4) {
			case 0: // append
				v := int64(rng.Intn(10))
				tr.Append(v)
				naive = append(naive, v)
			case 1: // set
				if len(naive) == 0 {
					continue
				}
				p := rng.Intn(len(naive))
				v := int64(rng.Intn(10))
				tr.Set(p, v)
				naive[p] = v
			case 2: // prefix check
				n := 0
				if len(naive) > 0 {
					n = rng.Intn(len(naive) + 1)
				}
				var want int64
				for _, v := range naive[:n] {
					want += v
				}
				if tr.Prefix(n) != want {
					return false
				}
			case 3: // find-prefix check
				var total int64
				for _, v := range naive {
					total += v
				}
				if total == 0 {
					if tr.FindPrefix(0) != -1 {
						return false
					}
					continue
				}
				target := rng.Int63n(total)
				// Naive scan.
				var acc int64
				want := -1
				for p, v := range naive {
					if target < acc+v {
						want = p
						break
					}
					acc += v
				}
				if tr.FindPrefix(target) != want {
					return false
				}
			}
		}
		// Final totals agree.
		var want int64
		for _, v := range naive {
			want += v
		}
		return tr.Total() == want && tr.Len() == len(naive)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFindPrefixSkipsZeros(t *testing.T) {
	tr := New([]int64{0, 0, 4, 0, 1})
	if tr.FindPrefix(0) != 2 {
		t.Fatalf("FindPrefix(0) = %d, want 2", tr.FindPrefix(0))
	}
	if tr.FindPrefix(4) != 4 {
		t.Fatalf("FindPrefix(4) = %d, want 4", tr.FindPrefix(4))
	}
}

func TestLargeAppendSequence(t *testing.T) {
	var tr Tree
	for i := 0; i < 10000; i++ {
		tr.Append(1)
	}
	if tr.Total() != 10000 {
		t.Fatal("total wrong")
	}
	if tr.FindPrefix(5000) != 5000 {
		t.Fatal("identity find wrong")
	}
	if tr.Prefix(7777) != 7777 {
		t.Fatal("prefix wrong")
	}
}
