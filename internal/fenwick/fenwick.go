// Package fenwick implements a binary indexed tree (Fenwick tree) over
// int64, supporting point updates, prefix sums, and logarithmic prefix
// search — the substrate for the dynamic variant of the paper's
// random-access index (internal/dynaccess), where per-tuple weights change
// under updates and the static prefix-sum arrays of Algorithm 2 no longer
// suffice.
package fenwick

// Tree is a Fenwick tree over positions 0..Len()-1. The zero value is an
// empty tree ready for Append.
type Tree struct {
	// tree[i] covers a range ending at position i (1-based internally).
	tree []int64
	vals []int64
	sum  int64
}

// New returns a tree initialized with the given values.
func New(values []int64) *Tree {
	t := &Tree{}
	for _, v := range values {
		t.Append(v)
	}
	return t
}

// Len returns the number of positions.
func (t *Tree) Len() int { return len(t.vals) }

// Total returns the sum of all values in constant time.
func (t *Tree) Total() int64 { return t.sum }

// Value returns the value at position i.
func (t *Tree) Value(i int) int64 { return t.vals[i] }

// Append adds a new position holding v at the end (amortized O(log n)).
func (t *Tree) Append(v int64) {
	t.vals = append(t.vals, v)
	t.tree = append(t.tree, 0)
	// Initialize the new internal node from already-present prefix sums:
	// tree[i] (1-based i = len) covers (i - lowbit(i), i].
	i := len(t.tree) // 1-based index of the new node
	low := i - (i & -i)
	t.tree[i-1] = t.Prefix(i-1) - t.Prefix(low) + v
	t.sum += v
}

// Set changes the value at position i to v (O(log n)).
func (t *Tree) Set(i int, v int64) {
	t.Add(i, v-t.vals[i])
}

// Add adds delta to the value at position i (O(log n)).
func (t *Tree) Add(i int, delta int64) {
	if delta == 0 {
		return
	}
	t.vals[i] += delta
	t.sum += delta
	for j := i + 1; j <= len(t.tree); j += j & -j {
		t.tree[j-1] += delta
	}
}

// Prefix returns the sum of values at positions 0..n-1 (O(log n)).
func (t *Tree) Prefix(n int) int64 {
	var s int64
	for j := n; j > 0; j -= j & -j {
		s += t.tree[j-1]
	}
	return s
}

// Range returns the sum of positions lo..hi-1.
func (t *Tree) Range(lo, hi int) int64 { return t.Prefix(hi) - t.Prefix(lo) }

// FindPrefix returns the smallest position p such that
// Prefix(p+1) > target, i.e. the position whose value range contains the
// target offset, assuming all values are non-negative. It returns -1 when
// target ≥ Total(). O(log n).
func (t *Tree) FindPrefix(target int64) int {
	if target < 0 || target >= t.sum {
		return -1
	}
	pos := 0 // 1-based position walked so far
	// Highest power of two ≤ len.
	bit := 1
	for bit<<1 <= len(t.tree) {
		bit <<= 1
	}
	for ; bit > 0; bit >>= 1 {
		next := pos + bit
		if next <= len(t.tree) && t.tree[next-1] <= target {
			target -= t.tree[next-1]
			pos = next
		}
	}
	return pos // 0-based position = pos (the walk stops before the answer)
}
