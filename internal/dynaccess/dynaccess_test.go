package dynaccess

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/access"
	"repro/internal/naive"
	"repro/internal/query"
	"repro/internal/relation"
)

func chainQ() *query.CQ {
	return query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
}

func freshDB() *relation.Database {
	db := relation.NewDatabase()
	db.MustCreate("R", "r1", "r2")
	db.MustCreate("S", "s1", "s2")
	return db
}

func TestRejectsNonFullAndCyclic(t *testing.T) {
	db := freshDB()
	proj := query.MustCQ("p", []string{"a"},
		query.NewAtom("R", query.V("a"), query.V("b")))
	if _, err := New(db, proj); !errors.Is(err, ErrNotFull) {
		t.Fatalf("err = %v", err)
	}
	db.MustCreate("T", "t1", "t2")
	tri := query.MustCQ("tri", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
		query.NewAtom("T", query.V("a"), query.V("c")))
	if _, err := New(db, tri); !errors.Is(err, ErrCyclic) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertDeleteBasic(t *testing.T) {
	db := freshDB()
	idx, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 0 {
		t.Fatal("empty index count != 0")
	}
	ins := func(rel string, vals ...relation.Value) {
		if _, err := idx.Insert(rel, relation.Tuple(vals)); err != nil {
			t.Fatal(err)
		}
	}
	ins("R", 1, 10)
	if idx.Count() != 0 {
		t.Fatal("half a join counted")
	}
	ins("S", 10, 100)
	if idx.Count() != 1 {
		t.Fatalf("Count = %d, want 1", idx.Count())
	}
	a, err := idx.Access(0)
	if err != nil || !a.Equal(relation.Tuple{1, 10, 100}) {
		t.Fatalf("Access(0) = %v, %v", a, err)
	}
	j, ok := idx.InvertedAccess(a)
	if !ok || j != 0 {
		t.Fatal("inverted access wrong")
	}
	// Duplicate insert: no-op.
	changed, err := idx.Insert("R", relation.Tuple{1, 10})
	if err != nil || changed {
		t.Fatal("duplicate insert changed index")
	}
	// Delete and re-insert (tombstone revive).
	if changed, _ := idx.Delete("S", relation.Tuple{10, 100}); !changed {
		t.Fatal("delete failed")
	}
	if idx.Count() != 0 {
		t.Fatal("count after delete")
	}
	if changed, _ := idx.Delete("S", relation.Tuple{10, 100}); changed {
		t.Fatal("double delete changed index")
	}
	if changed, _ := idx.Insert("S", relation.Tuple{10, 100}); !changed {
		t.Fatal("revive failed")
	}
	if idx.Count() != 1 {
		t.Fatal("count after revive")
	}
	// Unknown relation.
	if _, err := idx.Insert("Z", relation.Tuple{1}); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if _, err := idx.Delete("Z", relation.Tuple{1}); err == nil {
		t.Fatal("unknown relation accepted on delete")
	}
	// Arity errors.
	if _, err := idx.Insert("R", relation.Tuple{1}); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func TestAccessOutOfBounds(t *testing.T) {
	db := freshDB()
	idx, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Access(0); !errors.Is(err, access.ErrOutOfBounds) {
		t.Fatal("empty access succeeded")
	}
}

// TestRandomUpdateSequenceAgainstOracle is the main test: a random sequence
// of inserts/deletes on the base relations, checking after every step that
// Count/Access/InvertedAccess exactly reflect the naive evaluation of the
// current database.
func TestRandomUpdateSequenceAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		db := freshDB()
		q := chainQ()
		idx, err := New(db, q)
		if err != nil {
			t.Fatal(err)
		}
		// Shadow database for the oracle.
		shadow := freshDB()
		type fact struct {
			rel string
			t   relation.Tuple
		}
		var live []fact
		for step := 0; step < 300; step++ {
			if len(live) == 0 || rng.Intn(3) > 0 {
				rel := []string{"R", "S"}[rng.Intn(2)]
				tu := relation.Tuple{relation.Value(rng.Intn(5)), relation.Value(rng.Intn(5))}
				if _, err := idx.Insert(rel, tu); err != nil {
					t.Fatal(err)
				}
				sr, _ := shadow.Relation(rel)
				if added, _ := sr.Insert(tu.Clone()); added {
					live = append(live, fact{rel, tu})
				}
			} else {
				i := rng.Intn(len(live))
				f := live[i]
				if _, err := idx.Delete(f.rel, f.t); err != nil {
					t.Fatal(err)
				}
				// Rebuild the shadow relation without the deleted tuple
				// (relation.Relation has no delete; recreate).
				old, _ := shadow.Relation(f.rel)
				repl := relation.NewRelation(f.rel, old.Schema())
				for _, tu := range old.Tuples() {
					if !tu.Equal(f.t) {
						if _, err := repl.Insert(tu); err != nil {
							t.Fatal(err)
						}
					}
				}
				shadow.Add(repl)
				live = append(live[:i], live[i+1:]...)
			}

			if step%10 != 0 {
				continue // full check every 10 steps (oracle is slow)
			}
			want, err := naive.Evaluate(shadow, q)
			if err != nil {
				t.Fatal(err)
			}
			if idx.Count() != int64(len(want)) {
				t.Fatalf("seed %d step %d: Count = %d, oracle %d", seed, step, idx.Count(), len(want))
			}
			seen := make(map[string]bool)
			for j := int64(0); j < idx.Count(); j++ {
				a, err := idx.Access(j)
				if err != nil {
					t.Fatalf("seed %d step %d: Access(%d): %v", seed, step, j, err)
				}
				if seen[a.Key()] {
					t.Fatalf("seed %d step %d: duplicate answer", seed, step)
				}
				seen[a.Key()] = true
				jj, ok := idx.InvertedAccess(a)
				if !ok || jj != j {
					t.Fatalf("seed %d step %d: inverted access mismatch", seed, step)
				}
			}
			for _, w := range want {
				if !seen[w.Key()] {
					t.Fatalf("seed %d step %d: missing answer %v", seed, step, w)
				}
			}
		}
	}
}

func TestThreeLevelCascade(t *testing.T) {
	// Chain of three relations: updates at the leaf must cascade through the
	// middle node to the root.
	db := relation.NewDatabase()
	db.MustCreate("R", "r1", "r2")
	db.MustCreate("S", "s1", "s2")
	db.MustCreate("U", "u1", "u2")
	q := query.MustCQ("q", []string{"a", "b", "c", "d"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")),
		query.NewAtom("U", query.V("c"), query.V("d")))
	idx, err := New(db, q)
	if err != nil {
		t.Fatal(err)
	}
	must := func(rel string, vals ...relation.Value) {
		if _, err := idx.Insert(rel, relation.Tuple(vals)); err != nil {
			t.Fatal(err)
		}
	}
	must("R", 1, 2)
	must("S", 2, 3)
	if idx.Count() != 0 {
		t.Fatal("incomplete chain counted")
	}
	must("U", 3, 4)
	if idx.Count() != 1 {
		t.Fatalf("Count = %d", idx.Count())
	}
	must("U", 3, 5)
	if idx.Count() != 2 {
		t.Fatalf("Count = %d after second leaf", idx.Count())
	}
	// Deleting the middle tuple kills everything.
	if _, err := idx.Delete("S", relation.Tuple{2, 3}); err != nil {
		t.Fatal(err)
	}
	if idx.Count() != 0 {
		t.Fatalf("Count = %d after middle delete", idx.Count())
	}
	// Re-adding restores both answers.
	must("S", 2, 3)
	if idx.Count() != 2 {
		t.Fatalf("Count = %d after revive", idx.Count())
	}
}

func TestSelfJoinRouting(t *testing.T) {
	// E(x,y), E(y,z): one base insert feeds both atoms.
	db := relation.NewDatabase()
	db.MustCreate("E", "e1", "e2")
	q := query.MustCQ("q", []string{"x", "y", "z"},
		query.NewAtom("E", query.V("x"), query.V("y")),
		query.NewAtom("E", query.V("y"), query.V("z")))
	idx, err := New(db, q)
	if err != nil {
		t.Fatal(err)
	}
	idx.Insert("E", relation.Tuple{1, 2})
	idx.Insert("E", relation.Tuple{2, 3})
	// Paths: 1→2→3.
	if idx.Count() != 1 {
		t.Fatalf("Count = %d, want 1", idx.Count())
	}
	idx.Insert("E", relation.Tuple{2, 2})
	// Now: 1→2→3, 1→2→2, 2→2→3, 2→2→2.
	if idx.Count() != 4 {
		t.Fatalf("Count = %d, want 4", idx.Count())
	}
	idx.Delete("E", relation.Tuple{1, 2})
	// Remaining: 2→2→3, 2→2→2.
	if idx.Count() != 2 {
		t.Fatalf("Count = %d, want 2", idx.Count())
	}
}

func TestConstantsInAtoms(t *testing.T) {
	db := relation.NewDatabase()
	db.MustCreate("R", "r1", "r2")
	q := query.MustCQ("q", []string{"b"},
		query.NewAtom("R", query.C(7), query.V("b")))
	idx, err := New(db, q)
	if err != nil {
		t.Fatal(err)
	}
	idx.Insert("R", relation.Tuple{7, 1})
	idx.Insert("R", relation.Tuple{8, 2}) // filtered out by the constant
	if idx.Count() != 1 {
		t.Fatalf("Count = %d, want 1", idx.Count())
	}
}

func TestSampleUniformAfterUpdates(t *testing.T) {
	db := freshDB()
	idx, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		idx.Insert("R", relation.Tuple{relation.Value(i), 0})
	}
	idx.Insert("S", relation.Tuple{0, 50})
	idx.Delete("R", relation.Tuple{2, 0})
	// 5 answers now.
	if idx.Count() != 5 {
		t.Fatalf("Count = %d", idx.Count())
	}
	rng := rand.New(rand.NewSource(4))
	counts := map[relation.Value]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		a, ok := idx.Sample(rng)
		if !ok {
			t.Fatal("sample failed")
		}
		counts[a[0]]++
	}
	if len(counts) != 5 {
		t.Fatalf("sampled %d distinct answers", len(counts))
	}
	for v, c := range counts {
		if c < trials/5-500 || c > trials/5+500 {
			t.Fatalf("value %d sampled %d times (expected ~%d)", v, c, trials/5)
		}
	}
	if _, ok := counts[2]; ok {
		t.Fatal("deleted answer sampled")
	}
}

func TestHeadExposedAndEmptySample(t *testing.T) {
	db := freshDB()
	idx, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	h := idx.Head()
	if len(h) != 3 || h[0] != "a" {
		t.Fatalf("Head = %v", h)
	}
	if _, ok := idx.Sample(rand.New(rand.NewSource(1))); ok {
		t.Fatal("sampled from empty index")
	}
	if idx.Contains(relation.Tuple{1, 2, 3}) {
		t.Fatal("Contains on empty")
	}
}
