package dynaccess

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/snapshot"
)

// sweep reads the full enumeration of idx as a flat value slice.
func sweep(t *testing.T, idx *Index) []relation.Value {
	t.Helper()
	n := idx.Count()
	out := make([]relation.Value, 0, n*int64(len(idx.Head())))
	for j := int64(0); j < n; j++ {
		tup, err := idx.Access(j)
		if err != nil {
			t.Fatalf("Access(%d): %v", j, err)
		}
		out = append(out, tup...)
	}
	return out
}

func sweepsEqual(a, b []relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// randomStream applies k random inserts/deletes drawn from a small value
// domain (so revives and duplicate no-ops actually happen) to each index.
func randomStream(t *testing.T, rng *rand.Rand, k int, idxs ...*Index) {
	t.Helper()
	rels := []string{"R", "S"}
	for i := 0; i < k; i++ {
		rel := rels[rng.Intn(len(rels))]
		tup := relation.Tuple{relation.Value(rng.Intn(6)), relation.Value(rng.Intn(6))}
		del := rng.Intn(3) == 0
		for _, idx := range idxs {
			var err error
			if del {
				_, err = idx.Delete(rel, tup.Clone())
			} else {
				_, err = idx.Insert(rel, tup.Clone())
			}
			if err != nil {
				t.Fatalf("op %d on %s%v: %v", i, rel, tup, err)
			}
		}
	}
}

// TestRebuildPreservesEnumerationOrder pins the identity the compactor and
// the crash-recovery path both rest on: a rebuilt index enumerates
// byte-identically to its source — not just immediately, but after further
// updates, because tombstones (and hence future revive positions) survive
// the rebuild.
func TestRebuildPreservesEnumerationOrder(t *testing.T) {
	db := freshDB()
	src, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	randomStream(t, rng, 300, src)

	re, err := src.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if src.Count() != re.Count() {
		t.Fatalf("Count: src %d, rebuilt %d", src.Count(), re.Count())
	}
	if !sweepsEqual(sweep(t, src), sweep(t, re)) {
		t.Fatal("rebuilt index enumerates differently")
	}

	// The acid test: identical further updates (the domain is small, so
	// deletes and revives of pre-rebuild tuples occur) must keep the two
	// in lockstep. This fails if the rebuild dropped tombstones: a
	// revived tuple would reappear at a different position.
	randomStream(t, rng, 300, src, re)
	if !sweepsEqual(sweep(t, src), sweep(t, re)) {
		t.Fatal("indexes diverged after post-rebuild updates")
	}
	for j := int64(0); j < src.Count(); j++ {
		tup, _ := src.Access(j)
		if inv, ok := re.InvertedAccess(tup); !ok || inv != j {
			t.Fatalf("InvertedAccess(%v) = %d,%v, want %d", tup, inv, ok, j)
		}
	}
}

// TestSnapshotBaseRoundTrip drives MarshalBase → container → UnmarshalBase
// → NewFromTables and checks the restored index is the live one.
func TestSnapshotBaseRoundTrip(t *testing.T) {
	db := freshDB()
	src, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	randomStream(t, rng, 200, src)

	var buf bytes.Buffer
	w := snapshot.NewWriter(&buf)
	s := w.Section(99)
	MarshalBase(s, src)
	s.Close()
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}

	f, err := snapshot.OpenBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tables, err := UnmarshalBase(f.Sections()[0].Reader())
	if err != nil {
		t.Fatal(err)
	}
	re, err := NewFromTables(chainQ(), tables)
	if err != nil {
		t.Fatal(err)
	}
	if !sweepsEqual(sweep(t, src), sweep(t, re)) {
		t.Fatal("snapshot round trip changed enumeration")
	}
	randomStream(t, rng, 200, src, re)
	if !sweepsEqual(sweep(t, src), sweep(t, re)) {
		t.Fatal("restored index diverged under further updates")
	}
}

// A fresh New over a non-empty database must also round-trip: the bulk
// load and the base recording see the same rows.
func TestTablesCoverBulkLoadedRows(t *testing.T) {
	db := freshDB()
	r, _ := db.Relation("R")
	s, _ := db.Relation("S")
	for i := 0; i < 5; i++ {
		r.Insert(relation.Tuple{relation.Value(i), relation.Value(i + 1)})
		s.Insert(relation.Tuple{relation.Value(i + 1), relation.Value(i + 2)})
	}
	src, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	re, err := src.Rebuild()
	if err != nil {
		t.Fatal(err)
	}
	if src.Count() == 0 {
		t.Fatal("test is vacuous: no answers")
	}
	if !sweepsEqual(sweep(t, src), sweep(t, re)) {
		t.Fatal("rebuild of bulk-loaded index differs")
	}
}

func TestValidateUpdate(t *testing.T) {
	db := freshDB()
	idx, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.ValidateUpdate("R", 2); err != nil {
		t.Fatalf("valid target rejected: %v", err)
	}
	if err := idx.ValidateUpdate("Nope", 2); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := idx.ValidateUpdate("R", 3); err == nil {
		t.Fatal("wrong arity accepted")
	}
	// Validation must not mutate: the index still works and is empty.
	if idx.Count() != 0 {
		t.Fatal("ValidateUpdate changed state")
	}
}

func TestNewFromTablesRejectsGarbage(t *testing.T) {
	q := chainQ()
	good := []BaseTable{
		{Name: "R", Arity: 2, Tuples: []relation.Tuple{{1, 2}}},
		{Name: "S", Arity: 2, Tuples: []relation.Tuple{{2, 3}}},
	}
	if _, err := NewFromTables(q, good); err != nil {
		t.Fatalf("good tables rejected: %v", err)
	}
	if _, err := NewFromTables(q, good[:1]); err == nil {
		t.Fatal("missing table accepted")
	}
	extra := append(append([]BaseTable{}, good...), BaseTable{Name: "Z", Arity: 1})
	if _, err := NewFromTables(q, extra); err == nil {
		t.Fatal("unreferenced table accepted")
	}
	badArity := []BaseTable{
		{Name: "R", Arity: 2, Tuples: []relation.Tuple{{1, 2, 3}}},
		good[1],
	}
	if _, err := NewFromTables(q, badArity); err == nil {
		t.Fatal("tuple/arity mismatch accepted")
	}
	badDead := []BaseTable{
		{Name: "R", Arity: 2, Tuples: []relation.Tuple{{1, 2}}, Dead: []int64{5}},
		good[1],
	}
	if _, err := NewFromTables(q, badDead); err == nil {
		t.Fatal("out-of-range dead position accepted")
	}
}

func TestUnmarshalBaseRejectsCorruptCounts(t *testing.T) {
	db := freshDB()
	src, err := New(db, chainQ())
	if err != nil {
		t.Fatal(err)
	}
	src.Insert("R", relation.Tuple{1, 2})

	write := func(mutate func(s *snapshot.SectionWriter)) *snapshot.Reader {
		var buf bytes.Buffer
		w := snapshot.NewWriter(&buf)
		s := w.Section(99)
		mutate(s)
		s.Close()
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		f, err := snapshot.OpenBytes(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f.Sections()[0].Reader()
	}

	// Tuple count inconsistent with the flat payload.
	r := write(func(s *snapshot.SectionWriter) {
		s.U64(1)
		s.Str("R")
		s.U64(2) // arity
		s.U64(3) // claims 3 tuples
		s.I64s([]int64{1, 2})
		s.I64s(nil)
	})
	if _, err := UnmarshalBase(r); err == nil {
		t.Fatal("tuple-count mismatch accepted")
	}
	// Dead positions out of order.
	r = write(func(s *snapshot.SectionWriter) {
		s.U64(1)
		s.Str("R")
		s.U64(2)
		s.U64(2)
		s.I64s([]int64{1, 2, 3, 4})
		s.I64s([]int64{1, 0})
	})
	if _, err := UnmarshalBase(r); err == nil {
		t.Fatal("unsorted dead list accepted")
	}
	// Absurd table count.
	r = write(func(s *snapshot.SectionWriter) { s.U64(1 << 60) })
	if _, err := UnmarshalBase(r); err == nil {
		t.Fatal("absurd table count accepted")
	}
}
