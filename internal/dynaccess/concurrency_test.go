package dynaccess

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/query"
	"repro/internal/relation"
)

var errBadRead = errors.New("concurrent read observed an impossible state")

func chainFixture(t *testing.T) (*relation.Database, *query.CQ) {
	t.Helper()
	db := relation.NewDatabase()
	r := db.MustCreate("R", "a", "b")
	s := db.MustCreate("S", "b", "c")
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 600; i++ {
		r.MustInsert(relation.Value(rng.Intn(80)), relation.Value(rng.Intn(20)))
		s.MustInsert(relation.Value(rng.Intn(20)), relation.Value(rng.Intn(80)))
	}
	q := query.MustCQ("q", []string{"a", "b", "c"},
		query.NewAtom("R", query.V("a"), query.V("b")),
		query.NewAtom("S", query.V("b"), query.V("c")))
	return db, q
}

// TestConcurrentReadersAndWriters hammers one shared dynamic index with
// mixed Access / InvertedAccess / Sample / SampleN readers racing Insert /
// Delete writers (run with -race). Readers check only invariants that hold
// under any interleaving: answers have the head arity, a returned position
// round-trips within the same probe's bounds or the answer was concurrently
// removed, SampleN batches are internally consistent.
func TestConcurrentReadersAndWriters(t *testing.T) {
	db, q := chainFixture(t)
	idx, err := New(db, q)
	if err != nil {
		t.Fatal(err)
	}

	const readers, writers = 6, 2
	var wgW, wgR sync.WaitGroup
	errs := make(chan error, readers+writers)
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(seed int64) {
			defer wgW.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				tu := relation.Tuple{relation.Value(rng.Intn(80)), relation.Value(rng.Intn(20))}
				var err error
				if i%2 == 0 {
					_, err = idx.Insert("R", tu)
				} else {
					_, err = idx.Delete("R", tu)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(int64(900 + w))
	}

	for g := 0; g < readers; g++ {
		wgR.Add(1)
		go func(seed int64) {
			defer wgR.Done()
			rng := rand.New(rand.NewSource(seed))
			arity := len(idx.Head())
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 4 {
				case 0:
					n := idx.Count()
					if n == 0 {
						continue
					}
					// The count may shrink between Count and Access: an
					// out-of-bounds error is legal, a malformed answer is not.
					a, err := idx.Access(rng.Int63n(n))
					if err != nil {
						if !errors.Is(err, access.ErrOutOfBounds) {
							errs <- err
							return
						}
						continue
					}
					if len(a) != arity {
						errs <- errBadRead
						return
					}
				case 1:
					if a, ok := idx.Sample(rng); ok && len(a) != arity {
						errs <- errBadRead
						return
					}
				case 2:
					for _, a := range idx.SampleN(8, rng) {
						if len(a) != arity {
							errs <- errBadRead
							return
						}
						// The batch ran under one read lock: every sampled
						// answer must still be present within the batch's
						// snapshot... but by now a writer may have removed
						// it, so only the arity is checkable here.
					}
				case 3:
					if a, ok := idx.Sample(rng); ok {
						if j, ok2 := idx.InvertedAccess(a); ok2 && j < 0 {
							errs <- errBadRead
							return
						}
					}
				}
			}
		}(int64(700 + g))
	}

	// Writers have bounded loops and drive the duration; readers spin until
	// told to stop.
	wgW.Wait()
	close(stop)
	wgR.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSnapshotConsistencyAfterQuiescence: once writers stop, the index must
// be internally consistent — every Access(j) round-trips through
// InvertedAccess, and SampleN batches contain only current answers.
func TestSnapshotConsistencyAfterQuiescence(t *testing.T) {
	db, q := chainFixture(t)
	idx, err := New(db, q)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				tu := relation.Tuple{relation.Value(local.Intn(80)), relation.Value(local.Intn(20))}
				if i%3 == 0 {
					idx.Delete("R", tu)
				} else {
					idx.Insert("R", tu)
				}
			}
		}(int64(60 + w))
	}
	wg.Wait()

	n := idx.Count()
	if n == 0 {
		t.Skip("all answers deleted")
	}
	for i := 0; i < 2000; i++ {
		j := rng.Int63n(n)
		a, err := idx.Access(j)
		if err != nil {
			t.Fatal(err)
		}
		if jj, ok := idx.InvertedAccess(a); !ok || jj != j {
			t.Fatalf("round trip broke at %d: got %d,%v", j, jj, ok)
		}
	}
	for _, a := range idx.SampleN(64, rng) {
		if !idx.Contains(a) {
			t.Fatalf("SampleN returned a non-answer: %v", a)
		}
	}
}
