// Snapshot encoding of a dynamic index's persistable form: its base
// tables. Unlike the static index — whose prefix sums and groupings are
// themselves serialized — the dynamic structure is *rebuilt* from the base
// contents on restore (NewFromTables): Fenwick trees and bucket caches are
// cheap relative to I/O, and replaying the original arrival order (with
// tombstones) reproduces the live index's layouts exactly, so enumeration
// order survives the round trip byte-for-byte.
package dynaccess

import (
	"unsafe"

	"repro/internal/relation"
	"repro/internal/snapshot"
)

// MarshalBase appends the index's base tables to a snapshot section.
// Layout, per table (sorted by name):
//
//	str name | u64 arity | u64 numTuples | i64s flat values | i64s dead positions
func MarshalBase(s *snapshot.SectionWriter, idx *Index) {
	tables := idx.Tables()
	s.U64(uint64(len(tables)))
	for _, tb := range tables {
		s.Str(tb.Name)
		s.U64(uint64(tb.Arity))
		s.U64(uint64(len(tb.Tuples)))
		flat := make([]int64, 0, len(tb.Tuples)*tb.Arity)
		for _, t := range tb.Tuples {
			for _, v := range t {
				flat = append(flat, int64(v))
			}
		}
		s.I64s(flat)
		s.I64s(tb.Dead)
	}
}

// UnmarshalBase reads base tables written by MarshalBase. Tuples view the
// snapshot payload in place (no copy); NewFromTables clones what it keeps,
// but the returned tables themselves stay valid only while the snapshot
// mapping does.
func UnmarshalBase(r *snapshot.Reader) ([]BaseTable, error) {
	n := r.U64()
	if n > uint64(r.Remaining()/8) {
		return nil, snapshot.Corruptf("dynamic base: table count %d exceeds payload", n)
	}
	tables := make([]BaseTable, 0, n)
	for i := uint64(0); i < n; i++ {
		tb := BaseTable{Name: r.Str()}
		arity := r.U64()
		numTuples := r.U64()
		flat := r.I64s()
		dead := r.I64s()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if arity > uint64(len(flat)) && numTuples > 0 {
			return nil, snapshot.Corruptf("dynamic base %q: arity %d exceeds payload", tb.Name, arity)
		}
		if arity == 0 {
			if numTuples != 0 || len(flat) != 0 {
				return nil, snapshot.Corruptf("dynamic base %q: %d tuples of arity 0", tb.Name, numTuples)
			}
		} else if numTuples != uint64(len(flat))/arity || uint64(len(flat))%arity != 0 {
			return nil, snapshot.Corruptf("dynamic base %q: %d values for %d tuples of arity %d",
				tb.Name, len(flat), numTuples, arity)
		}
		tb.Arity = int(arity)
		vals := int64sAsValues(flat)
		tb.Tuples = make([]relation.Tuple, numTuples)
		for j := range tb.Tuples {
			tb.Tuples[j] = vals[uint64(j)*arity : uint64(j+1)*arity]
		}
		prev := int64(-1)
		for _, d := range dead {
			if d <= prev || d >= int64(numTuples) {
				return nil, snapshot.Corruptf("dynamic base %q: dead position %d (prev %d, %d tuples)",
					tb.Name, d, prev, numTuples)
			}
			prev = d
		}
		tb.Dead = dead
		tables = append(tables, tb)
	}
	return tables, nil
}

// int64sAsValues reinterprets a restored column (Value is a defined int64,
// so the layouts are identical) — the same view relation's decoder uses.
func int64sAsValues(v []int64) []relation.Value {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*relation.Value)(unsafe.Pointer(&v[0])), len(v))
}
